module Digraph = Trust_graph.Digraph

type t = {
  spec : Spec.t;
  graph : Digraph.t;
  to_node : int Party.Map.t;
  of_node : Party.t array;
}

let of_spec spec =
  let parties = Spec.parties spec in
  let graph = Digraph.create ~initial_capacity:(List.length parties) () in
  let to_node =
    List.fold_left
      (fun m party -> Party.Map.add party (Digraph.add_node graph) m)
      Party.Map.empty parties
  in
  let of_node = Array.of_list parties in
  let add_commitment (cref, d) =
    let principal = Spec.commitment_principal d cref.Spec.side in
    let u = Party.Map.find principal to_node and v = Party.Map.find d.Spec.via to_node in
    Digraph.add_edge graph u v
  in
  List.iter add_commitment (Spec.commitments spec);
  { spec; graph; to_node; of_node }

let spec t = t.spec
let graph t = t.graph

let node_of_party t party =
  match Party.Map.find_opt party t.to_node with
  | Some n -> n
  | None -> raise Not_found

let party_of_node t n = t.of_node.(n)

let edge_of_commitment t cref =
  match Spec.find_deal t.spec cref.Spec.deal with
  | None -> raise Not_found
  | Some d ->
    let principal = Spec.commitment_principal d cref.Spec.side in
    (node_of_party t principal, node_of_party t d.Spec.via)

let degree t party = List.length (Spec.commitments_of t.spec party)

let internal_nodes t = Spec.internal_parties t.spec

let is_bipartite t =
  (* The §3 invariant is stronger than 2-colourability: every edge must
     join a principal to a trusted component. *)
  Digraph.fold_edges
    (fun u v ok ->
      ok && Party.is_principal (party_of_node t u) && Party.is_trusted (party_of_node t v))
    t.graph true

let to_dot t =
  let node_attrs n =
    let party = party_of_node t n in
    let shape = if Party.is_trusted party then "box" else "circle" in
    [ ("label", Party.to_string party); ("shape", shape) ]
  in
  Trust_graph.Dot.render ~name:"interaction" ~undirected:true ~node_attrs t.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>interaction graph: %d parties, %d edges"
    (Digraph.node_count t.graph) (Digraph.edge_count t.graph);
  Digraph.iter_edges
    (fun u v ->
      Format.fprintf ppf "@,  %a -- %a" Party.pp (party_of_node t u) Party.pp
        (party_of_node t v))
    t.graph;
  Format.fprintf ppf "@]"
