module Event_queue = Trust_sim.Event_queue

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let drain q =
  let rec loop acc =
    match Event_queue.pop q with None -> List.rev acc | Some e -> loop (e :: acc)
  in
  loop []

let test_empty () =
  let q = Event_queue.create () in
  check "empty" true (Event_queue.is_empty q);
  check "pop none" true (Event_queue.pop q = None);
  check "no peek" true (Event_queue.peek_time q = None)

let test_time_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "e";
  Event_queue.push q ~time:1 "a";
  Event_queue.push q ~time:3 "c";
  Alcotest.(check (list (pair int string))) "sorted" [ (1, "a"); (3, "c"); (5, "e") ] (drain q)

let test_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2 "first";
  Event_queue.push q ~time:2 "second";
  Event_queue.push q ~time:2 "third";
  Alcotest.(check (list string)) "insertion order within a tick"
    [ "first"; "second"; "third" ]
    (List.map snd (drain q))

let test_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:4 "d";
  Event_queue.push q ~time:2 "b";
  check "peek" true (Event_queue.peek_time q = Some 2);
  (match Event_queue.pop q with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "expected (2, b)");
  Event_queue.push q ~time:1 "a";
  (match Event_queue.pop q with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "expected (1, a)");
  check_int "one left" 1 (Event_queue.length q)

let test_growth () =
  let q = Event_queue.create () in
  for i = 1000 downto 1 do
    Event_queue.push q ~time:i i
  done;
  check_int "all stored" 1000 (Event_queue.length q);
  let popped = drain q in
  check "sorted ascending" true (List.map fst popped = List.init 1000 (fun i -> i + 1))

let prop_pop_sorted =
  QCheck2.Test.make ~name:"pop yields times in nondecreasing order" ~count:300
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 50))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t t) times;
      let popped = List.map fst (drain q) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted popped && List.length popped = List.length times)

let prop_stable_within_time =
  QCheck2.Test.make ~name:"equal-time events keep insertion order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) (int_range 0 5))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t (t, i)) times;
      let popped = List.map snd (drain q) in
      (* within each time bucket, sequence numbers ascend *)
      let rec check_bucket = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 <> t2 || i1 < i2) && check_bucket rest
        | _ -> true
      in
      check_bucket popped)

let () =
  Alcotest.run "event_queue"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "time order" `Quick test_time_order;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
          Alcotest.test_case "growth" `Quick test_growth;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pop_sorted; prop_stable_within_time ] );
    ]
