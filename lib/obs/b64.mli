(** RFC 4648 base64 (standard alphabet, padded) — carries binary ring
    dumps through the JSON wire protocol without a new dependency. *)

val encode : string -> string

val decode : string -> (string, string) result
(** Strict: rejects lengths not a multiple of 4, characters outside
    the alphabet, and padding anywhere but the end. *)
