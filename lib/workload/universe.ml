open Exchange

type config = {
  principals : int;
  broker_share : float;
  producer_share : float;
  agent_share : float;
  s_consumers : float;
  s_producers : float;
  s_brokers : float;
  template_share : float;
  templates : int;
  s_templates : float;
  mix : Gen.mix;
}

let default_config =
  {
    principals = 1_000_000;
    broker_share = 0.001;
    producer_share = 0.05;
    agent_share = 0.0002;
    s_consumers = 0.9;
    s_producers = 1.0;
    s_brokers = 1.2;
    template_share = 0.3;
    templates = 512;
    s_templates = 1.1;
    mix = Gen.default_mix;
  }

(* The regime the trace-mining feedback loop wants to observe: a small,
   hot catalog (most traffic is a repeated shape, so per-shape incident
   counts accumulate fast) over deep chains and wide fans (long
   multi-party runs, the sessions that retry, expire and trip the §5
   bound when deliveries drop or principals defect). *)
let defect_heavy =
  {
    default_config with
    template_share = 0.6;
    templates = 64;
    s_templates = 1.3;
    mix =
      {
        Gen.default_mix with
        Gen.sale_weight = 1;
        chain_weight = 4;
        max_chain = 4;
        fan_weight = 4;
        max_fan = 5;
        bundle_weight = 1;
      };
  }

type t = {
  cfg : config;
  consumers : Zipf.t;
  producers : Zipf.t;
  brokers : Zipf.t;
  agents : Zipf.t;
  catalog : Zipf.t option;
}

(* The widest cast any one transaction of the mix can demand from a
   single role: a fan of k documents uses 2k trusted agents, a chain of
   n brokers uses n distinct brokers and n+1 agents. *)
let cast_bound (mix : Gen.mix) =
  let widest =
    max (max mix.Gen.max_chain mix.Gen.max_bundle) mix.Gen.max_fan
  in
  (2 * max 1 widest) + 2

let create cfg =
  if cfg.broker_share < 0. || cfg.producer_share < 0. || cfg.agent_share < 0. then
    invalid_arg "Universe.create: negative role share";
  if cfg.template_share < 0. || cfg.template_share > 1. then
    invalid_arg "Universe.create: template_share must be in [0, 1]";
  let need = cast_bound cfg.mix in
  let part share =
    max need (int_of_float (float_of_int cfg.principals *. share))
  in
  let brokers = part cfg.broker_share in
  let producers = part cfg.producer_share in
  let agents = part cfg.agent_share in
  let consumers = cfg.principals - brokers - producers - agents in
  if consumers < need then
    invalid_arg
      (Printf.sprintf
         "Universe.create: %d principals leave no consumer long tail (need >= %d after \
          role floors)"
         cfg.principals (brokers + producers + agents + need));
  {
    cfg;
    consumers = Zipf.create ~n:consumers ~s:cfg.s_consumers;
    producers = Zipf.create ~n:producers ~s:cfg.s_producers;
    brokers = Zipf.create ~n:brokers ~s:cfg.s_brokers;
    agents = Zipf.create ~n:agents ~s:cfg.s_brokers;
    catalog =
      (if cfg.templates > 0 && cfg.template_share > 0. then
         Some (Zipf.create ~n:cfg.templates ~s:cfg.s_templates)
       else None);
  }

let consumers t = Zipf.size t.consumers
let producers t = Zipf.size t.producers
let brokers t = Zipf.size t.brokers
let agents t = Zipf.size t.agents

(* Per-transaction draw state: ranks already used, one list per role,
   so a cast never reuses a principal within its role. Lists stay tiny
   (a dozen entries at most), so linear membership is fine. *)
type cast = {
  mutable used_c : int list;
  mutable used_p : int list;
  mutable used_b : int list;
  mutable used_a : int list;
}

let distinct zipf rng used =
  let n = Zipf.size zipf in
  let rec probe r steps =
    if steps >= n then invalid_arg "Universe: role subpopulation exhausted"
    else if List.mem r !used then probe ((r + 1) mod n) (steps + 1)
    else begin
      used := r :: !used;
      r
    end
  in
  probe (Zipf.sample zipf rng) 0

let consumer_of t rng cast =
  let u = ref cast.used_c in
  let r = distinct t.consumers rng u in
  cast.used_c <- !u;
  Party.consumer (Printf.sprintf "c%d" r)

let producer_of t rng cast =
  let u = ref cast.used_p in
  let r = distinct t.producers rng u in
  cast.used_p <- !u;
  Party.producer (Printf.sprintf "p%d" r)

let broker_of t rng cast =
  let u = ref cast.used_b in
  let r = distinct t.brokers rng u in
  cast.used_b <- !u;
  Party.broker (Printf.sprintf "b%d" r)

let agent_of t rng cast =
  let u = ref cast.used_a in
  let r = distinct t.agents rng u in
  cast.used_a <- !u;
  Party.trusted (Printf.sprintf "t%d" r)

let fresh_cast () = { used_c = []; used_p = []; used_b = []; used_a = [] }

(* The shapes mirror Gen's link structure, priorities and price ladders
   exactly — only the cast is drawn instead of fixed. Deliberately
   duplicated rather than threaded through Gen: Gen's fixed names (and
   their pinned shape hashes) are load-bearing for the batch tests. *)

let chain t rng ~brokers:n =
  let cast = fresh_cast () in
  let consumer = consumer_of t rng cast in
  let producer = producer_of t rng cast in
  let broker = Array.init n (fun _ -> broker_of t rng cast) in
  let agent = Array.init (n + 1) (fun _ -> agent_of t rng cast) in
  let seller_of_link i = if i = n then producer else broker.(i) in
  let buyer_of_link i = if i = 0 then consumer else broker.(i - 1) in
  let link i =
    Spec.sale
      ~id:(Printf.sprintf "link%d" i)
      ~buyer:(buyer_of_link i) ~seller:(seller_of_link i) ~via:agent.(i)
      ~price:(Asset.dollars (10 + n - i))
      ~good:"d"
  in
  let deals = List.init (n + 1) (fun k -> link (n - k)) in
  let priorities =
    List.init n (fun k ->
        (broker.(k), { Spec.deal = Printf.sprintf "link%d" k; side = Spec.Right }))
  in
  Spec.make_exn ~priorities deals

let fan t rng ~docs:k =
  let cast = fresh_cast () in
  let consumer = consumer_of t rng cast in
  let deals =
    List.concat
      (List.init k (fun idx ->
           let i = idx + 1 in
           let doc = Printf.sprintf "d%d" i in
           let price = Asset.dollars (10 * i) in
           let broker = broker_of t rng cast in
           let source = producer_of t rng cast in
           let inner_via = agent_of t rng cast in
           let outer_via = agent_of t rng cast in
           [
             Spec.sale
               ~id:(Printf.sprintf "b%ds%d" i i)
               ~buyer:broker ~seller:source ~via:inner_via
               ~price:(price * 8 / 10) ~good:doc;
             Spec.sale
               ~id:(Printf.sprintf "cb%d" i)
               ~buyer:consumer ~seller:broker ~via:outer_via ~price ~good:doc;
           ]))
  in
  let priorities =
    List.init k (fun idx ->
        let i = idx + 1 in
        let seller =
          match List.nth deals ((2 * idx) + 1) with d -> d.Spec.right
        in
        (seller, { Spec.deal = Printf.sprintf "cb%d" i; side = Spec.Right }))
  in
  Spec.make_exn ~priorities deals

let bundle t rng ~docs:k =
  let cast = fresh_cast () in
  let consumer = consumer_of t rng cast in
  let deals =
    List.init k (fun idx ->
        let i = idx + 1 in
        Spec.sale
          ~id:(Printf.sprintf "cp%d" i)
          ~buyer:consumer
          ~seller:(producer_of t rng cast)
          ~via:(agent_of t rng cast)
          ~price:(Asset.dollars (10 * i))
          ~good:(Printf.sprintf "d%d" i))
  in
  Spec.make_exn deals

let sprinkle_trust rng density spec =
  List.fold_left
    (fun spec d ->
      if Prng.float rng < density then
        Spec.with_persona ~trusted:d.Spec.via ~principal:d.Spec.left spec
      else spec)
    spec spec.Spec.deals

let transaction t rng =
  let mix = t.cfg.mix in
  let total =
    mix.Gen.sale_weight + mix.Gen.chain_weight + mix.Gen.fan_weight
    + mix.Gen.bundle_weight
  in
  if total <= 0 then invalid_arg "Universe.transaction: all mix weights zero";
  let roll = Prng.int rng total in
  let base =
    if roll < mix.Gen.sale_weight then chain t rng ~brokers:0
    else if roll < mix.Gen.sale_weight + mix.Gen.chain_weight then
      chain t rng ~brokers:(1 + Prng.int rng (max 1 mix.Gen.max_chain))
    else if roll < mix.Gen.sale_weight + mix.Gen.chain_weight + mix.Gen.fan_weight
    then fan t rng ~docs:(1 + Prng.int rng (max 1 mix.Gen.max_fan))
    else bundle t rng ~docs:(1 + Prng.int rng (max 1 mix.Gen.max_bundle))
  in
  sprinkle_trust rng mix.Gen.trust_density base

(* Catalog templates: template i always re-derives the same cast, so
   the spec — and its cached protocol — repeats byte-identically. *)
let template_seed rank =
  Int64.add 0x9E3779B97F4A7C15L (Int64.mul (Int64.of_int (rank + 1)) 0x2545F4914F6CDD1DL)

let sample t rng =
  match t.catalog with
  | Some catalog when Prng.float rng < t.cfg.template_share ->
    let rank = Zipf.sample catalog rng in
    transaction t (Prng.create (template_seed rank))
  | Some _ | None -> transaction t rng
