lib/core/protocol.mli: Action Exchange Execution Format Party Spec
