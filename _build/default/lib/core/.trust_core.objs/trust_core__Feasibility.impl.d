lib/core/feasibility.ml: Exchange Execution Format Indemnity List Party Reduce Result Sequencing Spec
