(* RFC 4648 base64, standard alphabet with padding — just enough to
   move binary ring dumps through the JSON wire protocol without a new
   dependency. Encoding is total; decoding validates strictly (length,
   alphabet, padding placement) because wire input is untrusted. *)

let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let b = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let x = (Char.code s.[!i] lsl 16) lor (Char.code s.[!i + 1] lsl 8) lor Char.code s.[!i + 2] in
    Buffer.add_char b alphabet.[(x lsr 18) land 63];
    Buffer.add_char b alphabet.[(x lsr 12) land 63];
    Buffer.add_char b alphabet.[(x lsr 6) land 63];
    Buffer.add_char b alphabet.[x land 63];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
    let x = Char.code s.[!i] lsl 16 in
    Buffer.add_char b alphabet.[(x lsr 18) land 63];
    Buffer.add_char b alphabet.[(x lsr 12) land 63];
    Buffer.add_string b "=="
  | 2 ->
    let x = (Char.code s.[!i] lsl 16) lor (Char.code s.[!i + 1] lsl 8) in
    Buffer.add_char b alphabet.[(x lsr 18) land 63];
    Buffer.add_char b alphabet.[(x lsr 12) land 63];
    Buffer.add_char b alphabet.[(x lsr 6) land 63];
    Buffer.add_char b '='
  | _ -> ());
  Buffer.contents b

let sextet = function
  | 'A' .. 'Z' as c -> Char.code c - 65
  | 'a' .. 'z' as c -> Char.code c - 71
  | '0' .. '9' as c -> Char.code c + 4
  | '+' -> 62
  | '/' -> 63
  | _ -> -1

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64 length not a multiple of 4"
  else if n = 0 then Ok ""
  else begin
    let pad = if s.[n - 1] <> '=' then 0 else if s.[n - 2] = '=' then 2 else 1 in
    let b = Buffer.create (n / 4 * 3) in
    let err = ref None in
    (try
       for i = 0 to (n / 4) - 1 do
         let q j =
           let c = s.[(4 * i) + j] in
           if c = '=' then
             (* '=' is only legal as final padding *)
             if 4 * i + j >= n - pad then 0 else raise Exit
           else
             match sextet c with
             | -1 -> raise Exit
             | v -> v
         in
         let x = (q 0 lsl 18) lor (q 1 lsl 12) lor (q 2 lsl 6) lor q 3 in
         Buffer.add_char b (Char.chr ((x lsr 16) land 0xff));
         if (4 * i) + 2 < n - pad then Buffer.add_char b (Char.chr ((x lsr 8) land 0xff));
         if (4 * i) + 3 < n - pad then Buffer.add_char b (Char.chr (x land 0xff))
       done
     with Exit -> err := Some "invalid base64 character");
    match !err with Some m -> Error m | None -> Ok (Buffer.contents b)
  end
