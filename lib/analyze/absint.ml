(* Abstract interpretation of the synthesized protocol: per-principal
   worst-case exposure over every legal lockstep interleaving and every
   single-party defection pattern, without enumerating executions.

   Each emitted step of the execution sequence compiles to a set of
   risk deltas (release / receive, valued at the affected principal's
   own cost basis), mirroring the dynamic exposure ledger's accounting
   (lib/sim/exposure.ml): escrow at a genuine trusted agent is
   protected; custody handed to a third-party persona is released the
   moment it is committed; a commit whose effective agent is the
   counterparty itself (§4.2.3 direct trust) is already the delivery.

   In lockstep, every legal interleaving delivers a prefix of the
   synthesized total order, so the honest worst case is the maximum of
   a principal's net position over prefixes. A single defector [q] can
   additionally stall any deal it participates in — and, through
   document-supply chains, any deal depending on one of [q]'s — at an
   arbitrary point of that deal's own step prefix while the rest of
   the schedule runs on. The abstract worst case therefore joins, per
   touched deal, the deal's own maximal prefix contribution (the
   lattice join over all cut states of that escrow slot) on top of the
   untouched schedule's worst prefix. Granting the adversary per-deal
   independent stalling power over-approximates the engine's defection
   semantics (a real Silent/Partial defector stalls one global suffix
   of its script), so the computed interval is a sound upper bound on
   every dynamic peak the simulation battery can produce. Deadline
   unwinds only return escrow and indemnity deposits only add cover,
   so ignoring both preserves the upper bound. *)

open Exchange
module Execution = Trust_core.Execution

(* What an asset is worth to a party — money at face value, a document
   at the party's cost basis. Mirror of [Trust_sim.Trace.price_for]:
   trust_sim depends on trust_analyze, so the valuation is restated
   here rather than imported. *)
let basis spec party asset =
  match asset with
  | Asset.Money m -> m
  | Asset.Document _ ->
    let deals_pricing ~receiving =
      List.filter_map
        (fun ((cref : Spec.commitment_ref), d) ->
          let mine = Party.equal (Spec.commitment_principal d cref.Spec.side) party in
          let flow =
            if receiving then Spec.commitment_expects d cref.Spec.side
            else Spec.commitment_sends d cref.Spec.side
          in
          if mine && Asset.equal flow asset then
            let counter_flow =
              if receiving then Spec.commitment_sends d cref.Spec.side
              else Spec.commitment_expects d cref.Spec.side
            in
            Some (Asset.value counter_flow)
          else None)
        (Spec.commitments spec)
    in
    (match deals_pricing ~receiving:true with
    | price :: _ -> price
    | [] -> ( match deals_pricing ~receiving:false with price :: _ -> price | [] -> 0))

(* §5: a feasible sequence keeps at most one transfer of a party in
   flight, so its honest worst position is its single largest outgoing
   transfer. Same fold as [Trust_sim.Exposure.single_transfer_bound]. *)
let single_transfer_bound spec party =
  List.fold_left
    (fun acc ((cref : Spec.commitment_ref), d) ->
      if Party.equal (Spec.commitment_principal d cref.Spec.side) party then
        max acc (basis spec party (Spec.commitment_sends d cref.Spec.side))
      else acc)
    0 (Spec.commitments spec)

type delta = {
  d_party : Party.t;
  d_release : Asset.money;  (** value leaving the party's control *)
  d_receive : Asset.money;  (** value finally delivered to the party *)
}

type astep = {
  a_index : int;  (** the execution step's 1-based index *)
  a_deal : string option;  (** owning deal; [None] for notifications *)
  a_label : string;
  a_deltas : delta list;
}

type witness = {
  w_defector : Party.t option;
  w_at_risk : Asset.money;
  w_kept : astep list;  (** the maximizing schedule, original order *)
  w_stalled : (string * int) list;
      (** touched deals: (deal, steps the defector lets through) *)
}

type interval = {
  i_party : Party.t;
  i_bound : Asset.money;
  i_lo : Asset.money;  (** honest-run peak *)
  i_hi : Asset.money;  (** worst case over defectors and interleavings *)
  i_witness : witness;
}

type t = { spec : Spec.t; steps : astep list; intervals : interval list }

let proved i = i.i_hi <= i.i_bound

(* ------------------------------------------------------------------ *)
(* Compiling steps to deltas.                                          *)

let release p v = { d_party = p; d_release = v; d_receive = 0 }
let receive p v = { d_party = p; d_release = 0; d_receive = v }

let pp_origin ppf = function
  | Execution.Commit cref -> Format.fprintf ppf "commit %a" Spec.pp_ref cref
  | Execution.Forward deal -> Format.fprintf ppf "forward %s" deal
  | Execution.Notification owner ->
    Format.fprintf ppf "conjunction %s" (Party.name owner)

let compile_step spec (step : Execution.step) =
  let label =
    Format.asprintf "%a  (%a)" Action.pp step.Execution.action pp_origin
      step.Execution.origin
  in
  let deal, deltas =
    match (step.Execution.origin, step.Execution.action) with
    | Execution.Notification _, _ | _, Action.Notify _ -> (None, [])
    | _, Action.Undo _ ->
      (* synthesized sequences contain no unwinds; refunds only return
         escrow, so treating one as a no-op stays an upper bound *)
      (None, [])
    | Execution.Commit cref, Action.Do _ -> (
      match Spec.find_deal spec cref.Spec.deal with
      | None -> (None, [])
      | Some d ->
        let side = cref.Spec.side in
        let principal = Spec.commitment_principal d side in
        let counterpart = Spec.commitment_principal d (Spec.other_side side) in
        let agent = Spec.effective_agent spec d in
        let asset = Spec.commitment_sends d side in
        let deltas =
          if Party.equal principal agent then
            (* virtual commit (§4.2.4): not even emitted; defensive *)
            []
          else if Party.equal counterpart agent then
            (* direct trust: the commit is itself the delivery *)
            [
              release principal (basis spec principal asset);
              receive counterpart (basis spec counterpart asset);
            ]
          else if Party.is_principal agent then
            (* custody at a third-party persona: out of the principal's
               hands and into another principal's — at risk now *)
            [ release principal (basis spec principal asset) ]
          else (* genuine trusted agent: protected escrow *) []
        in
        (Some d.Spec.id, deltas))
    | Execution.Forward id, Action.Do tr -> (
      match Spec.find_deal spec id with
      | None -> (Some id, [])
      | Some d ->
        (* the forwarded asset is the [side] principal's commitment,
           delivered to the counter-side principal *)
        let side_of s =
          Asset.equal (Spec.commitment_sends d s) tr.Action.asset
          && Party.equal
               (Spec.commitment_principal d (Spec.other_side s))
               tr.Action.target
        in
        let side =
          if side_of Spec.Left then Some Spec.Left
          else if side_of Spec.Right then Some Spec.Right
          else None
        in
        (match side with
        | None -> (Some id, [])
        | Some side ->
          let principal = Spec.commitment_principal d side in
          let counterpart = Spec.commitment_principal d (Spec.other_side side) in
          let agent = Spec.effective_agent spec d in
          let asset = Spec.commitment_sends d side in
          let releases =
            if Party.equal principal agent then
              (* own-agent commit was virtual: the outlay happens here *)
              [ release principal (basis spec principal asset) ]
            else if Party.is_trusted agent then
              (* escrow settles away from the contributor *)
              [ release principal (basis spec principal asset) ]
            else (* persona custody: already released at commit *) []
          in
          (Some id, releases @ [ receive counterpart (basis spec counterpart asset) ])))
  in
  { a_index = step.Execution.index; a_deal = deal; a_label = label; a_deltas = deltas }

(* ------------------------------------------------------------------ *)
(* The defector's reach: deals it participates in, closed under
   document supply (a resale cannot complete if its supplier stalls). *)

let touched_deals spec q =
  let seed =
    List.filter_map
      (fun (d : Spec.deal) ->
        if Party.equal d.Spec.left q || Party.equal d.Spec.right q then
          Some d.Spec.id
        else None)
      spec.Spec.deals
  in
  let supplies touched (d : Spec.deal) =
    List.exists
      (fun side ->
        match Spec.commitment_sends d side with
        | Asset.Money _ -> false
        | Asset.Document _ as doc ->
          let p = Spec.commitment_principal d side in
          List.exists
            (fun ((cref : Spec.commitment_ref), e) ->
              List.mem e.Spec.id touched
              && Party.equal (Spec.commitment_principal e cref.Spec.side) p
              && Asset.equal (Spec.commitment_expects e cref.Spec.side) doc)
            (Spec.commitments spec))
      [ Spec.Left; Spec.Right ]
  in
  let rec close touched =
    let more =
      List.filter_map
        (fun (d : Spec.deal) ->
          if List.mem d.Spec.id touched then None
          else if supplies touched d then Some d.Spec.id
          else None)
        spec.Spec.deals
    in
    if more = [] then touched else close (more @ touched)
  in
  close seed

(* Principals that do not play a trusted role — the parties whose
   defection the formalism claims to protect against (a persona is
   trusted by construction; mirror of Harness.defectable_principals). *)
let defectable spec =
  let persona_principals =
    List.map snd (Party.Map.bindings spec.Spec.personas)
  in
  List.filter
    (fun p -> not (List.exists (Party.equal p) persona_principals))
    (Spec.principals spec)

(* ------------------------------------------------------------------ *)
(* Interval computation.                                               *)

let net_of step party =
  List.fold_left
    (fun acc d ->
      if Party.equal d.d_party party then acc + d.d_release - d.d_receive
      else acc)
    0 step.a_deltas

(* Maximal prefix sum over [steps] of [party]'s net position, with the
   number of steps in the maximizing prefix. The empty prefix is legal,
   so the result is >= 0. *)
let max_prefix steps party =
  let _, best, best_len, _ =
    List.fold_left
      (fun (sum, best, best_len, len) step ->
        let sum = sum + net_of step party in
        let len = len + 1 in
        if sum > best then (sum, sum, len, len) else (sum, best, best_len, len))
      (0, 0, 0, 0) steps
  in
  (best, best_len)

let worst_case steps touched party =
  let base = List.filter (fun s -> s.a_deal = None || not (List.mem (Option.get s.a_deal) touched)) steps in
  let base_risk, base_len = max_prefix base party in
  let stalls =
    List.map
      (fun deal ->
        let own = List.filter (fun s -> s.a_deal = Some deal) steps in
        let gain, kept = max_prefix own party in
        (deal, own, gain, kept))
      touched
  in
  let risk = List.fold_left (fun acc (_, _, g, _) -> acc + g) base_risk stalls in
  let kept_steps =
    List.filteri (fun i _ -> i < base_len) base
    @ List.concat_map
        (fun (_, own, _, kept) -> List.filteri (fun i _ -> i < kept) own)
        stalls
    |> List.sort (fun a b -> Int.compare a.a_index b.a_index)
  in
  let stalled =
    List.filter_map
      (fun (deal, own, _, kept) ->
        if kept < List.length own then Some (deal, kept) else None)
      stalls
  in
  (risk, kept_steps, stalled)

let interval_of spec steps defectables party =
  let bound = single_transfer_bound spec party in
  let lo, honest_steps, _ = worst_case steps [] party in
  let honest =
    { w_defector = None; w_at_risk = lo; w_kept = honest_steps; w_stalled = [] }
  in
  let worst =
    List.fold_left
      (fun acc q ->
        if Party.equal q party then acc
        else
          let touched = touched_deals spec q in
          if touched = [] then acc
          else
            let risk, kept, stalled = worst_case steps touched party in
            if risk > acc.w_at_risk then
              { w_defector = Some q; w_at_risk = risk; w_kept = kept; w_stalled = stalled }
            else acc)
      honest defectables
  in
  { i_party = party; i_bound = bound; i_lo = lo; i_hi = worst.w_at_risk; i_witness = worst }

let of_sequence (seq : Execution.sequence) =
  let spec = seq.Execution.spec in
  let steps = List.map (compile_step spec) seq.Execution.steps in
  let defectables = defectable spec in
  let intervals =
    List.map (interval_of spec steps defectables) (Spec.principals spec)
  in
  { spec; steps; intervals }

let pp_interval ppf i =
  Format.fprintf ppf "%s: bound=%a honest=%a worst=%a %s" (Party.name i.i_party)
    Asset.pp_money i.i_bound Asset.pp_money i.i_lo Asset.pp_money i.i_hi
    (if proved i then "proved" else "REFUTED")

let pp ppf t =
  Format.fprintf ppf "@[<v>static exposure (%d steps):@,%a@]"
    (List.length t.steps)
    (Format.pp_print_list pp_interval)
    t.intervals
