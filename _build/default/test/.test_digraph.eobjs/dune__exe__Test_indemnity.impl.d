test/test_indemnity.ml: Action Alcotest Asset Exchange List Party QCheck2 QCheck_alcotest Trust_core Workload
