open Exchange
module Execution = Trust_core.Execution
module Feasibility = Trust_core.Feasibility

type exposure = {
  step : int;
  party : Party.t;
  deal : string;
  side : Spec.side;
  at_risk : Asset.t;
  reason : string;
}

(* One escrow slot per interaction edge: the [side] principal's
   commitment to the deal's (persona-resolved) trusted agent. The
   replay matches raw transfers against these, independently of how the
   synthesizer scheduled them. *)
type slot = {
  s_deal : Spec.deal;
  s_side : Spec.side;
  principal : Party.t;
  agent : Party.t;
  counterpart : Party.t;
  sends : Asset.t;
  expects : Asset.t;
  virtual_commit : bool;  (** principal plays its own agent (§4.2.3) *)
  direct : bool;  (** the counterpart plays the agent: commit = delivery *)
  mutable sent : bool;
  mutable forwarded : bool;
  mutable received : bool;  (** principal holds what it expects *)
}

let slots_of_spec spec =
  List.map
    (fun ((cref : Spec.commitment_ref), (deal : Spec.deal)) ->
      let side = cref.Spec.side in
      let principal = Spec.commitment_principal deal side in
      let agent = Spec.effective_agent spec deal in
      let counterpart =
        Spec.commitment_principal deal (Spec.other_side side)
      in
      let virtual_commit = Party.equal principal agent in
      {
        s_deal = deal;
        s_side = side;
        principal;
        agent;
        counterpart;
        sends = Spec.commitment_sends deal side;
        expects = Spec.commitment_expects deal side;
        virtual_commit;
        direct = Party.equal counterpart agent;
        sent = virtual_commit;
        forwarded = false;
        received = false;
      })
    (Spec.commitments spec)

let other_slot slots slot =
  List.find
    (fun s ->
      String.equal s.s_deal.Spec.id slot.s_deal.Spec.id
      && s.s_side = Spec.other_side slot.s_side)
    slots

let find_slot slots pred = List.find_opt pred slots

let verify (seq : Execution.sequence) =
  let spec = seq.Execution.spec in
  let slots = slots_of_spec spec in
  let exposures = ref [] in
  let expose step party slot reason =
    exposures :=
      {
        step;
        party;
        deal = slot.s_deal.Spec.id;
        side = slot.s_side;
        at_risk = slot.sends;
        reason;
      }
      :: !exposures
  in
  let deliver slot =
    slot.forwarded <- true;
    (other_slot slots slot).received <- true
  in
  let replay (step : Execution.step) =
    match step.Execution.action with
    | Action.Notify _ -> ()
    | Action.Do tr when Party.equal tr.Action.source tr.Action.target -> ()
    | Action.Do tr -> (
      let commit_match s =
        (not s.sent)
        && Party.equal tr.Action.source s.principal
        && Party.equal tr.Action.target s.agent
        && Asset.equal tr.Action.asset s.sends
      in
      let forward_match s =
        s.sent && (not s.forwarded)
        && Party.equal tr.Action.source s.agent
        && Party.equal tr.Action.target s.counterpart
        && Asset.equal tr.Action.asset s.sends
      in
      match find_slot slots commit_match with
      | Some slot ->
        slot.sent <- true;
        (* Handing the asset to a counterpart the principal declared
           direct trust in counts as delivery (§4.2.3). *)
        if slot.direct then deliver slot
      | None -> (
        match find_slot slots forward_match with
        | Some slot ->
          deliver slot;
          let other = other_slot slots slot in
          let secured = other.sent && not other.forwarded in
          if not (slot.received || secured) then
            expose step.Execution.index slot.principal slot
              (Format.asprintf
                 "%s released %a to %s while %s's %a is neither received \
                  nor escrowed"
                 (Party.name slot.agent) Asset.pp slot.sends
                 (Party.name slot.counterpart)
                 (Party.name slot.counterpart)
                 Asset.pp other.sends)
        | None ->
          exposures :=
            {
              step = step.Execution.index;
              party = tr.Action.source;
              deal = "-";
              side = Spec.Left;
              at_risk = tr.Action.asset;
              reason =
                Format.asprintf
                  "transfer %a matches no pending commitment or forward"
                  Action.pp step.Execution.action;
            }
            :: !exposures))
    | Action.Undo tr -> (
      let refund_match s =
        s.sent && (not s.forwarded) && (not s.virtual_commit)
        && Party.equal tr.Action.source s.principal
        && Party.equal tr.Action.target s.agent
        && Asset.equal tr.Action.asset s.sends
      in
      match find_slot slots refund_match with
      | Some slot -> slot.sent <- false
      | None ->
        exposures :=
          {
            step = step.Execution.index;
            party = tr.Action.target;
            deal = "-";
            side = Spec.Left;
            at_risk = tr.Action.asset;
            reason =
              Format.asprintf "undo %a matches no escrowed commitment"
                Action.pp step.Execution.action;
          }
          :: !exposures)
  in
  List.iter replay seq.Execution.steps;
  List.iter
    (fun slot ->
      if not slot.received then
        if slot.forwarded then
          expose 0 slot.principal slot
            (Format.asprintf
               "gave %a but received nothing by termination" Asset.pp
               slot.sends)
        else if slot.sent && not slot.virtual_commit then
          expose 0 slot.principal slot
            (Format.asprintf
               "%a still escrowed with %s at termination — neither \
                completed nor returned"
               Asset.pp slot.sends (Party.name slot.agent)))
    slots;
  match List.rev !exposures with [] -> Ok () | exposures -> Error exposures

let verify_spec ?(obs = Trust_obs.Obs.null) ?parent ?shared spec =
  let module Obs = Trust_obs.Obs in
  Obs.with_span obs ?parent ~phase:"verify" "verify" (fun h ->
      let analysis = Feasibility.analyze ?shared spec in
      let result =
        match analysis.Feasibility.sequence with
        | None -> Ok ()
        | Some seq -> verify seq
      in
      if Obs.enabled obs then begin
        (match analysis.Feasibility.sequence with
        | Some seq -> Obs.attr obs h "steps" (Obs.Int (List.length seq.Trust_core.Execution.steps))
        | None -> Obs.attr obs h "vacuous" (Obs.Bool true));
        match result with
        | Ok () -> Obs.attr obs h "safe" (Obs.Bool true)
        | Error exposures ->
          Obs.attr obs h "safe" (Obs.Bool false);
          Obs.attr obs h "exposures" (Obs.Int (List.length exposures))
      end;
      result)

let pp_exposure ppf e =
  let where =
    if e.step = 0 then "at termination" else Printf.sprintf "step %d" e.step
  in
  if String.equal e.deal "-" then
    Format.fprintf ppf "%s: %s: %s" where (Party.name e.party) e.reason
  else
    Format.fprintf ppf "%s: %s exposed on %a (%a at risk): %s" where
      (Party.name e.party) Spec.pp_ref
      { Spec.deal = e.deal; side = e.side }
      Asset.pp e.at_risk e.reason

let explain exposures =
  let parties =
    List.sort_uniq String.compare
      (List.map (fun e -> Party.name e.party) exposures)
  in
  String.concat "\n"
    (List.concat_map
       (fun name ->
         let own =
           List.filter (fun e -> String.equal (Party.name e.party) name)
             exposures
         in
         Printf.sprintf "party %s is exposed:" name
         :: List.map (fun e -> Format.asprintf "  %a" pp_exposure e) own)
       parties)
