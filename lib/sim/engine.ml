open Exchange
module Indemnity = Trust_core.Indemnity
module Obs = Trust_obs.Obs

type config = {
  latency : int;
  deadline : int;
  max_events : int;
  broadcast : bool;
  drop : (int -> Action.t -> bool) option;
}

let default_config =
  { latency = 1; deadline = 1_000; max_events = 100_000; broadcast = false; drop = None }

type delivery = { at : int; action : Action.t }

type result = {
  state : State.t;
  log : delivery list;
  holdings : (Party.t * Asset.Bag.t) list;
  stalled : (Party.t * Action.t) list;
  events : int;
}

let initial_endowment spec ~deposits party =
  if Party.is_trusted party then Asset.Bag.empty
  else begin
    let add_deal_side bag (cref, d) =
      if Party.equal (Spec.commitment_principal d cref.Spec.side) party then begin
        let asset = Spec.commitment_sends d cref.Spec.side in
        match asset with
        | Asset.Money _ -> Asset.Bag.add asset bag
        | Asset.Document _ ->
          (* A document acquired through another deal is not endowed:
             the reselling broker starts without it. *)
          let acquires_elsewhere =
            List.exists
              (fun (cref', d') ->
                Party.equal (Spec.commitment_principal d' cref'.Spec.side) party
                && Asset.equal (Spec.commitment_expects d' cref'.Spec.side) asset)
              (Spec.commitments spec)
          in
          if acquires_elsewhere then bag else Asset.Bag.add asset bag
      end
      else bag
    in
    let bag = List.fold_left add_deal_side Asset.Bag.empty (Spec.commitments spec) in
    List.fold_left
      (fun bag offer ->
        if Party.equal offer.Indemnity.offered_by party then
          Asset.Bag.add (Asset.money offer.Indemnity.amount) bag
        else bag)
      bag deposits
  end

type event = Deliver of Action.t | Fire_expiry of string | Fire_deadline

(* Best-effort deal attribution for trace events: the first deal one of
   whose commitments sends or expects the transferred asset. Only
   evaluated when a trace is attached — never on the hot path. *)
let owning_deal spec action =
  let transfer =
    match action with
    | Action.Do tr | Action.Undo tr -> Some tr
    | Action.Notify _ -> None
  in
  match transfer with
  | None -> None
  | Some tr ->
    List.find_map
      (fun (d : Spec.deal) ->
        let matches side =
          Asset.equal (Spec.commitment_sends d side) tr.Action.asset
          || Asset.equal (Spec.commitment_expects d side) tr.Action.asset
        in
        if matches Spec.Left || matches Spec.Right then Some d.Spec.id else None)
      spec.Spec.deals

let action_attrs spec ~at action =
  let base = [ ("at", Obs.Int at); ("action", Obs.Str (Action.to_string action)) ] in
  match owning_deal spec action with
  | Some deal -> ("deal", Obs.Str deal) :: base
  | None -> base

(* Asset flow of an action: (debited party, credited party, asset).
   Notifications carry nothing. *)
let flow = function
  | Action.Do tr -> Some (tr.Action.source, tr.Action.target, tr.Action.asset)
  | Action.Undo tr -> Some (tr.Action.target, tr.Action.source, tr.Action.asset)
  | Action.Notify _ -> None

let run ?(config = default_config) ?(obs = Obs.null) ?(span = Obs.none) spec ~deposits ~behaviors =
  let queue = Event_queue.create () in
  let holdings : (string, Asset.Bag.t) Hashtbl.t = Hashtbl.create 16 in
  let bag_of party =
    Option.value ~default:Asset.Bag.empty (Hashtbl.find_opt holdings (Party.name party))
  in
  let set_bag party bag = Hashtbl.replace holdings (Party.name party) bag in
  let behavior_of party =
    List.find_opt (fun b -> Party.equal (Behavior.party b) party) behaviors
  in
  List.iter
    (fun b ->
      let party = Behavior.party b in
      set_bag party (initial_endowment spec ~deposits party))
    behaviors;
  let state = ref State.empty in
  let log = ref [] in
  let pending : (Party.t * Action.t) list ref = ref [] in
  let events = ref 0 in
  let performed = ref 0 in
  (* Perform an action on behalf of its performer: debit now, deliver
     after the latency (or lose it in transit under fault injection —
     the asset silently returns to the sender). Insufficient assets park
     the action. *)
  let rec perform now party action =
    let dropped () =
      let seq = !performed in
      incr performed;
      match config.drop with
      | Some drop ->
        let lost = drop seq action in
        if lost && Obs.enabled obs then
          Obs.event obs span "drop" ~attrs:(("seq", Obs.Int seq) :: action_attrs spec ~at:now action);
        lost
      | None -> false
    in
    match flow action with
    | None -> if not (dropped ()) then
        Event_queue.push queue ~time:(now + config.latency) (Deliver action)
    | Some (debit, _credit, asset) -> (
      match Asset.Bag.remove asset (bag_of debit) with
      | Some rest ->
        set_bag debit rest;
        if dropped () then
          (* lost in transit: the courier returns it *)
          set_bag debit (Asset.Bag.add asset (bag_of debit))
        else Event_queue.push queue ~time:(now + config.latency) (Deliver action)
      | None ->
        if Obs.enabled obs then
          Obs.event obs span "park"
            ~attrs:(("party", Obs.Str (Party.name party)) :: action_attrs spec ~at:now action);
        pending := !pending @ [ (party, action) ])
  and retry_pending now party =
    let mine, others = List.partition (fun (p, _) -> Party.equal p party) !pending in
    pending := others;
    if mine <> [] && Obs.enabled obs then
      Obs.event obs span "retry"
        ~attrs:
          [ ("party", Obs.Str (Party.name party)); ("parked", Obs.Int (List.length mine));
            ("at", Obs.Int now) ];
    List.iter (fun (p, action) -> perform now p action) mine
  and observe now party obs =
    match behavior_of party with
    | None -> ()
    | Some b ->
      let reactions = Behavior.react b obs in
      List.iter (perform now party) reactions
  in
  (* Time zero: everyone starts; per-deal deadlines are armed. *)
  List.iter (fun b -> observe 0 (Behavior.party b) Behavior.Start) behaviors;
  List.iter
    (fun d ->
      match d.Spec.deadline with
      | Some dl -> Event_queue.push queue ~time:dl (Fire_expiry d.Spec.id)
      | None -> ())
    spec.Spec.deals;
  Event_queue.push queue ~time:config.deadline Fire_deadline;
  let rec drain () =
    if !events >= config.max_events then ()
    else
      match Event_queue.pop queue with
      | None -> ()
      | Some (now, Fire_expiry deal_id) ->
        incr events;
        if Obs.enabled obs then
          Obs.event obs span "expire"
            ~attrs:[ ("deal", Obs.Str deal_id); ("at", Obs.Int now) ];
        List.iter (fun b -> observe now (Behavior.party b) (Behavior.Expired deal_id)) behaviors;
        drain ()
      | Some (now, Fire_deadline) ->
        incr events;
        if Obs.enabled obs then Obs.event obs span "deadline" ~attrs:[ ("at", Obs.Int now) ];
        List.iter (fun b -> observe now (Behavior.party b) Behavior.Deadline) behaviors;
        drain ()
      | Some (now, Deliver action) ->
        incr events;
        if Obs.enabled obs then
          Obs.event obs span "deliver" ~attrs:(action_attrs spec ~at:now action);
        state := State.record action !state;
        log := { at = now; action } :: !log;
        (match flow action with
        | Some (_, credit, asset) ->
          set_bag credit (Asset.Bag.add asset (bag_of credit));
          retry_pending now credit
        | None -> ());
        (if config.broadcast then
           List.iter (fun b -> observe now (Behavior.party b) (Behavior.Incoming action)) behaviors
         else observe now (Action.beneficiary action) (Behavior.Incoming action));
        drain ()
  in
  drain ();
  {
    state = !state;
    log = List.rev !log;
    holdings = List.map (fun b -> let p = Behavior.party b in (p, bag_of p)) behaviors;
    stalled = !pending;
    events = !events;
  }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>simulation: %d events, %d deliveries, %d stalled" r.events
    (List.length r.log) (List.length r.stalled);
  List.iter (fun d -> Format.fprintf ppf "@,  t=%-4d %a" d.at Action.pp d.action) r.log;
  List.iter
    (fun (p, bag) -> Format.fprintf ppf "@,  final %s: %a" (Party.name p) Asset.Bag.pp bag)
    r.holdings;
  Format.fprintf ppf "@]"
