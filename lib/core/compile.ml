(* Compiled protocol plans.

   A plan flattens everything the engine hot path needs into integer-
   indexed immutable arrays, built once at synthesis time and shared by
   every run (and every domain) that executes the same cached protocol:

   - every action any behaviour can ever emit, interned into one table
     (closed under Undo-of-every-Do, so bounce returns and deadline
     refunds are ids too), with per-action flow, beneficiary and
     asset tables;
   - each party's script as a flat (condition id, action id) array,
     escrow automata as per-deal slot tables, persona duties as
     per-deal id triples;
   - initial endowments, per-deal expiry times, and the §5 audit and
     exposure lookup tables (send/receive candidates per commitment,
     custody-holder flags, per-asset prices, single-transfer bounds).

   The runtime that interprets these plans without re-elaboration lives
   in [Trust_sim.Hotpath]; [Trust_sim.Harness.behaviors_for] remains
   the interpreted oracle it is property-tested against. *)

open Exchange

type step = { cond : int;  (** action id to wait for; [-1] fires immediately *) act : int }

type deal_slot = {
  sl_deal : int;  (** index into the spec's deal list *)
  sl_left_in : int;  (** [Do] of the Left side transfer *)
  sl_right_in : int;
  sl_left_back : int;  (** [Undo] counterparts for deadline returns *)
  sl_right_back : int;
  sl_forwards : int array;  (** completion forwards, documents before money *)
}

type deposit_slot = {
  dp_in : int;  (** [Do] of the §6 deposit transfer *)
  dp_back : int;  (** its [Undo]: the refund *)
  dp_forfeit : int;  (** [Do] forfeiting the amount to the protected owner *)
  dp_deal : int;  (** deal index of the covered piece *)
  dp_left : bool;  (** covered piece is the deal's Left side *)
}

type escrow = {
  es_atomic : bool;
  es_deals : deal_slot array;  (** mediated deals, spec order *)
  es_deposits : deposit_slot array;  (** held deposits, offer order *)
  es_notifies : step array;  (** notification steps of the agent's script *)
}

type persona_deal = {
  pc_deal : int;
  pc_incoming : int;  (** [Do] of the counterparty's transfer into me *)
  pc_return : int;  (** its [Undo] *)
  pc_forward : int;  (** [Do] of my own counterpart transfer *)
}

type role =
  | Script of { steps : step array; persona : persona_deal array }
  | Escrow of escrow

type commit_check = {
  cc_send : int;  (** the principal's visible send for this commitment *)
  cc_recv : int array;  (** candidate deliveries that complete it *)
}

type judge = Judge_principal of int * commit_check array | Judge_trusted of int

type t = {
  spec : Spec.t;  (** the split spec the protocol was synthesized from *)
  lockstep : bool;  (** lockstep runs broadcast deliveries *)
  n_deals : int;
  (* parties *)
  parties : Party.t array;  (** [Spec.parties] order, extended by action endpoints *)
  name_of : int array;  (** party index -> name index (holdings/ledger key) *)
  n_names : int;
  pslot_of_name : int array;  (** name index -> principal slot, [-1] none *)
  n_principals : int;
  (* actions *)
  actions : Action.t array;
  n_actions : int;
  act_kind : int array;  (** 0 Do, 1 Undo, 2 Notify *)
  act_debit : int array;  (** debited party index, [-1] for notifications *)
  act_credit : int array;
  act_doc : int array;  (** document id, [-1] for money/notify *)
  act_amount : int array;  (** money amount, [0] otherwise *)
  act_beneficiary : int array;
  act_undo : int array;  (** id of the [Undo] counterpart of a [Do], [-1] *)
  docs : string array;
  n_docs : int;
  (* behaviours, [Harness.behaviors_for] order *)
  roles : (int * role) array;  (** (party index, role) *)
  behavior_of : int array;  (** party index -> roles index, [-1] *)
  (* engine scaffolding *)
  endow_balance : int array;  (** per name index *)
  endow_docs : int array array;  (** per name index, per doc id *)
  expiries : (int * int) array;  (** (deal index, expiry tick), spec order *)
  (* audit *)
  judged : judge array;
  (* exposure *)
  deposit_expect : int array;  (** per action id: §6 deposit occurrences *)
  price_src : int array;  (** value of the asset to the releasing party *)
  price_tgt : int array;
  custody_if_had : bool array;  (** target holds in custody, sender had custody *)
  custody_if_not : bool array;
  src_principal : bool array;
  tgt_trusted : bool array;
  bound : int array;  (** per principal slot: §5 single-transfer bound *)
}

let party_index t party =
  let n = Array.length t.parties in
  let rec go i =
    if i >= n then -1 else if Party.equal t.parties.(i) party then i else go (i + 1)
  in
  go 0

(* The §4.2.4 visible send of a principal's commitment (Outcomes.send_transfer). *)
let send_transfer spec d side =
  let principal = Spec.commitment_principal d side in
  let agent = Spec.effective_agent spec d in
  let target =
    if Party.equal agent principal then Spec.commitment_principal d (Spec.other_side side)
    else agent
  in
  Action.{ source = principal; target; asset = Spec.commitment_sends d side }

let compile ~lockstep ~shared ?plan ~price spec protocol =
  if not (Party.Map.is_empty spec.Spec.overrides) then
    invalid_arg "Compile.compile: acceptability overrides are not compilable";
  let deals = Array.of_list spec.Spec.deals in
  let n_deals = Array.length deals in
  let deal_index id =
    let rec go i =
      if i >= n_deals then -1
      else if String.equal deals.(i).Spec.id id then i
      else go (i + 1)
    in
    go 0
  in
  (* -- party interning -- *)
  let party_tbl : (Party.t, int) Hashtbl.t = Hashtbl.create 16 in
  let party_rev = ref [] in
  let n_parties = ref 0 in
  let party_id p =
    match Hashtbl.find_opt party_tbl p with
    | Some i -> i
    | None ->
      let i = !n_parties in
      Hashtbl.replace party_tbl p i;
      party_rev := p :: !party_rev;
      incr n_parties;
      i
  in
  List.iter (fun p -> ignore (party_id p)) (Spec.parties spec);
  (* -- action interning -- *)
  let act_tbl : (Action.t, int) Hashtbl.t = Hashtbl.create 64 in
  let act_rev = ref [] in
  let n_acts = ref 0 in
  let act_id a =
    match Hashtbl.find_opt act_tbl a with
    | Some i -> i
    | None ->
      let i = !n_acts in
      Hashtbl.replace act_tbl a i;
      act_rev := a :: !act_rev;
      incr n_acts;
      (match a with
      | Action.Do tr | Action.Undo tr ->
        ignore (party_id tr.Action.source);
        ignore (party_id tr.Action.target)
      | Action.Notify { agent; informed } ->
        ignore (party_id agent);
        ignore (party_id informed));
      i
  in
  let step_of (s : Protocol.scripted_step) =
    let cond =
      match s.Protocol.condition with
      | Protocol.Now -> -1
      | Protocol.Observed a -> act_id a
    in
    { cond; act = act_id s.Protocol.action }
  in
  let offers = match plan with Some p -> p.Indemnity.offers | None -> [] in
  let deposit_actions = match plan with Some p -> Indemnity.deposits p | None -> [] in
  let distributed_steps party =
    List.filter_map
      (fun action ->
        if Party.equal (Action.performer action) party then
          Some Protocol.{ condition = Now; action }
        else None)
      deposit_actions
  in
  let script_for party =
    if lockstep then Protocol.script_of protocol party
    else distributed_steps party @ Protocol.script_of protocol party
  in
  let deposit_transfer (o : Indemnity.offer) =
    Action.
      {
        source = o.Indemnity.offered_by;
        target = o.Indemnity.via;
        asset = Asset.money o.Indemnity.amount;
      }
  in
  (* -- behaviours, principals first (Harness.behaviors_for order) -- *)
  let principal_role party =
    let steps = Array.of_list (List.map step_of (script_for party)) in
    let plays_a_role =
      Party.Map.exists (fun _ p -> Party.equal p party) spec.Spec.personas
    in
    let persona =
      if not plays_a_role then [||]
      else begin
        let entries = ref [] in
        Array.iteri
          (fun i d ->
            if Spec.persona_of spec d.Spec.via = Some party then begin
              let my_side = if Party.equal d.Spec.left party then Spec.Left else Spec.Right in
              let other = Spec.other_side my_side in
              let counterparty = Spec.commitment_principal d other in
              let incoming =
                Action.
                  { source = counterparty; target = party; asset = Spec.commitment_sends d other }
              in
              let forward =
                Action.
                  { source = party; target = counterparty; asset = Spec.commitment_sends d my_side }
              in
              entries :=
                {
                  pc_deal = i;
                  pc_incoming = act_id (Action.Do incoming);
                  pc_return = act_id (Action.Undo incoming);
                  pc_forward = act_id (Action.Do forward);
                }
                :: !entries
            end)
          deals;
        Array.of_list (List.rev !entries)
      end
    in
    Script { steps; persona }
  in
  let trusted_role party =
    let notifies =
      List.filter
        (fun s -> match s.Protocol.action with Action.Notify _ -> true | _ -> false)
        (Protocol.script_of protocol party)
    in
    let coordinates =
      List.exists (fun (_, agent) -> Party.equal agent party) (Sequencing.coordinated_bundles spec)
    in
    let mediated = ref [] in
    Array.iteri
      (fun i d ->
        if Party.equal d.Spec.via party then begin
          let side_transfer side =
            Action.
              {
                source = Spec.commitment_principal d side;
                target = d.Spec.via;
                asset = Spec.commitment_sends d side;
              }
          in
          let left_tr = side_transfer Spec.Left and right_tr = side_transfer Spec.Right in
          let to_left =
            Action.{ source = d.Spec.via; target = d.Spec.left; asset = d.Spec.right_sends }
          in
          let to_right =
            Action.{ source = d.Spec.via; target = d.Spec.right; asset = d.Spec.left_sends }
          in
          let docs, money =
            List.partition (fun tr -> Asset.is_document tr.Action.asset) [ to_left; to_right ]
          in
          let forwards = List.map (fun tr -> act_id (Action.Do tr)) (docs @ money) in
          mediated :=
            {
              sl_deal = i;
              sl_left_in = act_id (Action.Do left_tr);
              sl_right_in = act_id (Action.Do right_tr);
              sl_left_back = act_id (Action.Undo left_tr);
              sl_right_back = act_id (Action.Undo right_tr);
              sl_forwards = Array.of_list forwards;
            }
            :: !mediated
        end)
      deals;
    let es_deals = Array.of_list (List.rev !mediated) in
    let es_deposits =
      List.filter_map
        (fun (o : Indemnity.offer) ->
          if Party.equal o.Indemnity.via party then begin
            let tr = deposit_transfer o in
            let forfeit =
              Action.
                {
                  source = party;
                  target = o.Indemnity.owner;
                  asset = Asset.money o.Indemnity.amount;
                }
            in
            Some
              {
                dp_in = act_id (Action.Do tr);
                dp_back = act_id (Action.Undo tr);
                dp_forfeit = act_id (Action.Do forfeit);
                dp_deal = deal_index o.Indemnity.piece.Spec.deal;
                dp_left = o.Indemnity.piece.Spec.side = Spec.Left;
              }
          end
          else None)
        offers
      |> Array.of_list
    in
    let atomic = coordinates || ((not shared) && Array.length es_deals > 1) in
    Escrow
      {
        es_atomic = atomic;
        es_deals;
        es_deposits;
        es_notifies = Array.of_list (List.map step_of notifies);
      }
  in
  let principals = Spec.principals spec in
  let roles =
    List.map (fun p -> (party_id p, principal_role p)) principals
    @ List.filter_map
        (fun p ->
          match Spec.persona_of spec p with
          | Some _ -> None
          | None -> Some (party_id p, trusted_role p))
        (Spec.trusted_agents spec)
    |> Array.of_list
  in
  (* -- audit candidate actions, then close the table under Undo -- *)
  let judged_src =
    List.filter
      (fun party -> not (Party.is_trusted party && Spec.persona_of spec party <> None))
      (Spec.parties spec)
  in
  let commit_checks party =
    List.filter_map
      (fun (cref, d) ->
        let side = cref.Spec.side in
        if not (Party.equal (Spec.commitment_principal d side) party) then None
        else begin
          let send = send_transfer spec d side in
          let expects = Spec.commitment_expects d side in
          let counterparty = Spec.commitment_principal d (Spec.other_side side) in
          let recv src = Action.Do Action.{ source = src; target = party; asset = expects } in
          Some
            {
              cc_send = act_id (Action.Do send);
              cc_recv =
                Array.of_list
                  (List.map recv [ Spec.effective_agent spec d; d.Spec.via; counterparty ]
                  |> List.map act_id);
            }
        end)
      (Spec.commitments spec)
    |> Array.of_list
  in
  let judged =
    Array.of_list
      (List.map
         (fun party ->
           if Party.is_trusted party then Judge_trusted (party_id party)
           else Judge_principal (party_id party, commit_checks party))
         judged_src)
  in
  List.iter (fun a -> ignore (act_id a)) deposit_actions;
  let do_snapshot = List.rev !act_rev in
  List.iter
    (fun a -> match a with Action.Do tr -> ignore (act_id (Action.Undo tr)) | _ -> ())
    do_snapshot;
  (* -- freeze tables -- *)
  let actions = Array.of_list (List.rev !act_rev) in
  let n_actions = Array.length actions in
  let parties = Array.of_list (List.rev !party_rev) in
  let n_parties = Array.length parties in
  let doc_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let doc_rev = ref [] in
  let n_docs = ref 0 in
  let doc_id d =
    match Hashtbl.find_opt doc_tbl d with
    | Some i -> i
    | None ->
      let i = !n_docs in
      Hashtbl.replace doc_tbl d i;
      doc_rev := d :: !doc_rev;
      incr n_docs;
      i
  in
  Array.iter
    (function
      | Action.Do tr | Action.Undo tr -> (
        match tr.Action.asset with Asset.Document d -> ignore (doc_id d) | Asset.Money _ -> ())
      | Action.Notify _ -> ())
    actions;
  (* endowment documents may never move (stalled specs): intern them too *)
  List.iter
    (fun (cref, d) ->
      match Spec.commitment_sends d cref.Spec.side with
      | Asset.Document name -> ignore (doc_id name)
      | Asset.Money _ -> ())
    (Spec.commitments spec);
  let docs = Array.of_list (List.rev !doc_rev) in
  let n_docs = Array.length docs in
  (* -- name table (engine holdings and exposure ledgers key by name) -- *)
  let name_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let n_names = ref 0 in
  let name_of =
    Array.map
      (fun p ->
        let name = Party.name p in
        match Hashtbl.find_opt name_tbl name with
        | Some i -> i
        | None ->
          let i = !n_names in
          Hashtbl.replace name_tbl name i;
          incr n_names;
          i)
      parties
  in
  let n_names = !n_names in
  let n_principals = List.length principals in
  let pslot_of_name = Array.make n_names (-1) in
  List.iteri
    (fun slot p ->
      let name = name_of.(party_id p) in
      if pslot_of_name.(name) < 0 then pslot_of_name.(name) <- slot)
    principals;
  (* -- per-action tables -- *)
  let act_kind = Array.make n_actions 2 in
  let act_debit = Array.make n_actions (-1) in
  let act_credit = Array.make n_actions (-1) in
  let act_doc = Array.make n_actions (-1) in
  let act_amount = Array.make n_actions 0 in
  let act_beneficiary = Array.make n_actions (-1) in
  let act_undo = Array.make n_actions (-1) in
  let price_src = Array.make n_actions 0 in
  let price_tgt = Array.make n_actions 0 in
  let custody_if_had = Array.make n_actions false in
  let custody_if_not = Array.make n_actions false in
  let src_principal = Array.make n_actions false in
  let tgt_trusted = Array.make n_actions false in
  (* Exposure's custody-holder predicate, precomputed for both values of
     [src_had_custody] (see Trust_sim.Exposure.custody_holder_for). *)
  let custody_holder ~src ~src_had_custody holder asset =
    Party.is_trusted holder
    || (Party.is_principal holder
       && List.exists
            (fun (cref, d) ->
              Party.equal (Spec.effective_agent spec d) holder
              && Asset.equal (Spec.commitment_sends d cref.Spec.side) asset
              && (not (Party.equal (Spec.commitment_principal d cref.Spec.side) holder))
              && (not
                    (Party.equal
                       (Spec.commitment_principal d (Spec.other_side cref.Spec.side))
                       holder))
              && (Party.equal (Spec.commitment_principal d cref.Spec.side) src
                 || src_had_custody))
            (Spec.commitments spec))
  in
  Array.iteri
    (fun i action ->
      match action with
      | Action.Notify { agent; informed } ->
        act_kind.(i) <- 2;
        act_beneficiary.(i) <- party_id informed;
        ignore agent
      | Action.Do tr | Action.Undo tr ->
        let is_do = match action with Action.Do _ -> true | _ -> false in
        act_kind.(i) <- (if is_do then 0 else 1);
        let source = party_id tr.Action.source and target = party_id tr.Action.target in
        let debit, credit = if is_do then (source, target) else (target, source) in
        act_debit.(i) <- debit;
        act_credit.(i) <- credit;
        act_beneficiary.(i) <- (if is_do then target else source);
        (match tr.Action.asset with
        | Asset.Document d -> act_doc.(i) <- doc_id d
        | Asset.Money m -> act_amount.(i) <- m);
        (* exposure views the releasing side as src: Do source / Undo target *)
        let xsrc = parties.(debit) and xtgt = parties.(credit) in
        price_src.(i) <- price xsrc tr.Action.asset;
        price_tgt.(i) <- price xtgt tr.Action.asset;
        custody_if_had.(i) <- custody_holder ~src:xsrc ~src_had_custody:true xtgt tr.Action.asset;
        custody_if_not.(i) <- custody_holder ~src:xsrc ~src_had_custody:false xtgt tr.Action.asset;
        src_principal.(i) <- Party.is_principal xsrc;
        tgt_trusted.(i) <- Party.is_trusted xtgt)
    actions;
  Array.iter
    (function
      | Action.Do tr as a ->
        act_undo.(Hashtbl.find act_tbl a) <- Hashtbl.find act_tbl (Action.Undo tr)
      | Action.Undo _ | Action.Notify _ -> ())
    actions;
  let deposit_expect = Array.make n_actions 0 in
  List.iter
    (fun (o : Indemnity.offer) ->
      let i = Hashtbl.find act_tbl (Action.Do (deposit_transfer o)) in
      deposit_expect.(i) <- deposit_expect.(i) + 1)
    offers;
  (* -- behaviours index -- *)
  let behavior_of = Array.make n_parties (-1) in
  Array.iteri (fun i (p, _) -> behavior_of.(p) <- i) roles;
  (* -- endowments (Engine.initial_endowment, per behaviour party) -- *)
  let endow_balance = Array.make n_names 0 in
  let endow_docs = Array.init n_names (fun _ -> Array.make n_docs 0) in
  Array.iter
    (fun (pi, _) ->
      let party = parties.(pi) in
      let name = name_of.(pi) in
      endow_balance.(name) <- 0;
      Array.fill endow_docs.(name) 0 n_docs 0;
      if not (Party.is_trusted party) then begin
        List.iter
          (fun (cref, d) ->
            if Party.equal (Spec.commitment_principal d cref.Spec.side) party then begin
              match Spec.commitment_sends d cref.Spec.side with
              | Asset.Money m -> endow_balance.(name) <- endow_balance.(name) + m
              | Asset.Document doc ->
                let asset = Asset.Document doc in
                let acquires_elsewhere =
                  List.exists
                    (fun (cref', d') ->
                      Party.equal (Spec.commitment_principal d' cref'.Spec.side) party
                      && Asset.equal (Spec.commitment_expects d' cref'.Spec.side) asset)
                    (Spec.commitments spec)
                in
                if not acquires_elsewhere then begin
                  let di = doc_id doc in
                  endow_docs.(name).(di) <- endow_docs.(name).(di) + 1
                end
            end)
          (Spec.commitments spec);
        List.iter
          (fun (o : Indemnity.offer) ->
            if Party.equal o.Indemnity.offered_by party then
              endow_balance.(name) <- endow_balance.(name) + o.Indemnity.amount)
          offers
      end)
    roles;
  (* -- deadlines, bounds -- *)
  let expiries = ref [] in
  Array.iteri
    (fun i d ->
      match d.Spec.deadline with Some dl -> expiries := (i, dl) :: !expiries | None -> ())
    deals;
  let bound =
    Array.of_list
      (List.map
         (fun party ->
           List.fold_left
             (fun acc (cref, d) ->
               if Party.equal (Spec.commitment_principal d cref.Spec.side) party then
                 max acc (price party (Spec.commitment_sends d cref.Spec.side))
               else acc)
             0 (Spec.commitments spec))
         principals)
  in
  {
    spec;
    lockstep;
    n_deals;
    parties;
    name_of;
    n_names;
    pslot_of_name;
    n_principals;
    actions;
    n_actions;
    act_kind;
    act_debit;
    act_credit;
    act_doc;
    act_amount;
    act_beneficiary;
    act_undo;
    docs;
    n_docs;
    roles;
    behavior_of;
    endow_balance;
    endow_docs;
    expiries = Array.of_list (List.rev !expiries);
    judged;
    deposit_expect;
    price_src;
    price_tgt;
    custody_if_had;
    custody_if_not;
    src_principal;
    tgt_trusted;
    bound;
  }
