(** Lint diagnostics: stable codes, severities, locations, renderers.

    Every finding the analyzer can produce carries a stable [TL0xx]
    code so fixtures, CI gates and editors can match on it, an optional
    source span threaded from the DSL, and free-form notes (used for
    the stuck-kernel counterexample of infeasible specs). *)

type severity = Error | Warning | Info

type code =
  | Unused_party  (** TL001: declared party referenced by nothing *)
  | Dead_asset  (** TL002: broker acquires a document it never resells *)
  | Unbacked_split  (** TL003: split edge with no indemnity backing it *)
  | Redundant_priority  (** TL004: priority that orders nothing *)
  | Contradictory_priorities
      (** TL005: two or more red edges on one conjunction pre-empt each
          other — no commitment of the bundle can go first *)
  | Unreachable_acceptance
      (** TL006: sequencing graph is stuck and no indemnity rescue
          exists — no acceptable final state is reachable *)
  | Vacuous_intermediary
      (** TL007: direct-trust persona whose removal leaves the spec
          feasible — the declared trust buys nothing *)
  | Zero_value_leg  (** TL008: a deal leg pays $0.00 *)
  | Rescuable_infeasibility
      (** TL009: stuck as written, but an indemnity rescue exists *)
  | Parse_error  (** TL010: lexer/parser failure (exit code 2) *)
  | Elaboration_error  (** TL011: name-resolution/validation failure *)
  | Unsafe_sequence
      (** TL012: the safety verifier found an exposure in a synthesized
          execution sequence (should never fire; self-check) *)
  | Double_spend
      (** TL013: the same provenance asset is promised into two or more
          concurrent deals while only one copy exists *)
  | Over_pledged_indemnity
      (** TL014: one principal's splits pledge more combined indemnity
          than its counterparties' at-risk value can ever reach *)
  | Deadline_race
      (** TL015: a deal's [within n] window is shorter than the
          synthesized escrow span — release races the expiry *)
  | Unprovable_bound
      (** TL016: the abstract interpreter cannot prove the §5
          single-transfer bound for some principal *)
  | Counterexample_schedule
      (** TL017: the maximizing interleaving refuting a bound, attached
          as an informational note alongside TL016 *)

val code_id : code -> string
(** The stable identifier, e.g. [Unused_party] → ["TL001"]. *)

val code_name : code -> string
(** Short kebab-case rule name, e.g. ["unused-party"]. *)

val default_severity : code -> severity
val all_codes : code list

val help_uri : code -> string
(** Stable documentation link for a rule — the docs/LINT.md anchor the
    SARIF [rules\[\]] metadata points editors at. *)

type t = {
  code : code;
  severity : severity;
  message : string;
  file : string option;
  loc : Trust_lang.Loc.t option;
  notes : string list;  (** indented under the message in human output *)
}

val make :
  ?severity:severity ->
  ?file:string ->
  ?loc:Trust_lang.Loc.t ->
  ?notes:string list ->
  code ->
  string ->
  t
(** [make code message]; [severity] defaults to {!default_severity}. *)

val compare : t -> t -> int
(** Deterministic report order: file, then location, then code, then
    message. Diagnostics without a location sort after located ones of
    the same file. *)

val sort : t list -> t list

val gating : ?werror:bool -> t -> bool
(** Does this diagnostic fail the lint? Errors always gate; warnings
    gate under [werror]; info never gates. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity[TL0xx]: message] with notes indented. *)

val pp_severity : Format.formatter -> severity -> unit

val render_human : t list -> string
val render_json : t list -> string
(** A [{"version": 1, "diagnostics": [...]}] object; locations are
    1-based [line]/[col] fields, omitted when unknown. *)

val render_sarif : t list -> string
(** Minimal SARIF 2.1.0 log: one run, the TL rule table as
    [tool.driver.rules], one result per diagnostic. *)
