(** Hand-written lexer for the exchange DSL.

    Comments run from [#] to end of line. Identifiers are
    [\[A-Za-z_\]\[A-Za-z0-9_*\]*] (the [*] allows the generated ["t*"]
    universal-intermediary name to round-trip). Money literals are
    [$<int>] or [$<int>.<2 digits>]. *)

type error = { message : string; loc : Loc.t }

val tokenize : string -> (Token.t Loc.located list, error) result
(** The token stream always ends with {!Token.Eof}. *)

val pp_error : Format.formatter -> error -> unit
