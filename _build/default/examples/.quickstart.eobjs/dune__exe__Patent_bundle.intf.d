examples/patent_bundle.mli:
