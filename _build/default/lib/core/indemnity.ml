open Exchange

type offer = {
  piece : Spec.commitment_ref;
  owner : Party.t;
  offered_by : Party.t;
  via : Party.t;
  amount : Asset.money;
}

type plan = { offers : offer list; total : Asset.money }

let offer_for spec ~owner piece =
  match Spec.find_deal spec piece.Spec.deal with
  | None -> invalid_arg ("Indemnity.offer_for: unknown deal " ^ piece.Spec.deal)
  | Some d ->
    let offered_by = Spec.commitment_principal d (Spec.other_side piece.Spec.side) in
    {
      piece;
      owner;
      offered_by;
      via = d.Spec.via;
      amount = Spec.indemnity_amount spec owner piece;
    }

let linked_pieces spec ~owner =
  List.filter
    (fun cref ->
      match Spec.find_deal spec cref.Spec.deal with
      | Some d -> Party.equal (Spec.commitment_principal d cref.Spec.side) owner
      | None -> false)
    (Spec.linked_commitments_of spec owner)

let splittable spec ~owner =
  Party.is_principal owner
  && (not (List.exists (fun (o, _) -> Party.equal o owner) spec.Spec.priorities))
  && List.length (linked_pieces spec ~owner) >= 2

let plan_for_order spec ~owner order =
  let pieces = linked_pieces spec ~owner in
  let is_permutation =
    List.length order = List.length pieces
    && List.for_all (fun c -> List.exists (Spec.equal_ref c) pieces) order
    && List.for_all (fun c -> List.exists (Spec.equal_ref c) order) pieces
  in
  if not is_permutation then
    invalid_arg "Indemnity.plan_for_order: not a permutation of the owner's pieces";
  let rec covered = function
    | [] | [ _ ] -> []  (* the last piece needs no indemnity *)
    | piece :: rest -> offer_for spec ~owner piece :: covered rest
  in
  let offers = covered order in
  { offers; total = List.fold_left (fun acc o -> acc + o.amount) 0 offers }

let by_cost spec ~owner ~descending pieces =
  let cost c = Spec.cost_to spec owner c in
  let cmp a b =
    let c = Int.compare (cost a) (cost b) in
    if c <> 0 then if descending then -c else c else 0
  in
  List.stable_sort cmp pieces

let plan_greedy spec ~owner =
  plan_for_order spec ~owner (by_cost spec ~owner ~descending:true (linked_pieces spec ~owner))

let plan_worst spec ~owner =
  plan_for_order spec ~owner (by_cost spec ~owner ~descending:false (linked_pieces spec ~owner))

let permutations items =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest -> (x :: y :: rest) :: List.map (fun p -> y :: p) (insert_everywhere x rest)
  in
  List.fold_left
    (fun perms x -> List.concat_map (insert_everywhere x) perms)
    [ [] ] items

let exhaustive_minimum spec ~owner =
  let pieces = linked_pieces spec ~owner in
  if List.length pieces > 8 then
    invalid_arg "Indemnity.exhaustive_minimum: too many pieces for brute force";
  List.fold_left
    (fun best order -> min best (plan_for_order spec ~owner order).total)
    max_int (permutations pieces)

let apply plan spec =
  List.fold_left (fun spec o -> Spec.with_split o.owner o.piece spec) spec plan.offers

let deposit_transfer o = Action.{ source = o.offered_by; target = o.via; asset = Asset.money o.amount }

let deposits plan = List.map (fun o -> Action.Do (deposit_transfer o)) plan.offers
let refunds plan = List.map (fun o -> Action.Undo (deposit_transfer o)) plan.offers

let rescued_run spec ~owner =
  let plan = plan_greedy spec ~owner in
  let split = apply plan spec in
  let outcome = Reduce.run (Sequencing.build split) in
  match Execution.of_outcome outcome with
  | Ok sequence -> Some (plan, sequence)
  | Error _ -> None

let pp_offer ppf o =
  Format.fprintf ppf "%s escrows %a with %s to cover %a for %s" (Party.name o.offered_by)
    Asset.pp_money o.amount (Party.name o.via) Spec.pp_ref o.piece (Party.name o.owner)

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>indemnity plan, total %a:@,%a@]" Asset.pp_money plan.total
    (Format.pp_print_list pp_offer) plan.offers
