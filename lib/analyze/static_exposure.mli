(** Static proof (or refutation) of the §5 single-transfer bound.

    Runs {!Absint} over the synthesized execution sequence and checks
    every principal's worst-case interval against its bound. Soundness:
    under lockstep delivery, every run of the simulation battery —
    honest or with a single Silent/Partial defector — peaks at or below
    [i_hi], so [Proved] implies the dynamic {!Trust_sim} exposure
    ledger never reports [Bound_exceeded] for an honest party.
    Infeasible specs are [Vacuous]: nothing runs, nothing is at risk. *)

type verdict = Proved | Refuted | Vacuous

type t = {
  verdict : verdict;
  intervals : Absint.interval list;  (** empty when [Vacuous] *)
  steps : int;  (** length of the analyzed sequence *)
}

val analyze : Exchange.Spec.t -> t
(** Synthesize (via {!Trust_core.Feasibility.analyze}) and check. *)

val of_analysis : Trust_core.Feasibility.analysis -> t
(** Check an already-computed analysis, reusing its sequence. *)

val of_sequence : Trust_core.Execution.sequence -> t

val refuted : t -> Absint.interval list
(** The intervals whose bound could not be proved. *)

val diagnostics : t -> Diagnostic.t list
(** One TL016 per refuted principal, plus a single TL017 carrying the
    worst refutation's counterexample schedule in its notes. Empty when
    the verdict is [Proved] or [Vacuous]. *)

val schedule_notes : Absint.witness -> string list
(** The counterexample-schedule rendering used in TL017 notes and by
    [trustseq analyze]. *)

val verdict_label : verdict -> string
val pp : Format.formatter -> t -> unit
