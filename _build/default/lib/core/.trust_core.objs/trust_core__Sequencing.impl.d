lib/core/sequencing.ml: Array Buffer Exchange Format Hashtbl List Option Party Printf Spec String Trust_graph
