(** A synthetic million-principal marketplace.

    {!Gen} draws transactions over a {e fixed} cast ("c", "p", "b1" …),
    which is what batch experiments want: every [chain ~brokers:2] is
    the same spec, so the protocol cache hit rate is near 1. A
    long-lived service sees the opposite regime — millions of distinct
    principals whose popularity is heavy-tailed — and this module
    models it: the principal space is partitioned into role
    subpopulations (consumers, producers, brokers, trusted agents),
    each with its own {!Zipf} popularity law, and every transaction
    draws its cast by rank. Heavy-hitter brokers recur constantly; the
    consumer long tail is effectively seen once, which is exactly the
    traffic that exercises the daemon cache's epoch aging.

    A configurable slice of traffic replays {e catalog templates}:
    template [i] deterministically re-derives the same cast from a
    PRNG seeded by [i], so popular storefront transactions repeat
    byte-identically and hit the protocol cache, while personalized
    long-tail traffic misses and ages out.

    Everything is deterministic in the caller's {!Prng} stream. *)

open Exchange

type config = {
  principals : int;  (** total universe size across all roles *)
  broker_share : float;  (** fraction of principals who are brokers *)
  producer_share : float;
  agent_share : float;  (** trusted third parties (§2's mutually trusted agents) *)
  s_consumers : float;  (** Zipf exponent per role: consumers are the long tail… *)
  s_producers : float;
  s_brokers : float;  (** …and brokers the heavy hitters *)
  template_share : float;  (** fraction of traffic replaying catalog templates *)
  templates : int;  (** catalog size; 0 disables the template slice *)
  s_templates : float;
  mix : Gen.mix;  (** transaction-shape weights and trust density *)
}

val default_config : config
(** One million principals: 0.1% brokers (s = 1.2), 5% producers
    (s = 1.0), 0.02% trusted agents, the rest consumers (s = 0.9);
    30% of traffic replays a 512-template catalog (s = 1.1);
    {!Gen.default_mix} shapes. *)

val defect_heavy : config
(** The trace-mining soak profile: {!default_config} reweighted so
    per-shape incidents accumulate fast — 60% of traffic replays a hot
    64-template catalog (s = 1.3) and the mix leans into deep chains
    (weight 4, up to 4 brokers) and wide fans (weight 4, up to 5
    documents), the long multi-party runs that retry, expire and trip
    the exposure bound under fault injection. Pair with the daemon's
    [--defect-every] / [--drop-rate] knobs. *)

type t

val create : config -> t
(** Partitions the principal space and precomputes the per-role Zipf
    tables (O(principals) floats). Every subpopulation is floored at
    the cast size the configured mix can demand, so small universes
    (CI smoke runs) stay valid.
    @raise Invalid_argument when [principals] is too small for the mix
    or a share is negative. *)

val consumers : t -> int
val producers : t -> int
val brokers : t -> int
val agents : t -> int
(** Subpopulation sizes after partitioning. *)

val transaction : t -> Prng.t -> Spec.t
(** One long-tail transaction: shape rolled from the mix, cast drawn
    rank-by-rank from the role Zipf laws (ranks are probed to
    distinctness within a role, so a chain never reuses a broker),
    direct-trust personas sprinkled at the mix's density. *)

val sample : t -> Prng.t -> Spec.t
(** {!transaction}, except with probability [template_share] the draw
    is a catalog replay: a template rank is Zipf-sampled and the spec
    is re-derived from a PRNG seeded by that rank — the same template
    always yields the identical spec. *)
