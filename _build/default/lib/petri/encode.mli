(** Encoding sequencing-graph reduction into a Petri net (§7.4).

    Each sequencing-graph edge becomes a complementary place pair
    [on]/[off]; each legal application of Rule #1 / Rule #2 to an edge
    becomes a transition that consumes the edge's [on] token, produces
    its [off] token, and reads (consume-and-restore) the [off] tokens of
    the side conditions — the other edge of a fringe commitment, the red
    siblings that must already be gone, the sibling edges of a fringe
    conjunction.

    Feasibility of the exchange is then exactly reachability (here also
    coverability: token counts are monotone per place pair) of the
    all-[off] marking, and the net's state space enumerates {e every}
    reduction order — the exhaustive baseline against which the greedy
    reducer's confluence claim (§4.2.4) is checked. *)

open Exchange

type t = {
  net : Net.t;
  initial : Net.Marking.t;
  goal : Net.Marking.t;  (** one token on every [off] place *)
  edge_places : ((int * int) * (Net.place * Net.place)) list;
      (** (cid, jid) -> (on, off) *)
}

val of_sequencing : Trust_core.Sequencing.t -> t
val of_spec : Spec.t -> t

val feasible :
  ?max_states:int -> t -> [ `Feasible | `Infeasible | `Unknown ] * Analysis.stats
(** Exhaustive verdict by reachability of [goal]. *)

val reduction_orders : ?max_states:int -> t -> int option
(** Number of distinct reachable marking states — the size of the
    reduction-order state space the greedy algorithm avoids exploring.
    [None] when the bound is hit. *)
