module Action_set = Set.Make (struct
  type t = Action.t

  let compare = Action.compare
end)

type t = Action_set.t

let empty = Action_set.empty
let record = Action_set.add
let of_actions actions = List.fold_left (fun s a -> record a s) empty actions
let actions = Action_set.elements
let mem = Action_set.mem
let cardinal = Action_set.cardinal
let union = Action_set.union
let subset = Action_set.subset
let equal = Action_set.equal

let performed_by party state =
  List.filter (fun a -> Party.equal (Action.performer a) party) (actions state)

let net_assets party state =
  let flow (gained, lost) action =
    let apply ~from ~into asset (gained, lost) =
      let gained = if Party.equal into party then Asset.Bag.add asset gained else gained in
      let lost = if Party.equal from party then Asset.Bag.add asset lost else lost in
      (gained, lost)
    in
    match action with
    | Action.Do tr -> apply ~from:tr.source ~into:tr.target tr.asset (gained, lost)
    | Action.Undo tr -> apply ~from:tr.target ~into:tr.source tr.asset (gained, lost)
    | Action.Notify _ -> (gained, lost)
  in
  List.fold_left flow (Asset.Bag.empty, Asset.Bag.empty) (actions state)

let pp ppf state =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Action.pp)
    (actions state)

type description = { requires : Action.Pattern.t list; permits : Action.Pattern.t list }

let describes requires = { requires; permits = [] }

type acceptability = { descriptions : description list; preferred : description }

let satisfied description state =
  let matched pattern = Action_set.exists (Action.Pattern.matches pattern) state in
  List.for_all matched description.requires

let own_clean description ~party state =
  let allowed = description.requires @ description.permits in
  let tolerated action = List.exists (fun p -> Action.Pattern.matches p action) allowed in
  List.for_all tolerated (performed_by party state)

let acceptable spec ~party state =
  let fits d = satisfied d state && own_clean d ~party state in
  List.exists fits spec.descriptions

let preferred_reached spec state = satisfied spec.preferred state

let always_acceptable =
  let anything =
    {
      requires = [];
      permits =
        Action.Pattern.
          [
            P_do (Any_party, Any_party, Any_asset);
            P_undo (Any_party, Any_party, Any_asset);
            P_notify (Any_party, Any_party);
          ];
    }
  in
  { descriptions = [ anything ]; preferred = anything }
