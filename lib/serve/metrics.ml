(* Domain-safe registry: counters are a single [Atomic.t] (lock-free
   increments from pool workers), histograms and gauges take a
   per-metric mutex, and registration takes the registry mutex. Reads
   for snapshots are unsynchronized-by-design *after* the scheduler has
   joined its workers; concurrent snapshots would only ever see a
   momentarily-torn histogram, never a crash. *)

type counter = { c_name : string; c_help : string; count : int Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  h_lock : Mutex.t;
  bounds : int array;  (** strictly increasing upper bounds, [+Inf] implicit *)
  counts : int array;  (** per-bucket (non-cumulative); length = bounds + 1 *)
  mutable sum : int;
  mutable total : int;
}

(* [g_volatile] marks timing telemetry (queue high-water marks, wait
   counts): real registry series, but excluded from the deterministic
   {!to_text}/{!to_json} snapshots and rendered by {!volatile_text}
   instead — the same quarantine the service applies to wall-clock. *)
type gauge = {
  g_name : string;
  g_help : string;
  g_lock : Mutex.t;
  g_volatile : bool;
  mutable v : float;
}

type metric = Counter of counter | Histogram of histogram | Gauge of gauge

type t = { lock : Mutex.t; table : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 32 }

let default_buckets = [ 1; 2; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000 ]

let register t name metric =
  Mutex.lock t.lock;
  let resolved =
    match Hashtbl.find_opt t.table name with
    | None ->
      Hashtbl.add t.table name metric;
      metric
    | Some existing -> existing
  in
  Mutex.unlock t.lock;
  resolved

let counter t ?(help = "") name =
  match register t name (Counter { c_name = name; c_help = help; count = Atomic.make 0 }) with
  | Counter c -> c
  | Histogram _ | Gauge _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let value c = Atomic.get c.count

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  (match buckets with
  | [] -> invalid_arg "Metrics.histogram: empty bucket list"
  | _ :: rest ->
    ignore
      (List.fold_left
         (fun prev b ->
           if b <= prev then invalid_arg "Metrics.histogram: buckets must increase";
           b)
         (List.hd buckets) rest));
  let fresh =
    Histogram
      {
        h_name = name;
        h_help = help;
        h_lock = Mutex.create ();
        bounds = Array.of_list buckets;
        counts = Array.make (List.length buckets + 1) 0;
        sum = 0;
        total = 0;
      }
  in
  match register t name fresh with
  | Histogram h -> h
  | Counter _ | Gauge _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

let observe h v =
  let rec slot i = if i >= Array.length h.bounds || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  Mutex.lock h.h_lock;
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum + v;
  h.total <- h.total + 1;
  Mutex.unlock h.h_lock

let gauge t ?(help = "") ?(volatile = false) name v =
  match
    register t name
      (Gauge
         { g_name = name; g_help = help; g_lock = Mutex.create (); g_volatile = volatile; v })
  with
  | Gauge g ->
    Mutex.lock g.g_lock;
    g.v <- v;
    Mutex.unlock g.g_lock
  | Counter _ | Histogram _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

let sorted t =
  Mutex.lock t.lock;
  let snapshot = Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) snapshot

let to_text t =
  let buf = Buffer.create 1024 in
  let help name h = if h <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name h) in
  let typ name kind = Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind) in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Counter c ->
        help name c.c_help;
        typ name "counter";
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Atomic.get c.count))
      | Gauge g when g.g_volatile -> ()
      | Gauge g ->
        help name g.g_help;
        typ name "gauge";
        Buffer.add_string buf (Printf.sprintf "%s %.6f\n" name g.v)
      | Histogram h ->
        help name h.h_help;
        typ name "histogram";
        let cumulative = ref 0 in
        Array.iteri
          (fun i n ->
            cumulative := !cumulative + n;
            let le =
              if i < Array.length h.bounds then string_of_int h.bounds.(i) else "+Inf"
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le !cumulative))
          h.counts;
        Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name h.sum);
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.total))
    (sorted t);
  Buffer.contents buf

let dump = to_text

let to_json t =
  let metrics = sorted t in
  let pick f = List.filter_map f metrics in
  let counters =
    pick (function
      | name, Counter c -> Some (Printf.sprintf "%S:%d" name (Atomic.get c.count))
      | _ -> None)
  in
  let gauges =
    pick (function
      | name, Gauge g when not g.g_volatile -> Some (Printf.sprintf "%S:%.6f" name g.v)
      | _ -> None)
  in
  let histograms =
    pick (function
      | name, Histogram h ->
        let cumulative = ref 0 in
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i n ->
                 cumulative := !cumulative + n;
                 let le =
                   if i < Array.length h.bounds then string_of_int h.bounds.(i) else "+Inf"
                 in
                 Printf.sprintf "%S:%d" le !cumulative)
               h.counts)
        in
        Some
          (Printf.sprintf "%S:{\"buckets\":{%s},\"sum\":%d,\"count\":%d}" name
             (String.concat "," buckets) h.sum h.total)
      | _ -> None)
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counters) (String.concat "," gauges) (String.concat "," histograms)

let volatile_text t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Gauge g when g.g_volatile ->
        Buffer.add_string buf (Printf.sprintf "%s %.6f\n" name g.v)
      | Gauge _ | Counter _ | Histogram _ -> ())
    (sorted t);
  Buffer.contents buf
