module Json = Trust_obs.Json

let version = 1

type request =
  | Hello of { version : int }
  | Submit of { id : int; spec : string }
  | Ping of { id : int }
  | Metrics of { id : int }
  | Stats of { id : int }
  | Trace of { id : int }

type response =
  | Welcome of { version : int; server : string }
  | Result of {
      id : int;
      status : string;
      exit_code : int;
      cache_hit : bool;
      ticks : int;
      events : int;
      attempts : int;
      exposure_peak : int;
      exposure_ticks : int;
      exposure_violations : int;
      reason : string option;
    }
  | Busy of { id : int }
  | Pong of { id : int }
  | Text of { id : int; kind : string; text : string }
  | Refused of { id : int option; reason : string }

let encode_request = function
  | Hello { version } -> Printf.sprintf {|{"type":"hello","version":%d}|} version
  | Submit { id; spec } ->
    Printf.sprintf {|{"type":"submit","id":%d,"spec":"%s"}|} id (Json.escape spec)
  | Ping { id } -> Printf.sprintf {|{"type":"ping","id":%d}|} id
  | Metrics { id } -> Printf.sprintf {|{"type":"metrics","id":%d}|} id
  | Stats { id } -> Printf.sprintf {|{"type":"stats","id":%d}|} id
  | Trace { id } -> Printf.sprintf {|{"type":"trace","id":%d}|} id

let encode_response = function
  | Welcome { version; server } ->
    Printf.sprintf {|{"type":"welcome","version":%d,"server":"%s"}|} version
      (Json.escape server)
  | Result r ->
    Printf.sprintf
      {|{"type":"result","id":%d,"status":"%s","exit_code":%d,"cache_hit":%b,"ticks":%d,"events":%d,"attempts":%d,"exposure_peak":%d,"exposure_ticks":%d,"exposure_violations":%d%s}|}
      r.id (Json.escape r.status) r.exit_code r.cache_hit r.ticks r.events r.attempts
      r.exposure_peak r.exposure_ticks r.exposure_violations
      (match r.reason with
      | None -> ""
      | Some reason -> Printf.sprintf {|,"reason":"%s"|} (Json.escape reason))
  | Busy { id } -> Printf.sprintf {|{"type":"busy","id":%d}|} id
  | Pong { id } -> Printf.sprintf {|{"type":"pong","id":%d}|} id
  | Text { id; kind; text } ->
    Printf.sprintf {|{"type":"text","id":%d,"kind":"%s","text":"%s"}|} id
      (Json.escape kind) (Json.escape text)
  | Refused { id; reason } ->
    Printf.sprintf {|{"type":"refused"%s,"reason":"%s"}|}
      (match id with None -> "" | Some id -> Printf.sprintf {|,"id":%d|} id)
      (Json.escape reason)

let decode decoders payload =
  match Json.parse payload with
  | exception Json.Bad m -> Error ("bad json: " ^ m)
  | j -> (
    match Json.as_str (Json.field j "type") with
    | exception Json.Bad m -> Error m
    | ty -> (
      match List.assoc_opt ty decoders with
      | None -> Error (Printf.sprintf "unknown message type %S" ty)
      | Some dec -> ( try dec j with Json.Bad m -> Error (ty ^ ": " ^ m))))

let req_id j = Json.as_int (Json.field j "id")

let decode_request =
  decode
    [
      ("hello", fun j -> Ok (Hello { version = Json.as_int (Json.field j "version") }));
      ( "submit",
        fun j -> Ok (Submit { id = req_id j; spec = Json.as_str (Json.field j "spec") }) );
      ("ping", fun j -> Ok (Ping { id = req_id j }));
      ("metrics", fun j -> Ok (Metrics { id = req_id j }));
      ("stats", fun j -> Ok (Stats { id = req_id j }));
      ("trace", fun j -> Ok (Trace { id = req_id j }));
    ]

let decode_response =
  decode
    [
      ( "welcome",
        fun j ->
          Ok
            (Welcome
               {
                 version = Json.as_int (Json.field j "version");
                 server = Json.as_str (Json.field j "server");
               }) );
      ( "result",
        fun j ->
          Ok
            (Result
               {
                 id = req_id j;
                 status = Json.as_str (Json.field j "status");
                 exit_code = Json.as_int (Json.field j "exit_code");
                 cache_hit = Json.as_bool (Json.field j "cache_hit");
                 ticks = Json.as_int (Json.field j "ticks");
                 events = Json.as_int (Json.field j "events");
                 attempts = Json.as_int (Json.field j "attempts");
                 exposure_peak = Json.as_int (Json.field j "exposure_peak");
                 exposure_ticks = Json.as_int (Json.field j "exposure_ticks");
                 exposure_violations = Json.as_int (Json.field j "exposure_violations");
                 reason = Option.map Json.as_str (Json.field_opt j "reason");
               }) );
      ("busy", fun j -> Ok (Busy { id = req_id j }));
      ("pong", fun j -> Ok (Pong { id = req_id j }));
      ( "text",
        fun j ->
          Ok
            (Text
               {
                 id = req_id j;
                 kind = Json.as_str (Json.field j "kind");
                 text = Json.as_str (Json.field j "text");
               }) );
      ( "refused",
        fun j ->
          Ok
            (Refused
               {
                 id = Option.map Json.as_int (Json.field_opt j "id");
                 reason = Json.as_str (Json.field j "reason");
               }) );
    ]
