open Exchange
module Sequencing = Trust_core.Sequencing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  ln = 0 || scan 0

let g1 () = Sequencing.build Workload.Scenarios.example1
let g2 () = Sequencing.build Workload.Scenarios.example2

let test_figure3_counts () =
  let g = g1 () in
  check_int "four commitments" 4 (Sequencing.commitment_count g);
  check_int "three conjunctions" 3 (Sequencing.conjunction_count g);
  (* Figure 3 draws six edges. *)
  check_int "six edges" 6 (Sequencing.edge_count g)

let test_figure4_counts () =
  let g = g2 () in
  check_int "eight commitments" 8 (Sequencing.commitment_count g);
  check_int "seven conjunctions" 7 (Sequencing.conjunction_count g);
  check_int "fourteen edges" 14 (Sequencing.edge_count g)

let test_red_edges () =
  let g = g1 () in
  (* The red edge joins the broker's sale-side commitment to AND-b. *)
  let b = Party.broker "b" in
  let conj =
    match Sequencing.conjunction_of_party g b with
    | Some j -> j
    | None -> Alcotest.fail "broker conjunction missing"
  in
  let reds =
    List.filter (fun (_, colour) -> colour = Sequencing.Red)
      (Sequencing.edges_of_conjunction g conj.Sequencing.jid)
  in
  check_int "exactly one red" 1 (List.length reds);
  let cid, _ = List.hd reds in
  let c = Sequencing.commitment g cid in
  check "red is cb.right" true
    (Spec.equal_ref c.Sequencing.cref { Spec.deal = "cb"; side = Spec.Right })

let test_edge_symmetry () =
  let g = g2 () in
  Array.iter
    (fun c ->
      List.iter
        (fun (jid, colour) ->
          check "mirrored" true
            (List.mem (c.Sequencing.cid, colour) (Sequencing.edges_of_conjunction g jid)))
        (Sequencing.edges_of_commitment g c.Sequencing.cid))
    (Sequencing.commitments g)

let test_invariants () =
  List.iter
    (fun (name, spec) ->
      match Sequencing.check_invariants (Sequencing.build spec) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    Workload.Scenarios.all

let test_remove_edge () =
  let g = g1 () in
  let edges = Sequencing.edges_of_commitment g 1 in
  let jid, _ = List.hd edges in
  Sequencing.remove_edge g ~cid:1 ~jid;
  check "edge gone" true (Sequencing.edge_colour g ~cid:1 ~jid = None);
  check_int "count drops" 5 (Sequencing.edge_count g);
  (* removing again is a no-op *)
  Sequencing.remove_edge g ~cid:1 ~jid;
  check_int "still five" 5 (Sequencing.edge_count g)

let test_fringe () =
  let g = g1 () in
  (* commitment 1 is (bp, Right) = producer side: only the AND-t2 edge *)
  check "producer commitment fringe" true (Sequencing.commitment_fringe g 1);
  (* commitment 0 is (bp, Left) = broker's purchase: two edges *)
  check "broker commitment not fringe" false (Sequencing.commitment_fringe g 0);
  check "conjunctions not fringe" false (Sequencing.conjunction_fringe g 0)

let test_red_sibling () =
  let g = g1 () in
  let b = Party.broker "b" in
  let conj = Option.get (Sequencing.conjunction_of_party g b) in
  let jid = conj.Sequencing.jid in
  (* commitment 0 (purchase, black) is pre-empted by commitment 3 (red) *)
  check "pre-empted" true (Sequencing.red_sibling g ~cid:0 ~jid <> None);
  (* the red edge itself has no red sibling *)
  check "red not self-pre-empted" true (Sequencing.red_sibling g ~cid:3 ~jid = None)

let test_splits_absent () =
  let g = Sequencing.build Workload.Scenarios.example2_broker1_indemnifies in
  (* the split removes one conjunction edge relative to figure 4 *)
  check_int "thirteen edges" 13 (Sequencing.edge_count g)

let test_copy_independent () =
  let g = g1 () in
  let g' = Sequencing.copy g in
  let jid, _ = List.hd (Sequencing.edges_of_commitment g 1) in
  Sequencing.remove_edge g ~cid:1 ~jid;
  check_int "copy unaffected" 6 (Sequencing.edge_count g')

let test_persona_clause () =
  let g = Sequencing.build Workload.Scenarios.example2_source_trusts_broker in
  (* b1's purchase commitment (b1s1, Left) is commitment 0 and its
     principal b1 plays t2 *)
  check "b1 plays own agent" true (Sequencing.plays_own_agent g 0);
  check "s1 side does not" false (Sequencing.plays_own_agent g 1)

let test_dot () =
  let dot = Sequencing.to_dot (g1 ()) in
  check "hexagon commitments" true (contains dot "hexagon");
  check "box conjunctions" true (contains dot "box");
  check "red edge styled" true (contains dot "color=red");
  check "conjunction label" true (contains dot "AND b")

let test_ascii () =
  let ascii = Sequencing.to_ascii (g1 ()) in
  check "conjunction blocks" true (contains ascii "AND b");
  check "red stroke" true (contains ascii "══red══");
  check "commitment label" true (contains ascii "[t1 | b]");
  (* after reduction everything is disconnected *)
  let g = g1 () in
  ignore (Trust_core.Reduce.run g);
  let reduced = Sequencing.to_ascii g in
  check "disconnected marks" true (contains reduced "(disconnected)");
  check "free commitments listed" true (contains reduced "free commitments")

let prop_generated_invariants =
  QCheck2.Test.make ~name:"generated sequencing graphs satisfy the structural invariants"
    ~count:100 QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      Sequencing.check_invariants (Sequencing.build spec) = Ok ())

let () =
  Alcotest.run "sequencing"
    [
      ( "construction",
        [
          Alcotest.test_case "figure 3 counts" `Quick test_figure3_counts;
          Alcotest.test_case "figure 4 counts" `Quick test_figure4_counts;
          Alcotest.test_case "red edges placed" `Quick test_red_edges;
          Alcotest.test_case "edge symmetry" `Quick test_edge_symmetry;
          Alcotest.test_case "invariants on scenarios" `Quick test_invariants;
          Alcotest.test_case "splits omit edges" `Quick test_splits_absent;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
          Alcotest.test_case "fringe detection" `Quick test_fringe;
          Alcotest.test_case "red sibling pre-emption" `Quick test_red_sibling;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "persona clause" `Quick test_persona_clause;
          Alcotest.test_case "dot rendering" `Quick test_dot;
          Alcotest.test_case "ascii rendering" `Quick test_ascii;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generated_invariants ]);
    ]
