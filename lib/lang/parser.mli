(** Recursive-descent parser for the exchange DSL.

    Grammar (tokens from {!Lexer}):
    {v
    program   := decl* EOF
    decl      := "principal" IDENT ":" role
               | "trusted" IDENT
               | "deal" IDENT ":" leg ";" leg ";" "via" IDENT ["within" INT]
               | "priority" IDENT ":" cref
               | "split" IDENT ":" cref
               | "trust" IDENT "->" IDENT
               | "persona" IDENT "is" IDENT
               | "relay" IDENT
               | "request" IDENT ":" IDENT "buys" STRING "from" IDENT "for" MONEY
    role      := "consumer" | "producer" | "broker"
    leg       := IDENT ("pays" MONEY | "gives" STRING)
    cref      := IDENT "." ("buyer" | "seller" | "left" | "right")
    v} *)

type error = { message : string; loc : Loc.t }

val parse : string -> (Ast.program, error) result
(** Lex and parse. Lexer errors are reported through the same type. *)

val pp_error : ?file:string -> Format.formatter -> error -> unit
(** Render as [file:line:col: message] ([line:col] without [file]). *)
