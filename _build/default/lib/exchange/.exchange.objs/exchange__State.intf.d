lib/exchange/state.mli: Action Asset Format Party
