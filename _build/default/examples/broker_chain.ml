(* Example #1 end to end (§3.1, §4.2.2, §5): a consumer buys a document
   through a broker, each pair sharing its own trusted intermediary.
   Shows the interaction graph, the sequencing graph before and after
   reduction (Figs. 1/3/5 as DOT), the paper's ten-step sequence, the
   per-party protocol scripts, a simulated run — and what happens when
   the broker is poor (§5) or the chain grows to five brokers.

     dune exec examples/broker_chain.exe
*)

open Exchange
module Sequencing = Trust_core.Sequencing
module Reduce = Trust_core.Reduce

let rule () = print_endline (String.make 72 '-')

let () =
  let spec = Workload.Scenarios.example1 in
  print_endline "interaction graph (paper figure 1), Graphviz DOT:";
  print_newline ();
  print_string (Interaction.to_dot (Interaction.of_spec spec));
  rule ();
  print_endline "sequencing graph (paper figure 3):";
  print_newline ();
  let g = Sequencing.build spec in
  print_string (Sequencing.to_dot g);
  rule ();
  print_endline "reduction (paper 4.2.2):";
  print_newline ();
  let outcome = Reduce.run g in
  Format.printf "%a@." Reduce.pp_outcome outcome;
  rule ();
  (match Trust_core.Execution.of_outcome outcome with
  | Error e -> print_endline e
  | Ok seq ->
    print_endline "execution sequence (the paper's ten steps, section 5):";
    print_newline ();
    Format.printf "%a@." Trust_core.Execution.pp seq;
    rule ();
    print_endline "per-party protocol scripts (distributed triggers):";
    print_newline ();
    Format.printf "%a@." Trust_core.Protocol.pp (Trust_core.Protocol.synthesize seq));
  rule ();
  print_endline "the poor broker (section 5): needs the customer's money first";
  print_newline ();
  let poor = Workload.Scenarios.example1_poor_broker in
  Format.printf "%a@." Reduce.pp_outcome (Reduce.run (Sequencing.build poor));
  rule ();
  print_endline "longer chains stay feasible; cost grows 5 messages per deal:";
  print_newline ();
  List.iter
    (fun n ->
      let chain = Workload.Gen.chain ~brokers:n in
      match (Trust_core.Feasibility.analyze chain).Trust_core.Feasibility.sequence with
      | Some seq ->
        Printf.printf "  %2d brokers: %3d messages\n" n (Trust_core.Execution.message_count seq)
      | None -> Printf.printf "  %2d brokers: infeasible?!\n" n)
    [ 1; 2; 3; 5; 8 ]
