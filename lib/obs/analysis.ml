(* Trace analytics: pure functions of span views. Working on views —
   rather than on traces or exported bytes — means the in-memory path
   (of_traces) and the re-parse path (of_jsonl) share every downstream
   computation, so the two can never drift apart. *)

type t = Obs.span_view list

let of_views vs : t = vs
let of_traces ts : t = List.concat_map Obs.views ts
let views (vs : t) = vs

(* -- the minimal JSON reader lives in Json; keep local aliases so the
   view-construction code below reads naturally -- *)

exception Bad = Json.Bad

let parse_json = Json.parse
let field = Json.field
let as_int = Json.as_int
let as_str = Json.as_str

let as_value = function
  | Json.Num s ->
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
      Obs.Float (float_of_string s)
    else Obs.Int (int_of_string s)
  | Json.Str s -> Obs.Str s
  | Json.Bool b -> Obs.Bool b
  | Json.Null | Json.Obj _ | Json.Arr _ -> raise (Bad "unsupported attribute value")

let as_attrs = function
  | Json.Obj kvs -> List.map (fun (k, v) -> (k, as_value v)) kvs
  | _ -> raise (Bad "expected an attrs object")

let of_jsonl text =
  (* spans in line order; events appended to their span by (session, id) *)
  let spans = ref [] (* reversed *) in
  let events : (int * int, Obs.event_view list ref) Hashtbl.t = Hashtbl.create 64 in
  let err = ref None in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        try
          let j = parse_json line in
          match as_str (field j "type") with
          | "meta" -> ()
          | "span" ->
            let session = as_int (field j "session") in
            let id = as_int (field j "id") in
            let parent =
              match field j "parent" with Json.Null -> None | v -> Some (as_int v)
            in
            let view =
              {
                Obs.view_session = session;
                view_id = id;
                view_parent = parent;
                view_phase = as_str (field j "phase");
                view_name = as_str (field j "name");
                view_start = as_int (field j "start");
                view_stop = as_int (field j "stop");
                view_attrs = as_attrs (field j "attrs");
                view_events = [];
              }
            in
            spans := view :: !spans;
            Hashtbl.replace events (session, id) (ref [])
          | "event" ->
            let session = as_int (field j "session") in
            let span = as_int (field j "span") in
            let ev =
              {
                Obs.ev_name = as_str (field j "name");
                ev_vt = as_int (field j "vt");
                ev_attrs = as_attrs (field j "attrs");
              }
            in
            (match Hashtbl.find_opt events (session, span) with
            | Some acc -> acc := ev :: !acc
            | None -> raise (Bad (Printf.sprintf "event for unknown span %d" span)))
          | ty -> raise (Bad (Printf.sprintf "unknown line type %S" ty))
        with
        | Bad msg -> err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
        | Failure msg -> err := Some (Printf.sprintf "line %d: %s" (i + 1) msg))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
    Ok
      (List.rev_map
         (fun (v : Obs.span_view) ->
           match Hashtbl.find_opt events (v.Obs.view_session, v.Obs.view_id) with
           | Some acc -> { v with Obs.view_events = List.rev !acc }
           | None -> v)
         !spans)

(* -- shared structure helpers -- *)

let dur (v : Obs.span_view) =
  if v.Obs.view_stop < 0 then 0 else v.Obs.view_stop - v.Obs.view_start

(* summed child durations per (session, id) *)
let child_vt_table (vs : t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (v : Obs.span_view) ->
      match v.Obs.view_parent with
      | None -> ()
      | Some p ->
        let key = (v.Obs.view_session, p) in
        Hashtbl.replace tbl key (dur v + (try Hashtbl.find tbl key with Not_found -> 0)))
    vs;
  tbl

let self_vt tbl (v : Obs.span_view) =
  max 0
    (dur v - (try Hashtbl.find tbl (v.Obs.view_session, v.Obs.view_id) with Not_found -> 0))

let span_count (vs : t) = List.length vs

let event_count (vs : t) =
  List.fold_left (fun acc (v : Obs.span_view) -> acc + List.length v.Obs.view_events) 0 vs

let sessions (vs : t) =
  List.sort_uniq compare (List.map (fun (v : Obs.span_view) -> v.Obs.view_session) vs)

(* -- per-phase statistics -- *)

type phase_stat = {
  ps_phase : string;
  ps_spans : int;
  ps_events : int;
  ps_total_vt : int;
  ps_self_vt : int;
}

let phase_stats (vs : t) =
  let children = child_vt_table vs in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (v : Obs.span_view) ->
      let row =
        match Hashtbl.find_opt tbl v.Obs.view_phase with
        | Some r -> r
        | None ->
          let r =
            ref
              {
                ps_phase = v.Obs.view_phase;
                ps_spans = 0;
                ps_events = 0;
                ps_total_vt = 0;
                ps_self_vt = 0;
              }
          in
          Hashtbl.replace tbl v.Obs.view_phase r;
          r
      in
      row :=
        {
          !row with
          ps_spans = !row.ps_spans + 1;
          ps_events = !row.ps_events + List.length v.Obs.view_events;
          ps_total_vt = !row.ps_total_vt + dur v;
          ps_self_vt = !row.ps_self_vt + self_vt children v;
        })
    vs;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.ps_phase b.ps_phase)

(* -- critical path -- *)

type path_step = {
  st_phase : string;
  st_name : string;
  st_start : int;
  st_stop : int;
  st_self : int;
}

let critical_path (vs : t) =
  let children = child_vt_table vs in
  let longest candidates =
    (* first creation-order span of maximal duration *)
    List.fold_left
      (fun acc v ->
        match acc with Some best when dur best >= dur v -> acc | _ -> Some v)
      None candidates
  in
  let step (v : Obs.span_view) =
    {
      st_phase = v.Obs.view_phase;
      st_name = v.Obs.view_name;
      st_start = v.Obs.view_start;
      st_stop = v.Obs.view_stop;
      st_self = self_vt children v;
    }
  in
  match longest (List.filter (fun (v : Obs.span_view) -> v.Obs.view_parent = None) vs) with
  | None -> []
  | Some root ->
    let rec descend (v : Obs.span_view) acc =
      let acc = step v :: acc in
      let kids =
        List.filter
          (fun (c : Obs.span_view) ->
            c.Obs.view_session = v.Obs.view_session && c.Obs.view_parent = Some v.Obs.view_id)
          vs
      in
      match longest kids with None -> List.rev acc | Some k -> descend k acc
    in
    descend root []

(* -- folded stacks -- *)

let folded (vs : t) = Obs.render_folded vs

(* -- structural diff -- *)

type diff_entry =
  | Only_left of string
  | Only_right of string
  | Changed of string * string

let value_str = function
  | Obs.Int i -> string_of_int i
  | Obs.Float f -> Printf.sprintf "%.6f" f
  | Obs.Str s -> Printf.sprintf "%S" s
  | Obs.Bool b -> if b then "true" else "false"

(* spans keyed by session + root name-path + occurrence index: stable
   under pure id/vt renumbering, so a diff points at the first real
   structural change instead of every downstream shift *)
let keyed (vs : t) =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (v : Obs.span_view) -> Hashtbl.replace by_id (v.Obs.view_session, v.Obs.view_id) v) vs;
  let rec path (v : Obs.span_view) =
    match v.Obs.view_parent with
    | None -> v.Obs.view_name
    | Some p -> (
      match Hashtbl.find_opt by_id (v.Obs.view_session, p) with
      | None -> v.Obs.view_name
      | Some pv -> path pv ^ "/" ^ v.Obs.view_name)
  in
  let seen = Hashtbl.create 64 in
  List.map
    (fun (v : Obs.span_view) ->
      let p = path v in
      let occ = try Hashtbl.find seen (v.Obs.view_session, p) with Not_found -> 0 in
      Hashtbl.replace seen (v.Obs.view_session, p) (occ + 1);
      ((v.Obs.view_session, p, occ), v))
    vs

let key_label (session, path, occ) =
  if occ = 0 then Printf.sprintf "s%d %s" session path
  else Printf.sprintf "s%d %s#%d" session path occ

let attr_changes (a : (string * Obs.value) list) (b : (string * Obs.value) list) =
  let keys =
    List.fold_left
      (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
      [] (a @ b)
  in
  List.filter_map
    (fun k ->
      match (List.assoc_opt k a, List.assoc_opt k b) with
      | Some x, Some y ->
        if value_str x = value_str y then None
        else Some (Printf.sprintf "%s %s -> %s" k (value_str x) (value_str y))
      | Some x, None -> Some (Printf.sprintf "%s %s -> (absent)" k (value_str x))
      | None, Some y -> Some (Printf.sprintf "%s (absent) -> %s" k (value_str y))
      | None, None -> None)
    keys

let event_sig (e : Obs.event_view) =
  e.Obs.ev_name ^ "{"
  ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ value_str v) e.Obs.ev_attrs)
  ^ "}"

let span_changes (a : Obs.span_view) (b : Obs.span_view) =
  let changes = ref [] in
  let add c = changes := c :: !changes in
  if a.Obs.view_phase <> b.Obs.view_phase then
    add (Printf.sprintf "phase %s -> %s" a.Obs.view_phase b.Obs.view_phase);
  if dur a <> dur b then add (Printf.sprintf "vt %d -> %d" (dur a) (dur b));
  List.iter add (attr_changes a.Obs.view_attrs b.Obs.view_attrs);
  let ea = List.map event_sig a.Obs.view_events
  and eb = List.map event_sig b.Obs.view_events in
  if ea <> eb then
    if List.length ea <> List.length eb then
      add (Printf.sprintf "events %d -> %d" (List.length ea) (List.length eb))
    else (
      let i = ref 0 in
      List.iter2
        (fun x y ->
          incr i;
          if x <> y then add (Printf.sprintf "event %d: %s -> %s" !i x y))
        ea eb);
  List.rev !changes

let diff (a : t) (b : t) =
  let ka = keyed a and kb = keyed b in
  let tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) kb;
  let ta = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ta k v) ka;
  let entries = ref [] in
  List.iter
    (fun (k, va) ->
      match Hashtbl.find_opt tb k with
      | None -> entries := (k, Only_left (key_label k)) :: !entries
      | Some vb -> (
        match span_changes va vb with
        | [] -> ()
        | cs -> entries := (k, Changed (key_label k, String.concat ", " cs)) :: !entries))
    ka;
  List.iter
    (fun (k, _) ->
      if not (Hashtbl.mem ta k) then entries := (k, Only_right (key_label k)) :: !entries)
    kb;
  List.sort (fun (ka, _) (kb, _) -> compare ka kb) !entries |> List.map snd

let render_diff entries =
  String.concat ""
    (List.map
       (function
         | Only_left k -> Printf.sprintf "- %s (only in A)\n" k
         | Only_right k -> Printf.sprintf "+ %s (only in B)\n" k
         | Changed (k, desc) -> Printf.sprintf "~ %s: %s\n" k desc)
       entries)
