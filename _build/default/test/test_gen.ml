open Exchange
module Gen = Workload.Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_chain_shape () =
  let spec = Gen.chain ~brokers:3 in
  check_int "four deals" 4 (List.length spec.Spec.deals);
  check_int "three red edges" 3 (List.length spec.Spec.priorities);
  (* 4 intermediaries + consumer + producer + 3 brokers *)
  check_int "nine parties" 9 (List.length (Spec.parties spec))

let test_chain_zero_is_simple_sale () =
  let spec = Gen.chain ~brokers:0 in
  check_int "one deal" 1 (List.length spec.Spec.deals);
  check_int "no red edges" 0 (List.length spec.Spec.priorities)

let test_chain_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Gen.chain: negative broker count")
    (fun () -> ignore (Gen.chain ~brokers:(-1)))

let test_chain_matches_example1 () =
  (* chain 1 and the hand-built example 1 agree on everything but prices. *)
  let spec = Gen.chain ~brokers:1 in
  let a = Trust_core.Feasibility.analyze spec in
  check "feasible" true (Trust_core.Reduce.feasible a.Trust_core.Feasibility.outcome);
  match a.Trust_core.Feasibility.sequence with
  | Some seq -> check_int "ten messages" 10 (Trust_core.Execution.message_count seq)
  | None -> Alcotest.fail "chain 1 must be feasible"

let test_chain_direct_personas () =
  let spec = Gen.chain_direct ~brokers:2 in
  check_int "every deal persona'd" 3 (Party.Map.cardinal spec.Spec.personas)

let test_fan_shape () =
  let spec = Gen.fan ~prices:Workload.Scenarios.fig7_prices in
  check_int "six deals" 6 (List.length spec.Spec.deals);
  check_int "three reds" 3 (List.length spec.Spec.priorities)

let test_fan_is_fig7 () =
  (* Gen.fan with the paper's prices behaves exactly like the hand-built
     Fig. 7 scenario. *)
  let generated = Gen.fan ~prices:Workload.Scenarios.fig7_prices in
  let owner = Gen.fan_consumer in
  check "infeasible" false (Trust_core.Feasibility.is_feasible generated);
  check_int "same greedy total" (Asset.dollars 70)
    (Trust_core.Indemnity.plan_greedy generated ~owner).Trust_core.Indemnity.total

let test_fan_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Gen.fan: empty price list") (fun () ->
      ignore (Gen.fan ~prices:[]))

let test_bundle_shape () =
  let spec = Gen.bundle ~docs:4 in
  check_int "four deals" 4 (List.length spec.Spec.deals);
  check_int "no reds" 0 (List.length spec.Spec.priorities);
  check "feasible" true (Trust_core.Feasibility.is_feasible spec)

let test_random_transactions_deterministic () =
  let gen seed = Gen.random_transactions (Workload.Prng.create seed) Gen.default_mix 20 in
  let sig_of specs = List.map (fun s -> List.map (fun d -> d.Spec.id) s.Spec.deals) specs in
  check "same seed same workload" true (sig_of (gen 9L) = sig_of (gen 9L));
  check "different seed differs" true (sig_of (gen 9L) <> sig_of (gen 10L))

let test_trust_density_extremes () =
  let rng = Workload.Prng.create 5L in
  let all_trusting = { Gen.default_mix with Gen.trust_density = 1.0 } in
  let spec = Gen.random_transaction rng all_trusting in
  check_int "every deal persona'd" (List.length spec.Spec.deals)
    (Party.Map.cardinal spec.Spec.personas);
  let none = { Gen.default_mix with Gen.trust_density = 0.0 } in
  let spec' = Gen.random_transaction rng none in
  check_int "no personas" 0 (Party.Map.cardinal spec'.Spec.personas)

let test_full_trust_always_feasible () =
  let rng = Workload.Prng.create 77L in
  let mix = { Gen.default_mix with Gen.trust_density = 1.0 } in
  List.iter
    (fun spec ->
      if not (Trust_core.Feasibility.is_feasible spec) then
        Alcotest.fail "fully trusting transaction infeasible")
    (Gen.random_transactions rng mix 50)

let prop_generated_validate =
  QCheck2.Test.make ~name:"every generated transaction validates" ~count:200 QCheck2.Gen.int
    (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Gen.random_transaction rng Gen.default_mix in
      Spec.validate spec = Ok ())

let () =
  Alcotest.run "gen"
    [
      ( "chains",
        [
          Alcotest.test_case "shape" `Quick test_chain_shape;
          Alcotest.test_case "zero brokers" `Quick test_chain_zero_is_simple_sale;
          Alcotest.test_case "negative rejected" `Quick test_chain_negative;
          Alcotest.test_case "chain 1 is example 1" `Quick test_chain_matches_example1;
          Alcotest.test_case "direct chain personas" `Quick test_chain_direct_personas;
        ] );
      ( "fans and bundles",
        [
          Alcotest.test_case "fan shape" `Quick test_fan_shape;
          Alcotest.test_case "fan matches fig7" `Quick test_fan_is_fig7;
          Alcotest.test_case "empty fan rejected" `Quick test_fan_empty;
          Alcotest.test_case "bundle shape" `Quick test_bundle_shape;
        ] );
      ( "random transactions",
        [
          Alcotest.test_case "deterministic" `Quick test_random_transactions_deterministic;
          Alcotest.test_case "trust density extremes" `Quick test_trust_density_extremes;
          Alcotest.test_case "full trust always feasible" `Quick test_full_trust_always_feasible;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generated_validate ]);
    ]
