type error = { message : string; loc : Loc.t }

let pp_error ?file ppf e =
  Format.fprintf ppf "%a: %s" (Loc.pp_located ?file) e.loc e.message

exception Parse_error of error

let fail loc fmt = Format.kasprintf (fun message -> raise (Parse_error { message; loc })) fmt

type stream = { mutable tokens : Token.t Loc.located list }

let peek s =
  match s.tokens with
  | tok :: _ -> tok
  | [] -> assert false (* the lexer always terminates the stream with Eof *)

let advance s = match s.tokens with _ :: rest when rest <> [] -> s.tokens <- rest | _ -> ()

let expect s token what =
  let tok = peek s in
  if Token.equal tok.Loc.value token then advance s
  else fail tok.Loc.loc "expected %s, found '%a'" what Token.pp tok.Loc.value

let ident s what =
  let tok = peek s in
  match tok.Loc.value with
  | Token.Ident name ->
    advance s;
    Loc.at tok.Loc.loc name
  | other -> fail tok.Loc.loc "expected %s, found '%a'" what Token.pp other

let role s =
  let tok = peek s in
  match tok.Loc.value with
  | Token.Kw_consumer ->
    advance s;
    Ast.Consumer
  | Token.Kw_producer ->
    advance s;
    Ast.Producer
  | Token.Kw_broker ->
    advance s;
    Ast.Broker
  | other -> fail tok.Loc.loc "expected a role (consumer/producer/broker), found '%a'" Token.pp other

let leg s =
  let party = ident s "a party name" in
  let tok = peek s in
  match tok.Loc.value with
  | Token.Kw_pays -> (
    advance s;
    let tok = peek s in
    match tok.Loc.value with
    | Token.Money cents ->
      advance s;
      Ast.{ party; asset = Pays cents }
    | other -> fail tok.Loc.loc "expected a money literal, found '%a'" Token.pp other)
  | Token.Kw_gives -> (
    advance s;
    let tok = peek s in
    match tok.Loc.value with
    | Token.String doc ->
      advance s;
      Ast.{ party; asset = Gives doc }
    | other -> fail tok.Loc.loc "expected a quoted document name, found '%a'" Token.pp other)
  | other -> fail tok.Loc.loc "expected 'pays' or 'gives', found '%a'" Token.pp other

let side s =
  let tok = peek s in
  match tok.Loc.value with
  | Token.Kw_buyer | Token.Kw_left ->
    advance s;
    Ast.Buyer
  | Token.Kw_seller | Token.Kw_right ->
    advance s;
    Ast.Seller
  | other ->
    fail tok.Loc.loc "expected a side (buyer/seller/left/right), found '%a'" Token.pp other

let cref s =
  let deal = ident s "a deal name" in
  expect s Token.Dot "'.'";
  let side = side s in
  Ast.{ deal; side }

let decl s =
  let tok = peek s in
  match tok.Loc.value with
  | Token.Kw_principal ->
    advance s;
    let name = ident s "a principal name" in
    expect s Token.Colon "':'";
    let role = role s in
    Some (Ast.Principal { name; role })
  | Token.Kw_trusted ->
    advance s;
    Some (Ast.Trusted (ident s "a trusted-agent name"))
  | Token.Kw_deal ->
    advance s;
    let id = ident s "a deal name" in
    expect s Token.Colon "':'";
    let first = leg s in
    expect s Token.Semicolon "';'";
    let second = leg s in
    expect s Token.Semicolon "';'";
    expect s Token.Kw_via "'via'";
    let via = ident s "a trusted-agent name" in
    let deadline =
      let tok = peek s in
      match tok.Loc.value with
      | Token.Kw_within -> (
        advance s;
        let tok = peek s in
        match tok.Loc.value with
        | Token.Int n ->
          advance s;
          Some n
        | other -> fail tok.Loc.loc "expected a tick count after 'within', found '%a'" Token.pp other)
      | _ -> None
    in
    Some (Ast.Deal { id; first; second; via; deadline })
  | Token.Kw_priority ->
    advance s;
    let owner = ident s "a party name" in
    expect s Token.Colon "':'";
    Some (Ast.Priority { owner; target = cref s })
  | Token.Kw_split ->
    advance s;
    let owner = ident s "a party name" in
    expect s Token.Colon "':'";
    Some (Ast.Split { owner; target = cref s })
  | Token.Kw_trust ->
    advance s;
    let truster = ident s "a principal name" in
    expect s Token.Arrow "'->'";
    let trustee = ident s "a principal name" in
    Some (Ast.Trust { truster; trustee })
  | Token.Kw_relay ->
    advance s;
    Some (Ast.Relay (ident s "a principal name"))
  | Token.Kw_request ->
    advance s;
    let id = ident s "a request name" in
    expect s Token.Colon "':'";
    let buyer = ident s "a buyer name" in
    expect s Token.Kw_buys "'buys'";
    let good =
      let tok = peek s in
      match tok.Loc.value with
      | Token.String good ->
        advance s;
        good
      | other -> fail tok.Loc.loc "expected a quoted document name, found '%a'" Token.pp other
    in
    expect s Token.Kw_from "'from'";
    let seller = ident s "a seller name" in
    expect s Token.Kw_for "'for'";
    let price =
      let tok = peek s in
      match tok.Loc.value with
      | Token.Money cents ->
        advance s;
        cents
      | other -> fail tok.Loc.loc "expected a money literal, found '%a'" Token.pp other
    in
    Some (Ast.Request { id; buyer; good; seller; price })
  | Token.Kw_persona ->
    advance s;
    let trusted = ident s "a trusted-agent name" in
    expect s Token.Kw_is "'is'";
    let principal = ident s "a principal name" in
    Some (Ast.Persona { trusted; principal })
  | Token.Eof -> None
  | other -> fail tok.Loc.loc "expected a declaration, found '%a'" Token.pp other

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error { message = e.Lexer.message; loc = e.Lexer.loc }
  | Ok tokens -> (
    let s = { tokens } in
    let rec loop acc =
      match decl s with None -> List.rev acc | Some d -> loop (d :: acc)
    in
    match loop [] with
    | program -> Ok program
    | exception Parse_error e -> Error e)
