(* The tracing layer: null-sink cost model, exporter shape, the reduce
   profiler, and the two determinism properties the contract promises —
   tracing never perturbs results, and span sets are byte-identical at
   any --jobs. *)

module Obs = Trust_obs.Obs
module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Audit = Trust_sim.Audit
module Service = Trust_serve.Service
module Session = Trust_serve.Session
module Reduce = Trust_core.Reduce
module Sequencing = Trust_core.Sequencing
module Gen = Workload.Gen
module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec at i = i + k <= n && (String.sub haystack i k = needle || at (i + 1)) in
  at 0

let count haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec at i acc =
    if i + k > n then acc
    else at (i + 1) (if String.sub haystack i k = needle then acc + 1 else acc)
  in
  at 0 0

(* -- the null sink records nothing and exports nothing -- *)

let test_null_sink () =
  let obs = Obs.null in
  check "null is disabled" false (Obs.enabled obs);
  let h = Obs.span obs ~phase:"x" "y" in
  Obs.event obs h "e";
  Obs.attr obs h "k" (Obs.Int 1);
  Obs.finish obs h;
  check_string "empty jsonl" "" (Obs.export Obs.Jsonl [ obs ]);
  check_string "empty chrome array" "[]\n" (Obs.export Obs.Chrome [ obs ]);
  check_string "empty tree" "" (Obs.export Obs.Tree [ obs ]);
  check_string "empty folded" "" (Obs.export Obs.Folded [ obs ])

(* -- virtual timestamps: identical op sequences export byte-identically -- *)

let build_trace () =
  let obs = Obs.create ~session:7 () in
  Obs.with_span obs ~phase:"pipeline" "root" (fun root ->
      Obs.attr obs root "k" (Obs.Str "v");
      Obs.with_span obs ~parent:root ~phase:"inner" "child" (fun child ->
          Obs.event obs child ~attrs:[ ("n", Obs.Int 3) ] "tick"));
  obs

let test_deterministic_export () =
  let a = build_trace () and b = build_trace () in
  List.iter
    (fun fmt ->
      check_string "same ops, same bytes" (Obs.export fmt [ a ]) (Obs.export fmt [ b ]))
    [ Obs.Jsonl; Obs.Chrome; Obs.Tree; Obs.Folded ]

let test_volatile_attrs_never_exported () =
  let obs = Obs.create () in
  Obs.with_span obs ~phase:"p" "s" (fun h ->
      Obs.attr obs h "stable" (Obs.Int 1);
      Obs.volatile_attr obs h "racy" (Obs.Bool true));
  List.iter
    (fun fmt ->
      let out = Obs.export fmt [ obs ] in
      check "deterministic attr exported" true (contains out "stable");
      check "volatile attr quarantined" false (contains out "racy"))
    [ Obs.Jsonl; Obs.Chrome; Obs.Tree ]

(* -- exporter edge cases, across every format -- *)

let all_formats = [ Obs.Jsonl; Obs.Chrome; Obs.Tree; Obs.Folded ]

let test_format_of_string () =
  List.iter2
    (fun name fmt ->
      check (name ^ " parses") true (Obs.format_of_string name = Some fmt);
      check (name ^ " case-insensitive") true
        (Obs.format_of_string (String.uppercase_ascii name) = Some fmt))
    Obs.format_names all_formats;
  check "unknown format rejected" true (Obs.format_of_string "flamegraph" = None);
  check "empty string rejected" true (Obs.format_of_string "" = None)

let test_export_empty_trace_list () =
  List.iter
    (fun fmt ->
      let out = Obs.export fmt [] in
      match fmt with
      | Obs.Chrome -> check_string "chrome empty array" "[]\n" out
      | Obs.Jsonl | Obs.Tree | Obs.Folded -> check_string "empty output" "" out)
    all_formats

let test_export_zero_span_trace () =
  let obs = Obs.create ~session:5 () in
  check_string "jsonl empty" "" (Obs.export Obs.Jsonl [ obs ]);
  check_string "chrome empty array" "[]\n" (Obs.export Obs.Chrome [ obs ]);
  check_string "folded empty" "" (Obs.export Obs.Folded [ obs ]);
  (* the tree keeps its banner, so an empty trace is still visible *)
  check_string "tree banner only" "trace session=5 (vt 0..0)\n" (Obs.export Obs.Tree [ obs ])

let test_event_on_finished_span () =
  let obs = Obs.create () in
  let h = Obs.span obs ~phase:"p" "s" in
  Obs.finish obs h;
  Obs.event obs h "late";
  List.iter
    (fun fmt ->
      let out = Obs.export fmt [ obs ] in
      check "late event still attributed to its span" true
        (fmt = Obs.Folded || contains out "late"))
    all_formats;
  (* folded self time stays non-negative even though the event ticked
     the clock after the span closed *)
  let folded = Obs.export Obs.Folded [ obs ] in
  check "no negative self time" false (contains folded "-")

let test_deep_nesting () =
  let obs = Obs.create () in
  let rec nest parent depth =
    if depth < 50 then
      Obs.with_span obs ?parent ~phase:"deep" (Printf.sprintf "d%d" depth) (fun h ->
          nest (Some h) (depth + 1))
  in
  nest None 0;
  List.iter
    (fun fmt -> check "deepest span exported" true (contains (Obs.export fmt [ obs ]) "d49"))
    all_formats;
  let folded = Obs.export Obs.Folded [ obs ] in
  let deepest =
    List.find_opt (fun l -> contains l "d49") (String.split_on_char '\n' folded)
  in
  (match deepest with
  | None -> Alcotest.fail "no folded line for the deepest span"
  | Some line -> check_int "50 frames on the deepest stack" 50 (count line ";" + 1));
  (* every span is open-ended (finished by with_span) and non-negative *)
  check "counts parse" true
    (List.for_all
       (fun line ->
         line = ""
         ||
         match String.rindex_opt line ' ' with
         | None -> false
         | Some i ->
           int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) <> None)
       (String.split_on_char '\n' folded))

let test_escaping () =
  let obs = Obs.create () in
  Obs.with_span obs ~phase:"p; q" "name with space" (fun h ->
      Obs.attr obs h "quote" (Obs.Str "a\"b\\c\nd");
      Obs.with_span obs ~parent:h ~phase:"p" "semi;colon" (fun _ -> ()));
  let jsonl = Obs.export Obs.Jsonl [ obs ] in
  check "json string escaped" true (contains jsonl "a\\\"b\\\\c\\nd");
  check "jsonl parses back" true
    (match Trust_obs.Analysis.of_jsonl jsonl with Ok _ -> true | Error _ -> false);
  let folded = Obs.export Obs.Folded [ obs ] in
  check "frame semicolon escaped" true (contains folded "semi\\;colon");
  check "frame spaces flattened" true (contains folded "name_with_space");
  let chrome = Obs.export Obs.Chrome [ obs ] in
  check "chrome is one json document" true
    (String.length chrome >= 3 && chrome.[0] = '[')

(* -- the reduce profiler: per-rule counters and the deletion timeline -- *)

let test_reduce_profiler () =
  let g = Sequencing.build Workload.Scenarios.example1 in
  let obs = Obs.create () in
  let outcome = Reduce.run ~obs g in
  check "example1 feasible" true (Reduce.feasible outcome);
  let out = Obs.export Obs.Jsonl [ obs ] in
  check "reduce span present" true (contains out "\"phase\":\"reduce\"");
  check_int "one delete event per deletion" (List.length outcome.Reduce.deletions)
    (count out "\"name\":\"delete\"");
  (* example1 (Fig. 5): three rule-1 and three rule-2 deletions *)
  check "rule1 counter" true (contains out "\"rule1\":3");
  check "rule2 counter" true (contains out "\"rule2\":3");
  check "steps counter" true (contains out "\"steps\":6");
  check "worklist pushes profiled" true (contains out "\"worklist_pushes\":");
  check "verdict attr" true (contains out "\"verdict\":\"feasible\"")

(* -- property: tracing on leaves every result byte-identical -- *)

let engine_digest r = Format.asprintf "%a" Engine.pp_result r

let test_tracing_is_passive () =
  let rng = Prng.create 77L in
  let specs = Gen.random_transactions rng Gen.default_mix 100 in
  List.iteri
    (fun i spec ->
      let quiet = Harness.honest_run spec in
      let obs = Obs.create ~session:i () in
      let traced =
        Obs.with_span obs ~phase:"pipeline" "root" (fun root ->
            Harness.honest_run ~obs ~parent:root spec)
      in
      match (quiet, traced) with
      | Error a, Error b -> check_string "same infeasibility" a b
      | Ok a, Ok b ->
        check_string "same engine result" (engine_digest a) (engine_digest b);
        check_string "same audit"
          (Format.asprintf "%a" Audit.pp_report (Audit.audit spec a))
          (Format.asprintf "%a" Audit.pp_report
             (Audit.audit ~obs ~parent:(Obs.first_root obs) spec b))
      | Ok _, Error _ | Error _, Ok _ ->
        Alcotest.fail (Printf.sprintf "spec %d: verdict diverged with tracing on" i))
    specs

(* -- the serve layer: trace on/off parity, and jobs-independence of spans -- *)

let batch ~jobs ~trace =
  Service.run
    {
      Service.default with
      Service.sessions = 60;
      seed = 19L;
      concurrency = 4;
      jobs;
      drop_rate = 0.05;
      defect_every = Some 8;
      trace;
    }

(* the obs_* sampling counters are the one legitimate snapshot
   difference: tracing on head-samples sessions, tracing off samples
   none. Everything else must stay byte-identical. *)
let scrub_obs_counters json =
  let b = Buffer.create (String.length json) in
  let n = String.length json in
  let is_obs i = i + 5 <= n && String.sub json i 5 = "\"obs_" in
  let rec go i =
    if i < n then
      if is_obs i then begin
        let rec skip j =
          if j >= n then j
          else match json.[j] with ',' -> j + 1 | '}' -> j | _ -> skip (j + 1)
        in
        go (skip i)
      end
      else begin
        Buffer.add_char b json.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let test_batch_trace_parity () =
  let off = batch ~jobs:1 ~trace:false and on = batch ~jobs:1 ~trace:true in
  check_string "snapshot identical with tracing on (modulo obs counters)"
    (scrub_obs_counters (Service.json off))
    (scrub_obs_counters (Service.json on));
  check "tracing on samples the whole batch at the default rate" true
    (contains (Service.json on) "\"obs_sessions_sampled_total\":60");
  check "tracing off samples nothing" true
    (contains (Service.json off) "\"obs_sessions_sampled_total\":0");
  List.iter2
    (fun (x : Session.t) (y : Session.t) ->
      check_string "same verdict" (Session.status_label x.Session.status)
        (Session.status_label y.Session.status);
      check_int "same ticks" x.Session.ticks y.Session.ticks;
      check_int "same events" x.Session.events y.Session.events)
    off.Service.sessions on.Service.sessions;
  check "trace registry disabled by default" false (Obs.batch_enabled off.Service.obs);
  check "trace registry enabled on demand" true (Obs.batch_enabled on.Service.obs)

let test_batch_spans_jobs_identical () =
  let a = batch ~jobs:1 ~trace:true and b = batch ~jobs:4 ~trace:true in
  let export fmt o = Obs.export fmt (Obs.batch_traces o.Service.obs) in
  check_string "jsonl spans identical at jobs 1 vs 4" (export Obs.Jsonl a) (export Obs.Jsonl b);
  check_string "chrome spans identical at jobs 1 vs 4" (export Obs.Chrome a)
    (export Obs.Chrome b);
  check_int "one trace per session" 60 (List.length (Obs.batch_traces a.Service.obs));
  let out = export Obs.Jsonl a in
  (* every session carries the serve pipeline: root + lint + synthesize
     + simulate + audit + placement *)
  check_int "one root span per session" 60 (count out "\"parent\":null");
  check_int "one placement span per session" 60 (count out "\"name\":\"serve.place\"");
  check "cache hit/miss never exported" false (contains out "cache_hit")

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "deterministic export" `Quick test_deterministic_export;
          Alcotest.test_case "volatile quarantine" `Quick test_volatile_attrs_never_exported;
        ] );
      ( "exporter edge cases",
        [
          Alcotest.test_case "format names" `Quick test_format_of_string;
          Alcotest.test_case "empty trace list" `Quick test_export_empty_trace_list;
          Alcotest.test_case "zero-span trace" `Quick test_export_zero_span_trace;
          Alcotest.test_case "event on a finished span" `Quick test_event_on_finished_span;
          Alcotest.test_case "50-deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "escaping" `Quick test_escaping;
        ] );
      ("profiler", [ Alcotest.test_case "reduce counters" `Quick test_reduce_profiler ]);
      ( "determinism",
        [
          Alcotest.test_case "tracing is passive (100 specs)" `Quick test_tracing_is_passive;
          Alcotest.test_case "batch trace on/off parity" `Quick test_batch_trace_parity;
          Alcotest.test_case "batch spans jobs-independent" `Quick test_batch_spans_jobs_identical;
        ] );
    ]
