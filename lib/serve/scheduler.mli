(** The deterministic batch scheduler.

    Engine runs are synchronous, so concurrency is modelled, not
    threaded: the scheduler keeps [concurrency] virtual lanes, admits
    sessions in arrival order to the least-loaded lane (ties to the
    lowest lane), and advances each lane's clock by the virtual
    duration of the session's run. The resulting placement, lane
    clocks, makespan and every metric are pure functions of the inputs
    — two runs with the same sessions and seed are byte-identical.

    Real parallelism is orthogonal to the virtual lanes: with
    [jobs > 1] whole sessions execute on a {!Pool} of worker domains
    (each session's mutable record is owned by exactly one worker, the
    cache is sharded, the metrics are atomic), and lane placement is
    replayed sequentially in submission order {e after} the pool joins.
    Verdicts, traces, drop schedules, metrics and makespan are
    therefore bit-for-bit identical at any [jobs]; in the snapshot only
    the [serve_pool_workers] gauge varies with it, and the
    timing-dependent pool telemetry (queue high-water mark, wait
    counts) is registered as {e volatile} gauges that never enter the
    snapshot at all.

    Faults: with [drop_rate > 0] the first run of each session drops
    each delivery independently with that probability, from a stateless
    per-(seed, session, action) hash — no PRNG state is shared across
    sessions, so placement never perturbs fault patterns. A session
    whose faulted run expires is requeued once ([Expired → Queued]) and
    retried on the same lane with drops off, modelling retransmission
    over a reliable path; a session that expires for protocol reasons
    (a defector) is {e not} retried when fault injection is off. *)

type config = {
  concurrency : int;  (** virtual lanes, >= 1 *)
  jobs : int;  (** worker domains, >= 1; 1 = run on the calling domain *)
  session_deadline : int;  (** per-session engine escrow deadline (ticks) *)
  latency : int;  (** per-session engine delivery latency *)
  max_events : int;
  drop_rate : float;  (** per-delivery drop probability on first runs *)
  retry : bool;  (** retry-once for drop-stalled sessions *)
  seed : int64;  (** fault-injection stream seed *)
  compiled : bool;
      (** execute cached compiled plans on the allocation-free
          {!Trust_sim.Hotpath} runtime (default); [false] forces the
          interpreted engine everywhere — the reference the benchmarks
          and the property tests compare against. Traced sessions
          always run interpreted so spans stay complete. *)
  sample_rate : float;
      (** fraction of sessions head-sampled into a live trace when
          tracing is on ({!run} given a batch or a ring). The verdict
          is {!Trust_obs.Sampler.decision} on [(seed, session id)] —
          deterministic, jobs-independent, and monotone in the rate —
          and unsampled sessions keep the untraced compiled fast path.
          [1.0] (the default) traces everything, preserving the
          pre-sampling behaviour of [--trace]. *)
}

val default_config : config
(** 8 lanes, 1 job, deadline 1000, latency 1, 100k events, no drops,
    retry on, seed 1, compiled path on, sample rate 1.0. *)

type stats = {
  makespan : int;  (** max lane clock after the batch, >= 1 per session *)
  retried : int;
}

val process_one :
  ?metrics:Metrics.t ->
  ?obs:Trust_obs.Obs.t ->
  ?parent:Trust_obs.Obs.handle ->
  config ->
  Cache.t ->
  Session.t ->
  unit
(** Drive a single session through the full lifecycle (admission lint,
    cached synthesis, engine run with retry-once, audit, classification)
    on the calling domain, recording into [metrics] when given. This is
    the daemon's per-request entry point: no virtual-lane placement
    happens — long-lived services measure wall-clock latency instead —
    and the session's root span is parented under [parent] (the
    daemon's per-request span) when tracing. The session record carries
    the outcome ([session.status], ticks, events, exposure tallies). *)

val session_sampled : config -> int -> bool
(** The head-sampling verdict for a session id under this config's
    [seed] and [sample_rate] — {!Trust_obs.Sampler.decision}, exposed
    so the daemon and the tests apply the exact batch rule. *)

val tail_reason : Session.t -> Trust_obs.Ring.keep option
(** The tail keep rule over a closed session, most severe first:
    [Violation] if any §5 exposure-bound violation was tallied, else
    [Retry] if the session ran more than one attempt, else [Expiry] if
    it expired, else [Lint] if admission lint refused it; [None] for
    an unremarkable session. A pure function of the session record, so
    traced and fast-path runs get identical verdicts. *)

val keep_decision : sampled:bool -> Session.t -> Trust_obs.Ring.keep option
(** What to retain at session close: head-sampled sessions are kept as
    [Sampled]; unsampled ones are promoted iff {!tail_reason} fires. *)

val replay :
  ?parent:Trust_obs.Obs.handle -> config -> Cache.t -> Trust_obs.Obs.t -> Session.t -> Session.t
(** Re-run a fresh copy of a (closed, unsampled) session with a live
    trace sink, materializing the spans head sampling would have
    recorded — determinism makes the two byte-identical. Metrics are
    not recorded (nothing double-counts); the protocol cache does see
    a second synthesis, typically a hit. Returns the replayed session
    record. *)

val run :
  ?metrics:Metrics.t ->
  ?obs:Trust_obs.Obs.batch ->
  ?ring:Trust_obs.Ring.t ->
  config ->
  Cache.t ->
  Session.t list ->
  stats
(** Drive every session through its lifecycle: synthesize through the
    cache, rebuild fresh behaviours, run the engine with the session's
    deadline, audit, classify ([Settled] iff the audit reached every
    party's preferred outcome). When [metrics] is given, records
    session counters, engine event counters and tick/event histograms,
    plus the [serve_pool_*] gauges when [jobs > 1]. Re-raises the first
    exception a worker's session raised, after joining the pool.

    When [obs] is an enabled {!Trust_obs.Obs.batch}, each session
    records into its own trace slot: a root [session.N] span with
    admission-lint, synthesis, simulate and audit children, plus a
    [serve.place] child added during the sequential merge phase. Slots
    are written by exactly one pool job each and published by the
    shutdown join, so span sets are byte-identical at any [jobs];
    cache hit/miss — which races across jobs — is recorded as a
    volatile attribute that exporters skip.

    Tracing engages the sampler: only sessions passing
    {!session_sampled} run with a live trace (the rest keep the
    untraced compiled fast path), and at close {!keep_decision} either
    drops the session or commits it — tail-promoted sessions are
    {!replay}ed first so the batch export and the [ring] carry their
    full spans. Ring commits happen on the worker domain at session
    close (each domain owns a shard), so they carry the execution
    spans but {e not} the merge-phase [serve.place] annotation, which
    exists only in the batch export; the ring's live-byte residency is
    published as a volatile [obs_ring_bytes] gauge (eviction order is
    scheduling-dependent at [jobs > 1]), while the [obs_*] counters
    are deterministic. *)
