(* Execution-sequence recovery (§5): the paper's ten steps, physical
   realisability, and safety of the synthesized order. *)

open Exchange
module Sequencing = Trust_core.Sequencing
module Reduce = Trust_core.Reduce
module Execution = Trust_core.Execution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sequence_of spec =
  match Execution.of_outcome (Reduce.run (Sequencing.build spec)) with
  | Ok seq -> seq
  | Error e -> Alcotest.failf "expected feasible: %s" e

let test_paper_ten_steps () =
  let seq = sequence_of Workload.Scenarios.example1 in
  let got = Execution.actions seq in
  let expected = Workload.Scenarios.paper_example1_actions in
  check_int "ten steps" 10 (List.length got);
  List.iteri
    (fun i (g, e) ->
      if not (Action.equal g e) then
        Alcotest.failf "step %d: got %s, paper says %s" (i + 1) (Action.to_string g)
          (Action.to_string e))
    (List.combine got expected)

let test_infeasible_has_no_sequence () =
  match Execution.of_outcome (Reduce.run (Sequencing.build Workload.Scenarios.example2)) with
  | Ok _ -> Alcotest.fail "example 2 must not yield a sequence"
  | Error _ -> ()

let test_red_deferred_to_end () =
  (* The broker's sale-side transfer (give b->t1) happens after its
     purchase-side transfer (pay b->t2), even though the sale commitment
     was reached first (§5: committed first, executed last). *)
  let seq = sequence_of Workload.Scenarios.example1 in
  let index_of action =
    let rec find i = function
      | [] -> Alcotest.failf "action %s missing" (Action.to_string action)
      | a :: rest -> if Action.equal a action then i else find (i + 1) rest
    in
    find 0 (Execution.actions seq)
  in
  let b = Party.broker "b" and t1 = Party.trusted "t1" and t2 = Party.trusted "t2" in
  check "purchase before sale delivery" true
    (index_of (Action.pay b t2 (Asset.dollars 8)) < index_of (Action.give b t1 "d"))

let test_notifications_from_trusted () =
  let seq = sequence_of Workload.Scenarios.example1 in
  let notifies =
    List.filter (function Action.Notify _ -> true | _ -> false) (Execution.actions seq)
  in
  check_int "two notifications" 2 (List.length notifies);
  check "notifies performed by trusted agents" true
    (List.for_all (fun a -> Party.is_trusted (Action.performer a)) notifies)

let test_physical_constraint () =
  List.iter
    (fun (name, spec) ->
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> ()
      | Some seq -> (
        match Execution.check_physical seq with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" name e))
    Workload.Scenarios.all

let test_all_parties_acceptable () =
  List.iter
    (fun (name, spec) ->
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> ()
      | Some seq ->
        List.iter
          (fun (party, ok) ->
            if not ok then Alcotest.failf "%s: %s not acceptable" name (Party.to_string party))
          (Execution.all_parties_acceptable seq))
    Workload.Scenarios.all

let test_final_state_preferred () =
  let seq = sequence_of Workload.Scenarios.example1 in
  let state = Execution.final_state seq in
  List.iter
    (fun party ->
      check
        (Party.to_string party ^ " reaches preferred")
        true
        (Outcomes.preferred_reached Workload.Scenarios.example1 ~party state))
    (Spec.parties Workload.Scenarios.example1)

let test_direct_trust_elides_self_sends () =
  (* simple_sale_direct: the producer plays the intermediary, so only two
     transfers remain (§8's two-message exchange). *)
  let seq = sequence_of Workload.Scenarios.simple_sale_direct in
  let transfers =
    List.filter (function Action.Do _ -> true | _ -> false) (Execution.actions seq)
  in
  check_int "two transfers" 2 (List.length transfers);
  check "no self transfers" true
    (List.for_all
       (function
         | Action.Do tr -> not (Party.equal tr.Action.source tr.Action.target)
         | _ -> true)
       (Execution.actions seq))

let test_chain_message_counts () =
  (* Mediated chains cost 5 messages per deal: two in, two out, one
     notification. *)
  List.iter
    (fun n ->
      let seq = sequence_of (Workload.Gen.chain ~brokers:n) in
      check_int
        (Printf.sprintf "chain %d messages" n)
        (5 * (n + 1))
        (Execution.message_count seq))
    [ 0; 1; 2; 5 ]

let test_forwards_docs_before_money () =
  let seq = sequence_of Workload.Scenarios.example1 in
  let rec scan = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      (match (a.Execution.origin, b.Execution.origin) with
      | Execution.Forward d1, Execution.Forward d2 when d1 = d2 -> (
        match (a.Execution.action, b.Execution.action) with
        | Action.Do t1, Action.Do t2 ->
          if Asset.is_money t1.Action.asset && Asset.is_document t2.Action.asset then
            Alcotest.fail "money forwarded before document"
        | _ -> ())
      | _ -> ());
      scan rest
  in
  scan seq.Execution.steps

let test_rescued_fig7_physical () =
  match Trust_core.Feasibility.rescue_with_indemnities Workload.Scenarios.fig7 with
  | None -> Alcotest.fail "fig7 rescue failed"
  | Some rescue -> (
    match rescue.Trust_core.Feasibility.analysis.Trust_core.Feasibility.sequence with
    | None -> Alcotest.fail "no sequence"
    | Some seq -> (
      match Execution.check_physical seq with
      | Ok () -> ()
      | Error e -> Alcotest.fail e))

let prop_generated_sequences_safe =
  QCheck2.Test.make
    ~name:"every synthesized sequence is physical and acceptable to all parties" ~count:150
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> true
      | Some seq ->
        Execution.check_physical seq = Ok ()
        && List.for_all snd (Execution.all_parties_acceptable seq))

let prop_message_bound =
  QCheck2.Test.make ~name:"mediated sequences use at most five messages per deal" ~count:150
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> true
      | Some seq -> Execution.message_count seq <= 5 * List.length spec.Spec.deals)

let () =
  Alcotest.run "execution"
    [
      ( "paper section 5",
        [
          Alcotest.test_case "the ten steps" `Quick test_paper_ten_steps;
          Alcotest.test_case "infeasible yields no sequence" `Quick test_infeasible_has_no_sequence;
          Alcotest.test_case "red commitments deferred" `Quick test_red_deferred_to_end;
          Alcotest.test_case "notifications from trusted agents" `Quick
            test_notifications_from_trusted;
          Alcotest.test_case "documents forwarded before money" `Quick
            test_forwards_docs_before_money;
        ] );
      ( "safety",
        [
          Alcotest.test_case "physical constraint on scenarios" `Quick test_physical_constraint;
          Alcotest.test_case "all parties acceptable" `Quick test_all_parties_acceptable;
          Alcotest.test_case "preferred outcome reached" `Quick test_final_state_preferred;
          Alcotest.test_case "direct trust elides self-sends" `Quick
            test_direct_trust_elides_self_sends;
          Alcotest.test_case "chain message counts" `Quick test_chain_message_counts;
          Alcotest.test_case "rescued fig7 physical" `Quick test_rescued_fig7_physical;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_generated_sequences_safe; prop_message_bound ] );
    ]
