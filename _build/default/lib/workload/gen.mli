(** Parameterised exchange-problem generators.

    The paper motivates "complex royalties and payment arrangements"
    (§3.2) without giving workloads; these generators provide the
    scaling axes for the experiments: resale chains (Example #1
    generalised to [n] brokers), document fans (Example #2/Fig. 7
    generalised to [k] documents) and random marketplaces with a
    tunable trust density. *)

open Exchange

val chain : brokers:int -> Spec.t
(** [chain ~brokers:n] — a consumer buys one document resold along a
    chain of [n] brokers from a producer; [n + 1] deals, each via its
    own intermediary; every broker must secure its buyer first (red
    edge). Feasible for every [n >= 0] ([n = 1] is Example #1).
    @raise Invalid_argument on negative [n]. *)

val chain_direct : brokers:int -> Spec.t
(** The same chain when every seller is trusted directly by its buyer —
    the two-messages-per-deal world of §8. *)

val fan : prices:Asset.money list -> Spec.t
(** [fan ~prices] — a consumer needs all [k = length prices] documents,
    each resold by its own broker from its own source (brokers buy at
    80% of the resale price). Infeasible for [k >= 2] without
    indemnities or direct trust; [prices = [$10; $20; $30]] is Fig. 7.
    @raise Invalid_argument on an empty price list. *)

val fan_consumer : Party.t
val fan_sale_ref : int -> Spec.commitment_ref
(** The consumer-side commitment for document [i] (1-based). *)

val bundle : docs:int -> Spec.t
(** [bundle ~docs:k] — a consumer buys [k] documents directly from [k]
    producers through [k] intermediaries, all-or-nothing. Unlike the
    broker {!fan}, this is feasible for every [k]: producers deposit
    first, nothing blocks the bundle. *)

(** {1 Random transactions}

    Each generated spec is {e one} distributed transaction — the unit
    the formalism analyses. Marketplace-level experiments sample many
    transactions and aggregate. *)

type mix = {
  sale_weight : int;  (** simple consumer-producer sales *)
  chain_weight : int;  (** broker resale chains *)
  max_chain : int;  (** chain length bound (brokers) *)
  fan_weight : int;  (** all-or-nothing document fans *)
  max_fan : int;  (** fan width bound (documents) *)
  bundle_weight : int;  (** broker-free bundles *)
  max_bundle : int;
  trust_density : float;
      (** probability that any given deal's seller trusts its buyer, who
          then plays the intermediary (§4.2.3 variant 1 — the direction
          of direct trust that unblocks broker resales) *)
}

val default_mix : mix

val random_transaction : Prng.t -> mix -> Spec.t
(** One random transaction drawn from the mix, with direct-trust
    personas sprinkled at [trust_density]. Deterministic in the
    generator state. *)

val random_transactions : Prng.t -> mix -> int -> Spec.t list
