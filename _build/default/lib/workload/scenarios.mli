(** The paper's worked scenarios, as checked constructors.

    Each value reproduces one figure or variant of the paper; the
    experiment harness and test suite assert the paper's claims about
    them (feasibility, deletion counts, the §5 execution sequence, the
    Fig. 7 indemnity totals). Deal ordering matches the paper's
    walkthroughs so the deterministic reducer deletes edges in the order
    the figures circle. *)

open Exchange

val simple_sale : Spec.t
(** §1/§2.3: customer [c] buys document [d] from producer [p] for $10
    through trusted agent [t]. *)

val simple_sale_direct : Spec.t
(** The same sale when the customer trusts the producer directly — the
    producer plays the trusted role; costs two messages (§8). *)

val example1 : Spec.t
(** Figures 1/3/5, §3.1: consumer buys a document from a producer
    through a broker; [t1] between consumer and broker, [t2] between
    broker and producer; the broker must secure its buyer first (the red
    edge on AND-B). Feasible; the paper's 10-step sequence. *)

val example1_poor_broker : Spec.t
(** §5 end: the broker also needs the customer's funds before paying the
    producer — a second red edge on AND-B. Infeasible. *)

val example2 : Spec.t
(** Figures 2/4/6, §3.2: consumer needs documents 1 {e and} 2, resold by
    brokers 1 and 2 from sources 1 and 2, through four intermediaries.
    Infeasible: reduces to the Fig. 6 impasse. *)

val example2_source_trusts_broker : Spec.t
(** §4.2.3 variant 1: Source1 trusts Broker1 (Broker1 plays the
    Trusted2 role). Feasible — the domino effect. *)

val example2_broker_trusts_source : Spec.t
(** §4.2.3 variant 2: Broker1 trusts Source1 (Source1 plays Trusted2).
    Still infeasible — trust is not symmetric. *)

val example2_broker1_indemnifies : Spec.t
(** §6: Broker 1's indemnity splits the consumer's conjunction edge for
    document 1; the remaining exchange is feasible. *)

val fig7 : Spec.t
(** Figure 7: three brokers/sources, documents priced $10, $20, $30.
    Infeasible without indemnities. *)

val fig7_prices : Asset.money list
(** The three document prices, in broker order: [$10; $20; $30]. *)

val fig7_consumer : Party.t
val fig7_sale_ref : int -> Spec.commitment_ref
(** The consumer-side commitment of broker [i] (1-based) — the
    conjunction edge an indemnity for document [i] splits. *)

val example2_consumer : Party.t
val example2_sale_ref : int -> Spec.commitment_ref

val paper_example1_actions : Action.t list
(** The §5 execution sequence, verbatim: the ten actions (two notifies,
    eight transfers) the paper lists for Example #1. *)

val all : (string * Spec.t) list
(** Every named scenario, for table-driven tests. *)
