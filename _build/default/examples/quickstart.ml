(* Quickstart: a customer buys one document from a publisher neither
   party trusts, through a shared escrow agent — the paper's opening
   scenario (§1).

     dune exec examples/quickstart.exe
*)

open Exchange

let () =
  (* 1. Describe the exchange. Alice pays $25; the publisher hands over
        the document; both interact only with the escrow. *)
  let alice = Party.consumer "alice" in
  let publisher = Party.producer "publisher" in
  let escrow = Party.trusted "escrow" in
  let spec =
    Spec.make_exn
      [
        Spec.sale ~id:"sale" ~buyer:alice ~seller:publisher ~via:escrow
          ~price:(Asset.dollars 25) ~good:"white-paper.pdf";
      ]
  in
  Format.printf "%a@.@." Spec.pp spec;

  (* 2. Is it feasible? Build the sequencing graph and reduce it. *)
  let analysis = Trust_core.Feasibility.analyze spec in
  Format.printf "%a@.@." Trust_core.Reduce.pp_outcome analysis.Trust_core.Feasibility.outcome;

  (* 3. Recover the protective execution sequence (§5). *)
  (match analysis.Trust_core.Feasibility.sequence with
  | Some seq -> Format.printf "%a@.@." Trust_core.Execution.pp seq
  | None -> print_endline "no protective order exists");

  (* 4. Actually run it in the discrete-event runtime and audit the
        final state of every party. *)
  match Trust_sim.Harness.honest_run spec with
  | Error e -> print_endline ("simulation failed: " ^ e)
  | Ok result ->
    Format.printf "%a@.@." Trust_sim.Engine.pp_result result;
    Format.printf "%a@." Trust_sim.Audit.pp_report (Trust_sim.Audit.audit spec result);

    (* 5. The same spec can be written in the DSL and parsed back. *)
    print_newline ();
    print_endline "the same exchange in the trust DSL:";
    print_newline ();
    print_string (Trust_lang.Printer.to_string spec)
