module Loc = Trust_lang.Loc

type severity = Error | Warning | Info

type code =
  | Unused_party
  | Dead_asset
  | Unbacked_split
  | Redundant_priority
  | Contradictory_priorities
  | Unreachable_acceptance
  | Vacuous_intermediary
  | Zero_value_leg
  | Rescuable_infeasibility
  | Parse_error
  | Elaboration_error
  | Unsafe_sequence
  | Double_spend
  | Over_pledged_indemnity
  | Deadline_race
  | Unprovable_bound
  | Counterexample_schedule

let all_codes =
  [
    Unused_party; Dead_asset; Unbacked_split; Redundant_priority;
    Contradictory_priorities; Unreachable_acceptance; Vacuous_intermediary;
    Zero_value_leg; Rescuable_infeasibility; Parse_error; Elaboration_error;
    Unsafe_sequence; Double_spend; Over_pledged_indemnity; Deadline_race;
    Unprovable_bound; Counterexample_schedule;
  ]

let code_number = function
  | Unused_party -> 1
  | Dead_asset -> 2
  | Unbacked_split -> 3
  | Redundant_priority -> 4
  | Contradictory_priorities -> 5
  | Unreachable_acceptance -> 6
  | Vacuous_intermediary -> 7
  | Zero_value_leg -> 8
  | Rescuable_infeasibility -> 9
  | Parse_error -> 10
  | Elaboration_error -> 11
  | Unsafe_sequence -> 12
  | Double_spend -> 13
  | Over_pledged_indemnity -> 14
  | Deadline_race -> 15
  | Unprovable_bound -> 16
  | Counterexample_schedule -> 17

let code_id code = Printf.sprintf "TL%03d" (code_number code)

let code_name = function
  | Unused_party -> "unused-party"
  | Dead_asset -> "dead-asset"
  | Unbacked_split -> "unbacked-split"
  | Redundant_priority -> "redundant-priority"
  | Contradictory_priorities -> "contradictory-priorities"
  | Unreachable_acceptance -> "unreachable-acceptance"
  | Vacuous_intermediary -> "vacuous-intermediary"
  | Zero_value_leg -> "zero-value-leg"
  | Rescuable_infeasibility -> "rescuable-infeasibility"
  | Parse_error -> "parse-error"
  | Elaboration_error -> "elaboration-error"
  | Unsafe_sequence -> "unsafe-sequence"
  | Double_spend -> "double-spend"
  | Over_pledged_indemnity -> "over-pledged-indemnity"
  | Deadline_race -> "deadline-race"
  | Unprovable_bound -> "unprovable-bound"
  | Counterexample_schedule -> "counterexample-schedule"

let default_severity = function
  | Unused_party | Dead_asset | Unbacked_split | Redundant_priority
  | Zero_value_leg | Over_pledged_indemnity | Deadline_race
  | Unprovable_bound ->
    Warning
  | Contradictory_priorities | Unreachable_acceptance | Parse_error
  | Elaboration_error | Unsafe_sequence | Double_spend ->
    Error
  | Vacuous_intermediary | Rescuable_infeasibility | Counterexample_schedule ->
    Info

type t = {
  code : code;
  severity : severity;
  message : string;
  file : string option;
  loc : Loc.t option;
  notes : string list;
}

let make ?severity ?file ?loc ?(notes = []) code message =
  let severity =
    match severity with Some s -> s | None -> default_severity code
  in
  { code; severity; message; file; loc; notes }

let compare a b =
  let file_cmp =
    match (a.file, b.file) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some fa, Some fb -> String.compare fa fb
  in
  if file_cmp <> 0 then file_cmp
  else
    let loc_cmp =
      match (a.loc, b.loc) with
      | None, None -> 0
      | Some _, None -> -1
      | None, Some _ -> 1
      | Some la, Some lb -> Loc.compare la lb
    in
    if loc_cmp <> 0 then loc_cmp
    else
      match Int.compare (code_number a.code) (code_number b.code) with
      | 0 -> String.compare a.message b.message
      | c -> c

let sort diagnostics = List.stable_sort compare diagnostics

let gating ?(werror = false) d =
  match d.severity with Error -> true | Warning -> werror | Info -> false

let pp_severity ppf = function
  | Error -> Format.pp_print_string ppf "error"
  | Warning -> Format.pp_print_string ppf "warning"
  | Info -> Format.pp_print_string ppf "info"

let pp ppf d =
  (match (d.file, d.loc) with
  | Some file, Some loc ->
    Format.fprintf ppf "%a: " (Loc.pp_located ~file) loc
  | Some file, None -> Format.fprintf ppf "%s: " file
  | None, Some loc -> Format.fprintf ppf "%a: " (Loc.pp_located ?file:None) loc
  | None, None -> ());
  Format.fprintf ppf "%a[%s]: %s" pp_severity d.severity (code_id d.code)
    d.message;
  List.iter (fun note -> Format.fprintf ppf "@\n  note: %s" note) d.notes

let render_human diagnostics =
  String.concat "\n"
    (List.map (fun d -> Format.asprintf "@[<v>%a@]" pp d) diagnostics)

(* No JSON library in the tree: emit by hand, escaping per RFC 8259. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let json_of_diagnostic d =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  add "code" (json_string (code_id d.code));
  add "name" (json_string (code_name d.code));
  add "severity" (json_string (severity_string d.severity));
  add "message" (json_string d.message);
  (match d.file with Some f -> add "file" (json_string f) | None -> ());
  (match d.loc with
  | Some loc ->
    add "line" (string_of_int loc.Loc.line);
    add "col" (string_of_int loc.Loc.col)
  | None -> ());
  if d.notes <> [] then
    add "notes"
      (Printf.sprintf "[%s]" (String.concat "," (List.map json_string d.notes)));
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.rev_map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v)
          !fields))

let render_json diagnostics =
  Printf.sprintf "{\"version\":1,\"diagnostics\":[%s]}"
    (String.concat "," (List.map json_of_diagnostic diagnostics))

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

(* Rule help links into the committed catalog: docs/LINT.md carries one
   anchor per code (GitHub renders "### TL013 — double-spend" as
   #tl013--double-spend; the bare #tl0xx form below relies on the
   explicit anchors the doc declares). *)
let help_uri code =
  Printf.sprintf "https://example.invalid/trustseq/docs/LINT.md#%s"
    (String.lowercase_ascii (code_id code))

let sarif_rule code =
  Printf.sprintf
    "{\"id\":%s,\"name\":%s,\"shortDescription\":{\"text\":%s},\"helpUri\":%s,\"defaultConfiguration\":{\"level\":%s}}"
    (json_string (code_id code))
    (json_string (code_name code))
    (json_string (code_name code))
    (json_string (help_uri code))
    (json_string (sarif_level (default_severity code)))

let sarif_result d =
  let location =
    match d.file with
    | None -> ""
    | Some file ->
      let region =
        match d.loc with
        | Some loc ->
          Printf.sprintf ",\"region\":{\"startLine\":%d,\"startColumn\":%d}"
            loc.Loc.line loc.Loc.col
        | None -> ""
      in
      Printf.sprintf
        ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s}%s}}]"
        (json_string file) region
  in
  let text =
    match d.notes with
    | [] -> d.message
    | notes -> String.concat "\n" (d.message :: notes)
  in
  Printf.sprintf "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s}%s}"
    (json_string (code_id d.code))
    (json_string (sarif_level d.severity))
    (json_string text) location

let render_sarif diagnostics =
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"trustseq-lint\",\"informationUri\":\"https://example.invalid/trustseq\",\"rules\":[%s]}},\"results\":[%s]}]}"
    (String.concat "," (List.map sarif_rule all_codes))
    (String.concat "," (List.map sarif_result diagnostics))
