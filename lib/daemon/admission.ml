type 'a t = {
  bound : int;
  q : 'a Queue.t;
  mutable peak : int;
  mutable admitted : int;
  mutable refused : int;
}

let create ?(bound = 64) () =
  if bound < 0 then invalid_arg "Admission.create: negative bound";
  { bound; q = Queue.create (); peak = 0; admitted = 0; refused = 0 }

let bound t = t.bound

let try_push t x =
  if Queue.length t.q >= t.bound then begin
    t.refused <- t.refused + 1;
    false
  end
  else begin
    Queue.add x t.q;
    t.admitted <- t.admitted + 1;
    if Queue.length t.q > t.peak then t.peak <- Queue.length t.q;
    true
  end

let pop t = Queue.take_opt t.q
let depth t = Queue.length t.q
let peak t = t.peak
let admitted t = t.admitted
let refused t = t.refused
