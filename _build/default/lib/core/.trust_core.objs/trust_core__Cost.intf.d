lib/core/cost.mli: Action Exchange Execution Format Spec
