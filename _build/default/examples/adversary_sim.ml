(* Fault injection: runs every paper scenario against every possible
   single defector and defection mode, and prints the §1 safety matrix —
   no honest participant ever loses money or goods, and with escrowed or
   indemnified pieces the all-or-nothing bundles survive too.

     dune exec examples/adversary_sim.exe
*)

open Exchange
module Harness = Trust_sim.Harness
module Audit = Trust_sim.Audit

let mode_name = function
  | Harness.Silent -> "silent"
  | Harness.Partial n -> Printf.sprintf "partial=%d" n

let sweep name spec plan =
  Printf.printf "\n%s\n%s\n" name (String.make (String.length name) '=');
  let defectors = Harness.defectable_principals spec in
  let rows =
    List.concat_map
      (fun defector ->
        List.filter_map
          (fun mode ->
            match Harness.adversarial_run ?plan ~defectors:[ (defector, mode) ] spec with
            | Error _ -> None
            | Ok result ->
              let report = Audit.audit spec ?plan ~defectors:[ defector ] result in
              Some
                [
                  Party.name defector;
                  mode_name mode;
                  string_of_int (List.length result.Trust_sim.Engine.log);
                  (if report.Audit.honest_no_loss then "yes" else "NO");
                  (if report.Audit.honest_all_acceptable then "yes" else "no");
                ])
          [ Harness.Silent; Harness.Partial 1; Harness.Partial 2 ])
      defectors
  in
  Report.Table.print
    ~header:[ "defector"; "mode"; "deliveries"; "honest no-loss"; "honest acceptable" ]
    rows

let () =
  let feasible =
    List.filter
      (fun (_, s) -> Trust_core.Feasibility.is_feasible s)
      Workload.Scenarios.all
  in
  List.iter (fun (name, spec) -> sweep name spec None) feasible;
  (* the indemnified figure 7 survives every defection at full
     acceptability: covered pieces pay out *)
  let fig7 = Workload.Scenarios.fig7 in
  let plan =
    Trust_core.Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer
  in
  sweep "fig7 with the greedy indemnity plan" fig7 (Some plan)
