(** The discrete-event runtime.

    Virtual time starts at zero; every performed action is delivered to
    its beneficiary after a fixed latency; behaviours react to
    deliveries with further actions. The engine owns asset custody: a
    [Do]/[Undo] debits the sending party when performed and credits the
    receiver at delivery, and an action whose asset is not on hand is
    parked and retried whenever the sender's holdings grow — a behaviour
    can never spend what it does not have (§2.4). Deals carrying their
    own §2.2 deadline raise {!Behavior.Expired} at that tick; at the
    run-level [deadline] every behaviour observes {!Behavior.Deadline}
    (escrows refund and settle whatever remains).

    The run ends when the queue drains; actions still parked are
    reported as [stalled]. *)

open Exchange

type config = {
  latency : int;
  deadline : int;
  max_events : int;
  broadcast : bool;
      (** deliver every action as an observation to {e all} behaviours
          (the lockstep bulletin-board model), not just its beneficiary *)
  drop : (int -> Action.t -> bool) option;
      (** network fault injection: when [drop seq action] is true the
          performed action is lost in transit — the asset it carried is
          returned to the sender's custody (the paper assumes reliable
          delivery; drops model the §2.2 failures deadlines exist for).
          [seq] numbers performed actions from zero, so callers can
          drop deterministically. *)
}

val default_config : config
(** latency 1, deadline 1_000, max 100_000 events, no broadcast. *)

type delivery = { at : int; action : Action.t }

type result = {
  state : State.t;  (** all delivered actions — the §2.3 exchange state *)
  log : delivery list;  (** chronological *)
  holdings : (Party.t * Asset.Bag.t) list;  (** final custody, incl. endowments *)
  stalled : (Party.t * Action.t) list;  (** parked forever: sender never obtained the asset *)
  events : int;
}

val initial_endowment : Spec.t -> deposits:Trust_core.Indemnity.offer list -> Party.t -> Asset.Bag.t
(** What a party starts with: principals hold the money their deal sides
    and indemnity deposits require plus every document they sell but do
    not acquire through another deal; trusted components start empty. *)

val run :
  ?config:config ->
  ?obs:Trust_obs.Obs.t ->
  ?span:Trust_obs.Obs.handle ->
  Spec.t ->
  deposits:Trust_core.Indemnity.offer list ->
  behaviors:Behavior.t list ->
  result
(** Simulate. Behaviours are started in list order at time zero.
    [obs]/[span] attach runtime events to a trace span: ["deliver"],
    ["park"], ["retry"], ["expire"], ["deadline"] and ["drop"], each
    carrying the engine tick as an [at] attribute and — for transfers —
    the owning deal. The default null sink records nothing and costs
    nothing. *)

val pp_result : Format.formatter -> result -> unit
