lib/core/cost.ml: Action Exchange Execution Format List Party Spec
