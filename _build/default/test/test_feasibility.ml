open Exchange
module Feasibility = Trust_core.Feasibility
module Reduce = Trust_core.Reduce

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_analyze_feasible () =
  let a = Feasibility.analyze Workload.Scenarios.example1 in
  check "feasible" true (Reduce.feasible a.Feasibility.outcome);
  check "sequence present" true (a.Feasibility.sequence <> None);
  check "no blockers" true (Feasibility.blocking_conjunctions a = [])

let test_analyze_infeasible () =
  let a = Feasibility.analyze Workload.Scenarios.example2 in
  check "infeasible" false (Reduce.feasible a.Feasibility.outcome);
  check "no sequence" true (a.Feasibility.sequence = None);
  let blockers = List.map Party.name (Feasibility.blocking_conjunctions a) in
  check "consumer blocks" true (List.mem "c" blockers);
  check "brokers block" true (List.mem "b1" blockers && List.mem "b2" blockers)

let test_is_feasible () =
  check "example1" true (Feasibility.is_feasible Workload.Scenarios.example1);
  check "example2" false (Feasibility.is_feasible Workload.Scenarios.example2)

let test_rescue_feasible_spec () =
  (* A feasible spec needs no plans. *)
  match Feasibility.rescue_with_indemnities Workload.Scenarios.example1 with
  | Some rescue ->
    check_int "no plans" 0 (List.length rescue.Feasibility.plans);
    check_int "zero indemnity" 0 (Feasibility.total_indemnity rescue)
  | None -> Alcotest.fail "example 1 needs no rescue"

let test_rescue_example2 () =
  match Feasibility.rescue_with_indemnities Workload.Scenarios.example2 with
  | Some rescue ->
    check_int "one conjunction split" 1 (List.length rescue.Feasibility.plans);
    check_int "minimal $10" (Asset.dollars 10) (Feasibility.total_indemnity rescue);
    check "now feasible" true (Reduce.feasible rescue.Feasibility.analysis.Feasibility.outcome)
  | None -> Alcotest.fail "example 2 is rescuable"

let test_rescue_fig7 () =
  match Feasibility.rescue_with_indemnities Workload.Scenarios.fig7 with
  | Some rescue ->
    check_int "fig7 total $70" (Asset.dollars 70) (Feasibility.total_indemnity rescue)
  | None -> Alcotest.fail "fig7 is rescuable"

let test_rescue_poor_broker_fails () =
  (* The poor broker's double-red conjunction is type 3: indemnities do
     not apply, so no rescue exists. *)
  check "no rescue" true
    (Feasibility.rescue_with_indemnities Workload.Scenarios.example1_poor_broker = None)

let prop_rescue_reaches_feasibility =
  QCheck2.Test.make ~name:"a successful rescue is actually feasible" ~count:150 QCheck2.Gen.int
    (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match Feasibility.rescue_with_indemnities spec with
      | None -> true
      | Some rescue -> Reduce.feasible rescue.Feasibility.analysis.Feasibility.outcome)

let prop_fans_always_rescuable =
  QCheck2.Test.make ~name:"pure fans are always rescuable by indemnities" ~count:60
    QCheck2.Gen.(list_size (int_range 2 6) (int_range 1 40))
    (fun dollar_prices ->
      let prices = List.map Asset.dollars dollar_prices in
      Feasibility.rescue_with_indemnities (Workload.Gen.fan ~prices) <> None)

let () =
  Alcotest.run "feasibility"
    [
      ( "analysis",
        [
          Alcotest.test_case "feasible analysis" `Quick test_analyze_feasible;
          Alcotest.test_case "infeasible analysis" `Quick test_analyze_infeasible;
          Alcotest.test_case "is_feasible" `Quick test_is_feasible;
        ] );
      ( "rescue",
        [
          Alcotest.test_case "feasible spec needs no rescue" `Quick test_rescue_feasible_spec;
          Alcotest.test_case "example 2 rescued" `Quick test_rescue_example2;
          Alcotest.test_case "fig7 rescued at $70" `Quick test_rescue_fig7;
          Alcotest.test_case "poor broker unrescuable" `Quick test_rescue_poor_broker_fails;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rescue_reaches_feasibility; prop_fans_always_rescuable ] );
    ]
