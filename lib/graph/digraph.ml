(* Adjacency lists are stored in *reverse* insertion order so that
   [add_edge] is a cons, not an append; every reader goes through
   {!succ}/{!pred}, which reverse back to insertion order. Edge
   membership is a hash table so dense-graph construction is O(E)
   instead of the former O(E * deg) append-and-scan. *)
type t = {
  mutable size : int;
  mutable succs : int list array;  (** reverse insertion order *)
  mutable preds : int list array;  (** reverse insertion order *)
  edge_set : (int * int, unit) Hashtbl.t;
  mutable n_edges : int;
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  {
    size = 0;
    succs = Array.make cap [];
    preds = Array.make cap [];
    edge_set = Hashtbl.create (4 * cap);
    n_edges = 0;
  }

let copy g =
  {
    size = g.size;
    succs = Array.copy g.succs;
    preds = Array.copy g.preds;
    edge_set = Hashtbl.copy g.edge_set;
    n_edges = g.n_edges;
  }

let ensure_capacity g n =
  let cap = Array.length g.succs in
  if n > cap then begin
    let cap' =
      let rec grow c = if c >= n then c else grow (2 * c) in
      grow cap
    in
    let succs' = Array.make cap' [] and preds' = Array.make cap' [] in
    Array.blit g.succs 0 succs' 0 g.size;
    Array.blit g.preds 0 preds' 0 g.size;
    g.succs <- succs';
    g.preds <- preds'
  end

let add_node g =
  ensure_capacity g (g.size + 1);
  let id = g.size in
  g.size <- g.size + 1;
  g.succs.(id) <- [];
  g.preds.(id) <- [];
  id

let add_nodes g n =
  let rec loop k acc = if k = 0 then List.rev acc else loop (k - 1) (add_node g :: acc) in
  loop n []

let mem_node g v = v >= 0 && v < g.size

let check_node g v =
  if not (mem_node g v) then
    invalid_arg (Printf.sprintf "Digraph: node %d not in graph of size %d" v g.size)

let mem_edge g u v = mem_node g u && mem_node g v && Hashtbl.mem g.edge_set (u, v)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if not (Hashtbl.mem g.edge_set (u, v)) then begin
    Hashtbl.add g.edge_set (u, v) ();
    g.succs.(u) <- v :: g.succs.(u);
    g.preds.(v) <- u :: g.preds.(v);
    g.n_edges <- g.n_edges + 1
  end

let remove_edge g u v =
  if mem_edge g u v then begin
    Hashtbl.remove g.edge_set (u, v);
    g.succs.(u) <- List.filter (fun w -> w <> v) g.succs.(u);
    g.preds.(v) <- List.filter (fun w -> w <> u) g.preds.(v);
    g.n_edges <- g.n_edges - 1
  end

let node_count g = g.size
let edge_count g = g.n_edges

let succ g v =
  check_node g v;
  List.rev g.succs.(v)

let pred g v =
  check_node g v;
  List.rev g.preds.(v)

let out_degree g v = List.length (succ g v)
let in_degree g v = List.length (pred g v)
let degree g v = out_degree g v + in_degree g v

let nodes g = List.init g.size (fun i -> i)

let fold_nodes f g acc =
  let rec loop i acc = if i = g.size then acc else loop (i + 1) (f i acc) in
  loop 0 acc

let fold_edges f g acc =
  fold_nodes (fun u acc -> List.fold_left (fun acc v -> f u v acc) acc (succ g u)) g acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])
let iter_nodes f g = List.iter f (nodes g)
let iter_edges f g = fold_edges (fun u v () -> f u v) g ()

let topological_sort g =
  let indeg = Array.make g.size 0 in
  iter_nodes (fun v -> indeg.(v) <- in_degree g v) g;
  let queue = Queue.create () in
  iter_nodes (fun v -> if indeg.(v) = 0 then Queue.add v queue) g;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    order := u :: !order;
    let lower v =
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then Queue.add v queue
    in
    List.iter lower (succ g u)
  done;
  if !seen = g.size then Some (List.rev !order) else None

let has_cycle g = topological_sort g = None

let reachable g start =
  check_node g start;
  let seen = Hashtbl.create 16 in
  let rec visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      List.iter visit (succ g v)
    end
  in
  visit start;
  seen

let is_reachable g u v =
  check_node g v;
  Hashtbl.mem (reachable g u) v

(* Tarjan's algorithm, iterative to survive deep chain graphs. *)
let scc g =
  let n = g.size in
  let index = Array.make n (-1)
  and lowlink = Array.make n 0
  and on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and components = ref [] in
  let push v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true
  in
  let pop_component root =
    let rec pop acc =
      match !stack with
      | [] -> acc
      | v :: rest ->
        stack := rest;
        on_stack.(v) <- false;
        if v = root then v :: acc else pop (v :: acc)
    in
    components := pop [] :: !components
  in
  (* Explicit call stack: each frame is (node, remaining successors). *)
  let rec run frames =
    match frames with
    | [] -> ()
    | (v, []) :: rest ->
      pop_if_root v;
      (match rest with
      | (p, ws) :: tail ->
        lowlink.(p) <- min lowlink.(p) lowlink.(v);
        run ((p, ws) :: tail)
      | [] -> ())
    | (v, w :: ws) :: rest ->
      if index.(w) = -1 then begin
        push w;
        run ((w, succ g w) :: (v, ws) :: rest)
      end
      else begin
        if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w);
        run ((v, ws) :: rest)
      end
  and pop_if_root v = if lowlink.(v) = index.(v) then pop_component v in
  iter_nodes
    (fun v ->
      if index.(v) = -1 then begin
        push v;
        run [ (v, succ g v) ]
      end)
    g;
  !components

let neighbours g v = succ g v @ pred g v

let undirected_components g =
  let seen = Array.make g.size false in
  let component start =
    let queue = Queue.create () and members = ref [] in
    Queue.add start queue;
    seen.(start) <- true;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      members := u :: !members;
      let visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end
      in
      List.iter visit (neighbours g u)
    done;
    List.rev !members
  in
  List.rev
    (fold_nodes (fun v acc -> if seen.(v) then acc else component v :: acc) g [])

let two_colouring g =
  let colour = Array.make g.size (-1) in
  let exception Odd_cycle in
  let bfs start =
    let queue = Queue.create () in
    colour.(start) <- 0;
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let visit v =
        if colour.(v) = -1 then begin
          colour.(v) <- 1 - colour.(u);
          Queue.add v queue
        end
        else if colour.(v) = colour.(u) then raise Odd_cycle
      in
      List.iter visit (neighbours g u)
    done
  in
  match iter_nodes (fun v -> if colour.(v) = -1 then bfs v) g with
  | () -> Some (fun v -> colour.(v))
  | exception Odd_cycle -> None

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph with %d nodes, %d edges" g.size g.n_edges;
  iter_nodes
    (fun v ->
      match succ g v with
      | [] -> ()
      | vs ->
        Format.fprintf ppf "@,%d -> %a" v
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             Format.pp_print_int)
          vs)
    g;
  Format.fprintf ppf "@]"
