(** Sequencing graphs (paper §4.1).

    A sequencing graph [SG = (C, J, R, B)] of an interaction graph has a
    {e commitment node} per interaction edge, a {e conjunction node} per
    internal interaction node, and an edge between a commitment and the
    conjunction of each of its endpoint parties — {e red} when the spec
    prioritises that commitment within the conjunction (it must be
    committed before its siblings), {e black} otherwise. Conjunction
    edges split by an indemnity (§6) are simply absent.

    The structure is mutable: {!Reduce} deletes edges in place. Build a
    fresh graph (or {!copy}) per reduction run. *)

open Exchange

type colour = Red | Black

type commitment = {
  cid : int;
  cref : Spec.commitment_ref;
  principal : Party.t;
  agent : Party.t;  (** the trusted role (not persona-resolved) *)
}

type conjunction = {
  jid : int;
  owner : Party.t;
  scope : string option;
      (** [Some deal] when the owner is a trusted agent whose deals are
          analysed independently (granular mode, §9): one conjunction
          per deal it mediates instead of one monolithic all-or-nothing
          node *)
}

type t

val build : ?granular:bool -> Spec.t -> t
(** Construct the sequencing graph of a spec's interaction graph.
    Commitment nodes are numbered in {!Spec.commitments} order,
    conjunction nodes in {!Spec.internal_parties} order.

    With [granular] (default [false]) a trusted agent mediating several
    deals gets one conjunction {e per deal} instead of the paper's
    single all-or-nothing node — the §9 reading under which "an agent
    trusted by more than two parties" simply runs several pairwise
    escrows. Principal conjunctions are unaffected. *)

val coordinated_bundles : Spec.t -> (Party.t * Party.t) list
(** [(owner, agent)] pairs where the owner's unsplit conjunction is a
    pure bundle that one non-persona agent can coordinate atomically:
    at least two linked own-side pieces, no red edge owned by anyone on
    those deals' commitments, every piece through the same agent. These
    are exactly the conjunctions {!Reduce.Rule3_shared} may split and
    the agents the runtime must make atomic. *)

val copy : t -> t
val spec : t -> Spec.t

val commitments : t -> commitment array
val conjunctions : t -> conjunction array
val commitment_count : t -> int
val conjunction_count : t -> int

val commitment : t -> int -> commitment
val conjunction : t -> int -> conjunction

val conjunction_of_party : t -> Party.t -> conjunction option

val edges_of_commitment : t -> int -> (int * colour) list
(** Remaining (conjunction id, colour) edges of a commitment; a
    commitment has at most two. *)

val edges_of_conjunction : t -> int -> (int * colour) list
(** Remaining (commitment id, colour) edges of a conjunction. *)

val edge_colour : t -> cid:int -> jid:int -> colour option
val edge_count : t -> int
val remove_edge : t -> cid:int -> jid:int -> unit
(** Used by {!Reduce}; removing an absent edge is a no-op. *)

val commitment_fringe : t -> int -> bool
(** At most one remaining edge (§4.2.1: "on the fringe"). *)

val conjunction_fringe : t -> int -> bool

val red_sibling : t -> cid:int -> jid:int -> int option
(** A remaining red edge [(b, jid)] with [b <> cid], if any — the
    pre-emption test of Rule #1. *)

val plays_own_agent : t -> int -> bool
(** Rule #1 clause 2: the commitment's principal plays its trusted role. *)

val is_disconnected_commitment : t -> int -> bool
val is_disconnected_conjunction : t -> int -> bool
val fully_reduced : t -> bool
(** No edges remain — the §4.2.4 feasibility test. *)

val check_invariants : t -> (unit, string) result
(** Structural invariants: bipartiteness (edges join exactly one
    commitment and one conjunction), commitment degree at most two,
    every edge endpoint party matches, red edges recorded in the spec. *)

val to_dot : t -> string
(** Graphviz rendering in the paper's style: hexagonal commitment
    nodes, square conjunction nodes, bold red edges (Figs. 3–4). *)

val to_ascii : t -> string
(** Terminal rendering of the same figure: one block per conjunction
    listing its remaining edges (double-struck for red), then the
    commitments that are already free of conjunctions. Rendering a
    reduced graph shows Figs. 5–6. *)

val pp : Format.formatter -> t -> unit
val pp_colour : Format.formatter -> colour -> unit
