lib/sim/behavior.mli: Action Exchange Format Party Spec Trust_core
