test/test_state.mli:
