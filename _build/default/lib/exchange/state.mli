(** Exchange states and acceptability (paper §2.3).

    The state of an exchange is the unordered set of actions executed so
    far. Each party holds a set of partial state descriptions; a final
    state is acceptable to that party when it contains a superset of the
    actions of some description {e and} contains no other action
    performed by that party. One description per party is marked
    preferred — the outcome the protocol should steer towards. *)

type t
(** An exchange state: a set of executed actions. The formalism treats
    states as sets (§2.3), so duplicate insertions collapse. *)

val empty : t
(** The status quo. *)

val record : Action.t -> t -> t
val of_actions : Action.t list -> t
val actions : t -> Action.t list
val mem : Action.t -> t -> bool
val cardinal : t -> int
val union : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

val performed_by : Party.t -> t -> Action.t list
(** All actions in the state whose {!Action.performer} is the party. *)

val net_assets : Party.t -> t -> Asset.Bag.t * Asset.Bag.t
(** [(gained, lost)] — assets that flowed to and away from the party over
    the recorded transfers (notifications carry nothing). An [Undo]
    counts as the reverse flow of its transfer. *)

val pp : Format.formatter -> t -> unit

(** {1 Acceptability} *)

type description = {
  requires : Action.Pattern.t list;
      (** the state must contain an action matching each of these *)
  permits : Action.Pattern.t list;
      (** additional own actions tolerated beyond [requires]; the
          paper's plain action-set descriptions have [permits = []] *)
}
(** One acceptable partial outcome. The paper's descriptions are sets of
    actions; patterns generalise them ("with X ranging over …", §3.1)
    without changing the containment semantics. *)

val describes : Action.Pattern.t list -> description
(** A plain paper-style description: [requires] only. *)

type acceptability = {
  descriptions : description list;  (** all acceptable outcomes *)
  preferred : description;  (** should be one of [descriptions] *)
}

val acceptable : acceptability -> party:Party.t -> t -> bool
(** [acceptable spec ~party state] per §2.3: some description [d] has all
    its [requires] patterns matched by actions of [state], and every
    action of [state] performed by [party] matches some pattern of
    [d.requires] or [d.permits]. *)

val preferred_reached : acceptability -> t -> bool
(** All [requires] patterns of the preferred description are matched. *)

val always_acceptable : acceptability
(** A party with no stake: accepts any state whatsoever. *)
