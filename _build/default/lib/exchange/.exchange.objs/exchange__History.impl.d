lib/exchange/history.ml: Action Asset Format Int List Outcomes Party State
