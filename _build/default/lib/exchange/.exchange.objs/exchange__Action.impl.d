lib/exchange/action.ml: Asset Format Party
