(** The trustseq daemon: a long-lived exchange service.

    One process, one {!Trust_serve.Cache} and one
    {!Trust_serve.Metrics} registry, serving spec submissions over the
    length-prefixed {!Wire} protocol on a Unix socket and/or a TCP
    listener. The event loop is a single [select] thread: connections
    are nonblocking, input is reassembled per-connection by a
    {!Frame.decoder}, and each admitted submission runs synchronously
    through {!Trust_serve.Scheduler.process_one} — the same lifecycle
    (admission lint, cached synthesis, engine run, audit) a batch
    session gets, parented under a [daemon.request] root span when
    tracing.

    {2 Admission and backpressure}

    A select round may deliver many pipelined requests at once; at most
    [max_pending] are queued for the processing pass and the rest are
    answered [busy] immediately. Nothing is ever buffered without
    bound: input is capped by [max_frame], the work queue by
    [max_pending], and output buffers drain through the same select
    loop.

    {2 Cache aging}

    Every [epoch_every] served requests the daemon advances the cache
    epoch ({!Trust_serve.Cache.advance_epoch}), sweeping entries idle
    for [max_idle_epochs] — the Zipf long tail ages out while
    heavy-hitter and catalog shapes stay warm. Each tick also refreshes
    the [serve_cache_epoch] / [serve_cache_size] gauges, adds the sweep
    to [serve_cache_aged_out_total], and rewrites the metrics snapshot
    (atomic rename) when [snapshot_path] is set.

    {2 Graceful drain}

    When [stop] becomes true (the CLI sets it from SIGTERM/SIGINT) the
    daemon stops accepting, processes everything already admitted,
    flushes every response buffer (bounded by a few seconds), writes a
    final snapshot and returns with [drained = true]. In-flight clients
    get their answers; only connections that were mid-frame lose an
    unparseable prefix they never completed. *)

type config = {
  unix_path : string option;  (** listen on this Unix socket path *)
  tcp : (string * int) option;  (** and/or on host, port *)
  policy : Trust_serve.Cache.policy;
  cache_capacity : int;
  scheduler : Trust_serve.Scheduler.config;  (** per-request engine knobs *)
  max_pending : int;  (** admission bound; excess submissions get [busy] *)
  max_frame : int;  (** wire frame bound, bytes *)
  epoch_every : int;  (** served requests per cache epoch tick *)
  max_idle_epochs : int;  (** sweep entries idle this many epochs *)
  snapshot_path : string option;  (** metrics exposition, atomically rewritten *)
  trace_path : string option;
      (** durable trace sink: every {e kept} session (head-sampled or
          tail-promoted) appended as JSONL at close *)
  trace_ring : int;
      (** live trace-ring capacity in bytes ([0] disables tracing
          entirely when [trace_path] is also unset); drained by the
          [trace] wire request *)
  trace_sample : float;
      (** head-sampling rate over wire session ids — deterministic per
          {!Trust_obs.Sampler} under the scheduler seed. Unsampled
          requests run untraced on the compiled fast path; at close the
          tail keep rules ({!Trust_serve.Scheduler.tail_reason}) promote
          any session with an exposure violation, retry, expiry or lint
          refusal by re-running it with a live sink — determinism makes
          the replayed trace what head sampling would have recorded. *)
  mine_every : int;
      (** every N served requests, self-drain the ring, fold the kept
          sessions into the {!Trust_obs.Mine} scoreboard and apply the
          feedback policy (pin/pre-warm and deny below); [0] (the
          default) disables the loop. The drain consumes the same
          window the [trace] wire request reads. *)
  mine_pin : int;
      (** pin/pre-warm shapes with at least this many retry or expiry
          incidents on the scoreboard (and no exposure violations);
          [0] disables pinning *)
  mine_deny : int;
      (** deny-list shapes whose kept sessions include at least this
          many §5 exposure-violating runs; refused submissions answer
          [refused] with the [TM001] diagnostic. [0] disables. *)
  defect_every : int;
      (** fault injection for smokes and soaks: every N-th session's
          first defectable principal goes silent (the batch Service
          knob); [0] (the default) injects nothing *)
  banner : string;  (** the [server] field of the welcome *)
}

val default : config
(** No listeners (callers must set at least one), default policy and
    scheduler, capacity 4096, 64 pending, 1 MiB frames, epoch every
    256 requests, sweep after 2 idle epochs. Tracing is on by default
    at production cost: a 1 MiB ring, 1% head sampling, tail keeps
    always. *)

type stats = {
  served : int;  (** submissions fully processed *)
  settled : int;
  expired : int;
  aborted : int;  (** includes parse/elaborate rejections *)
  busy : int;  (** submissions bounced by admission control *)
  protocol_errors : int;  (** handshake/framing/decode failures *)
  connections : int;  (** accepted over the lifetime *)
  epochs : int;  (** cache epoch ticks *)
  aged_out : int;  (** cache entries swept by aging *)
  cache_size : int;  (** resident entries at exit *)
  drained : bool;  (** the loop exited through the drain path *)
}

val run : ?stop:bool Atomic.t -> ?metrics:Trust_serve.Metrics.t -> config -> stats
(** Serve until [stop] is set (an internal atomic nobody sets, i.e.
    forever, when omitted). Creates a fresh metrics registry when none
    is given. @raise Invalid_argument when no listener is configured. *)

val stats_json : stats -> string
(** One-line JSON of the counters above. *)
