module Pattern = Action.Pattern

type deal_outcome = Nothing | Complete | Refunded | Windfall | Indemnified | Loss

let pp_deal_outcome ppf o =
  Format.pp_print_string ppf
    (match o with
    | Nothing -> "nothing"
    | Complete -> "complete"
    | Refunded -> "refunded"
    | Windfall -> "windfall"
    | Indemnified -> "indemnified"
    | Loss -> "LOSS")

let deal_and_side spec cref =
  match Spec.find_deal spec cref.Spec.deal with
  | None -> invalid_arg ("Outcomes: unknown deal " ^ cref.Spec.deal)
  | Some d -> (d, cref.Spec.side)

(* The transfer a principal performs for its commitment: its item goes to
   whoever actually plays the trusted role (§4.2.3 personas included).
   When the principal plays the role itself, the deposit is a no-op and
   its visible send is the direct delivery to the counterparty. *)
let send_transfer spec d side =
  let principal = Spec.commitment_principal d side in
  let agent = Spec.effective_agent spec d in
  let target =
    if Party.equal agent principal then Spec.commitment_principal d (Spec.other_side side)
    else agent
  in
  Action.{ source = principal; target; asset = Spec.commitment_sends d side }

let received_from_deal spec ~party d side state =
  let expects = Spec.commitment_expects d side in
  let counterparty = Spec.commitment_principal d (Spec.other_side side) in
  let sources = [ Spec.effective_agent spec d; d.Spec.via; counterparty ] in
  let came_from src = State.mem (Action.Do { source = src; target = party; asset = expects }) state in
  List.exists came_from sources

let payout_received spec ~party cref state =
  let amount = Spec.indemnity_amount spec party cref in
  amount > 0
  && List.exists
       (fun action ->
         match action with
         | Action.Do { target; asset = Asset.Money m; _ } ->
           Party.equal target party && m >= amount
         | Action.Do _ | Action.Undo _ | Action.Notify _ -> false)
       (State.actions state)

let classify spec ~party cref state =
  let d, side = deal_and_side spec cref in
  if not (Party.equal (Spec.commitment_principal d side) party) then
    invalid_arg "Outcomes.classify: party is not the principal of that commitment";
  let transfer = send_transfer spec d side in
  let sent = State.mem (Action.Do transfer) state in
  let refunded = State.mem (Action.Undo transfer) state in
  let received = received_from_deal spec ~party d side state in
  match (sent, received, refunded) with
  | true, true, _ -> Complete
  | true, false, true ->
    if Spec.is_split spec party cref && payout_received spec ~party cref state then Indemnified
    else Refunded
  | true, false, false -> Loss
  | false, true, _ -> Windfall
  | false, false, _ -> Nothing

(* Outgoing transfers by a principal that belong to no deal of its own
   (e.g. an indemnity deposit) must have been undone, or the principal is
   out that asset. *)
let extraneous_loss spec ~party state =
  let own_sends =
    List.filter_map
      (fun cref ->
        let d, side = deal_and_side spec cref in
        if Party.equal (Spec.commitment_principal d side) party then
          Some (send_transfer spec d side)
        else None)
      (Spec.commitments_of spec party)
  in
  let is_deal_send tr =
    List.exists
      (fun own ->
        Party.equal own.Action.target tr.Action.target && Asset.equal own.Action.asset tr.Action.asset)
      own_sends
  in
  List.exists
    (fun action ->
      match action with
      | Action.Do tr ->
        Party.equal tr.Action.source party
        && (not (is_deal_send tr))
        && not (State.mem (Action.Undo tr) state)
      | Action.Undo _ | Action.Notify _ -> false)
    (State.actions state)

let conduit_clean ~party state =
  let gained, lost = State.net_assets party state in
  Asset.Bag.equal gained lost

let principal_refs spec party =
  List.filter
    (fun cref ->
      let d, side = deal_and_side spec cref in
      Party.equal (Spec.commitment_principal d side) party)
    (Spec.commitments_of spec party)

let judge spec ~party state =
  (* (item-level no-loss, full acceptability incl. the bundle rule) *)
  if Party.is_trusted party then
    let ok = conduit_clean ~party state in
    (ok, ok)
  else begin
    let refs = principal_refs spec party in
    let linked, split = List.partition (fun c -> not (Spec.is_split spec party c)) refs in
    let outcomes = List.map (fun c -> (c, classify spec ~party c state)) linked in
    let no_loss = List.for_all (fun (_, o) -> o <> Loss) outcomes in
    let delivered (_, o) = match o with Complete | Windfall -> true | _ -> false in
    let inert (_, o) = match o with Nothing | Refunded | Windfall -> true | _ -> false in
    let bundle_ok =
      outcomes = [] || List.for_all delivered outcomes || List.for_all inert outcomes
    in
    let split_outcomes = List.map (fun c -> classify spec ~party c state) split in
    (* A bare refund on a split piece loses no asset, but it breaks the
       promise the indemnity made — unacceptable, not a loss. *)
    let split_ok =
      List.for_all
        (function
          | Nothing | Complete | Windfall | Indemnified -> true
          | Refunded | Loss -> false)
        split_outcomes
    in
    let split_no_loss = List.for_all (fun o -> o <> Loss) split_outcomes in
    let items_whole =
      no_loss && split_no_loss && not (extraneous_loss spec ~party state)
    in
    (items_whole, items_whole && bundle_ok && split_ok)
  end

let acceptable spec ~party state =
  match Spec.acceptability_overrides spec party with
  | Some override -> State.acceptable override ~party state
  | None -> snd (judge spec ~party state)

let no_loss spec ~party state =
  match Spec.acceptability_overrides spec party with
  | Some override -> State.acceptable override ~party state
  | None -> fst (judge spec ~party state)

let preferred_reached spec ~party state =
  match Spec.acceptability_overrides spec party with
  | Some override -> State.preferred_reached override state
  | None ->
    if Party.is_trusted party then conduit_clean ~party state
    else
      List.for_all
        (fun c -> classify spec ~party c state = Complete)
        (principal_refs spec party)

(* Explicit description generation *)

let product options_per_deal ~max_size =
  let count =
    List.fold_left (fun acc opts -> acc * max 1 (List.length opts)) 1 options_per_deal
  in
  if count > max_size then
    invalid_arg
      (Printf.sprintf "Outcomes.descriptions: %d descriptions exceed the %d bound" count
         max_size);
  List.fold_left
    (fun partials opts ->
      List.concat_map (fun partial -> List.map (fun opt -> partial @ opt) opts) partials)
    [ [] ] options_per_deal

let principal_deal_patterns spec ~party cref =
  let d, side = deal_and_side spec cref in
  let tr = send_transfer spec d side in
  let expects = Spec.commitment_expects d side in
  let sent = Pattern.of_action (Action.Do tr) in
  let undone = Pattern.of_action (Action.Undo tr) in
  let received = Pattern.P_do (Pattern.Any_party, Pattern.Exactly party, Pattern.Exact_asset expects) in
  let complete = [ sent; received ] in
  let refunded = [ sent; undone ] in
  let windfall = [ received ] in
  let nothing = [] in
  let indemnified =
    let amount = Spec.indemnity_amount spec party cref in
    refunded
    @ [ Pattern.P_do (Pattern.Any_party, Pattern.Exactly party, Pattern.Money_at_least amount) ]
  in
  (complete, refunded, windfall, nothing, indemnified)

let principal_descriptions spec party ~max_size =
  let refs = principal_refs spec party in
  let linked, split = List.partition (fun c -> not (Spec.is_split spec party c)) refs in
  let pats c = principal_deal_patterns spec ~party c in
  let all_complete =
    State.describes (List.concat_map (fun c -> let (complete, _, _, _, _) = pats c in complete) refs)
  in
  let delivered_options c = let (complete, _, windfall, _, _) = pats c in [ complete; windfall ] in
  let inert_options c =
    let (_, refunded, windfall, nothing, _) = pats c in
    [ nothing; refunded; windfall ]
  in
  let split_options c =
    let (complete, _, windfall, nothing, indemnified) = pats c in
    [ nothing; complete; windfall; indemnified ]
  in
  let bundle =
    product (List.map delivered_options linked) ~max_size
    @ product (List.map inert_options linked) ~max_size
  in
  let split_products = product (List.map split_options split) ~max_size in
  let combos =
    List.concat_map (fun b -> List.map (fun s -> State.describes (b @ s)) split_products) bundle
  in
  if List.length combos > max_size then
    invalid_arg "Outcomes.descriptions: combination bound exceeded";
  State.{ descriptions = combos; preferred = all_complete }

let trusted_descriptions spec party ~max_size =
  let mediated = List.filter (fun d -> Party.equal d.Spec.via party) spec.Spec.deals in
  let deal_options d =
    let left_tr = Action.{ source = d.Spec.left; target = party; asset = d.Spec.left_sends } in
    let right_tr = Action.{ source = d.Spec.right; target = party; asset = d.Spec.right_sends } in
    let fwd_left = Action.{ source = party; target = d.Spec.left; asset = d.Spec.right_sends } in
    let fwd_right = Action.{ source = party; target = d.Spec.right; asset = d.Spec.left_sends } in
    let pat a = Pattern.of_action a in
    let conduit =
      [ pat (Action.Do left_tr); pat (Action.Do right_tr); pat (Action.Do fwd_left); pat (Action.Do fwd_right) ]
    in
    let left_back = [ pat (Action.Do left_tr); pat (Action.Undo left_tr) ] in
    let right_back = [ pat (Action.Do right_tr); pat (Action.Undo right_tr) ] in
    ([], conduit, left_back, right_back)
  in
  let options d =
    let nothing, conduit, left_back, right_back = deal_options d in
    [ nothing; conduit; left_back; right_back ]
  in
  let permits =
    [ Pattern.P_notify (Pattern.Exactly party, Pattern.Any_party);
      Pattern.P_undo (Pattern.Any_party, Pattern.Exactly party, Pattern.Any_asset) ]
  in
  let describe patterns = State.{ requires = patterns; permits } in
  let combos = List.map describe (product (List.map options mediated) ~max_size) in
  let preferred =
    describe
      (List.concat_map (fun d -> let _, conduit, _, _ = deal_options d in conduit) mediated)
  in
  State.{ descriptions = combos; preferred }

let descriptions ?(max_size = 20_000) spec party =
  match Spec.acceptability_overrides spec party with
  | Some override -> override
  | None ->
    if Party.is_trusted party then trusted_descriptions spec party ~max_size
    else principal_descriptions spec party ~max_size
