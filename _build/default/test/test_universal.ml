(* §8's universal trusted intermediary, executed: "if a single trusted
   intermediary may be used for the entire system in any exchange
   between two principals, then any exchange becomes feasible, without
   indemnities". *)

open Exchange
module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Audit = Trust_sim.Audit

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let universal ?defectors spec = Harness.universal_run ?defectors spec

let test_example2_completes () =
  (* infeasible with local agents (E3); the universal coordinator runs it *)
  let spec = Workload.Scenarios.example2 in
  check "locally infeasible" false (Trust_core.Feasibility.is_feasible spec);
  let result, uni = universal spec in
  let report = Audit.audit uni result in
  check "universal run completes" true report.Audit.all_preferred;
  check "conserved" true report.Audit.conserved;
  check_int "no stalls" 0 (List.length result.Engine.stalled)

let test_fig7_completes () =
  let result, uni = universal Workload.Scenarios.fig7 in
  check "fig7 completes without indemnities" true (Audit.audit uni result).Audit.all_preferred

let test_poor_broker_completes () =
  (* even the poor broker: the coordinator nets the payments internally,
     so the broker's missing float no longer matters once its sale is in *)
  let result, uni = universal Workload.Scenarios.example1_poor_broker in
  check "completes" true (Audit.audit uni result).Audit.all_preferred

let test_message_count_matches_tally () =
  (* the §8 cost model: two messages per commitment *)
  let spec = Workload.Scenarios.example2 in
  let result, _ = universal spec in
  let expected = (Trust_core.Cost.universal_tally spec).Trust_core.Cost.total in
  check_int "deliveries match the tally" expected (List.length result.Engine.log)

let test_nothing_moves_until_ready () =
  (* with a silent producer, every deposit is eventually refunded and
     nothing was ever forwarded *)
  let spec = Workload.Scenarios.example2 in
  let s1 = Party.producer "s1" in
  let result, uni = universal ~defectors:[ (s1, Harness.Silent) ] spec in
  let report = Audit.audit uni ~defectors:[ s1 ] result in
  check "honest acceptable" true report.Audit.honest_all_acceptable;
  check "no forwards happened" true
    (List.for_all
       (fun d ->
         match d.Engine.action with
         | Action.Do tr -> not (Party.is_trusted tr.Action.source)
         | Action.Undo _ -> true
         | Action.Notify _ -> false)
       result.Engine.log)

let test_defecting_broker_after_launch () =
  (* a broker that deposits its money but absconds with the forwarded
     document: it paid full price for it, so nobody else is hurt *)
  let spec = Workload.Scenarios.example2 in
  let b1 = Party.broker "b1" in
  (* Partial 1 performs only the money deposit, never the re-deposit *)
  let result, uni = universal ~defectors:[ (b1, Harness.Partial 1) ] spec in
  let report = Audit.audit uni ~defectors:[ b1 ] result in
  check "honest parties whole" true report.Audit.honest_no_loss;
  check "conserved" true report.Audit.conserved

let test_sweep_all_scenarios () =
  (* every paper scenario — including every locally infeasible one —
     completes under the universal coordinator *)
  List.iter
    (fun (name, spec) ->
      let result, uni = universal spec in
      let report = Audit.audit uni result in
      if not report.Audit.all_preferred then
        Alcotest.failf "%s: universal run did not complete" name)
    Workload.Scenarios.all

let prop_universal_always_completes =
  QCheck2.Test.make ~name:"generated transactions always complete universally" ~count:80
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      let result, uni = universal spec in
      (Audit.audit uni result).Audit.all_preferred)

let prop_universal_single_defector_safe =
  QCheck2.Test.make ~name:"universal runs keep honest parties whole under defection"
    ~count:60 QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match Spec.principals spec with
      | [] -> true
      | defector :: _ ->
        let result, uni = universal ~defectors:[ (defector, Harness.Silent) ] spec in
        (Audit.audit uni ~defectors:[ defector ] result).Audit.honest_no_loss)

let () =
  Alcotest.run "universal"
    [
      ( "completion (para 8)",
        [
          Alcotest.test_case "example 2 completes" `Quick test_example2_completes;
          Alcotest.test_case "fig7 completes" `Quick test_fig7_completes;
          Alcotest.test_case "poor broker completes" `Quick test_poor_broker_completes;
          Alcotest.test_case "message count" `Quick test_message_count_matches_tally;
          Alcotest.test_case "all scenarios" `Quick test_sweep_all_scenarios;
        ] );
      ( "safety",
        [
          Alcotest.test_case "nothing moves until ready" `Quick test_nothing_moves_until_ready;
          Alcotest.test_case "post-launch defection" `Quick test_defecting_broker_after_launch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_universal_always_completes; prop_universal_single_defector_safe ] );
    ]
