(** Sequencing-graph reduction (paper §4.2).

    Two rules delete edges until none applies:

    - {b Rule #1} — a fringe commitment node's edge [(c, j)] may be
      removed when no {e other} remaining red edge [(b, j)] pre-empts
      it, or when the commitment's principal itself plays its trusted
      role (direct trust, §4.2.3/§4.2.4 clause 2).
    - {b Rule #2} — a fringe conjunction node's last edge may be removed.

    §4.2.4: reductions are confluent — any maximal series of reductions
    yields the same feasibility verdict — so a greedy strategy suffices.
    The deterministic strategy applies Rule #2 eagerly after each
    deletion (conjunction disconnects, i.e. notifications, fire as soon
    as enabled) and otherwise scans commitments in index order; this is
    the order the paper walks through for Example #1. The randomized
    strategy exists to test confluence. *)

type rule =
  | Rule1  (** fringe commitment, not pre-empted *)
  | Rule1_persona  (** fringe commitment, pre-empted but principal plays its own agent *)
  | Rule2  (** fringe conjunction *)
  | Rule3_shared
      (** extension (§9 "an agent is trusted by more than two parties"):
          a principal's conjunction whose remaining commitments all pass
          through one trusted agent is enforced by that agent itself —
          the agent sees every piece and completes them atomically (§8's
          universal-intermediary argument) — so its black edges may be
          removed without the fringe requirement. Only applied by
          {!run_shared}. *)

type deletion = {
  step : int;  (** 1-based position in the deletion order *)
  rule : rule;
  cid : int;
  jid : int;
  colour : Sequencing.colour;
  commitment_disconnected : bool;  (** this deletion removed the commitment's last edge *)
  conjunction_disconnected : bool;
}

type verdict =
  | Feasible
  | Stuck of { remaining : (int * int * Sequencing.colour) list }
      (** remaining [(cid, jid, colour)] edges of the irreducible graph.
          §4.2.4: a stuck graph means no feasibility determination —
          the exchange is not {e shown} feasible (and for the exchange
          problems considered here, treated as infeasible). *)

type outcome = {
  verdict : verdict;
  deletions : deletion list;  (** in deletion order *)
  graph : Sequencing.t;  (** the (mutated) reduced graph *)
}

val run : ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> Sequencing.t -> outcome
(** Reduce with the deterministic strategy. The graph is mutated;
    pass a {!Sequencing.copy} to keep the original. This is the
    incremental {!run_worklist} reducer — near-linear for bounded
    conjunction degree, with the same deletion sequence the paper's
    Example #1 walkthrough follows; {!run_rescan} is the quadratic
    reference implementation it is property-tested against.

    When a trace [obs] is attached, the run opens a [reduce]-phase span
    (child of [parent]) carrying the per-rule profiler: one ["delete"]
    timeline event per rule application (step, rule, edge, colour,
    owner) and counters for rule applications, worklist pushes and the
    final verdict. Tracing never alters the reduction. *)

val run_rescan : ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> Sequencing.t -> outcome
(** The original rescanning reducer: recompute every applicable
    deletion after each step and pick by the deterministic priority.
    Quadratic; kept as the executable specification ({e test oracle})
    for {!run}/{!run_worklist}, which must match its verdicts {e and}
    deletion sequences exactly. Its profiler span records ["rescans"]
    (full scans of the graph) instead of worklist pushes. *)

val run_randomized : choose:(int -> int) -> Sequencing.t -> outcome
(** Reduce applying, at each step, a uniformly chosen applicable
    deletion: [choose n] must return an index in [\[0, n)]. Used by the
    confluence property tests. *)

val run_shared : ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> Sequencing.t -> outcome
(** The deterministic strategy of {!run} with {!Rule3_shared} also
    enabled. Strictly more permissive than the paper's two rules: it
    additionally recognises bundles whose pieces all flow through one
    trusted agent (the paper's own §8 argument, promoted to a rule as §9
    suggests). Requires the runtime counterpart — an {e atomic} escrow
    that forwards nothing until all its deals are in
    ({!Trust_sim.Behavior.escrow}) — for the verdict to be safe. *)

val run_worklist : ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> Sequencing.t -> outcome
(** Incremental reducer (what {!run} is): instead of re-scanning every
    node after each deletion (quadratic), it re-examines only the nodes
    a deletion can newly enable — the deleted edge's endpoints and the
    conjunction's other commitments. Candidates are kept in ordered
    sets mirroring the deterministic priority, so the deletion sequence
    is {e identical} to {!run_rescan}'s (property-tested), including
    the §5 execution-sequence-bearing order of Example #1. *)

val feasible : outcome -> bool

val applicable : Sequencing.t -> (rule * int * int) list
(** All currently applicable deletions [(rule, cid, jid)], commitments
    in index order. Both Rule #1 clauses and Rule #2 are reported;
    duplicates (an edge removable by several rules) are collapsed to the
    first applicable rule in the order Rule2, Rule1, Rule1_persona. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_deletion : Sequencing.t -> Format.formatter -> deletion -> unit
val pp_outcome : Format.formatter -> outcome -> unit
