(** The lint rules over an elaborated spec (plus its AST for source
    locations, when available).

    Structural rules (always run): TL001 unused-party (AST-only),
    TL002 dead-asset, TL003 unbacked-split, TL004 redundant-priority,
    TL005 contradictory-priorities, TL008 zero-value-leg.

    Structural conflict rules (always run, via {!Conflict}): TL013
    double-spend, TL014 over-pledged-indemnity.

    Deep rules ([deep:true]) additionally run the full feasibility
    pipeline: TL006 unreachable-acceptance / TL009
    rescuable-infeasibility (with the minimal stuck kernel as notes),
    TL007 vacuous-intermediary, TL012 unsafe-sequence (the safety
    verifier re-checking the synthesized sequence). When TL005 fires,
    TL006/TL009 are suppressed — the contradiction already explains the
    stuck graph.

    Static exposure rules ([deep:true] and [static:true], the default)
    reuse the synthesized sequence: TL015 deadline-race, TL016
    unprovable-bound and TL017 counterexample-schedule from
    {!Static_exposure}. *)

open Exchange

val check :
  ?file:string ->
  ?decls:Trust_lang.Ast.program ->
  ?static:bool ->
  deep:bool ->
  Spec.t ->
  Diagnostic.t list
(** Unsorted; {!Lint} sorts before rendering. *)
