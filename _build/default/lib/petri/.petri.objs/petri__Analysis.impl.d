lib/petri/analysis.ml: Array Hashtbl List Net Queue
