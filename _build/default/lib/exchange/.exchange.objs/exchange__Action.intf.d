lib/exchange/action.mli: Asset Format Party
