lib/sim/audit.ml: Asset Engine Exchange Format List Outcomes Party Spec Trust_core
