open Exchange

type status =
  | Queued
  | Synthesizing
  | Running
  | Settled
  | Aborted of string
  | Expired

type t = {
  id : int;
  spec : Spec.t;
  defectors : (Party.t * Trust_sim.Harness.defection) list;
  mutable status : status;
  mutable attempts : int;
  mutable cache_hit : bool;
  mutable started_at : int;
  mutable finished_at : int;
  mutable ticks : int;
  mutable events : int;
  mutable stalled : int;
  mutable exposure_peak : int;
  mutable exposure_ticks : int;
  mutable exposure_violations : int;
}

let make ~id ?(defectors = []) spec =
  {
    id;
    spec;
    defectors;
    status = Queued;
    attempts = 0;
    cache_hit = false;
    started_at = 0;
    finished_at = 0;
    ticks = 0;
    events = 0;
    stalled = 0;
    exposure_peak = 0;
    exposure_ticks = 0;
    exposure_violations = 0;
  }

let status_label = function
  | Queued -> "queued"
  | Synthesizing -> "synthesizing"
  | Running -> "running"
  | Settled -> "settled"
  | Aborted _ -> "aborted"
  | Expired -> "expired"

let is_terminal = function
  | Settled | Aborted _ -> true
  | Expired -> true
  | Queued | Synthesizing | Running -> false

let legal from into =
  match (from, into) with
  | Queued, Synthesizing -> true
  | Synthesizing, (Running | Aborted _) -> true
  | Running, (Settled | Expired | Aborted _) -> true
  | Expired, Queued -> true (* the scheduler's single retry *)
  | _, _ -> false

let transition t into =
  if not (legal t.status into) then
    invalid_arg
      (Printf.sprintf "Session.transition: session %d cannot go %s -> %s" t.id
         (status_label t.status) (status_label into));
  t.status <- into

let pp ppf t =
  Format.fprintf ppf "session %d: %s (attempts %d, %s, %d ticks, %d events)" t.id
    (status_label t.status) t.attempts
    (if t.cache_hit then "cache hit" else "cache miss")
    t.ticks t.events
