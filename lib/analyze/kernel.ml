open Exchange
module Sequencing = Trust_core.Sequencing
module Reduce = Trust_core.Reduce

type t = {
  edges : (int * int * Sequencing.colour) list;
  component_count : int;
}

(* Nodes of the bipartite residual graph, keyed apart. *)
type node = C of int | J of int

let components edges =
  let adj = Hashtbl.create 16 in
  let add a b =
    let old = try Hashtbl.find adj a with Not_found -> [] in
    Hashtbl.replace adj a (b :: old)
  in
  List.iter
    (fun (cid, jid, _) ->
      add (C cid) (J jid);
      add (J jid) (C cid))
    edges;
  let visited = Hashtbl.create 16 in
  let rec reach acc = function
    | [] -> acc
    | node :: rest ->
      if Hashtbl.mem visited node then reach acc rest
      else begin
        Hashtbl.add visited node ();
        let next = try Hashtbl.find adj node with Not_found -> [] in
        reach (node :: acc) (next @ rest)
      end
  in
  List.filter_map
    (fun (cid, _, _) ->
      if Hashtbl.mem visited (C cid) then None
      else
        let nodes = reach [] [ C cid ] in
        let members =
          List.filter
            (fun (c, j, _) -> List.mem (C c) nodes || List.mem (J j) nodes)
            edges
        in
        Some members)
    edges

let min_cid edges =
  List.fold_left (fun acc (cid, _, _) -> min acc cid) max_int edges

let of_outcome (outcome : Reduce.outcome) =
  match outcome.Reduce.verdict with
  | Reduce.Feasible -> None
  | Reduce.Stuck { remaining } ->
    let comps = components remaining in
    let best =
      List.fold_left
        (fun best comp ->
          match best with
          | None -> Some comp
          | Some b ->
            let lb = List.length b and lc = List.length comp in
            if lc < lb || (lc = lb && min_cid comp < min_cid b) then Some comp
            else best)
        None comps
    in
    Option.map
      (fun edges -> { edges; component_count = List.length comps })
      best

let explain graph kernel =
  let commitment cid = Sequencing.commitment graph cid in
  let conjunction jid = Sequencing.conjunction graph jid in
  let pp_c cid =
    let c = commitment cid in
    Format.asprintf "commitment %a (by %s)" Spec.pp_ref
      c.Sequencing.cref
      (Party.name c.Sequencing.principal)
  in
  let pp_j jid =
    let j = conjunction jid in
    Format.asprintf "conjunction of %s" (Party.name j.Sequencing.owner)
  in
  let edge_lines =
    List.map
      (fun (cid, jid, colour) ->
        Format.asprintf "%s %s-linked to %s" (pp_c cid)
          (match colour with Sequencing.Red -> "red" | Sequencing.Black -> "black")
          (pp_j jid))
      kernel.edges
  in
  let cids =
    List.sort_uniq Int.compare (List.map (fun (c, _, _) -> c) kernel.edges)
  in
  let jids =
    List.sort_uniq Int.compare (List.map (fun (_, j, _) -> j) kernel.edges)
  in
  let node_lines =
    List.filter_map
      (fun cid ->
        match Sequencing.edges_of_commitment graph cid with
        | [] | [ (_, Sequencing.Black) ] -> None
        | [ (jid, Sequencing.Red) ] -> (
          match Sequencing.red_sibling graph ~cid ~jid with
          | Some sibling ->
            Some
              (Format.asprintf "%s is on the fringe but pre-empted by red %s"
                 (pp_c cid) (pp_c sibling))
          | None -> None)
        | _ :: _ :: _ ->
          Some
            (Format.asprintf
               "%s still links two conjunctions, so it is not on the fringe"
               (pp_c cid)))
      cids
    @ List.filter_map
        (fun jid ->
          match Sequencing.edges_of_conjunction graph jid with
          | [] | [ _ ] -> None
          | edges ->
            let reds =
              List.filter
                (fun (_, colour) -> colour = Sequencing.Red)
                edges
            in
            if List.length reds >= 2 then
              Some
                (Format.asprintf
                   "%s holds %d red edges that mutually pre-empt each other"
                   (pp_j jid) (List.length reds))
            else
              Some
                (Format.asprintf "%s still holds %d edges" (pp_j jid)
                   (List.length edges)))
        jids
  in
  let header =
    Format.asprintf "minimal stuck kernel: %d edge(s)%s"
      (List.length kernel.edges)
      (if kernel.component_count > 1 then
         Format.asprintf " (smallest of %d stuck components)"
           kernel.component_count
       else "")
  in
  (header :: edge_lines) @ node_lines
