(* The million-principal universe: exact Zipf sampling, role
   partitioning, deterministic draws that survive the printer/parser
   round trip, and byte-identical catalog-template replay (the property
   the daemon's cache hits depend on). *)

module Universe = Workload.Universe
module Zipf = Workload.Zipf
module Prng = Workload.Prng
module Printer = Trust_lang.Printer
module Elaborate = Trust_lang.Elaborate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* small enough to be fast, big enough that the role shares bite *)
let small = { Universe.default_config with Universe.principals = 10_000 }

(* -- zipf -- *)

let test_zipf_pmf () =
  let z = Zipf.create ~n:50 ~s:1.1 in
  check_int "size" 50 (Zipf.size z);
  let total = ref 0. in
  for k = 0 to 49 do
    total := !total +. Zipf.pmf z k
  done;
  check "pmf sums to 1" true (abs_float (!total -. 1.) < 1e-9);
  for k = 0 to 48 do
    check "pmf monotone decreasing" true (Zipf.pmf z k > Zipf.pmf z (k + 1))
  done

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~s:0. in
  for k = 0 to 9 do
    check "s=0 is uniform" true (abs_float (Zipf.pmf z k -. 0.1) < 1e-9)
  done

let test_zipf_deterministic () =
  let z = Zipf.create ~n:1000 ~s:1.2 in
  let seq seed =
    let rng = Prng.create seed in
    List.init 100 (fun _ -> Zipf.sample z rng)
  in
  check "same seed, same ranks" true (seq 5L = seq 5L);
  check "different seed, different ranks" true (seq 5L <> seq 6L);
  List.iter (fun k -> check "ranks in range" true (k >= 0 && k < 1000)) (seq 5L)

let test_zipf_concentration () =
  (* s = 1.2 over a thousand ranks: rank 0 alone must dwarf the tail
     rank's mass — the heavy-hitter regime the brokers run in *)
  let z = Zipf.create ~n:1000 ~s:1.2 in
  check "head dominates tail" true (Zipf.pmf z 0 > 100. *. Zipf.pmf z 999);
  let rng = Prng.create 11L in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Zipf.sample z rng < 10 then incr hits
  done;
  check "top-10 ranks draw a big share" true (!hits > 300)

(* -- universe -- *)

let test_partition () =
  let u = Universe.create small in
  let total =
    Universe.consumers u + Universe.producers u + Universe.brokers u + Universe.agents u
  in
  check_int "partition covers the universe" small.Universe.principals total;
  check "consumers are the bulk" true (Universe.consumers u > Universe.producers u);
  check "brokers are rare" true (Universe.brokers u < Universe.producers u);
  check "every role is populated" true
    (Universe.consumers u > 0 && Universe.producers u > 0 && Universe.brokers u > 0
   && Universe.agents u > 0)

let test_tiny_universe_still_valid () =
  (* shares that round to zero must be floored to a workable cast *)
  let u = Universe.create { small with Universe.principals = 200 } in
  let rng = Prng.create 3L in
  for _ = 1 to 20 do
    ignore (Universe.sample u rng)
  done;
  check "tiny universe samples fine" true true

let test_draws_deterministic () =
  let u = Universe.create small in
  let seq seed =
    let rng = Prng.create seed in
    List.init 30 (fun _ -> Printer.to_string (Universe.sample u rng))
  in
  check "same seed, same specs" true (seq 42L = seq 42L);
  check "different seed, different traffic" true (seq 42L <> seq 43L)

let test_draws_roundtrip () =
  (* every drawn spec must survive print -> parse -> elaborate: the
     loadgen ships specs as DSL source, so a draw the language can't
     express would poison the wire *)
  let u = Universe.create small in
  let rng = Prng.create 7L in
  for i = 1 to 50 do
    let spec = Universe.sample u rng in
    let src = Printer.to_string spec in
    match Elaborate.from_string ~file:"<universe>" src with
    | Ok spec' ->
      check_string
        (Printf.sprintf "draw %d round trips" i)
        src
        (Printer.to_string spec')
    | Error e ->
      Alcotest.failf "draw %d does not elaborate: %s\n%s" i e src
  done

let test_template_replay_identical () =
  (* the catalog contract: traffic from the template slice repeats
     byte-identically across draws and across universes built from the
     same config *)
  let cfg = { small with Universe.template_share = 1.0; Universe.templates = 8 } in
  let u = Universe.create cfg in
  let draw rng = Printer.to_string (Universe.sample u rng) in
  let rng = Prng.create 1L in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 200 do
    let src = draw rng in
    match Hashtbl.find_opt seen src with
    | Some () -> ()
    | None -> Hashtbl.replace seen src ()
  done;
  check "at most the catalog size distinct" true (Hashtbl.length seen <= 8);
  check "more than one template drawn" true (Hashtbl.length seen > 1);
  (* a second universe from the same config replays the same catalog *)
  let u2 = Universe.create cfg in
  let rng1 = Prng.create 9L and rng2 = Prng.create 9L in
  for _ = 1 to 50 do
    check_string "universes agree on templates"
      (Printer.to_string (Universe.sample u rng1))
      (Printer.to_string (Universe.sample u2 rng2))
  done

let test_long_tail_mostly_distinct () =
  (* with the template slice off, casts are drawn from the Zipf laws
     directly: a small sample over ten thousand principals should
     rarely repeat a whole spec *)
  let cfg = { small with Universe.template_share = 0. } in
  let u = Universe.create cfg in
  let rng = Prng.create 21L in
  let seen = Hashtbl.create 64 in
  let n = 100 in
  for _ = 1 to n do
    Hashtbl.replace seen (Printer.to_string (Universe.sample u rng)) ()
  done;
  check "long tail is mostly fresh" true (Hashtbl.length seen > n / 2)

let () =
  Alcotest.run "universe"
    [
      ( "zipf",
        [
          Alcotest.test_case "pmf sums and orders" `Quick test_zipf_pmf;
          Alcotest.test_case "uniform at s=0" `Quick test_zipf_uniform;
          Alcotest.test_case "deterministic in the seed" `Quick test_zipf_deterministic;
          Alcotest.test_case "heavy-hitter concentration" `Quick test_zipf_concentration;
        ] );
      ( "universe",
        [
          Alcotest.test_case "role partition" `Quick test_partition;
          Alcotest.test_case "tiny universe floors" `Quick test_tiny_universe_still_valid;
          Alcotest.test_case "deterministic draws" `Quick test_draws_deterministic;
          Alcotest.test_case "draws elaborate round trip" `Quick test_draws_roundtrip;
          Alcotest.test_case "template replay identical" `Quick test_template_replay_identical;
          Alcotest.test_case "long tail mostly distinct" `Quick test_long_tail_mostly_distinct;
        ] );
    ]
