(** Ordered action histories — §2.3's "more expressive" alternative
    state representation, and the saga connection of §7.2.

    A history is the sequence of actions as they happened, where a
    {!State.t} is only the set. Order supports checks sets cannot
    express: a compensation must follow what it compensates, nothing is
    executed or reversed twice, and — the saga view — any incomplete
    history can be closed by a generated compensating tail that returns
    every party to the status quo. *)

type t
(** An ordered history, oldest first. *)

val empty : t
val append : Action.t -> t -> t
val of_actions : Action.t list -> t
val of_deliveries : (int * Action.t) list -> t
(** From timestamped deliveries (e.g. an {!Trust_sim.Engine.result} log,
    already chronological). Timestamps are kept for reporting. *)

val actions : t -> Action.t list
val length : t -> int
val to_state : t -> State.t
(** Forget the order (and any duplicates — states are sets, §2.3). *)

(** {1 Well-formedness} *)

type violation =
  | Undo_without_do of Action.transfer  (** compensated something that never happened *)
  | Undo_before_do of Action.transfer  (** ordered the other way around *)
  | Duplicate_do of Action.transfer
  | Duplicate_undo of Action.transfer

val well_formed : t -> (unit, violation list) result
(** Every [Undo] follows exactly one matching [Do]; no transfer happens
    or is reversed twice. Notifications are unconstrained. *)

val compensation_pairs : t -> (Action.transfer * int * int) list
(** Matched [(transfer, do-index, undo-index)] pairs, 0-based. *)

val open_transfers : t -> Action.transfer list
(** [Do]s without a matching [Undo], oldest first — what is still "in
    flight" or irrevocably delivered. *)

(** {1 Sagas (§7.2)} *)

val compensating_tail : t -> Action.t list
(** The [Undo]s that close every open transfer, newest first (sagas
    compensate in reverse order). Appending them makes every party's
    final state inert: each deal ends [Nothing] or [Refunded]. *)

val saga_for : Spec.t -> party:Party.t -> t -> bool
(** The §7.2 reading: the history is an acceptable saga for the party —
    well-formed and its final state acceptable
    ({!Outcomes.acceptable}). *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
