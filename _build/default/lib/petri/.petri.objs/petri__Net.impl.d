lib/petri/net.ml: Array Format Hashtbl List Printf Stdlib
