lib/exchange/interaction.ml: Array Format List Party Spec Trust_graph
