open Exchange
module Protocol = Trust_core.Protocol
module Indemnity = Trust_core.Indemnity

type observation = Start | Incoming of Action.t | Expired of string | Deadline

type t = { party : Party.t; react : observation -> Action.t list }

let party t = t.party
let react t obs = t.react obs
let make party react = { party; react }

let pp_observation ppf = function
  | Start -> Format.pp_print_string ppf "start"
  | Incoming a -> Format.fprintf ppf "incoming %a" Action.pp a
  | Expired deal -> Format.fprintf ppf "expired %s" deal
  | Deadline -> Format.pp_print_string ppf "deadline"

(* Shared script-runner: fire each step once its condition is met by any
   observed action so far, preserving script order. *)
module Script = struct
  type state = { mutable observed : Action.t list; mutable remaining : Protocol.scripted_step list }

  let create steps = { observed = []; remaining = steps }

  let note state = function
    | Incoming a -> state.observed <- a :: state.observed
    | Start | Expired _ | Deadline -> ()

  let satisfied state = function
    | Protocol.Now -> true
    | Protocol.Observed a -> List.exists (Action.equal a) state.observed

  let fire state =
    let rec take acc = function
      | step :: rest when satisfied state step.Protocol.condition ->
        take (step.Protocol.action :: acc) rest
      | rest ->
        state.remaining <- rest;
        List.rev acc
    in
    take [] state.remaining
end

let scripted party steps =
  let state = Script.create steps in
  let react obs =
    Script.note state obs;
    match obs with
    | Start | Incoming _ -> Script.fire state
    | Expired _ | Deadline -> []
  in
  { party; react }

let silent party = { party; react = (fun _ -> []) }

(* Escrow duties of a principal playing trusted roles: return deposits of
   deals it never completed (its own counterpart transfer never fired). *)
let with_persona_duties spec party inner =
  let persona_deals =
    List.filter
      (fun d -> Spec.persona_of spec d.Spec.via = Some party)
      spec.Spec.deals
  in
  let my_side d = if Party.equal d.Spec.left party then Spec.Left else Spec.Right in
  let counterparty d = Spec.commitment_principal d (Spec.other_side (my_side d)) in
  (* the trusting counterparty's deposit into me *)
  let incoming_of d =
    Action.
      {
        source = counterparty d;
        target = party;
        asset = Spec.commitment_sends d (Spec.other_side (my_side d));
      }
  in
  (* my own irrevocable counterpart transfer *)
  let forward_of d =
    Action.
      {
        source = party;
        target = counterparty d;
        asset = Spec.commitment_sends d (my_side d);
      }
  in
  let received : (string, Action.transfer) Hashtbl.t = Hashtbl.create 4 in
  let completed : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let note_incoming action =
    match action with
    | Action.Do tr when Party.equal tr.Action.target party ->
      List.iter
        (fun d ->
          if Action.equal (Action.Do tr) (Action.Do (incoming_of d)) then
            Hashtbl.replace received d.Spec.id tr)
        persona_deals
    | Action.Do _ | Action.Undo _ | Action.Notify _ -> ()
  in
  let note_outgoing actions =
    List.iter
      (fun action ->
        List.iter
          (fun d ->
            if Action.equal action (Action.Do (forward_of d)) then
              Hashtbl.replace completed d.Spec.id ())
          persona_deals)
      actions
  in
  let returns_at_deadline () =
    List.filter_map
      (fun d ->
        match Hashtbl.find_opt received d.Spec.id with
        | Some tr when not (Hashtbl.mem completed d.Spec.id) ->
          Hashtbl.replace completed d.Spec.id ();
          Some (Action.Undo tr)
        | Some _ | None -> None)
      persona_deals
  in
  let return_one deal_id =
    List.filter_map
      (fun d ->
        if not (String.equal d.Spec.id deal_id) then None
        else
          match Hashtbl.find_opt received d.Spec.id with
          | Some tr when not (Hashtbl.mem completed d.Spec.id) ->
            Hashtbl.replace completed d.Spec.id ();
            Some (Action.Undo tr)
          | Some _ | None -> None)
      persona_deals
  in
  let react obs =
    (match obs with
    | Incoming action -> note_incoming action
    | Start | Expired _ | Deadline -> ());
    let actions = react inner obs in
    note_outgoing actions;
    match obs with
    | Deadline -> actions @ returns_at_deadline ()
    | Expired deal_id -> actions @ return_one deal_id
    | Start | Incoming _ -> actions
  in
  { party; react }

let partial party steps ~keep =
  let state = Script.create steps in
  let emitted = ref 0 in
  let react obs =
    Script.note state obs;
    match obs with
    | Expired _ | Deadline -> []
    | Start | Incoming _ ->
      let ready = Script.fire state in
      let budget = max 0 (keep - !emitted) in
      let taken = List.filteri (fun i _ -> i < budget) ready in
      emitted := !emitted + List.length taken;
      taken
  in
  { party; react }

(* The trusted-component automaton. *)
module Escrow = struct
  type deal_state = {
    deal : Spec.deal;
    mutable got_left : bool;
    mutable got_right : bool;
    mutable completed : bool;
    mutable closed : bool;  (** past the deadline: bounce new arrivals *)
  }

  type deposit_state = {
    offer : Indemnity.offer;
    mutable received : bool;
    mutable settled : bool;
  }

  type state = {
    me : Party.t;
    spec : Spec.t;
    atomic : bool;
    deals : deal_state list;
    deposits : deposit_state list;
    notify_script : Script.state;
  }

  let side_transfer ds side =
    let d = ds.deal in
    let principal = Spec.commitment_principal d side in
    Action.{ source = principal; target = d.Spec.via; asset = Spec.commitment_sends d side }

  let forwards ds =
    let d = ds.deal in
    let to_left = Action.{ source = d.Spec.via; target = d.Spec.left; asset = d.Spec.right_sends } in
    let to_right = Action.{ source = d.Spec.via; target = d.Spec.right; asset = d.Spec.left_sends } in
    let docs, money =
      List.partition (fun tr -> Asset.is_document tr.Action.asset) [ to_left; to_right ]
    in
    List.map (fun tr -> Action.Do tr) (docs @ money)

  let deposit_transfer dep =
    Action.
      {
        source = dep.offer.Indemnity.offered_by;
        target = dep.offer.Indemnity.via;
        asset = Asset.money dep.offer.Indemnity.amount;
      }

  (* Deposits covering a deal are returned the moment the deal completes. *)
  let settle_on_completion state deal_id =
    List.concat_map
      (fun dep ->
        if
          dep.received && (not dep.settled)
          && String.equal dep.offer.Indemnity.piece.Spec.deal deal_id
        then begin
          dep.settled <- true;
          [ Action.Undo (deposit_transfer dep) ]
        end
        else [])
      state.deposits

  let match_deal_side state tr =
    let matches ds side =
      (not ds.closed)
      && (not (match side with Spec.Left -> ds.got_left | Spec.Right -> ds.got_right))
      && Action.equal (Action.Do (side_transfer ds side)) (Action.Do tr)
    in
    let rec find = function
      | [] -> None
      | ds :: rest ->
        if matches ds Spec.Left then Some (ds, Spec.Left)
        else if matches ds Spec.Right then Some (ds, Spec.Right)
        else find rest
    in
    find state.deals

  let match_deposit state tr =
    List.find_opt
      (fun dep ->
        (not dep.received) && (not dep.settled)
        && Action.equal (Action.Do (deposit_transfer dep)) (Action.Do tr))
      state.deposits

  let ready ds = ds.got_left && ds.got_right

  (* Complete a deal: emit its forwards and release any deposit covering
     it. In atomic mode completion waits until every mediated deal is
     ready, then flushes them all (§8's coordinated transaction). *)
  let complete state ds =
    ds.completed <- true;
    forwards ds @ settle_on_completion state ds.deal.Spec.id

  let on_incoming state tr =
    match match_deal_side state tr with
    | Some (ds, side) ->
      (match side with Spec.Left -> ds.got_left <- true | Spec.Right -> ds.got_right <- true);
      if state.atomic then
        if List.for_all ready state.deals then
          List.concat_map
            (fun ds -> if ds.completed then [] else complete state ds)
            state.deals
        else []
      else if ready ds && not ds.completed then complete state ds
      else []
    | None -> (
      match match_deposit state tr with
      | Some dep ->
        dep.received <- true;
        []
      | None ->
        (* An arrival for a closed deal, or something unexpected: a
           trusted component returns what it cannot account for. *)
        [ Action.Undo tr ])

  (* §6: forfeit to the protected party when it paid for the covered
     piece and the piece never completed; return to the offerer
     otherwise. *)
  let settle_at_deadline state =
    List.concat_map
      (fun dep ->
        if dep.settled || not dep.received then []
        else begin
          dep.settled <- true;
          let piece = dep.offer.Indemnity.piece in
          let covered =
            List.find_opt (fun ds -> String.equal ds.deal.Spec.id piece.Spec.deal) state.deals
          in
          let owner_paid =
            match covered with
            | None -> false
            | Some ds -> (
              match piece.Spec.side with Spec.Left -> ds.got_left | Spec.Right -> ds.got_right)
          in
          let piece_completed =
            match covered with Some ds -> ds.completed | None -> false
          in
          if owner_paid && not piece_completed then
            [
              Action.Do
                Action.
                  {
                    source = state.me;
                    target = dep.offer.Indemnity.owner;
                    asset = Asset.money dep.offer.Indemnity.amount;
                  };
            ]
          else [ Action.Undo (deposit_transfer dep) ]
        end)
      state.deposits

  (* Close one deal: return whatever it holds and stop accepting. *)
  let close ds =
    if ds.completed || ds.closed then begin
      ds.closed <- true;
      []
    end
    else begin
      ds.closed <- true;
      let return side got = if got then [ Action.Undo (side_transfer ds side) ] else [] in
      return Spec.Left ds.got_left @ return Spec.Right ds.got_right
    end

  let on_deadline state =
    List.concat_map close state.deals @ settle_at_deadline state

  (* A single deal's own deadline (§2.2): unwind that deal and settle the
     deposits that covered it — the notification tied to it has expired,
     so the intermediary is no longer bound (§2.5). *)
  let on_expired state deal_id =
    let returns =
      List.concat_map
        (fun ds -> if String.equal ds.deal.Spec.id deal_id then close ds else [])
        state.deals
    in
    let settlements =
      List.concat_map
        (fun dep ->
          if
            dep.settled || (not dep.received)
            || not (String.equal dep.offer.Indemnity.piece.Spec.deal deal_id)
          then []
          else begin
            dep.settled <- true;
            let covered =
              List.find_opt (fun ds -> String.equal ds.deal.Spec.id deal_id) state.deals
            in
            let owner_paid =
              match covered with
              | None -> false
              | Some ds -> (
                match dep.offer.Indemnity.piece.Spec.side with
                | Spec.Left -> ds.got_left
                | Spec.Right -> ds.got_right)
            in
            let piece_completed = match covered with Some ds -> ds.completed | None -> false in
            if owner_paid && not piece_completed then
              [
                Action.Do
                  Action.
                    {
                      source = state.me;
                      target = dep.offer.Indemnity.owner;
                      asset = Asset.money dep.offer.Indemnity.amount;
                    };
              ]
            else [ Action.Undo (deposit_transfer dep) ]
          end)
        state.deposits
    in
    returns @ settlements
end

(* Deposits the universal coordinator must see before anything becomes
   irrevocable: all money sides, and the document sides their owners
   hold from the start (resold copies cycle through later). *)
let endowable_sides spec =
  List.filter_map
    (fun (cref, d) ->
      let asset = Spec.commitment_sends d cref.Spec.side in
      let principal = Spec.commitment_principal d cref.Spec.side in
      match asset with
      | Asset.Money _ -> Some cref
      | Asset.Document _ ->
        let acquires_elsewhere =
          List.exists
            (fun (cref', d') ->
              Party.equal (Spec.commitment_principal d' cref'.Spec.side) principal
              && Asset.equal (Spec.commitment_expects d' cref'.Spec.side) asset)
            (Spec.commitments spec)
        in
        if acquires_elsewhere then None else Some cref)
    (Spec.commitments spec)

let coordinator spec me =
  let deals =
    List.map
      (fun d ->
        Escrow.{ deal = d; got_left = false; got_right = false; completed = false; closed = false })
      spec.Spec.deals
  in
  let state =
    Escrow.{ me; spec; atomic = false; deals; deposits = []; notify_script = Script.create [] }
  in
  let required = endowable_sides spec in
  let have cref =
    List.exists
      (fun ds ->
        String.equal ds.Escrow.deal.Spec.id cref.Spec.deal
        &&
        match cref.Spec.side with
        | Spec.Left -> ds.Escrow.got_left
        | Spec.Right -> ds.Escrow.got_right)
      deals
  in
  let ready () = List.for_all have required in
  let launched = ref false in
  let flush_complete () =
    List.concat_map
      (fun ds ->
        if Escrow.ready ds && not ds.Escrow.completed then Escrow.complete state ds else [])
      deals
  in
  let react obs =
    match obs with
    | Start -> []
    | Incoming (Action.Do tr) when Party.equal tr.Action.target me ->
      (* atomic=true suppresses per-deal forwards inside on_incoming;
         the launch gate below is weaker — endowable deposits only — so
         we drive the flush ourselves once launched. *)
      let reactions = Escrow.on_incoming { state with Escrow.atomic = true } tr in
      if !launched || ready () then begin
        launched := true;
        reactions @ flush_complete ()
      end
      else reactions
    | Incoming (Action.Do _ | Action.Undo _ | Action.Notify _) -> []
    | Expired deal_id -> Escrow.on_expired state deal_id
    | Deadline -> Escrow.on_deadline state
  in
  { party = me; react }

let escrow ?(atomic = false) spec me ~notifies ~indemnities =
  let deals =
    List.filter_map
      (fun d ->
        if Party.equal d.Spec.via me then
          Some
            Escrow.{ deal = d; got_left = false; got_right = false; completed = false; closed = false }
        else None)
      spec.Spec.deals
  in
  let deposits =
    List.filter_map
      (fun offer ->
        if Party.equal offer.Indemnity.via me then
          Some Escrow.{ offer; received = false; settled = false }
        else None)
      indemnities
  in
  let state =
    Escrow.{ me; spec; atomic; deals; deposits; notify_script = Script.create notifies }
  in
  let react obs =
    Script.note state.Escrow.notify_script obs;
    let automaton =
      match obs with
      | Start -> []
      | Incoming (Action.Do tr) when Party.equal tr.Action.target me ->
        Escrow.on_incoming state tr
      | Incoming (Action.Do _ | Action.Undo _ | Action.Notify _) -> []
      | Expired deal_id -> Escrow.on_expired state deal_id
      | Deadline -> Escrow.on_deadline state
    in
    let notifies =
      match obs with
      | Deadline | Expired _ -> []
      | Start | Incoming _ -> Script.fire state.Escrow.notify_script
    in
    automaton @ notifies
  in
  { party = me; react }
