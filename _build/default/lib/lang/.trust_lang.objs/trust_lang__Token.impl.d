lib/lang/token.ml: Format List Printf
