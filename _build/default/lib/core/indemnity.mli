(** Indemnities (paper §6).

    A principal makes a credible promise by escrowing money with a
    trusted intermediary it shares with the protected party; the deposit
    is forfeited to the protected party if the promised piece is not
    delivered, refunded otherwise. Graphically an indemnity {e splits} a
    conjunction node: the protected party's conjunction edge for that
    piece is removed, because the party is now content with either the
    piece or the payout.

    The required amount for a piece is the total cost of the {e other}
    pieces of the conjunction; only the piece handled last needs no
    indemnity. Ordering by decreasing piece cost therefore leaves the
    cheapest piece — the one carrying the largest indemnity — last, and
    is optimal (Fig. 7: $70 against the naive $90). *)

open Exchange

type offer = {
  piece : Spec.commitment_ref;  (** the protected party's commitment being split off *)
  owner : Party.t;  (** the protected party (conjunction owner) *)
  offered_by : Party.t;  (** who escrows the deposit: the piece's counterparty *)
  via : Party.t;  (** the trusted intermediary holding the deposit *)
  amount : Asset.money;
}

type plan = { offers : offer list; total : Asset.money }

val splittable : Spec.t -> owner:Party.t -> bool
(** §6 restricts indemnities to conjunctive edges "of the second type":
    the owner must be a principal demanding a bundle, with no red
    (broker-style) edge in its conjunction and at least two pieces. *)

val linked_pieces : Spec.t -> owner:Party.t -> Spec.commitment_ref list
(** The owner's own unsplit commitments — the "pieces" of its
    conjunction that indemnities can cover. *)

val offer_for : Spec.t -> owner:Party.t -> Spec.commitment_ref -> offer
(** The §6 offer splitting one piece: deposited by the deal's other
    principal with the deal's intermediary, for
    {!Exchange.Spec.indemnity_amount}. *)

val plan_for_order : Spec.t -> owner:Party.t -> Spec.commitment_ref list -> plan
(** Indemnify the pieces in the given order, leaving the last one
    uncovered. The list must be a permutation of the owner's linked
    commitments. @raise Invalid_argument otherwise. *)

val plan_greedy : Spec.t -> owner:Party.t -> plan
(** §6's greedy minimiser: decreasing piece cost, ties broken by
    commitment order. *)

val plan_worst : Spec.t -> owner:Party.t -> plan
(** The most expensive ordering (increasing cost) — the Fig. 7 "Order
    #1" style baseline. *)

val exhaustive_minimum : Spec.t -> owner:Party.t -> Asset.money
(** Minimum total over all orderings by brute force; factorial in the
    number of pieces, for cross-checking the greedy plan in tests.
    @raise Invalid_argument beyond 8 pieces. *)

val apply : plan -> Spec.t -> Spec.t
(** Record every offer's split in the spec. *)

val deposits : plan -> Action.t list
(** The escrow deposits, performed before the main execution. *)

val refunds : plan -> Action.t list
(** The happy-path deposit returns, performed after the main execution
    completes every piece. *)

val rescued_run : Spec.t -> owner:Party.t -> (plan * Execution.sequence) option
(** Greedy plan, applied, reduced and expanded; [None] when the split
    spec is still infeasible. The sequence covers only the §5 core; use
    {!deposits}/{!refunds} around it for the full protocol. *)

val pp_offer : Format.formatter -> offer -> unit
val pp_plan : Format.formatter -> plan -> unit
