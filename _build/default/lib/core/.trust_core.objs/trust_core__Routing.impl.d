lib/core/routing.ml: Array Asset Exchange Format List Party Printf Queue Spec String Trust_graph
