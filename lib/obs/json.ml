exception Bad of string

type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Obj of (string * t) list
  | Arr of t list

let parse line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && line.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub line !pos k = word then (
      pos := !pos + k;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape"
          else (
            (match line.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape"
              else (
                let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
                pos := !pos + 4;
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then (
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
                else (
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))))
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ())
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a value"
    else Num (String.sub line start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      incr pos;
      Obj [])
    else (
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ((k, v) :: acc)
        | Some '}' ->
          incr pos;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members [])
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      incr pos;
      Arr [])
    else (
      let rec elements acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elements (v :: acc)
        | Some ']' ->
          incr pos;
          Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elements [])
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters" else v

let parse_result s = match parse s with v -> Ok v | exception Bad m -> Error m

let field obj k =
  match obj with
  | Obj kvs -> (
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" k)))
  | _ -> raise (Bad "expected an object")

let field_opt obj k =
  match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let as_int = function
  | Num s -> ( try int_of_string s with _ -> raise (Bad ("not an integer: " ^ s)))
  | _ -> raise (Bad "expected an integer")

let as_str = function Str s -> s | _ -> raise (Bad "expected a string")
let as_bool = function Bool b -> b | _ -> raise (Bad "expected a boolean")

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
