lib/lang/parser.mli: Ast Format Loc
