test/test_spec.ml: Alcotest Asset Exchange List Party Spec String Workload
