(** Source locations for DSL error reporting. *)

type t = { line : int; col : int }

val start : t
val advance : t -> char -> t
(** Next position after reading the character (newline resets column). *)

val pp : Format.formatter -> t -> unit

type 'a located = { value : 'a; loc : t }

val at : t -> 'a -> 'a located
