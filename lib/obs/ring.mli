(** The production trace sink: a fixed-size, lock-free binary ring.

    Kept sessions are committed whole at session close — a [begin]
    record (session id, final virtual clock, keep reason), one compact
    length-prefixed record per span and per event, then an [end] —
    into preallocated per-domain byte buffers. When the ring wraps,
    {e whole} records are evicted oldest-first before a new one lands,
    so a dump never contains a torn record; the decoder's only
    partiality is a session whose [begin] was evicted, which it skips
    (the "newest complete suffix" contract, pinned by test_ring).

    Lock-freedom is by sharding, not by CAS loops: each shard is
    preallocated at {!create}, a domain adopts one for life on first
    use, and dumps/stats are read after writers are joined (batch) or
    from the only thread there is (the daemon loop). Committing a
    session allocates nothing beyond the span views of that one kept
    session; unsampled sessions never reach this module.

    The byte layout (LEB128 varints, zigzag for signed fields,
    length-prefixed strings, little-endian IEEE doubles; dump header
    ["TSR1"]) is documented in docs/OBS.md and pinned by the
    round-trip property tests: decoding a dump and re-rendering
    through {!export} is byte-compatible with exporting the original
    in-memory traces. *)

type t

val create : ?shards:int -> capacity:int -> unit -> t
(** A ring of [shards] preallocated buffers (default 1) splitting
    [capacity] bytes between them, with a floor of 1 KiB per shard.
    Size [shards] to the number of writer domains ([--jobs]); the
    daemon's single-threaded loop uses one. *)

(** {2 Recording} *)

(** Why a session was committed: head-sampled, or promoted by a
    tail-based keep rule at session close. *)
type keep = Sampled | Violation | Retry | Expiry | Lint

val keep_label : keep -> string
(** ["sampled"], ["violation"], ["retry"], ["expiry"], ["lint"]. *)

val record : t -> keep:keep -> Obs.t -> int
(** Commit one finished session's trace into the calling domain's
    shard. Returns the number of records dropped to make room (0 when
    nothing wrapped): oldest records are evicted whole until the
    session fits, and a session larger than the whole shard is refused
    outright — atomically, with every refused record counted — rather
    than half-written. The null sink commits nothing and returns 0. *)

(** {2 Introspection (read after writers are quiescent)} *)

val shard_count : t -> int
val capacity : t -> int
(** Total preallocated bytes across shards. *)

val bytes_resident : t -> int
(** Live (un-evicted, un-drained) bytes across shards — the
    [obs_ring_bytes] gauge. *)

val records_written : t -> int
val records_dropped : t -> int
(** Lifetime commit/drop counters across shards; monotone, so counter
    deltas survive {!drain}. *)

val sessions_recorded : t -> int

(** {2 Dumps} *)

val dump : t -> string
(** The linearized live region — magic ["TSR1"], shard count, then per
    shard its lifetime written/dropped counters and its records oldest
    first. Leaves the ring intact. *)

val drain : t -> string
(** {!dump}, then mark every shard's live region consumed (lifetime
    counters are preserved). The daemon's [trace] wire request is a
    drain: each frame returns only records committed since the last. *)

val empty_dump : string
(** A valid zero-shard dump — what a daemon with tracing disabled
    returns for [trace]. *)

(** {2 Decoding} *)

type session = {
  s_id : int;
  s_clock : int;  (** the trace's final virtual clock *)
  s_keep : keep;
  s_views : Obs.span_view list;  (** creation order, events re-attached *)
}

type stats = {
  d_shards : int;
  d_written : int;  (** lifetime records committed, summed over shards *)
  d_dropped : int;  (** lifetime records evicted/refused, summed *)
  d_sessions : int;  (** complete sessions decoded from this dump *)
  d_skipped : int;
      (** wrapped sessions the newest-complete-suffix decode had to
          discard (their begin record was evicted on wrap) *)
}

val decode : string -> (session list * stats, string) result
(** Parse a dump. Sessions are returned sorted by id — a canonical
    order, so decodes of the same session set are byte-identical
    however sessions were sharded across domains. Sessions whose
    [begin] record was evicted on wrap are skipped whole; any torn or
    unparseable byte sequence is an [Error] (the writer never produces
    one). *)

val to_trace : session -> Obs.t
(** Rebuild a live trace via {!Obs.of_views} — input for the analysis
    layer or the exporters. *)

val export : ?producer:string -> Obs.format -> session list -> string
(** Render decoded sessions through the unchanged exporters —
    byte-compatible with exporting the original in-memory traces. *)
