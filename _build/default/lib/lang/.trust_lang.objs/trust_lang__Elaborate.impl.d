lib/lang/elaborate.ml: Asset Ast Exchange Format In_channel List Loc Parser Party Spec String
