(** Parties of a distributed commerce transaction (paper §2.1).

    Principals are independently motivated actors — consumers, producers
    and brokers. Trusted components are escrow intermediaries whose only
    available actions are forwarding, reversing and notifying (§2.5).
    A trusted component may be a {e persona}: an abstract trusted-agent
    role actually played by one of the principals when the other side
    trusts it directly (§1, §4.2.3). Personas are recorded in
    {!Spec.t}, not here. *)

type role =
  | Consumer  (** wants goods, offers payment *)
  | Producer  (** owns goods, wants payment *)
  | Broker  (** resells: buys on one side, sells on the other *)

type t =
  | Principal of string * role
  | Trusted of string  (** a trusted intermediary *)

val consumer : string -> t
val producer : string -> t
val broker : string -> t
val trusted : string -> t

val name : t -> string
val is_principal : t -> bool
val is_trusted : t -> bool

val role : t -> role option
(** [None] for trusted components. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_role : Format.formatter -> role -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
