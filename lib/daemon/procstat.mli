(** Process memory readings, for the soak benchmark's bounded-memory
    evidence. Linux-only by reading [/proc/self/status]; both readings
    are [0] where that file is unavailable, so callers degrade to
    "unmeasured", never crash. *)

val rss_kb : unit -> int
(** Current resident set size ([VmRSS]), in KiB. *)

val peak_rss_kb : unit -> int
(** Peak resident set size ([VmHWM]), in KiB. *)
