(* The analyzer's contract: every specs/lint fixture triggers exactly
   its own code, the named scenarios lint to known verdicts, the exit
   codes follow the documented contract, the safety verifier accepts
   every synthesized sequence and rejects corrupted ones with a
   per-party explanation, and the serve admission gate aborts
   error-level specs before synthesis. *)

open Exchange
module Diagnostic = Trust_analyze.Diagnostic
module Lint = Trust_analyze.Lint
module Verifier = Trust_analyze.Verifier
module Feasibility = Trust_core.Feasibility
module Execution = Trust_core.Execution
module Elaborate = Trust_lang.Elaborate
module Scenarios = Workload.Scenarios
module Gen = Workload.Gen
module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let codes diagnostics =
  List.map (fun d -> Diagnostic.code_id d.Diagnostic.code) diagnostics

let check_codes label expected diagnostics =
  Alcotest.(check (list string)) label expected (codes diagnostics)

let fixture name = Filename.concat "../specs/lint" name

(* --- fixtures: one code each ---------------------------------------- *)

let fixture_expectations =
  [
    ("clean.exg", [], 0);
    ("tl001_unused_party.exg", [ "TL001" ], 0);
    ("tl002_dead_asset.exg", [ "TL002" ], 0);
    ("tl003_unbacked_split.exg", [ "TL003" ], 0);
    ("tl004_redundant_priority.exg", [ "TL004" ], 0);
    ("tl005_contradictory_priorities.exg", [ "TL005" ], 1);
    ("tl006_unreachable.exg", [ "TL006" ], 1);
    ("tl007_vacuous_intermediary.exg", [ "TL007" ], 0);
    ("tl008_zero_leg.exg", [ "TL008" ], 0);
    ("tl009_rescuable.exg", [ "TL009" ], 0);
    ("tl010_parse_error.exg", [ "TL010" ], 2);
    ("tl011_undeclared_party.exg", [ "TL011"; "TL011"; "TL011" ], 1);
    ("tl013_double_spend.exg", [ "TL013" ], 1);
    (* the over-pledge's two enabling splits are each unbacked (TL003);
       sorted by source location the over-pledge lands between them *)
    ("tl014_over_pledged_indemnity.exg", [ "TL003"; "TL014"; "TL003" ], 0);
    ("tl015_deadline_race.exg", [ "TL015" ], 0);
    (* the enabling split is unbacked; TL016/TL017 have no location and
       sort after it *)
    ("tl016_unprovable_bound.exg", [ "TL003"; "TL016"; "TL017" ], 0);
  ]

let test_fixtures () =
  List.iter
    (fun (name, expected, status) ->
      let diagnostics = Lint.lint_file (fixture name) in
      check_codes name expected diagnostics;
      check_int (name ^ " exit") status (Lint.exit_status diagnostics);
      (* every diagnostic names the file it came from *)
      List.iter
        (fun d ->
          check (name ^ " carries file") true
            (d.Diagnostic.file = Some (fixture name)))
        diagnostics)
    fixture_expectations

let test_fixture_locations () =
  (* Structural diagnostics point at the offending declaration. *)
  let line name expected_line =
    match Lint.lint_file (fixture name) with
    | [ d ] -> (
      match d.Diagnostic.loc with
      | Some loc -> check_int (name ^ " line") expected_line loc.Trust_lang.Loc.line
      | None -> Alcotest.failf "%s: diagnostic has no location" name)
    | ds -> Alcotest.failf "%s: expected one diagnostic, got %d" name (List.length ds)
  in
  line "tl001_unused_party.exg" 5;
  line "tl002_dead_asset.exg" 6;
  line "tl003_unbacked_split.exg" 13;
  line "tl004_redundant_priority.exg" 9;
  line "tl005_contradictory_priorities.exg" 12;
  line "tl007_vacuous_intermediary.exg" 9;
  line "tl008_zero_leg.exg" 7;
  line "tl010_parse_error.exg" 2;
  line "tl013_double_spend.exg" 12;
  line "tl015_deadline_race.exg" 12

(* --- scenarios: table-driven verdicts ------------------------------- *)

let scenario_expectations =
  [
    ("simple_sale", []);
    ("simple_sale_direct", [ "TL007" ]);
    ("example1", []);
    ("example1_poor_broker", [ "TL005" ]);
    ("example2", [ "TL009" ]);
    ("example2_source_trusts_broker", []);
    ("example2_broker_trusts_source", [ "TL009" ]);
    ("example2_broker1_indemnifies", [ "TL003" ]);
    ("fig7", [ "TL009" ]);
  ]

let test_scenarios () =
  List.iter
    (fun (name, spec) ->
      match List.assoc_opt name scenario_expectations with
      | None -> Alcotest.failf "scenario %s has no lint expectation" name
      | Some expected -> check_codes name expected (Lint.check_spec spec))
    Scenarios.all

let test_quick_mode_subset () =
  (* Quick mode only drops the deep (feasibility-based) rules. *)
  List.iter
    (fun (_, spec) ->
      let deep = codes (Lint.check_spec spec) in
      let quick = codes (Lint.check_spec ~deep:false spec) in
      List.iter
        (fun c -> check ("quick code " ^ c ^ " also found deep") true (List.mem c deep))
        quick;
      List.iter
        (fun c ->
          if not (List.mem c quick) then
            check ("dropped code " ^ c ^ " is a deep or static rule") true
              (List.mem c
                 [ "TL006"; "TL007"; "TL009"; "TL012"; "TL015"; "TL016"; "TL017" ]))
        deep)
    Scenarios.all

(* --- exit-code contract --------------------------------------------- *)

let test_exit_status () =
  let diag ?severity code = Diagnostic.make ?severity code "x" in
  check_int "empty is clean" 0 (Lint.exit_status []);
  check_int "info never gates" 0
    (Lint.exit_status [ diag Diagnostic.Rescuable_infeasibility ]);
  check_int "info never gates under Werror" 0
    (Lint.exit_status ~werror:true [ diag Diagnostic.Rescuable_infeasibility ]);
  check_int "warning passes by default" 0
    (Lint.exit_status [ diag Diagnostic.Unused_party ]);
  check_int "warning gates under Werror" 1
    (Lint.exit_status ~werror:true [ diag Diagnostic.Unused_party ]);
  check_int "error gates" 1
    (Lint.exit_status [ diag Diagnostic.Contradictory_priorities ]);
  check_int "parse error is exit 2" 2
    (Lint.exit_status [ diag Diagnostic.Parse_error ]);
  check_int "parse error wins over error" 2
    (Lint.exit_status
       [ diag Diagnostic.Contradictory_priorities; diag Diagnostic.Parse_error ])

let test_render_deterministic () =
  let diagnostics = Lint.lint_file (fixture "tl009_rescuable.exg") in
  check_string "human rendering is stable" (Lint.render Lint.Human diagnostics)
    (Lint.render Lint.Human diagnostics);
  let json = Lint.render Lint.Json diagnostics in
  check "json mentions the code" true
    (String.length json > 0
    &&
    let re = "TL009" in
    let rec find i =
      i + String.length re <= String.length json
      && (String.sub json i (String.length re) = re || find (i + 1))
    in
    find 0);
  let sarif = Lint.render Lint.Sarif diagnostics in
  let contains needle =
    let re = needle in
    let rec find i =
      i + String.length re <= String.length sarif
      && (String.sub sarif i (String.length re) = re || find (i + 1))
    in
    find 0
  in
  check "sarif declares the version" true (contains "\"2.1.0\"");
  (* the driver advertises every stable rule with a docs anchor *)
  check "sarif carries rule metadata" true (contains "\"rules\":[");
  List.iter
    (fun code ->
      check
        ("sarif rule " ^ Diagnostic.code_id code ^ " has a helpUri anchor")
        true
        (contains
           (Printf.sprintf "\"helpUri\":%s"
              (Printf.sprintf "\"%s\"" (Diagnostic.help_uri code)))))
    Diagnostic.all_codes

(* --- satellite: file:line:col rendering, sorted elaboration errors --- *)

let test_error_rendering () =
  (* The pass-2 errors (undeclared p, t on line 1) are discovered after
     the pass-1 error (duplicate c on line 3); rendering must sort them
     back into document order and prefix the file name. *)
  let src =
    "deal cp: c pays $10; p gives \"d\"; via t\n\
     principal c : consumer\n\
     principal c : consumer\n"
  in
  (match Elaborate.from_string ~file:"bad.exg" src with
  | Ok _ -> Alcotest.fail "expected elaboration errors"
  | Error rendered -> (
    match String.split_on_char '\n' rendered with
    | first :: rest ->
      check "first error is on line 1" true
        (String.length first >= 10 && String.sub first 0 10 = "bad.exg:1:");
      List.iter
        (fun line ->
          check "every error carries the file" true
            (String.length line >= 8 && String.sub line 0 8 = "bad.exg:"))
        rest;
      check_int "three errors" 3 (List.length (first :: rest))
    | [] -> Alcotest.fail "no rendered errors"));
  match Elaborate.from_string src with
  | Ok _ -> Alcotest.fail "expected elaboration errors"
  | Error rendered -> (
    match String.split_on_char '\n' rendered with
    | first :: _ ->
      check "without a file the prefix is line:col" true
        (String.length first >= 5 && String.sub first 0 5 = "1:22:")
    | [] -> Alcotest.fail "no rendered errors")

let test_loc_compare () =
  let open Trust_lang.Loc in
  check "line dominates" true (compare { line = 1; col = 9 } { line = 2; col = 1 } < 0);
  check "column breaks ties" true (compare { line = 2; col = 1 } { line = 2; col = 4 } < 0);
  check_int "equal" 0 (compare { line = 3; col = 3 } { line = 3; col = 3 })

(* --- safety verifier ------------------------------------------------- *)

let example1_sequence () =
  match (Feasibility.analyze Scenarios.example1).Feasibility.sequence with
  | Some seq -> seq
  | None -> Alcotest.fail "example1 must be feasible"

let test_verifier_accepts_example1 () =
  (match Verifier.verify (example1_sequence ()) with
  | Ok () -> ()
  | Error exposures -> Alcotest.failf "unexpected exposures:\n%s" (Verifier.explain exposures));
  List.iter
    (fun (name, spec) ->
      match (Feasibility.analyze spec).Feasibility.sequence with
      | None -> ()
      | Some seq -> (
        match Verifier.verify seq with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: unexpected exposures:\n%s" name (Verifier.explain e)))
    Scenarios.all

let test_verifier_rejects_dropped_commit () =
  (* Drop the consumer's payment commit: t1 then releases the broker's
     document against nothing — the broker is exposed. *)
  let seq = example1_sequence () in
  let dropped = { Spec.deal = "cb"; side = Spec.Left } in
  let steps =
    List.filter
      (fun (s : Execution.step) ->
        match s.Execution.origin with
        | Execution.Commit cref -> not (Spec.equal_ref cref dropped)
        | _ -> true)
      seq.Execution.steps
  in
  check "one step was dropped" true
    (List.length steps = List.length seq.Execution.steps - 1);
  match Verifier.verify { seq with Execution.steps } with
  | Ok () -> Alcotest.fail "corrupted sequence must be rejected"
  | Error exposures ->
    let explanation = Verifier.explain exposures in
    check "broker b is named exposed" true
      (let re = "party b is exposed:" in
       let rec find i =
         i + String.length re <= String.length explanation
         && (String.sub explanation i (String.length re) = re || find (i + 1))
       in
       find 0);
    check "some exposure is on the broken deal" true
      (List.exists (fun e -> e.Verifier.deal = "cb") exposures)

let test_verifier_rejects_truncation () =
  (* Cut the sequence after the commits: everything is escrowed,
     nothing delivered — every committed party is exposed at
     termination. *)
  let seq = example1_sequence () in
  let steps =
    List.filter
      (fun (s : Execution.step) ->
        match s.Execution.origin with
        | Execution.Commit _ | Execution.Notification _ -> true
        | Execution.Forward _ -> false)
      seq.Execution.steps
  in
  match Verifier.verify { seq with Execution.steps } with
  | Ok () -> Alcotest.fail "truncated sequence must be rejected"
  | Error exposures ->
    check "termination exposures present" true
      (List.exists (fun e -> e.Verifier.step = 0) exposures)

(* --- property tests over random workloads ---------------------------- *)

let test_linter_total_on_random () =
  let rng = Prng.create 7L in
  let specs = Gen.random_transactions rng Gen.default_mix 100 in
  List.iteri
    (fun i spec ->
      let diagnostics = Lint.check_spec spec in
      (* a gating diagnostic on a random spec must never be a crash
         stand-in: every diagnostic has a code and message *)
      List.iter
        (fun d ->
          check
            (Printf.sprintf "spec %d diagnostic has a message" i)
            true
            (String.length d.Diagnostic.message > 0))
        diagnostics)
    specs

let test_verifier_accepts_synthesized () =
  let rng = Prng.create 11L in
  let specs = Gen.random_transactions rng Gen.default_mix 100 in
  let verified = ref 0 in
  List.iteri
    (fun i spec ->
      match (Feasibility.analyze spec).Feasibility.sequence with
      | None -> ()
      | Some seq -> (
        incr verified;
        match Verifier.verify seq with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "random spec %d: synthesized sequence unsafe:\n%s" i
            (Verifier.explain e)))
    specs;
  check "a healthy share of random specs is feasible" true (!verified > 20);
  (* the shared-agent reduction must stay safe too *)
  List.iteri
    (fun i spec ->
      match (Feasibility.analyze ~shared:true spec).Feasibility.sequence with
      | None -> ()
      | Some seq -> (
        match Verifier.verify seq with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "random spec %d (shared): sequence unsafe:\n%s" i
            (Verifier.explain e)))
    specs

(* --- serve admission gate -------------------------------------------- *)

let test_serve_lint_gate () =
  let module Scheduler = Trust_serve.Scheduler in
  let module Session = Trust_serve.Session in
  let module Cache = Trust_serve.Cache in
  let module Metrics = Trust_serve.Metrics in
  let metrics = Metrics.create () in
  let cache = Cache.create Cache.default_policy in
  let double_spend =
    match
      Elaborate.from_string
        {|principal b : broker
principal c1 : consumer
principal c2 : consumer
trusted t1
trusted t2
deal s1: c1 pays $10; b gives "d"; via t1
deal s2: c2 pays $10; b gives "d"; via t2|}
    with
    | Ok spec -> spec
    | Error e -> Alcotest.failf "double-spend spec must elaborate: %s" e
  in
  let sessions =
    [
      Session.make ~id:0 Scenarios.example1_poor_broker;
      Session.make ~id:1 Scenarios.example1;
      Session.make ~id:2 double_spend;
    ]
  in
  let _stats = Scheduler.run ~metrics Scheduler.default_config cache sessions in
  (match (List.nth sessions 0).Session.status with
  | Session.Aborted reason ->
    check "abort reason is the lint diagnostic" true
      (String.length reason >= 13 && String.sub reason 0 13 = "lint: [TL005]")
  | s -> Alcotest.failf "expected lint abort, got %s" (Session.status_label s));
  (match (List.nth sessions 1).Session.status with
  | Session.Settled -> ()
  | s -> Alcotest.failf "clean session should settle, got %s" (Session.status_label s));
  (* the structural conflict pass runs in the quick admission gate too:
     a double spend is refused with its code before synthesis *)
  (match (List.nth sessions 2).Session.status with
  | Session.Aborted reason ->
    check "double spend refused with its code" true
      (String.length reason >= 13 && String.sub reason 0 13 = "lint: [TL013]")
  | s -> Alcotest.failf "expected TL013 abort, got %s" (Session.status_label s));
  check_int "lint rejections counted" 2
    (Metrics.value (Metrics.counter metrics "serve_sessions_lint_rejected_total"));
  check_int "lint rejections also count as aborts" 2
    (Metrics.value (Metrics.counter metrics "serve_sessions_aborted_total"))

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "each fixture triggers exactly its code" `Quick test_fixtures;
          Alcotest.test_case "diagnostics carry locations" `Quick test_fixture_locations;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "table-driven verdicts" `Quick test_scenarios;
          Alcotest.test_case "quick mode is a subset" `Quick test_quick_mode_subset;
        ] );
      ( "contract",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_status;
          Alcotest.test_case "rendering deterministic and parseable" `Quick
            test_render_deterministic;
        ] );
      ( "locations",
        [
          Alcotest.test_case "file:line:col rendering, sorted" `Quick test_error_rendering;
          Alcotest.test_case "Loc.compare" `Quick test_loc_compare;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts every scenario sequence" `Quick
            test_verifier_accepts_example1;
          Alcotest.test_case "rejects a dropped commit" `Quick
            test_verifier_rejects_dropped_commit;
          Alcotest.test_case "rejects truncation" `Quick test_verifier_rejects_truncation;
        ] );
      ( "properties",
        [
          Alcotest.test_case "linter total on random specs" `Quick test_linter_total_on_random;
          Alcotest.test_case "verifier accepts synthesized protocols" `Quick
            test_verifier_accepts_synthesized;
        ] );
      ( "serve",
        [ Alcotest.test_case "admission gate aborts on lint errors" `Quick test_serve_lint_gate ] );
    ]
