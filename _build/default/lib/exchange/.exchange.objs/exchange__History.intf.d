lib/exchange/history.mli: Action Format Party Spec State
