(** The protocol cache: memoized synthesis.

    Synthesizing a protocol for a spec — feasibility analysis by graph
    reduction, the indemnity rescue loop when the bare spec is stuck,
    sequencing and per-party script generation — is pure in the spec
    and the synthesis policy. Workload generators emit structurally
    identical specs over and over (every [chain ~brokers:2] draw is the
    same spec), so the service memoizes synthesis keyed by the
    {!Shape.encode} canonical form.

    The correctness invariant, checked when the policy sets [verify]
    (and exercised by the property tests): {e a cache hit is equal to
    fresh synthesis} — same split spec, same indemnity plan, same
    per-party scripts. Behaviours are single-run stateful machines and
    are therefore {e never} cached; callers rebuild them per run with
    {!Trust_sim.Harness.behaviors_for}. *)

open Exchange

type policy = {
  mode : Trust_sim.Harness.mode;
  shared : bool;  (** enable the shared-agent reduction rule *)
  rescue : bool;  (** rescue infeasible specs with indemnities (§6) *)
  verify : bool;  (** re-synthesize on every hit and compare *)
}

val default_policy : policy
(** Lockstep, no shared agents, rescue on, verify off. *)

type entry = {
  split_spec : Spec.t;  (** the spec after the plan's indemnity splits *)
  plan : Trust_core.Indemnity.plan option;  (** the rescue plan, when one was needed *)
  protocol : Trust_core.Protocol.t;
  exposure : Trust_analyze.Static_exposure.t;
      (** the statically proven (or refuted) §5 bound for the split
          spec, computed once at synthesis — a cache hit reuses it
          without re-running the abstract interpretation *)
  compiled : Trust_core.Compile.t option;
      (** the flat instruction plan executed by the allocation-free
          [Trust_sim.Hotpath] runtime on the serve path; [None] only
          for specs carrying acceptability overrides (never cacheable).
          Immutable and shared read-only across pool domains. *)
}

exception Divergence of string
(** Raised (with the spec's shape hash) when verification finds a hit
    that differs from fresh synthesis — a cache-correctness bug — or
    when the {!Trust_analyze.Verifier} safety pass finds a protection
    exposure in the cached entry's execution sequence (the message then
    also carries the per-party exposure explanation). *)

type t

val create : ?capacity:int -> ?shards:int -> policy -> t
(** [capacity] (default 4096) bounds resident entries; the oldest
    insertion is evicted first. Infeasible verdicts are cached too
    (negative caching), so repeated unrescuable shapes are rejected
    without re-analysis.

    The table is split into [shards] (default 16) independent shards
    by spec-shape hash, each behind its own mutex, so pool workers
    synthesizing {e distinct} shapes never contend while lookups of
    the same shape serialize (the first is the lone miss, the rest are
    hits — the same tallies as a sequential run). Eviction is FIFO
    {e per shard} with per-shard capacity ⌈capacity/shards⌉;
    [~shards:1] reproduces the unsharded cache exactly. *)

val policy : t -> policy

val shard_count : t -> int

(** {1 Epoch-based aging}

    Long-lived services ({!Trust_daemon.Server}) see an unbounded
    stream of spec shapes: heavy hitters recur forever, the Zipf long
    tail is seen once and never again. Capacity-FIFO eviction alone
    would let one-shot shapes push the working set out, so the daemon
    also {e ages} the cache: it calls {!advance_epoch} every N
    requests, and entries untouched for [max_idle] whole epochs are
    swept. Batch runs never advance the epoch, so batch semantics are
    unchanged. *)

val epoch : t -> int
(** The current epoch, starting at 0. Hits and inserts stamp entries
    with it. *)

val advance_epoch : ?max_idle:int -> t -> int
(** Start a new epoch and sweep every entry whose last use is
    [max_idle] (default 2) or more epochs old, returning how many were
    swept. Negative (infeasible-verdict) entries age like any other.
    Thread-safe: sweeps each shard under its lock. *)

val aged_out : t -> int
(** Total entries removed by {!advance_epoch} sweeps. *)

(** {1 Trace-mining feedback: pin, deny, pre-warm}

    The policy lever the {!Trust_obs.Mine} scoreboard pulls. All three
    operations are keyed by the canonical FNV shape hash in lowercase
    hex ({!Shape.hash_hex}) — the identifier traces carry — rather
    than by spec. Pinned entries are exempt from FIFO eviction and
    epoch aging until unpinned; denied shapes are refused at admission
    with the [TM001] diagnostic. *)

val pin : t -> string -> bool
(** Pin the resident entry whose shape hash matches; [false] when no
    such entry is resident (pre-warm it instead). *)

val unpin : t -> string -> bool
(** Release a pin; [false] when nothing matched. *)

val pinned : t -> string list
(** Shape hashes of pinned residents, sorted. *)

val pinned_count : t -> int

val prewarm : t -> Spec.t -> [ `Hit | `Warmed | `Failed of string | `Uncacheable ]
(** Synthesize (if absent) and pin the spec's entry ahead of traffic.
    Runs off the traffic path: neither a hit nor a miss is tallied, so
    {!hit_rate} keeps measuring what clients saw. [`Hit] — already
    resident, now pinned; [`Warmed] — synthesized, cached, pinned;
    [`Failed] — synthesis failed (the negative verdict is cached and
    pinned too); [`Uncacheable] — the spec bypasses the cache. *)

val deny_code : string
(** ["TM001"] — the diagnostic code of the deny refusal. *)

val deny : t -> string -> unit
(** Refuse this shape hash at every subsequent admission. *)

val allow : t -> string -> bool
(** Lift a deny; [false] when the shape was not denied. *)

val denied : t -> string list
(** Currently denied shape hashes, sorted. *)

val denied_count : t -> int
(** Admissions refused by the deny list so far. *)

val denied_reason : t -> Spec.t -> string option
(** [Some "denied: [TM001] …"] when the spec's shape is deny-listed
    (counting the refusal), [None] otherwise. The scheduler consults
    this before the admission lint. Lock-free: reads an atomically
    swapped immutable set. *)

val admission : t -> Spec.t -> string option
(** Memoized shallow admission lint ([Lint.check_spec ~deep:false]):
    [None] when the spec passes, [Some reason] — the formatted abort
    reason of the first error-level diagnostic — when it is rejected.
    The verdict is a pure function of the spec, memoized by shape in
    the same shards as synthesis; non-cacheable specs are linted
    fresh. Callers needing lint {e spans} (tracing enabled) should run
    the linter directly instead. *)

val synthesize : t -> Spec.t -> (entry, string) result * [ `Hit | `Miss | `Bypass ]
(** Memoized synthesis. [`Bypass] means the spec was not {!Shape.cacheable}
    and was synthesized fresh without touching the table. [Error] is the
    synthesis failure (infeasible and not rescued). *)

val fresh : policy -> Spec.t -> (entry, string) result
(** Uncached synthesis — the reference the invariant compares against. *)

val entry_equal : entry -> entry -> bool
(** Structural: canonical split-spec encodings, plan offers, and
    protocol scripts all equal. The derived [exposure] field is not
    compared — it is a pure function of [split_spec]. *)

val hits : t -> int
val misses : t -> int
val bypasses : t -> int
val evictions : t -> int
val size : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)] over cacheable lookups; [0.] before any. *)
