(* Ordered histories and sagas (§2.3 alternative representation, §7.2). *)

open Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let c = Party.consumer "c"
let p = Party.producer "p"
let t = Party.trusted "t"

let pay = Action.pay c t (Asset.dollars 10)
let give = Action.give p t "d"
let pay_tr = Action.{ source = c; target = t; asset = Asset.money (Asset.dollars 10) }
let give_tr = Action.{ source = p; target = t; asset = Asset.document "d" }

let test_construction () =
  let h = History.of_actions [ pay; give ] in
  check_int "length" 2 (History.length h);
  Alcotest.(check (list string)) "order kept"
    [ Action.to_string pay; Action.to_string give ]
    (List.map Action.to_string (History.actions h));
  check "state forgets order" true
    (State.equal (History.to_state h) (State.of_actions [ give; pay ]))

let test_well_formed_ok () =
  let h = History.of_actions [ pay; give; Action.Undo pay_tr ] in
  check "ok" true (History.well_formed h = Ok ())

let test_undo_without_do () =
  let h = History.of_actions [ Action.Undo pay_tr ] in
  match History.well_formed h with
  | Error [ History.Undo_without_do tr ] -> check "names transfer" true (tr = pay_tr)
  | _ -> Alcotest.fail "expected Undo_without_do"

let test_undo_before_do () =
  let h = History.of_actions [ Action.Undo pay_tr; pay ] in
  match History.well_formed h with
  | Error [ History.Undo_before_do _ ] -> ()
  | _ -> Alcotest.fail "expected Undo_before_do"

let test_duplicates () =
  let h = History.of_actions [ pay; pay ] in
  (match History.well_formed h with
  | Error [ History.Duplicate_do _ ] -> ()
  | _ -> Alcotest.fail "expected Duplicate_do");
  let h' = History.of_actions [ pay; Action.Undo pay_tr; Action.Undo pay_tr ] in
  match History.well_formed h' with
  | Error vs ->
    check "duplicate undo reported" true
      (List.exists (function History.Duplicate_undo _ -> true | _ -> false) vs)
  | Ok () -> Alcotest.fail "expected Duplicate_undo"

let test_compensation_pairs () =
  let h = History.of_actions [ pay; give; Action.Undo give_tr ] in
  match History.compensation_pairs h with
  | [ (tr, 1, 2) ] -> check "pairs give" true (tr = give_tr)
  | _ -> Alcotest.fail "expected one pair"

let test_open_transfers () =
  let h = History.of_actions [ pay; give; Action.Undo give_tr ] in
  Alcotest.(check (list string)) "pay still open"
    [ Action.to_string pay ]
    (List.map (fun tr -> Action.to_string (Action.Do tr)) (History.open_transfers h))

let test_compensating_tail_closes () =
  (* the generated tail returns every party to an inert position *)
  let spec = Workload.Scenarios.simple_sale in
  let h = History.of_actions [ pay; give ] in
  let closed = History.of_actions (History.actions h @ History.compensating_tail h) in
  check "closed history well-formed" true (History.well_formed closed = Ok ());
  check_int "nothing open" 0 (List.length (History.open_transfers closed));
  let state = History.to_state closed in
  List.iter
    (fun party ->
      check
        (Party.to_string party ^ " acceptable after compensation")
        true
        (Outcomes.acceptable spec ~party state))
    (Spec.parties spec)

let test_compensates_in_reverse () =
  let h = History.of_actions [ pay; give ] in
  match History.compensating_tail h with
  | [ Action.Undo first; Action.Undo second ] ->
    check "give undone first" true (first = give_tr);
    check "pay undone second" true (second = pay_tr)
  | _ -> Alcotest.fail "expected two undos"

let test_saga_for () =
  let spec = Workload.Scenarios.simple_sale in
  let complete =
    History.of_actions
      [ pay; give; Action.give t c "d"; Action.pay t p (Asset.dollars 10) ]
  in
  check "completed run is a saga for everyone" true
    (List.for_all (fun party -> History.saga_for spec ~party complete) (Spec.parties spec));
  let dangling = History.of_actions [ pay ] in
  check "mid-flight is no saga for the consumer" false (History.saga_for spec ~party:c dangling)

let test_simulation_logs_are_well_formed () =
  (* every honest simulation log is a well-formed history, and a saga
     for every party *)
  List.iter
    (fun (name, spec) ->
      match Trust_sim.Harness.honest_run spec with
      | Error _ -> ()
      | Ok result ->
        let h =
          History.of_deliveries
            (List.map
               (fun d -> (d.Trust_sim.Engine.at, d.Trust_sim.Engine.action))
               result.Trust_sim.Engine.log)
        in
        (match History.well_formed h with
        | Ok () -> ()
        | Error vs ->
          Alcotest.failf "%s: %s" name
            (String.concat "; " (List.map (Format.asprintf "%a" History.pp_violation) vs)));
        List.iter
          (fun party ->
            if not (History.saga_for spec ~party h) then
              Alcotest.failf "%s: not a saga for %s" name (Party.to_string party))
          (Spec.parties spec))
    Workload.Scenarios.all

let prop_adversarial_logs_well_formed =
  QCheck2.Test.make
    ~name:"defection logs are well-formed histories (undo pairing holds)" ~count:60
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match Trust_sim.Harness.defectable_principals spec with
      | [] -> true
      | defector :: _ -> (
        match
          Trust_sim.Harness.adversarial_run
            ~defectors:[ (defector, Trust_sim.Harness.Partial 1) ]
            spec
        with
        | Error _ -> true
        | Ok result ->
          let h =
            History.of_deliveries
              (List.map
                 (fun d -> (d.Trust_sim.Engine.at, d.Trust_sim.Engine.action))
                 result.Trust_sim.Engine.log)
          in
          History.well_formed h = Ok ()))

let () =
  Alcotest.run "history"
    [
      ( "structure",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "well-formed" `Quick test_well_formed_ok;
          Alcotest.test_case "undo without do" `Quick test_undo_without_do;
          Alcotest.test_case "undo before do" `Quick test_undo_before_do;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "compensation pairs" `Quick test_compensation_pairs;
          Alcotest.test_case "open transfers" `Quick test_open_transfers;
        ] );
      ( "sagas",
        [
          Alcotest.test_case "compensating tail closes" `Quick test_compensating_tail_closes;
          Alcotest.test_case "compensates in reverse" `Quick test_compensates_in_reverse;
          Alcotest.test_case "saga_for" `Quick test_saga_for;
          Alcotest.test_case "simulation logs are sagas" `Quick
            test_simulation_logs_are_well_formed;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_adversarial_logs_well_formed ]);
    ]
