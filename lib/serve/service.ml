module Harness = Trust_sim.Harness
module Gen = Workload.Gen
module Prng = Workload.Prng

type config = {
  sessions : int;
  seed : int64;
  mix : Gen.mix;
  concurrency : int;
  jobs : int;
  mode : Harness.mode;
  shared : bool;
  rescue : bool;
  verify_cache : bool;
  cache_capacity : int;
  session_deadline : int;
  latency : int;
  max_events : int;
  drop_rate : float;
  retry : bool;
  defect_every : int option;
  trace : bool;
  compiled : bool;  (* execute cached plans on the allocation-free runtime *)
  sample_rate : float;  (* fraction of sessions head-sampled when tracing *)
  trace_ring : int;  (* ring-sink capacity in bytes; 0 disables the ring *)
}

let default =
  {
    sessions = 100;
    seed = 42L;
    mix = Gen.default_mix;
    concurrency = 8;
    jobs = 1;
    mode = Harness.Lockstep;
    shared = false;
    rescue = true;
    verify_cache = false;
    cache_capacity = 4096;
    session_deadline = 1000;
    latency = 1;
    max_events = 100_000;
    drop_rate = 0.;
    retry = true;
    defect_every = None;
    trace = false;
    compiled = true;
    sample_rate = 1.0;
    trace_ring = 0;
  }

type outcome = {
  config : config;
  sessions : Session.t list;
  metrics : Metrics.t;
  cache : Cache.t;
  stats : Scheduler.stats;
  wall_seconds : float;
  obs : Trust_obs.Obs.batch;
  ring : Trust_obs.Ring.t option;
}

type tally = { settled : int; expired : int; aborted : int }

let tally sessions =
  List.fold_left
    (fun acc (s : Session.t) ->
      match s.Session.status with
      | Session.Settled -> { acc with settled = acc.settled + 1 }
      | Session.Expired -> { acc with expired = acc.expired + 1 }
      | Session.Aborted _ -> { acc with aborted = acc.aborted + 1 }
      | Session.Queued | Session.Synthesizing | Session.Running -> acc)
    { settled = 0; expired = 0; aborted = 0 }
    sessions

let sessions_of_config (config : config) =
  let rng = Prng.create config.seed in
  let specs = Gen.random_transactions rng config.mix config.sessions in
  List.mapi
    (fun i spec ->
      let defectors =
        match config.defect_every with
        | Some n when n > 0 && (i + 1) mod n = 0 -> (
          match Harness.defectable_principals spec with
          | party :: _ -> [ (party, Harness.Silent) ]
          | [] -> [])
        | _ -> []
      in
      Session.make ~id:i ~defectors spec)
    specs

let run (config : config) =
  if config.sessions < 0 then invalid_arg "Service.run: negative session count";
  let sessions = sessions_of_config config in
  let cache =
    Cache.create ~capacity:config.cache_capacity
      {
        Cache.mode = config.mode;
        shared = config.shared;
        rescue = config.rescue;
        verify = config.verify_cache;
      }
  in
  let metrics = Metrics.create () in
  let scheduler_config =
    {
      Scheduler.concurrency = config.concurrency;
      jobs = config.jobs;
      session_deadline = config.session_deadline;
      latency = config.latency;
      max_events = config.max_events;
      drop_rate = config.drop_rate;
      retry = config.retry;
      seed = Shape.mix64 config.seed;
      compiled = config.compiled;
      sample_rate = config.sample_rate;
    }
  in
  let obs = Trust_obs.Obs.batch ~enabled:config.trace ~sessions:config.sessions in
  let ring =
    if config.trace_ring > 0 then
      (* one shard per worker domain: each pool job commits kept
         sessions into its own preallocated buffer, lock-free *)
      Some (Trust_obs.Ring.create ~shards:config.jobs ~capacity:config.trace_ring ())
    else None
  in
  (* gettimeofday, not [Sys.time]: CPU time sums over worker domains
     and would hide (or invert) any multicore speedup *)
  let started = Unix.gettimeofday () in
  let stats = Scheduler.run ~metrics ~obs ?ring scheduler_config cache sessions in
  let wall_seconds = Unix.gettimeofday () -. started in
  Metrics.gauge metrics ~help:"protocol cache hit rate over cacheable lookups"
    "serve_cache_hit_rate" (Cache.hit_rate cache);
  Metrics.gauge metrics ~help:"sessions completed per 1000 virtual ticks"
    "serve_virtual_throughput"
    (if stats.Scheduler.makespan = 0 then 0.
     else float_of_int config.sessions *. 1000. /. float_of_int stats.Scheduler.makespan);
  Metrics.gauge metrics ~help:"virtual makespan of the batch (ticks)" "serve_makespan_ticks"
    (float_of_int stats.Scheduler.makespan);
  { config; sessions; metrics; cache; stats; wall_seconds; obs; ring }

type exposure_tally = { peak : int; risk_ticks : int; violations : int; at_risk_sessions : int }

let exposure_tally sessions =
  List.fold_left
    (fun acc (s : Session.t) ->
      {
        peak = max acc.peak s.Session.exposure_peak;
        risk_ticks = acc.risk_ticks + s.Session.exposure_ticks;
        violations = acc.violations + s.Session.exposure_violations;
        at_risk_sessions =
          (acc.at_risk_sessions + if s.Session.exposure_peak > 0 then 1 else 0);
      })
    { peak = 0; risk_ticks = 0; violations = 0; at_risk_sessions = 0 }
    sessions

let virtual_throughput outcome =
  if outcome.stats.Scheduler.makespan = 0 then 0.
  else
    float_of_int outcome.config.sessions *. 1000.
    /. float_of_int outcome.stats.Scheduler.makespan

let report ppf outcome =
  let t = tally outcome.sessions in
  let cache = outcome.cache in
  Format.fprintf ppf "== trustseq batch ==@.";
  Format.fprintf ppf "sessions    %d (settled %d, expired %d, aborted %d, retried %d)@."
    outcome.config.sessions t.settled t.expired t.aborted outcome.stats.Scheduler.retried;
  Format.fprintf ppf "cache       hits %d, misses %d, bypasses %d, evictions %d (hit rate %.4f)@."
    (Cache.hits cache) (Cache.misses cache) (Cache.bypasses cache) (Cache.evictions cache)
    (Cache.hit_rate cache);
  Format.fprintf ppf "makespan    %d virtual ticks on %d lanes (%d worker domain%s)@."
    outcome.stats.Scheduler.makespan outcome.config.concurrency outcome.config.jobs
    (if outcome.config.jobs = 1 then "" else "s");
  Format.fprintf ppf "throughput  %.2f sessions / 1000 virtual ticks@." (virtual_throughput outcome);
  let x = exposure_tally outcome.sessions in
  Format.fprintf ppf "exposure    peak %a at-risk, %d risk ticks, %d sessions exposed, %d bound violations@."
    Exchange.Asset.pp_money x.peak x.risk_ticks x.at_risk_sessions x.violations;
  Format.fprintf ppf "-- metrics --@.%s" (Metrics.to_text outcome.metrics)

let json outcome =
  let t = tally outcome.sessions in
  let x = exposure_tally outcome.sessions in
  Printf.sprintf
    "{\"sessions\":%d,\"settled\":%d,\"expired\":%d,\"aborted\":%d,\"retried\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\"bypasses\":%d,\"evictions\":%d,\"hit_rate\":%.4f},\"makespan_ticks\":%d,\"concurrency\":%d,\"jobs\":%d,\"virtual_throughput\":%.2f,\"exposure\":{\"peak_at_risk\":%d,\"risk_ticks\":%d,\"at_risk_sessions\":%d,\"violations\":%d},\"metrics\":%s}"
    outcome.config.sessions t.settled t.expired t.aborted outcome.stats.Scheduler.retried
    (Cache.hits outcome.cache) (Cache.misses outcome.cache) (Cache.bypasses outcome.cache)
    (Cache.evictions outcome.cache) (Cache.hit_rate outcome.cache)
    outcome.stats.Scheduler.makespan outcome.config.concurrency outcome.config.jobs
    (virtual_throughput outcome) x.peak x.risk_ticks x.at_risk_sessions x.violations
    (Metrics.to_json outcome.metrics)

let wall_line outcome =
  let per_sec =
    if outcome.wall_seconds > 0. then float_of_int outcome.config.sessions /. outcome.wall_seconds
    else 0.
  in
  Printf.sprintf "wall %.3fs, %.1f sessions/sec" outcome.wall_seconds per_sec
