(* The production trace sink: a fixed-size binary ring buffer.

   Kept sessions are committed at close as a run of length-prefixed
   records — [begin] (session id, clock, keep reason), one [span]
   record per span, one [event] record per event, then [end] — into a
   preallocated per-domain byte buffer. The writer keeps two monotone
   byte offsets per shard, [first] (oldest intact record) and [total]
   (one past the newest); the live region is [first, total) taken
   modulo the capacity. Overwriting on wrap is explicit: before a
   record lands, whole records are evicted from the front until it
   fits, so the live region always parses cleanly — a dump never
   contains a torn record, and the decoder's only partiality is a
   session whose [begin] was evicted (it is skipped, which is exactly
   the "newest complete suffix" contract test_ring pins).

   Sharding makes the writer lock-free: every shard is preallocated at
   [create] and a domain adopts one for life on first use (an atomic
   fetch-and-add under [Domain.DLS]), so no two domains ever write the
   same shard concurrently — the same single-writer discipline the
   batch scheduler applies to session records and trace slots. Callers
   size [shards] to the worker-domain count. Draining and the stats
   reads happen on one thread after the writers are joined (batch) or
   on the only thread there is (the daemon's select loop).

   The commit loop writes bytes with [Bytes.unsafe_set] arithmetic —
   no buffer is allocated per record. The only per-commit allocations
   are the span views of the one kept session being encoded; unsampled
   sessions never reach this module at all, which is what keeps the
   rate-0 hot path allocation-free (gated structurally in
   test_ring). *)

type keep = Sampled | Violation | Retry | Expiry | Lint

let keep_label = function
  | Sampled -> "sampled"
  | Violation -> "violation"
  | Retry -> "retry"
  | Expiry -> "expiry"
  | Lint -> "lint"

let keep_code = function Sampled -> 0 | Violation -> 1 | Retry -> 2 | Expiry -> 3 | Lint -> 4

let keep_of_code = function
  | 0 -> Some Sampled
  | 1 -> Some Violation
  | 2 -> Some Retry
  | 3 -> Some Expiry
  | 4 -> Some Lint
  | _ -> None

type shard = {
  buf : Bytes.t;
  cap : int;
  mutable first : int;  (* monotone: byte offset of the oldest intact record *)
  mutable total : int;  (* monotone: one past the newest record byte *)
  mutable written : int;  (* records committed over the shard's lifetime *)
  mutable dropped : int;  (* records evicted on wrap or refused as oversized *)
  mutable sessions : int;  (* session commits over the shard's lifetime *)
}

type t = { shards : shard array; slot : int Domain.DLS.key }

let create ?(shards = 1) ~capacity () =
  let n = max 1 shards in
  let cap = max 1024 (capacity / n) in
  let next = Atomic.make 0 in
  {
    shards =
      Array.init n (fun _ ->
          { buf = Bytes.create cap; cap; first = 0; total = 0; written = 0; dropped = 0; sessions = 0 });
    (* first use from a domain adopts the next free shard for life; the
       mod is a defensive clamp — callers size [shards] to the writer
       count, and the single-writer guarantee needs them to *)
    slot = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next 1);
  }

let my_shard t = t.shards.(Domain.DLS.get t.slot mod Array.length t.shards)

let shard_count t = Array.length t.shards
let capacity t = Array.fold_left (fun acc s -> acc + s.cap) 0 t.shards
let records_written t = Array.fold_left (fun acc s -> acc + s.written) 0 t.shards
let records_dropped t = Array.fold_left (fun acc s -> acc + s.dropped) 0 t.shards
let sessions_recorded t = Array.fold_left (fun acc s -> acc + s.sessions) 0 t.shards
let bytes_resident t = Array.fold_left (fun acc s -> acc + (s.total - s.first)) 0 t.shards

(* -- byte layer: LEB128 varints, zigzag for signed, length-prefixed
      strings, IEEE doubles little-endian -- *)

let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))
let unzigzag v = (v lsr 1) lxor (-(v land 1))

(* fits in 7 bits, compared as unsigned — zigzagged 63-bit values use
   the whole int range, so [v < 0x80] would misclassify them *)
let fits7 v = v land lnot 0x7f = 0
let rec varint_size v = if fits7 v then 1 else 1 + varint_size (v lsr 7)
let str_size s = varint_size (String.length s) + String.length s

let put_byte s b =
  Bytes.unsafe_set s.buf (s.total mod s.cap) (Char.unsafe_chr (b land 0xff));
  s.total <- s.total + 1

let rec put_varint s v =
  if fits7 v then put_byte s v
  else begin
    put_byte s (0x80 lor (v land 0x7f));
    put_varint s (v lsr 7)
  end

let put_str s str =
  put_varint s (String.length str);
  String.iter (fun c -> put_byte s (Char.code c)) str

let put_f64 s f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    put_byte s (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done

(* a varint already in the ring, at monotone offset [off] *)
let read_varint_at s off =
  let rec go off shift acc len =
    let b = Char.code (Bytes.unsafe_get s.buf (off mod s.cap)) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, len + 1) else go (off + 1) (shift + 7) acc (len + 1)
  in
  go off 0 0 0

(* evict whole records from the front until [size] more bytes fit *)
let reserve s size =
  while s.total + size - s.first > s.cap do
    let len, hdr = read_varint_at s s.first in
    s.first <- s.first + hdr + len;
    s.dropped <- s.dropped + 1
  done

let put_record s psize emit =
  reserve s (varint_size psize + psize);
  put_varint s psize;
  emit s;
  s.written <- s.written + 1

(* -- record payloads -- *)

let tag_begin = 1 and tag_span = 2 and tag_event = 3 and tag_end = 4

let value_size = function
  | Obs.Int v -> 1 + varint_size (zigzag v)
  | Obs.Float _ -> 1 + 8
  | Obs.Str s -> 1 + str_size s
  | Obs.Bool _ -> 2

let put_value s = function
  | Obs.Int v ->
    put_byte s 0;
    put_varint s (zigzag v)
  | Obs.Float f ->
    put_byte s 1;
    put_f64 s f
  | Obs.Str str ->
    put_byte s 2;
    put_str s str
  | Obs.Bool b ->
    put_byte s 3;
    put_byte s (if b then 1 else 0)

let attrs_size attrs =
  varint_size (List.length attrs)
  + List.fold_left (fun acc (k, v) -> acc + str_size k + value_size v) 0 attrs

let put_attrs s attrs =
  put_varint s (List.length attrs);
  List.iter
    (fun (k, v) ->
      put_str s k;
      put_value s v)
    attrs

let begin_size ~session ~clock = 1 + varint_size session + varint_size clock + 1
let end_size ~session = 1 + varint_size session

let span_size (v : Obs.span_view) =
  1
  + varint_size v.Obs.view_id
  + varint_size (match v.Obs.view_parent with Some p -> p + 1 | None -> 0)
  + str_size v.Obs.view_phase + str_size v.Obs.view_name
  + varint_size v.Obs.view_start
  + varint_size (zigzag v.Obs.view_stop)
  + attrs_size v.Obs.view_attrs

let event_size span_id (e : Obs.event_view) =
  1 + varint_size span_id + varint_size e.Obs.ev_vt + str_size e.Obs.ev_name
  + attrs_size e.Obs.ev_attrs

let put_begin s ~session ~clock ~keep =
  put_byte s tag_begin;
  put_varint s session;
  put_varint s clock;
  put_byte s (keep_code keep)

let put_end s ~session =
  put_byte s tag_end;
  put_varint s session

let put_span s (v : Obs.span_view) =
  put_byte s tag_span;
  put_varint s v.Obs.view_id;
  put_varint s (match v.Obs.view_parent with Some p -> p + 1 | None -> 0);
  put_str s v.Obs.view_phase;
  put_str s v.Obs.view_name;
  put_varint s v.Obs.view_start;
  put_varint s (zigzag v.Obs.view_stop);
  put_attrs s v.Obs.view_attrs

let put_event s span_id (e : Obs.event_view) =
  put_byte s tag_event;
  put_varint s span_id;
  put_varint s e.Obs.ev_vt;
  put_str s e.Obs.ev_name;
  put_attrs s e.Obs.ev_attrs

(* -- committing one kept session -- *)

let framed psize = varint_size psize + psize

let record t ~keep obs =
  if not (Obs.enabled obs) then 0
  else begin
    let s = my_shard t in
    let session = Obs.session obs and clock = Obs.clock obs in
    let views = Obs.views obs in
    let records = ref 2 (* begin + end *) and bytes = ref 0 in
    bytes := framed (begin_size ~session ~clock) + framed (end_size ~session);
    List.iter
      (fun v ->
        incr records;
        bytes := !bytes + framed (span_size v);
        List.iter
          (fun e ->
            incr records;
            bytes := !bytes + framed (event_size v.Obs.view_id e))
          v.Obs.view_events)
      views;
    let dropped0 = s.dropped in
    if !bytes > s.cap then
      (* the whole session cannot fit: refusing it outright is the only
         way to keep commits atomic (a partial write would evict its
         own head records) — the drop counter owns up to every one *)
      s.dropped <- s.dropped + !records
    else begin
      put_record s (begin_size ~session ~clock) (fun s -> put_begin s ~session ~clock ~keep);
      List.iter
        (fun (v : Obs.span_view) ->
          put_record s (span_size v) (fun s -> put_span s v);
          List.iter
            (fun e -> put_record s (event_size v.Obs.view_id e) (fun s -> put_event s v.Obs.view_id e))
            v.Obs.view_events)
        views;
      put_record s (end_size ~session) (fun s -> put_end s ~session);
      s.sessions <- s.sessions + 1
    end;
    s.dropped - dropped0
  end

(* -- dumps: the linearized live region, one blob per shard --

   Layout (all integers LEB128 varints unless noted):

     magic "TSR1"                      4 bytes
     shard count
     per shard:
       records written (lifetime)
       records dropped (lifetime)
       live length in bytes
       live bytes: the records of [first, total), oldest first

   Each record is [varint payload-length][payload]; payloads start
   with a one-byte tag (1 begin, 2 span, 3 event, 4 end) — the full
   field layout is documented in docs/OBS.md and pinned by the decoder
   round-trip property in test_ring. *)

let magic = "TSR1"

let buf_varint b v =
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let dump t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  buf_varint b (Array.length t.shards);
  Array.iter
    (fun s ->
      buf_varint b s.written;
      buf_varint b s.dropped;
      buf_varint b (s.total - s.first);
      for off = s.first to s.total - 1 do
        Buffer.add_char b (Bytes.unsafe_get s.buf (off mod s.cap))
      done)
    t.shards;
  Buffer.contents b

let drain t =
  let d = dump t in
  Array.iter (fun s -> s.first <- s.total) t.shards;
  d

let empty_dump = magic ^ "\x00"

(* -- the offline decoder -- *)

type session = { s_id : int; s_clock : int; s_keep : keep; s_views : Obs.span_view list }

type stats = {
  d_shards : int;
  d_written : int;
  d_dropped : int;
  d_sessions : int;
  d_skipped : int;
}

exception Corrupt of string

type reader = { src : string; mutable pos : int; limit : int }

let rd_byte r =
  if r.pos >= r.limit then raise (Corrupt "truncated record");
  let b = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  b

let rd_varint r =
  let rec go shift acc =
    let b = rd_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let rd_str r =
  let len = rd_varint r in
  if len < 0 || r.pos + len > r.limit then raise (Corrupt "truncated string");
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let rd_f64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (rd_byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let rd_value r =
  match rd_byte r with
  | 0 -> Obs.Int (unzigzag (rd_varint r))
  | 1 -> Obs.Float (rd_f64 r)
  | 2 -> Obs.Str (rd_str r)
  | 3 -> Obs.Bool (rd_byte r <> 0)
  | t -> raise (Corrupt (Printf.sprintf "unknown value tag %d" t))

let rd_attrs r =
  let n = rd_varint r in
  List.init n (fun _ ->
      let k = rd_str r in
      (k, rd_value r))

(* A span under reconstruction: events arrive as separate records, so
   they accumulate (reversed) until the session's [end] seals it. *)
type building = {
  b_view : Obs.span_view;
  mutable b_events : Obs.event_view list;  (* reversed *)
}

type open_session = {
  o_id : int;
  o_clock : int;
  o_keep : keep;
  mutable o_spans : building list;  (* reversed creation order *)
}

let decode_shard sessions skipped r =
  let current = ref None in
  while r.pos < r.limit do
    let psize = rd_varint r in
    if r.pos + psize > r.limit then raise (Corrupt "record overruns the dump");
    let stop = r.pos + psize in
    (match rd_byte r with
    | t when t = tag_begin ->
      let id = rd_varint r in
      let clock = rd_varint r in
      let keep =
        match keep_of_code (rd_byte r) with
        | Some k -> k
        | None -> raise (Corrupt "unknown keep code")
      in
      (* a begin while a session is open means its end was evicted —
         impossible under whole-session commits, but drop it defensively *)
      current := Some { o_id = id; o_clock = clock; o_keep = keep; o_spans = [] }
    | t when t = tag_span -> (
      let id = rd_varint r in
      let parent = match rd_varint r with 0 -> None | p -> Some (p - 1) in
      let phase = rd_str r in
      let name = rd_str r in
      let start = rd_varint r in
      let stop_vt = unzigzag (rd_varint r) in
      let attrs = rd_attrs r in
      match !current with
      | None -> ()  (* orphan: its session's begin was evicted on wrap *)
      | Some o ->
        o.o_spans <-
          {
            b_view =
              {
                Obs.view_session = o.o_id;
                view_id = id;
                view_parent = parent;
                view_phase = phase;
                view_name = name;
                view_start = start;
                view_stop = stop_vt;
                view_attrs = attrs;
                view_events = [];
              };
            b_events = [];
          }
          :: o.o_spans)
    | t when t = tag_event -> (
      let span_id = rd_varint r in
      let vt = rd_varint r in
      let name = rd_str r in
      let attrs = rd_attrs r in
      match !current with
      | None -> ()
      | Some o -> (
        match List.find_opt (fun b -> b.b_view.Obs.view_id = span_id) o.o_spans with
        | None -> ()  (* the event's span record was evicted with the begin *)
        | Some b -> b.b_events <- { Obs.ev_name = name; ev_vt = vt; ev_attrs = attrs } :: b.b_events))
    | t when t = tag_end -> (
      let id = rd_varint r in
      match !current with
      | Some o when o.o_id = id ->
        let views =
          List.rev_map
            (fun b -> { b.b_view with Obs.view_events = List.rev b.b_events })
            o.o_spans
        in
        sessions := { s_id = o.o_id; s_clock = o.o_clock; s_keep = o.o_keep; s_views = views } :: !sessions;
        current := None
      | Some _ | None ->
        (* a dangling end: the session's begin (and possibly some of
           its spans) was evicted on wrap. Whole-record eviction is
           oldest-first and records commit in session order, so every
           partially-evicted session leaves exactly one of these —
           counting them counts the sessions the newest-complete-suffix
           decode had to discard. *)
        incr skipped)
    | t -> raise (Corrupt (Printf.sprintf "unknown record tag %d" t)));
    r.pos <- stop
  done

let decode dump =
  try
    let r = { src = dump; pos = 0; limit = String.length dump } in
    if r.limit < 5 || String.sub dump 0 4 <> magic then raise (Corrupt "bad magic (not a TSR1 ring dump)");
    r.pos <- 4;
    let nshards = rd_varint r in
    let written = ref 0 and dropped = ref 0 and skipped = ref 0 in
    let sessions = ref [] in
    for _ = 1 to nshards do
      written := !written + rd_varint r;
      dropped := !dropped + rd_varint r;
      let len = rd_varint r in
      if r.pos + len > r.limit then raise (Corrupt "shard overruns the dump");
      decode_shard sessions skipped { src = dump; pos = r.pos; limit = r.pos + len };
      r.pos <- r.pos + len
    done;
    let sessions = List.sort (fun a b -> compare a.s_id b.s_id) !sessions in
    Ok
      ( sessions,
        {
          d_shards = nshards;
          d_written = !written;
          d_dropped = !dropped;
          d_sessions = List.length sessions;
          d_skipped = !skipped;
        } )
  with Corrupt m -> Error m

(* -- re-emission through the unchanged exporters -- *)

let to_trace s = Obs.of_views ~session:s.s_id ~clock:s.s_clock s.s_views

let export ?producer fmt sessions = Obs.export ?producer fmt (List.map to_trace sessions)
