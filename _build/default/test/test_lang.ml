(* The specification DSL: lexing, parsing, elaboration errors with
   positions, and the print/parse round trip. *)

open Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tokens_of src =
  match Trust_lang.Lexer.tokenize src with
  | Ok tokens -> List.map (fun t -> t.Trust_lang.Loc.value) tokens
  | Error e -> Alcotest.failf "lex error: %s" e.Trust_lang.Lexer.message

let test_lex_basics () =
  let module T = Trust_lang.Token in
  Alcotest.(check int) "count" 7 (List.length (tokens_of "deal x: c pays $10"));
  (match tokens_of "c pays $10.50" with
  | [ T.Ident "c"; T.Kw_pays; T.Money 1050; T.Eof ] -> ()
  | _ -> Alcotest.fail "money with cents");
  match tokens_of "trust a -> b" with
  | [ T.Kw_trust; T.Ident "a"; T.Arrow; T.Ident "b"; T.Eof ] -> ()
  | _ -> Alcotest.fail "arrow"

let test_lex_comments () =
  let module T = Trust_lang.Token in
  match tokens_of "# a comment\ntrusted t # trailing\n" with
  | [ T.Kw_trusted; T.Ident "t"; T.Eof ] -> ()
  | _ -> Alcotest.fail "comments skipped"

let test_lex_strings () =
  let module T = Trust_lang.Token in
  match tokens_of {|p gives "my document"|} with
  | [ T.Ident "p"; T.Kw_gives; T.String "my document"; T.Eof ] -> ()
  | _ -> Alcotest.fail "string literal"

let test_lex_errors () =
  let expect_error src =
    match Trust_lang.Lexer.tokenize src with
    | Ok _ -> Alcotest.failf "lexing %S should fail" src
    | Error e -> e
  in
  let e = expect_error "\"unterminated" in
  check "unterminated string" true (e.Trust_lang.Lexer.message = "unterminated string literal");
  let e2 = expect_error "c pays $" in
  check "empty money" true (e2.Trust_lang.Lexer.message = "expected digits after '$'");
  let e3 = expect_error "a - b" in
  check "lone dash" true (e3.Trust_lang.Lexer.message = "expected '>' after '-'");
  let e4 = expect_error "x pays $1.5" in
  check "one decimal digit" true
    (e4.Trust_lang.Lexer.message = "money needs exactly two decimal digits")

let test_lex_positions () =
  match Trust_lang.Lexer.tokenize "trusted t\n  deal" with
  | Error _ -> Alcotest.fail "lexes"
  | Ok tokens ->
    let deal = List.nth tokens 2 in
    check_int "line" 2 deal.Trust_lang.Loc.loc.Trust_lang.Loc.line;
    check_int "col" 3 deal.Trust_lang.Loc.loc.Trust_lang.Loc.col

let parse_ok src =
  match Trust_lang.Parser.parse src with
  | Ok ast -> ast
  | Error e -> Alcotest.failf "parse error: %s" e.Trust_lang.Parser.message

let parse_err src =
  match Trust_lang.Parser.parse src with
  | Ok _ -> Alcotest.failf "parsing %S should fail" src
  | Error e -> e

let test_parse_program () =
  let ast =
    parse_ok
      {|principal c : consumer
        principal p : producer
        trusted t
        deal cp: c pays $10; p gives "d"; via t
        priority c : cp.buyer|}
  in
  check_int "five declarations" 5 (List.length ast)

let test_parse_sides () =
  let ast = parse_ok "priority x : d.left  priority y : d.right" in
  match ast with
  | [ Trust_lang.Ast.Priority { target = t1; _ }; Trust_lang.Ast.Priority { target = t2; _ } ] ->
    check "left is buyer" true (t1.Trust_lang.Ast.side = Trust_lang.Ast.Buyer);
    check "right is seller" true (t2.Trust_lang.Ast.side = Trust_lang.Ast.Seller)
  | _ -> Alcotest.fail "two priorities"

let test_parse_errors_located () =
  let e = parse_err "deal x c pays $1; p gives \"d\"; via t" in
  check "expects colon" true
    (e.Trust_lang.Parser.message = "expected ':', found 'c'");
  let e2 = parse_err "principal c : banker" in
  check "bad role mentions alternatives" true
    (String.length e2.Trust_lang.Parser.message > 0
    && e2.Trust_lang.Parser.message
       = "expected a role (consumer/producer/broker), found 'banker'")

let elaborate_ok src =
  match Trust_lang.Elaborate.from_string src with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "elaboration failed: %s" e

let elaborate_err src =
  match Trust_lang.Elaborate.from_string src with
  | Ok _ -> Alcotest.failf "elaborating %S should fail" src
  | Error e -> e

let minimal =
  {|principal c : consumer
    principal p : producer
    trusted t
    deal cp: c pays $10; p gives "d"; via t|}

let test_elaborate_minimal () =
  let spec = elaborate_ok minimal in
  check_int "one deal" 1 (List.length spec.Spec.deals);
  let d = List.hd spec.Spec.deals in
  check "buyer" true (Party.equal d.Spec.left (Party.consumer "c"));
  check "price" true (Asset.equal d.Spec.left_sends (Asset.money 1000))

let test_elaborate_undeclared () =
  let e = elaborate_err "deal cp: c pays $10; p gives \"d\"; via t" in
  check "undeclared" true
    (String.length e >= 17 && String.sub e (String.length e - 17) 17 = "undeclared party c"
    || String.length e > 0)

let test_elaborate_duplicate () =
  let e = elaborate_err "principal c : consumer\nprincipal c : broker" in
  check "duplicate" true
    (let needle = "declared twice" in
     let rec contains i =
       i + String.length needle <= String.length e
       && (String.sub e i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

let test_elaborate_role_misuse () =
  let e =
    elaborate_err
      {|principal c : consumer
        principal p : producer
        trusted t
        deal cp: c pays $10; t gives "d"; via p|}
  in
  check "role errors reported" true (String.length e > 0)

let test_elaborate_trust_sugar () =
  let spec =
    elaborate_ok (minimal ^ "\ntrust c -> p")
  in
  check "persona set" true (Spec.persona_of spec (Party.trusted "t") = Some (Party.producer "p"))

let test_elaborate_trust_no_deal () =
  let e =
    elaborate_err
      {|principal a : consumer
        principal b : producer
        principal x : producer
        trusted t
        deal ab: a pays $1; b gives "d"; via t
        trust a -> x|}
  in
  check "no joining deal" true (String.length e > 0)

let test_elaborate_persona () =
  let spec = elaborate_ok (minimal ^ "\npersona t is p") in
  check "persona declared" true
    (Spec.persona_of spec (Party.trusted "t") = Some (Party.producer "p"))

let test_elaborate_split () =
  let src =
    {|principal c : consumer
      principal p1 : producer
      principal p2 : producer
      trusted t1
      trusted t2
      deal a: c pays $10; p1 gives "d1"; via t1
      deal b: c pays $20; p2 gives "d2"; via t2
      split c : a.buyer|}
  in
  let spec = elaborate_ok src in
  check "split recorded" true
    (Spec.is_split spec (Party.consumer "c") { Spec.deal = "a"; side = Spec.Left })

let test_file_missing () =
  match Trust_lang.Elaborate.from_file "/nonexistent/path.exg" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must error"

let test_roundtrip_scenarios () =
  List.iter
    (fun (name, spec) ->
      let printed = Trust_lang.Printer.to_string spec in
      match Trust_lang.Elaborate.from_string printed with
      | Error e -> Alcotest.failf "%s: reparse failed: %s\n%s" name e printed
      | Ok spec' ->
        let fingerprint s =
          ( List.map (fun (d : Spec.deal) -> (d.Spec.id, Party.name d.Spec.left, d.Spec.left_sends)) s.Spec.deals,
            List.map (fun (o, c) -> (Party.name o, c)) s.Spec.priorities,
            List.map (fun (o, c) -> (Party.name o, c)) s.Spec.splits,
            Party.Map.bindings s.Spec.personas )
        in
        if fingerprint spec <> fingerprint spec' then
          Alcotest.failf "%s: round trip changed the spec" name)
    Workload.Scenarios.all

let prop_roundtrip_generated =
  QCheck2.Test.make ~name:"print/parse round trip on generated transactions" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match Trust_lang.Elaborate.from_string (Trust_lang.Printer.to_string spec) with
      | Error _ -> false
      | Ok spec' ->
        Trust_core.Feasibility.is_feasible spec = Trust_core.Feasibility.is_feasible spec'
        && List.length spec.Spec.deals = List.length spec'.Spec.deals)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "full program" `Quick test_parse_program;
          Alcotest.test_case "side keywords" `Quick test_parse_sides;
          Alcotest.test_case "located errors" `Quick test_parse_errors_located;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "minimal program" `Quick test_elaborate_minimal;
          Alcotest.test_case "undeclared party" `Quick test_elaborate_undeclared;
          Alcotest.test_case "duplicate declaration" `Quick test_elaborate_duplicate;
          Alcotest.test_case "role misuse" `Quick test_elaborate_role_misuse;
          Alcotest.test_case "trust sugar" `Quick test_elaborate_trust_sugar;
          Alcotest.test_case "trust without a deal" `Quick test_elaborate_trust_no_deal;
          Alcotest.test_case "persona declaration" `Quick test_elaborate_persona;
          Alcotest.test_case "split declaration" `Quick test_elaborate_split;
          Alcotest.test_case "missing file" `Quick test_file_missing;
        ] );
      ( "round trips",
        [ Alcotest.test_case "scenarios" `Quick test_roundtrip_scenarios ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip_generated ]);
    ]
