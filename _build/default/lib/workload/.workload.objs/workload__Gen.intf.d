lib/workload/gen.mli: Asset Exchange Party Prng Spec
