(** Exchange-problem specifications (paper §2, §4).

    The subclass of action/state problems the sequencing-graph machinery
    handles: a set of pairwise exchanges, each between two distrusting
    principals mediated by a trusted intermediary. Every internal party
    (one with two or more interaction edges) induces a conjunction —
    all its commitments happen or none do. A commitment may be marked
    {e prioritised} (a red edge: it must be committed before its
    siblings, §4.1), a trusted role may be a {e persona} played by one of
    the deal's own principals (direct trust, §4.2.3), and a conjunction
    edge may be {e split} by an indemnity (§6). *)

type side = Left | Right

type deal = {
  id : string;  (** unique within the spec *)
  left : Party.t;  (** a principal *)
  right : Party.t;  (** a principal *)
  via : Party.t;  (** the trusted intermediary role *)
  left_sends : Asset.t;  (** what [left] hands to [via] *)
  right_sends : Asset.t;  (** what [right] hands to [via] *)
  deadline : int option;
      (** §2.2: how long (in runtime ticks) the intermediary may hold a
          side of this deal before returning it; [None] means the
          run-level escrow deadline ("sufficiently generous") applies *)
}

type commitment_ref = { deal : string; side : side }
(** One interaction-graph edge: the [side] principal's commitment to the
    deal's trusted intermediary. *)

type t = private {
  deals : deal list;
  personas : Party.t Party.Map.t;
      (** trusted role -> principal playing it (direct trust) *)
  priorities : (Party.t * commitment_ref) list;
      (** (conjunction owner, commitment): red edge — that commitment
          must be committed before the owner's other commitments *)
  splits : (Party.t * commitment_ref) list;
      (** conjunction edges removed by an indemnity *)
  overrides : State.acceptability Party.Map.t;
      (** acceptability overrides; parties absent here use the
          generated defaults of {!Outcomes} *)
  shape : (string * int64) Lazy.t;
      (** memoized canonical shape: the injective byte encoding of
          everything synthesis depends on, paired with its 64-bit
          FNV-1a hash. Installed by every constructor, forced at most
          once per value — prefer {!shape_key}/{!shape_hash}. *)
}

(** {1 Construction} *)

val deal :
  id:string -> left:Party.t -> right:Party.t -> via:Party.t ->
  left_sends:Asset.t -> right_sends:Asset.t -> deal
(** A deal without a deadline of its own; see {!with_deadline}. *)

val sale :
  id:string -> buyer:Party.t -> seller:Party.t -> via:Party.t ->
  price:Asset.money -> good:string -> deal
(** [sale] is the ubiquitous special case: buyer pays [price], seller
    gives [good]. The buyer is the [Left] side. *)

val with_deadline : int -> deal -> deal
(** Set the deal's escrow deadline (§2.2), in runtime ticks. *)

val make :
  ?personas:(Party.t * Party.t) list ->
  ?priorities:(Party.t * commitment_ref) list ->
  ?splits:(Party.t * commitment_ref) list ->
  ?overrides:(Party.t * State.acceptability) list ->
  deal list ->
  (t, string list) result
(** Build and {{!validate}validate} a spec. [personas] pairs are
    [(trusted_role, principal)]. *)

val make_exn :
  ?personas:(Party.t * Party.t) list ->
  ?priorities:(Party.t * commitment_ref) list ->
  ?splits:(Party.t * commitment_ref) list ->
  ?overrides:(Party.t * State.acceptability) list ->
  deal list ->
  t
(** @raise Invalid_argument with the validation errors. *)

val with_split : Party.t -> commitment_ref -> t -> t
(** Record an indemnity split. Idempotent.
    @raise Invalid_argument if owner/commitment are not in the spec. *)

val with_persona : trusted:Party.t -> principal:Party.t -> t -> t
(** Declare direct trust: [principal] plays the [trusted] role.
    @raise Invalid_argument on validation failure. *)

val with_priority : Party.t -> commitment_ref -> t -> t
val with_override : Party.t -> State.acceptability -> t -> t

(** {1 Accessors} *)

val find_deal : t -> string -> deal option
val commitment_principal : deal -> side -> Party.t
val commitment_sends : deal -> side -> Asset.t
val commitment_expects : deal -> side -> Asset.t
(** What the side principal receives when the deal completes. *)

val other_side : side -> side

val commitments : t -> (commitment_ref * deal) list
(** Every interaction edge, [Left] then [Right] per deal, deal order. *)

val commitments_of : t -> Party.t -> commitment_ref list
(** Interaction edges incident to a party (as principal or as the
    trusted role — personas do {e not} merge here; the interaction graph
    keeps the abstract role separate, §3). *)

val principals : t -> Party.t list
(** Distinct principals, first-appearance order. *)

val trusted_agents : t -> Party.t list
val parties : t -> Party.t list

val internal_parties : t -> Party.t list
(** Parties with two or more interaction edges: the conjunction owners. *)

val persona_of : t -> Party.t -> Party.t option
(** The principal playing a trusted role, if any. *)

val effective_agent : t -> deal -> Party.t
(** The party that actually performs the trusted role of a deal: the
    persona when declared, the abstract trusted party otherwise. *)

val plays_own_agent : t -> commitment_ref -> bool
(** Rule #1 clause 2 (§4.2.4): the commitment's principal itself plays
    the deal's trusted-agent role. *)

val is_priority : t -> Party.t -> commitment_ref -> bool
val is_split : t -> Party.t -> commitment_ref -> bool

val linked_commitments_of : t -> Party.t -> commitment_ref list
(** [commitments_of] minus split edges: the edges actually present in
    the sequencing graph for this party's conjunction. *)

val cost_to : t -> Party.t -> commitment_ref -> Asset.money
(** Money the party sends in that commitment's deal ([0] when its side
    sends a document). This is the "cost of a piece" of §6. *)

val indemnity_amount : t -> Party.t -> commitment_ref -> Asset.money
(** §6: the indemnity that covers splitting [commitment] off [owner]'s
    conjunction — the total cost to [owner] of all {e other} pieces of
    that conjunction (computed over the original, unsplit set, so the
    value does not depend on the order indemnities are offered in;
    Fig. 7's $50/$40/$30 for the $10/$20/$30 documents). *)

val acceptability_overrides : t -> Party.t -> State.acceptability option

(** {1 Canonical shape} *)

val shape_key : t -> string
(** Injective canonical encoding of the spec: deals in spec order,
    parties with roles, assets with exact amounts, deadlines, personas,
    priorities, splits, and override {e keys}. Equal strings iff equal
    synthesis inputs. Memoized — repeated calls return the same
    physical string. *)

val shape_hash : t -> int64
(** FNV-1a (64-bit) of {!shape_key}, memoized alongside it. Stable
    across runs and processes — never derived from [Hashtbl.hash] or
    address identity. *)

val shape_hex : t -> string
(** [shape_hash] as 16 lowercase hex digits. *)

val validate : t -> (unit, string list) result

val equal_ref : commitment_ref -> commitment_ref -> bool
val pp_side : Format.formatter -> side -> unit
val pp_ref : Format.formatter -> commitment_ref -> unit
val pp_deal : Format.formatter -> deal -> unit
val pp : Format.formatter -> t -> unit
