(** The cost of mistrust (paper §8).

    Two parties that trust each other exchange with two messages; two
    that do not need four (two to the intermediary, two from it), plus
    notifications. A single universally trusted intermediary makes every
    exchange feasible without indemnities, as a distributed transaction
    it coordinates. This module counts messages in synthesized execution
    sequences and builds the §8 comparison specs. *)

open Exchange

type tally = {
  transfers : int;  (** give/pay messages *)
  notifications : int;
  compensations : int;  (** give⁻¹/pay⁻¹ messages *)
  total : int;
}

val tally_actions : Action.t list -> tally
val tally_sequence : Execution.sequence -> tally

val with_all_direct_trust : Spec.t -> Spec.t
(** Every deal's trusted role played by its buying ([Left]) principal:
    the fully-trusting world of §8 — two messages per deal, and broker
    red edges become persona-unblocked (§4.2.3 variant 1). *)

val with_universal_intermediary : Spec.t -> Spec.t
(** Every deal re-routed through one fresh trusted agent ["t*"]. *)

val universal_feasible : Spec.t -> bool
(** §8: under a universal intermediary the transaction is feasible
    whenever the deal constraints are mutually satisfiable — the
    intermediary validates them and runs the whole exchange atomically.
    For the exchange problems here that is always true; exposed as a
    function (with its trivial implementation) to make the claim a
    testable statement rather than prose. *)

val universal_tally : Spec.t -> tally
(** Message cost of the universal-intermediary distributed transaction:
    every principal sends each of its deal-side items in (one message
    each) and receives each expected counterpart out (one message each);
    no notifications are needed because the intermediary sees the whole
    transaction. *)

val pp_tally : Format.formatter -> tally -> unit
