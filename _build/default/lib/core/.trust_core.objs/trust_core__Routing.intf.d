lib/core/routing.mli: Asset Exchange Format Party Spec
