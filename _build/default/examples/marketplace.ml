(* A randomized electronic marketplace (§1, §9): a stream of independent
   transactions — plain sales, broker resale chains, document fans and
   all-or-nothing bundles — over a population with a configurable level
   of direct trust. For each transaction the market: checks feasibility,
   tries the indemnity rescue when stuck, synthesizes the protocol and
   runs it; the summary shows how trust density changes what commerce is
   possible and what it costs.

     dune exec examples/marketplace.exe [seed]
*)


module Feasibility = Trust_core.Feasibility

type stats = {
  mutable transactions : int;
  mutable feasible : int;
  mutable rescued : int;
  mutable failed : int;
  mutable messages : int;
  mutable indemnity_cents : int;
  mutable runs_ok : int;
}

let fresh () =
  {
    transactions = 0;
    feasible = 0;
    rescued = 0;
    failed = 0;
    messages = 0;
    indemnity_cents = 0;
    runs_ok = 0;
  }

let settle stats spec =
  stats.transactions <- stats.transactions + 1;
  let finish plan analysis =
    match analysis.Feasibility.sequence with
    | None -> stats.failed <- stats.failed + 1
    | Some seq ->
      stats.messages <- stats.messages + Trust_core.Execution.message_count seq;
      let run =
        match plan with
        | None -> Trust_sim.Harness.honest_run spec
        | Some plan -> Trust_sim.Harness.honest_run ~plan spec
      in
      (match run with
      | Ok result ->
        let report = Trust_sim.Audit.audit spec ?plan result in
        if report.Trust_sim.Audit.all_preferred then stats.runs_ok <- stats.runs_ok + 1
      | Error _ -> ())
  in
  let analysis = Feasibility.analyze spec in
  if analysis.Feasibility.sequence <> None then begin
    stats.feasible <- stats.feasible + 1;
    finish None analysis
  end
  else
    match Feasibility.rescue_with_indemnities spec with
    | Some rescue ->
      stats.rescued <- stats.rescued + 1;
      stats.indemnity_cents <- stats.indemnity_cents + Feasibility.total_indemnity rescue;
      let plan =
        Trust_core.Indemnity.
          {
            offers = List.concat_map (fun p -> p.offers) rescue.Feasibility.plans;
            total = Feasibility.total_indemnity rescue;
          }
      in
      finish (Some plan) rescue.Feasibility.analysis
    | None -> stats.failed <- stats.failed + 1

let () =
  let seed =
    if Array.length Sys.argv > 1 then Int64.of_string Sys.argv.(1) else 20260706L
  in
  let per_density = 150 in
  Printf.printf "marketplace of %d transactions per trust level (seed %Ld)\n\n" per_density seed;
  let rows =
    List.map
      (fun density ->
        let rng = Workload.Prng.create seed in
        let mix = { Workload.Gen.default_mix with Workload.Gen.trust_density = density } in
        let stats = fresh () in
        List.iter (settle stats) (Workload.Gen.random_transactions rng mix per_density);
        [
          Printf.sprintf "%.1f" density;
          string_of_int stats.feasible;
          string_of_int stats.rescued;
          string_of_int stats.failed;
          Report.Table.money stats.indemnity_cents;
          string_of_int stats.messages;
          Printf.sprintf "%d/%d" stats.runs_ok (stats.feasible + stats.rescued);
        ])
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  Report.Table.print
    ~header:
      [
        "trust density";
        "feasible";
        "rescued";
        "failed";
        "indemnities escrowed";
        "messages";
        "runs completing";
      ]
    rows;
  print_newline ();
  print_string
    (Report.Table.kv
       [
         ("feasible", "protective order exists as specified");
         ("rescued", "infeasible until indemnities split the bundle conjunctions (para 6)");
         ("failed", "no protective order even with indemnities (poor-broker style)");
         ("messages", "total transfer+notify messages across all completed transactions");
       ])
