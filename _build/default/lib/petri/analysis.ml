type stats = { explored : int; frontier_peak : int; hit_bound : bool }

type 'verdict result = { verdict : 'verdict; stats : stats }

module Marking_table = Hashtbl.Make (struct
  type t = Net.Marking.t

  let equal = Net.Marking.equal
  let hash = Net.Marking.hash
end)

let reachable ?(max_states = 1_000_000) net initial ~goal =
  let visited = Marking_table.create 1024 in
  let queue = Queue.create () in
  Marking_table.replace visited initial ();
  Queue.add (initial, []) queue;
  let explored = ref 0 and peak = ref 1 in
  let rec loop () =
    if Queue.is_empty queue then
      { verdict = `Exhausted; stats = { explored = !explored; frontier_peak = !peak; hit_bound = false } }
    else begin
      let m, trace = Queue.pop queue in
      incr explored;
      if goal m then
        {
          verdict = `Found (List.rev trace);
          stats = { explored = !explored; frontier_peak = !peak; hit_bound = false };
        }
      else if Marking_table.length visited >= max_states then
        { verdict = `Bound_hit; stats = { explored = !explored; frontier_peak = !peak; hit_bound = true } }
      else begin
        List.iter
          (fun t ->
            let m' = Net.fire net m t in
            if not (Marking_table.mem visited m') then begin
              Marking_table.replace visited m' ();
              Queue.add (m', t :: trace) queue
            end)
          (Net.enabled_transitions net m);
        peak := max !peak (Queue.length queue);
        loop ()
      end
    end
  in
  loop ()

let state_space_size ?max_states net initial =
  let r = reachable ?max_states net initial ~goal:(fun _ -> false) in
  match r.verdict with
  | `Exhausted -> Some r.stats.explored
  | `Bound_hit | `Found _ -> None

(* Karp-Miller with omega represented as max_int. *)
let omega = max_int

let km_fire net m t =
  let m' = Array.copy m in
  List.iter (fun (p, w) -> if m'.(p) <> omega then m'.(p) <- m'.(p) - w) (Net.pre net t);
  List.iter (fun (p, w) -> if m'.(p) <> omega then m'.(p) <- m'.(p) + w) (Net.post net t);
  m'

let km_enabled net (m : int array) t =
  List.for_all (fun (p, w) -> m.(p) = omega || m.(p) >= w) (Net.pre net t)

let strictly_dominates (a : int array) b =
  let ge = ref true and gt = ref false in
  Array.iteri
    (fun i ai ->
      if ai < b.(i) then ge := false;
      if ai > b.(i) then gt := true)
    a;
  !ge && !gt

let accelerate ancestors m =
  let m' = Array.copy m in
  List.iter
    (fun anc ->
      if strictly_dominates m anc then
        Array.iteri (fun i v -> if v > anc.(i) then m'.(i) <- omega) m)
    ancestors;
  m'

let km_covers (m : int array) target =
  Array.for_all2 (fun have need -> have = omega || have >= need) m target

let coverable ?(max_nodes = 200_000) net initial ~target =
  let initial = Net.Marking.to_array initial and target = Net.Marking.to_array target in
  let nodes = ref 0 and peak = ref 1 in
  let exception Covered in
  let exception Bound in
  (* Depth-first tree construction; each node carries its ancestor chain
     for acceleration and subsumption. *)
  let rec visit ancestors m =
    incr nodes;
    if !nodes > max_nodes then raise Bound;
    if km_covers m target then raise Covered;
    (* prune: identical marking already on the ancestor path *)
    if not (List.exists (fun anc -> anc = m) ancestors) then begin
      let m = accelerate ancestors m in
      if km_covers m target then raise Covered;
      let children =
        List.filter_map
          (fun t -> if km_enabled net m t then Some (km_fire net m t) else None)
          (List.init (Net.transition_count net) (fun i -> i))
      in
      peak := max !peak (List.length children);
      List.iter (visit (m :: ancestors)) children
    end
  in
  let finish verdict hit_bound =
    { verdict; stats = { explored = !nodes; frontier_peak = !peak; hit_bound } }
  in
  match visit [] (Array.copy initial) with
  | () -> finish `Not_coverable false
  | exception Covered -> finish `Coverable false
  | exception Bound -> finish `Bound_hit true
