lib/core/reduce.ml: Array Exchange Format Int List Queue Sequencing
