open Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let c = Party.consumer "c"
let b = Party.broker "b"
let p = Party.producer "p"
let t1 = Party.trusted "t1"
let t2 = Party.trusted "t2"

let sale = Spec.sale ~id:"cb" ~buyer:c ~seller:b ~via:t1 ~price:(Asset.dollars 10) ~good:"d"

let example1 = Workload.Scenarios.example1

let test_sale_shape () =
  check "buyer left" true (Party.equal sale.Spec.left c);
  check "seller right" true (Party.equal sale.Spec.right b);
  check "money" true (Asset.equal sale.Spec.left_sends (Asset.money 1000));
  check "doc" true (Asset.equal sale.Spec.right_sends (Asset.document "d"))

let expect_errors deals ~personas ~priorities =
  match Spec.make ~personas ~priorities deals with
  | Ok _ -> Alcotest.fail "expected validation failure"
  | Error errors -> errors

let test_validate_empty () =
  let errors = expect_errors [] ~personas:[] ~priorities:[] in
  check "no deals rejected" true (List.exists (fun e -> e = "spec has no deals") errors)

let test_validate_duplicate_ids () =
  let errors = expect_errors [ sale; sale ] ~personas:[] ~priorities:[] in
  check "duplicate ids" true
    (List.exists (fun e -> String.length e > 0 && String.sub e 0 9 = "duplicate") errors)

let test_validate_party_kinds () =
  let bogus = Spec.deal ~id:"x" ~left:t1 ~right:b ~via:t2 ~left_sends:(Asset.money 1) ~right_sends:(Asset.money 1) in
  let errors = expect_errors [ bogus ] ~personas:[] ~priorities:[] in
  check "left must be principal" true
    (List.exists (fun e -> e = "deal x: left party t1:trusted is not a principal") errors);
  let bogus2 = Spec.deal ~id:"y" ~left:c ~right:b ~via:p ~left_sends:(Asset.money 1) ~right_sends:(Asset.money 1) in
  let errors2 = expect_errors [ bogus2 ] ~personas:[] ~priorities:[] in
  check "via must be trusted" true
    (List.exists (fun e -> e = "deal y: via p:producer is not a trusted role") errors2)

let test_validate_self_deal () =
  let selfish = Spec.deal ~id:"z" ~left:c ~right:c ~via:t1 ~left_sends:(Asset.money 1) ~right_sends:(Asset.money 2) in
  let errors = expect_errors [ selfish ] ~personas:[] ~priorities:[] in
  check "self deal" true (List.exists (fun e -> e = "deal z: a party cannot exchange with itself") errors)

let test_validate_persona () =
  (* persona principal must be party to every deal the role mediates *)
  let errors = expect_errors [ sale ] ~personas:[ (t1, p) ] ~priorities:[] in
  check "stranger persona" true
    (List.exists (fun e -> e = "persona: p:producer plays t1:trusted but is not a principal of deal cb") errors);
  let errors2 = expect_errors [ sale ] ~personas:[ (t2, b) ] ~priorities:[] in
  check "unused trusted role" true
    (List.exists (fun e -> e = "persona: trusted role t2:trusted mediates no deal") errors2)

let test_validate_marks () =
  let dangling = { Spec.deal = "nope"; side = Spec.Left } in
  let errors = expect_errors [ sale ] ~personas:[] ~priorities:[ (c, dangling) ] in
  check "unknown deal" true (List.exists (fun e -> e = "priority: unknown deal \"nope\"") errors);
  let wrong_owner = { Spec.deal = "cb"; side = Spec.Left } in
  let errors2 = expect_errors [ sale ] ~personas:[] ~priorities:[ (p, wrong_owner) ] in
  check "non endpoint" true
    (List.exists
       (fun e -> e = "priority: p:producer is not an endpoint of commitment cb.left")
       errors2)

let test_commitments () =
  let refs = List.map fst (Spec.commitments example1) in
  check_int "two deals, four commitments" 4 (List.length refs);
  check "first is bp.left" true
    (Spec.equal_ref (List.hd refs) { Spec.deal = "bp"; side = Spec.Left })

let test_commitment_accessors () =
  check "principal of left" true (Party.equal (Spec.commitment_principal sale Spec.Left) c);
  check "sends money" true (Asset.equal (Spec.commitment_sends sale Spec.Left) (Asset.money 1000));
  check "expects doc" true
    (Asset.equal (Spec.commitment_expects sale Spec.Left) (Asset.document "d"));
  check "other side" true (Spec.other_side Spec.Left = Spec.Right)

let test_parties () =
  Alcotest.(check (list string)) "principals in order" [ "b"; "p"; "c" ]
    (List.map Party.name (Spec.principals example1));
  Alcotest.(check (list string)) "trusted" [ "t2"; "t1" ]
    (List.map Party.name (Spec.trusted_agents example1))

let test_internal_parties () =
  Alcotest.(check (list string)) "conjunction owners" [ "b"; "t2"; "t1" ]
    (List.map Party.name (Spec.internal_parties example1))

let test_commitments_of () =
  check_int "broker has two edges" 2 (List.length (Spec.commitments_of example1 b));
  check_int "consumer has one" 1 (List.length (Spec.commitments_of example1 c));
  check_int "t1 has two" 2 (List.length (Spec.commitments_of example1 t1))

let test_personas () =
  let spec = Workload.Scenarios.simple_sale_direct in
  let t = Party.trusted "t" in
  check "persona recorded" true (Spec.persona_of spec t = Some (Party.producer "p"));
  let d = List.hd spec.Spec.deals in
  check "effective agent is persona" true (Party.equal (Spec.effective_agent spec d) (Party.producer "p"));
  check "seller side plays own agent" true
    (Spec.plays_own_agent spec { Spec.deal = "cp"; side = Spec.Right });
  check "buyer side does not" false
    (Spec.plays_own_agent spec { Spec.deal = "cp"; side = Spec.Left })

let test_priority_marks () =
  let sale_side = { Spec.deal = "cb"; side = Spec.Right } in
  check "red recorded" true (Spec.is_priority example1 b sale_side);
  check "not red for t1" false (Spec.is_priority example1 t1 sale_side)

let test_splits () =
  let spec = Workload.Scenarios.example2 in
  let cref = Workload.Scenarios.example2_sale_ref 1 in
  let owner = Workload.Scenarios.example2_consumer in
  let split = Spec.with_split owner cref spec in
  check "split recorded" true (Spec.is_split split owner cref);
  check_int "linked excludes split" 1 (List.length (Spec.linked_commitments_of split owner));
  (* idempotent *)
  let again = Spec.with_split owner cref split in
  check_int "no duplicate" (List.length split.Spec.splits) (List.length again.Spec.splits)

let test_cost_to () =
  let spec = Workload.Scenarios.fig7 in
  let owner = Workload.Scenarios.fig7_consumer in
  check_int "doc1 costs $10" (Asset.dollars 10)
    (Spec.cost_to spec owner (Workload.Scenarios.fig7_sale_ref 1));
  check_int "seller side costs 0" 0
    (Spec.cost_to spec (Party.broker "b1") (Workload.Scenarios.fig7_sale_ref 1))

let test_indemnity_amount () =
  (* Fig. 7: $50 / $40 / $30 for the $10 / $20 / $30 documents. *)
  let spec = Workload.Scenarios.fig7 in
  let owner = Workload.Scenarios.fig7_consumer in
  let amount i = Spec.indemnity_amount spec owner (Workload.Scenarios.fig7_sale_ref i) in
  check_int "piece 1" (Asset.dollars 50) (amount 1);
  check_int "piece 2" (Asset.dollars 40) (amount 2);
  check_int "piece 3" (Asset.dollars 30) (amount 3)

let test_indemnity_amount_order_independent () =
  (* The amount is computed over the original conjunction, so it does not
     change after other pieces are split. *)
  let spec = Workload.Scenarios.fig7 in
  let owner = Workload.Scenarios.fig7_consumer in
  let split = Spec.with_split owner (Workload.Scenarios.fig7_sale_ref 3) spec in
  check_int "piece 2 amount unchanged" (Asset.dollars 40)
    (Spec.indemnity_amount split owner (Workload.Scenarios.fig7_sale_ref 2))

let test_with_priority () =
  let spec = Workload.Scenarios.example1 in
  let cref = { Spec.deal = "bp"; side = Spec.Left } in
  let spec' = Spec.with_priority b cref spec in
  check "added" true (Spec.is_priority spec' b cref);
  check_int "idempotent" (List.length spec'.Spec.priorities)
    (List.length (Spec.with_priority b cref spec').Spec.priorities)

let test_all_scenarios_validate () =
  List.iter
    (fun (name, spec) ->
      match Spec.validate spec with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" name (String.concat "; " es))
    Workload.Scenarios.all

let () =
  Alcotest.run "spec"
    [
      ( "validation",
        [
          Alcotest.test_case "sale constructor" `Quick test_sale_shape;
          Alcotest.test_case "empty spec" `Quick test_validate_empty;
          Alcotest.test_case "duplicate ids" `Quick test_validate_duplicate_ids;
          Alcotest.test_case "party kinds" `Quick test_validate_party_kinds;
          Alcotest.test_case "self deal" `Quick test_validate_self_deal;
          Alcotest.test_case "persona constraints" `Quick test_validate_persona;
          Alcotest.test_case "marks reference endpoints" `Quick test_validate_marks;
          Alcotest.test_case "all scenarios validate" `Quick test_all_scenarios_validate;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "commitments enumerate edges" `Quick test_commitments;
          Alcotest.test_case "commitment accessors" `Quick test_commitment_accessors;
          Alcotest.test_case "parties" `Quick test_parties;
          Alcotest.test_case "internal parties" `Quick test_internal_parties;
          Alcotest.test_case "commitments_of" `Quick test_commitments_of;
          Alcotest.test_case "personas" `Quick test_personas;
          Alcotest.test_case "priority marks" `Quick test_priority_marks;
          Alcotest.test_case "splits" `Quick test_splits;
          Alcotest.test_case "with_priority" `Quick test_with_priority;
        ] );
      ( "indemnity arithmetic (paper 6)",
        [
          Alcotest.test_case "cost_to" `Quick test_cost_to;
          Alcotest.test_case "fig7 amounts" `Quick test_indemnity_amount;
          Alcotest.test_case "order independence" `Quick test_indemnity_amount_order_independent;
        ] );
    ]
