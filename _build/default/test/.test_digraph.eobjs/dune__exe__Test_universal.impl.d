test/test_universal.ml: Action Alcotest Exchange Int64 List Party QCheck2 QCheck_alcotest Spec Trust_core Trust_sim Workload
