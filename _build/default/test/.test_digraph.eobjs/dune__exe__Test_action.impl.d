test/test_action.ml: Action Alcotest Asset Exchange Option Party QCheck2 QCheck_alcotest
