(** Tokens of the exchange-specification DSL. *)

type t =
  | Ident of string
  | String of string  (** double-quoted document name *)
  | Money of int  (** cents; lexed from [$12] or [$12.34] *)
  | Int of int  (** bare integer, e.g. a deadline tick count *)
  | Colon
  | Semicolon
  | Dot
  | Arrow  (** [->] *)
  | Kw_principal
  | Kw_consumer
  | Kw_producer
  | Kw_broker
  | Kw_trusted
  | Kw_deal
  | Kw_pays
  | Kw_gives
  | Kw_via
  | Kw_within
  | Kw_relay
  | Kw_request
  | Kw_buys
  | Kw_from
  | Kw_for
  | Kw_priority
  | Kw_split
  | Kw_trust
  | Kw_persona
  | Kw_is
  | Kw_buyer
  | Kw_seller
  | Kw_left
  | Kw_right
  | Eof

val keyword : string -> t option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
