open Exchange
module Harness = Trust_sim.Harness
module Feasibility = Trust_core.Feasibility
module Indemnity = Trust_core.Indemnity
module Protocol = Trust_core.Protocol

type policy = { mode : Harness.mode; shared : bool; rescue : bool; verify : bool }

let default_policy = { mode = Harness.Lockstep; shared = false; rescue = true; verify = false }

type entry = {
  split_spec : Spec.t;
  plan : Indemnity.plan option;
  protocol : Protocol.t;
  exposure : Trust_analyze.Static_exposure.t;
  compiled : Trust_core.Compile.t option;
}

exception Divergence of string

(* The table is sharded by shape hash; each shard is an independent
   FIFO-evicting map behind its own mutex, so synthesis misses on
   distinct shapes proceed concurrently from pool workers while every
   per-shard invariant — hit is fresh-and-verified, negative caching,
   oldest-insertion eviction — is exactly the unsharded cache's.
   [fresh] runs {e under} the shard lock: concurrent lookups of one
   shape serialize, so the first is the single miss and the rest are
   hits, the same tallies a sequential run produces. *)
type cached = { payload : (entry, string) result; mutable used_epoch : int }

type shard = {
  lock : Mutex.t;
  table : (string, cached) Hashtbl.t;
  order : string Queue.t;
  admission : (string, string option) Hashtbl.t;
      (* memoized shallow-lint verdict by shape: None clean, Some reason *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable aged_out : int;
}

type t = {
  policy : policy;
  shard_capacity : int;
  shards : shard array;
  bypasses : int Atomic.t;
  epoch : int Atomic.t;
      (* advanced only by long-lived services; batch runs stay at 0 *)
}

let default_shards = 16

let create ?(capacity = 4096) ?(shards = default_shards) policy =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  if shards <= 0 then invalid_arg "Cache.create: shards must be positive";
  {
    policy;
    (* ceiling division: total residency is still >= capacity, and
       [shards = 1] reproduces the unsharded cache exactly *)
    shard_capacity = (capacity + shards - 1) / shards;
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
            admission = Hashtbl.create 64;
            hits = 0;
            misses = 0;
            evictions = 0;
            aged_out = 0;
          });
    bypasses = Atomic.make 0;
    epoch = Atomic.make 0;
  }

let policy t = t.policy

let shard_count t = Array.length t.shards

(* Shard selection uses the spec's memoized shape hash — re-hashing
   the canonical key here would box an Int64 pair per character on
   every hit, dominating the allocation budget of a compiled-path
   session. *)
let shard_of t spec =
  (Int64.to_int (Shape.hash spec) land max_int) mod Array.length t.shards

let merge_plans = function
  | [] -> None
  | [ plan ] -> Some plan
  | plans ->
    Some
      Indemnity.
        {
          offers = List.concat_map (fun p -> p.offers) plans;
          total = List.fold_left (fun acc p -> acc + p.Indemnity.total) 0 plans;
        }

let fresh policy spec =
  let plan =
    if (not policy.rescue) || Feasibility.is_feasible ~shared:policy.shared spec then None
    else
      match Feasibility.rescue_with_indemnities ~shared:policy.shared spec with
      | Some rescue -> merge_plans rescue.Feasibility.plans
      | None -> None
  in
  match Harness.assemble ~mode:policy.mode ~shared:policy.shared ?plan spec with
  | Ok cast ->
    (* The proven bound rides the cache entry: a hit skips re-analysis
       entirely (the static pass is the expensive half of cold
       synthesis — see BENCH_analyze.json). *)
    let exposure = Trust_analyze.Static_exposure.analyze cast.Harness.spec in
    (* Compile once per synthesis: the flat instruction plan the
       allocation-free runtime executes on cache hits. Specs with
       acceptability overrides are never cacheable and stay on the
       interpreted path. *)
    let compiled =
      if Party.Map.is_empty cast.Harness.spec.Spec.overrides then
        Some
          (Trust_core.Compile.compile
             ~lockstep:(policy.mode = Harness.Lockstep)
             ~shared:policy.shared ?plan
             ~price:(Trust_sim.Trace.price_for cast.Harness.spec)
             cast.Harness.spec cast.Harness.protocol)
      else None
    in
    Ok
      { split_spec = cast.Harness.spec; plan; protocol = cast.Harness.protocol; exposure; compiled }
  | Error e -> Error e

let equal_offer (a : Indemnity.offer) (b : Indemnity.offer) =
  Spec.equal_ref a.Indemnity.piece b.Indemnity.piece
  && Party.equal a.Indemnity.owner b.Indemnity.owner
  && Party.equal a.Indemnity.offered_by b.Indemnity.offered_by
  && Party.equal a.Indemnity.via b.Indemnity.via
  && a.Indemnity.amount = b.Indemnity.amount

let equal_plan a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a.Indemnity.total = b.Indemnity.total
    && List.length a.Indemnity.offers = List.length b.Indemnity.offers
    && List.for_all2 equal_offer a.Indemnity.offers b.Indemnity.offers
  | (None | Some _), _ -> false

let entry_equal a b =
  String.equal (Shape.encode a.split_spec) (Shape.encode b.split_spec)
  && equal_plan a.plan b.plan
  && Protocol.equal_roles a.protocol b.protocol

let verify t spec cached =
  (match (cached, fresh t.policy spec) with
  | Ok c, Ok f when entry_equal c f -> ()
  | Error a, Error b when String.equal a b -> ()
  | (Ok _ | Error _), _ -> raise (Divergence (Shape.hash_hex spec)));
  (* Independent safety pass: replay the cached entry's execution
     sequence and re-check the protection invariant for every party. *)
  match cached with
  | Error _ -> ()
  | Ok c -> (
    match
      Trust_analyze.Verifier.verify_spec ~shared:t.policy.shared c.split_spec
    with
    | Ok () -> ()
    | Error exposures ->
      raise
        (Divergence
           (Printf.sprintf "%s: unsafe execution sequence:\n%s"
              (Shape.hash_hex spec)
              (Trust_analyze.Verifier.explain exposures))))

let synthesize t spec =
  if not (Shape.cacheable spec) then begin
    ignore (Atomic.fetch_and_add t.bypasses 1);
    (fresh t.policy spec, `Bypass)
  end
  else begin
    let key = Shape.encode spec in
    let shard = t.shards.(shard_of t spec) in
    Mutex.lock shard.lock;
    (* [verify] and [fresh] may raise (Divergence, synthesis bugs);
       never leave the shard locked behind them. *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shard.lock)
      (fun () ->
        match Hashtbl.find_opt shard.table key with
        | Some cached ->
          shard.hits <- shard.hits + 1;
          cached.used_epoch <- Atomic.get t.epoch;
          if t.policy.verify then verify t spec cached.payload;
          (cached.payload, `Hit)
        | None ->
          let value = fresh t.policy spec in
          if Hashtbl.length shard.table >= t.shard_capacity then begin
            (* the order queue may hold residue of aged-out keys; pop
               until a live victim is found *)
            let rec evict_one () =
              match Queue.take_opt shard.order with
              | Some victim when Hashtbl.mem shard.table victim ->
                Hashtbl.remove shard.table victim;
                shard.evictions <- shard.evictions + 1
              | Some _ -> evict_one ()
              | None -> ()
            in
            evict_one ()
          end;
          Hashtbl.add shard.table key { payload = value; used_epoch = Atomic.get t.epoch };
          Queue.add key shard.order;
          shard.misses <- shard.misses + 1;
          (value, `Miss))
  end

(* Admission lint is a pure function of the spec, so the serve path
   memoizes the shallow verdict by shape. Returns [None] when the spec
   passes, [Some reason] (the scheduler's abort reason, formatted) for
   the first error-level diagnostic. Non-cacheable specs are linted
   fresh. The memo is bounded: a full shard table is reset wholesale
   (entries are small strings, and correctness never depends on
   residency). *)
let lint_verdict spec =
  match
    List.find_opt
      (fun d -> d.Trust_analyze.Diagnostic.severity = Trust_analyze.Diagnostic.Error)
      (Trust_analyze.Lint.check_spec ~deep:false spec)
  with
  | Some first ->
    Some
      (Printf.sprintf "lint: [%s] %s"
         (Trust_analyze.Diagnostic.code_id first.Trust_analyze.Diagnostic.code)
         first.Trust_analyze.Diagnostic.message)
  | None -> None

let admission t spec =
  if not (Shape.cacheable spec) then lint_verdict spec
  else begin
    let key = Shape.encode spec in
    let shard = t.shards.(shard_of t spec) in
    Mutex.lock shard.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shard.lock)
      (fun () ->
        match Hashtbl.find_opt shard.admission key with
        | Some verdict -> verdict
        | None ->
          let verdict = lint_verdict spec in
          if Hashtbl.length shard.admission >= 4 * t.shard_capacity then
            Hashtbl.reset shard.admission;
          Hashtbl.add shard.admission key verdict;
          verdict)
  end

let epoch t = Atomic.get t.epoch

let advance_epoch ?(max_idle = 2) t =
  if max_idle < 1 then invalid_arg "Cache.advance_epoch: max_idle must be >= 1";
  let now = 1 + Atomic.fetch_and_add t.epoch 1 in
  let cutoff = now - max_idle in
  Array.fold_left
    (fun swept shard ->
      Mutex.lock shard.lock;
      let stale = ref [] in
      Hashtbl.iter
        (fun key c -> if c.used_epoch <= cutoff then stale := key :: !stale)
        shard.table;
      List.iter (Hashtbl.remove shard.table) !stale;
      let n = List.length !stale in
      shard.aged_out <- shard.aged_out + n;
      (* compact the FIFO order queue so aged-out residue cannot pile up
         across epochs (eviction also skips dead keys lazily) *)
      if n > 0 then begin
        let live = Queue.create () in
        Queue.iter (fun k -> if Hashtbl.mem shard.table k then Queue.add k live) shard.order;
        Queue.clear shard.order;
        Queue.transfer live shard.order
      end;
      Mutex.unlock shard.lock;
      swept + n)
    0 t.shards

let sum_shards t f =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lock;
      let v = f shard in
      Mutex.unlock shard.lock;
      acc + v)
    0 t.shards

let hits t = sum_shards t (fun s -> s.hits)
let misses t = sum_shards t (fun s -> s.misses)
let bypasses t = Atomic.get t.bypasses
let evictions t = sum_shards t (fun s -> s.evictions)
let aged_out t = sum_shards t (fun s -> s.aged_out)
let size t = sum_shards t (fun s -> Hashtbl.length s.table)

let hit_rate t =
  let looked = hits t + misses t in
  if looked = 0 then 0. else float_of_int (hits t) /. float_of_int looked
