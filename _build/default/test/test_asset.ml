open Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_constructors () =
  check "doc is document" true (Asset.is_document (Asset.document "d"));
  check "money is money" true (Asset.is_money (Asset.money 100));
  check "doc not money" false (Asset.is_money (Asset.document "d"));
  Alcotest.check_raises "negative" (Invalid_argument "Asset.money: negative amount") (fun () ->
      ignore (Asset.money (-1)))

let test_dollars () =
  check_int "10 dollars" 1000 (Asset.dollars 10);
  check_int "zero" 0 (Asset.dollars 0)

let test_amount_value () =
  Alcotest.(check (option int)) "amount of money" (Some 250) (Asset.amount (Asset.money 250));
  Alcotest.(check (option int)) "amount of doc" None (Asset.amount (Asset.document "x"));
  check_int "value of money" 250 (Asset.value (Asset.money 250));
  check_int "value of doc" 0 (Asset.value (Asset.document "x"))

let test_ordering () =
  check "docs before money" true (Asset.compare (Asset.document "z") (Asset.money 0) < 0);
  check "doc by name" true (Asset.compare (Asset.document "a") (Asset.document "b") < 0);
  check "money by amount" true (Asset.compare (Asset.money 1) (Asset.money 2) < 0);
  check "equal" true (Asset.equal (Asset.money 5) (Asset.money 5))

let test_pp_money () =
  check_str "whole dollars" "$12" (Format.asprintf "%a" Asset.pp_money 1200);
  check_str "cents" "$12.34" (Format.asprintf "%a" Asset.pp_money 1234);
  check_str "single cent" "$0.01" (Format.asprintf "%a" Asset.pp_money 1);
  check_str "doc" "doc(d1)" (Asset.to_string (Asset.document "d1"))

(* Bag *)

let test_bag_empty () =
  check_int "balance" 0 (Asset.Bag.balance Asset.Bag.empty);
  Alcotest.(check (list (pair string int))) "no docs" [] (Asset.Bag.documents Asset.Bag.empty)

let test_bag_add_money () =
  let bag = Asset.Bag.add (Asset.money 300) (Asset.Bag.add (Asset.money 200) Asset.Bag.empty) in
  check_int "aggregated" 500 (Asset.Bag.balance bag);
  check "holds 500" true (Asset.Bag.holds (Asset.money 500) bag);
  check "holds 100" true (Asset.Bag.holds (Asset.money 100) bag);
  check "not 501" false (Asset.Bag.holds (Asset.money 501) bag)

let test_bag_docs_counted () =
  let bag = Asset.Bag.of_list [ Asset.document "d"; Asset.document "d"; Asset.document "e" ] in
  Alcotest.(check (list (pair string int))) "counts" [ ("d", 2); ("e", 1) ]
    (Asset.Bag.documents bag)

let test_bag_remove_money () =
  let bag = Asset.Bag.of_list [ Asset.money 100 ] in
  (match Asset.Bag.remove (Asset.money 40) bag with
  | None -> Alcotest.fail "should afford $0.40"
  | Some rest -> check_int "change" 60 (Asset.Bag.balance rest));
  check "overdraft" true (Asset.Bag.remove (Asset.money 101) bag = None)

let test_bag_remove_doc () =
  let bag = Asset.Bag.of_list [ Asset.document "d"; Asset.document "d" ] in
  match Asset.Bag.remove (Asset.document "d") bag with
  | None -> Alcotest.fail "has two copies"
  | Some bag1 -> (
    check "one left" true (Asset.Bag.holds (Asset.document "d") bag1);
    match Asset.Bag.remove (Asset.document "d") bag1 with
    | None -> Alcotest.fail "has one copy"
    | Some bag0 ->
      check "none left" false (Asset.Bag.holds (Asset.document "d") bag0);
      check "absent doc" true (Asset.Bag.remove (Asset.document "x") bag0 = None))

let test_bag_equal () =
  let a = Asset.Bag.of_list [ Asset.money 100; Asset.document "d" ] in
  let b = Asset.Bag.of_list [ Asset.document "d"; Asset.money 100 ] in
  check "order independent" true (Asset.Bag.equal a b);
  check "differs" false (Asset.Bag.equal a Asset.Bag.empty)

let prop_bag_add_remove =
  QCheck2.Test.make ~name:"add then remove restores the bag" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 8)
           (oneof [ map (fun n -> Asset.money (abs n mod 1000)) int; map (fun s -> Asset.document (String.make 1 (Char.chr (97 + (abs s mod 5))))) int ]))
        (oneof [ map (fun n -> Asset.money (abs n mod 1000)) int; map (fun s -> Asset.document (String.make 1 (Char.chr (97 + (abs s mod 5))))) int ]))
    (fun (contents, extra) ->
      let bag = Asset.Bag.of_list contents in
      match Asset.Bag.remove extra (Asset.Bag.add extra bag) with
      | Some restored -> Asset.Bag.equal bag restored
      | None -> false)

let () =
  Alcotest.run "asset"
    [
      ( "asset",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "dollars" `Quick test_dollars;
          Alcotest.test_case "amount and value" `Quick test_amount_value;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "printing" `Quick test_pp_money;
        ] );
      ( "bag",
        [
          Alcotest.test_case "empty" `Quick test_bag_empty;
          Alcotest.test_case "money aggregates" `Quick test_bag_add_money;
          Alcotest.test_case "documents counted" `Quick test_bag_docs_counted;
          Alcotest.test_case "remove money" `Quick test_bag_remove_money;
          Alcotest.test_case "remove documents" `Quick test_bag_remove_doc;
          Alcotest.test_case "equality" `Quick test_bag_equal;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bag_add_remove ]);
    ]
