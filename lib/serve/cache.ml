open Exchange
module Harness = Trust_sim.Harness
module Feasibility = Trust_core.Feasibility
module Indemnity = Trust_core.Indemnity
module Protocol = Trust_core.Protocol

type policy = { mode : Harness.mode; shared : bool; rescue : bool; verify : bool }

let default_policy = { mode = Harness.Lockstep; shared = false; rescue = true; verify = false }

type entry = {
  split_spec : Spec.t;
  plan : Indemnity.plan option;
  protocol : Protocol.t;
}

exception Divergence of string

type t = {
  policy : policy;
  capacity : int;
  table : (string, (entry, string) result) Hashtbl.t;
  order : string Queue.t;
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
  mutable evictions : int;
}

let create ?(capacity = 4096) policy =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    policy;
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    bypasses = 0;
    evictions = 0;
  }

let policy t = t.policy

let merge_plans = function
  | [] -> None
  | [ plan ] -> Some plan
  | plans ->
    Some
      Indemnity.
        {
          offers = List.concat_map (fun p -> p.offers) plans;
          total = List.fold_left (fun acc p -> acc + p.Indemnity.total) 0 plans;
        }

let fresh policy spec =
  let plan =
    if (not policy.rescue) || Feasibility.is_feasible ~shared:policy.shared spec then None
    else
      match Feasibility.rescue_with_indemnities ~shared:policy.shared spec with
      | Some rescue -> merge_plans rescue.Feasibility.plans
      | None -> None
  in
  match Harness.assemble ~mode:policy.mode ~shared:policy.shared ?plan spec with
  | Ok cast -> Ok { split_spec = cast.Harness.spec; plan; protocol = cast.Harness.protocol }
  | Error e -> Error e

let equal_offer (a : Indemnity.offer) (b : Indemnity.offer) =
  Spec.equal_ref a.Indemnity.piece b.Indemnity.piece
  && Party.equal a.Indemnity.owner b.Indemnity.owner
  && Party.equal a.Indemnity.offered_by b.Indemnity.offered_by
  && Party.equal a.Indemnity.via b.Indemnity.via
  && a.Indemnity.amount = b.Indemnity.amount

let equal_plan a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a.Indemnity.total = b.Indemnity.total
    && List.length a.Indemnity.offers = List.length b.Indemnity.offers
    && List.for_all2 equal_offer a.Indemnity.offers b.Indemnity.offers
  | (None | Some _), _ -> false

let entry_equal a b =
  String.equal (Shape.encode a.split_spec) (Shape.encode b.split_spec)
  && equal_plan a.plan b.plan
  && Protocol.equal_roles a.protocol b.protocol

let verify t spec cached =
  (match (cached, fresh t.policy spec) with
  | Ok c, Ok f when entry_equal c f -> ()
  | Error a, Error b when String.equal a b -> ()
  | (Ok _ | Error _), _ -> raise (Divergence (Shape.hash_hex spec)));
  (* Independent safety pass: replay the cached entry's execution
     sequence and re-check the protection invariant for every party. *)
  match cached with
  | Error _ -> ()
  | Ok c -> (
    match
      Trust_analyze.Verifier.verify_spec ~shared:t.policy.shared c.split_spec
    with
    | Ok () -> ()
    | Error exposures ->
      raise
        (Divergence
           (Printf.sprintf "%s: unsafe execution sequence:\n%s"
              (Shape.hash_hex spec)
              (Trust_analyze.Verifier.explain exposures))))

let synthesize t spec =
  if not (Shape.cacheable spec) then begin
    t.bypasses <- t.bypasses + 1;
    (fresh t.policy spec, `Bypass)
  end
  else
    let key = Shape.encode spec in
    match Hashtbl.find_opt t.table key with
    | Some cached ->
      t.hits <- t.hits + 1;
      if t.policy.verify then verify t spec cached;
      (cached, `Hit)
    | None ->
      let value = fresh t.policy spec in
      if Hashtbl.length t.table >= t.capacity then begin
        match Queue.take_opt t.order with
        | Some victim ->
          Hashtbl.remove t.table victim;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      Hashtbl.add t.table key value;
      Queue.add key t.order;
      t.misses <- t.misses + 1;
      (value, `Miss)

let hits t = t.hits
let misses t = t.misses
let bypasses t = t.bypasses
let evictions t = t.evictions
let size t = Hashtbl.length t.table

let hit_rate t =
  let looked = t.hits + t.misses in
  if looked = 0 then 0. else float_of_int t.hits /. float_of_int looked
