module Cache = Trust_serve.Cache
module Metrics = Trust_serve.Metrics
module Scheduler = Trust_serve.Scheduler
module Session = Trust_serve.Session
module Obs = Trust_obs.Obs
module Ring = Trust_obs.Ring
module Mine = Trust_obs.Mine
module B64 = Trust_obs.B64
module Shape = Trust_serve.Shape

type config = {
  unix_path : string option;
  tcp : (string * int) option;
  policy : Cache.policy;
  cache_capacity : int;
  scheduler : Scheduler.config;
  max_pending : int;
  max_frame : int;
  epoch_every : int;
  max_idle_epochs : int;
  snapshot_path : string option;
  trace_path : string option;
  trace_ring : int;
  trace_sample : float;
  mine_every : int;
  mine_pin : int;
  mine_deny : int;
  defect_every : int;
  banner : string;
}

let default =
  {
    unix_path = None;
    tcp = None;
    policy = Cache.default_policy;
    cache_capacity = 4096;
    scheduler = Scheduler.default_config;
    max_pending = 64;
    max_frame = Frame.default_max;
    epoch_every = 256;
    max_idle_epochs = 2;
    snapshot_path = None;
    trace_path = None;
    (* tracing is on by default precisely because it is priced for
       production: a 1 MiB ring and 1% head sampling, with tail keeps
       promoting every anomalous session regardless of the rate *)
    trace_ring = 1 lsl 20;
    trace_sample = 0.01;
    (* the feedback loop is opt-in: mining costs a ring drain + refold
       every [mine_every] requests, and pins/denies change admission
       behavior — operators turn the knob deliberately *)
    mine_every = 0;
    mine_pin = 2;
    mine_deny = 1;
    defect_every = 0;
    banner = "trustseq";
  }

type stats = {
  served : int;
  settled : int;
  expired : int;
  aborted : int;
  busy : int;
  protocol_errors : int;
  connections : int;
  epochs : int;
  aged_out : int;
  cache_size : int;
  drained : bool;
}

let stats_json s =
  Printf.sprintf
    {|{"served":%d,"settled":%d,"expired":%d,"aborted":%d,"busy":%d,"protocol_errors":%d,"connections":%d,"epochs":%d,"aged_out":%d,"cache_size":%d,"drained":%b}|}
    s.served s.settled s.expired s.aborted s.busy s.protocol_errors s.connections
    s.epochs s.aged_out s.cache_size s.drained

(* -- connections -- *)

type conn = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  mutable greeted : bool;
  out : Buffer.t;  (** encoded frames awaiting the socket *)
  mutable out_off : int;  (** bytes of [out] already written *)
  mutable closing : bool;  (** close once [out] is flushed *)
  mutable alive : bool;
}

type srv = {
  cfg : config;
  metrics : Metrics.t;
  cache : Cache.t;
  pending : (conn * int * string) Admission.t;
  trace_ch : out_channel option;
  ring : Ring.t option;
  (* the trace-mining feedback loop: a scoreboard accumulated across
     self-drains, and a bounded last-seen spec per shape so pin
     candidates that already aged out can be pre-warmed *)
  mutable board : Mine.t;
  stash : (string, Exchange.Spec.t) Hashtbl.t;
  (* tallies (the daemon loop is single-threaded) *)
  mutable next_session : int;
  mutable served : int;
  mutable settled : int;
  mutable expired : int;
  mutable aborted : int;
  mutable busy : int;
  mutable protocol_errors : int;
  mutable connections : int;
  mutable epochs : int;
  (* registered once, bumped per event *)
  requests_c : Metrics.counter;
  busy_c : Metrics.counter;
  proto_c : Metrics.counter;
  conns_c : Metrics.counter;
  epochs_c : Metrics.counter;
  aged_c : Metrics.counter;
  obs_sampled_c : Metrics.counter;
  obs_tail_c : Metrics.counter;
  obs_ring_dropped_c : Metrics.counter;
  mine_ticks_c : Metrics.counter;
  mine_sessions_c : Metrics.counter;
  mine_pins_c : Metrics.counter;
  mine_prewarms_c : Metrics.counter;
  mine_denies_c : Metrics.counter;
}

let send conn resp = Buffer.add_string conn.out (Frame.encode (Wire.encode_response resp))

let try_flush conn =
  if conn.alive then begin
    let len = Buffer.length conn.out in
    if len > conn.out_off then begin
      let chunk = Buffer.to_bytes conn.out in
      try
        let n = Unix.write conn.fd chunk conn.out_off (len - conn.out_off) in
        conn.out_off <- conn.out_off + n
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | Unix.Unix_error _ -> conn.alive <- false
    end;
    if conn.alive && Buffer.length conn.out = conn.out_off then begin
      Buffer.clear conn.out;
      conn.out_off <- 0;
      if conn.closing then conn.alive <- false
    end
  end

let has_output conn = conn.alive && Buffer.length conn.out > conn.out_off

let protocol_error srv conn reason =
  srv.protocol_errors <- srv.protocol_errors + 1;
  Metrics.incr srv.proto_c;
  send conn (Wire.Refused { id = None; reason });
  conn.closing <- true

(* -- snapshots and aging -- *)

let write_snapshot srv =
  Option.iter
    (fun path ->
      let tmp = path ^ ".tmp" in
      Out_channel.with_open_text tmp (fun ch ->
          output_string ch (Metrics.to_text srv.metrics));
      Sys.rename tmp path)
    srv.cfg.snapshot_path

let refresh_cache_gauges srv =
  Metrics.gauge srv.metrics ~help:"current protocol-cache epoch" "serve_cache_epoch"
    (float_of_int (Cache.epoch srv.cache));
  Metrics.gauge srv.metrics ~help:"resident protocol-cache entries" "serve_cache_size"
    (float_of_int (Cache.size srv.cache));
  Metrics.gauge srv.metrics ~help:"cache entries pinned by the trace-mining policy"
    "serve_cache_pinned"
    (float_of_int (Cache.pinned_count srv.cache));
  (* deterministic here, unlike the batch scheduler's volatile variant:
     the select loop commits sessions in wire order on one thread *)
  Option.iter
    (fun ring ->
      Metrics.gauge srv.metrics ~help:"trace-ring live bytes" "obs_ring_bytes"
        (float_of_int (Ring.bytes_resident ring)))
    srv.ring

let epoch_tick srv =
  let swept = Cache.advance_epoch ~max_idle:srv.cfg.max_idle_epochs srv.cache in
  srv.epochs <- srv.epochs + 1;
  Metrics.incr srv.epochs_c;
  if swept > 0 then Metrics.incr ~by:swept srv.aged_c;
  refresh_cache_gauges srv;
  write_snapshot srv

(* The feedback tick: self-drain the ring (the same consuming window
   the [trace] wire request reads), fold the kept sessions into the
   running scoreboard, then apply the policy — pin or pre-warm shapes
   that repeatedly retried/expired, deny shapes whose tails showed §5
   exposure violations. Deterministic: the scoreboard is a pure fold
   and the thresholds come from config, so the same request stream
   always produces the same pins and denies. *)
let mine_tick srv =
  match srv.ring with
  | None -> ()
  | Some ring ->
    Metrics.incr srv.mine_ticks_c;
    (match Ring.decode (Ring.drain ring) with
    | Error _ -> ()  (* a corrupt self-dump would be a Ring bug; never kill the daemon over it *)
    | Ok (sessions, _) ->
      if sessions <> [] then begin
        Metrics.incr ~by:(List.length sessions) srv.mine_sessions_c;
        srv.board <-
          List.fold_left
            (fun board (s : Ring.session) -> Mine.add_views board s.Ring.s_views)
            srv.board sessions
      end);
    if srv.cfg.mine_deny > 0 then begin
      let already = Cache.denied srv.cache in
      List.iter
        (fun hex ->
          if not (List.mem hex already) then begin
            Cache.deny srv.cache hex;
            Metrics.incr srv.mine_denies_c
          end)
        (Mine.deny_candidates ~min_violations:srv.cfg.mine_deny srv.board)
    end;
    if srv.cfg.mine_pin > 0 then begin
      let denied = Cache.denied srv.cache in
      List.iter
        (fun hex ->
          if not (List.mem hex denied) then
            if Cache.pin srv.cache hex then Metrics.incr srv.mine_pins_c
            else
              (* hot but not resident (aged out or evicted): pre-warm
                 from the last spec seen with this shape, if any *)
              match Hashtbl.find_opt srv.stash hex with
              | None -> ()
              | Some spec -> (
                match Cache.prewarm srv.cache spec with
                | `Warmed -> Metrics.incr srv.mine_prewarms_c
                | `Hit | `Failed _ | `Uncacheable -> ()))
        (Mine.pin_candidates ~min_incidents:srv.cfg.mine_pin srv.board)
    end;
    refresh_cache_gauges srv

(* -- request processing -- *)

let zero_result ~id ~status ~exit_code ~reason =
  Wire.Result
    {
      id;
      status;
      exit_code;
      cache_hit = false;
      ticks = 0;
      events = 0;
      attempts = 0;
      exposure_peak = 0;
      exposure_ticks = 0;
      exposure_violations = 0;
      reason;
    }

(* One traced pass over a submission: the [daemon.request] root span,
   elaboration, and the full session lifecycle. Shared between the
   sampled path (live trace from the start) and the tail-promotion
   replay (deterministic re-run with a live sink after the fast
   untraced pass turned out anomalous) — so both produce the same span
   tree. [record] is false on replays: the first pass already counted
   everything. *)
let traced_pass srv ~record ~session:n ~id ~spec obs session_out =
  Obs.with_span obs ~phase:"daemon" "daemon.request" (fun root ->
      if Obs.enabled obs then Obs.attr obs root "wire_id" (Obs.Int id);
      match Trust_lang.Elaborate.from_string ~obs ~parent:root ~file:"<wire>" spec with
      | Error e ->
        if record then srv.aborted <- srv.aborted + 1;
        zero_result ~id ~status:"error" ~exit_code:2 ~reason:(Some e)
      | Ok parsed ->
        (* optional fault injection (CI smokes, soak tests): every
           [defect_every]-th session defects silently, exactly the
           batch Service knob. Keyed on the session id, so the tail
           replay re-derives the identical cast. *)
        let defectors =
          if srv.cfg.defect_every > 0 && (n + 1) mod srv.cfg.defect_every = 0 then
            match Trust_sim.Harness.defectable_principals parsed with
            | party :: _ -> [ (party, Trust_sim.Harness.Silent) ]
            | [] -> []
          else []
        in
        let session = Session.make ~id:n ~defectors parsed in
        session_out := Some session;
        if record then
          Scheduler.process_one ~metrics:srv.metrics ~obs ~parent:root srv.cfg.scheduler
            srv.cache session
        else
          Scheduler.process_one ~obs ~parent:root srv.cfg.scheduler srv.cache session;
        let status, exit_code, reason =
          match session.Session.status with
          | Session.Settled ->
            if record then srv.settled <- srv.settled + 1;
            ("settled", 0, None)
          | Session.Expired ->
            if record then srv.expired <- srv.expired + 1;
            ("expired", 1, None)
          | Session.Aborted r ->
            if record then srv.aborted <- srv.aborted + 1;
            ("aborted", 1, Some r)
          | Session.Queued | Session.Synthesizing | Session.Running ->
            ("error", 2, Some "internal: session did not reach a terminal state")
        in
        Wire.Result
          {
            id;
            status;
            exit_code;
            cache_hit = session.Session.cache_hit;
            ticks = session.Session.ticks;
            events = session.Session.events;
            attempts = session.Session.attempts;
            exposure_peak = session.Session.exposure_peak;
            exposure_ticks = session.Session.exposure_ticks;
            exposure_violations = session.Session.exposure_violations;
            reason;
          })

let process_submit srv conn ~id ~spec =
  let n = srv.next_session in
  srv.next_session <- n + 1;
  let tracing = srv.trace_ch <> None || srv.ring <> None in
  let sampled =
    tracing && Scheduler.session_sampled
                 { srv.cfg.scheduler with Scheduler.sample_rate = srv.cfg.trace_sample }
                 n
  in
  let obs = if sampled then Obs.create ~session:n () else Obs.null in
  let session_ref = ref None in
  let resp = traced_pass srv ~record:true ~session:n ~id ~spec obs session_ref in
  if sampled then Metrics.incr srv.obs_sampled_c;
  (* remember the last spec per shape (bounded) so the mining tick can
     pre-warm a pin candidate that already aged out of the cache *)
  (match !session_ref with
  | Some session when srv.cfg.mine_every > 0 ->
    if Hashtbl.length srv.stash >= 4096 then Hashtbl.reset srv.stash;
    Hashtbl.replace srv.stash (Shape.hash_hex session.Session.spec) session.Session.spec
  | Some _ | None -> ());
  let keep =
    match !session_ref with
    | Some session -> Scheduler.keep_decision ~sampled session
    | None -> if sampled then Some Ring.Sampled else None
    (* unsampled parse failures never make a session, so tail rules
       cannot see them — the refused Result already tells the client *)
  in
  (match keep with
  | None -> ()
  | Some keep ->
    let trace =
      if Obs.enabled obs then obs
      else begin
        (* tail promotion: the request ran untraced on the compiled
           path and closed with a violation, retry, expiry or lint
           refusal. Re-run it with a live sink — spec, session id and
           the (seed, session, seq) drop schedule are identical, so
           the trace is what head sampling would have captured. *)
        Metrics.incr srv.obs_tail_c;
        let replay = Obs.create ~session:n () in
        let discard = ref None in
        ignore (traced_pass srv ~record:false ~session:n ~id ~spec replay discard : Wire.response);
        replay
      end
    in
    (* stamp the keep verdict on the root after the fact (attrs on
       finished spans don't tick the clock): ring dumps and the JSONL
       sink then agree on why the session was retained, so Mine folds
       either source identically *)
    Obs.attr trace (Obs.first_root trace) "keep" (Obs.Str (Ring.keep_label keep));
    Option.iter
      (fun ring ->
        let evicted = Ring.record ring ~keep trace in
        if evicted > 0 then Metrics.incr ~by:evicted srv.obs_ring_dropped_c)
      srv.ring;
    (* every kept session — head-sampled or tail-promoted — reaches
       the durable sink at close; the ring is the live (evictable)
       introspection window over the same set *)
    Option.iter
      (fun ch ->
        output_string ch (Obs.export Obs.Jsonl [ trace ]);
        flush ch)
      srv.trace_ch);
  (* a deny-listed shape surfaces as the wire's refused answer — the
     client sees the TM001 diagnostic with the transport exit contract,
     distinct from an ordinary aborted result *)
  let resp =
    match resp with
    | Wire.Result { id; reason = Some r; _ }
      when String.length r >= 7 && String.sub r 0 7 = "denied:" ->
      Wire.Refused { id = Some id; reason = r }
    | resp -> resp
  in
  send conn resp;
  srv.served <- srv.served + 1;
  Metrics.incr srv.requests_c;
  if srv.cfg.epoch_every > 0 && srv.served mod srv.cfg.epoch_every = 0 then epoch_tick srv;
  if srv.cfg.mine_every > 0 && srv.served mod srv.cfg.mine_every = 0 then mine_tick srv

let snapshot ?(drained = false) srv =
  {
    served = srv.served;
    settled = srv.settled;
    expired = srv.expired;
    aborted = srv.aborted;
    busy = srv.busy;
    protocol_errors = srv.protocol_errors;
    connections = srv.connections;
    epochs = srv.epochs;
    aged_out = Cache.aged_out srv.cache;
    cache_size = Cache.size srv.cache;
    drained;
  }

let handle_request srv conn = function
  | Wire.Hello { version } ->
    if conn.greeted then protocol_error srv conn "duplicate hello"
    else if version <> Wire.version then
      protocol_error srv conn
        (Printf.sprintf "unsupported protocol version %d (server speaks %d)" version
           Wire.version)
    else begin
      conn.greeted <- true;
      send conn (Wire.Welcome { version = Wire.version; server = srv.cfg.banner })
    end
  | _ when not conn.greeted -> protocol_error srv conn "expected hello before any request"
  | Wire.Ping { id } -> send conn (Wire.Pong { id })
  | Wire.Metrics { id } ->
    send conn (Wire.Text { id; kind = "metrics"; text = Metrics.to_text srv.metrics })
  | Wire.Stats { id } ->
    send conn (Wire.Text { id; kind = "stats"; text = stats_json (snapshot srv) })
  | Wire.Trace { id } ->
    (* drain semantics: each trace request returns the records kept
       since the previous one, base64ed over the ordinary text frame;
       with the ring disabled the reply is a valid zero-shard dump *)
    let dump = match srv.ring with Some ring -> Ring.drain ring | None -> Ring.empty_dump in
    refresh_cache_gauges srv;
    send conn (Wire.Text { id; kind = "ring"; text = B64.encode dump })
  | Wire.Submit { id; spec } ->
    if not (Admission.try_push srv.pending (conn, id, spec)) then begin
      srv.busy <- srv.busy + 1;
      Metrics.incr srv.busy_c;
      send conn (Wire.Busy { id })
    end

let handle_event srv conn = function
  | Frame.Oversized announced ->
    protocol_error srv conn
      (Printf.sprintf "oversized frame: %d bytes announced (max %d)" announced
         srv.cfg.max_frame)
  | Frame.Frame payload -> (
    match Wire.decode_request payload with
    | Error e -> protocol_error srv conn e
    | Ok req -> handle_request srv conn req)

let handle_readable srv conn buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> conn.alive <- false
  | 0 -> conn.alive <- false
  | n -> List.iter (handle_event srv conn) (Frame.feed conn.decoder buf n)

let rec drain_pending srv =
  match Admission.pop srv.pending with
  | None -> ()
  | Some (conn, id, spec) ->
    (* a client that hung up forfeits its queued work; everyone else
       gets a full run and a response *)
    if conn.alive then process_submit srv conn ~id ~spec;
    drain_pending srv

(* -- listeners -- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let listen_tcp (host, port) =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | h -> h.Unix.h_addr_list.(0))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let accept_all srv listener conns =
  let rec go () =
    match Unix.accept listener with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      Unix.set_nonblock fd;
      srv.connections <- srv.connections + 1;
      Metrics.incr srv.conns_c;
      conns :=
        {
          fd;
          decoder = Frame.create ~max_frame:srv.cfg.max_frame ();
          greeted = false;
          out = Buffer.create 256;
          out_off = 0;
          closing = false;
          alive = true;
        }
        :: !conns;
      go ()
  in
  go ()

(* -- the loop -- *)

let run ?(stop = Atomic.make false) ?metrics cfg =
  if cfg.unix_path = None && cfg.tcp = None then
    invalid_arg "Server.run: no listener configured";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let srv =
    {
      cfg;
      metrics;
      cache = Cache.create ~capacity:cfg.cache_capacity cfg.policy;
      pending = Admission.create ~bound:cfg.max_pending ();
      trace_ch = Option.map open_out cfg.trace_path;
      ring =
        (if cfg.trace_ring > 0 then Some (Ring.create ~capacity:cfg.trace_ring ()) else None);
      board = Mine.empty;
      stash = Hashtbl.create 256;
      next_session = 0;
      served = 0;
      settled = 0;
      expired = 0;
      aborted = 0;
      busy = 0;
      protocol_errors = 0;
      connections = 0;
      epochs = 0;
      requests_c =
        Metrics.counter metrics ~help:"wire submissions processed" "daemon_requests_total";
      busy_c =
        Metrics.counter metrics ~help:"submissions bounced by admission control"
          "daemon_busy_total";
      proto_c =
        Metrics.counter metrics ~help:"handshake, framing and decode failures"
          "daemon_protocol_errors_total";
      conns_c = Metrics.counter metrics ~help:"connections accepted" "daemon_connections_total";
      epochs_c = Metrics.counter metrics ~help:"cache epoch ticks" "daemon_epochs_total";
      aged_c =
        Metrics.counter metrics ~help:"cache entries swept by epoch aging"
          "serve_cache_aged_out_total";
      obs_sampled_c =
        Metrics.counter metrics ~help:"sessions head-sampled into a live trace"
          "obs_sessions_sampled_total";
      obs_tail_c =
        Metrics.counter metrics ~help:"unsampled sessions promoted by a tail keep rule"
          "obs_sessions_kept_tail_total";
      obs_ring_dropped_c =
        Metrics.counter metrics ~help:"trace-ring records evicted on wrap or refused oversized"
          "obs_ring_records_dropped_total";
      mine_ticks_c =
        Metrics.counter metrics ~help:"trace-mining feedback ticks (self-drain + policy)"
          "obs_mine_ticks_total";
      mine_sessions_c =
        Metrics.counter metrics ~help:"kept sessions folded into the mining scoreboard"
          "obs_mine_sessions_total";
      mine_pins_c =
        Metrics.counter metrics ~help:"resident cache entries pinned by the mining policy"
          "obs_mine_pins_total";
      mine_prewarms_c =
        Metrics.counter metrics ~help:"evicted hot shapes pre-warmed (synthesized and pinned)"
          "obs_mine_prewarms_total";
      mine_denies_c =
        Metrics.counter metrics ~help:"shapes deny-listed at admission by the mining policy"
          "obs_mine_denies_total";
    }
  in
  refresh_cache_gauges srv;
  let listeners =
    (match cfg.unix_path with None -> [] | Some p -> [ listen_unix p ])
    @ (match cfg.tcp with None -> [] | Some hp -> [ listen_tcp hp ])
  in
  let conns = ref [] in
  let buf = Bytes.create 65536 in
  let sweep_dead () =
    conns :=
      List.filter
        (fun c ->
          if c.alive then true
          else begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            false
          end)
        !conns
  in
  while not (Atomic.get stop) do
    sweep_dead ();
    let rd = listeners @ List.map (fun c -> c.fd) !conns in
    let wr = List.filter_map (fun c -> if has_output c then Some c.fd else None) !conns in
    (match Unix.select rd wr [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      List.iter
        (fun fd ->
          if List.memq fd listeners then accept_all srv fd conns
          else
            match List.find_opt (fun c -> c.fd == fd) !conns with
            | Some conn when conn.alive -> handle_readable srv conn buf
            | Some _ | None -> ())
        readable;
      drain_pending srv;
      List.iter
        (fun fd ->
          match List.find_opt (fun c -> c.fd == fd) !conns with
          | Some conn -> try_flush conn
          | None -> ())
        writable;
      (* opportunistic flush for responses generated this round *)
      List.iter (fun c -> if has_output c then try_flush c) !conns)
  done;
  (* -- graceful drain: stop accepting, finish admitted work, flush -- *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ()) cfg.unix_path;
  drain_pending srv;
  let deadline = Unix.gettimeofday () +. 5. in
  let rec flush_all () =
    sweep_dead ();
    let waiting = List.filter has_output !conns in
    if waiting <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] (List.map (fun c -> c.fd) waiting) [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _, writable, _ ->
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.fd == fd) !conns with
            | Some conn -> try_flush conn
            | None -> ())
          writable);
      flush_all ()
    end
  in
  flush_all ();
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  refresh_cache_gauges srv;
  write_snapshot srv;
  Option.iter close_out srv.trace_ch;
  snapshot ~drained:true srv
