lib/core/execution.mli: Action Exchange Format Party Reduce Spec State
