test/test_trace.ml: Alcotest Asset Exchange Int64 Lazy List Party QCheck2 QCheck_alcotest Spec Trust_core Trust_sim Workload
