(** Graphviz DOT rendering of {!Digraph.t} values, with caller-supplied
    node and edge attributes. The sequencing-graph renderer in [report]
    builds on this to reproduce the paper's figures. *)

type attrs = (string * string) list
(** DOT attribute assignments, e.g. [("shape", "hexagon")]. Values are
    quoted and escaped by the renderer. *)

val render :
  ?name:string ->
  ?graph_attrs:attrs ->
  ?node_attrs:(int -> attrs) ->
  ?edge_attrs:(int -> int -> attrs) ->
  ?undirected:bool ->
  Digraph.t ->
  string
(** [render g] is the DOT source for [g]. [undirected] (default [false])
    emits [graph]/[--] instead of [digraph]/[->]. *)

val escape : string -> string
(** Escape a string for use inside a double-quoted DOT literal. *)
