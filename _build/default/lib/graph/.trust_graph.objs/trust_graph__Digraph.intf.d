lib/graph/digraph.mli: Format Hashtbl
