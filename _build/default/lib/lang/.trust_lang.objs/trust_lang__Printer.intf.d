lib/lang/printer.mli: Elaborate Exchange Format Spec
