open Exchange
module Indemnity = Trust_core.Indemnity
module Obs = Trust_obs.Obs

type verdict = {
  party : Party.t;
  honest : bool;
  acceptable : bool;
  no_loss : bool;
  preferred : bool;
}

type report = {
  verdicts : verdict list;
  honest_all_acceptable : bool;
  honest_no_loss : bool;
  all_preferred : bool;
  conserved : bool;
}

let bag_totals bags =
  List.fold_left
    (fun (money, docs) bag ->
      let docs =
        List.fold_left (fun acc (_, n) -> acc + n) docs (Asset.Bag.documents bag)
      in
      (money + Asset.Bag.balance bag, docs))
    (0, 0) bags

let audit ?(obs = Obs.null) ?parent spec ?plan ?(defectors = []) (result : Engine.result) =
  Obs.with_span obs ?parent ~phase:"audit" "audit" (fun span ->
  let deposits = match plan with Some p -> p.Indemnity.offers | None -> [] in
  (* Judge against the split spec: accepted indemnities redefine the
     parties' acceptable states (§6). *)
  let spec = match plan with Some p -> Indemnity.apply p spec | None -> spec in
  let judged_parties =
    List.filter
      (fun party -> not (Party.is_trusted party && Spec.persona_of spec party <> None))
      (Spec.parties spec)
  in
  let verdicts =
    List.map
      (fun party ->
        {
          party;
          honest = not (List.exists (Party.equal party) defectors);
          acceptable = Outcomes.acceptable spec ~party result.Engine.state;
          no_loss = Outcomes.no_loss spec ~party result.Engine.state;
          preferred = Outcomes.preferred_reached spec ~party result.Engine.state;
        })
      judged_parties
  in
  let honest_all_acceptable =
    List.for_all (fun v -> (not v.honest) || v.acceptable) verdicts
  in
  let honest_no_loss = List.for_all (fun v -> (not v.honest) || v.no_loss) verdicts in
  let all_preferred = List.for_all (fun v -> v.preferred) verdicts in
  let initial_total =
    bag_totals
      (List.map
         (fun (party, _) -> Engine.initial_endowment spec ~deposits party)
         result.Engine.holdings)
  in
  let final_total = bag_totals (List.map snd result.Engine.holdings) in
  let report =
    {
      verdicts;
      honest_all_acceptable;
      honest_no_loss;
      all_preferred;
      conserved = initial_total = final_total;
    }
  in
  if Obs.enabled obs then begin
    Obs.attr obs span "verdicts" (Obs.Int (List.length report.verdicts));
    Obs.attr obs span "honest_all_acceptable" (Obs.Bool report.honest_all_acceptable);
    Obs.attr obs span "honest_no_loss" (Obs.Bool report.honest_no_loss);
    Obs.attr obs span "all_preferred" (Obs.Bool report.all_preferred);
    Obs.attr obs span "conserved" (Obs.Bool report.conserved);
    (* the exposure ledger rides along as a child span: peaks, risk
       duration, and one structured event per invariant violation *)
    Exposure.record obs ~parent:span (Exposure.of_result ?plan ~defectors spec result)
  end;
  report)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>audit: honest-acceptable=%b honest-no-loss=%b all-preferred=%b conserved=%b"
    r.honest_all_acceptable r.honest_no_loss r.all_preferred r.conserved;
  List.iter
    (fun v ->
      Format.fprintf ppf "@,  %-14s honest=%b acceptable=%b no-loss=%b preferred=%b"
        (Party.to_string v.party) v.honest v.acceptable v.no_loss v.preferred)
    r.verdicts;
  Format.fprintf ppf "@]"
