lib/report/table.mli:
