lib/lang/lexer.ml: Buffer Format List Loc String Token
