(** A small metrics registry for the exchange service: named counters,
    gauges and latency histograms with deterministic text and JSON
    snapshots.

    Determinism is load-bearing: every quantity the service records is
    measured in {e virtual} units (engine ticks, events, session
    counts), so two runs with the same seed produce byte-identical
    snapshots. Wall-clock throughput is deliberately kept out of the
    registry — see {!Service.wall_line}. Snapshots render metrics
    sorted by name, never in hash-table order. *)

type t
type counter
type histogram

val create : unit -> t

val counter : t -> ?help:string -> string -> counter
(** Register (or fetch, when already registered) a counter.
    @raise Invalid_argument when the name is taken by another kind. *)

val incr : ?by:int -> counter -> unit
val value : counter -> int

val histogram : t -> ?help:string -> ?buckets:int list -> string -> histogram
(** Upper-bound buckets, strictly increasing; an implicit [+Inf] bucket
    is always appended. Defaults to a 1..10000 log-ish ladder suited to
    engine tick and event counts. *)

val observe : histogram -> int -> unit

val gauge : t -> ?help:string -> string -> float -> unit
(** Set a gauge, registering it on first use. *)

val to_text : t -> string
(** Prometheus-flavoured exposition: [# HELP] lines, counter samples,
    [_bucket{le="…"}]/[_sum]/[_count] for histograms, gauges with fixed
    6-decimal formatting. *)

val to_json : t -> string
(** The same snapshot as one JSON object:
    [{"counters":{…},"gauges":{…},"histograms":{…}}], keys sorted. *)
