type side = Left | Right

type deal = {
  id : string;
  left : Party.t;
  right : Party.t;
  via : Party.t;
  left_sends : Asset.t;
  right_sends : Asset.t;
  deadline : int option;
}

type commitment_ref = { deal : string; side : side }

type t = {
  deals : deal list;
  personas : Party.t Party.Map.t;
  priorities : (Party.t * commitment_ref) list;
  splits : (Party.t * commitment_ref) list;
  overrides : State.acceptability Party.Map.t;
  shape : (string * int64) Lazy.t;
}

(* {2 Canonical shape}

   Every variable-length field is length-prefixed so the encoding is
   injective: no choice of party or deal names can make two different
   specs collide. The encoding (and its FNV-1a hash) is memoized in the
   spec itself — computed at most once per constructed value, however
   many times the protocol cache looks the spec up. *)

let enc_string buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let enc_party buf p =
  (match Party.role p with
  | Some Party.Consumer -> Buffer.add_char buf 'C'
  | Some Party.Producer -> Buffer.add_char buf 'P'
  | Some Party.Broker -> Buffer.add_char buf 'B'
  | None -> Buffer.add_char buf 'T');
  enc_string buf (Party.name p)

let enc_asset buf = function
  | Asset.Money m ->
    Buffer.add_char buf 'm';
    Buffer.add_string buf (string_of_int m)
  | Asset.Document d ->
    Buffer.add_char buf 'd';
    enc_string buf d

let enc_ref buf { deal; side } =
  enc_string buf deal;
  Buffer.add_char buf (match side with Left -> 'L' | Right -> 'R')

let encode_shape t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "deals[";
  List.iter
    (fun d ->
      Buffer.add_char buf '(';
      enc_string buf d.id;
      enc_party buf d.left;
      enc_party buf d.right;
      enc_party buf d.via;
      enc_asset buf d.left_sends;
      enc_asset buf d.right_sends;
      (match d.deadline with
      | None -> Buffer.add_char buf '-'
      | Some n -> Buffer.add_string buf (string_of_int n));
      Buffer.add_char buf ')')
    t.deals;
  Buffer.add_string buf "]personas[";
  (* Map bindings come out in key order, so insertion order cannot leak
     into the encoding. *)
  List.iter
    (fun (trusted, principal) ->
      Buffer.add_char buf '(';
      enc_party buf trusted;
      enc_party buf principal;
      Buffer.add_char buf ')')
    (Party.Map.bindings t.personas);
  Buffer.add_string buf "]prios[";
  List.iter
    (fun (owner, cref) ->
      Buffer.add_char buf '(';
      enc_party buf owner;
      enc_ref buf cref;
      Buffer.add_char buf ')')
    t.priorities;
  Buffer.add_string buf "]splits[";
  List.iter
    (fun (owner, cref) ->
      Buffer.add_char buf '(';
      enc_party buf owner;
      enc_ref buf cref;
      Buffer.add_char buf ')')
    t.splits;
  Buffer.add_string buf "]ovr[";
  List.iter
    (fun (party, _) ->
      Buffer.add_char buf '(';
      enc_party buf party;
      Buffer.add_char buf ')')
    (Party.Map.bindings t.overrides);
  Buffer.add_string buf "]";
  Buffer.contents buf

let shape_fnv1a s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* Install a fresh memo: every construction site (make and the with_
   updates) routes through here, so a spec's shape can never go stale.
   The recursive binding is constructive — the lazy body reads the
   cooked record's non-shape fields only. *)
let cook base =
  let rec cooked =
    {
      base with
      shape =
        lazy
          (let key = encode_shape cooked in
           (key, shape_fnv1a key));
    }
  in
  cooked

(* [Lazy.force] is not domain-safe: a force that observes another
   domain mid-force raises [Lazy.Undefined]. The shape is a pure
   function of the spec, so the loser simply computes its own copy —
   same value, no coordination. *)
let force_shape t =
  try Lazy.force t.shape
  with Lazy.Undefined ->
    let key = encode_shape t in
    (key, shape_fnv1a key)

let shape_key t = fst (force_shape t)
let shape_hash t = snd (force_shape t)
let shape_hex t = Printf.sprintf "%016Lx" (shape_hash t)

let deal ~id ~left ~right ~via ~left_sends ~right_sends =
  { id; left; right; via; left_sends; right_sends; deadline = None }

let sale ~id ~buyer ~seller ~via ~price ~good =
  {
    id;
    left = buyer;
    right = seller;
    via;
    left_sends = Asset.money price;
    right_sends = Asset.document good;
    deadline = None;
  }

let with_deadline deadline d = { d with deadline = Some deadline }

let equal_ref a b = String.equal a.deal b.deal && a.side = b.side
let other_side = function Left -> Right | Right -> Left

let find_deal t id = List.find_opt (fun d -> String.equal d.id id) t.deals
let commitment_principal d = function Left -> d.left | Right -> d.right
let commitment_sends d = function Left -> d.left_sends | Right -> d.right_sends
let commitment_expects d side = commitment_sends d (other_side side)

let commitments t =
  List.concat_map
    (fun d -> [ ({ deal = d.id; side = Left }, d); ({ deal = d.id; side = Right }, d) ])
    t.deals

let dedup_parties parties =
  let rec loop seen = function
    | [] -> []
    | p :: rest ->
      if Party.Set.mem p seen then loop seen rest else p :: loop (Party.Set.add p seen) rest
  in
  loop Party.Set.empty parties

let principals t = dedup_parties (List.concat_map (fun d -> [ d.left; d.right ]) t.deals)
let trusted_agents t = dedup_parties (List.map (fun d -> d.via) t.deals)
let parties t = principals t @ trusted_agents t

let commitments_of t party =
  let incident (cref, d) =
    if Party.equal (commitment_principal d cref.side) party || Party.equal d.via party then
      Some cref
    else None
  in
  (* A party that is both a principal of a deal and its trusted role
     cannot happen post-validation; each commitment is incident to a
     party at most once. *)
  List.filter_map incident (commitments t)

let internal_parties t =
  (* one pass: count interaction edges per party *)
  let counts = Hashtbl.create 64 in
  let bump party =
    let key = Party.to_string party in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  List.iter
    (fun d ->
      bump d.left;
      bump d.right;
      bump d.via;
      bump d.via)
    t.deals;
  List.filter
    (fun p -> Option.value ~default:0 (Hashtbl.find_opt counts (Party.to_string p)) >= 2)
    (parties t)

let persona_of t trusted = Party.Map.find_opt trusted t.personas

let effective_agent t d =
  match persona_of t d.via with Some principal -> principal | None -> d.via

let plays_own_agent t cref =
  match find_deal t cref.deal with
  | None -> false
  | Some d -> (
    match persona_of t d.via with
    | Some principal -> Party.equal principal (commitment_principal d cref.side)
    | None -> false)

let mem_mark marks owner cref =
  List.exists (fun (o, c) -> Party.equal o owner && equal_ref c cref) marks

let is_priority t owner cref = mem_mark t.priorities owner cref
let is_split t owner cref = mem_mark t.splits owner cref

let linked_commitments_of t party =
  List.filter (fun cref -> not (is_split t party cref)) (commitments_of t party)

let cost_to t party cref =
  match find_deal t cref.deal with
  | None -> 0
  | Some d ->
    if Party.equal (commitment_principal d cref.side) party then
      Asset.value (commitment_sends d cref.side)
    else 0

let indemnity_amount t owner cref =
  let others = List.filter (fun c -> not (equal_ref c cref)) (commitments_of t owner) in
  List.fold_left (fun total c -> total + cost_to t owner c) 0 others

let acceptability_overrides t party = Party.Map.find_opt party t.overrides

let pp_side ppf side =
  Format.pp_print_string ppf (match side with Left -> "left" | Right -> "right")

let pp_ref ppf cref = Format.fprintf ppf "%s.%a" cref.deal pp_side cref.side

let pp_deal ppf d =
  Format.fprintf ppf "@[<h>deal %s: %s sends %a, %s sends %a, via %s%t@]" d.id
    (Party.name d.left) Asset.pp d.left_sends (Party.name d.right) Asset.pp d.right_sends
    (Party.name d.via)
    (fun ppf ->
      match d.deadline with
      | Some dl -> Format.fprintf ppf ", within %d" dl
      | None -> ())

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  if t.deals = [] then err "spec has no deals";
  let ids = List.map (fun d -> d.id) t.deals in
  let sorted = List.sort String.compare ids in
  let rec check_dups = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then err "duplicate deal id %S" a;
      check_dups rest
    | [ _ ] | [] -> ()
  in
  check_dups sorted;
  let check_deal d =
    if not (Party.is_principal d.left) then err "deal %s: left party %a is not a principal" d.id Party.pp d.left;
    if not (Party.is_principal d.right) then err "deal %s: right party %a is not a principal" d.id Party.pp d.right;
    if not (Party.is_trusted d.via) then err "deal %s: via %a is not a trusted role" d.id Party.pp d.via;
    if Party.equal d.left d.right then err "deal %s: a party cannot exchange with itself" d.id;
    if Asset.value d.left_sends < 0 || Asset.value d.right_sends < 0 then
      err "deal %s: negative amount" d.id;
    (match d.deadline with
    | Some dl when dl <= 0 -> err "deal %s: non-positive deadline" d.id
    | Some _ | None -> ())
  in
  List.iter check_deal t.deals;
  let check_persona trusted principal =
    if not (Party.is_trusted trusted) then
      err "persona: %a is not a trusted role" Party.pp trusted;
    if not (Party.is_principal principal) then
      err "persona: %a is not a principal" Party.pp principal;
    let uses = List.filter (fun d -> Party.equal d.via trusted) t.deals in
    if uses = [] then err "persona: trusted role %a mediates no deal" Party.pp trusted;
    let fits d = Party.equal d.left principal || Party.equal d.right principal in
    List.iter
      (fun d ->
        if not (fits d) then
          err "persona: %a plays %a but is not a principal of deal %s" Party.pp principal
            Party.pp trusted d.id)
      uses
  in
  Party.Map.iter check_persona t.personas;
  let check_mark kind (owner, cref) =
    match find_deal t cref.deal with
    | None -> err "%s: unknown deal %S" kind cref.deal
    | Some d ->
      let endpoints = [ commitment_principal d cref.side; d.via ] in
      if not (List.exists (Party.equal owner) endpoints) then
        err "%s: %a is not an endpoint of commitment %a" kind Party.pp owner pp_ref cref
  in
  List.iter (check_mark "priority") t.priorities;
  List.iter (check_mark "split") t.splits;
  match !errors with [] -> Ok () | errors -> Error (List.rev errors)

let make ?(personas = []) ?(priorities = []) ?(splits = []) ?(overrides = []) deals =
  let personas =
    List.fold_left (fun m (trusted, p) -> Party.Map.add trusted p m) Party.Map.empty personas
  in
  let overrides =
    List.fold_left (fun m (party, a) -> Party.Map.add party a m) Party.Map.empty overrides
  in
  let t =
    cook
      {
        deals;
        personas;
        priorities;
        splits;
        overrides;
        shape = lazy (assert false);
      }
  in
  match validate t with Ok () -> Ok t | Error es -> Error es

let make_exn ?personas ?priorities ?splits ?overrides deals =
  match make ?personas ?priorities ?splits ?overrides deals with
  | Ok t -> t
  | Error es -> invalid_arg ("Spec.make_exn: " ^ String.concat "; " es)

let revalidate_exn what t =
  let t = cook t in
  match validate t with
  | Ok () -> t
  | Error es -> invalid_arg (what ^ ": " ^ String.concat "; " es)

let with_split owner cref t =
  if is_split t owner cref then t
  else revalidate_exn "Spec.with_split" { t with splits = t.splits @ [ (owner, cref) ] }

let with_persona ~trusted ~principal t =
  revalidate_exn "Spec.with_persona"
    { t with personas = Party.Map.add trusted principal t.personas }

let with_override party acceptability t =
  cook { t with overrides = Party.Map.add party acceptability t.overrides }

let with_priority owner cref t =
  if is_priority t owner cref then t
  else
    revalidate_exn "Spec.with_priority" { t with priorities = t.priorities @ [ (owner, cref) ] }

let pp ppf t =
  Format.fprintf ppf "@[<v>spec with %d deals" (List.length t.deals);
  List.iter (fun d -> Format.fprintf ppf "@,  %a" pp_deal d) t.deals;
  Party.Map.iter
    (fun trusted p ->
      Format.fprintf ppf "@,  persona: %s plays %s" (Party.name p) (Party.name trusted))
    t.personas;
  List.iter
    (fun (owner, cref) ->
      Format.fprintf ppf "@,  priority (red): %a at conj(%s)" pp_ref cref (Party.name owner))
    t.priorities;
  List.iter
    (fun (owner, cref) ->
      Format.fprintf ppf "@,  split: %a off conj(%s)" pp_ref cref (Party.name owner))
    t.splits;
  Format.fprintf ppf "@]"
