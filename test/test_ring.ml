(* Production tracing: the deterministic sampler, the binary ring
   codec and its wraparound discipline, the tail-based keep rules, and
   the service-level properties the contract promises — decoded ring
   exports are byte-compatible with the in-memory exporters, sampled
   sets are monotone in the rate and identical at any --jobs, and every
   anomalous session from a defect battery is retained at any rate. *)

module Obs = Trust_obs.Obs
module Ring = Trust_obs.Ring
module Sampler = Trust_obs.Sampler
module B64 = Trust_obs.B64
module Service = Trust_serve.Service
module Scheduler = Trust_serve.Scheduler
module Session = Trust_serve.Session
module Cache = Trust_serve.Cache
module Gen = Workload.Gen
module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let all_formats = [ Obs.Jsonl; Obs.Chrome; Obs.Tree; Obs.Folded ]

let decode_exn dump =
  match Ring.decode dump with
  | Ok r -> r
  | Error e -> Alcotest.fail ("ring decode failed: " ^ e)

(* -- sampler: reproducible, monotone in the rate, edge rates exact -- *)

let sampled_set ~seed ~rate n =
  List.filter (Sampler.decision ~seed ~rate) (List.init n Fun.id)

let test_sampler_edges () =
  let ids = List.init 1000 Fun.id in
  check_int "rate 1.0 samples everything" 1000
    (List.length (sampled_set ~seed:42L ~rate:1.0 1000));
  check_int "rate 0.0 samples nothing" 0
    (List.length (sampled_set ~seed:42L ~rate:0.0 1000));
  check_int "rates above 1.0 clamp to everything" 1000
    (List.length (sampled_set ~seed:42L ~rate:2.0 1000));
  check_int "negative rates clamp to nothing" 0
    (List.length (sampled_set ~seed:42L ~rate:(-0.5) 1000));
  List.iter
    (fun id ->
      check "decision is a pure function" true
        (Sampler.decision ~seed:7L ~rate:0.3 id = Sampler.decision ~seed:7L ~rate:0.3 id);
      check "hash is a pure function" true
        (Int64.equal (Sampler.hash ~seed:7L id) (Sampler.hash ~seed:7L id)))
    ids

let test_sampler_monotone_subset () =
  let rates = [ 0.001; 0.01; 0.1; 0.5; 1.0 ] in
  let sets = List.map (fun r -> (r, sampled_set ~seed:42L ~rate:r 2000)) rates in
  let rec pairs = function
    | (r1, s1) :: ((r2, s2) :: _ as rest) ->
      check
        (Printf.sprintf "rate %g set is a subset of rate %g" r1 r2)
        true
        (List.for_all (fun id -> List.mem id s2) s1);
      pairs rest
    | _ -> ()
  in
  pairs sets;
  (* the rate steers the sampled fraction (the hash is uniform enough) *)
  let frac r = float_of_int (List.length (sampled_set ~seed:42L ~rate:r 2000)) /. 2000. in
  check "10% rate lands near 10%" true (abs_float (frac 0.1 -. 0.1) < 0.05);
  check "50% rate lands near 50%" true (abs_float (frac 0.5 -. 0.5) < 0.05)

let test_sampler_seed_sensitivity () =
  check "different seeds sample different sets" true
    (sampled_set ~seed:1L ~rate:0.5 2000 <> sampled_set ~seed:2L ~rate:0.5 2000)

(* -- base64 transport -- *)

let test_b64 () =
  List.iter
    (fun (raw, enc) ->
      check_string ("encode " ^ String.escaped raw) enc (B64.encode raw);
      match B64.decode enc with
      | Ok back -> check_string ("decode " ^ enc) raw back
      | Error e -> Alcotest.fail e)
    [ ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v"); ("foob", "Zm9vYg==") ];
  let rng = Prng.create 3L in
  for len = 0 to 64 do
    let raw = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    match B64.decode (B64.encode raw) with
    | Ok back -> check_string "binary round trip" raw back
    | Error e -> Alcotest.fail e
  done;
  List.iter
    (fun bad ->
      check ("reject " ^ String.escaped bad) true
        (match B64.decode bad with Error _ -> true | Ok _ -> false))
    [ "A"; "AB"; "ABC"; "A*=="; "===="; "Zg==Zg=="; "Z=g=" ]

(* -- the binary codec round-trips every value kind and shape -- *)

let adversarial_trace () =
  let obs = Obs.create ~session:12345 () in
  Obs.with_span obs ~phase:"p; q" "name with space" (fun root ->
      Obs.attr obs root "neg" (Obs.Int (-987654321));
      Obs.attr obs root "big" (Obs.Int max_int);
      Obs.attr obs root "min" (Obs.Int min_int);
      Obs.attr obs root "half" (Obs.Float 0.5);
      Obs.attr obs root "negf" (Obs.Float (-1.25));
      Obs.attr obs root "tiny" (Obs.Float 1e-300);
      Obs.attr obs root "yes" (Obs.Bool true);
      Obs.attr obs root "no" (Obs.Bool false);
      Obs.attr obs root "quote" (Obs.Str "a\"b\\c\nd");
      Obs.attr obs root "empty" (Obs.Str "");
      Obs.with_span obs ~parent:root ~phase:"inner" "child" (fun child ->
          Obs.event obs child ~attrs:[ ("n", Obs.Int 3); ("s", Obs.Str "e;v") ] "tick";
          Obs.event obs child "bare");
      (* a volatile attr must not survive into the ring either *)
      Obs.volatile_attr obs root "racy" (Obs.Bool true));
  obs

let test_codec_adversarial_round_trip () =
  let obs = adversarial_trace () in
  let ring = Ring.create ~capacity:65536 () in
  check_int "nothing evicted" 0 (Ring.record ring ~keep:Ring.Sampled obs);
  let sessions, stats = decode_exn (Ring.dump ring) in
  check_int "one session" 1 stats.Ring.d_sessions;
  check_int "no drops" 0 stats.Ring.d_dropped;
  List.iter
    (fun fmt ->
      check_string "decoded export byte-compatible" (Obs.export fmt [ obs ])
        (Ring.export fmt sessions))
    all_formats;
  let jsonl = Ring.export Obs.Jsonl sessions in
  check "volatile attr quarantined in the ring too" false
    (let n = String.length jsonl in
     let rec at i = i + 4 <= n && (String.sub jsonl i 4 = "racy" || at (i + 1)) in
     at 0)

(* the load-bearing property: 100 seeded random specs through the real
   session lifecycle, committed to the ring, decoded, re-exported —
   byte-compatible with exporting the original in-memory traces in
   every format *)
let traced_batch n =
  let rng = Prng.create 5L in
  let specs = Gen.random_transactions rng Gen.default_mix n in
  let cache = Cache.create Cache.default_policy in
  List.mapi
    (fun i spec ->
      let obs = Obs.create ~session:i () in
      Scheduler.process_one ~obs Scheduler.default_config cache (Session.make ~id:i spec);
      obs)
    specs

let test_codec_property_100_specs () =
  let traces = traced_batch 100 in
  let ring = Ring.create ~capacity:(1 lsl 22) () in
  List.iter (fun obs -> ignore (Ring.record ring ~keep:Ring.Sampled obs : int)) traces;
  let sessions, stats = decode_exn (Ring.dump ring) in
  check_int "all sessions decoded" 100 stats.Ring.d_sessions;
  check_int "no drops" 0 stats.Ring.d_dropped;
  check_int "written matches the introspection counter" stats.Ring.d_written
    (Ring.records_written ring);
  List.iter
    (fun fmt ->
      check_string "100-spec export byte-compatible" (Obs.export fmt traces)
        (Ring.export fmt sessions))
    all_formats

let test_keep_reason_survives_decode () =
  List.iter
    (fun keep ->
      let ring = Ring.create ~capacity:4096 () in
      let obs = Obs.create ~session:1 () in
      Obs.with_span obs ~phase:"p" "s" (fun _ -> ());
      ignore (Ring.record ring ~keep obs : int);
      match decode_exn (Ring.dump ring) with
      | [ s ], _ ->
        check_string "keep reason round-trips" (Ring.keep_label keep)
          (Ring.keep_label s.Ring.s_keep)
      | _ -> Alcotest.fail "expected exactly one session")
    [ Ring.Sampled; Ring.Violation; Ring.Retry; Ring.Expiry; Ring.Lint ]

(* -- wraparound: whole-record eviction, newest complete suffix -- *)

let small_trace i =
  let obs = Obs.create ~session:i () in
  Obs.with_span obs ~phase:"p" (Printf.sprintf "s%d" i) (fun root ->
      Obs.attr obs root "i" (Obs.Int i);
      Obs.event obs root "tick");
  obs

let test_wraparound_newest_suffix () =
  let ring = Ring.create ~capacity:2048 () in
  let total = 200 in
  for i = 0 to total - 1 do
    ignore (Ring.record ring ~keep:Ring.Sampled (small_trace i) : int)
  done;
  check "old records evicted" true (Ring.records_dropped ring > 0);
  let sessions, stats = decode_exn (Ring.dump ring) in
  check_int "written counts every commit" (total * 4) stats.Ring.d_written;
  check "some sessions survive" true (stats.Ring.d_sessions > 0);
  check "not all sessions survive" true (stats.Ring.d_sessions < total);
  (* the survivors are exactly the newest ids, contiguous to the end —
     eviction is strictly oldest-first and sessions commit whole *)
  let ids = List.map (fun s -> s.Ring.s_id) sessions in
  let expected =
    List.init (List.length ids) (fun k -> total - List.length ids + k)
  in
  check "newest complete suffix" true (ids = expected);
  (* and each survivor decodes to its intact, byte-compatible trace *)
  List.iter
    (fun s ->
      check_string "survivor intact" (Obs.export Obs.Jsonl [ small_trace s.Ring.s_id ])
        (Ring.export Obs.Jsonl [ s ]))
    sessions

let test_oversized_session_refused_whole () =
  let ring = Ring.create ~capacity:1024 () in
  let big = Obs.create ~session:9 () in
  Obs.with_span big ~phase:"p" "root" (fun root ->
      for i = 0 to 199 do
        Obs.with_span big ~parent:root ~phase:"fill" (Printf.sprintf "pad%d" i) (fun h ->
            Obs.attr big h "filler" (Obs.Str (String.make 32 'x')))
      done);
  let dropped = Ring.record ring ~keep:Ring.Sampled big in
  check "every refused record counted" true (dropped > 0);
  check_int "refusal is atomic: nothing resident" 0 (Ring.bytes_resident ring);
  let sessions, stats = decode_exn (Ring.dump ring) in
  check_int "no torn session decoded" 0 stats.Ring.d_sessions;
  check_int "no session records" 0 (List.length sessions);
  (* the ring is still usable after a refusal *)
  ignore (Ring.record ring ~keep:Ring.Sampled (small_trace 1) : int);
  let sessions, _ = decode_exn (Ring.dump ring) in
  check_int "next session lands fine" 1 (List.length sessions)

let test_drain_semantics () =
  let ring = Ring.create ~capacity:8192 () in
  ignore (Ring.record ring ~keep:Ring.Sampled (small_trace 0) : int);
  let first, _ = decode_exn (Ring.drain ring) in
  check_int "first drain sees session 0" 1 (List.length first);
  ignore (Ring.record ring ~keep:Ring.Retry (small_trace 1) : int);
  let second, stats = decode_exn (Ring.drain ring) in
  check_int "second drain sees only session 1" 1 (List.length second);
  check_int "it is session 1" 1 (List.nth second 0).Ring.s_id;
  check_int "lifetime written counter survives drains" 8 stats.Ring.d_written;
  let third, _ = decode_exn (Ring.drain ring) in
  check_int "an idle drain is empty" 0 (List.length third);
  let none, stats = decode_exn Ring.empty_dump in
  check_int "empty dump decodes clean" 0 (List.length none);
  check_int "empty dump has no shards" 0 stats.Ring.d_shards

let test_decode_rejects_garbage () =
  List.iter
    (fun bad ->
      check ("reject " ^ String.escaped bad) true
        (match Ring.decode bad with Error _ -> true | Ok _ -> false))
    [
      "";
      "TSR";
      "XXXX\x00";
      "TSR1";
      "TSR1\x01";
      (let d = Ring.dump (Ring.create ~capacity:1024 ()) in
       String.sub d 0 (String.length d - 1));
    ]

(* -- tail keep rules on the session record -- *)

let fresh_session id = Session.make ~id Workload.Scenarios.example1

let test_tail_reason_rules () =
  let s = fresh_session 0 in
  s.Session.status <- Session.Settled;
  check "clean settle is dropped" true (Scheduler.tail_reason s = None);
  let s = fresh_session 1 in
  s.Session.status <- Session.Expired;
  check "expiry kept" true (Scheduler.tail_reason s = Some Ring.Expiry);
  let s = fresh_session 2 in
  s.Session.status <- Session.Settled;
  s.Session.attempts <- 2;
  check "retry kept" true (Scheduler.tail_reason s = Some Ring.Retry);
  let s = fresh_session 3 in
  s.Session.status <- Session.Settled;
  s.Session.exposure_violations <- 1;
  check "violation kept" true (Scheduler.tail_reason s = Some Ring.Violation);
  let s = fresh_session 4 in
  s.Session.status <- Session.Aborted "lint: [W1] suspicious" ;
  check "lint refusal kept" true (Scheduler.tail_reason s = Some Ring.Lint);
  let s = fresh_session 5 in
  s.Session.status <- Session.Aborted "infeasible" ;
  check "ordinary abort dropped" true (Scheduler.tail_reason s = None);
  (* severity order: a violation outranks a retry outranks an expiry *)
  let s = fresh_session 6 in
  s.Session.status <- Session.Expired;
  s.Session.attempts <- 3;
  s.Session.exposure_violations <- 2;
  check "violation outranks everything" true (Scheduler.tail_reason s = Some Ring.Violation);
  let s = fresh_session 7 in
  s.Session.status <- Session.Expired;
  s.Session.attempts <- 3;
  check "retry outranks expiry" true (Scheduler.tail_reason s = Some Ring.Retry);
  check "head sampling outranks tail reasons" true
    (Scheduler.keep_decision ~sampled:true s = Some Ring.Sampled)

(* -- service level: the ring rides the batch scheduler -- *)

let batch ?(sessions = 60) ?(jobs = 1) ?(drop = 0.05) ?defect ~rate ~ring () =
  Service.run
    {
      Service.default with
      Service.sessions;
      seed = 19L;
      concurrency = 4;
      jobs;
      drop_rate = drop;
      defect_every = defect;
      sample_rate = rate;
      trace_ring = ring;
    }

let ring_of outcome =
  match outcome.Service.ring with
  | Some ring -> ring
  | None -> Alcotest.fail "expected a ring sink"

let decoded outcome = decode_exn (Ring.dump (ring_of outcome))

let sampled_ids outcome =
  List.filter_map
    (fun s -> if s.Ring.s_keep = Ring.Sampled then Some s.Ring.s_id else None)
    (fst (decoded outcome))

let test_service_sampled_subset () =
  let all = sampled_ids (batch ~rate:1.0 ~ring:(1 lsl 22) ()) in
  check_int "rate 1.0 samples the whole batch" 60 (List.length all);
  let some = sampled_ids (batch ~rate:0.3 ~ring:(1 lsl 22) ()) in
  check "rate 0.3 samples a strict subset" true
    (List.length some > 0 && List.length some < 60);
  check "the subset property holds" true (List.for_all (fun id -> List.mem id all) some)

let test_service_jobs_identity () =
  let a = batch ~jobs:1 ~rate:0.3 ~ring:(1 lsl 22) () in
  let b = batch ~jobs:4 ~rate:0.3 ~ring:(1 lsl 22) () in
  let export o =
    let sessions, stats = decoded o in
    check_int "identity run must not wrap" 0 stats.Ring.d_dropped;
    Ring.export Obs.Jsonl sessions
  in
  check_string "decoded ring byte-identical at jobs 1 vs 4" (export a) (export b)

(* the oracle: at sample rate 0 every anomalous session from a defect
   battery — and nothing else — is in the ring, with the right reason *)
let test_tail_keep_oracle () =
  let outcome = batch ~sessions:80 ~drop:0.08 ~defect:8 ~rate:0.0 ~ring:(1 lsl 22) () in
  let expected =
    List.filter_map
      (fun (s : Session.t) ->
        Option.map (fun k -> (s.Session.id, Ring.keep_label k)) (Scheduler.tail_reason s))
      outcome.Service.sessions
  in
  check "the battery produced anomalies" true (List.length expected > 0);
  let sessions, _ = decoded outcome in
  let got = List.map (fun s -> (s.Ring.s_id, Ring.keep_label s.Ring.s_keep)) sessions in
  List.iter
    (fun (id, label) ->
      check (Printf.sprintf "session %d kept as %s" id label) true (List.mem (id, label) got))
    expected;
  check_int "and nothing else was kept" (List.length expected) (List.length got);
  (* the replayed traces are the real thing: spans for every kept id *)
  let jsonl = Ring.export Obs.Jsonl sessions in
  check "replayed traces carry spans" true (String.length jsonl > 0)

(* the same oracle at a daemon-like 1% rate: head samples may join, but
   every anomaly is still there *)
let test_tail_keep_oracle_sampled () =
  let outcome = batch ~sessions:80 ~drop:0.08 ~defect:8 ~rate:0.01 ~ring:(1 lsl 22) () in
  let expected =
    List.filter_map
      (fun (s : Session.t) ->
        Option.map (fun k -> (s.Session.id, Ring.keep_label k)) (Scheduler.tail_reason s))
      outcome.Service.sessions
  in
  let sessions, _ = decoded outcome in
  let got_ids = List.map (fun s -> s.Ring.s_id) sessions in
  List.iter
    (fun (id, label) ->
      check (Printf.sprintf "session %d (%s) retained at 1%%" id label) true
        (List.mem id got_ids))
    expected

(* -- the hot path stays allocation-free when nothing is sampled -- *)

let test_zero_rate_allocates_nothing () =
  let cache = Cache.create Cache.default_policy in
  let cfg = { Scheduler.default_config with Scheduler.sample_rate = 0.0 } in
  let ring = Ring.create ~capacity:65536 () in
  let spec = Workload.Gen.chain ~brokers:2 in
  let batch first n = List.init n (fun i -> Session.make ~id:(first + i) spec) in
  (* warm: synthesis, plan compilation, the works *)
  ignore (Scheduler.run ~ring cfg cache (batch 0 3) : Scheduler.stats);
  let rounds = 200 in
  let before = Gc.minor_words () in
  ignore (Scheduler.run ~ring cfg cache (batch 3 rounds) : Scheduler.stats);
  let with_ring = (Gc.minor_words () -. before) /. float_of_int rounds in
  let before = Gc.minor_words () in
  ignore (Scheduler.run cfg cache (batch (3 + rounds) rounds) : Scheduler.stats);
  let without = (Gc.minor_words () -. before) /. float_of_int rounds in
  check_int "zero-rate ring commits no records" 0 (Ring.records_written ring);
  (* the sampler verdict and the keep decision ride along per session;
     neither may allocate trace records — a small constant bound *)
  check
    (Printf.sprintf "zero-rate tracing adds ~nothing (%.0f vs %.0f words/session)"
       with_ring without)
    true
    (with_ring -. without < 64.)

let () =
  Alcotest.run "ring"
    [
      ( "sampler",
        [
          Alcotest.test_case "edge rates" `Quick test_sampler_edges;
          Alcotest.test_case "monotone subset" `Quick test_sampler_monotone_subset;
          Alcotest.test_case "seed sensitivity" `Quick test_sampler_seed_sensitivity;
        ] );
      ("transport", [ Alcotest.test_case "base64" `Quick test_b64 ]);
      ( "codec",
        [
          Alcotest.test_case "adversarial round trip" `Quick test_codec_adversarial_round_trip;
          Alcotest.test_case "100-spec property" `Quick test_codec_property_100_specs;
          Alcotest.test_case "keep reasons" `Quick test_keep_reason_survives_decode;
        ] );
      ( "wraparound",
        [
          Alcotest.test_case "newest complete suffix" `Quick test_wraparound_newest_suffix;
          Alcotest.test_case "oversized session refused" `Quick test_oversized_session_refused_whole;
          Alcotest.test_case "drain semantics" `Quick test_drain_semantics;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
        ] );
      ("tail rules", [ Alcotest.test_case "keep rules" `Quick test_tail_reason_rules ]);
      ( "service",
        [
          Alcotest.test_case "sampled subset" `Quick test_service_sampled_subset;
          Alcotest.test_case "jobs identity" `Quick test_service_jobs_identity;
          Alcotest.test_case "tail-keep oracle (rate 0)" `Quick test_tail_keep_oracle;
          Alcotest.test_case "tail-keep oracle (rate 0.01)" `Quick test_tail_keep_oracle_sampled;
          Alcotest.test_case "zero-rate hot path" `Quick test_zero_rate_allocates_nothing;
        ] );
    ]
