lib/exchange/asset.mli: Format Map Set
