type role = Consumer | Producer | Broker

type asset = Pays of int | Gives of string

type leg = { party : string Loc.located; asset : asset }

type side = Buyer | Seller

type cref = { deal : string Loc.located; side : side }

type decl =
  | Principal of { name : string Loc.located; role : role }
  | Trusted of string Loc.located
  | Deal of {
      id : string Loc.located;
      first : leg;
      second : leg;
      via : string Loc.located;
      deadline : int option;
    }
  | Priority of { owner : string Loc.located; target : cref }
  | Split of { owner : string Loc.located; target : cref }
  | Trust of { truster : string Loc.located; trustee : string Loc.located }
  | Relay of string Loc.located
  | Request of {
      id : string Loc.located;
      buyer : string Loc.located;
      good : string;
      seller : string Loc.located;
      price : int;
    }
  | Persona of { trusted : string Loc.located; principal : string Loc.located }

type program = decl list

let pp_role ppf r =
  Format.pp_print_string ppf
    (match r with Consumer -> "consumer" | Producer -> "producer" | Broker -> "broker")

let pp_asset ppf = function
  | Pays cents -> Format.pp_print_string ppf (Token.to_string (Token.Money cents))
  | Gives doc -> Format.fprintf ppf "%S" doc

let pp_leg ppf leg =
  Format.fprintf ppf "%s %s %a" leg.party.Loc.value
    (match leg.asset with Pays _ -> "pays" | Gives _ -> "gives")
    pp_asset leg.asset

let pp_side ppf s =
  Format.pp_print_string ppf (match s with Buyer -> "buyer" | Seller -> "seller")

let pp_cref ppf c = Format.fprintf ppf "%s.%a" c.deal.Loc.value pp_side c.side

let pp_decl ppf = function
  | Principal { name; role } ->
    Format.fprintf ppf "principal %s : %a" name.Loc.value pp_role role
  | Trusted name -> Format.fprintf ppf "trusted %s" name.Loc.value
  | Deal { id; first; second; via; deadline } ->
    Format.fprintf ppf "deal %s: %a; %a; via %s%t" id.Loc.value pp_leg first pp_leg second
      via.Loc.value (fun ppf ->
        match deadline with Some n -> Format.fprintf ppf " within %d" n | None -> ())
  | Priority { owner; target } ->
    Format.fprintf ppf "priority %s : %a" owner.Loc.value pp_cref target
  | Split { owner; target } -> Format.fprintf ppf "split %s : %a" owner.Loc.value pp_cref target
  | Trust { truster; trustee } ->
    Format.fprintf ppf "trust %s -> %s" truster.Loc.value trustee.Loc.value
  | Relay name -> Format.fprintf ppf "relay %s" name.Loc.value
  | Request { id; buyer; good; seller; price } ->
    Format.fprintf ppf "request %s: %s buys %S from %s for %s" id.Loc.value buyer.Loc.value
      good seller.Loc.value
      (Token.to_string (Token.Money price))
  | Persona { trusted; principal } ->
    Format.fprintf ppf "persona %s is %s" trusted.Loc.value principal.Loc.value
