(* The §2.3 state formalism: the four acceptable outcomes of the simple
   customer/producer sale, exactly as the paper enumerates them. *)

open Exchange
module Pattern = Action.Pattern

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let c = Party.consumer "c"
let p = Party.producer "p"
let m = Asset.dollars 10

let pay_action = Action.pay c p m
let give_action = Action.give p c "d"

(* The customer's §2.3 acceptability: exchange done, refund, status quo,
   or free goods. *)
let customer_acceptability =
  let describe patterns = State.describes patterns in
  let exchange = describe [ Pattern.of_action give_action; Pattern.of_action pay_action ] in
  State.
    {
      descriptions =
        [
          exchange;
          describe [ Pattern.of_action pay_action; Pattern.of_action (Action.undo pay_action) ];
          describe [];
          describe [ Pattern.of_action give_action ];
        ];
      preferred = exchange;
    }

let test_empty_state () =
  check_int "empty" 0 (State.cardinal State.empty);
  check "nothing recorded" false (State.mem pay_action State.empty)

let test_set_semantics () =
  let s = State.of_actions [ pay_action; pay_action; give_action ] in
  check_int "duplicates collapse" 2 (State.cardinal s);
  check "mem pay" true (State.mem pay_action s)

let test_union_subset () =
  let a = State.of_actions [ pay_action ] in
  let b = State.of_actions [ give_action ] in
  let u = State.union a b in
  check "a subset u" true (State.subset a u);
  check "u not subset a" false (State.subset u a);
  check_int "union size" 2 (State.cardinal u)

let test_performed_by () =
  let s = State.of_actions [ pay_action; give_action; Action.undo pay_action ] in
  (* c performs the pay; p performs the give; the undo of c's payment is
     performed by its holder p. *)
  check_int "c's actions" 1 (List.length (State.performed_by c s));
  check_int "p's actions" 2 (List.length (State.performed_by p s))

let test_net_assets () =
  let s = State.of_actions [ pay_action; give_action ] in
  let gained, lost = State.net_assets c s in
  check "c gained doc" true (Asset.Bag.holds (Asset.document "d") gained);
  check_int "c lost $10" m (Asset.Bag.balance lost);
  let gained_p, lost_p = State.net_assets p s in
  check_int "p gained $10" m (Asset.Bag.balance gained_p);
  check "p lost doc" true (Asset.Bag.holds (Asset.document "d") lost_p)

let test_net_assets_undo () =
  let s = State.of_actions [ pay_action; Action.undo pay_action ] in
  let gained, lost = State.net_assets c s in
  check_int "refund returns" m (Asset.Bag.balance gained);
  check_int "payment left" m (Asset.Bag.balance lost)

(* The four §2.3 outcomes. *)

let acceptable state = State.acceptable customer_acceptability ~party:c state

let test_status_quo_acceptable () = check "{} acceptable" true (acceptable State.empty)

let test_exchange_acceptable () =
  check "complete exchange" true (acceptable (State.of_actions [ pay_action; give_action ]))

let test_refund_acceptable () =
  check "refund" true (acceptable (State.of_actions [ pay_action; Action.undo pay_action ]))

let test_windfall_acceptable () =
  check "free document" true (acceptable (State.of_actions [ give_action ]))

let test_loss_unacceptable () =
  check "paid, no document" false (acceptable (State.of_actions [ pay_action ]))

let test_own_action_constraint () =
  (* The state contains a superset of the windfall description, but the
     customer also paid — §2.3's "does not contain another action by
     that party" must reject matching via the windfall description while
     the exchange description still accepts it. *)
  let extra_pay = Action.pay c p (Asset.dollars 99) in
  let s = State.of_actions [ give_action; extra_pay ] in
  check "unmatched own action rejects" false (acceptable s)

let test_preferred () =
  check "preferred reached" true
    (State.preferred_reached customer_acceptability (State.of_actions [ pay_action; give_action ]));
  check "refund is not preferred" false
    (State.preferred_reached customer_acceptability
       (State.of_actions [ pay_action; Action.undo pay_action ]))

let test_permits () =
  (* A description's permits tolerate extra own actions without
     requiring them. *)
  let desc =
    State.
      {
        requires = [ Pattern.of_action give_action ];
        permits = [ Pattern.P_do (Pattern.Exactly c, Pattern.Any_party, Pattern.Any_asset) ];
      }
  in
  let spec = State.{ descriptions = [ desc ]; preferred = desc } in
  let s = State.of_actions [ give_action; Action.pay c p 123 ] in
  check "permitted extra" true (State.acceptable spec ~party:c s)

let test_always_acceptable () =
  let s = State.of_actions [ pay_action; give_action; Action.undo pay_action ] in
  check "anything goes" true (State.acceptable State.always_acceptable ~party:c s);
  check "empty too" true (State.acceptable State.always_acceptable ~party:c State.empty)

let () =
  Alcotest.run "state"
    [
      ( "states",
        [
          Alcotest.test_case "empty" `Quick test_empty_state;
          Alcotest.test_case "states are sets" `Quick test_set_semantics;
          Alcotest.test_case "union and subset" `Quick test_union_subset;
          Alcotest.test_case "performed_by" `Quick test_performed_by;
          Alcotest.test_case "net assets" `Quick test_net_assets;
          Alcotest.test_case "net assets through undo" `Quick test_net_assets_undo;
        ] );
      ( "acceptability (paper 2.3)",
        [
          Alcotest.test_case "status quo" `Quick test_status_quo_acceptable;
          Alcotest.test_case "completed exchange" `Quick test_exchange_acceptable;
          Alcotest.test_case "refund" `Quick test_refund_acceptable;
          Alcotest.test_case "windfall" `Quick test_windfall_acceptable;
          Alcotest.test_case "loss rejected" `Quick test_loss_unacceptable;
          Alcotest.test_case "own-action constraint" `Quick test_own_action_constraint;
          Alcotest.test_case "preferred outcome" `Quick test_preferred;
          Alcotest.test_case "permits" `Quick test_permits;
          Alcotest.test_case "always_acceptable" `Quick test_always_acceptable;
        ] );
    ]
