(* Hash-consing for the small value universe the front end mints.

   Every elaboration of the same source text used to allocate fresh
   [Party.t] and [Asset.t] values; downstream structural comparisons
   then re-walked the strings every time. Routing the constructors
   through these tables makes repeated elaborations return physically
   equal values, so the [==] fast paths in [Party.compare],
   [Asset.compare] and [Action.compare] short-circuit the common case.

   The tables are process-global and shared across Pool domains, hence
   the mutex. They are bounded: once [capacity] distinct values have
   been seen, unknown values are returned un-interned (correctness is
   unaffected — interning is only a sharing hint), so a daemon parsing
   an unbounded principal universe cannot grow them without limit. *)

open Exchange

let capacity = 65_536

type 'a table = { mutex : Mutex.t; entries : ('a, 'a) Hashtbl.t }

let make_table () = { mutex = Mutex.create (); entries = Hashtbl.create 256 }

let intern table v =
  Mutex.lock table.mutex;
  let r =
    match Hashtbl.find_opt table.entries v with
    | Some shared -> shared
    | None ->
      if Hashtbl.length table.entries < capacity then Hashtbl.replace table.entries v v;
      v
  in
  Mutex.unlock table.mutex;
  r

let parties : Party.t table = make_table ()
let assets : Asset.t table = make_table ()

let party p = intern parties p
let asset a = intern assets a
let consumer name = party (Party.consumer name)
let producer name = party (Party.producer name)
let broker name = party (Party.broker name)
let trusted name = party (Party.trusted name)
let money cents = asset (Asset.money cents)
let document name = asset (Asset.document name)
