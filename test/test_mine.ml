(* The trace-mining advisor and its feedback hooks: offline (TSR1 ring
   dump) and online (decoded JSONL) folds must produce byte-identical
   scoreboards, the scoreboard is byte-identical at any --jobs, the
   candidate lists obey their contracts over a 200-spec fault-injected
   corpus, and the Serve.Cache policy surface — pin, deny, pre-warm —
   does what the daemon's --mine-* flags rely on. *)

module Obs = Trust_obs.Obs
module Ring = Trust_obs.Ring
module Analysis = Trust_obs.Analysis
module Mine = Trust_obs.Mine
module Service = Trust_serve.Service
module Scheduler = Trust_serve.Scheduler
module Session = Trust_serve.Session
module Cache = Trust_serve.Cache
module Shape = Trust_serve.Shape
module Gen = Workload.Gen
module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let decode_exn dump =
  match Ring.decode dump with
  | Ok r -> r
  | Error e -> Alcotest.fail ("ring decode failed: " ^ e)

(* a fault-injected batch with everything traced into a ring big
   enough that nothing wraps: drops produce retries, defectors produce
   expiries and exposure violations *)
let batch ?(sessions = 60) ?(jobs = 1) ?(seed = 19L) () =
  Service.run
    {
      Service.default with
      Service.sessions;
      seed;
      jobs;
      drop_rate = 0.08;
      defect_every = Some 7;
      sample_rate = 1.0;
      trace_ring = 1 lsl 22;
    }

let ring_sessions outcome =
  match outcome.Service.ring with
  | None -> Alcotest.fail "expected a ring sink"
  | Some ring ->
    let ss, stats = decode_exn (Ring.dump ring) in
    check_int "mining corpus must not wrap" 0 stats.Ring.d_dropped;
    ss

(* -- offline/online parity: the dump fold and the JSONL fold agree -- *)

let test_offline_online_parity () =
  let ss = ring_sessions (batch ()) in
  let offline = Mine.of_sessions ss in
  let online =
    match Analysis.of_jsonl (Ring.export Obs.Jsonl ss) with
    | Ok a -> Mine.of_views (Analysis.views a)
    | Error e -> Alcotest.fail ("jsonl re-parse failed: " ^ e)
  in
  check "parity corpus is non-trivial" true (Mine.sessions offline > 0);
  check_string "scoreboard JSON identical across transports" (Mine.json offline)
    (Mine.json online);
  check_string "scoreboard table identical across transports" (Mine.table offline)
    (Mine.table online)

(* -- determinism: byte-identical scoreboards at jobs 1 vs 4 -- *)

let test_jobs_identity () =
  let a = Mine.of_sessions (ring_sessions (batch ~jobs:1 ())) in
  let b = Mine.of_sessions (ring_sessions (batch ~jobs:4 ())) in
  check_string "scoreboard byte-identical at jobs 1 vs 4" (Mine.json a) (Mine.json b)

(* -- the scoreboard contract over a 200-spec corpus with injected
   drops and defectors -- *)

let test_scoreboard_property_200 () =
  let outcome = batch ~sessions:200 ~seed:5L () in
  let board = Mine.of_sessions (ring_sessions outcome) in
  let rows = Mine.rows board in
  check "corpus produced rows" true (rows <> []);
  (* folded sessions account exactly for the rows *)
  check_int "row sessions sum to the total" (Mine.sessions board)
    (List.fold_left (fun acc (r : Mine.row) -> acc + r.Mine.sessions) 0 rows);
  check_int "shape count matches the rows" (Mine.shapes board) (List.length rows);
  List.iter
    (fun (r : Mine.row) ->
      let keeps =
        r.Mine.k_sampled + r.Mine.k_violation + r.Mine.k_retry + r.Mine.k_expiry
        + r.Mine.k_lint
      in
      check_int ("keeps partition sessions for " ^ r.Mine.shape) r.Mine.sessions keeps;
      check_int
        ("statuses partition sessions for " ^ r.Mine.shape)
        r.Mine.sessions
        (r.Mine.settled + r.Mine.expired + r.Mine.aborted);
      check ("rates lie in [0,1] for " ^ r.Mine.shape) true
        (Mine.retry_rate r >= 0. && Mine.retry_rate r <= 1.
        && Mine.expiry_rate r >= 0.
        && Mine.expiry_rate r <= 1.);
      check ("attempts cover sessions for " ^ r.Mine.shape) true
        (r.Mine.attempts >= r.Mine.sessions))
    rows;
  (* severity ordering: violating shapes first, strictly non-increasing *)
  let rec ordered = function
    | (a : Mine.row) :: (b : Mine.row) :: rest ->
      check "rows ordered by violating sessions" true
        (a.Mine.violation_sessions >= b.Mine.violation_sessions);
      ordered (b :: rest)
    | _ -> ()
  in
  ordered rows;
  (* the candidate lists partition cleanly: a deny candidate is never a
     pin candidate, and every pin candidate is violation-free *)
  let pins = Mine.pin_candidates ~min_incidents:1 board in
  let denies = Mine.deny_candidates ~min_violations:1 board in
  check "fault injection produced pin candidates" true (pins <> []);
  check "fault injection produced deny candidates" true (denies <> []);
  List.iter
    (fun hex ->
      check ("pin candidate " ^ hex ^ " not denied") false (List.mem hex denies);
      match List.find_opt (fun (r : Mine.row) -> r.Mine.shape = hex) rows with
      | None -> Alcotest.fail ("pin candidate " ^ hex ^ " has no row")
      | Some r -> check ("pin candidate " ^ hex ^ " violation-free") true
                    (r.Mine.violation_sessions = 0))
    pins;
  (* folding is associative in the add_views sense: one pass over the
     whole corpus equals incremental accumulation *)
  let ss = ring_sessions outcome in
  let incremental =
    List.fold_left (fun acc s -> Mine.add_views acc s.Ring.s_views) Mine.empty ss
  in
  check_string "incremental fold equals whole-corpus fold"
    (Mine.json (Mine.of_sessions ss))
    (Mine.json incremental)

(* -- ring pressure surfacing: partially evicted sessions counted -- *)

let test_wrapped_sessions_counted () =
  let ring = Ring.create ~capacity:2048 () in
  let saw_skip = ref false in
  for i = 0 to 149 do
    let obs = Obs.create ~session:i () in
    Obs.with_span obs ~phase:"p" (Printf.sprintf "s%d" i) (fun root ->
        (* vary the record size so eviction boundaries land mid-session *)
        Obs.attr obs root "pad" (Obs.Str (String.make (8 + (17 * i mod 96)) 'x')));
    ignore (Ring.record ring ~keep:Ring.Sampled obs : int);
    let _, stats = decode_exn (Ring.dump ring) in
    if stats.Ring.d_skipped > 0 then saw_skip := true;
    (* whole-record oldest-first eviction leaves at most one dangling
       end per shard; this ring has a single shard *)
    check "at most one wrapped session per shard" true (stats.Ring.d_skipped <= 1)
  done;
  check "eviction mid-session is observable via d_skipped" true !saw_skip

(* -- the cache policy surface: pin, deny, pre-warm -- *)

let spec_a = Gen.chain ~brokers:2
let spec_b = Gen.bundle ~docs:2

let test_pin_survives_eviction_and_aging () =
  let cache = Cache.create ~capacity:1 ~shards:1 Cache.default_policy in
  (match Cache.synthesize cache spec_a with
  | Ok _, _ -> ()
  | Error e, _ -> Alcotest.fail e);
  let hex = Shape.hash_hex spec_a in
  check "pin finds the resident entry" true (Cache.pin cache hex);
  check_int "pinned gauge" 1 (Cache.pinned_count cache);
  check "pinned list carries the hex key" true (List.mem hex (Cache.pinned cache));
  (* capacity 1: inserting a second shape must evict something, and it
     cannot be the pinned entry *)
  (match Cache.synthesize cache spec_b with
  | Ok _, _ -> ()
  | Error e, _ -> Alcotest.fail e);
  (match Cache.synthesize cache spec_a with
  | Ok _, `Hit -> ()
  | Ok _, (`Miss | `Bypass) -> Alcotest.fail "pinned entry was evicted"
  | Error e, _ -> Alcotest.fail e);
  (* epoch aging sweeps idle entries but never a pinned one *)
  for _ = 1 to 5 do
    ignore (Cache.advance_epoch ~max_idle:1 cache : int)
  done;
  (match Cache.synthesize cache spec_a with
  | Ok _, `Hit -> ()
  | Ok _, (`Miss | `Bypass) -> Alcotest.fail "pinned entry was aged out"
  | Error e, _ -> Alcotest.fail e);
  check "unpin releases it" true (Cache.unpin cache hex);
  check_int "pinned gauge drops" 0 (Cache.pinned_count cache);
  ignore (Cache.advance_epoch ~max_idle:1 cache : int);
  ignore (Cache.advance_epoch ~max_idle:1 cache : int);
  match Cache.synthesize cache spec_a with
  | Ok _, `Miss -> ()
  | Ok _, (`Hit | `Bypass) -> Alcotest.fail "unpinned entry should age out normally"
  | Error e, _ -> Alcotest.fail e

let test_deny_and_allow () =
  let cache = Cache.create Cache.default_policy in
  let hex = Shape.hash_hex spec_a in
  check "nothing denied initially" true (Cache.denied_reason cache spec_a = None);
  Cache.deny cache hex;
  check "deny list carries the shape" true (Cache.denied cache = [ hex ]);
  check_int "no refusals yet" 0 (Cache.denied_count cache);
  (match Cache.denied_reason cache spec_a with
  | None -> Alcotest.fail "denied shape must refuse"
  | Some reason ->
    check "reason carries the denied: prefix" true
      (String.length reason >= 7 && String.sub reason 0 7 = "denied:");
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
      at 0
    in
    check "reason carries the diagnostic code" true
      (contains reason ("[" ^ Cache.deny_code ^ "]"));
    check "reason names the shape" true (contains reason hex));
  check_int "the refusal was counted" 1 (Cache.denied_count cache);
  check "other shapes unaffected" true (Cache.denied_reason cache spec_b = None);
  check "allow lifts the deny" true (Cache.allow cache hex);
  check "allow of an unknown shape is false" false (Cache.allow cache hex);
  check "lifted shape admits again" true (Cache.denied_reason cache spec_a = None)

let test_prewarm () =
  let cache = Cache.create Cache.default_policy in
  (match Cache.prewarm cache spec_a with
  | `Warmed -> ()
  | `Hit -> Alcotest.fail "cold cache cannot hit"
  | `Failed e -> Alcotest.fail e
  | `Uncacheable -> Alcotest.fail "chain2 is cacheable");
  check "pre-warm pins" true (List.mem (Shape.hash_hex spec_a) (Cache.pinned cache));
  (match Cache.prewarm cache spec_a with
  | `Hit -> ()
  | `Warmed | `Failed _ | `Uncacheable -> Alcotest.fail "second pre-warm must hit");
  (* the pre-warmed entry serves the first real synthesis as a hit *)
  match Cache.synthesize cache spec_a with
  | Ok _, `Hit -> ()
  | Ok _, (`Miss | `Bypass) -> Alcotest.fail "pre-warmed entry must hit"
  | Error e, _ -> Alcotest.fail e

(* -- the scheduler refuses denied shapes with the TM001 diagnostic -- *)

let test_scheduler_denies () =
  let cache = Cache.create Cache.default_policy in
  Cache.deny cache (Shape.hash_hex spec_a);
  let s = Session.make ~id:1 spec_a in
  Scheduler.process_one Scheduler.default_config cache s;
  (match s.Session.status with
  | Session.Aborted r ->
    check "abort reason is the deny diagnostic" true
      (String.length r >= 7 && String.sub r 0 7 = "denied:")
  | _ -> Alcotest.fail "denied session must abort");
  (* an undenied spec still runs normally through the same cache *)
  let ok = Session.make ~id:2 spec_b in
  Scheduler.process_one Scheduler.default_config cache ok;
  check "other shapes unaffected" true (ok.Session.status = Session.Settled)

let () =
  Alcotest.run "mine"
    [
      ( "scoreboard",
        [
          Alcotest.test_case "offline/online parity" `Quick test_offline_online_parity;
          Alcotest.test_case "jobs identity" `Quick test_jobs_identity;
          Alcotest.test_case "200-spec property" `Quick test_scoreboard_property_200;
        ] );
      ( "ring pressure",
        [ Alcotest.test_case "wrapped sessions counted" `Quick test_wrapped_sessions_counted ] );
      ( "cache policy",
        [
          Alcotest.test_case "pin survives eviction and aging" `Quick
            test_pin_survives_eviction_and_aging;
          Alcotest.test_case "deny and allow" `Quick test_deny_and_allow;
          Alcotest.test_case "pre-warm" `Quick test_prewarm;
        ] );
      ( "admission",
        [ Alcotest.test_case "scheduler refuses denied shapes" `Quick test_scheduler_denies ] );
    ]
