examples/adversary_sim.ml: Exchange List Party Printf Report String Trust_core Trust_sim Workload
