type t = { s : float; cum : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let cum = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) s);
    cum.(k) <- !total
  done;
  let z = !total in
  Array.iteri (fun i c -> cum.(i) <- c /. z) cum;
  { s; cum }

let size t = Array.length t.cum
let exponent t = t.s

let sample t rng =
  let r = Prng.float rng in
  (* first rank whose cumulative mass exceeds r; the last entry is 1.0
     (up to rounding) and [r < 1.], so the search always lands *)
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > r then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= Array.length t.cum then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then t.cum.(0) else t.cum.(k) -. t.cum.(k - 1)
