lib/workload/gen.ml: Asset Exchange List Party Printf Prng Spec
