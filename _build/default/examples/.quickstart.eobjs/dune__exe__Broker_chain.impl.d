examples/broker_chain.ml: Exchange Format Interaction List Printf String Trust_core Workload
