lib/sim/audit.mli: Engine Exchange Format Party Spec Trust_core
