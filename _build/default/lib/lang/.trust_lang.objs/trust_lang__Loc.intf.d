lib/lang/loc.mli: Format
