open Exchange
module Protocol = Trust_core.Protocol
module Execution = Trust_core.Execution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let protocol_of spec =
  match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
  | Some seq -> Protocol.synthesize seq
  | None -> Alcotest.fail "expected feasible"

let example1 = protocol_of Workload.Scenarios.example1

let test_roles_cover_actors () =
  let actors = List.map fst example1.Protocol.roles in
  List.iter
    (fun name ->
      check (name ^ " has a script") true
        (List.exists (fun p -> String.equal (Party.name p) name) actors))
    [ "c"; "b"; "p"; "t1"; "t2" ]

let test_producer_starts_immediately () =
  (* The producer's deposit opens the paper's sequence: nothing observable
     precedes it. *)
  match Protocol.script_of example1 (Party.producer "p") with
  | { Protocol.condition = Protocol.Now; action } :: _ ->
    check "sends document" true (Action.equal action (Action.give (Party.producer "p") (Party.trusted "t2") "d"))
  | _ -> Alcotest.fail "producer should act immediately"

let test_broker_waits_for_notify () =
  (* The broker buys only after a notification arrives. *)
  match Protocol.script_of example1 (Party.broker "b") with
  | { Protocol.condition = Protocol.Observed trigger; action } :: _ ->
    check "waits on a notification" true
      (match trigger with Action.Notify _ -> true | _ -> false);
    check "then pays t2" true
      (Action.equal action (Action.pay (Party.broker "b") (Party.trusted "t2") (Asset.dollars 8)))
  | _ -> Alcotest.fail "broker must wait"

let test_broker_ships_after_receiving () =
  (* The broker's second action (shipping the document to t1) is
     triggered by receiving the document from t2. *)
  match Protocol.script_of example1 (Party.broker "b") with
  | [ _; { Protocol.condition = Protocol.Observed trigger; action } ] ->
    check "triggered by receipt" true
      (Action.equal trigger (Action.give (Party.trusted "t2") (Party.broker "b") "d"));
    check "ships to t1" true
      (Action.equal action (Action.give (Party.broker "b") (Party.trusted "t1") "d"))
  | steps -> Alcotest.failf "broker script has %d steps" (List.length steps)

let test_observes () =
  let b = Party.broker "b" and t1 = Party.trusted "t1" and c = Party.consumer "c" in
  check "target observes" true (Protocol.observes b (Action.give t1 b "d"));
  check "performer observes" true (Protocol.observes t1 (Action.give t1 b "d"));
  check "informed observes notify" true
    (Protocol.observes b (Action.notify ~agent:t1 ~informed:b));
  check "stranger does not" false (Protocol.observes c (Action.give t1 b "d"))

let test_script_of_absent_party () =
  check_int "no script, empty list" 0
    (List.length (Protocol.script_of example1 (Party.consumer "stranger")))

let prop_conditions_observable =
  QCheck2.Test.make
    ~name:"every trigger is observable by the party that waits on it" ~count:150 QCheck2.Gen.int
    (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> true
      | Some seq ->
        let protocol = Protocol.synthesize seq in
        List.for_all
          (fun (party, steps) ->
            List.for_all
              (fun step ->
                match step.Protocol.condition with
                | Protocol.Now -> true
                | Protocol.Observed trigger ->
                  Protocol.observes party trigger
                  && not (Party.equal (Action.performer trigger) party))
              steps)
          protocol.Protocol.roles)

let prop_scripts_partition_sequence =
  QCheck2.Test.make ~name:"scripts partition the execution sequence by performer" ~count:150
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> true
      | Some seq ->
        let protocol = Protocol.synthesize seq in
        let scripted =
          List.concat_map (fun (_, steps) -> List.map (fun s -> s.Protocol.action) steps)
            protocol.Protocol.roles
        in
        List.length scripted = Execution.message_count seq
        && List.for_all
             (fun (party, steps) ->
               List.for_all
                 (fun s -> Party.equal (Action.performer s.Protocol.action) party)
                 steps)
             protocol.Protocol.roles)

let () =
  Alcotest.run "protocol"
    [
      ( "synthesis",
        [
          Alcotest.test_case "roles cover all actors" `Quick test_roles_cover_actors;
          Alcotest.test_case "producer starts immediately" `Quick test_producer_starts_immediately;
          Alcotest.test_case "broker waits for notify" `Quick test_broker_waits_for_notify;
          Alcotest.test_case "broker ships after receipt" `Quick test_broker_ships_after_receiving;
          Alcotest.test_case "observability" `Quick test_observes;
          Alcotest.test_case "absent party" `Quick test_script_of_absent_party;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_conditions_observable; prop_scripts_partition_sequence ] );
    ]
