test/test_feasibility.ml: Alcotest Asset Exchange Int64 List Party QCheck2 QCheck_alcotest Trust_core Workload
