lib/sim/trace.mli: Action Asset Engine Exchange Format Party Spec State
