let is_numeric cell =
  cell <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '$' || c = '%' || c = 'x')
       cell

let pad_row width row = row @ List.init (max 0 (width - List.length row)) (fun _ -> "")

let render ~header rows =
  let width = List.length header in
  let rows = List.map (pad_row width) rows in
  let all = header :: rows in
  let col_width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init width col_width in
  let render_cell i cell =
    let w = List.nth widths i in
    let padding = String.make (w - String.length cell) ' ' in
    if is_numeric cell then padding ^ cell else cell ^ padding
  in
  let render_row row = "| " ^ String.concat " | " (List.mapi render_cell row) ^ " |" in
  let rule = "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|" in
  String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let print ~header rows = print_string (render ~header rows)

let section title =
  let rule = String.make (max 4 (72 - String.length title - 6)) '=' in
  Printf.printf "\n==== %s %s\n\n" title rule

let kv pairs =
  let key_width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  String.concat ""
    (List.map
       (fun (k, v) -> Printf.sprintf "  %s%s : %s\n" k (String.make (key_width - String.length k) ' ') v)
       pairs)

let money cents =
  if cents mod 100 = 0 then Printf.sprintf "$%d" (cents / 100)
  else Printf.sprintf "$%d.%02d" (cents / 100) (abs cents mod 100)
