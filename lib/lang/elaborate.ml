open Exchange

type error = { message : string; loc : Loc.t }

let pp_error ?file ppf e =
  Format.fprintf ppf "%a: %s" (Loc.pp_located ?file) e.loc e.message

let compare_error a b =
  match Loc.compare a.loc b.loc with
  | 0 -> String.compare a.message b.message
  | c -> c

let sort_errors errors = List.stable_sort compare_error errors

type env = {
  mutable parties : (string * Party.t) list;  (* declaration order, reversed *)
  mutable errors : error list;
}

let err env loc fmt =
  Format.kasprintf (fun message -> env.errors <- { message; loc } :: env.errors) fmt

let declare env (name : string Loc.located) party =
  if List.mem_assoc name.Loc.value env.parties then
    err env name.Loc.loc "party %s declared twice" name.Loc.value
  else env.parties <- env.parties @ [ (name.Loc.value, party) ]

let lookup env (name : string Loc.located) =
  match List.assoc_opt name.Loc.value env.parties with
  | Some party -> Some party
  | None ->
    err env name.Loc.loc "undeclared party %s" name.Loc.value;
    None

let lookup_principal env name =
  match lookup env name with
  | Some party when Party.is_principal party -> Some party
  | Some party ->
    err env name.Loc.loc "%s is a trusted agent, expected a principal" (Party.name party);
    None
  | None -> None

let lookup_trusted env name =
  match lookup env name with
  | Some party when Party.is_trusted party -> Some party
  | Some party ->
    err env name.Loc.loc "%s is a principal, expected a trusted agent" (Party.name party);
    None
  | None -> None

let role_of = function
  | Ast.Consumer -> Intern.consumer
  | Ast.Producer -> Intern.producer
  | Ast.Broker -> Intern.broker

let asset_of = function
  | Ast.Pays cents -> Intern.money cents
  | Ast.Gives doc -> Intern.document doc

let side_of = function Ast.Buyer -> Spec.Left | Ast.Seller -> Spec.Right

let cref_of env deals (c : Ast.cref) =
  if not (List.exists (fun (d : Spec.deal) -> String.equal d.Spec.id c.Ast.deal.Loc.value) deals)
  then err env c.Ast.deal.Loc.loc "unknown deal %s" c.Ast.deal.Loc.value;
  { Spec.deal = c.Ast.deal.Loc.value; side = side_of c.Ast.side }

let program decls =
  let env = { parties = []; errors = [] } in
  (* Pass 1: declarations. *)
  List.iter
    (function
      | Ast.Principal { name; role } -> declare env name (role_of role name.Loc.value)
      | Ast.Trusted name -> declare env name (Intern.trusted name.Loc.value)
      | Ast.Deal _ | Ast.Priority _ | Ast.Split _ | Ast.Trust _ | Ast.Persona _ -> ()
      | Ast.Relay name | Ast.Request { id = name; _ } ->
        err env name.Loc.loc "web declarations need a web program (requests present)")
    decls;
  (* Pass 2: deals. *)
  let deals =
    List.filter_map
      (function
        | Ast.Deal { id; first; second; via; deadline } -> (
          let left = lookup_principal env first.Ast.party in
          let right = lookup_principal env second.Ast.party in
          let via_party = lookup_trusted env via in
          match (left, right, via_party) with
          | Some left, Some right, Some via ->
            let d =
              Spec.deal ~id:id.Loc.value ~left ~right ~via
                ~left_sends:(asset_of first.Ast.asset)
                ~right_sends:(asset_of second.Ast.asset)
            in
            Some
              (match deadline with Some n -> Spec.with_deadline n d | None -> d)
          | _ -> None)
        | _ -> None)
      decls
  in
  (* Pass 3: marks and personas. *)
  let priorities = ref [] and splits = ref [] and personas = ref [] in
  List.iter
    (function
      | Ast.Priority { owner; target } -> (
        match lookup env owner with
        | Some party -> priorities := !priorities @ [ (party, cref_of env deals target) ]
        | None -> ())
      | Ast.Split { owner; target } -> (
        match lookup env owner with
        | Some party -> splits := !splits @ [ (party, cref_of env deals target) ]
        | None -> ())
      | Ast.Persona { trusted; principal } -> (
        match (lookup_trusted env trusted, lookup_principal env principal) with
        | Some t, Some p -> personas := !personas @ [ (t, p) ]
        | _ -> ())
      | Ast.Trust { truster; trustee } -> (
        match (lookup_principal env truster, lookup_principal env trustee) with
        | Some a, Some b ->
          let joining =
            List.filter
              (fun (d : Spec.deal) ->
                (Party.equal d.Spec.left a && Party.equal d.Spec.right b)
                || (Party.equal d.Spec.left b && Party.equal d.Spec.right a))
              deals
          in
          if joining = [] then
            err env truster.Loc.loc "trust %s -> %s joins no deal" truster.Loc.value
              trustee.Loc.value
          else
            List.iter (fun (d : Spec.deal) -> personas := !personas @ [ (d.Spec.via, b) ]) joining
        | _ -> ())
      | Ast.Principal _ | Ast.Trusted _ | Ast.Deal _ | Ast.Relay _ | Ast.Request _ -> ())
    decls;
  match List.rev env.errors with
  | _ :: _ as errors -> Error (sort_errors errors)
  | [] -> (
    match Spec.make ~personas:!personas ~priorities:!priorities ~splits:!splits deals with
    | Ok spec -> Ok spec
    | Error messages ->
      Error (List.map (fun message -> { message; loc = Loc.start }) messages))

type web = {
  trusts : (Party.t * Party.t) list;
  relays : Party.t list;
  requests : (string * Party.t * string * Party.t * Asset.money) list;
}

let is_web decls = List.exists (function Ast.Request _ -> true | _ -> false) decls

let web decls =
  let env = { parties = []; errors = [] } in
  List.iter
    (function
      | Ast.Principal { name; role } -> declare env name (role_of role name.Loc.value)
      | Ast.Trusted name -> declare env name (Intern.trusted name.Loc.value)
      | Ast.Deal { id; _ } ->
        err env id.Loc.loc "web programs route requests; explicit deals are not allowed"
      | Ast.Priority { owner; _ } | Ast.Split { owner; _ } ->
        err env owner.Loc.loc "priorities and splits come from routing in a web program"
      | Ast.Persona { trusted; _ } ->
        err env trusted.Loc.loc "personas come from trust edges in a web program"
      | Ast.Trust _ | Ast.Relay _ | Ast.Request _ -> ())
    decls;
  let trusts = ref [] and relays = ref [] and requests = ref [] in
  let seen_requests = ref [] in
  List.iter
    (function
      | Ast.Trust { truster; trustee } -> (
        match (lookup env truster, lookup env trustee) with
        | Some a, Some b ->
          if Party.is_trusted a then
            err env truster.Loc.loc "a trusted agent cannot be a truster"
          else trusts := !trusts @ [ (a, b) ]
        | _ -> ())
      | Ast.Relay name -> (
        match lookup_principal env name with
        | Some p -> relays := !relays @ [ p ]
        | None -> ())
      | Ast.Request { id; buyer; good; seller; price } -> (
        if List.mem id.Loc.value !seen_requests then
          err env id.Loc.loc "request %s declared twice" id.Loc.value
        else seen_requests := id.Loc.value :: !seen_requests;
        match (lookup_principal env buyer, lookup_principal env seller) with
        | Some b, Some s -> requests := !requests @ [ (id.Loc.value, b, good, s, price) ]
        | _ -> ())
      | Ast.Principal _ | Ast.Trusted _ | Ast.Deal _ | Ast.Priority _ | Ast.Split _
      | Ast.Persona _ -> ())
    decls;
  (if !requests = [] then
     err env Loc.start "a web program needs at least one request");
  match List.rev env.errors with
  | _ :: _ as errors -> Error (sort_errors errors)
  | [] -> Ok { trusts = !trusts; relays = !relays; requests = !requests }

let render_errors ?file errors =
  String.concat "\n" (List.map (fun e -> Format.asprintf "%a" (pp_error ?file) e) errors)

module Obs = Trust_obs.Obs

(* Tracing wrappers for the two front-end phases. Spans carry virtual
   sizes only (bytes in, declaration counts, error counts), so traces
   stay deterministic; the null sink records nothing. *)
let traced_parse obs parent src =
  Obs.with_span obs ?parent ~phase:"parse" "parse" (fun h ->
      let r = Parser.parse src in
      if Obs.enabled obs then begin
        Obs.attr obs h "bytes" (Obs.Int (String.length src));
        match r with
        | Ok ast -> Obs.attr obs h "decls" (Obs.Int (List.length ast))
        | Error _ -> Obs.attr obs h "error" (Obs.Bool true)
      end;
      r)

let traced_elaborate obs parent ast =
  Obs.with_span obs ?parent ~phase:"elaborate" "elaborate" (fun h ->
      let r = program ast in
      if Obs.enabled obs then begin
        match r with
        | Ok spec ->
          Obs.attr obs h "parties" (Obs.Int (List.length (Spec.parties spec)));
          Obs.attr obs h "deals" (Obs.Int (List.length spec.Spec.deals))
        | Error errors -> Obs.attr obs h "errors" (Obs.Int (List.length errors))
      end;
      r)

let from_string ?(obs = Obs.null) ?parent ?file src =
  match traced_parse obs parent src with
  | Error e -> Error (Format.asprintf "%a" (Parser.pp_error ?file) e)
  | Ok ast -> (
    match traced_elaborate obs parent ast with
    | Ok spec -> Ok spec
    | Error errors -> Error (render_errors ?file errors))

let from_file ?obs ?parent path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> from_string ?obs ?parent ~file:path src
  | exception Sys_error message -> Error message

let web_from_string ?file src =
  match Parser.parse src with
  | Error e -> Error (Format.asprintf "%a" (Parser.pp_error ?file) e)
  | Ok ast -> (
    match web ast with
    | Ok w -> Ok w
    | Error errors -> Error (render_errors ?file errors))

let web_from_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> web_from_string ~file:path src
  | exception Sys_error message -> Error message
