lib/exchange/asset.ml: Format Int List Map Option Set Stdlib String
