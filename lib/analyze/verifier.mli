(** Independent safety check over execution sequences (paper §5).

    Replays a synthesized {!Trust_core.Execution.sequence} step by step
    and checks the protection invariant for every party: whenever an
    intermediary releases a principal's asset to the counterpart, the
    principal must either already hold what it expects in return, or
    the counterpart's asset must still sit with the deal's trusted
    agent (secured, hence deliverable). Assets handed to a persona the
    principal explicitly trusts (§4.2.3) count as delivered — misplaced
    trust is outside the model. At termination no party may be left
    having given without having received.

    The pass shares no code with the synthesizer: it pattern-matches
    raw transfers against the spec's commitments, so a bug in
    {!Trust_core.Execution} cannot vouch for itself. *)

open Exchange

type exposure = {
  step : int;
      (** 1-based index of the offending step; [0] for exposures only
          visible at termination *)
  party : Party.t;  (** the party left unprotected *)
  deal : string;
  side : Spec.side;
  at_risk : Asset.t;  (** what the party stands to lose *)
  reason : string;
}

val verify : Trust_core.Execution.sequence -> (unit, exposure list) result
(** Replay and check. [Error] lists every exposure found, in step
    order. *)

val verify_spec :
  ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> ?shared:bool -> Spec.t ->
  (unit, exposure list) result
(** Synthesize the spec's execution sequence (via
    {!Trust_core.Feasibility.analyze}) and {!verify} it. Infeasible
    specs verify vacuously — there is no sequence to check.
    [obs]/[parent] attach a ["verify"] span (steps, safety verdict,
    exposure count) to a trace; the default null sink records
    nothing. *)

val explain : exposure list -> string
(** Per-party grouping: one header line per exposed party, one indented
    line per exposure. *)

val pp_exposure : Format.formatter -> exposure -> unit
