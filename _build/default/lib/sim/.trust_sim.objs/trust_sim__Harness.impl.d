lib/sim/harness.ml: Action Asset Behavior Engine Exchange Format List Option Party Result Spec Trust_core
