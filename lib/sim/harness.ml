open Exchange
module Protocol = Trust_core.Protocol
module Indemnity = Trust_core.Indemnity
module Feasibility = Trust_core.Feasibility
module Obs = Trust_obs.Obs

type mode = Lockstep | Distributed

type cast = {
  spec : Spec.t;
  plan : Indemnity.plan option;
  mode : mode;
  protocol : Protocol.t;
  behaviors : Behavior.t list;
}

type defection = Silent | Partial of int

let defectable_principals spec =
  let personas =
    Party.Map.fold (fun _ principal acc -> principal :: acc) spec.Spec.personas []
  in
  List.filter
    (fun p -> not (List.exists (Party.equal p) personas))
    (Spec.principals spec)

let deposit_actions plan =
  match plan with
  | None -> []
  | Some plan -> Indemnity.deposits plan

(* Distributed mode prepends unconditional deposits to each offerer's
   script; lockstep mode chains them through the protocol prologue. *)
let distributed_deposit_steps plan party =
  List.filter_map
    (fun action ->
      if Party.equal (Action.performer action) party then
        Some Protocol.{ condition = Now; action }
      else None)
    (deposit_actions plan)

(* Behaviours are single-run stateful machines, so anything that reuses
   a synthesized protocol (notably the serve-layer protocol cache) must
   rebuild them per run; [assemble] shares this constructor. [split_spec]
   is the spec the protocol was synthesized from, i.e. after the plan's
   indemnity splits were applied. *)
let behaviors_for ?(shared = false) ?plan ?(defectors = []) ~mode split_spec protocol =
  let offers = match plan with Some p -> p.Indemnity.offers | None -> [] in
  let defection_of party =
    List.find_map
      (fun (p, d) -> if Party.equal p party then Some d else None)
      defectors
  in
  let principal_behavior party =
    let script =
      match mode with
      | Lockstep -> Protocol.script_of protocol party
      | Distributed -> distributed_deposit_steps plan party @ Protocol.script_of protocol party
    in
    let plays_a_role =
      Party.Map.exists (fun _ p -> Party.equal p party) split_spec.Spec.personas
    in
    let add_duties inner =
      if plays_a_role then Behavior.with_persona_duties split_spec party inner else inner
    in
    match defection_of party with
    | None -> add_duties (Behavior.scripted party script)
    | Some Silent -> Behavior.silent party
    | Some (Partial keep) -> Behavior.partial party script ~keep
  in
  let trusted_behavior party =
    match Spec.persona_of split_spec party with
    | Some _ -> None (* the persona principal acts; no separate agent *)
    | None ->
      let notifies =
        List.filter
          (fun step ->
            match step.Protocol.action with Action.Notify _ -> true | _ -> false)
          (Protocol.script_of protocol party)
      in
      (* Atomic when it coordinates a bundle (§9 / Rule #3), or — in
         the paper's monolithic reading, i.e. without [shared] — for
         any multi-deal agent, whose single conjunction makes its
         deals all-or-nothing by definition. *)
      let coordinates =
        List.exists
          (fun (_, agent) -> Party.equal agent party)
          (Trust_core.Sequencing.coordinated_bundles split_spec)
      in
      let mediates =
        List.length (List.filter (fun d -> Party.equal d.Spec.via party) split_spec.Spec.deals)
      in
      let atomic = coordinates || ((not shared) && mediates > 1) in
      Some (Behavior.escrow ~atomic split_spec party ~notifies ~indemnities:offers)
  in
  List.map principal_behavior (Spec.principals split_spec)
  @ List.filter_map trusted_behavior (Spec.trusted_agents split_spec)

let assemble ?(obs = Obs.null) ?parent ?(mode = Lockstep) ?(shared = false) ?plan
    ?(defectors = []) spec =
  Obs.with_span obs ?parent ~phase:"route" "route.assemble" (fun h ->
  let split_spec =
    match plan with Some plan -> Indemnity.apply plan spec | None -> spec
  in
  let analysis = Feasibility.analyze ~shared split_spec in
  let outcome =
    match analysis.Feasibility.sequence with
    | None -> Error "infeasible: no protocol can be synthesized"
    | Some sequence -> (
      (* Independent safety pass (§5 protection invariant) over every
         sequence we are about to hand to behaviours: the synthesizer is
         never its own witness. *)
      match Trust_analyze.Verifier.verify sequence with
      | Error exposures ->
        Error
          (Printf.sprintf "unsafe execution sequence:\n%s"
             (Trust_analyze.Verifier.explain exposures))
      | Ok () ->
      let protocol =
        match mode with
        | Lockstep -> Protocol.synthesize_lockstep ~prologue:(deposit_actions plan) sequence
        | Distributed -> Protocol.synthesize sequence
      in
      let behaviors = behaviors_for ~shared ?plan ~defectors ~mode split_spec protocol in
      Ok { spec = split_spec; plan; mode; protocol; behaviors })
  in
  if Obs.enabled obs then begin
    Obs.attr obs h "mode"
      (Obs.Str (match mode with Lockstep -> "lockstep" | Distributed -> "distributed"));
    match outcome with
    | Ok cast ->
      Obs.attr obs h "behaviors" (Obs.Int (List.length cast.behaviors));
      Obs.attr obs h "indemnified" (Obs.Bool (cast.plan <> None))
    | Error reason ->
      Obs.attr obs h "error" (Obs.Str reason)
  end;
  outcome)

let config_for cast config =
  let base = Option.value ~default:Engine.default_config config in
  match cast.mode with
  | Lockstep -> { base with Engine.broadcast = true }
  | Distributed -> base

let run_cast ?config ?(obs = Obs.null) ?parent cast =
  let deposits = match cast.plan with Some p -> p.Indemnity.offers | None -> [] in
  Obs.with_span obs ?parent ~phase:"simulate" "simulate" (fun h ->
      let result =
        Engine.run ~config:(config_for cast config) ~obs ~span:h cast.spec ~deposits
          ~behaviors:cast.behaviors
      in
      if Obs.enabled obs then begin
        Obs.attr obs h "events" (Obs.Int result.Engine.events);
        Obs.attr obs h "deliveries" (Obs.Int (List.length result.Engine.log));
        Obs.attr obs h "stalled" (Obs.Int (List.length result.Engine.stalled));
        let x = Exposure.of_result ?plan:cast.plan cast.spec result in
        Obs.attr obs h "exposure_peak_at_risk" (Obs.Int (Exposure.total_peak_at_risk x));
        Obs.attr obs h "exposure_peak_escrow" (Obs.Int (Exposure.total_peak_escrow x))
      end;
      result)

let honest_run ?config ?obs ?parent ?mode ?shared ?plan spec =
  Result.map (run_cast ?config ?obs ?parent) (assemble ?obs ?parent ?mode ?shared ?plan spec)

let adversarial_run ?config ?obs ?parent ?mode ?shared ?plan ~defectors spec =
  Result.map
    (run_cast ?config ?obs ?parent)
    (assemble ?obs ?parent ?mode ?shared ?plan ?defectors:(Some defectors) spec)

(* §8's universal-intermediary protocol (see the interface). *)
let universal_run ?config ?(defectors = []) spec =
  let uni = Trust_core.Cost.with_universal_intermediary spec in
  let star =
    match Spec.trusted_agents uni with
    | [ star ] -> star
    | _ -> invalid_arg "universal_run: transform must yield a single agent"
  in
  let defection_of party =
    List.find_map (fun (p, d) -> if Party.equal p party then Some d else None) defectors
  in
  let script_for party =
    List.filter_map
      (fun (cref, d) ->
        if not (Party.equal (Spec.commitment_principal d cref.Spec.side) party) then None
        else begin
          let asset = Spec.commitment_sends d cref.Spec.side in
          let deposit = Action.Do Action.{ source = party; target = star; asset } in
          let endowed =
            match asset with
            | Asset.Money _ -> true
            | Asset.Document _ ->
              not
                (List.exists
                   (fun (cref', d') ->
                     Party.equal (Spec.commitment_principal d' cref'.Spec.side) party
                     && Asset.equal (Spec.commitment_expects d' cref'.Spec.side) asset)
                   (Spec.commitments uni))
          in
          let condition =
            if endowed then Protocol.Now
            else
              Protocol.Observed
                (Action.Do Action.{ source = star; target = party; asset })
          in
          Some Protocol.{ condition; action = deposit }
        end)
      (Spec.commitments uni)
  in
  let principal_behavior party =
    match defection_of party with
    | None -> Behavior.scripted party (script_for party)
    | Some Silent -> Behavior.silent party
    | Some (Partial keep) -> Behavior.partial party (script_for party) ~keep
  in
  let behaviors =
    List.map principal_behavior (Spec.principals uni) @ [ Behavior.coordinator uni star ]
  in
  (Engine.run ?config uni ~deposits:[] ~behaviors, uni)

let pp_cast ppf cast =
  Format.fprintf ppf "@[<v>cast over %d behaviours@,%a@]" (List.length cast.behaviors)
    Protocol.pp cast.protocol
