test/test_execution.mli:
