lib/workload/scenarios.mli: Action Asset Exchange Party Spec
