(** One exchange session: a single spec travelling through the service.

    The lifecycle is explicit and enforced:

    {v Queued → Synthesizing → Running → Settled | Aborted | Expired v}

    plus [Expired → Queued] when the scheduler requeues a session for
    its single retry after a fault-injected run. Any other transition
    is a bug and raises.

    - [Settled]: the run completed and the audit reached every party's
      preferred outcome.
    - [Aborted]: synthesis failed — the spec is infeasible and the
      rescue policy could not (or was not allowed to) fix it.
    - [Expired]: the run ended without settling — a defector or a
      dropped delivery stalled the protocol and the escrow deadline
      unwound it. *)

open Exchange

type status =
  | Queued
  | Synthesizing
  | Running
  | Settled
  | Aborted of string  (** the synthesis error *)
  | Expired

type t = {
  id : int;
  spec : Spec.t;
  defectors : (Party.t * Trust_sim.Harness.defection) list;
  mutable status : status;
  mutable attempts : int;  (** engine runs started *)
  mutable cache_hit : bool;  (** last synthesis was served from the cache *)
  mutable started_at : int;  (** virtual lane time at admission *)
  mutable finished_at : int;  (** virtual lane time at completion *)
  mutable ticks : int;  (** virtual duration of all runs (≥ 1 once terminal) *)
  mutable events : int;  (** engine events across runs *)
  mutable stalled : int;  (** parked-forever actions in the last run *)
  mutable exposure_peak : int;  (** max peak at-risk cents over all runs *)
  mutable exposure_ticks : int;  (** at-risk ticks summed over runs *)
  mutable exposure_violations : int;  (** §5 bound violations summed over runs *)
}

val make : id:int -> ?defectors:(Party.t * Trust_sim.Harness.defection) list -> Spec.t -> t

val transition : t -> status -> unit
(** @raise Invalid_argument on a transition the lifecycle does not allow. *)

val is_terminal : status -> bool
val status_label : status -> string
(** ["queued" | "synthesizing" | "running" | "settled" | "aborted" | "expired"]. *)

val pp : Format.formatter -> t -> unit
