(* Structured tracing with deterministic virtual timestamps: one
   monotonic counter per trace ticks on every span begin/end and event,
   so exports depend only on the instrumented computation — never on
   wall time or domain scheduling. Wall instants and scheduling facts
   are kept on the side (never exported), mirroring the
   Metrics/Service.wall_line quarantine. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event_view = { ev_name : string; ev_vt : int; ev_attrs : (string * value) list }
type ev = event_view

type sp = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_phase : string;
  sp_start : int;
  mutable sp_stop : int;  (* -1 while open *)
  mutable sp_attrs : (string * value) list;  (* reversed *)
  mutable sp_vattrs : (string * value) list;  (* volatile: reversed, never exported *)
  mutable sp_events : ev list;  (* reversed *)
  sp_wall_start : float;
  mutable sp_wall_stop : float;
}

type trace = {
  tr_session : int;
  mutable tr_clock : int;
  mutable tr_next : int;
  mutable tr_spans : sp list;  (* reversed creation order *)
}

type t = Null | Active of trace
type handle = sp option

let null = Null
let none : handle = None

let create ?(session = 0) () =
  Active { tr_session = session; tr_clock = 0; tr_next = 0; tr_spans = [] }

let enabled = function Null -> false | Active _ -> true
let session = function Null -> 0 | Active tr -> tr.tr_session
let clock = function Null -> 0 | Active tr -> tr.tr_clock

let tick tr =
  let c = tr.tr_clock in
  tr.tr_clock <- c + 1;
  c

let span t ?(parent = none) ~phase name : handle =
  match t with
  | Null -> None
  | Active tr ->
    let sp =
      {
        sp_id = tr.tr_next;
        sp_parent = (match parent with Some p -> Some p.sp_id | None -> None);
        sp_name = name;
        sp_phase = phase;
        sp_start = tick tr;
        sp_stop = -1;
        sp_attrs = [];
        sp_vattrs = [];
        sp_events = [];
        sp_wall_start = Unix.gettimeofday ();
        sp_wall_stop = nan;
      }
    in
    tr.tr_next <- tr.tr_next + 1;
    tr.tr_spans <- sp :: tr.tr_spans;
    Some sp

let finish t h =
  match (t, h) with
  | Active tr, Some sp ->
    sp.sp_stop <- tick tr;
    sp.sp_wall_stop <- Unix.gettimeofday ()
  | (Null | Active _), _ -> ()

let with_span t ?parent ~phase name f =
  match t with
  | Null -> f none
  | Active _ ->
    let h = span t ?parent ~phase name in
    Fun.protect ~finally:(fun () -> finish t h) (fun () -> f h)

let event t h ?(attrs = []) name =
  match (t, h) with
  | Active tr, Some sp ->
    sp.sp_events <- { ev_name = name; ev_vt = tick tr; ev_attrs = attrs } :: sp.sp_events
  | (Null | Active _), _ -> ()

let attr t h k v =
  match (t, h) with
  | Active _, Some sp -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
  | (Null | Active _), _ -> ()

let volatile_attr t h k v =
  match (t, h) with
  | Active _, Some sp -> sp.sp_vattrs <- (k, v) :: sp.sp_vattrs
  | (Null | Active _), _ -> ()

let first_root t : handle =
  match t with
  | Null -> None
  | Active tr ->
    List.fold_left
      (fun acc sp -> if sp.sp_parent = None then Some sp else acc)
      None tr.tr_spans

let wall_seconds t =
  match t with
  | Null -> 0.
  | Active tr ->
    List.fold_left
      (fun acc sp ->
        if Float.is_nan sp.sp_wall_stop then acc
        else max acc (sp.sp_wall_stop -. sp.sp_wall_start))
      0. tr.tr_spans

(* Batch registry: one slot per session, each written by exactly one
   pool job; the scheduler's shutdown join publishes the slots before
   the merge phase (and any export) reads them. *)

type batch = Disabled | Slots of trace option array

let no_batch = Disabled
let batch ~enabled ~sessions = if enabled then Slots (Array.make (max 0 sessions) None) else Disabled
let batch_enabled = function Disabled -> false | Slots _ -> true

let session_trace b i =
  match b with
  | Disabled -> Null
  | Slots slots ->
    if i < 0 || i >= Array.length slots then Null
    else (
      match slots.(i) with
      | Some tr -> Active tr
      | None ->
        let tr = { tr_session = i; tr_clock = 0; tr_next = 0; tr_spans = [] } in
        slots.(i) <- Some tr;
        Active tr)

let batch_traces = function
  | Disabled -> []
  | Slots slots ->
    Array.to_list slots |> List.filter_map (Option.map (fun tr -> Active tr))

(* Exporters *)

type format = Jsonl | Chrome | Tree | Folded

let format_names = [ "jsonl"; "chrome"; "tree"; "folded" ]

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | "tree" -> Some Tree
  | "folded" -> Some Folded
  | _ -> None

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6f" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> if b then "true" else "false"

let value_text = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6f" f
  | Str s -> s
  | Bool b -> if b then "true" else "false"

let attrs_json attrs =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v)) attrs)

let live ts = List.filter_map (function Null -> None | Active tr -> Some tr) ts

let span_order tr = List.rev tr.tr_spans
let event_order sp = List.rev sp.sp_events
let attr_order sp = List.rev sp.sp_attrs

(* Span views: the exporters' eye view of a trace, made public so the
   analysis layer computes over in-memory traces and re-parsed JSONL
   with the same code. Volatile attrs are dropped here, once. *)

type span_view = {
  view_session : int;
  view_id : int;
  view_parent : int option;
  view_phase : string;
  view_name : string;
  view_start : int;
  view_stop : int;
  view_attrs : (string * value) list;
  view_events : event_view list;
}

let views = function
  | Null -> []
  | Active tr ->
    List.map
      (fun sp ->
        {
          view_session = tr.tr_session;
          view_id = sp.sp_id;
          view_parent = sp.sp_parent;
          view_phase = sp.sp_phase;
          view_name = sp.sp_name;
          view_start = sp.sp_start;
          view_stop = sp.sp_stop;
          view_attrs = attr_order sp;
          view_events = event_order sp;
        })
      (span_order tr)

(* The inverse of [views], for offline decoders (Ring): rebuild an
   Active trace from span views so the byte-for-byte exporters above
   re-emit exactly what the original trace would have. Volatile attrs
   and wall instants are gone by construction — no exporter ever
   rendered them. [clock] restores the tree header's vt range. *)
let of_views ~session ~clock views =
  let spans =
    List.map
      (fun v ->
        {
          sp_id = v.view_id;
          sp_parent = v.view_parent;
          sp_name = v.view_name;
          sp_phase = v.view_phase;
          sp_start = v.view_start;
          sp_stop = v.view_stop;
          sp_attrs = List.rev v.view_attrs;
          sp_vattrs = [];
          sp_events = List.rev v.view_events;
          sp_wall_start = nan;
          sp_wall_stop = nan;
        })
      views
  in
  let next = List.fold_left (fun acc sp -> max acc (sp.sp_id + 1)) 0 spans in
  Active { tr_session = session; tr_clock = clock; tr_next = next; tr_spans = List.rev spans }

let jsonl ?producer ts =
  let buf = Buffer.create 4096 in
  (match producer with
  | Some p -> Buffer.add_string buf (Printf.sprintf "{\"type\":\"meta\",\"producer\":\"%s\"}\n" (json_escape p))
  | None -> ());
  List.iter
    (fun tr ->
      List.iter
        (fun sp ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"span\",\"session\":%d,\"id\":%d,\"parent\":%s,\"phase\":\"%s\",\"name\":\"%s\",\"start\":%d,\"stop\":%d,\"attrs\":{%s}}\n"
               tr.tr_session sp.sp_id
               (match sp.sp_parent with Some p -> string_of_int p | None -> "null")
               (json_escape sp.sp_phase) (json_escape sp.sp_name) sp.sp_start sp.sp_stop
               (attrs_json (attr_order sp)));
          List.iter
            (fun e ->
              Buffer.add_string buf
                (Printf.sprintf
                   "{\"type\":\"event\",\"session\":%d,\"span\":%d,\"vt\":%d,\"name\":\"%s\",\"attrs\":{%s}}\n"
                   tr.tr_session sp.sp_id e.ev_vt (json_escape e.ev_name)
                   (attrs_json e.ev_attrs)))
            (event_order sp))
        (span_order tr))
    ts;
  Buffer.contents buf

let chrome ?producer ts =
  let entries = ref [] in
  let push s = entries := s :: !entries in
  List.iter
    (fun tr ->
      (match producer with
      | Some p ->
        push
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
             tr.tr_session (json_escape p))
      | None -> ());
      List.iter
        (fun sp ->
          let stop = if sp.sp_stop < 0 then sp.sp_start else sp.sp_stop in
          push
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":0,\"args\":{%s}}"
               (json_escape sp.sp_name) (json_escape sp.sp_phase) sp.sp_start
               (stop - sp.sp_start) tr.tr_session
               (attrs_json (attr_order sp)));
          List.iter
            (fun e ->
              push
                (Printf.sprintf
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%d,\"pid\":%d,\"tid\":0,\"s\":\"t\",\"args\":{%s}}"
                   (json_escape e.ev_name) (json_escape sp.sp_phase) e.ev_vt tr.tr_session
                   (attrs_json e.ev_attrs)))
            (event_order sp))
        (span_order tr))
    ts;
  "[" ^ String.concat ",\n " (List.rev !entries) ^ "]\n"

let tree ts =
  let buf = Buffer.create 4096 in
  List.iter
    (fun tr ->
      Buffer.add_string buf (Printf.sprintf "trace session=%d (vt 0..%d)\n" tr.tr_session tr.tr_clock);
      let spans = span_order tr in
      let children id = List.filter (fun sp -> sp.sp_parent = Some id) spans in
      let rec render prefix sp =
        let attrs =
          match attr_order sp with
          | [] -> ""
          | attrs ->
            " "
            ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_text v)) attrs)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s [%s] vt %d..%s%s\n" prefix sp.sp_name sp.sp_phase sp.sp_start
             (if sp.sp_stop < 0 then "?" else string_of_int sp.sp_stop)
             attrs);
        List.iter
          (fun e ->
            let attrs =
              match e.ev_attrs with
              | [] -> ""
              | attrs ->
                " "
                ^ String.concat " "
                    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_text v)) attrs)
            in
            Buffer.add_string buf
              (Printf.sprintf "%s  . %s vt=%d%s\n" prefix e.ev_name e.ev_vt attrs))
          (event_order sp);
        List.iter (render (prefix ^ "  ")) (children sp.sp_id)
      in
      List.iter (fun sp -> if sp.sp_parent = None then render "  " sp) spans)
    ts;
  Buffer.contents buf

(* Folded stacks (flamegraph input): one line per span, the frame stack
   from root to span joined with ';' followed by the span's self virtual
   time. Children occupy disjoint vt sub-ranges of their parent (the
   clock is per-trace monotonic), so self time is never negative on
   finished spans and one session's counts sum back to its root
   durations. Separators are escaped so a name containing ';' cannot
   forge a stack level. *)

let folded_frame name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | ';' -> Buffer.add_string buf "\\;"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | ' ' -> Buffer.add_char buf '_'
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

let render_folded vs =
  let buf = Buffer.create 4096 in
  let sessions =
    List.fold_left
      (fun acc v -> if List.mem v.view_session acc then acc else v.view_session :: acc)
      [] vs
    |> List.rev
  in
  List.iter
    (fun s ->
      let vs = List.filter (fun v -> v.view_session = s) vs in
      let by_id = Hashtbl.create 64 in
      List.iter (fun v -> Hashtbl.replace by_id v.view_id v) vs;
      let dur v = if v.view_stop < 0 then 0 else v.view_stop - v.view_start in
      let child_vt = Hashtbl.create 64 in
      List.iter
        (fun v ->
          match v.view_parent with
          | None -> ()
          | Some p ->
            Hashtbl.replace child_vt p
              (dur v + (try Hashtbl.find child_vt p with Not_found -> 0)))
        vs;
      let rec stack v acc =
        let acc = folded_frame v.view_name :: acc in
        match v.view_parent with
        | None -> acc
        | Some p -> (
          match Hashtbl.find_opt by_id p with None -> acc | Some pv -> stack pv acc)
      in
      List.iter
        (fun v ->
          let self =
            max 0 (dur v - (try Hashtbl.find child_vt v.view_id with Not_found -> 0))
          in
          Buffer.add_string buf (String.concat ";" (stack v []));
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int self);
          Buffer.add_char buf '\n')
        vs)
    sessions;
  Buffer.contents buf

let export ?producer fmt ts =
  match fmt with
  | Jsonl -> jsonl ?producer (live ts)
  | Chrome -> chrome ?producer (live ts)
  | Tree -> tree (live ts)
  | Folded -> render_folded (List.concat_map views ts)
