type error = { message : string; loc : Loc.t }

let pp_error ppf e = Format.fprintf ppf "%a: %s" Loc.pp e.loc e.message

type cursor = { src : string; mutable pos : int; mutable loc : Loc.t }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let bump cur =
  match peek cur with
  | None -> ()
  | Some c ->
    cur.pos <- cur.pos + 1;
    cur.loc <- Loc.advance cur.loc c

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '*'
let is_digit c = c >= '0' && c <= '9'

let take_while cur pred =
  let buf = Buffer.create 8 in
  let rec loop () =
    match peek cur with
    | Some c when pred c ->
      Buffer.add_char buf c;
      bump cur;
      loop ()
    | Some _ | None -> Buffer.contents buf
  in
  loop ()

exception Lex_error of error

let fail loc fmt = Format.kasprintf (fun message -> raise (Lex_error { message; loc })) fmt

let lex_string cur =
  let start = cur.loc in
  bump cur (* opening quote *);
  let buf = Buffer.create 8 in
  let rec loop () =
    match peek cur with
    | None -> fail start "unterminated string literal"
    | Some '"' ->
      bump cur;
      Buffer.contents buf
    | Some '\n' -> fail start "newline in string literal"
    | Some c ->
      Buffer.add_char buf c;
      bump cur;
      loop ()
  in
  loop ()

let lex_money cur =
  let start = cur.loc in
  bump cur (* $ *);
  let whole = take_while cur is_digit in
  if whole = "" then fail start "expected digits after '$'";
  let cents =
    match peek cur with
    | Some '.' ->
      bump cur;
      let frac = take_while cur is_digit in
      if String.length frac <> 2 then fail start "money needs exactly two decimal digits";
      (int_of_string whole * 100) + int_of_string frac
    | Some _ | None -> int_of_string whole * 100
  in
  Token.Money cents

let next_token cur =
  let rec skip () =
    match peek cur with
    | Some (' ' | '\t' | '\r' | '\n') ->
      bump cur;
      skip ()
    | Some '#' ->
      let rec to_eol () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
          bump cur;
          to_eol ()
      in
      to_eol ();
      skip ()
    | Some _ | None -> ()
  in
  skip ();
  let loc = cur.loc in
  match peek cur with
  | None -> Loc.at loc Token.Eof
  | Some ':' ->
    bump cur;
    Loc.at loc Token.Colon
  | Some ';' ->
    bump cur;
    Loc.at loc Token.Semicolon
  | Some '.' ->
    bump cur;
    Loc.at loc Token.Dot
  | Some '-' ->
    bump cur;
    (match peek cur with
    | Some '>' ->
      bump cur;
      Loc.at loc Token.Arrow
    | _ -> fail loc "expected '>' after '-'")
  | Some '"' -> Loc.at loc (Token.String (lex_string cur))
  | Some '$' -> Loc.at loc (lex_money cur)
  | Some c when is_digit c ->
    let digits = take_while cur is_digit in
    Loc.at loc (Token.Int (int_of_string digits))
  | Some c when is_ident_start c ->
    let word = take_while cur is_ident_char in
    let token = match Token.keyword word with Some kw -> kw | None -> Token.Ident word in
    Loc.at loc token
  | Some c -> fail loc "unexpected character %C" c

let tokenize src =
  let cur = { src; pos = 0; loc = Loc.start } in
  let rec loop acc =
    let tok = next_token cur in
    match tok.Loc.value with
    | Token.Eof -> List.rev (tok :: acc)
    | _ -> loop (tok :: acc)
  in
  match loop [] with tokens -> Ok tokens | exception Lex_error e -> Error e
