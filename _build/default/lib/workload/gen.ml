open Exchange

let consumer = Party.consumer "c"
let producer = Party.producer "p"

(* Links are numbered from the consumer: link 0 is consumer <-> broker 1,
   link i is broker i <-> broker i+1, link n is broker n <-> producer.
   Deals are listed producer-end first so the deterministic reducer
   unwinds the chain the way §4.2.2 walks Example #1. *)
let chain_spec ~brokers:n ~direct =
  if n < 0 then invalid_arg "Gen.chain: negative broker count";
  let broker i = Party.broker (Printf.sprintf "b%d" i) in
  let seller_of_link i = if i = n then producer else broker (i + 1) in
  let buyer_of_link i = if i = 0 then consumer else broker i in
  let price_of_link i = Asset.dollars (10 + n - i) in
  let link i =
    Spec.sale
      ~id:(Printf.sprintf "link%d" i)
      ~buyer:(buyer_of_link i) ~seller:(seller_of_link i)
      ~via:(Party.trusted (Printf.sprintf "t%d" i))
      ~price:(price_of_link i) ~good:"d"
  in
  let deals = List.init (n + 1) (fun k -> link (n - k)) in
  let priorities =
    (* Broker i sells on link i-1: it must have that buyer committed
       before it buys on link i. *)
    List.init n (fun k ->
        (broker (k + 1), { Spec.deal = Printf.sprintf "link%d" k; side = Spec.Right }))
  in
  let personas =
    if direct then List.init (n + 1) (fun i -> (Party.trusted (Printf.sprintf "t%d" i), seller_of_link i))
    else []
  in
  Spec.make_exn ~personas ~priorities deals

let chain ~brokers = chain_spec ~brokers ~direct:false
let chain_direct ~brokers = chain_spec ~brokers ~direct:true

let fan_consumer = consumer
let fan_sale_ref i = { Spec.deal = Printf.sprintf "cb%d" i; side = Spec.Left }

let fan ~prices =
  if prices = [] then invalid_arg "Gen.fan: empty price list";
  let broker i = Party.broker (Printf.sprintf "b%d" i) in
  let source i = Party.producer (Printf.sprintf "s%d" i) in
  let deals_for idx price =
    let i = idx + 1 in
    let doc = Printf.sprintf "d%d" i in
    [
      Spec.sale
        ~id:(Printf.sprintf "b%ds%d" i i)
        ~buyer:(broker i) ~seller:(source i)
        ~via:(Party.trusted (Printf.sprintf "t%d" (2 * i)))
        ~price:(price * 8 / 10) ~good:doc;
      Spec.sale
        ~id:(Printf.sprintf "cb%d" i)
        ~buyer:consumer ~seller:(broker i)
        ~via:(Party.trusted (Printf.sprintf "t%d" ((2 * i) - 1)))
        ~price ~good:doc;
    ]
  in
  let deals = List.concat (List.mapi deals_for prices) in
  let priorities =
    List.mapi
      (fun idx _ ->
        (broker (idx + 1), { Spec.deal = Printf.sprintf "cb%d" (idx + 1); side = Spec.Right }))
      prices
  in
  Spec.make_exn ~priorities deals

let bundle ~docs:k =
  if k <= 0 then invalid_arg "Gen.bundle: needs at least one document";
  let deals =
    List.init k (fun idx ->
        let i = idx + 1 in
        Spec.sale
          ~id:(Printf.sprintf "cp%d" i)
          ~buyer:consumer
          ~seller:(Party.producer (Printf.sprintf "p%d" i))
          ~via:(Party.trusted (Printf.sprintf "t%d" i))
          ~price:(Asset.dollars (10 * i))
          ~good:(Printf.sprintf "d%d" i))
  in
  Spec.make_exn deals

type mix = {
  sale_weight : int;
  chain_weight : int;
  max_chain : int;
  fan_weight : int;
  max_fan : int;
  bundle_weight : int;
  max_bundle : int;
  trust_density : float;
}

let default_mix =
  {
    sale_weight = 4;
    chain_weight = 3;
    max_chain = 3;
    fan_weight = 2;
    max_fan = 4;
    bundle_weight = 1;
    max_bundle = 3;
    trust_density = 0.2;
  }

(* With probability [density] a deal's seller trusts its buyer, so the
   buyer plays the intermediary (§4.2.3 variant 1 — the direction that
   unblocks broker resales; the reverse direction provably does not). *)
let sprinkle_trust rng density spec =
  List.fold_left
    (fun spec d ->
      if Prng.float rng < density then
        Spec.with_persona ~trusted:d.Spec.via ~principal:d.Spec.left spec
      else spec)
    spec spec.Spec.deals

let random_transaction rng mix =
  let total = mix.sale_weight + mix.chain_weight + mix.fan_weight + mix.bundle_weight in
  if total <= 0 then invalid_arg "Gen.random_transaction: all weights zero";
  let roll = Prng.int rng total in
  let base =
    if roll < mix.sale_weight then chain ~brokers:0
    else if roll < mix.sale_weight + mix.chain_weight then
      chain ~brokers:(1 + Prng.int rng (max 1 mix.max_chain))
    else if roll < mix.sale_weight + mix.chain_weight + mix.fan_weight then
      let k = 1 + Prng.int rng (max 1 mix.max_fan) in
      fan ~prices:(List.init k (fun i -> Asset.dollars (10 * (i + 1))))
    else bundle ~docs:(1 + Prng.int rng (max 1 mix.max_bundle))
  in
  sprinkle_trust rng mix.trust_density base

let random_transactions rng mix n = List.init n (fun _ -> random_transaction rng mix)
