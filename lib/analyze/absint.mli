(** Abstract interpretation of synthesized protocols.

    Computes, per principal, a worst-case exposure interval across
    every legal lockstep interleaving of the synthesized execution
    sequence and every single-party defection pattern, by joining
    escrow-slot states lattice-wise instead of enumerating sequences:
    each step compiles to release/receive deltas (escrow at a genuine
    trusted agent is protected, persona custody is released at commit,
    a direct-trust commit is the delivery), the honest peak is the
    maximal prefix of a principal's net position, and a defector
    contributes, per deal it can stall (its own deals closed under
    document supply), that deal's own maximal prefix — a sound upper
    bound on every dynamic {!Trust_sim} exposure peak. *)

open Exchange

val basis : Spec.t -> Party.t -> Asset.t -> Asset.money
(** Value of an asset to a party: money at face value, a document at
    the party's cost basis (what it pays for it in a receiving deal,
    else what it is paid, else 0). Mirrors [Trust_sim.Trace.price_for],
    which cannot be imported here without a dependency cycle. *)

val single_transfer_bound : Spec.t -> Party.t -> Asset.money
(** The §5 bound: the party's single largest outgoing transfer. *)

type delta = {
  d_party : Party.t;
  d_release : Asset.money;  (** value leaving the party's control *)
  d_receive : Asset.money;  (** value finally delivered to the party *)
}

type astep = {
  a_index : int;  (** the execution step's 1-based index *)
  a_deal : string option;  (** owning deal; [None] for notifications *)
  a_label : string;  (** rendered action and origin *)
  a_deltas : delta list;
}

type witness = {
  w_defector : Party.t option;  (** [None]: the honest schedule *)
  w_at_risk : Asset.money;
  w_kept : astep list;  (** the maximizing schedule, original order *)
  w_stalled : (string * int) list;
      (** stalled deals: (deal, steps the defector lets through) *)
}

type interval = {
  i_party : Party.t;
  i_bound : Asset.money;  (** {!single_transfer_bound} *)
  i_lo : Asset.money;  (** honest-run peak exposure *)
  i_hi : Asset.money;  (** worst case over defectors and interleavings *)
  i_witness : witness;  (** a schedule attaining [i_hi] *)
}

type t = { spec : Spec.t; steps : astep list; intervals : interval list }

val proved : interval -> bool
(** [i_hi <= i_bound]: the §5 single-transfer bound holds for this
    principal under every modelled behavior. *)

val of_sequence : Trust_core.Execution.sequence -> t
(** Compile and analyze a synthesized sequence. One interval per
    principal, in spec first-appearance order. *)

val touched_deals : Spec.t -> Party.t -> string list
(** Deals a defecting party can stall: its own, closed under document
    supply (a resale cannot complete when its supplier stalls). *)

val defectable : Spec.t -> Party.t list
(** Principals that play no trusted role (mirror of
    [Trust_sim.Harness.defectable_principals]). *)

val pp_interval : Format.formatter -> interval -> unit
val pp : Format.formatter -> t -> unit
