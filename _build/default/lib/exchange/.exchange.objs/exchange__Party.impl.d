lib/exchange/party.ml: Format Map Set Stdlib String
