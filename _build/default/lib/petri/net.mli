(** Place/transition Petri nets (paper §7.4).

    The paper relates exchange feasibility to coverability of a Petri
    net and leaves the encoding open. This is a small general net
    library — places, weighted arcs, markings, firing — used by
    {!Encode} as the independent baseline for the feasibility verdict
    and by the evaluation to demonstrate the cost gap between generic
    net exploration and the paper's reduction algorithm. *)

type place = int
type transition = int

type t

val create : unit -> t
val add_place : ?name:string -> t -> place
val add_transition : ?name:string -> t -> pre:(place * int) list -> post:(place * int) list -> transition
(** [pre]/[post] are (place, weight) multisets; a place appearing in both
    acts as a read arc. @raise Invalid_argument on non-positive weights
    or unknown places. *)

val place_count : t -> int
val transition_count : t -> int
val place_name : t -> place -> string
val transition_name : t -> transition -> string
val pre : t -> transition -> (place * int) list
val post : t -> transition -> (place * int) list

module Marking : sig
  type net = t
  type t
  (** A token count per place. Immutable. *)

  val initial : net -> (place * int) list -> t
  val tokens : t -> place -> int
  val set : t -> place -> int -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val covers : t -> t -> bool
  (** [covers m target]: [m] has at least the target's tokens everywhere. *)

  val to_array : t -> int array
  (** Token counts indexed by place; a fresh copy. Used by analyses that
      manipulate markings arithmetically (Karp–Miller ω-abstraction). *)

  val of_array : int array -> t

  val pp : net -> Format.formatter -> t -> unit
end

val enabled : t -> Marking.t -> transition -> bool
val fire : t -> Marking.t -> transition -> Marking.t
(** @raise Invalid_argument when not enabled. *)

val enabled_transitions : t -> Marking.t -> transition list
val pp : Format.formatter -> t -> unit
