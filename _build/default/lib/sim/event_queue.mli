(** A binary min-heap priority queue keyed by virtual time, with FIFO
    tie-breaking so simultaneous events keep their insertion order —
    deterministic simulation depends on it. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Earliest event, insertion order within equal times. *)

val peek_time : 'a t -> int option
