lib/lang/printer.ml: Asset Buffer Elaborate Exchange Format Hashtbl List Party Printf Spec Token
