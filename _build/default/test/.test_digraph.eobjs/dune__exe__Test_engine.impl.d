test/test_engine.ml: Action Alcotest Asset Exchange List Party Trust_core Trust_sim Workload
