(** A minimal JSON reader, shared by the trace-analytics re-parse path
    ({!Analysis.of_jsonl}) and the daemon wire protocol.

    It reads exactly the JSON this codebase itself emits — objects,
    arrays, strings with the standard escapes, raw numbers, booleans,
    null — and rejects anything with trailing garbage. Numbers are kept
    as their source text so callers decide int vs float. *)

exception Bad of string
(** Raised by {!parse} and the accessors on malformed or mistyped
    input, with a short human-readable reason. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** kept raw: ids parse as int, attrs may be float *)
  | Str of string
  | Obj of (string * t) list
  | Arr of t list

val parse : string -> t
(** Parse one complete JSON value; the whole input must be consumed.
    @raise Bad on malformed input. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error reified. *)

val field : t -> string -> t
(** [field obj k] — the member [k] of an object.
    @raise Bad when missing or not an object. *)

val field_opt : t -> string -> t option
(** [None] when the member is absent (or the value is not an object). *)

val as_int : t -> int
val as_str : t -> string
val as_bool : t -> bool

val escape : string -> string
(** The body of a JSON string literal for [s] (no surrounding quotes):
    ["\""], backslash and control characters escaped, the rest verbatim.
    Inverse of the string reader in {!parse} for ASCII payloads. *)
