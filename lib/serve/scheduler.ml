module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Audit = Trust_sim.Audit
module Obs = Trust_obs.Obs
module Sampler = Trust_obs.Sampler
module Ring = Trust_obs.Ring

type config = {
  concurrency : int;
  jobs : int;
  session_deadline : int;
  latency : int;
  max_events : int;
  drop_rate : float;
  retry : bool;
  seed : int64;
  compiled : bool;
  sample_rate : float;
}

let default_config =
  {
    concurrency = 8;
    jobs = 1;
    session_deadline = 1000;
    latency = 1;
    max_events = 100_000;
    drop_rate = 0.;
    retry = true;
    seed = 1L;
    compiled = true;
    sample_rate = 1.0;
  }

type stats = { makespan : int; retried : int }

(* Stateless per-delivery fault decision: the engine hands us the
   performed-action sequence number, and the verdict depends only on
   (seed, session, seq) — deterministic whatever order sessions run in. *)
let drop_decision cfg ~session_id seq =
  let golden = 0x9E3779B97F4A7C15L and fold = 0xC2B2AE3D27D4EB4FL in
  let h =
    Shape.mix64
      (Int64.add cfg.seed
         (Int64.add
            (Int64.mul (Int64.of_int (session_id + 1)) golden)
            (Int64.mul (Int64.of_int (seq + 1)) fold)))
  in
  Shape.uniform h < cfg.drop_rate

let virtual_duration (result : Engine.result) =
  List.fold_left (fun acc (d : Engine.delivery) -> max acc d.Engine.at) 0 result.Engine.log

type recorders = {
  admitted : Metrics.counter;
  settled : Metrics.counter;
  expired : Metrics.counter;
  aborted : Metrics.counter;
  lint_rejected : Metrics.counter;
  admission_denied : Metrics.counter;
  retried_c : Metrics.counter;
  cache_hits : Metrics.counter;
  cache_misses : Metrics.counter;
  engine_events : Metrics.counter;
  deliveries : Metrics.counter;
  ticks_h : Metrics.histogram;
  events_h : Metrics.histogram;
  exposure_violations : Metrics.counter;
  exposure_peak_h : Metrics.histogram;
  exposure_ticks_h : Metrics.histogram;
  obs_sampled : Metrics.counter;
  obs_kept_tail : Metrics.counter;
  obs_ring_dropped : Metrics.counter;
}

let recorders metrics =
  Option.map
    (fun m ->
      {
        admitted = Metrics.counter m ~help:"sessions admitted" "serve_sessions_total";
        settled = Metrics.counter m ~help:"sessions that reached every preferred outcome" "serve_sessions_settled_total";
        expired = Metrics.counter m ~help:"sessions unwound by the escrow deadline" "serve_sessions_expired_total";
        aborted = Metrics.counter m ~help:"sessions whose synthesis failed" "serve_sessions_aborted_total";
        lint_rejected = Metrics.counter m ~help:"sessions rejected by the admission linter" "serve_sessions_lint_rejected_total";
        admission_denied = Metrics.counter m ~help:"sessions refused because their shape is deny-listed by trace mining" "serve_admission_denied_total";
        retried_c = Metrics.counter m ~help:"drop-stalled sessions retried once" "serve_sessions_retried_total";
        cache_hits = Metrics.counter m ~help:"protocol cache hits" "serve_cache_hits_total";
        cache_misses = Metrics.counter m ~help:"protocol cache misses or bypasses" "serve_cache_misses_total";
        engine_events = Metrics.counter m ~help:"discrete-event engine events" "serve_engine_events_total";
        deliveries = Metrics.counter m ~help:"actions delivered" "serve_deliveries_total";
        ticks_h = Metrics.histogram m ~help:"virtual session duration (ticks)" "serve_session_ticks";
        events_h = Metrics.histogram m ~help:"engine events per session" "serve_session_events";
        exposure_violations = Metrics.counter m ~help:"single-transfer bound violations across runs" "sim_exposure_violations_total";
        exposure_peak_h = Metrics.histogram m ~help:"peak outstanding at-risk value per run (cents)" "sim_exposure_peak";
        exposure_ticks_h = Metrics.histogram m ~help:"virtual ticks with positive at-risk value per run" "sim_exposure_ticks";
        obs_sampled = Metrics.counter m ~help:"sessions head-sampled into a live trace" "obs_sessions_sampled_total";
        obs_kept_tail = Metrics.counter m ~help:"unsampled sessions promoted by a tail keep rule" "obs_sessions_kept_tail_total";
        obs_ring_dropped = Metrics.counter m ~help:"trace-ring records evicted on wrap or refused oversized" "obs_ring_records_dropped_total";
      })
    metrics

let record rec_opt f = Option.iter f rec_opt

(* One run of an already-synthesized session on the compiled fast
   path: the cached instruction plan executes against per-domain
   scratch with no per-run protocol allocation. Verdicts, ticks,
   events and exposure aggregates are identical to [run_interpreted]
   (property-tested in test_hotpath), so the two paths may be mixed
   freely across sessions and domains. *)
let run_compiled cfg (plan : Trust_core.Compile.t) (session : Session.t) ~drops rec_opt =
  session.Session.attempts <- session.Session.attempts + 1;
  let drop =
    if drops && cfg.drop_rate > 0. then
      Some (fun seq -> drop_decision cfg ~session_id:session.Session.id seq)
    else None
  in
  let config =
    {
      Trust_sim.Hotpath.latency = cfg.latency;
      deadline = cfg.session_deadline;
      max_events = cfg.max_events;
      drop;
    }
  in
  let summary =
    Trust_sim.Hotpath.exec ~config ~defectors:session.Session.defectors plan
  in
  let duration = max 1 summary.Trust_sim.Hotpath.duration in
  session.Session.ticks <- session.Session.ticks + duration;
  session.Session.events <- session.Session.events + summary.Trust_sim.Hotpath.events;
  session.Session.stalled <- summary.Trust_sim.Hotpath.stalled;
  let peak = Trust_sim.Hotpath.total_peak_risk summary in
  let risk_ticks = Trust_sim.Hotpath.total_risk_ticks summary in
  let violations = summary.Trust_sim.Hotpath.violations in
  session.Session.exposure_peak <- max session.Session.exposure_peak peak;
  session.Session.exposure_ticks <- session.Session.exposure_ticks + risk_ticks;
  session.Session.exposure_violations <- session.Session.exposure_violations + violations;
  record rec_opt (fun r ->
      Metrics.incr ~by:summary.Trust_sim.Hotpath.events r.engine_events;
      Metrics.incr ~by:summary.Trust_sim.Hotpath.deliveries r.deliveries;
      Metrics.observe r.ticks_h duration;
      Metrics.observe r.events_h summary.Trust_sim.Hotpath.events;
      Metrics.observe r.exposure_peak_h peak;
      Metrics.observe r.exposure_ticks_h risk_ticks;
      if violations > 0 then Metrics.incr ~by:violations r.exposure_violations);
  if summary.Trust_sim.Hotpath.all_preferred && summary.Trust_sim.Hotpath.stalled = 0 then
    Session.Settled
  else Session.Expired

(* One engine run of an already-synthesized session (interpreted
   reference path; also the only path carrying observability spans). *)
let run_interpreted cfg ?(obs = Obs.null) ?parent (entry : Cache.entry) policy
    (session : Session.t) ~drops rec_opt =
  session.Session.attempts <- session.Session.attempts + 1;
  let drop =
    if drops && cfg.drop_rate > 0. then
      Some (fun seq _action -> drop_decision cfg ~session_id:session.Session.id seq)
    else None
  in
  let engine_config =
    {
      Engine.default_config with
      Engine.latency = cfg.latency;
      deadline = cfg.session_deadline;
      max_events = cfg.max_events;
      drop;
    }
  in
  let behaviors =
    Harness.behaviors_for ~shared:policy.Cache.shared ?plan:entry.Cache.plan
      ~defectors:session.Session.defectors ~mode:policy.Cache.mode entry.Cache.split_spec
      entry.Cache.protocol
  in
  let cast =
    {
      Harness.spec = entry.Cache.split_spec;
      plan = entry.Cache.plan;
      mode = policy.Cache.mode;
      protocol = entry.Cache.protocol;
      behaviors;
    }
  in
  let result = Harness.run_cast ~config:engine_config ~obs ?parent cast in
  let duration = max 1 (virtual_duration result) in
  session.Session.ticks <- session.Session.ticks + duration;
  session.Session.events <- session.Session.events + result.Engine.events;
  session.Session.stalled <- List.length result.Engine.stalled;
  (* Exposure ledger over this run: peak keeps the worst attempt, risk
     ticks and violations accumulate across the retry. *)
  let exposure =
    Trust_sim.Exposure.of_result ?plan:entry.Cache.plan
      ~defectors:(List.map fst session.Session.defectors)
      entry.Cache.split_spec result
  in
  let peak = Trust_sim.Exposure.total_peak_at_risk exposure in
  let risk_ticks = Trust_sim.Exposure.total_risk_ticks exposure in
  let violations = List.length exposure.Trust_sim.Exposure.violations in
  session.Session.exposure_peak <- max session.Session.exposure_peak peak;
  session.Session.exposure_ticks <- session.Session.exposure_ticks + risk_ticks;
  session.Session.exposure_violations <- session.Session.exposure_violations + violations;
  record rec_opt (fun r ->
      Metrics.incr ~by:result.Engine.events r.engine_events;
      Metrics.incr ~by:(List.length result.Engine.log) r.deliveries;
      Metrics.observe r.ticks_h duration;
      Metrics.observe r.events_h result.Engine.events;
      Metrics.observe r.exposure_peak_h peak;
      Metrics.observe r.exposure_ticks_h risk_ticks;
      if violations > 0 then Metrics.incr ~by:violations r.exposure_violations);
  let report =
    Audit.audit ~obs ?parent session.Session.spec ?plan:entry.Cache.plan
      ~defectors:(List.map fst session.Session.defectors)
      result
  in
  if report.Audit.all_preferred && result.Engine.stalled = [] then Session.Settled
  else Session.Expired

(* Tracing disables the fast path: spans need the materialized engine
   run. The two paths agree on every observable outcome. *)
let run_once cfg ?(obs = Obs.null) ?parent (entry : Cache.entry) policy (session : Session.t)
    ~drops rec_opt =
  match entry.Cache.compiled with
  | Some plan when cfg.compiled && not (Obs.enabled obs) ->
    run_compiled cfg plan session ~drops rec_opt
  | Some _ | None -> run_interpreted cfg ~obs ?parent entry policy session ~drops rec_opt

(* The whole lifecycle of one session — admission lint, synthesis
   through the cache, engine run(s), classification — with no shared
   state beyond the (sharded) cache, the (atomic) metrics and the
   [retried] tally. Sessions are independent end-to-end and the drop
   schedule is keyed on (seed, session, seq), so this runs bit-for-bit
   identically from any domain in any order. *)
let process_session ?parent cfg cache policy rec_opt retried obs (session : Session.t) =
  Obs.with_span obs ?parent ~phase:"session"
    (if Obs.enabled obs then Printf.sprintf "session.%d" session.Session.id else "session")
    (fun root ->
  record rec_opt (fun r -> Metrics.incr r.admitted);
  Session.transition session Session.Synthesizing;
  (* Admission lint: structural (cheap) rules only — error-level
     diagnostics abort the session before any synthesis work. With
     tracing off the verdict comes from the cache's per-shape memo;
     traced runs lint directly so the span carries its tallies. *)
  let lint_reason =
    (* the trace-mining deny list outranks the linter: a deny-listed
       shape is refused before any lint or synthesis work, traced or
       not (the verdict is a lock-free set lookup, identical on both
       paths) *)
    match Cache.denied_reason cache session.Session.spec with
    | Some _ as denied -> denied
    | None ->
    if Obs.enabled obs then
      match
        List.find_opt
          (fun d -> d.Trust_analyze.Diagnostic.severity = Trust_analyze.Diagnostic.Error)
          (Trust_analyze.Lint.check_spec ~obs ~parent:root ~deep:false session.Session.spec)
      with
      | Some first ->
        Some
          (Printf.sprintf "lint: [%s] %s"
             (Trust_analyze.Diagnostic.code_id first.Trust_analyze.Diagnostic.code)
             first.Trust_analyze.Diagnostic.message)
      | None -> None
    else Cache.admission cache session.Session.spec
  in
  (match lint_reason with
  | Some reason ->
    Session.transition session (Session.Aborted reason);
    (* an admission slot is never free, even to reject *)
    session.Session.ticks <- 1;
    let denied = String.length reason >= 7 && String.sub reason 0 7 = "denied:" in
    record rec_opt (fun r ->
        if denied then Metrics.incr r.admission_denied else Metrics.incr r.lint_rejected;
        Metrics.incr r.aborted)
  | None ->
    let verdict, outcome =
      (* Which of two racing sessions takes the miss for a shared shape
         depends on domain scheduling, so hit/miss is volatile; the
         bypass decision (Shape.cacheable) and the verify flag are
         functions of the spec and policy alone, hence deterministic. *)
      Obs.with_span obs ~parent:root ~phase:"serve" "serve.synthesize" (fun h ->
          let verdict, outcome = Cache.synthesize cache session.Session.spec in
          if Obs.enabled obs then begin
            Obs.attr obs h "bypass" (Obs.Bool (outcome = `Bypass));
            Obs.attr obs h "verify" (Obs.Bool policy.Cache.verify);
            Obs.volatile_attr obs h "cache_hit" (Obs.Bool (outcome = `Hit))
          end;
          (verdict, outcome))
    in
    session.Session.cache_hit <- outcome = `Hit;
    record rec_opt (fun r ->
        match outcome with
        | `Hit -> Metrics.incr r.cache_hits
        | `Miss | `Bypass -> Metrics.incr r.cache_misses);
    (match verdict with
    | Error e ->
      Session.transition session (Session.Aborted e);
      (* an admission slot is never free, even to reject *)
      session.Session.ticks <- 1;
      record rec_opt (fun r -> Metrics.incr r.aborted)
    | Ok entry -> (
      Session.transition session Session.Running;
      let status = run_once cfg ~obs ~parent:root entry policy session ~drops:true rec_opt in
      Session.transition session status;
      match status with
      | Session.Expired when cfg.retry && cfg.drop_rate > 0. ->
        (* Stalled under injected drops: requeue once and retransmit
           over a reliable path (drops off). A second expiry sticks. *)
        ignore (Atomic.fetch_and_add retried 1);
        record rec_opt (fun r -> Metrics.incr r.retried_c);
        Session.transition session Session.Queued;
        Session.transition session Session.Synthesizing;
        Session.transition session Session.Running;
        Session.transition session
          (run_once cfg ~obs ~parent:root entry policy session ~drops:false rec_opt)
      | _ -> ())));
  if Obs.enabled obs then begin
    (* deterministic outcome facts on the session root: everything the
       trace miner (Trust_obs.Mine) needs to attribute the session to
       its spec shape and classify the incident — all pure functions of
       the session record, so identical at any --jobs *)
    Obs.attr obs root "shape" (Obs.Str (Shape.hash_hex session.Session.spec));
    Obs.attr obs root "status" (Obs.Str (Session.status_label session.Session.status));
    Obs.attr obs root "attempts" (Obs.Int session.Session.attempts);
    Obs.attr obs root "ticks" (Obs.Int session.Session.ticks);
    Obs.attr obs root "events" (Obs.Int session.Session.events);
    Obs.attr obs root "violations" (Obs.Int session.Session.exposure_violations);
    Obs.attr obs root "exposure_ticks" (Obs.Int session.Session.exposure_ticks)
  end;
  match session.Session.status with
  | Session.Settled -> record rec_opt (fun r -> Metrics.incr r.settled)
  | Session.Expired -> record rec_opt (fun r -> Metrics.incr r.expired)
  | _ -> ())

let process_one ?metrics ?(obs = Obs.null) ?parent cfg cache (session : Session.t) =
  let rec_opt = recorders metrics in
  let retried = Atomic.make 0 in
  process_session ?parent cfg cache (Cache.policy cache) rec_opt retried obs session

(* -- production tracing: head sampling, tail keep rules, ring sink -- *)

let session_sampled cfg id = Sampler.decision ~seed:cfg.seed ~rate:cfg.sample_rate id

(* Tail keep rules, most severe first: a §5 exposure-bound violation
   outranks a retry (something actually went wrong with the money),
   a retry outranks a plain expiry (the first attempt also expired),
   and a lint refusal is kept because rejected specs are exactly what
   an operator wants to see. All four are functions of the session
   record alone, so the verdict is identical whether the session ran
   traced or on the compiled fast path. *)
let tail_reason (session : Session.t) =
  if session.Session.exposure_violations > 0 then Some Ring.Violation
  else if session.Session.attempts > 1 then Some Ring.Retry
  else
    match session.Session.status with
    | Session.Expired -> Some Ring.Expiry
    | Session.Aborted r when String.length r >= 5 && String.sub r 0 5 = "lint:" -> Some Ring.Lint
    | _ -> None

let keep_decision ~sampled session =
  if sampled then Some Ring.Sampled else tail_reason session

(* Materialize the trace of a session that ran unsampled (and hence on
   the allocation-free compiled path): re-run a fresh copy through the
   full lifecycle with a live sink. Every input the run depends on —
   spec, defectors, the (seed, session, seq)-keyed drop schedule — is
   identical, so the replayed trace is byte-for-byte what head
   sampling would have recorded. Only rare tail-kept sessions pay the
   second run; metrics are not passed, so nothing double-counts (the
   protocol cache does see a second synthesize, typically a hit). *)
let replay ?parent cfg cache trace (session : Session.t) =
  let fresh =
    Session.make ~id:session.Session.id ~defectors:session.Session.defectors session.Session.spec
  in
  let retried = Atomic.make 0 in
  process_session ?parent cfg cache (Cache.policy cache) None retried trace fresh;
  fresh

let run ?metrics ?(obs = Obs.no_batch) ?ring cfg cache sessions =
  if cfg.concurrency < 1 then invalid_arg "Scheduler.run: concurrency must be >= 1";
  if cfg.jobs < 1 then invalid_arg "Scheduler.run: jobs must be >= 1";
  let rec_opt = recorders metrics in
  let retried = Atomic.make 0 in
  let policy = Cache.policy cache in
  (* Tracing (batch export and/or ring sink) engages the sampler:
     sampled sessions run with a live trace, everything else takes the
     untraced — hence compiled, allocation-free — path and is only
     looked at again by the tail keep rules at close. *)
  let tracing = Obs.batch_enabled obs || Option.is_some ring in
  let slot_trace (session : Session.t) =
    (* Each slot of the batch registry is touched by exactly one job —
       the one running its session — so traces need no locking; the
       pool's shutdown join publishes them before the merge phase.
       Ring-only runs (no batch export) use a standalone trace. *)
    if Obs.batch_enabled obs then Obs.session_trace obs session.Session.id
    else Obs.create ~session:session.Session.id ()
  in
  let process (session : Session.t) =
    let sampled = tracing && session_sampled cfg session.Session.id in
    let trace = if sampled then slot_trace session else Obs.null in
    process_session cfg cache policy rec_opt retried trace session;
    if tracing then begin
      if sampled then record rec_opt (fun r -> Metrics.incr r.obs_sampled);
      match keep_decision ~sampled session with
      | None -> ()
      | Some keep ->
        let trace =
          if Obs.enabled trace then trace
          else begin
            (* tail promotion of an unsampled session: replay it into
               the batch slot (or a standalone trace) so the durable
               export carries it alongside the head-sampled set *)
            record rec_opt (fun r -> Metrics.incr r.obs_kept_tail);
            let slot = slot_trace session in
            ignore (replay cfg cache slot session : Session.t);
            slot
          end
        in
        (* stamp the keep verdict on the root after the fact (attrs on
           finished spans don't tick the clock): ring dumps and the
           JSONL export then agree on why each session was retained,
           which is what lets Mine fold either one identically *)
        Obs.attr trace (Obs.first_root trace) "keep" (Obs.Str (Ring.keep_label keep));
        Option.iter
          (fun ring ->
            (* runs on the worker domain, so the commit lands in this
               domain's own shard — the lock-free discipline Ring pins *)
            let evicted = Ring.record ring ~keep trace in
            if evicted > 0 then
              record rec_opt (fun r -> Metrics.incr ~by:evicted r.obs_ring_dropped))
          ring
    end
  in
  (* Phase 1 — execute. Every session owns its mutable record, the
     cache is sharded behind per-shard locks and the metrics are
     atomic, so whole sessions run in parallel; [Pool.shutdown]'s join
     publishes their writes before the merge reads them. *)
  if cfg.jobs = 1 then List.iter process sessions
  else begin
    let pool = Pool.create ~jobs:cfg.jobs () in
    let submit_error =
      try
        List.iter (fun session -> Pool.submit pool (fun () -> process session)) sessions;
        None
      with e -> Some e
    in
    Pool.shutdown pool;
    (match submit_error with Some e -> raise e | None -> ());
    match metrics with
    | Some m ->
      let s = Pool.stats pool in
      Metrics.gauge m ~help:"pool worker domains" "serve_pool_workers" (float_of_int s.Pool.workers);
      (* queue depth and wait counts depend on OS scheduling, not on
         the seed — volatile keeps them out of the deterministic
         snapshot (rendered on stderr instead) *)
      Metrics.gauge m ~help:"work-queue high-water mark" ~volatile:true "serve_pool_queue_peak"
        (float_of_int s.Pool.peak_depth);
      Metrics.gauge m ~help:"idle workers that blocked on an empty queue" ~volatile:true
        "serve_pool_worker_waits" (float_of_int s.Pool.worker_waits);
      Metrics.gauge m ~help:"submissions that blocked on a full queue" ~volatile:true
        "serve_pool_submit_waits" (float_of_int s.Pool.submit_waits)
    | None -> ()
  end;
  (* Phase 2 — merge in submission order. Lane placement is pure
     bookkeeping over per-session virtual durations, so replaying it
     sequentially here gives the identical placement, makespan and
     metrics at any [jobs]. *)
  let lanes = Array.make cfg.concurrency 0 in
  let least_loaded () =
    let best = ref 0 in
    Array.iteri (fun i t -> if t < lanes.(!best) then best := i) lanes;
    !best
  in
  List.iter
    (fun (session : Session.t) ->
      let lane = least_loaded () in
      session.Session.started_at <- lanes.(lane);
      session.Session.finished_at <- session.Session.started_at + session.Session.ticks;
      lanes.(lane) <- session.Session.finished_at;
      (* Placement replays identically at any [jobs] (sequential, in
         submission order, over per-session virtual durations), so it
         may ride in the deterministic trace as a child of the root. *)
      let trace = Obs.session_trace obs session.Session.id in
      if Obs.enabled trace then
        Obs.with_span trace ~parent:(Obs.first_root trace) ~phase:"serve" "serve.place"
          (fun h ->
            Obs.attr trace h "lane" (Obs.Int lane);
            Obs.attr trace h "started_at" (Obs.Int session.Session.started_at);
            Obs.attr trace h "finished_at" (Obs.Int session.Session.finished_at)))
    sessions;
  (match (metrics, ring) with
  | Some m, Some ring ->
    (* which records survive eviction in which shard depends on domain
       scheduling at jobs > 1, so residency is volatile here — the
       single-threaded daemon registers the same gauge deterministically *)
    Metrics.gauge m ~help:"trace-ring live bytes" ~volatile:true "obs_ring_bytes"
      (float_of_int (Ring.bytes_resident ring))
  | _ -> ());
  let makespan = Array.fold_left max 0 lanes in
  { makespan; retried = Atomic.get retried }
