(** The multi-session exchange service: generate a workload, push it
    through the protocol cache and the batch scheduler, and report.

    Everything in {!report} and {!json} is deterministic in the config
    (virtual ticks, counts, rates): two runs with the same seed are
    byte-identical, and runs differing only in [jobs] differ only in
    the [jobs] config echo and the [serve_pool_*] gauges. Wall-clock
    throughput is reported separately by {!wall_line} so it can never
    contaminate the snapshot. *)

type config = {
  sessions : int;
  seed : int64;
  mix : Workload.Gen.mix;  (** random-transaction mix for the workload *)
  concurrency : int;
  jobs : int;  (** worker domains for the scheduler, >= 1 *)
  mode : Trust_sim.Harness.mode;
  shared : bool;
  rescue : bool;
  verify_cache : bool;
  cache_capacity : int;
  session_deadline : int;
  latency : int;
  max_events : int;
  drop_rate : float;
  retry : bool;
  defect_every : int option;
      (** inject a [Silent] defector into every n-th session (its first
          defectable principal), for adversarial batches *)
  trace : bool;
      (** record a per-session {!Trust_obs.Obs} trace for the whole
          batch; off by default — the null sink costs nothing *)
  compiled : bool;
      (** run cached compiled plans on the allocation-free
          {!Trust_sim.Hotpath} runtime (default); [false] benchmarks
          the interpreted reference path *)
  sample_rate : float;
      (** fraction of sessions head-sampled into live traces when
          tracing is on — deterministic and monotone per
          {!Trust_obs.Sampler}; [1.0] (default) traces everything *)
  trace_ring : int;
      (** capacity in bytes of the binary ring sink (sharded one
          buffer per worker domain); [0] (default) disables it *)
}

val default : config
(** 100 sessions, seed 42, default mix, 8 lanes, 1 job, Lockstep,
    rescue on, compiled path on, sample rate 1.0, no ring. *)

type outcome = {
  config : config;
  sessions : Session.t list;
  metrics : Metrics.t;
  cache : Cache.t;
  stats : Scheduler.stats;
  wall_seconds : float;
  obs : Trust_obs.Obs.batch;
      (** the batch trace registry — disabled unless [config.trace];
          pass {!Trust_obs.Obs.batch_traces} to {!Trust_obs.Obs.export} *)
  ring : Trust_obs.Ring.t option;
      (** the binary ring sink, present iff [config.trace_ring > 0] —
          dump/decode it with {!Trust_obs.Ring} *)
}

type tally = { settled : int; expired : int; aborted : int }

val tally : Session.t list -> tally

type exposure_tally = {
  peak : int;  (** worst per-session peak at-risk value, in cents *)
  risk_ticks : int;  (** at-risk virtual ticks summed over sessions *)
  violations : int;  (** single-transfer bound violations over sessions *)
  at_risk_sessions : int;  (** sessions whose peak at-risk was positive *)
}

val exposure_tally : Session.t list -> exposure_tally
(** Batch-level aggregate of the per-session {!Trust_sim.Exposure}
    ledgers maintained by the scheduler. *)

val sessions_of_config : config -> Session.t list
(** The deterministic workload for a config: [sessions] random
    transactions from [mix] seeded by [seed], as fresh session records
    (with defectors injected per [defect_every]). {!run} generates its
    own; exposed so benchmarks can replay the identical workload
    against a pre-warmed cache. *)

val run : config -> outcome

val report : Format.formatter -> outcome -> unit
(** The deterministic batch report: session tallies, cache statistics,
    makespan, virtual throughput, and the full metrics snapshot. *)

val json : outcome -> string
(** The same snapshot as JSON (deterministic; no wall-clock values). *)

val wall_line : outcome -> string
(** Wall-clock throughput, e.g. ["wall 0.182s, 549.5 sessions/sec"] —
    print it to stderr, not into the snapshot. *)
