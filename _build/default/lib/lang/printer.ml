open Exchange

let pp_role ppf = function
  | Party.Consumer -> Format.pp_print_string ppf "consumer"
  | Party.Producer -> Format.pp_print_string ppf "producer"
  | Party.Broker -> Format.pp_print_string ppf "broker"

let pp_leg ppf (party, asset) =
  match asset with
  | Asset.Money cents ->
    Format.fprintf ppf "%s pays %s" (Party.name party) (Token.to_string (Token.Money cents))
  | Asset.Document doc -> Format.fprintf ppf "%s gives %S" (Party.name party) doc

let pp_side ppf = function
  | Spec.Left -> Format.pp_print_string ppf "buyer"
  | Spec.Right -> Format.pp_print_string ppf "seller"

let pp_cref ppf (c : Spec.commitment_ref) =
  Format.fprintf ppf "%s.%a" c.Spec.deal pp_side c.Spec.side

let pp ppf spec =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      match Party.role p with
      | Some role -> Format.fprintf ppf "principal %s : %a@," (Party.name p) pp_role role
      | None -> ())
    (Spec.principals spec);
  List.iter (fun t -> Format.fprintf ppf "trusted %s@," (Party.name t)) (Spec.trusted_agents spec);
  Format.fprintf ppf "@,";
  List.iter
    (fun (d : Spec.deal) ->
      Format.fprintf ppf "deal %s: %a; %a; via %s%t@," d.Spec.id pp_leg
        (d.Spec.left, d.Spec.left_sends) pp_leg
        (d.Spec.right, d.Spec.right_sends)
        (Party.name d.Spec.via)
        (fun ppf ->
          match d.Spec.deadline with
          | Some n -> Format.fprintf ppf " within %d" n
          | None -> ()))
    spec.Spec.deals;
  Party.Map.iter
    (fun trusted principal ->
      Format.fprintf ppf "persona %s is %s@," (Party.name trusted) (Party.name principal))
    spec.Spec.personas;
  List.iter
    (fun (owner, cref) ->
      Format.fprintf ppf "priority %s : %a@," (Party.name owner) pp_cref cref)
    spec.Spec.priorities;
  List.iter
    (fun (owner, cref) -> Format.fprintf ppf "split %s : %a@," (Party.name owner) pp_cref cref)
    spec.Spec.splits;
  Format.fprintf ppf "@]"

let to_string spec = Format.asprintf "%a" pp spec

let web_to_string (w : Elaborate.web) =
  let buf = Buffer.create 256 in
  let declared = Hashtbl.create 8 in
  let declare party =
    if not (Hashtbl.mem declared (Party.to_string party)) then begin
      Hashtbl.replace declared (Party.to_string party) ();
      match Party.role party with
      | Some role ->
        Buffer.add_string buf
          (Format.asprintf "principal %s : %a\n" (Party.name party) pp_role role)
      | None -> Buffer.add_string buf (Printf.sprintf "trusted %s\n" (Party.name party))
    end
  in
  List.iter
    (fun (a, b) ->
      declare a;
      declare b)
    w.Elaborate.trusts;
  List.iter declare w.Elaborate.relays;
  List.iter
    (fun (_, buyer, _, seller, _) ->
      declare buyer;
      declare seller)
    w.Elaborate.requests;
  Buffer.add_char buf '\n';
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "trust %s -> %s\n" (Party.name a) (Party.name b)))
    w.Elaborate.trusts;
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "relay %s\n" (Party.name r)))
    w.Elaborate.relays;
  List.iter
    (fun (id, buyer, good, seller, price) ->
      Buffer.add_string buf
        (Printf.sprintf "request %s: %s buys %S from %s for %s\n" id (Party.name buyer) good
           (Party.name seller)
           (Token.to_string (Token.Money price))))
    w.Elaborate.requests;
  Buffer.contents buf
