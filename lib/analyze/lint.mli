(** Entry points for the spec linter.

    Exit-code contract (documented in docs/LINT.md and the man page):
    0 — clean (info diagnostics never gate, even under [--Werror]);
    1 — error-severity diagnostics (or warnings under [--Werror]);
    2 — usage, unreadable input, or lex/parse failure (TL010). *)

open Exchange

type format = Human | Json | Sarif

val check_spec :
  ?obs:Trust_obs.Obs.t ->
  ?parent:Trust_obs.Obs.handle ->
  ?file:string ->
  ?decls:Trust_lang.Ast.program ->
  ?static:bool ->
  ?deep:bool ->
  Spec.t ->
  Diagnostic.t list
(** Lint an already-elaborated spec. [deep] (default [true]) also runs
    the feasibility-based rules; the serve admission gate uses
    [deep:false] to stay cheap. [static] (default [true]) additionally
    runs the static exposure pass (TL015–TL017) on the synthesized
    sequence; it only matters when [deep] holds. Sorted
    deterministically. [obs]/[parent] attach a ["lint"] span (diagnostic
    tallies) to a trace; the default null sink records nothing. *)

val lint_source :
  ?file:string -> ?static:bool -> ?deep:bool -> string -> Diagnostic.t list
(** Parse, elaborate and lint DSL source. Lex/parse failures yield a
    single TL010; elaboration failures yield one TL011 per error (in
    location order); web programs are checked for elaboration only. *)

val lint_file : ?static:bool -> ?deep:bool -> string -> Diagnostic.t list
(** [lint_source] on the file's contents; an unreadable file yields
    TL010. *)

val exit_status : ?werror:bool -> Diagnostic.t list -> int
(** The contract above, over a (possibly multi-file) report. *)

val render : format -> Diagnostic.t list -> string
