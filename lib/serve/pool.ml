(* A fixed-size pool of OCaml 5 domains draining one bounded FIFO of
   jobs. The pool carries no notion of sessions or results: callers
   submit closures that write their outcome into caller-owned slots,
   and [shutdown] joins every worker before the caller reads them, so
   the join is the only synchronization the results need. *)

type stats = {
  workers : int;
  executed : int;
  worker_waits : int;
  submit_waits : int;
  peak_depth : int;
}

type t = {
  size : int;
  capacity : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  space_available : Condition.t;
  mutable closed : bool;
  mutable peak_depth : int;
  executed : int Atomic.t;
  worker_waits : int Atomic.t;
  submit_waits : int Atomic.t;
  (* First job exception (with its backtrace), re-raised by [shutdown]
     on the spawning domain so failures cannot vanish into a worker. *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  mutable domains : unit Domain.t array;
}

let size t = t.size

let worker t () =
  let rec next () =
    Mutex.lock t.lock;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some job ->
        Condition.signal t.space_available;
        Mutex.unlock t.lock;
        Some job
      | None ->
        if t.closed then begin
          Mutex.unlock t.lock;
          None
        end
        else begin
          ignore (Atomic.fetch_and_add t.worker_waits 1);
          Condition.wait t.work_available t.lock;
          take ()
        end
    in
    match take () with
    | None -> ()
    | Some job ->
      (try
         job ();
         ignore (Atomic.fetch_and_add t.executed 1)
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set t.failure None (Some (e, bt))));
      next ()
  in
  next ()

let create ?(queue_capacity = 256) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  let t =
    {
      size = jobs;
      capacity = queue_capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      space_available = Condition.create ();
      closed = false;
      peak_depth = 0;
      executed = Atomic.make 0;
      worker_waits = Atomic.make 0;
      submit_waits = Atomic.make 0;
      failure = Atomic.make None;
      domains = [||];
    }
  in
  t.domains <- Array.init jobs (fun _ -> Domain.spawn (worker t));
  t

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Queue.length t.queue >= t.capacity do
    ignore (Atomic.fetch_and_add t.submit_waits 1);
    Condition.wait t.space_available t.lock
  done;
  Queue.add job t.queue;
  if Queue.length t.queue > t.peak_depth then t.peak_depth <- Queue.length t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let peak_depth = t.peak_depth in
  Mutex.unlock t.lock;
  {
    workers = t.size;
    executed = Atomic.get t.executed;
    worker_waits = Atomic.get t.worker_waits;
    submit_waits = Atomic.get t.submit_waits;
    peak_depth;
  }

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Condition.broadcast t.space_available;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains;
  match Atomic.get t.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run_all ?queue_capacity ~jobs f items =
  let pool = create ?queue_capacity ~jobs () in
  let submitted =
    try
      List.iter (fun item -> submit pool (fun () -> f item)) items;
      None
    with e -> Some e
  in
  shutdown pool;
  match submitted with Some e -> raise e | None -> ()
