test/test_indemnity.mli:
