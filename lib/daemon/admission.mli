(** Admission control: a bounded FIFO of work the daemon has accepted
    but not yet run.

    The bound is the backpressure contract — when the queue is full,
    {!try_push} says no and the daemon answers [busy] instead of
    buffering without limit. The client owns the retry policy; the
    daemon's memory stays bounded no matter how fast submissions
    arrive. *)

type 'a t

val create : ?bound:int -> unit -> 'a t
(** Default bound 64. [bound = 0] refuses everything — useful for
    forcing the busy path in tests.
    @raise Invalid_argument on a negative bound. *)

val bound : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** False when the queue is at its bound (counted in {!refused}). *)

val pop : 'a t -> 'a option

val depth : 'a t -> int

val peak : 'a t -> int
(** High-water mark of {!depth}. *)

val admitted : 'a t -> int
val refused : 'a t -> int
