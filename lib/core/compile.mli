(** Compiled protocol plans (the serve-path "instruction plan").

    [compile] flattens a synthesized protocol — scripts, escrow duties,
    persona duties, deposits, audit criteria, exposure pricing — into
    integer-indexed immutable arrays. A plan is built once per cached
    shape and shared read-only across runs and domains; the
    allocation-free runtime that executes it lives in
    [Trust_sim.Hotpath], which is property-tested against the
    interpreted [Trust_sim.Harness] oracle.

    The representation is deliberately transparent: the runtime indexes
    these arrays directly on its hot path. *)

open Exchange

type step = {
  cond : int;  (** action id to wait for; [-1] means fire immediately *)
  act : int;
}

type deal_slot = {
  sl_deal : int;  (** index into the spec's deal list *)
  sl_left_in : int;  (** [Do] of the Left side transfer into the agent *)
  sl_right_in : int;
  sl_left_back : int;  (** [Undo] counterparts (deadline returns) *)
  sl_right_back : int;
  sl_forwards : int array;  (** completion forwards, documents before money *)
}

type deposit_slot = {
  dp_in : int;  (** [Do] of the §6 deposit transfer *)
  dp_back : int;  (** its [Undo] (the refund) *)
  dp_forfeit : int;  (** [Do] forfeiting the amount to the protected owner *)
  dp_deal : int;  (** deal index of the covered piece *)
  dp_left : bool;  (** covered piece is the deal's Left side *)
}

type escrow = {
  es_atomic : bool;
  es_deals : deal_slot array;  (** mediated deals, spec order *)
  es_deposits : deposit_slot array;  (** held deposits, offer order *)
  es_notifies : step array;  (** notification steps of the agent's script *)
}

type persona_deal = {
  pc_deal : int;
  pc_incoming : int;  (** [Do] of the counterparty's transfer into me *)
  pc_return : int;  (** its [Undo] *)
  pc_forward : int;  (** [Do] of my own counterpart transfer *)
}

type role =
  | Script of { steps : step array; persona : persona_deal array }
  | Escrow of escrow

type commit_check = {
  cc_send : int;  (** the principal's visible send for this commitment *)
  cc_recv : int array;  (** candidate deliveries completing it *)
}

type judge = Judge_principal of int * commit_check array | Judge_trusted of int

type t = {
  spec : Spec.t;
  lockstep : bool;  (** lockstep runs broadcast deliveries *)
  n_deals : int;
  parties : Party.t array;  (** [Spec.parties] order, extended by action endpoints *)
  name_of : int array;  (** party index -> name index *)
  n_names : int;
  pslot_of_name : int array;  (** name index -> principal slot, [-1] none *)
  n_principals : int;
  actions : Action.t array;
  n_actions : int;
  act_kind : int array;  (** 0 [Do], 1 [Undo], 2 [Notify] *)
  act_debit : int array;  (** debited party index, [-1] for notifications *)
  act_credit : int array;
  act_doc : int array;  (** document id, [-1] for money/notify *)
  act_amount : int array;  (** money amount, [0] otherwise *)
  act_beneficiary : int array;
  act_undo : int array;  (** id of a [Do]'s [Undo] counterpart, else [-1] *)
  docs : string array;
  n_docs : int;
  roles : (int * role) array;  (** (party index, role), behaviour order *)
  behavior_of : int array;  (** party index -> roles index, [-1] *)
  endow_balance : int array;  (** per name index *)
  endow_docs : int array array;  (** per name index, per doc id *)
  expiries : (int * int) array;  (** (deal index, expiry tick), spec order *)
  judged : judge array;
  deposit_expect : int array;  (** per action id: §6 deposit occurrences *)
  price_src : int array;  (** asset value to the releasing party *)
  price_tgt : int array;
  custody_if_had : bool array;
      (** target takes custody (not ownership), given the sender had custody *)
  custody_if_not : bool array;
  src_principal : bool array;
  tgt_trusted : bool array;
  bound : int array;  (** per principal slot: §5 single-transfer bound *)
}

val compile :
  lockstep:bool ->
  shared:bool ->
  ?plan:Indemnity.plan ->
  price:(Party.t -> Asset.t -> int) ->
  Spec.t ->
  Protocol.t ->
  t
(** Flatten a synthesized protocol. [price] is the deal-implied
    valuation used by exposure accounting (pass
    [Trust_sim.Trace.price_for spec]); [lockstep] and [shared] must
    match the harness options the protocol will run under.
    @raise Invalid_argument if the spec carries acceptability
    overrides — those specs are not cacheable and never compiled. *)

val party_index : t -> Party.t -> int
(** Index of a party in [parties], [-1] if unknown to the plan. *)
