(* Per-deal escrow deadlines (§2.2) and expiring notifications (§2.5) —
   the temporal extension §9 defers: "the complexities arising from the
   expiration of partial exchanges and notifications". *)

open Exchange
module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Audit = Trust_sim.Audit

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_with_deadline () =
  let d =
    Spec.with_deadline 40
      (Spec.sale ~id:"x" ~buyer:(Party.consumer "c") ~seller:(Party.producer "p")
         ~via:(Party.trusted "t") ~price:(Asset.dollars 1) ~good:"d")
  in
  check "recorded" true (d.Spec.deadline = Some 40)

let test_validate_deadline () =
  let bad =
    Spec.with_deadline 0
      (Spec.sale ~id:"x" ~buyer:(Party.consumer "c") ~seller:(Party.producer "p")
         ~via:(Party.trusted "t") ~price:(Asset.dollars 1) ~good:"d")
  in
  match Spec.make [ bad ] with
  | Error errors ->
    check "rejected" true (List.mem "deal x: non-positive deadline" errors)
  | Ok _ -> Alcotest.fail "zero deadline must be rejected"

let test_dsl_within () =
  let src =
    {|principal c : consumer
      principal p : producer
      trusted t
      deal cp: c pays $10; p gives "d"; via t within 40|}
  in
  match Trust_lang.Elaborate.from_string src with
  | Error e -> Alcotest.fail e
  | Ok spec ->
    let d = List.hd spec.Spec.deals in
    check "parsed" true (d.Spec.deadline = Some 40);
    (* and it round-trips *)
    (match Trust_lang.Elaborate.from_string (Trust_lang.Printer.to_string spec) with
    | Ok spec' -> check "round trip" true ((List.hd spec'.Spec.deals).Spec.deadline = Some 40)
    | Error e -> Alcotest.fail e)

(* Example 1 with a tight deadline on the inner purchase: the producer's
   document is returned before the broker can pay for it, and the whole
   exchange unwinds without loss. *)
let example1_with_inner_deadline ticks =
  let b = Party.broker "b" and p = Party.producer "p" and c = Party.consumer "c" in
  let t1 = Party.trusted "t1" and t2 = Party.trusted "t2" in
  Spec.make_exn
    ~priorities:[ (b, { Spec.deal = "cb"; side = Spec.Right }) ]
    [
      Spec.with_deadline ticks
        (Spec.sale ~id:"bp" ~buyer:b ~seller:p ~via:t2 ~price:(Asset.dollars 8) ~good:"d");
      Spec.sale ~id:"cb" ~buyer:c ~seller:b ~via:t1 ~price:(Asset.dollars 10) ~good:"d";
    ]

let run_honest spec =
  match Harness.honest_run spec with
  | Ok result -> result
  | Error e -> Alcotest.fail e

let test_generous_deadline_completes () =
  let spec = example1_with_inner_deadline 100 in
  let report = Audit.audit spec (run_honest spec) in
  check "completes" true report.Audit.all_preferred

let test_tight_deadline_unwinds () =
  let spec = example1_with_inner_deadline 3 in
  let result = run_honest spec in
  let report = Audit.audit spec result in
  check "does not complete" false report.Audit.all_preferred;
  check "but nobody loses anything" true report.Audit.honest_no_loss;
  check "and conservation holds" true report.Audit.conserved;
  (* the producer got its document back at the expiry, not at the global
     deadline *)
  let refund =
    List.find_opt
      (fun d ->
        Action.equal d.Engine.action
          (Action.undo (Action.give (Party.producer "p") (Party.trusted "t2") "d")))
      result.Engine.log
  in
  match refund with
  | Some d -> check "returned at the expiry tick" true (d.Engine.at <= 5)
  | None -> Alcotest.fail "document was not returned"

let test_late_arrival_bounced () =
  (* the broker's payment lands after the deal expired and is bounced *)
  let spec = example1_with_inner_deadline 3 in
  let result = run_honest spec in
  let bounce =
    Action.undo (Action.pay (Party.broker "b") (Party.trusted "t2") (Asset.dollars 8))
  in
  check "payment bounced" true (State.mem bounce result.Engine.state)

let test_expiry_settles_deposit () =
  (* a covered piece with its own deadline forfeits at expiry, not at the
     end of the run *)
  let fig7 = Workload.Scenarios.fig7 in
  let plan = Trust_core.Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer in
  (* rebuild fig7 with a tight deadline on the covered piece cb3 *)
  let deals =
    List.map
      (fun d -> if String.equal d.Spec.id "cb3" then Spec.with_deadline 30 d else d)
      fig7.Spec.deals
  in
  let spec = Spec.make_exn ~priorities:fig7.Spec.priorities deals in
  let b3 = Party.broker "b3" in
  match Harness.adversarial_run ~plan ~defectors:[ (b3, Harness.Partial 2) ] spec with
  | Error e -> Alcotest.fail e
  | Ok result ->
    let payout =
      Action.pay (Party.trusted "t5") Workload.Scenarios.fig7_consumer (Asset.dollars 30)
    in
    let delivery = List.find_opt (fun d -> Action.equal d.Engine.action payout) result.Engine.log in
    (match delivery with
    | Some d -> check "forfeited at the expiry tick" true (d.Engine.at <= 32)
    | None -> Alcotest.fail "forfeit not delivered");
    let report = Audit.audit spec ~plan ~defectors:[ b3 ] result in
    check "honest safe" true report.Audit.honest_all_acceptable

let test_persona_expiry_returns_goods () =
  (* a trusting source's document comes back from the persona at the
     deal's own expiry when the resale never materialises *)
  let spec = Workload.Scenarios.example2_source_trusts_broker in
  let deals =
    List.map
      (fun d -> if String.equal d.Spec.id "b1s1" then Spec.with_deadline 20 d else d)
      spec.Spec.deals
  in
  let spec =
    Spec.make_exn
      ~personas:[ (Party.trusted "t2", Party.broker "b1") ]
      ~priorities:spec.Spec.priorities deals
  in
  let c = Party.consumer "c" in
  match Harness.adversarial_run ~defectors:[ (c, Harness.Silent) ] spec with
  | Error e -> Alcotest.fail e
  | Ok result ->
    (* b1 had already shipped the document onward to t1, so the return
       waits until the outer escrow unwinds and b1 holds it again — the
       persona's obligation survives the expiry. *)
    let back = Action.undo (Action.give (Party.producer "s1") (Party.broker "b1") "d1") in
    check "document eventually returned" true (State.mem back result.Engine.state);
    let s1_holdings = List.assoc (Party.producer "s1") result.Engine.holdings in
    check "s1 ends holding d1" true (Asset.Bag.holds (Asset.document "d1") s1_holdings);
    check "honest safe" true
      (Audit.audit spec ~defectors:[ c ] result).Trust_sim.Audit.honest_no_loss

let test_expiry_count () =
  (* each armed deadline fires exactly one expiry event *)
  let spec = example1_with_inner_deadline 3 in
  let result = run_honest spec in
  check_int "no stalled leftovers counted twice" 0
    (List.length
       (List.filter
          (fun (_, a) ->
            match a with Action.Do _ -> false | Action.Undo _ | Action.Notify _ -> true)
          result.Engine.stalled))

let () =
  Alcotest.run "deadline"
    [
      ( "spec and DSL",
        [
          Alcotest.test_case "with_deadline" `Quick test_with_deadline;
          Alcotest.test_case "validation" `Quick test_validate_deadline;
          Alcotest.test_case "within clause" `Quick test_dsl_within;
        ] );
      ( "runtime expiry",
        [
          Alcotest.test_case "generous deadline completes" `Quick
            test_generous_deadline_completes;
          Alcotest.test_case "tight deadline unwinds safely" `Quick test_tight_deadline_unwinds;
          Alcotest.test_case "late arrivals bounced" `Quick test_late_arrival_bounced;
          Alcotest.test_case "expiry settles deposits" `Quick test_expiry_settles_deposit;
          Alcotest.test_case "persona returns goods at expiry" `Quick
            test_persona_expiry_returns_goods;
          Alcotest.test_case "expiry event hygiene" `Quick test_expiry_count;
        ] );
    ]
