test/test_union_find.mli:
