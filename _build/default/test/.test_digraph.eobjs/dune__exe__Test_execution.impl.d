test/test_execution.ml: Action Alcotest Asset Exchange Int64 List Outcomes Party Printf QCheck2 QCheck_alcotest Spec Trust_core Workload
