lib/exchange/party.mli: Format Map Set
