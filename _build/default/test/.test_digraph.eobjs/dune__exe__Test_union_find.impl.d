test/test_union_find.ml: Alcotest List QCheck2 QCheck_alcotest Trust_graph
