(** Cross-deal conflict analysis.

    Detects shapes that are well-formed per deal but unsound across
    the spec's deals: double spends (TL013), over-pledged indemnities
    (TL014), and deadline races against the synthesized sequence
    (TL015). Location callbacks mirror those in {!Rules}. *)

open Exchange

val double_spends :
  deal_loc:(string -> Trust_lang.Loc.t option) -> Spec.t -> Diagnostic.t list
(** TL013: a principal promises the same document into more deals than
    it can supply copies of — one initial endowment, plus one per deal
    that delivers it a copy. *)

val over_pledged :
  split_loc:(string -> Spec.commitment_ref -> Trust_lang.Loc.t option) ->
  Spec.t ->
  Diagnostic.t list
(** TL014: an owner with two or more splits whose combined indemnity
    pledges exceed the cost of its whole conjunction. *)

val deadline_races :
  deal_loc:(string -> Trust_lang.Loc.t option) ->
  Trust_core.Execution.sequence ->
  Diagnostic.t list
(** TL015: a deal whose [within n] deadline is shorter than the number
    of lockstep steps its escrow stays open in the synthesized
    sequence. *)

val structural :
  deal_loc:(string -> Trust_lang.Loc.t option) ->
  split_loc:(string -> Spec.commitment_ref -> Trust_lang.Loc.t option) ->
  Spec.t ->
  Diagnostic.t list
(** The synthesis-free passes: {!double_spends} and {!over_pledged}.
    Runs even in quick mode (serve admission gate). *)
