(** A fixed-size domain pool with a bounded work queue.

    [jobs] OCaml 5 domains drain one FIFO of [unit -> unit] closures.
    {!submit} blocks when the queue is full (bounded admission, so a
    fast producer cannot build an unbounded backlog), {!shutdown}
    closes the queue, drains every remaining job, joins every domain
    and re-raises the first job exception, if any, with its original
    backtrace.

    The pool never looks at results: callers hand it closures that
    write into caller-owned slots (one slot per job — e.g. the mutable
    fields of a {!Session.t} owned by exactly one closure). The
    {!shutdown} join is the happens-before edge that makes those slots
    safe to read afterwards, which is how the scheduler merges
    per-session outcomes back in submission order. *)

type t

type stats = {
  workers : int;  (** pool size, fixed at creation *)
  executed : int;  (** jobs completed without raising *)
  worker_waits : int;  (** times an idle worker blocked on an empty queue *)
  submit_waits : int;  (** times {!submit} blocked on a full queue *)
  peak_depth : int;  (** high-water mark of the queue *)
}

val create : ?queue_capacity:int -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains ([>= 1]). [queue_capacity] (default
    256) bounds the backlog {!submit} may build. *)

val size : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job; blocks while the queue is at capacity.
    @raise Invalid_argument after {!shutdown}. *)

val stats : t -> stats

val shutdown : t -> unit
(** Close the queue, run every queued job, join every domain, then
    re-raise the first exception any job raised (submission order is
    not guaranteed for the {e choice} of exception; there is at most
    one per shutdown). Idempotent only in effect — call it once. *)

val run_all : ?queue_capacity:int -> jobs:int -> ('a -> unit) -> 'a list -> unit
(** [run_all ~jobs f items] = create, submit [f item] for each item in
    order, shutdown. Convenience for one-shot batches. *)
