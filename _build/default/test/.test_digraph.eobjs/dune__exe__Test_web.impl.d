test/test_web.ml: Alcotest Asset Exchange List Party Spec String Trust_core Trust_lang
