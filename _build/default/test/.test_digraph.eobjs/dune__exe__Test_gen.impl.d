test/test_gen.ml: Alcotest Asset Exchange Int64 List Party QCheck2 QCheck_alcotest Spec Trust_core Workload
