(* The daemon's wire contract, bolted down at three layers: the frame
   reassembler against arbitrary chunking, the request/response JSON
   vocabulary as a round trip, and a live server on a real Unix socket
   — handshake, submission, backpressure, garbage, and graceful
   drain. *)

module Frame = Trust_daemon.Frame
module Wire = Trust_daemon.Wire
module Admission = Trust_daemon.Admission
module Server = Trust_daemon.Server
module Client = Trust_daemon.Client
module Ring = Trust_obs.Ring
module Scheduler = Trust_serve.Scheduler

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* -- framing -- *)

let frames events =
  List.map (function Frame.Frame p -> p | Frame.Oversized n -> Printf.sprintf "<oversized %d>" n) events

let test_frame_roundtrip () =
  let d = Frame.create () in
  Alcotest.(check (list string))
    "one frame back" [ "hello" ]
    (frames (Frame.feed_string d (Frame.encode "hello")));
  check_int "nothing buffered" 0 (Frame.buffered d);
  check "not mid-frame" false (Frame.mid_frame d)

let test_frame_byte_at_a_time () =
  (* the pathological chunking: every byte arrives alone *)
  let d = Frame.create () in
  let payload = "{\"type\":\"ping\",\"id\":7}" in
  let bytes = Frame.encode payload in
  let got = ref [] in
  String.iter
    (fun c -> got := !got @ frames (Frame.feed_string d (String.make 1 c)))
    bytes;
  Alcotest.(check (list string)) "reassembled" [ payload ] !got;
  check_int "drained" 0 (Frame.buffered d)

let test_frame_batch_and_split () =
  (* three frames in one read, then a fourth split across the header *)
  let d = Frame.create () in
  let p1 = "a" and p2 = String.make 100 'b' and p3 = "" in
  let batch = Frame.encode p1 ^ Frame.encode p2 ^ Frame.encode p3 in
  Alcotest.(check (list string)) "batch order" [ p1; p2; p3 ] (frames (Frame.feed_string d batch));
  let p4 = "tail" in
  let enc = Frame.encode p4 in
  Alcotest.(check (list string)) "header half delivers nothing" []
    (frames (Frame.feed_string d (String.sub enc 0 2)));
  check "mid-frame while split" true (Frame.mid_frame d);
  Alcotest.(check (list string)) "rest completes it" [ p4 ]
    (frames (Frame.feed_string d (String.sub enc 2 (String.length enc - 2))))

let test_frame_oversized_poisons () =
  let d = Frame.create ~max_frame:64 () in
  let events = Frame.feed_string d (Frame.encode (String.make 65 'x')) in
  (match events with
  | [ Frame.Oversized 65 ] -> ()
  | _ -> Alcotest.fail "expected Oversized 65");
  check "poisoned" true (Frame.poisoned d);
  Alcotest.(check (list string)) "poisoned decoder yields nothing" []
    (frames (Frame.feed_string d (Frame.encode "ok")))

let test_frame_ascii_garbage_is_oversized () =
  (* line noise before the handshake: ASCII reads as a huge length *)
  let d = Frame.create () in
  match Frame.feed_string d "GET / HTTP/1.0\r\n\r\n" with
  | [ Frame.Oversized n ] ->
    check "ASCII decodes far beyond the bound" true (n > Frame.default_max);
    check "poisoned" true (Frame.poisoned d)
  | _ -> Alcotest.fail "expected a single Oversized event"

let test_frame_empty_and_bounds () =
  let d = Frame.create () in
  Alcotest.(check (list string)) "empty payload frames fine" [ "" ]
    (frames (Frame.feed_string d (Frame.encode "")));
  check "feeding nothing is a no-op" true (Frame.feed_string d "" = [])

(* -- wire vocabulary -- *)

let test_wire_request_roundtrip () =
  let cases =
    [
      Wire.Hello { version = Wire.version };
      Wire.Submit { id = 3; spec = "principal c : consumer\n\"quoted\\back\"" };
      Wire.Ping { id = 0 };
      Wire.Metrics { id = 12 };
      Wire.Stats { id = 99 };
    ]
  in
  List.iter
    (fun req ->
      match Wire.decode_request (Wire.encode_request req) with
      | Ok got -> check "request round trip" true (got = req)
      | Error e -> Alcotest.fail ("request round trip failed: " ^ e))
    cases

let test_wire_response_roundtrip () =
  let cases =
    [
      Wire.Welcome { version = 1; server = "trustseq test" };
      Wire.Result
        {
          id = 5;
          status = "settled";
          exit_code = 0;
          cache_hit = true;
          ticks = 10;
          events = 4;
          attempts = 1;
          exposure_peak = 30;
          exposure_ticks = 6;
          exposure_violations = 0;
          reason = None;
        };
      Wire.Result
        {
          id = 6;
          status = "error";
          exit_code = 2;
          cache_hit = false;
          ticks = 0;
          events = 0;
          attempts = 0;
          exposure_peak = 0;
          exposure_ticks = 0;
          exposure_violations = 0;
          reason = Some "<wire>:1:1: expected a declaration, found 'nope'";
        };
      Wire.Busy { id = 7 };
      Wire.Pong { id = 8 };
      Wire.Text { id = 9; kind = "metrics"; text = "# TYPE x counter\nx 1\n" };
      Wire.Refused { id = None; reason = "unsupported protocol version 9" };
      Wire.Refused { id = Some 4; reason = "oversized frame" };
    ]
  in
  List.iter
    (fun resp ->
      match Wire.decode_response (Wire.encode_response resp) with
      | Ok got -> check "response round trip" true (got = resp)
      | Error e -> Alcotest.fail ("response round trip failed: " ^ e))
    cases

let test_wire_malformed () =
  List.iter
    (fun payload ->
      match Wire.decode_request payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("decoded malformed request: " ^ payload))
    [ ""; "nonsense"; "{}"; "{\"type\":\"warp\"}"; "{\"type\":\"submit\",\"id\":1}" ]

(* -- admission -- *)

let test_admission_bound () =
  let q = Admission.create ~bound:2 () in
  check "first admitted" true (Admission.try_push q 1);
  check "second admitted" true (Admission.try_push q 2);
  check "third refused" false (Admission.try_push q 3);
  check_int "depth" 2 (Admission.depth q);
  check_int "peak" 2 (Admission.peak q);
  check_int "admitted" 2 (Admission.admitted q);
  check_int "refused" 1 (Admission.refused q);
  check "pops in order" true (Admission.pop q = Some 1);
  check "bound frees up" true (Admission.try_push q 4)

let test_admission_zero_bound () =
  let q = Admission.create ~bound:0 () in
  check "everything refused" false (Admission.try_push q ());
  check_int "nothing admitted" 0 (Admission.admitted q)

(* -- live server -- *)

let good_spec =
  String.concat "\n"
    [
      "principal c : consumer";
      "principal p : producer";
      "trusted t";
      "deal cp: c pays $10; p gives \"d\"; via t";
      "";
    ]

let sock_path name = Printf.sprintf "/tmp/trustseq-test-%d-%s.sock" (Unix.getpid ()) name

(* Start a server in its own domain, run [f client_addr stop], then
   stop, join, and hand the final stats to [after]. *)
let with_server ?(config = Server.default) name f after =
  let path = sock_path name in
  let stop = Atomic.make false in
  let cfg = { config with Server.unix_path = Some path } in
  let srv = Domain.spawn (fun () -> Server.run ~stop cfg) in
  let rec await n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else begin
      ignore (Unix.select [] [] [] 0.01);
      await (n - 1)
    end
  in
  await 500;
  let finally () =
    Atomic.set stop true;
    Domain.join srv
  in
  (try f ("unix:" ^ path) stop
   with e ->
     ignore (finally ());
     raise e);
  after (finally ())

let test_server_submit_settles () =
  with_server "settle"
    (fun addr _stop ->
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        (match Client.submit client ~id:1 ~spec:good_spec with
        | Ok (Wire.Result { status; exit_code; cache_hit; _ }) ->
          check_string "settled" "settled" status;
          check_int "exit 0" 0 exit_code;
          check "first sight misses the cache" false cache_hit
        | Ok _ -> Alcotest.fail "expected a result"
        | Error e -> Alcotest.fail e);
        (* the identical spec again: now a cache hit, same verdict *)
        (match Client.submit client ~id:2 ~spec:good_spec with
        | Ok (Wire.Result { status; cache_hit; _ }) ->
          check_string "settled again" "settled" status;
          check "second sight hits" true cache_hit
        | Ok _ -> Alcotest.fail "expected a result"
        | Error e -> Alcotest.fail e);
        (* a rejected spec still answers — with the parse position *)
        (match Client.submit client ~id:3 ~spec:"garbage here" with
        | Ok (Wire.Result { status; exit_code; reason; _ }) ->
          check_string "error status" "error" status;
          check_int "exit 2" 2 exit_code;
          check "reason names the wire source" true
            (match reason with Some r -> String.length r > 0 && String.sub r 0 6 = "<wire>" | None -> false)
        | Ok _ -> Alcotest.fail "expected a result"
        | Error e -> Alcotest.fail e);
        (match Client.request client (Wire.Ping { id = 4 }) with
        | Ok (Wire.Pong { id }) -> check_int "pong echoes id" 4 id
        | _ -> Alcotest.fail "expected pong");
        Client.close client)
    (fun stats ->
      check_int "three submissions served" 3 stats.Server.served;
      check_int "two settled" 2 stats.Server.settled;
      check_int "one aborted (the parse error)" 1 stats.Server.aborted;
      check "drained" true stats.Server.drained)

let test_server_garbage_before_handshake () =
  with_server "garbage"
    (fun addr _stop ->
      let path = String.sub addr 5 (String.length addr - 5) in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let garbage = "GET / HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd garbage 0 (String.length garbage));
      (* the daemon answers refused, then closes; read to EOF *)
      let d = Frame.create () in
      let buf = Bytes.create 4096 in
      let rec slurp acc =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> acc
        | n -> slurp (acc @ Frame.feed d buf n)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> acc
      in
      let events = slurp [] in
      Unix.close fd;
      (match events with
      | [ Frame.Frame payload ] -> (
        match Wire.decode_response payload with
        | Ok (Wire.Refused _) -> ()
        | _ -> Alcotest.fail "expected a refused response")
      | [] -> () (* the close can outrun the refusal; the counter below still proves it *)
      | _ -> Alcotest.fail "expected at most the refusal frame");
      (* the server survives: a well-behaved client still gets through *)
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        (match Client.submit client ~id:1 ~spec:good_spec with
        | Ok (Wire.Result { status; _ }) -> check_string "still serving" "settled" status
        | _ -> Alcotest.fail "expected a result after the garbage connection");
        Client.close client)
    (fun stats ->
      check "garbage counted as a protocol error" true (stats.Server.protocol_errors > 0);
      check_int "the good submission served" 1 stats.Server.served;
      check "drained" true stats.Server.drained)

let test_server_zero_pending_is_busy () =
  with_server "busy"
    ~config:{ Server.default with Server.max_pending = 0 }
    (fun addr _stop ->
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        (match Client.submit client ~id:1 ~spec:good_spec with
        | Ok (Wire.Busy { id }) -> check_int "busy echoes id" 1 id
        | Ok _ -> Alcotest.fail "expected busy with a zero admission bound"
        | Error e -> Alcotest.fail e);
        Client.close client)
    (fun stats ->
      check_int "nothing served" 0 stats.Server.served;
      check_int "one busy answer" 1 stats.Server.busy;
      check "drained" true stats.Server.drained)

let test_server_drain_with_half_frame () =
  (* a client cut off mid-frame must not wedge the drain *)
  with_server "halfframe"
    (fun addr stop ->
      let path = String.sub addr 5 (String.length addr - 5) in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* half a header: a frame the server will never see completed *)
      ignore (Unix.write_substring fd "\000\000" 0 2);
      Atomic.set stop true;
      (* leave fd open across the drain; close after the join in [after]
         via this closure capture *)
      ignore (Unix.select [] [] [] 0.05);
      Unix.close fd)
    (fun stats ->
      check "drain completes despite the half frame" true stats.Server.drained)

let test_server_epoch_aging_live () =
  (* tiny epochs: every 2 served requests, sweep entries idle 1 epoch.
     Distinct specs never repeat, so everything ages out. *)
  with_server "aging"
    ~config:{ Server.default with Server.epoch_every = 2; Server.max_idle_epochs = 1 }
    (fun addr _stop ->
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        for i = 1 to 10 do
          let spec =
            String.concat "\n"
              [
                Printf.sprintf "principal c%d : consumer" i;
                "principal p : producer";
                "trusted t";
                Printf.sprintf "deal d: c%d pays $10; p gives \"doc\"; via t" i;
                "";
              ]
          in
          match Client.submit client ~id:i ~spec with
          | Ok (Wire.Result _) -> ()
          | Ok _ -> Alcotest.fail "expected a result"
          | Error e -> Alcotest.fail e
        done;
        Client.close client)
    (fun stats ->
      check_int "ten served" 10 stats.Server.served;
      check "epochs ticked" true (stats.Server.epochs >= 4);
      check "the one-shot tail ages out" true (stats.Server.aged_out > 0);
      check "resident stays below served" true (stats.Server.cache_size < 10))

(* -- live tracing over the wire: the trace request drains the ring -- *)

let decode_exn dump =
  match Ring.decode dump with
  | Ok r -> r
  | Error e -> Alcotest.fail ("ring decode failed: " ^ e)

let test_server_trace_drain () =
  (* sample everything so both submissions land in the ring *)
  with_server "tracedrain"
    ~config:{ Server.default with Server.trace_sample = 1.0 }
    (fun addr _stop ->
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        List.iter
          (fun id ->
            match Client.submit client ~id ~spec:good_spec with
            | Ok (Wire.Result { status; _ }) -> check_string "settled" "settled" status
            | Ok _ -> Alcotest.fail "expected a result"
            | Error e -> Alcotest.fail e)
          [ 1; 2 ];
        (match Client.trace client ~id:3 with
        | Error e -> Alcotest.fail e
        | Ok dump ->
          let sessions, stats = decode_exn dump in
          check_int "both sessions in the ring" 2 (List.length sessions);
          check_int "decoder agrees" 2 stats.Ring.d_sessions;
          check "head-sampled" true
            (List.for_all (fun s -> s.Ring.s_keep = Ring.Sampled) sessions);
          let jsonl = Ring.export Trust_obs.Obs.Jsonl sessions in
          check "daemon root span present" true
            (let n = String.length jsonl and k = "daemon.request" in
             let kl = String.length k in
             let rec at i = i + kl <= n && (String.sub jsonl i kl = k || at (i + 1)) in
             at 0));
        (* drain semantics: a second trace sees only what came after *)
        (match Client.trace client ~id:4 with
        | Error e -> Alcotest.fail e
        | Ok dump ->
          let sessions, stats = decode_exn dump in
          check_int "idle drain is empty" 0 (List.length sessions);
          check "lifetime written counter survives the drain" true (stats.Ring.d_written > 0));
        Client.close client)
    (fun stats -> check_int "two submissions served" 2 stats.Server.served)

let test_server_trace_tail_promotion () =
  (* nothing head-sampled, but an impossible deadline expires every
     session — the tail rules must replay it into the ring anyway *)
  with_server "tracetail"
    ~config:
      {
        Server.default with
        Server.trace_sample = 0.0;
        scheduler = { Scheduler.default_config with Scheduler.session_deadline = 1 };
      }
    (fun addr _stop ->
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        (match Client.submit client ~id:1 ~spec:good_spec with
        | Ok (Wire.Result { status; _ }) -> check_string "expired" "expired" status
        | Ok _ -> Alcotest.fail "expected a result"
        | Error e -> Alcotest.fail e);
        (match Client.trace client ~id:2 with
        | Error e -> Alcotest.fail e
        | Ok dump -> (
          match decode_exn dump with
          | [ s ], _ ->
            check_string "promoted as an expiry" (Ring.keep_label Ring.Expiry)
              (Ring.keep_label s.Ring.s_keep)
          | sessions, _ ->
            Alcotest.fail
              (Printf.sprintf "expected exactly the expired session, got %d"
                 (List.length sessions))));
        Client.close client)
    (fun stats -> check_int "one expired" 1 stats.Server.expired)

let test_server_trace_disabled_is_empty () =
  with_server "tracenone"
    ~config:{ Server.default with Server.trace_ring = 0 }
    (fun addr _stop ->
      match Client.connect addr with
      | Error e -> Alcotest.fail e
      | Ok client ->
        (match Client.trace client ~id:1 with
        | Error e -> Alcotest.fail e
        | Ok dump ->
          let sessions, stats = decode_exn dump in
          check_int "no sessions" 0 (List.length sessions);
          check_int "zero-shard dump" 0 stats.Ring.d_shards);
        Client.close client)
    (fun stats -> check_int "nothing served" 0 stats.Server.served)

let () =
  Alcotest.run "daemon"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "byte at a time" `Quick test_frame_byte_at_a_time;
          Alcotest.test_case "batch and split header" `Quick test_frame_batch_and_split;
          Alcotest.test_case "oversized poisons" `Quick test_frame_oversized_poisons;
          Alcotest.test_case "ascii garbage is oversized" `Quick test_frame_ascii_garbage_is_oversized;
          Alcotest.test_case "empty payloads" `Quick test_frame_empty_and_bounds;
        ] );
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_wire_response_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_wire_malformed;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bound and counters" `Quick test_admission_bound;
          Alcotest.test_case "zero bound refuses all" `Quick test_admission_zero_bound;
        ] );
      ( "server",
        [
          Alcotest.test_case "submit settles" `Quick test_server_submit_settles;
          Alcotest.test_case "garbage before handshake" `Quick test_server_garbage_before_handshake;
          Alcotest.test_case "zero pending is busy" `Quick test_server_zero_pending_is_busy;
          Alcotest.test_case "drain with half frame" `Quick test_server_drain_with_half_frame;
          Alcotest.test_case "epoch aging live" `Quick test_server_epoch_aging_live;
          Alcotest.test_case "trace drains the ring" `Quick test_server_trace_drain;
          Alcotest.test_case "tail promotion over the wire" `Quick test_server_trace_tail_promotion;
          Alcotest.test_case "trace with tracing off" `Quick test_server_trace_disabled_is_empty;
        ] );
    ]
