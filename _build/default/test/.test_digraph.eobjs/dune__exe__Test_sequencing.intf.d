test/test_sequencing.mli:
