(* Web programs in the DSL: trust edges, relays, requests — the §9
   surface syntax — and their round trip through routing. *)

open Exchange
module Elaborate = Trust_lang.Elaborate
module Routing = Trust_core.Routing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let minimal_web =
  {|principal alice : consumer
    principal bob : producer
    trusted bank

    trust alice -> bank
    trust bob -> bank

    request x: alice buys "essay" from bob for $10|}

let web_ok src =
  match Elaborate.web_from_string src with
  | Ok w -> w
  | Error e -> Alcotest.fail e

let web_err src =
  match Elaborate.web_from_string src with
  | Ok _ -> Alcotest.failf "elaborating %S should fail" src
  | Error e -> e

let test_minimal_web () =
  let w = web_ok minimal_web in
  check_int "two trust edges" 2 (List.length w.Elaborate.trusts);
  check_int "no relays" 0 (List.length w.Elaborate.relays);
  match w.Elaborate.requests with
  | [ (id, buyer, good, seller, price) ] ->
    check "id" true (id = "x");
    check "buyer" true (Party.equal buyer (Party.consumer "alice"));
    check "seller" true (Party.equal seller (Party.producer "bob"));
    check "good" true (good = "essay");
    check_int "price" (Asset.dollars 10) price
  | _ -> Alcotest.fail "one request expected"

let test_is_web () =
  (match Trust_lang.Parser.parse minimal_web with
  | Ok ast -> check "web detected" true (Elaborate.is_web ast)
  | Error _ -> Alcotest.fail "parses");
  match Trust_lang.Parser.parse "trusted t" with
  | Ok ast -> check "plain program" false (Elaborate.is_web ast)
  | Error _ -> Alcotest.fail "parses"

let test_web_rejects_deals () =
  let e =
    web_err
      {|principal a : consumer
        principal b : producer
        trusted t
        deal d: a pays $1; b gives "x"; via t
        request r: a buys "x" from b for $1|}
  in
  check "deal rejected" true (String.length e > 0)

let test_web_rejects_trusted_truster () =
  let e =
    web_err
      {|principal a : consumer
        principal b : producer
        trusted t
        trust t -> a
        request r: a buys "x" from b for $1|}
  in
  check "trusted truster rejected" true (String.length e > 0)

let test_web_duplicate_request () =
  let e =
    web_err
      (minimal_web ^ "\nrequest x: alice buys \"again\" from bob for $5")
  in
  check "duplicate id" true (String.length e > 0)

let test_plain_program_rejects_web_decls () =
  match Trust_lang.Elaborate.from_string minimal_web with
  | Error e -> check "exchange elaboration refuses requests" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "must fail"

let test_requests_need_declared_parties () =
  let e = web_err {|request x: ghost buys "d" from phantom for $1|} in
  check "undeclared" true (String.length e > 0)

let route w =
  let trusts =
    List.map (fun (a, b) -> Routing.{ truster = a; trustee = b }) w.Elaborate.trusts
  in
  let requests =
    List.map
      (fun (id, buyer, good, seller, price) -> Routing.{ id; buyer; seller; price; good })
      w.Elaborate.requests
  in
  Routing.connect ~relays:w.Elaborate.relays ~trusts requests

let test_route_minimal () =
  match route (web_ok minimal_web) with
  | Ok routed ->
    check "common agent" true
      (match List.assoc "x" routed.Routing.routes with
      | Routing.Common_agent _ -> true
      | _ -> false);
    check "feasible" true (Trust_core.Feasibility.is_feasible routed.Routing.spec)
  | Error e -> Alcotest.fail e

let test_route_specs_file () =
  (* the shipped specs/trustweb.exg routes, needs indemnities, and runs *)
  match Elaborate.web_from_file "../../../specs/trustweb.exg" with
  | Error _ -> () (* path differs under some runners; covered by the CLI *)
  | Ok w -> (
    match route w with
    | Error e -> Alcotest.fail e
    | Ok routed ->
      check_int "four hops" 4 (List.length routed.Routing.spec.Spec.deals);
      check "rescuable" true
        (Trust_core.Feasibility.rescue_with_indemnities ~shared:true routed.Routing.spec <> None))

let test_web_roundtrip () =
  let w = web_ok minimal_web in
  let printed = Trust_lang.Printer.web_to_string w in
  let w' = web_ok printed in
  check "trusts preserved" true (w.Elaborate.trusts = w'.Elaborate.trusts);
  check "requests preserved" true (w.Elaborate.requests = w'.Elaborate.requests)

let test_web_roundtrip_with_relays () =
  let src =
    minimal_web
    ^ {|
       principal carol : broker
       relay carol|}
  in
  let w = web_ok src in
  let w' = web_ok (Trust_lang.Printer.web_to_string w) in
  check "relays preserved" true (w.Elaborate.relays = w'.Elaborate.relays)

let () =
  Alcotest.run "web"
    [
      ( "elaboration",
        [
          Alcotest.test_case "minimal web" `Quick test_minimal_web;
          Alcotest.test_case "web detection" `Quick test_is_web;
          Alcotest.test_case "deals rejected" `Quick test_web_rejects_deals;
          Alcotest.test_case "trusted truster rejected" `Quick test_web_rejects_trusted_truster;
          Alcotest.test_case "duplicate request" `Quick test_web_duplicate_request;
          Alcotest.test_case "plain program refuses web decls" `Quick
            test_plain_program_rejects_web_decls;
          Alcotest.test_case "undeclared parties" `Quick test_requests_need_declared_parties;
        ] );
      ( "routing and round trips",
        [
          Alcotest.test_case "minimal route" `Quick test_route_minimal;
          Alcotest.test_case "shipped web file" `Quick test_route_specs_file;
          Alcotest.test_case "round trip" `Quick test_web_roundtrip;
          Alcotest.test_case "round trip with relays" `Quick test_web_roundtrip_with_relays;
        ] );
    ]
