examples/adversary_sim.mli:
