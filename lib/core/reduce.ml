module Obs = Trust_obs.Obs

type rule = Rule1 | Rule1_persona | Rule2 | Rule3_shared

type deletion = {
  step : int;
  rule : rule;
  cid : int;
  jid : int;
  colour : Sequencing.colour;
  commitment_disconnected : bool;
  conjunction_disconnected : bool;
}

type verdict = Feasible | Stuck of { remaining : (int * int * Sequencing.colour) list }

type outcome = { verdict : verdict; deletions : deletion list; graph : Sequencing.t }

(* Rule #2 candidates: the single edge of each fringe conjunction. *)
let rule2_candidates g =
  let n = Sequencing.conjunction_count g in
  let rec scan jid acc =
    if jid < 0 then acc
    else
      match Sequencing.edges_of_conjunction g jid with
      | [ (cid, _) ] -> scan (jid - 1) ((Rule2, cid, jid) :: acc)
      | _ -> scan (jid - 1) acc
  in
  scan (n - 1) []

(* Rule #1 candidates: the single edge of each fringe commitment, when
   not pre-empted by a sibling red edge — or pre-empted but the
   principal plays its own trusted-agent role (clause 2). *)
let rule1_candidates g =
  let n = Sequencing.commitment_count g in
  let rec scan cid acc =
    if cid < 0 then acc
    else
      match Sequencing.edges_of_commitment g cid with
      | [ (jid, _) ] -> (
        match Sequencing.red_sibling g ~cid ~jid with
        | None -> scan (cid - 1) ((Rule1, cid, jid) :: acc)
        | Some _ when Sequencing.plays_own_agent g cid ->
          scan (cid - 1) ((Rule1_persona, cid, jid) :: acc)
        | Some _ -> scan (cid - 1) acc)
      | _ -> scan (cid - 1) acc
  in
  scan (n - 1) []

(* Rule #3 (extension, see the interface): the edges of a bundle
   conjunction that one agent coordinates atomically — see
   {!Sequencing.coordinated_bundles} for the eligibility conditions. *)
let rule3_candidates g =
  let bundles = Sequencing.coordinated_bundles (Sequencing.spec g) in
  let n = Sequencing.conjunction_count g in
  let rec scan jid acc =
    if jid < 0 then acc
    else begin
      let j = Sequencing.conjunction g jid in
      let eligible =
        List.exists (fun (owner, _) -> Exchange.Party.equal owner j.Sequencing.owner) bundles
      in
      let acc =
        if eligible then
          List.fold_left
            (fun acc (cid, _) -> (Rule3_shared, cid, jid) :: acc)
            acc
            (Sequencing.edges_of_conjunction g jid)
        else acc
      in
      scan (jid - 1) acc
    end
  in
  scan (n - 1) []

let applicable_with ~shared g =
  let all =
    rule2_candidates g @ rule1_candidates g @ (if shared then rule3_candidates g else [])
  in
  (* Collapse duplicates on the same edge, keeping the first occurrence
     (Rule2 has priority in the listing). *)
  let rec dedup seen = function
    | [] -> []
    | ((_, cid, jid) as cand) :: rest ->
      if List.mem (cid, jid) seen then dedup seen rest
      else cand :: dedup ((cid, jid) :: seen) rest
  in
  dedup [] all

let applicable g = applicable_with ~shared:false g

let apply g ~step (rule, cid, jid) =
  let colour =
    match Sequencing.edge_colour g ~cid ~jid with
    | Some colour -> colour
    | None -> invalid_arg "Reduce.apply: edge not present"
  in
  Sequencing.remove_edge g ~cid ~jid;
  {
    step;
    rule;
    cid;
    jid;
    colour;
    commitment_disconnected = Sequencing.is_disconnected_commitment g cid;
    conjunction_disconnected = Sequencing.is_disconnected_conjunction g jid;
  }

let finish g deletions =
  let verdict =
    if Sequencing.fully_reduced g then Feasible
    else
      let remaining =
        List.concat
          (List.map
             (fun c ->
               List.map
                 (fun (jid, colour) -> (c.Sequencing.cid, jid, colour))
                 (Sequencing.edges_of_commitment g c.Sequencing.cid))
             (Array.to_list (Sequencing.commitments g)))
      in
      Stuck { remaining }
  in
  { verdict; deletions = List.rev deletions; graph = g }

(* Reduction telemetry: one "delete" event per rule application (the
   deletion timeline) and per-rule counters on the reduce span. All
   values are virtual (steps, node ids), so traces stay deterministic. *)

let pp_rule_name rule =
  match rule with
  | Rule1 -> "rule1"
  | Rule1_persona -> "rule1_persona"
  | Rule2 -> "rule2"
  | Rule3_shared -> "rule3_shared"

let record_deletion obs h g (d : deletion) =
  if Obs.enabled obs then
    Obs.event obs h "delete"
      ~attrs:
        [
          ("step", Obs.Int d.step);
          ("rule", Obs.Str (pp_rule_name d.rule));
          ("cid", Obs.Int d.cid);
          ("jid", Obs.Int d.jid);
          ("colour", Obs.Str (Format.asprintf "%a" Sequencing.pp_colour d.colour));
          ("owner", Obs.Str (Exchange.Party.name (Sequencing.conjunction g d.jid).Sequencing.owner));
        ]

let record_outcome obs h ?(pushes = -1) ?(rescans = -1) outcome =
  if Obs.enabled obs then begin
    let count r = List.length (List.filter (fun d -> d.rule = r) outcome.deletions) in
    Obs.attr obs h "steps" (Obs.Int (List.length outcome.deletions));
    Obs.attr obs h "rule1" (Obs.Int (count Rule1));
    Obs.attr obs h "rule1_persona" (Obs.Int (count Rule1_persona));
    Obs.attr obs h "rule2" (Obs.Int (count Rule2));
    Obs.attr obs h "rule3_shared" (Obs.Int (count Rule3_shared));
    if pushes >= 0 then Obs.attr obs h "worklist_pushes" (Obs.Int pushes);
    if rescans >= 0 then Obs.attr obs h "rescans" (Obs.Int rescans);
    match outcome.verdict with
    | Feasible -> Obs.attr obs h "verdict" (Obs.Str "feasible")
    | Stuck { remaining } ->
      Obs.attr obs h "verdict" (Obs.Str "stuck");
      Obs.attr obs h "remaining" (Obs.Int (List.length remaining))
  end

let run_with ?(shared = false) ?(obs = Obs.null) ?parent ?(span_name = "reduce.rescan") ~pick g =
  Obs.with_span obs ?parent ~phase:"reduce" span_name (fun h ->
      let rescans = ref 0 in
      let rec loop step deletions =
        incr rescans;
        match applicable_with ~shared g with
        | [] -> finish g deletions
        | candidates ->
          let deletion = apply g ~step (pick candidates) in
          record_deletion obs h g deletion;
          loop (step + 1) (deletion :: deletions)
      in
      let outcome = loop 1 [] in
      record_outcome obs h ~rescans:!rescans outcome;
      outcome)

(* Deterministic priority: Rule #2 first (conjunction disconnects —
   notifications — fire as soon as enabled); then Rule #1 with
   commitments of *external* principals (parties with no conjunction of
   their own) before conjunction members, each group in index order.
   Externals-first means unentangled parties deposit before a bundle
   owner is asked to commit anything — the order the paper's walkthrough
   follows, and the one that keeps bundle buyers safe at run time. *)
let deterministic_pick g =
  let external_principal cid =
    let c = Sequencing.commitment g cid in
    Sequencing.conjunction_of_party g c.Sequencing.principal = None
  in
  let pick candidates =
    let rank (rule, cid, _) =
      match rule with
      | Rule2 -> 0
      | Rule1 | Rule1_persona -> if external_principal cid then 1 else 2
      | Rule3_shared -> 3
    in
    match List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) candidates with
    | cand :: _ -> cand
    | [] -> assert false
  in
  pick

let run_rescan ?obs ?parent g = run_with ?obs ?parent ~pick:(deterministic_pick g) g

let run_shared ?obs ?parent g =
  run_with ~shared:true ?obs ?parent ~span_name:"reduce.shared" ~pick:(deterministic_pick g) g

let run_randomized ~choose g =
  let pick candidates = List.nth candidates (choose (List.length candidates)) in
  run_with ~pick g

(* Incremental reduction: a deletion of edge (c, j) can only enable
   Rule #2 at j, Rule #1 at c (if it keeps another edge) and Rule #1 at
   j's other commitments (whose pre-empting red edge may just have
   vanished). Everything else is untouched, so after each deletion only
   those nodes are re-examined — no rescans.

   Candidates live in three ordered sets mirroring {!deterministic_pick}
   exactly: Rule #2 conjunctions by index, then Rule #1 commitments with
   external principals by index, then the remaining Rule #1 commitments.
   Picking the minimum of the first non-empty set therefore reproduces
   the rescanning reducer's deletion sequence edge for edge (the paper's
   Example #1 walkthrough), which {!run_rescan} pins in the tests. *)
module Int_set = Set.Make (Int)

let run_worklist ?(obs = Obs.null) ?parent g =
  Obs.with_span obs ?parent ~phase:"reduce" "reduce.worklist" (fun obs_span ->
  let pushes = ref 0 in
  (* profiler hook, not control flow: a push is an insertion into one of
     the candidate sets; counted only when a trace is attached *)
  let note_push set elt = if Obs.enabled obs && not (Int_set.mem elt !set) then incr pushes in
  let ncom = Sequencing.commitment_count g in
  (* Static: whether the commitment's principal is external (owns no
     conjunction). Nodes never disappear, only edges do. *)
  let external_principal =
    Array.init ncom (fun cid ->
        let c = Sequencing.commitment g cid in
        Sequencing.conjunction_of_party g c.Sequencing.principal = None)
  in
  let rule2 = ref Int_set.empty in
  let rule1_external = ref Int_set.empty and rule1_internal = ref Int_set.empty in
  (* Which Rule #1 clause admitted the commitment, kept alongside the
     sets so picking does not re-derive it. *)
  let clause = Array.make (max 1 ncom) Rule1 in
  let refresh_conjunction jid =
    match Sequencing.edges_of_conjunction g jid with
    | [ _ ] ->
      note_push rule2 jid;
      rule2 := Int_set.add jid !rule2
    | _ -> rule2 := Int_set.remove jid !rule2
  in
  let refresh_commitment cid =
    let admitted =
      match Sequencing.edges_of_commitment g cid with
      | [ (jid, _) ] -> (
        match Sequencing.red_sibling g ~cid ~jid with
        | None -> Some Rule1
        | Some _ when Sequencing.plays_own_agent g cid -> Some Rule1_persona
        | Some _ -> None)
      | _ -> None
    in
    match admitted with
    | Some rule ->
      clause.(cid) <- rule;
      if external_principal.(cid) then begin
        note_push rule1_external cid;
        rule1_external := Int_set.add cid !rule1_external
      end
      else begin
        note_push rule1_internal cid;
        rule1_internal := Int_set.add cid !rule1_internal
      end
    | None ->
      if external_principal.(cid) then rule1_external := Int_set.remove cid !rule1_external
      else rule1_internal := Int_set.remove cid !rule1_internal
  in
  for cid = 0 to ncom - 1 do
    refresh_commitment cid
  done;
  for jid = 0 to Sequencing.conjunction_count g - 1 do
    refresh_conjunction jid
  done;
  let target cid =
    match Sequencing.edges_of_commitment g cid with
    | [ (jid, _) ] -> jid
    | _ -> assert false
  in
  let next () =
    match Int_set.min_elt_opt !rule2 with
    | Some jid -> (
      match Sequencing.edges_of_conjunction g jid with
      | [ (cid, _) ] -> Some (Rule2, cid, jid)
      | _ -> assert false)
    | None -> (
      match Int_set.min_elt_opt !rule1_external with
      | Some cid -> Some (clause.(cid), cid, target cid)
      | None -> (
        match Int_set.min_elt_opt !rule1_internal with
        | Some cid -> Some (clause.(cid), cid, target cid)
        | None -> None))
  in
  let deletions = ref [] and step = ref 0 in
  let rec drain () =
    match next () with
    | None -> ()
    | Some ((_, cid, jid) as candidate) ->
      incr step;
      let neighbours = List.map fst (Sequencing.edges_of_conjunction g jid) in
      let deletion = apply g ~step:!step candidate in
      record_deletion obs obs_span g deletion;
      deletions := deletion :: !deletions;
      refresh_commitment cid;
      refresh_conjunction jid;
      List.iter (fun b -> if b <> cid then refresh_commitment b) neighbours;
      drain ()
  in
  drain ();
  let outcome = finish g !deletions in
  record_outcome obs obs_span ~pushes:!pushes outcome;
  outcome)

(* The worklist reducer replays the deterministic strategy incrementally
   — identical deletion sequence, near-linear instead of quadratic — so
   it is the default synthesis path. *)
let run ?obs ?parent g = run_worklist ?obs ?parent g

let feasible outcome = outcome.verdict = Feasible

let pp_rule ppf rule =
  Format.pp_print_string ppf
    (match rule with
    | Rule1 -> "Rule#1"
    | Rule1_persona -> "Rule#1(persona)"
    | Rule2 -> "Rule#2"
    | Rule3_shared -> "Rule#3(shared-agent)")

let pp_deletion g ppf d =
  let c = Sequencing.commitment g d.cid in
  let j = Sequencing.conjunction g d.jid in
  Format.fprintf ppf "%2d. %a removes %a edge (%s|%s, AND %s)%s%s" d.step pp_rule d.rule
    Sequencing.pp_colour d.colour
    (Exchange.Party.name c.Sequencing.agent)
    (Exchange.Party.name c.Sequencing.principal)
    (Exchange.Party.name j.Sequencing.owner)
    (if d.commitment_disconnected then " [commitment disconnected]" else "")
    (if d.conjunction_disconnected then " [conjunction disconnected]" else "")

let pp_outcome ppf outcome =
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," (pp_deletion outcome.graph) d) outcome.deletions;
  (match outcome.verdict with
  | Feasible -> Format.fprintf ppf "verdict: FEASIBLE"
  | Stuck { remaining } ->
    Format.fprintf ppf "verdict: STUCK with %d edges remaining" (List.length remaining));
  Format.fprintf ppf "@]"
