(* The exposure ledger: a custody-tracking fold over the delivery log.

   Each asset that enters a custody holder (a genuine trusted agent, or
   a principal persona performing a deal's trusted role) is queued FIFO
   with its original contributor and classification, so later forwards,
   agent-to-agent migrations, deadline refunds and indemnity
   settlements debit the right principal's position. A principal's
   at-risk value is what it has released into other principals' hands
   (directly, through a persona, or by an escrow settling its side)
   minus what it has received back — escrowed custody at genuine
   trusted agents is out of its hands but protected, and is accounted
   separately, which is exactly the §8 trade-off: mediation converts
   at-risk exposure into escrow at the price of extra messages. *)

open Exchange
module Indemnity = Trust_core.Indemnity
module Obs = Trust_obs.Obs

type sample = {
  at : int;
  at_risk : Asset.money;
  in_escrow : Asset.money;
  deposits : Asset.money;
  goods_out : int;
}

type violation_kind =
  | Bound_exceeded of { at_risk : Asset.money; bound : Asset.money }
  | Unsettled of { residual : Asset.money }

type violation = { v_party : Party.t; v_at : int; v_kind : violation_kind }

type deal_summary = {
  d_party : Party.t;
  d_deal : string;
  d_peak : Asset.money;
  d_first : int;
  d_last : int;
}

type party_ledger = {
  party : Party.t;
  bound : Asset.money;
  timeline : sample list;
  peak_at_risk : Asset.money;
  peak_in_escrow : Asset.money;
  peak_deposits : Asset.money;
  risk_ticks : int;
  final : sample;
}

type agent_ledger = {
  agent : Party.t;
  custody_timeline : (int * Asset.money) list;
  peak_custody : Asset.money;
  final_custody : Asset.money;
}

type t = {
  parties : party_ledger list;
  agents : agent_ledger list;
  deals : deal_summary list;
  violations : violation list;
  duration : int;
}

(* §5: a feasible sequence keeps at most one transfer of a party in
   flight, so its worst honest-run position is its single largest
   outgoing transfer. *)
let single_transfer_bound spec party =
  List.fold_left
    (fun acc (cref, d) ->
      if Party.equal (Spec.commitment_principal d cref.Spec.side) party then
        max acc (Trace.price_for spec party (Spec.commitment_sends d cref.Spec.side))
      else acc)
    0 (Spec.commitments spec)

(* -- mutable fold state -- *)

type cls = Protected | Exposed | Deposit
(* Protected: held at a genuine trusted agent. Exposed: in another
   principal's hands (direct transfer, or custody at a persona).
   Deposit: a §6 indemnity deposit at its trusted holder. *)

type entry = {
  e_contrib : Party.t option;  (* None: unattributed custody *)
  mutable e_value : Asset.money;  (* remaining value (money splits) *)
  e_cls : cls;
  e_deal : string option;
}

type astate = {
  a_party : Party.t;
  mutable a_docs : (string * entry) list;  (* FIFO, oldest first *)
  mutable a_money : entry list;  (* FIFO, oldest first *)
  mutable a_custody : Asset.money;
  mutable a_peak : Asset.money;
  mutable a_samples : (int * Asset.money) list;  (* reversed *)
}

type dstate = {
  mutable d_out : Asset.money;  (* outstanding outgoing value *)
  mutable d_recv : Asset.money;
  mutable ds_peak : Asset.money;
  mutable ds_first : int;
  mutable ds_last : int;
}

type pstate = {
  p_party : Party.t;
  p_bound : Asset.money;
  p_honest : bool;
  mutable p_released : Asset.money;  (* value in other principals' hands *)
  mutable p_received : Asset.money;
  mutable p_escrow : Asset.money;
  mutable p_deposits : Asset.money;
  mutable p_goods_out : int;
  mutable p_samples : sample list;  (* reversed *)
  mutable p_peak_risk : Asset.money;
  mutable p_peak_escrow : Asset.money;
  mutable p_peak_deposits : Asset.money;
  mutable p_risk_ticks : int;
  mutable p_prev_at : int;  (* tick of the last sample *)
  mutable p_prev_risk : Asset.money;
  mutable p_risk_since : int;  (* first tick of the current risk window, -1 if none *)
  mutable p_bound_flagged : bool;
  p_deals : (string, dstate) Hashtbl.t;
}

let at_risk_of p = max 0 (p.p_released - p.p_received)

let of_result ?plan ?(defectors = []) spec (result : Engine.result) =
  let price = Trace.price_for spec in
  let principals = Spec.principals spec in
  let pstates =
    List.map
      (fun party ->
        ( Party.name party,
          {
            p_party = party;
            p_bound = single_transfer_bound spec party;
            p_honest = not (List.exists (Party.equal party) defectors);
            p_released = 0;
            p_received = 0;
            p_escrow = 0;
            p_deposits = 0;
            p_goods_out = 0;
            p_samples = [];
            p_peak_risk = 0;
            p_peak_escrow = 0;
            p_peak_deposits = 0;
            p_risk_ticks = 0;
            p_prev_at = 0;
            p_prev_risk = 0;
            p_risk_since = -1;
            p_bound_flagged = false;
            p_deals = Hashtbl.create 4;
          } ))
      principals
  in
  let pstate party = List.assoc_opt (Party.name party) pstates in
  let agents : (string, astate) Hashtbl.t = Hashtbl.create 8 in
  let agent_order = ref [] in
  let astate party =
    let key = Party.name party in
    match Hashtbl.find_opt agents key with
    | Some a -> a
    | None ->
      let a =
        { a_party = party; a_docs = []; a_money = []; a_custody = 0; a_peak = 0; a_samples = [] }
      in
      Hashtbl.replace agents key a;
      agent_order := key :: !agent_order;
      a
  in
  let violations = ref [] in
  (* outstanding §6 deposit transfers, matched one occurrence at a time *)
  let pending_deposits =
    ref
      (match plan with
      | None -> []
      | Some p ->
        List.map
          (fun (o : Indemnity.offer) ->
            (Action.Do
               {
                 Action.source = o.Indemnity.offered_by;
                 target = o.Indemnity.via;
                 asset = Asset.money o.Indemnity.amount;
               },
              o.Indemnity.piece.Spec.deal))
          p.Indemnity.offers)
  in
  let take_deposit action =
    let rec go acc = function
      | [] -> None
      | (a, deal) :: rest when Action.equal a action ->
        pending_deposits := List.rev_append acc rest;
        Some deal
      | x :: rest -> go (x :: acc) rest
    in
    go [] !pending_deposits
  in
  (* deal attribution of a party's own transfer *)
  let deal_of_send party asset =
    List.find_map
      (fun (cref, d) ->
        if
          Party.equal (Spec.commitment_principal d cref.Spec.side) party
          && Asset.equal (Spec.commitment_sends d cref.Spec.side) asset
        then Some d.Spec.id
        else None)
      (Spec.commitments spec)
  in
  let deal_of_receive party asset =
    List.find_map
      (fun (cref, d) ->
        if
          Party.equal (Spec.commitment_principal d cref.Spec.side) party
          && Asset.equal (Spec.commitment_expects d cref.Spec.side) asset
        then Some d.Spec.id
        else None)
      (Spec.commitments spec)
  in
  let dstate p deal =
    match Hashtbl.find_opt p.p_deals deal with
    | Some d -> d
    | None ->
      let d = { d_out = 0; d_recv = 0; ds_peak = 0; ds_first = -1; ds_last = -1 } in
      Hashtbl.replace p.p_deals deal d;
      d
  in
  let deal_out p deal v =
    match deal with
    | None -> ()
    | Some id ->
      let d = dstate p id in
      d.d_out <- d.d_out + v
  in
  let deal_recv p deal v =
    match deal with
    | None -> ()
    | Some id ->
      let d = dstate p id in
      d.d_recv <- d.d_recv + v
  in
  (* contributor position changes, routed by classification *)
  let contribute p cls deal v is_doc =
    (match cls with
    | Protected -> p.p_escrow <- p.p_escrow + v
    | Exposed -> p.p_released <- p.p_released + v
    | Deposit -> p.p_deposits <- p.p_deposits + v);
    if is_doc then p.p_goods_out <- p.p_goods_out + 1;
    deal_out p deal v
  in
  let uncontribute p cls deal v is_doc =
    (match cls with
    | Protected -> p.p_escrow <- p.p_escrow - v
    | Exposed -> p.p_released <- p.p_released - v
    | Deposit -> p.p_deposits <- p.p_deposits - v);
    if is_doc then p.p_goods_out <- p.p_goods_out - 1;
    (match deal with
    | None -> ()
    | Some id ->
      let d = dstate p id in
      d.d_out <- d.d_out - v)
  in
  (* escrow (or deposit) settles away from the contributor: the value
     is now in another principal's hands, i.e. at risk until covered *)
  let release p cls deal v =
    match cls with
    | Protected ->
      p.p_escrow <- p.p_escrow - v;
      p.p_released <- p.p_released + v
    | Deposit ->
      p.p_deposits <- p.p_deposits - v;
      p.p_released <- p.p_released + v
    | Exposed -> ignore deal
  in
  (* Is [holder] the custody holder this transfer is addressed to?
     Genuine trusted parties always hold in trust. A persona holds in
     trust only for a deal whose trusted role it performs, on the side
     whose principal is someone else (and is the sender, or the sender
     is itself forwarding custody), and only when it is not itself the
     forward target — its own counter-side receipt is final. *)
  let custody_holder_for ~src ~src_had_custody holder asset =
    Party.is_trusted holder
    || (Party.is_principal holder
       && List.exists
            (fun (cref, d) ->
              Party.equal (Spec.effective_agent spec d) holder
              && Asset.equal (Spec.commitment_sends d cref.Spec.side) asset
              && (not
                    (Party.equal (Spec.commitment_principal d cref.Spec.side) holder))
              && (not
                    (Party.equal
                       (Spec.commitment_principal d (Spec.other_side cref.Spec.side))
                       holder))
              && (Party.equal (Spec.commitment_principal d cref.Spec.side) src
                 || src_had_custody))
            (Spec.commitments spec))
  in
  let has_custody holder asset =
    match Hashtbl.find_opt agents (Party.name holder) with
    | None -> false
    | Some a -> (
      match asset with
      | Asset.Document name -> List.exists (fun (n, _) -> n = name) a.a_docs
      | Asset.Money _ -> a.a_money <> [])
  in
  (* Consume custody covering [asset] from [holder]'s FIFO queues.
     [prefer] pulls entries of that contributor first (refund
     addressing). Returns (consumed entries with their values,
     unattributed remainder). *)
  let consume holder asset ?prefer () =
    let a = astate holder in
    match asset with
    | Asset.Document name ->
      let pick l =
        let rec go acc = function
          | [] -> None
          | (n, e) :: rest when n = name -> (
            match prefer with
            | Some p when e.e_contrib <> Some p -> go ((n, e) :: acc) rest
            | _ -> Some (e, List.rev_append acc rest)
          )
          | x :: rest -> go (x :: acc) rest
        in
        go [] l
      in
      let found =
        match pick a.a_docs with
        | Some _ as r -> r
        | None ->
          (* no preferred entry: fall back to plain FIFO *)
          let rec go acc = function
            | [] -> None
            | (n, e) :: rest when n = name -> Some (e, List.rev_append acc rest)
            | x :: rest -> go (x :: acc) rest
          in
          go [] a.a_docs
      in
      (match found with
      | Some (e, rest) ->
        a.a_docs <- rest;
        a.a_custody <- a.a_custody - e.e_value;
        ([ (e, e.e_value) ], 0)
      | None -> ([], 0))
    | Asset.Money m ->
      let queue =
        match prefer with
        | None -> a.a_money
        | Some p ->
          let mine, others =
            List.partition (fun e -> e.e_contrib = Some p) a.a_money
          in
          mine @ others
      in
      let rec go taken need = function
        | rest when need = 0 -> (List.rev taken, 0, rest)
        | [] -> (List.rev taken, need, [])
        | e :: rest ->
          if e.e_value <= need then go ((e, e.e_value) :: taken) (need - e.e_value) rest
          else begin
            (* split: part of the entry stays queued *)
            let used = need in
            e.e_value <- e.e_value - used;
            ( List.rev
                (( { e_contrib = e.e_contrib; e_value = used; e_cls = e.e_cls; e_deal = e.e_deal },
                   used )
                :: taken),
              0,
              e :: rest )
          end
      in
      let taken, shortfall, rest = go [] m queue in
      a.a_money <- rest;
      let covered = m - shortfall in
      a.a_custody <- a.a_custody - covered;
      (taken, shortfall)
  in
  let push_custody holder asset entries =
    let a = astate holder in
    (match asset with
    | Asset.Document name ->
      a.a_docs <- a.a_docs @ List.map (fun e -> (name, e)) entries
    | Asset.Money _ -> a.a_money <- a.a_money @ entries);
    List.iter (fun e -> a.a_custody <- a.a_custody + e.e_value) entries
  in
  (* reclassify an entry's contributor position when custody moves
     between protected and exposed holders *)
  let reclassify e (to_cls : cls) =
    match (e.e_contrib, e.e_cls) with
    | Some contrib, from_cls when from_cls <> to_cls && from_cls <> Deposit -> (
      match pstate contrib with
      | None -> e
      | Some p ->
        (match (from_cls, to_cls) with
        | Protected, Exposed ->
          p.p_escrow <- p.p_escrow - e.e_value;
          p.p_released <- p.p_released + e.e_value
        | Exposed, Protected ->
          p.p_released <- p.p_released - e.e_value;
          p.p_escrow <- p.p_escrow + e.e_value
        | _ -> ());
        { e with e_cls = to_cls })
    | _ -> e
  in
  let apply action =
    match action with
    | Action.Notify _ -> ()
    | Action.Do tr | Action.Undo tr ->
      let src, tgt =
        match action with
        | Action.Do _ -> (tr.Action.source, tr.Action.target)
        | Action.Undo _ -> (tr.Action.target, tr.Action.source)
        | Action.Notify _ -> assert false
      in
      let asset = tr.Action.asset in
      let is_doc = Asset.is_document asset in
      let is_undo = match action with Action.Undo _ -> true | _ -> false in
      let deposit_deal = if is_undo then None else take_deposit action in
      (* provenance: custody consumed from the sender, plus the
         sender's own contribution for the uncovered remainder *)
      let prefer = if is_undo then Some tgt else None in
      let src_had_custody = has_custody src asset in
      let consumed, money_shortfall =
        if src_had_custody then consume src asset ?prefer ()
        else ([], match asset with Asset.Money m -> m | Asset.Document _ -> 0)
      in
      (* the sender's own (non-custody) share of the transfer *)
      let own_value =
        match asset with
        | Asset.Document _ ->
          if consumed = [] then (if Party.is_principal src then price src asset else 0)
          else 0
        | Asset.Money _ -> money_shortfall
      in
      let sends_own = (is_doc && consumed = []) || own_value > 0 in
      let receiving_custody =
        (not is_undo)
        && (deposit_deal <> None || custody_holder_for ~src ~src_had_custody tgt asset)
      in
      if receiving_custody then begin
        let to_cls =
          if deposit_deal <> None then Deposit
          else if Party.is_trusted tgt then Protected
          else Exposed
        in
        (* migrate consumed provenance, preserving contributors *)
        let moved = List.map (fun (e, v) -> reclassify { e with e_value = v } to_cls) consumed in
        let own =
          if sends_own then
            match pstate src with
            | Some p ->
              let deal =
                match deposit_deal with Some d -> Some d | None -> deal_of_send src asset
              in
              contribute p to_cls deal own_value is_doc;
              [ { e_contrib = Some src; e_value = own_value; e_cls = to_cls; e_deal = deal } ]
            | None ->
              (* a trusted sender with no ledgered custody: unattributed *)
              [ { e_contrib = None; e_value = own_value; e_cls = to_cls; e_deal = None } ]
          else []
        in
        push_custody tgt asset (moved @ own)
      end
      else begin
        (* final delivery (or return) to [tgt] *)
        let self_returned = ref 0 in
        List.iter
          (fun (e, v) ->
            match e.e_contrib with
            | Some contrib when Party.equal contrib tgt -> (
              (* the contributor gets its own asset back *)
              self_returned := !self_returned + v;
              match pstate contrib with
              | Some p -> uncontribute p e.e_cls e.e_deal v is_doc
              | None -> ())
            | Some contrib -> (
              match pstate contrib with
              | Some p -> release p e.e_cls e.e_deal v
              | None -> ())
            | None -> ())
          consumed;
        (* the sender's own share *)
        (match pstate src with
        | Some p when sends_own ->
          if is_undo then begin
            (* returning what it received earlier: its received total shrinks *)
            let v = if is_doc then price src asset else own_value in
            p.p_received <- p.p_received - v;
            deal_recv p (deal_of_receive src asset) (-v)
          end
          else contribute p Exposed (deal_of_send src asset) own_value is_doc
        | _ -> ());
        (* the recipient's position *)
        (match pstate tgt with
        | Some p ->
          if is_undo && Party.is_principal src && consumed = [] then begin
            (* its own earlier direct transfer came back: outlay cancelled *)
            let v = if is_doc then price tgt asset else own_value in
            uncontribute p Exposed (deal_of_send tgt asset) v is_doc
          end
          else begin
            let gross =
              match asset with
              | Asset.Document _ -> price tgt asset
              | Asset.Money m -> m
            in
            let v = gross - !self_returned in
            if v <> 0 then begin
              p.p_received <- p.p_received + v;
              deal_recv p (deal_of_receive tgt asset) v
            end
          end
        | None -> ())
      end
  in
  (* one sample per delivery tick, after all of that tick's deliveries *)
  let duration =
    List.fold_left (fun acc d -> max acc d.Engine.at) 0 result.Engine.log
  in
  let sample_tick at =
    List.iter
      (fun (_, p) ->
        let risk = at_risk_of p in
        let s =
          {
            at;
            at_risk = risk;
            in_escrow = p.p_escrow;
            deposits = p.p_deposits;
            goods_out = p.p_goods_out;
          }
        in
        let changed =
          match p.p_samples with
          | [] -> risk > 0 || p.p_escrow > 0 || p.p_deposits > 0 || p.p_goods_out > 0
          | prev :: _ ->
            prev.at_risk <> s.at_risk || prev.in_escrow <> s.in_escrow
            || prev.deposits <> s.deposits || prev.goods_out <> s.goods_out
        in
        if changed then begin
          p.p_samples <- s :: p.p_samples;
          p.p_peak_risk <- max p.p_peak_risk risk;
          p.p_peak_escrow <- max p.p_peak_escrow p.p_escrow;
          p.p_peak_deposits <- max p.p_peak_deposits p.p_deposits;
          if p.p_prev_risk > 0 then p.p_risk_ticks <- p.p_risk_ticks + (at - p.p_prev_at);
          if risk > 0 && p.p_risk_since < 0 then p.p_risk_since <- at;
          if risk = 0 then p.p_risk_since <- -1;
          if risk > p.p_bound && p.p_honest && not p.p_bound_flagged then begin
            p.p_bound_flagged <- true;
            violations :=
              { v_party = p.p_party; v_at = at; v_kind = Bound_exceeded { at_risk = risk; bound = p.p_bound } }
              :: !violations
          end;
          p.p_prev_at <- at;
          p.p_prev_risk <- risk
        end;
        (* per-deal windows *)
        Hashtbl.iter
          (fun _ d ->
            let out = max 0 (d.d_out - d.d_recv) in
            if out > 0 then begin
              d.ds_peak <- max d.ds_peak out;
              if d.ds_first < 0 then d.ds_first <- at;
              d.ds_last <- at
            end)
          p.p_deals)
      pstates;
    Hashtbl.iter
      (fun _ a ->
        let changed =
          match a.a_samples with [] -> a.a_custody > 0 | (_, c) :: _ -> c <> a.a_custody
        in
        if changed then begin
          a.a_samples <- (at, a.a_custody) :: a.a_samples;
          a.a_peak <- max a.a_peak a.a_custody
        end)
      agents
  in
  let rec walk = function
    | [] -> ()
    | d :: rest ->
      apply d.Engine.action;
      let tick = d.Engine.at in
      let same, rest = List.partition (fun d' -> d'.Engine.at = tick) rest in
      List.iter (fun d' -> apply d'.Engine.action) same;
      sample_tick tick;
      walk rest
  in
  walk result.Engine.log;
  (* finalization: trailing risk window + unsettled residue *)
  List.iter
    (fun (_, p) ->
      if p.p_prev_risk > 0 then begin
        p.p_risk_ticks <- p.p_risk_ticks + (duration - p.p_prev_at + 1);
        if p.p_honest then
          violations :=
            {
              v_party = p.p_party;
              v_at = (if p.p_risk_since >= 0 then p.p_risk_since else duration);
              v_kind = Unsettled { residual = p.p_prev_risk };
            }
            :: !violations
      end)
    pstates;
  let parties =
    List.map
      (fun (_, p) ->
        let final =
          match p.p_samples with
          | s :: _ -> { s with at = duration }
          | [] ->
            { at = duration; at_risk = 0; in_escrow = 0; deposits = 0; goods_out = 0 }
        in
        {
          party = p.p_party;
          bound = p.p_bound;
          timeline = List.rev p.p_samples;
          peak_at_risk = p.p_peak_risk;
          peak_in_escrow = p.p_peak_escrow;
          peak_deposits = p.p_peak_deposits;
          risk_ticks = p.p_risk_ticks;
          final;
        })
      pstates
  in
  let agent_ledgers =
    List.rev !agent_order
    |> List.filter_map (fun key ->
           match Hashtbl.find_opt agents key with
           | Some a when a.a_peak > 0 ->
             Some
               {
                 agent = a.a_party;
                 custody_timeline = List.rev a.a_samples;
                 peak_custody = a.a_peak;
                 final_custody = a.a_custody;
               }
           | _ -> None)
  in
  let deals =
    List.concat_map
      (fun (_, p) ->
        Hashtbl.fold
          (fun id d acc ->
            if d.ds_peak > 0 then
              { d_party = p.p_party; d_deal = id; d_peak = d.ds_peak; d_first = d.ds_first; d_last = d.ds_last }
              :: acc
            else acc)
          p.p_deals []
        |> List.sort (fun a b -> String.compare a.d_deal b.d_deal))
      pstates
  in
  {
    parties;
    agents = agent_ledgers;
    deals;
    violations = List.rev !violations;
    duration;
  }

let total_peak_at_risk t =
  List.fold_left (fun acc p -> acc + p.peak_at_risk) 0 t.parties

let total_peak_escrow t =
  List.fold_left (fun acc p -> acc + p.peak_in_escrow) 0 t.parties

let total_risk_ticks t = List.fold_left (fun acc p -> acc + p.risk_ticks) 0 t.parties

let violation_label = function
  | Bound_exceeded _ -> "bound_exceeded"
  | Unsettled _ -> "unsettled"

let record obs ?parent t =
  if Obs.enabled obs then
    Obs.with_span obs ?parent ~phase:"exposure" "exposure" (fun span ->
        Obs.attr obs span "peak_at_risk" (Obs.Int (total_peak_at_risk t));
        Obs.attr obs span "peak_escrow" (Obs.Int (total_peak_escrow t));
        Obs.attr obs span "risk_ticks" (Obs.Int (total_risk_ticks t));
        Obs.attr obs span "violations" (Obs.Int (List.length t.violations));
        List.iter
          (fun p ->
            if p.peak_at_risk > 0 then
              Obs.attr obs span
                ("peak_at_risk." ^ Party.name p.party)
                (Obs.Int p.peak_at_risk))
          t.parties;
        List.iter
          (fun v ->
            let amounts =
              match v.v_kind with
              | Bound_exceeded { at_risk; bound } ->
                [ ("at_risk", Obs.Int at_risk); ("bound", Obs.Int bound) ]
              | Unsettled { residual } -> [ ("residual", Obs.Int residual) ]
            in
            Obs.event obs span "violation"
              ~attrs:
                (( "party", Obs.Str (Party.name v.v_party) )
                :: ("at", Obs.Int v.v_at)
                :: ("kind", Obs.Str (violation_label v.v_kind))
                :: amounts))
          t.violations)

let pp_violation ppf v =
  match v.v_kind with
  | Bound_exceeded { at_risk; bound } ->
    Format.fprintf ppf "%s at t=%d: at-risk %a exceeds bound %a" (Party.name v.v_party)
      v.v_at Asset.pp_money at_risk Asset.pp_money bound
  | Unsettled { residual } ->
    Format.fprintf ppf "%s at t=%d: %a still unreciprocated at end of run"
      (Party.name v.v_party) v.v_at Asset.pp_money residual

let pp ppf t =
  Format.fprintf ppf "@[<v>exposure: duration=%d peak-at-risk=%a peak-escrow=%a violations=%d"
    t.duration Asset.pp_money (total_peak_at_risk t) Asset.pp_money (total_peak_escrow t)
    (List.length t.violations);
  List.iter
    (fun p ->
      Format.fprintf ppf "@,  %-14s bound=%a peak-at-risk=%a peak-escrow=%a risk-ticks=%d"
        (Party.to_string p.party) Asset.pp_money p.bound Asset.pp_money p.peak_at_risk
        Asset.pp_money p.peak_in_escrow p.risk_ticks)
    t.parties;
  List.iter (fun v -> Format.fprintf ppf "@,  ! %a" pp_violation v) t.violations;
  Format.fprintf ppf "@]"
