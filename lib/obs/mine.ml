(* The scoreboard is a pure fold over span views keyed by the [shape]
   root attribute, so the offline path (TSR1 dump), the live drain and
   the re-parsed JSONL export all produce byte-identical results: they
   share the views, and everything below is deterministic in them. *)

module SM = Map.Make (String)

type row = {
  shape : string;
  sessions : int;
  k_sampled : int;
  k_violation : int;
  k_retry : int;
  k_expiry : int;
  k_lint : int;
  settled : int;
  expired : int;
  aborted : int;
  retried : int;
  attempts : int;
  violations : int;
  violation_sessions : int;
  exposure_ticks : int;
  ticks : int;
  self_vt : (string * int) list;
}

type t = { rows : row SM.t; total : int }

let empty = { rows = SM.empty; total = 0 }

let zero shape =
  {
    shape;
    sessions = 0;
    k_sampled = 0;
    k_violation = 0;
    k_retry = 0;
    k_expiry = 0;
    k_lint = 0;
    settled = 0;
    expired = 0;
    aborted = 0;
    retried = 0;
    attempts = 0;
    violations = 0;
    violation_sessions = 0;
    exposure_ticks = 0;
    ticks = 0;
    self_vt = [];
  }

let find_attr views key =
  List.fold_left
    (fun acc (v : Obs.span_view) ->
      match acc with
      | Some _ -> acc
      | None -> List.assoc_opt key v.Obs.view_attrs)
    None views

let str_attr views key =
  match find_attr views key with Some (Obs.Str s) -> Some s | _ -> None

let merge_self_vt acc stats =
  List.fold_left
    (fun acc (ps : Analysis.phase_stat) ->
      if ps.Analysis.ps_self_vt = 0 then acc
      else
        SM.update ps.Analysis.ps_phase
          (fun prev -> Some (ps.Analysis.ps_self_vt + Option.value ~default:0 prev))
          acc)
    acc stats

let fold_session t (views : Obs.span_view list) =
  let shape = Option.value ~default:"-" (str_attr views "shape") in
  (* the session root span carries the shape and the outcome facts;
     daemon traces wrap it under [daemon.request], so locate it by the
     attribute rather than by position *)
  let info =
    List.find_opt (fun (v : Obs.span_view) -> List.mem_assoc "shape" v.Obs.view_attrs) views
  in
  let geti key =
    match info with
    | None -> 0
    | Some v -> (
      match List.assoc_opt key v.Obs.view_attrs with Some (Obs.Int n) -> n | _ -> 0)
  in
  let status =
    match info with
    | None -> ""
    | Some v -> (
      match List.assoc_opt "status" v.Obs.view_attrs with Some (Obs.Str s) -> s | _ -> "")
  in
  let keep = Option.value ~default:"" (str_attr views "keep") in
  let attempts = geti "attempts" in
  let violations = geti "violations" in
  let r = try SM.find shape t.rows with Not_found -> zero shape in
  let self_vt =
    merge_self_vt
      (List.fold_left (fun acc (k, v) -> SM.add k v acc) SM.empty r.self_vt)
      (Analysis.phase_stats (Analysis.of_views views))
  in
  let r =
    {
      r with
      sessions = r.sessions + 1;
      k_sampled = (r.k_sampled + if keep = "sampled" then 1 else 0);
      k_violation = (r.k_violation + if keep = "violation" then 1 else 0);
      k_retry = (r.k_retry + if keep = "retry" then 1 else 0);
      k_expiry = (r.k_expiry + if keep = "expiry" then 1 else 0);
      k_lint = (r.k_lint + if keep = "lint" then 1 else 0);
      settled = (r.settled + if status = "settled" then 1 else 0);
      expired = (r.expired + if status = "expired" then 1 else 0);
      aborted = (r.aborted + if status = "aborted" then 1 else 0);
      retried = (r.retried + if attempts > 1 then 1 else 0);
      attempts = r.attempts + attempts;
      violations = r.violations + violations;
      violation_sessions = (r.violation_sessions + if violations > 0 then 1 else 0);
      exposure_ticks = r.exposure_ticks + geti "exposure_ticks";
      ticks = r.ticks + geti "ticks";
      self_vt = SM.bindings self_vt;
    }
  in
  { rows = SM.add shape r t.rows; total = t.total + 1 }

let add_views t (views : Obs.span_view list) =
  (* group by session id, preserving per-session span order; fold in
     ascending session order (the sums are commutative, but a canonical
     order keeps the fold itself reproducible) *)
  let by_session : (int, Obs.span_view list ref) Hashtbl.t = Hashtbl.create 64 in
  let ids = ref [] in
  List.iter
    (fun (v : Obs.span_view) ->
      match Hashtbl.find_opt by_session v.Obs.view_session with
      | Some acc -> acc := v :: !acc
      | None ->
        ids := v.Obs.view_session :: !ids;
        Hashtbl.add by_session v.Obs.view_session (ref [ v ]))
    views;
  List.fold_left
    (fun t id -> fold_session t (List.rev !(Hashtbl.find by_session id)))
    t
    (List.sort compare !ids)

let of_views views = add_views empty views

let of_sessions (sessions : Ring.session list) =
  List.fold_left (fun t (s : Ring.session) -> add_views t s.Ring.s_views) empty sessions

let sessions t = t.total
let shapes t = SM.cardinal t.rows

let incidents r = r.retried + r.expired

let severity a b =
  (* worst first: violations, then retry/expiry incidents, then
     traffic; shape hex breaks ties for a total order *)
  match compare b.violation_sessions a.violation_sessions with
  | 0 -> (
    match compare (incidents b) (incidents a) with
    | 0 -> (
      match compare b.sessions a.sessions with
      | 0 -> compare a.shape b.shape
      | c -> c)
    | c -> c)
  | c -> c

let rows t = List.sort severity (List.map snd (SM.bindings t.rows))

let retry_rate r = if r.sessions = 0 then 0. else float_of_int r.retried /. float_of_int r.sessions
let expiry_rate r = if r.sessions = 0 then 0. else float_of_int r.expired /. float_of_int r.sessions

let pin_candidates ?(min_incidents = 1) t =
  rows t
  |> List.filter (fun r ->
         r.shape <> "-" && r.violation_sessions = 0 && incidents r >= min_incidents)
  |> List.sort (fun a b ->
         match compare (incidents b) (incidents a) with
         | 0 -> (
           match compare b.sessions a.sessions with
           | 0 -> compare a.shape b.shape
           | c -> c)
         | c -> c)
  |> List.map (fun r -> r.shape)

let deny_candidates ?(min_violations = 1) t =
  rows t
  |> List.filter (fun r -> r.shape <> "-" && r.violation_sessions >= min_violations)
  |> List.map (fun r -> r.shape)

let json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf {|{"sessions":%d,"shapes":%d,"rows":[|} (sessions t) (shapes t));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"shape":"%s","sessions":%d,"keeps":{"sampled":%d,"violation":%d,"retry":%d,"expiry":%d,"lint":%d},"settled":%d,"expired":%d,"aborted":%d,"retried":%d,"attempts":%d,"retry_rate":%.4f,"expiry_rate":%.4f,"violations":%d,"violation_sessions":%d,"exposure_ticks":%d,"ticks":%d,"self_vt":{%s}}|}
           (Json.escape r.shape) r.sessions r.k_sampled r.k_violation r.k_retry r.k_expiry
           r.k_lint r.settled r.expired r.aborted r.retried r.attempts (retry_rate r)
           (expiry_rate r) r.violations r.violation_sessions r.exposure_ticks r.ticks
           (String.concat ","
              (List.map
                 (fun (phase, vt) -> Printf.sprintf {|"%s":%d|} (Json.escape phase) vt)
                 r.self_vt))))
    (rows t);
  Buffer.add_string b "]}";
  Buffer.contents b

let table t =
  let top_phases r =
    let worst =
      List.sort
        (fun (pa, va) (pb, vb) ->
          match compare vb va with 0 -> compare pa pb | c -> c)
        r.self_vt
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    String.concat ", "
      (List.map (fun (phase, vt) -> Printf.sprintf "%s %d" phase vt) (take 3 worst))
  in
  Report.Table.render
    ~header:
      [
        "shape";
        "sessions";
        "keeps s/v/r/e/l";
        "retry%";
        "expiry%";
        "violations";
        "risk ticks";
        "self vt (top phases)";
      ]
    (List.map
       (fun r ->
         [
           r.shape;
           string_of_int r.sessions;
           Printf.sprintf "%d/%d/%d/%d/%d" r.k_sampled r.k_violation r.k_retry r.k_expiry
             r.k_lint;
           Printf.sprintf "%.1f" (100. *. retry_rate r);
           Printf.sprintf "%.1f" (100. *. expiry_rate r);
           string_of_int r.violations;
           string_of_int r.exposure_ticks;
           top_phases r;
         ])
       (rows t))
