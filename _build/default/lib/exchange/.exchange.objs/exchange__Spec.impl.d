lib/exchange/spec.ml: Asset Format Hashtbl List Option Party State String
