test/test_table.ml: Alcotest List Report String
