let default_max = 1 lsl 20

let encode payload =
  let n = String.length payload in
  if n > 0x7FFFFFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable poisoned : bool;
}

type event = Frame of string | Oversized of int

let create ?(max_frame = default_max) () =
  if max_frame <= 0 then invalid_arg "Frame.create: max_frame must be positive";
  { max_frame; buf = Buffer.create 256; poisoned = false }

let header_length d =
  (* the buffer is only ever consumed from the front by [drain], so the
     first four bytes are the pending frame's big-endian length *)
  let b = Buffer.nth d.buf in
  (Char.code (b 0) lsl 24)
  lor (Char.code (b 1) lsl 16)
  lor (Char.code (b 2) lsl 8)
  lor Char.code (b 3)

let rec drain d acc =
  if Buffer.length d.buf < 4 then List.rev acc
  else
    let n = header_length d in
    if n > d.max_frame then begin
      d.poisoned <- true;
      Buffer.clear d.buf;
      List.rev (Oversized n :: acc)
    end
    else if Buffer.length d.buf < 4 + n then List.rev acc
    else begin
      let contents = Buffer.contents d.buf in
      let payload = String.sub contents 4 n in
      Buffer.clear d.buf;
      Buffer.add_substring d.buf contents (4 + n) (String.length contents - 4 - n);
      drain d (Frame payload :: acc)
    end

let feed d buf len =
  if d.poisoned then []
  else begin
    Buffer.add_subbytes d.buf buf 0 len;
    drain d []
  end

let feed_string d s =
  if d.poisoned then []
  else begin
    Buffer.add_string d.buf s;
    drain d []
  end

let buffered d = Buffer.length d.buf
let mid_frame d = Buffer.length d.buf > 0
let poisoned d = d.poisoned

let write_frame fd payload =
  let s = encode payload in
  let b = Bytes.unsafe_of_string s in
  let total = Bytes.length b in
  let off = ref 0 in
  while !off < total do
    match Unix.write fd b !off (total - !off) with
    | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", "frame"))
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
