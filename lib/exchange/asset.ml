type money = int

type t = Document of string | Money of money

let document name = Document name

let money amount =
  if amount < 0 then invalid_arg "Asset.money: negative amount";
  Money amount

let dollars d = d * 100

let is_money = function Money _ -> true | Document _ -> false
let is_document = function Document _ -> true | Money _ -> false
let amount = function Money m -> Some m | Document _ -> None
let value = function Money m -> m | Document _ -> 0

let compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Document da, Document db -> String.compare da db
    | Money ma, Money mb -> Int.compare ma mb
    | Document _, Money _ -> -1
    | Money _, Document _ -> 1

let equal a b = a == b || compare a b = 0

let pp_money ppf m =
  if m mod 100 = 0 then Format.fprintf ppf "$%d" (m / 100)
  else Format.fprintf ppf "$%d.%02d" (m / 100) (abs (m mod 100))

let pp ppf = function
  | Document d -> Format.fprintf ppf "doc(%s)" d
  | Money m -> pp_money ppf m

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Bag = struct
  type asset = t

  module Docs = Stdlib.Map.Make (String)

  type t = { balance : money; docs : int Docs.t }

  let empty = { balance = 0; docs = Docs.empty }

  let add asset bag =
    match asset with
    | Money m -> { bag with balance = bag.balance + m }
    | Document d ->
      let count = Option.value ~default:0 (Docs.find_opt d bag.docs) in
      { bag with docs = Docs.add d (count + 1) bag.docs }

  let remove asset bag =
    match asset with
    | Money m -> if bag.balance >= m then Some { bag with balance = bag.balance - m } else None
    | Document d -> (
      match Docs.find_opt d bag.docs with
      | None | Some 0 -> None
      | Some 1 -> Some { bag with docs = Docs.remove d bag.docs }
      | Some n -> Some { bag with docs = Docs.add d (n - 1) bag.docs })

  let holds asset bag =
    match asset with
    | Money m -> bag.balance >= m
    | Document d -> ( match Docs.find_opt d bag.docs with Some n -> n > 0 | None -> false)

  let balance bag = bag.balance
  let documents bag = Docs.bindings bag.docs
  let of_list assets = List.fold_left (fun bag a -> add a bag) empty assets

  let equal a b = a.balance = b.balance && Docs.equal Int.equal a.docs b.docs

  let pp ppf bag =
    Format.fprintf ppf "@[<h>{balance=%a; docs=[%a]}@]" pp_money bag.balance
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (d, n) -> Format.fprintf ppf "%s x%d" d n))
      (documents bag)
end
