(** The Zipf load generator: drives a running daemon with
    {!Workload.Universe} traffic and measures what the paper's
    marketplace story needs measured — throughput and tail latency
    under a realistic popularity law.

    Spec draws are deterministic in the seed; latencies are wall-clock
    and therefore {e not} — reports belong next to the other volatile
    renderings (stderr, bench JSON), never in deterministic
    snapshots. *)

type config = {
  connect : string;  (** {!Client.parse_addr} syntax *)
  requests : int;
  universe : Workload.Universe.config;
  seed : int64;
  busy_retries : int;  (** per-request retries after a [busy] answer *)
}

val default : config
(** 1000 requests against [unix:/tmp/trustseq.sock] over the default
    million-principal universe, seed 1, 25 busy retries. *)

type report = {
  sent : int;  (** submissions that got a [result] *)
  settled : int;
  expired : int;
  aborted : int;
  busy : int;  (** [busy] answers seen (before successful retries) *)
  dropped : int;  (** requests abandoned after exhausting busy retries *)
  refused : int;
      (** submissions refused by the daemon's trace-mining deny list
          ([denied: \[TM001\]] answers) — expected under [--mine-deny] *)
  cache_hits : int;  (** results served from the protocol cache *)
  wall : float;  (** seconds for the whole run *)
  throughput : float;  (** results per second *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run : config -> (report, string) result
(** Connect, then submit [requests] sampled specs, one at a time,
    timing each round trip. Transport and protocol failures abort the
    run with a reason. *)

val json : report -> string
val table : report -> string
