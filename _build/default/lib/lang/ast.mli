(** Abstract syntax of the exchange DSL, before name resolution. *)

type role = Consumer | Producer | Broker

type asset = Pays of int  (** cents *) | Gives of string

type leg = { party : string Loc.located; asset : asset }

type side = Buyer | Seller
(** [Buyer] resolves to the deal's [Left] side, [Seller] to [Right];
    [left]/[right] in the surface syntax map here too. *)

type cref = { deal : string Loc.located; side : side }

type decl =
  | Principal of { name : string Loc.located; role : role }
  | Trusted of string Loc.located
  | Deal of {
      id : string Loc.located;
      first : leg;
      second : leg;
      via : string Loc.located;
      deadline : int option;  (** [within N] clause *)
    }
  | Priority of { owner : string Loc.located; target : cref }
  | Split of { owner : string Loc.located; target : cref }
  | Trust of { truster : string Loc.located; trustee : string Loc.located }
      (** in an exchange program: sugar — the trustee plays the
          intermediary of every deal joining the two. In a web program
          (one with [request] declarations): a raw trust edge, whose
          trustee may also be a trusted agent *)
  | Relay of string Loc.located
      (** web programs: this principal will resell across trust domains *)
  | Request of {
      id : string Loc.located;
      buyer : string Loc.located;
      good : string;
      seller : string Loc.located;
      price : int;  (** cents *)
    }  (** web programs: a sale to be routed over the trust web *)
  | Persona of { trusted : string Loc.located; principal : string Loc.located }

type program = decl list

val pp_decl : Format.formatter -> decl -> unit
