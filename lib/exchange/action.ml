type transfer = { source : Party.t; target : Party.t; asset : Asset.t }

type t =
  | Do of transfer
  | Undo of transfer
  | Notify of { agent : Party.t; informed : Party.t }

let transfer source target asset = Do { source; target; asset }
let give a b d = transfer a b (Asset.document d)
let pay b a m = transfer b a (Asset.money m)

let undo = function
  | Do tr -> Undo tr
  | Undo _ | Notify _ -> invalid_arg "Action.undo: not a Do action"

let notify ~agent ~informed = Notify { agent; informed }

let performer = function
  | Do tr -> tr.source
  | Undo tr -> tr.target
  | Notify { agent; _ } -> agent

let beneficiary = function
  | Do tr -> tr.target
  | Undo tr -> tr.source
  | Notify { informed; _ } -> informed

let is_message _ = true

let compare_transfer a b =
  if a == b then 0
  else
    let c = Party.compare a.source b.source in
    if c <> 0 then c
    else
      let c = Party.compare a.target b.target in
      if c <> 0 then c else Asset.compare a.asset b.asset

let compare a b =
  if a == b then 0
  else
    match (a, b) with
  | Do ta, Do tb -> compare_transfer ta tb
  | Undo ta, Undo tb -> compare_transfer ta tb
  | Notify na, Notify nb ->
    let c = Party.compare na.agent nb.agent in
    if c <> 0 then c else Party.compare na.informed nb.informed
  | Do _, (Undo _ | Notify _) -> -1
  | Undo _, Do _ -> 1
  | Undo _, Notify _ -> -1
  | Notify _, (Do _ | Undo _) -> 1

let equal a b = a == b || compare a b = 0

let pp_transfer verb ppf tr =
  Format.fprintf ppf "%s[%s -> %s](%a)" verb (Party.name tr.source) (Party.name tr.target)
    Asset.pp tr.asset

let pp ppf = function
  | Do ({ asset = Asset.Money _; _ } as tr) -> pp_transfer "pay" ppf tr
  | Do tr -> pp_transfer "give" ppf tr
  | Undo ({ asset = Asset.Money _; _ } as tr) -> pp_transfer "pay⁻¹" ppf tr
  | Undo tr -> pp_transfer "give⁻¹" ppf tr
  | Notify { agent; informed } ->
    Format.fprintf ppf "notify[%s -> %s]" (Party.name agent) (Party.name informed)

let to_string t = Format.asprintf "%a" pp t

module Pattern = struct
  type party_pat = Exactly of Party.t | Any_party | Any_trusted | Any_principal

  type asset_pat =
    | Exact_asset of Asset.t
    | Any_document
    | Money_at_least of Asset.money
    | Any_asset

  type action = t

  type t =
    | P_do of party_pat * party_pat * asset_pat
    | P_undo of party_pat * party_pat * asset_pat
    | P_notify of party_pat * party_pat

  let of_action = function
    | Do tr -> P_do (Exactly tr.source, Exactly tr.target, Exact_asset tr.asset)
    | Undo tr -> P_undo (Exactly tr.source, Exactly tr.target, Exact_asset tr.asset)
    | Notify { agent; informed } -> P_notify (Exactly agent, Exactly informed)

  let party_matches pat party =
    match pat with
    | Exactly p -> Party.equal p party
    | Any_party -> true
    | Any_trusted -> Party.is_trusted party
    | Any_principal -> Party.is_principal party

  let asset_matches pat asset =
    match pat with
    | Exact_asset a -> Asset.equal a asset
    | Any_document -> Asset.is_document asset
    | Money_at_least m -> ( match Asset.amount asset with Some m' -> m' >= m | None -> false)
    | Any_asset -> true

  let matches pat action =
    match (pat, action) with
    | P_do (ps, pt, pa), Do tr ->
      party_matches ps tr.source && party_matches pt tr.target && asset_matches pa tr.asset
    | P_undo (ps, pt, pa), Undo tr ->
      party_matches ps tr.source && party_matches pt tr.target && asset_matches pa tr.asset
    | P_notify (pa, pi), Notify { agent; informed } ->
      party_matches pa agent && party_matches pi informed
    | (P_do _ | P_undo _ | P_notify _), _ -> false

  let pp_party_pat ppf = function
    | Exactly p -> Format.pp_print_string ppf (Party.name p)
    | Any_party -> Format.pp_print_string ppf "*"
    | Any_trusted -> Format.pp_print_string ppf "*t"
    | Any_principal -> Format.pp_print_string ppf "*p"

  let pp_asset_pat ppf = function
    | Exact_asset a -> Asset.pp ppf a
    | Any_document -> Format.pp_print_string ppf "doc(*)"
    | Money_at_least m -> Format.fprintf ppf ">=%a" Asset.pp_money m
    | Any_asset -> Format.pp_print_string ppf "*"

  let pp ppf = function
    | P_do (s, t, a) ->
      Format.fprintf ppf "do[%a -> %a](%a)" pp_party_pat s pp_party_pat t pp_asset_pat a
    | P_undo (s, t, a) ->
      Format.fprintf ppf "undo[%a -> %a](%a)" pp_party_pat s pp_party_pat t pp_asset_pat a
    | P_notify (a, i) -> Format.fprintf ppf "notify[%a -> %a]" pp_party_pat a pp_party_pat i
end
