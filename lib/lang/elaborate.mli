(** Name resolution and semantic checks: DSL program → {!Exchange.Spec.t}.

    Errors are collected with locations: undeclared or re-declared
    parties, deals between non-principals, dangling commitment
    references, [trust] declarations that join no deal, and every
    {!Exchange.Spec.validate} failure. *)

open Exchange

type error = { message : string; loc : Loc.t }

val program : Ast.program -> (Spec.t, error list) result
(** Elaborate an exchange program (no [request] declarations). *)

type web = {
  trusts : (Party.t * Party.t) list;  (** (truster, trustee) edges *)
  relays : Party.t list;
  requests : (string * Party.t * string * Party.t * Asset.money) list;
      (** (id, buyer, good, seller, price) *)
}
(** A web program: a trust web plus routing requests (see
    {!Trust_core.Routing}, which consumes this shape). *)

val is_web : Ast.program -> bool
(** The program contains at least one [request] declaration. *)

val web : Ast.program -> (web, error list) result
(** Elaborate a web program: [deal]/[priority]/[split]/[persona]
    declarations are rejected (a web's deals come from routing); [trust]
    edges may name trusted agents as trustees. *)

val web_from_string : ?file:string -> string -> (web, string) result
val web_from_file : string -> (web, string) result

val from_string :
  ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> ?file:string -> string ->
  (Spec.t, string) result
(** Parse and elaborate; errors rendered as one human-readable string,
    one per line, sorted by source location, each prefixed
    [file:line:col] (or [line:col] without [file]). When a trace [obs]
    is attached, a ["parse"] span (bytes, declaration count) and an
    ["elaborate"] span (party/deal counts, error count) are opened
    under [parent]; the default null sink records nothing. *)

val from_file :
  ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> string -> (Spec.t, string) result
(** Like {!from_string} with [?file] set to [path], so errors carry the
    file name. *)

val pp_error : ?file:string -> Format.formatter -> error -> unit

val sort_errors : error list -> error list
(** Stable sort by location, then message. *)
