(* The reduction rules (§4.2): the paper's walkthroughs, rule order,
   direct-trust variants and confluence. *)

open Exchange
module Sequencing = Trust_core.Sequencing
module Reduce = Trust_core.Reduce

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run spec = Reduce.run (Sequencing.build spec)

let test_example1_feasible () =
  let outcome = run Workload.Scenarios.example1 in
  check "feasible" true (Reduce.feasible outcome);
  check_int "six deletions" 6 (List.length outcome.Reduce.deletions)

let test_example1_deletion_walkthrough () =
  (* §4.2.2 walks: producer-side Rule#1; AND-t2 Rule#2; consumer-side
     Rule#1; AND-t1 Rule#2; the red edge by Rule#1; the last edge. *)
  let outcome = run Workload.Scenarios.example1 in
  let g = outcome.Reduce.graph in
  let describe (d : Reduce.deletion) =
    let c = Sequencing.commitment g d.Reduce.cid in
    ( d.Reduce.rule,
      (c.Sequencing.cref.Spec.deal, c.Sequencing.cref.Spec.side),
      d.Reduce.colour )
  in
  let expected =
    [
      (Reduce.Rule1, ("bp", Spec.Right), Sequencing.Black);
      (Reduce.Rule2, ("bp", Spec.Left), Sequencing.Black);
      (Reduce.Rule1, ("cb", Spec.Left), Sequencing.Black);
      (Reduce.Rule2, ("cb", Spec.Right), Sequencing.Black);
      (Reduce.Rule1, ("cb", Spec.Right), Sequencing.Red);
      (Reduce.Rule2, ("bp", Spec.Left), Sequencing.Black);
    ]
  in
  List.iteri
    (fun i (d : Reduce.deletion) ->
      let got = describe d in
      if got <> List.nth expected i then
        Alcotest.failf "deletion %d diverges from the paper's walkthrough" (i + 1))
    outcome.Reduce.deletions

let test_red_edge_removed_by_rule1 () =
  (* "the red edge may be removed by Rule #1" — not blocked by itself. *)
  let outcome = run Workload.Scenarios.example1 in
  let red =
    List.find (fun d -> d.Reduce.colour = Sequencing.Red) outcome.Reduce.deletions
  in
  check "rule 1" true (red.Reduce.rule = Reduce.Rule1)

let test_example2_stuck_at_figure6 () =
  let outcome = run Workload.Scenarios.example2 in
  check "infeasible" false (Reduce.feasible outcome);
  check_int "four deletions before the impasse" 4 (List.length outcome.Reduce.deletions);
  match outcome.Reduce.verdict with
  | Reduce.Feasible -> Alcotest.fail "expected stuck"
  | Reduce.Stuck { remaining } -> check_int "ten edges remain (figure 6)" 10 (List.length remaining)

let test_poor_broker_stuck () =
  (* §5: two red edges on one conjunction are mutually pre-empting. *)
  let outcome = run Workload.Scenarios.example1_poor_broker in
  check "infeasible" false (Reduce.feasible outcome);
  match outcome.Reduce.verdict with
  | Reduce.Feasible -> Alcotest.fail "expected stuck"
  | Reduce.Stuck { remaining } ->
    check_int "both red edges stuck" 2 (List.length remaining);
    check "all red" true
      (List.for_all (fun (_, _, colour) -> colour = Sequencing.Red) remaining)

let test_variant1_feasible () =
  (* §4.2.3: Source1 trusts Broker1 -> feasible (domino effect). *)
  let outcome = run Workload.Scenarios.example2_source_trusts_broker in
  check "feasible" true (Reduce.feasible outcome);
  check_int "all fourteen edges deleted" 14 (List.length outcome.Reduce.deletions);
  check "persona clause used" true
    (List.exists (fun d -> d.Reduce.rule = Reduce.Rule1_persona) outcome.Reduce.deletions)

let test_variant2_stuck () =
  (* §4.2.3: Broker1 trusts Source1 -> still infeasible. *)
  let outcome = run Workload.Scenarios.example2_broker_trusts_source in
  check "infeasible" false (Reduce.feasible outcome);
  check_int "same four deletions" 4 (List.length outcome.Reduce.deletions)

let test_split_makes_example2_feasible () =
  let outcome = run Workload.Scenarios.example2_broker1_indemnifies in
  check "feasible" true (Reduce.feasible outcome)

let test_fig7_stuck () =
  let outcome = run Workload.Scenarios.fig7 in
  check "infeasible" false (Reduce.feasible outcome)

let test_deletion_log_consistent () =
  let outcome = run Workload.Scenarios.example1 in
  List.iteri
    (fun i d -> check_int "steps numbered from 1" (i + 1) d.Reduce.step)
    outcome.Reduce.deletions;
  (* every edge deleted at most once *)
  let keys = List.map (fun d -> (d.Reduce.cid, d.Reduce.jid)) outcome.Reduce.deletions in
  check "unique deletions" true (List.length keys = List.length (List.sort_uniq compare keys))

let test_applicable_initial () =
  let g = Sequencing.build Workload.Scenarios.example1 in
  let candidates = Reduce.applicable g in
  (* Initially both external commitments (producer, consumer side) are
     removable and nothing else. *)
  check_int "two candidates" 2 (List.length candidates);
  check "all rule1" true (List.for_all (fun (r, _, _) -> r = Reduce.Rule1) candidates)

let test_chains_feasible () =
  List.iter
    (fun n ->
      check
        (Printf.sprintf "chain %d feasible" n)
        true
        (Reduce.feasible (run (Workload.Gen.chain ~brokers:n))))
    [ 0; 1; 2; 3; 8 ]

let test_fans_infeasible () =
  List.iter
    (fun k ->
      let prices = List.init k (fun i -> Asset.dollars (10 * (i + 1))) in
      check
        (Printf.sprintf "fan %d infeasible" k)
        false
        (Reduce.feasible (run (Workload.Gen.fan ~prices))))
    [ 2; 3; 4 ]

let test_fan1_feasible () =
  check "single-document fan is example 1" true
    (Reduce.feasible (run (Workload.Gen.fan ~prices:[ Asset.dollars 10 ])))

let test_bundles_feasible () =
  (* broker-free bundles have no red edges: producers deposit first *)
  List.iter
    (fun k ->
      check
        (Printf.sprintf "bundle %d feasible" k)
        true
        (Reduce.feasible (run (Workload.Gen.bundle ~docs:k))))
    [ 1; 2; 3; 5 ]

let shared_bundle () =
  (* a consumer buys two documents, both through the same agent *)
  let c = Party.consumer "c" and t = Party.trusted "t" in
  Spec.make_exn
    [
      Spec.sale ~id:"a" ~buyer:c ~seller:(Party.producer "p1") ~via:t
        ~price:(Asset.dollars 10) ~good:"d1";
      Spec.sale ~id:"b" ~buyer:c ~seller:(Party.producer "p2") ~via:t
        ~price:(Asset.dollars 20) ~good:"d2";
    ]

let test_shared_agent_rule () =
  (* the paper's two rules are stuck on a shared-agent bundle; the §9
     extension (Rule #3) makes it feasible *)
  let spec = shared_bundle () in
  check "paper rules stuck" false (Reduce.feasible (run spec));
  let outcome = Reduce.run_shared (Sequencing.build spec) in
  check "extension feasible" true (Reduce.feasible outcome);
  check "rule 3 used" true
    (List.exists (fun d -> d.Reduce.rule = Reduce.Rule3_shared) outcome.Reduce.deletions)

let test_shared_rule_no_false_positives () =
  (* the extension must not declare the paper's infeasible examples
     feasible: their conjunctions are not single-agent *)
  List.iter
    (fun (name, spec) ->
      let paper = Reduce.feasible (Reduce.run (Sequencing.build spec)) in
      let extended = Reduce.feasible (Reduce.run_shared (Sequencing.build spec)) in
      if paper <> extended then Alcotest.failf "%s: extension changed the verdict" name)
    Workload.Scenarios.all

let test_shared_rule_respects_reds () =
  (* a broker conjunction through one agent still keeps its red ordering *)
  let c = Party.consumer "c" and b = Party.broker "b" and p = Party.producer "p" in
  let t = Party.trusted "t" in
  let spec =
    Spec.make_exn
      ~priorities:[ (b, { Spec.deal = "cb"; side = Spec.Right }) ]
      [
        Spec.sale ~id:"bp" ~buyer:b ~seller:p ~via:t ~price:(Asset.dollars 8) ~good:"d";
        Spec.sale ~id:"cb" ~buyer:c ~seller:b ~via:t ~price:(Asset.dollars 10) ~good:"d";
      ]
  in
  let outcome = Reduce.run_shared (Sequencing.build spec) in
  check "red conjunctions never split by rule 3" true
    (List.for_all
       (fun d ->
         d.Reduce.rule <> Reduce.Rule3_shared
         || Party.is_principal (Sequencing.conjunction outcome.Reduce.graph d.Reduce.jid).Sequencing.owner)
       outcome.Reduce.deletions)

(* §4.2.4 confluence: the feasibility verdict does not depend on the
   reduction order. *)

let deletion_key (d : Reduce.deletion) =
  (d.Reduce.step, d.Reduce.rule, d.Reduce.cid, d.Reduce.jid, d.Reduce.colour)

let same_outcome a b =
  Reduce.feasible a = Reduce.feasible b
  && List.map deletion_key a.Reduce.deletions = List.map deletion_key b.Reduce.deletions

let test_worklist_scenarios () =
  List.iter
    (fun (name, spec) ->
      let naive = Reduce.run_rescan (Sequencing.build spec) in
      let fast = Reduce.run_worklist (Sequencing.build spec) in
      if not (same_outcome naive fast) then
        Alcotest.failf "%s: worklist diverges from the rescanning oracle" name)
    Workload.Scenarios.all

let test_worklist_counts () =
  (* a feasible reduction deletes every edge regardless of strategy *)
  let spec = Workload.Gen.chain ~brokers:5 in
  let edge_total = Sequencing.edge_count (Sequencing.build spec) in
  let outcome = Reduce.run_worklist (Sequencing.build spec) in
  check "feasible" true (Reduce.feasible outcome);
  check_int "all edges deleted" edge_total (List.length outcome.Reduce.deletions)

let prop_worklist_agrees =
  (* The worklist reducer is the default path ([Reduce.run] delegates to
     it); the rescanning implementation is kept as the oracle. The two
     must agree on the verdict *and* the deletion sequence — every step,
     rule, edge and colour — or the §5 execution sequences would drift. *)
  QCheck2.Test.make ~name:"worklist reducer replays the rescanning oracle exactly" ~count:200
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      same_outcome
        (Reduce.run_rescan (Sequencing.build spec))
        (Reduce.run_worklist (Sequencing.build spec)))

let prop_confluence =
  QCheck2.Test.make ~name:"randomized reduction order preserves the verdict" ~count:200
    QCheck2.Gen.(pair int int)
    (fun (spec_seed, order_seed) ->
      let rng = Workload.Prng.create (Int64.of_int spec_seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      let deterministic = Reduce.feasible (Reduce.run (Sequencing.build spec)) in
      let order_rng = Workload.Prng.create (Int64.of_int order_seed) in
      let randomized =
        Reduce.feasible
          (Reduce.run_randomized
             ~choose:(fun n -> Workload.Prng.int order_rng n)
             (Sequencing.build spec))
      in
      deterministic = randomized)

let prop_feasible_deletes_everything =
  QCheck2.Test.make ~name:"feasible outcomes delete every edge exactly once" ~count:150
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      let edge_total = Sequencing.edge_count (Sequencing.build spec) in
      let outcome = Reduce.run (Sequencing.build spec) in
      if Reduce.feasible outcome then List.length outcome.Reduce.deletions = edge_total
      else List.length outcome.Reduce.deletions < edge_total)

let prop_direct_trust_only_helps =
  QCheck2.Test.make ~name:"declaring direct trust never breaks a feasible exchange" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      if not (Reduce.feasible (Reduce.run (Sequencing.build spec))) then true
      else
        (* add sellers-as-personas everywhere; feasibility must survive *)
        let trusting =
          List.fold_left
            (fun s d ->
              match Spec.persona_of s d.Spec.via with
              | Some _ -> s
              | None -> Spec.with_persona ~trusted:d.Spec.via ~principal:d.Spec.right s)
            spec spec.Spec.deals
        in
        Reduce.feasible (Reduce.run (Sequencing.build trusting)))

let () =
  Alcotest.run "reduce"
    [
      ( "paper walkthroughs",
        [
          Alcotest.test_case "example 1 feasible" `Quick test_example1_feasible;
          Alcotest.test_case "example 1 deletion order" `Quick test_example1_deletion_walkthrough;
          Alcotest.test_case "red edge removed by rule 1" `Quick test_red_edge_removed_by_rule1;
          Alcotest.test_case "example 2 stuck at figure 6" `Quick test_example2_stuck_at_figure6;
          Alcotest.test_case "poor broker stuck" `Quick test_poor_broker_stuck;
          Alcotest.test_case "variant 1: source trusts broker" `Quick test_variant1_feasible;
          Alcotest.test_case "variant 2: broker trusts source" `Quick test_variant2_stuck;
          Alcotest.test_case "indemnity split enables example 2" `Quick
            test_split_makes_example2_feasible;
          Alcotest.test_case "figure 7 stuck" `Quick test_fig7_stuck;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "deletion log consistent" `Quick test_deletion_log_consistent;
          Alcotest.test_case "initial applicable set" `Quick test_applicable_initial;
          Alcotest.test_case "chains feasible" `Quick test_chains_feasible;
          Alcotest.test_case "fans infeasible" `Quick test_fans_infeasible;
          Alcotest.test_case "fan of one feasible" `Quick test_fan1_feasible;
          Alcotest.test_case "bundles feasible" `Quick test_bundles_feasible;
          Alcotest.test_case "worklist verdicts on scenarios" `Quick test_worklist_scenarios;
          Alcotest.test_case "worklist deletes everything" `Quick test_worklist_counts;
        ] );
      ( "shared-agent extension (para 9)",
        [
          Alcotest.test_case "rule 3 enables shared bundles" `Quick test_shared_agent_rule;
          Alcotest.test_case "no false positives on scenarios" `Quick
            test_shared_rule_no_false_positives;
          Alcotest.test_case "red conjunctions untouched" `Quick test_shared_rule_respects_reds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_confluence;
            prop_feasible_deletes_everything;
            prop_direct_trust_only_helps;
            prop_worklist_agrees;
          ] );
    ]
