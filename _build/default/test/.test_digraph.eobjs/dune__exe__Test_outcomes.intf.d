test/test_outcomes.mli:
