test/test_interaction.ml: Alcotest Exchange Int64 Interaction List Party QCheck2 QCheck_alcotest Spec String Trust_graph Workload
