lib/exchange/outcomes.ml: Action Asset Format List Party Printf Spec State
