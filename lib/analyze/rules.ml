open Exchange
module Ast = Trust_lang.Ast
module Loc = Trust_lang.Loc
module Sequencing = Trust_core.Sequencing
module Reduce = Trust_core.Reduce
module Feasibility = Trust_core.Feasibility

(* ------------------------------------------------------------------ *)
(* Source-location lookups from the (optional) AST.                    *)

let located (name : string Loc.located) = (name.Loc.value, name.Loc.loc)

let deal_loc decls id =
  List.find_map
    (function
      | Ast.Deal { id = d; _ } when String.equal (fst (located d)) id ->
        Some (snd (located d))
      | _ -> None)
    decls

let party_loc decls name =
  List.find_map
    (function
      | Ast.Principal { name = n; _ } when String.equal (fst (located n)) name
        ->
        Some (snd (located n))
      | Ast.Trusted n when String.equal (fst (located n)) name ->
        Some (snd (located n))
      | _ -> None)
    decls

let ast_side = function Ast.Buyer -> Spec.Left | Ast.Seller -> Spec.Right

let mark_loc which decls owner (cref : Spec.commitment_ref) =
  List.find_map
    (fun decl ->
      match (which, decl) with
      | `Priority, Ast.Priority { owner = o; target }
      | `Split, Ast.Split { owner = o; target }
        when String.equal (fst (located o)) owner
             && String.equal (fst (located target.Ast.deal)) cref.Spec.deal
             && ast_side target.Ast.side = cref.Spec.side ->
        Some (snd (located o))
      | _ -> None)
    decls

let persona_loc decls role principal =
  let direct =
    List.find_map
      (function
        | Ast.Persona { trusted; _ }
          when String.equal (fst (located trusted)) role ->
          Some (snd (located trusted))
        | _ -> None)
      decls
  in
  match direct with
  | Some _ as loc -> loc
  | None ->
    (* [trust a -> b] sugar: the persona was derived from a trust edge
       whose trustee is the principal. *)
    List.find_map
      (function
        | Ast.Trust { truster; trustee }
          when String.equal (fst (located trustee)) principal ->
          Some (snd (located truster))
        | _ -> None)
      decls

(* ------------------------------------------------------------------ *)
(* Structural rules.                                                   *)

let unused_party decls =
  let referenced = Hashtbl.create 16 in
  let reference (name : string Loc.located) =
    Hashtbl.replace referenced name.Loc.value ()
  in
  List.iter
    (function
      | Ast.Deal { first; second; via; _ } ->
        reference first.Ast.party;
        reference second.Ast.party;
        reference via
      | Ast.Priority { owner; _ } | Ast.Split { owner; _ } -> reference owner
      | Ast.Trust { truster; trustee } ->
        reference truster;
        reference trustee
      | Ast.Persona { trusted; principal } ->
        reference trusted;
        reference principal
      | Ast.Relay name -> reference name
      | Ast.Request { buyer; seller; _ } ->
        reference buyer;
        reference seller
      | Ast.Principal _ | Ast.Trusted _ -> ())
    decls;
  List.filter_map
    (function
      | Ast.Principal { name; _ } | Ast.Trusted name ->
        if Hashtbl.mem referenced name.Loc.value then None
        else
          Some
            (Diagnostic.make ~loc:name.Loc.loc Diagnostic.Unused_party
               (Printf.sprintf "party %s is declared but never used"
                  name.Loc.value))
      | _ -> None)
    decls

let dead_asset ~deal_loc spec =
  let commitments = Spec.commitments spec in
  let acquires p doc =
    List.exists
      (fun ((cref : Spec.commitment_ref), deal) ->
        Party.equal (Spec.commitment_principal deal cref.Spec.side) p
        && Asset.equal (Spec.commitment_sends deal cref.Spec.side)
             (Asset.document doc))
      commitments
  in
  List.filter_map
    (fun ((cref : Spec.commitment_ref), (deal : Spec.deal)) ->
      let p = Spec.commitment_principal deal cref.Spec.side in
      match
        (Party.role p, Spec.commitment_expects deal cref.Spec.side)
      with
      | Some Party.Broker, Asset.Document doc when not (acquires p doc) ->
        Some
          (Diagnostic.make ?loc:(deal_loc deal.Spec.id)
             Diagnostic.Dead_asset
             (Format.asprintf
                "broker %s acquires %S in deal %s but never transfers it \
                 on — a dead asset"
                (Party.name p) doc deal.Spec.id))
      | _ -> None)
    commitments

let unbacked_split ~split_loc spec =
  List.filter_map
    (fun (owner, cref) ->
      let amount = Spec.indemnity_amount spec owner cref in
      if amount > 0 then
        Some
          (Diagnostic.make
             ?loc:(split_loc (Party.name owner) cref)
             Diagnostic.Unbacked_split
             (Format.asprintf
                "splitting %a off %s's conjunction leaves %s exposed for \
                 %a unless an indemnity of that amount is deposited — no \
                 deal in this spec provides it"
                Spec.pp_ref cref (Party.name owner) (Party.name owner)
                Asset.pp_money amount))
      else None)
    spec.Spec.splits

let redundant_priority ~priority_loc spec =
  let rec walk seen = function
    | [] -> []
    | ((owner, (cref : Spec.commitment_ref)) as entry) :: rest ->
      let loc = priority_loc (Party.name owner) cref in
      let diag message = Diagnostic.make ?loc Diagnostic.Redundant_priority message in
      let here =
        if
          List.exists
            (fun (o, c) -> Party.equal o owner && Spec.equal_ref c cref)
            seen
        then
          [
            diag
              (Format.asprintf "priority %s : %a is declared twice"
                 (Party.name owner) Spec.pp_ref cref);
          ]
        else if List.length (Spec.linked_commitments_of spec owner) < 2 then
          [
            diag
              (Format.asprintf
                 "priority %s : %a orders nothing — %s has no conjunction \
                  (fewer than two linked commitments)"
                 (Party.name owner) Spec.pp_ref cref (Party.name owner));
          ]
        else if Spec.is_split spec owner cref then
          [
            diag
              (Format.asprintf
                 "priority %s : %a marks a split edge, which is absent \
                  from the sequencing graph"
                 (Party.name owner) Spec.pp_ref cref);
          ]
        else []
      in
      here @ walk (entry :: seen) rest
  in
  walk [] spec.Spec.priorities

let contradictory_priorities ~party_loc ~priority_loc spec =
  let graph = Sequencing.build spec in
  let diags = ref [] in
  for jid = 0 to Sequencing.conjunction_count graph - 1 do
    let reds =
      List.filter
        (fun (cid, colour) ->
          colour = Sequencing.Red
          && not (Sequencing.plays_own_agent graph cid))
        (Sequencing.edges_of_conjunction graph jid)
    in
    if List.length reds >= 2 then begin
      let owner = (Sequencing.conjunction graph jid).Sequencing.owner in
      let crefs =
        List.map
          (fun (cid, _) ->
            (Sequencing.commitment graph cid).Sequencing.cref)
          reds
      in
      let loc =
        match crefs with
        | cref :: _ -> (
          match priority_loc (Party.name owner) cref with
          | Some _ as l -> l
          | None -> party_loc (Party.name owner))
        | [] -> None
      in
      diags :=
        Diagnostic.make ?loc Diagnostic.Contradictory_priorities
          (Format.asprintf
             "conjunction of %s holds %d mutually pre-empting red edges \
              (%s) — no commitment of the bundle can be committed first"
             (Party.name owner) (List.length reds)
             (String.concat ", "
                (List.map (Format.asprintf "%a" Spec.pp_ref) crefs)))
        :: !diags
    end
  done;
  List.rev !diags

let zero_value_leg ~deal_loc spec =
  List.filter_map
    (fun ((cref : Spec.commitment_ref), (deal : Spec.deal)) ->
      match Spec.commitment_sends deal cref.Spec.side with
      | Asset.Money 0 ->
        Some
          (Diagnostic.make ?loc:(deal_loc deal.Spec.id)
             Diagnostic.Zero_value_leg
             (Format.asprintf
                "deal %s: %s pays %a — a zero-value leg secures nothing"
                deal.Spec.id
                (Party.name (Spec.commitment_principal deal cref.Spec.side))
                Asset.pp_money 0))
      | _ -> None)
    (Spec.commitments spec)

(* ------------------------------------------------------------------ *)
(* Deep rules: the full feasibility pipeline.                          *)

let feasibility_diags analysis =
  let spec = analysis.Feasibility.spec in
  match analysis.Feasibility.outcome.Reduce.verdict with
  | Reduce.Feasible ->
    let unsafe =
      match analysis.Feasibility.sequence with
      | None -> []
      | Some seq -> (
        match Verifier.verify seq with
        | Ok () -> []
        | Error exposures ->
          [
            Diagnostic.make
              ~notes:
                (List.map
                   (Format.asprintf "%a" Verifier.pp_exposure)
                   exposures)
              Diagnostic.Unsafe_sequence
              "the synthesized execution sequence fails the protection \
               invariant (verifier self-check)";
          ])
    in
    (`Feasible, unsafe)
  | Reduce.Stuck _ ->
    let kernel_notes =
      match Kernel.of_outcome analysis.Feasibility.outcome with
      | Some kernel ->
        Kernel.explain analysis.Feasibility.outcome.Reduce.graph kernel
      | None -> []
    in
    let diag =
      match Feasibility.rescue_with_indemnities spec with
      | Some rescue ->
        Diagnostic.make ~notes:kernel_notes
          Diagnostic.Rescuable_infeasibility
          (Format.asprintf
             "infeasible as written: reduction gets stuck, but an \
              indemnity rescue exists — indemnities totalling %a make it \
              feasible (try `trustseq indemnify`)"
             Asset.pp_money
             (Feasibility.total_indemnity rescue))
      | None ->
        Diagnostic.make ~notes:kernel_notes
          Diagnostic.Unreachable_acceptance
          "no acceptable final state is reachable from the commitment \
           set, and no indemnity rescue exists"
    in
    (`Stuck, [ diag ])

let vacuous_intermediary ~persona_loc spec =
  let bindings = Party.Map.bindings spec.Spec.personas in
  List.filter_map
    (fun (role, principal) ->
      let personas =
        List.filter
          (fun (r, _) -> not (Party.equal r role))
          bindings
      in
      match
        Spec.make ~personas ~priorities:spec.Spec.priorities
          ~splits:spec.Spec.splits
          ~overrides:(Party.Map.bindings spec.Spec.overrides)
          spec.Spec.deals
      with
      | Error _ -> None
      | Ok stripped ->
        if Feasibility.is_feasible stripped then
          Some
            (Diagnostic.make
               ?loc:(persona_loc (Party.name role) (Party.name principal))
               Diagnostic.Vacuous_intermediary
               (Format.asprintf
                  "direct trust is unnecessary: the exchange stays \
                   feasible when %s is an ordinary trusted intermediary \
                   instead of a persona of %s"
                  (Party.name role) (Party.name principal)))
        else None)
    bindings

(* ------------------------------------------------------------------ *)

let check ?file ?decls ?(static = true) ~deep spec =
  let decls = Option.value decls ~default:[] in
  let deal_loc id = deal_loc decls id in
  let party_loc name = party_loc decls name in
  let priority_loc owner cref = mark_loc `Priority decls owner cref in
  let split_loc owner cref = mark_loc `Split decls owner cref in
  let persona_loc role principal = persona_loc decls role principal in
  let structural =
    unused_party decls
    @ dead_asset ~deal_loc spec
    @ unbacked_split ~split_loc spec
    @ redundant_priority ~priority_loc spec
    @ contradictory_priorities ~party_loc ~priority_loc spec
    @ zero_value_leg ~deal_loc spec
    @ Conflict.structural ~deal_loc ~split_loc spec
  in
  let contradiction =
    List.exists
      (fun d -> d.Diagnostic.code = Diagnostic.Contradictory_priorities)
      structural
  in
  let diags =
    if not deep then structural
    else if contradiction then
      (* The contradiction already explains the stuck graph; TL006/TL009
         would only restate it. *)
      structural
    else
      let analysis = Feasibility.analyze spec in
      let verdict, feas = feasibility_diags analysis in
      let vacuous =
        match verdict with
        | `Feasible -> vacuous_intermediary ~persona_loc spec
        | `Stuck -> []
      in
      (* The static exposure pass reuses the synthesized sequence: TL015
         needs the step spans, TL016/TL017 the abstract interpretation.
         A double spend (TL013) already invalidates the interpreter's
         one-copy-per-supply assumption, so the bound check is
         suppressed the way TL005 suppresses TL006/TL009. *)
      let double_spend =
        List.exists
          (fun d -> d.Diagnostic.code = Diagnostic.Double_spend)
          structural
      in
      let static_diags =
        match (static, analysis.Feasibility.sequence) with
        | true, Some seq ->
          Conflict.deadline_races ~deal_loc seq
          @
          if double_spend then []
          else Static_exposure.diagnostics (Static_exposure.of_sequence seq)
        | _ -> []
      in
      structural @ feas @ vacuous @ static_diags
  in
  List.map (fun d -> { d with Diagnostic.file }) diags
