(** The exposure ledger: who was at risk, for how much, for how long.

    §5's claim is that a feasible protocol protects every participant —
    at any instant, the only value an honest principal has parted with
    and not yet been compensated for is the single transfer currently
    in flight. This module makes that quantity observable: it folds the
    engine's delivery log into a per-principal, per-tick timeline of

    - {e at-risk} value: assets given or money paid into the hands of
      other {e principals} (including trusted personas, §4.2.3 — an
      independently-motivated party is not a protected place) and not
      yet reciprocated;
    - {e escrow}: custody held on the principal's behalf at genuine
      trusted agents — value that is out of its hands but protected;
    - {e deposits}: §6 indemnity deposits posted and not yet refunded
      or forfeited.

    Custody is tracked by provenance: each asset entering a trusted
    agent (or persona acting as one) is queued FIFO with its original
    contributor, so forwards, migrations between agents, §2.2 deadline
    refunds and §6 forfeitures all land on the right principal's
    ledger. Valuations follow the cost-basis rule of
    {!Trace.price_for}: money at face value, a document at what the
    party pays (or failing that, is paid) for it.

    The ledger checks two invariants for {e honest} principals:
    [Bound_exceeded] — at-risk value above the party's
    {!single_transfer_bound} at some tick — and [Unsettled] — at-risk
    value remaining when the run ends. Honest runs of feasible
    protocols produce no violations; adversarial runs flag the
    violating tick and party ({!record} turns each violation into a
    structured [Obs] event). *)

open Exchange

type sample = {
  at : int;
  at_risk : Asset.money;
  in_escrow : Asset.money;
  deposits : Asset.money;
  goods_out : int;  (** documents currently out of the party's custody *)
}

type violation_kind =
  | Bound_exceeded of { at_risk : Asset.money; bound : Asset.money }
  | Unsettled of { residual : Asset.money }

type violation = { v_party : Party.t; v_at : int; v_kind : violation_kind }

type deal_summary = {
  d_party : Party.t;
  d_deal : string;
  d_peak : Asset.money;  (** peak outstanding (unreciprocated) value in this deal *)
  d_first : int;  (** first exposed tick, [-1] when never exposed *)
  d_last : int;  (** last exposed tick *)
}

type party_ledger = {
  party : Party.t;
  bound : Asset.money;
  timeline : sample list;  (** change ticks only, chronological *)
  peak_at_risk : Asset.money;
  peak_in_escrow : Asset.money;
  peak_deposits : Asset.money;
  risk_ticks : int;  (** ticks with [at_risk > 0] *)
  final : sample;
}

type agent_ledger = {
  agent : Party.t;  (** a trusted role, or a persona holding custody *)
  custody_timeline : (int * Asset.money) list;
  peak_custody : Asset.money;
  final_custody : Asset.money;
}

type t = {
  parties : party_ledger list;  (** principals, spec order *)
  agents : agent_ledger list;  (** custody holders that ever held value *)
  deals : deal_summary list;  (** (principal, deal) pairs that were ever exposed *)
  violations : violation list;  (** honest principals only, chronological *)
  duration : int;  (** last delivery tick of the run *)
}

val single_transfer_bound : Spec.t -> Party.t -> Asset.money
(** The §5 bound: the largest single transfer the party's commitments
    ever put in flight — [max] over its deal sides of the value it
    sends (documents at cost basis). *)

val of_result :
  ?plan:Trust_core.Indemnity.plan ->
  ?defectors:Party.t list ->
  Spec.t ->
  Engine.result ->
  t
(** Fold the run's delivery log into the ledger. [plan] identifies
    indemnity deposit transfers; [defectors] exempts dishonest parties
    from invariant checking (their exposure is still reported). *)

val total_peak_at_risk : t -> Asset.money
val total_peak_escrow : t -> Asset.money

val total_risk_ticks : t -> int
(** Summed over principals. *)

val record : Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> t -> unit
(** Attach an ["exposure"]-phase span to a trace: summary attrs
    ([peak_at_risk], [peak_escrow], [risk_ticks], [violations], and a
    [peak_at_risk.<party>] attr per exposed principal) plus one
    ["violation"] event per violation carrying [party], [at], [kind]
    and the amounts. No-op on the null sink. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
