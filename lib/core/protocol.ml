open Exchange

type condition = Now | Observed of Action.t

type scripted_step = { condition : condition; action : Action.t }

type t = { spec : Spec.t; roles : (Party.t * scripted_step list) list }

let observes party action =
  Party.equal (Action.beneficiary action) party || Party.equal (Action.performer action) party

let synthesize (sequence : Execution.sequence) =
  let actions = Execution.actions sequence in
  let step_for ~prefix action =
    let performer = Action.performer action in
    (* Latest earlier action the performer observes (excluding its own
       earlier actions, which local order already covers). *)
    let trigger =
      List.fold_left
        (fun acc earlier ->
          if
            Party.equal (Action.beneficiary earlier) performer
            && not (Party.equal (Action.performer earlier) performer)
          then Some earlier
          else acc)
        None prefix
    in
    let condition = match trigger with Some a -> Observed a | None -> Now in
    (performer, { condition; action })
  in
  let rec walk prefix = function
    | [] -> []
    | action :: rest -> step_for ~prefix action :: walk (prefix @ [ action ]) rest
  in
  let assignments = walk [] actions in
  let parties = Spec.parties sequence.Execution.spec in
  let roles =
    List.filter_map
      (fun party ->
        let steps =
          List.filter_map
            (fun (performer, step) ->
              if Party.equal performer party then Some step else None)
            assignments
        in
        if steps = [] then None else Some (party, steps))
      parties
  in
  { spec = sequence.Execution.spec; roles }

(* Steps that must not be serialized across independent branches: a
   deferred red delivery waits only for the goods it ships (its branch),
   and a persona forward waits only for the payment that secures it —
   otherwise one withheld delivery would stall every other branch's
   deliveries and unfairly trip their deposit forfeits at the deadline. *)
let branch_local spec (step : Execution.step) =
  match step.Execution.origin with
  | Execution.Commit cref -> (
    match Spec.find_deal spec cref.Spec.deal with
    | None -> false
    | Some d ->
      let principal = Spec.commitment_principal d cref.Spec.side in
      List.exists
        (fun owner ->
          Spec.is_priority spec owner cref && not (Spec.is_split spec owner cref))
        [ principal; d.Spec.via ])
  | Execution.Forward deal -> (
    match Spec.find_deal spec deal with
    | None -> false
    | Some d -> Spec.persona_of spec d.Spec.via <> None)
  | Execution.Notification _ -> false

let synthesize_lockstep ?(prologue = []) (sequence : Execution.sequence) =
  let spec = sequence.Execution.spec in
  let prologue_steps =
    List.map (fun action -> { Execution.index = 0; action; origin = Execution.Forward "" }) prologue
  in
  let steps_in_order =
    List.map (fun s -> (s, false)) prologue_steps
    @ List.map (fun s -> (s, branch_local spec s)) sequence.Execution.steps
  in
  let actions = List.map (fun (s, _) -> s.Execution.action) steps_in_order in
  let local_trigger i action =
    (* the latest earlier delivery the performer observes locally *)
    let performer = Action.performer action in
    let rec latest j best =
      if j >= i then best
      else
        let earlier = List.nth actions j in
        let best =
          if
            Party.equal (Action.beneficiary earlier) performer
            && not (Party.equal (Action.performer earlier) performer)
          then Some earlier
          else best
        in
        latest (j + 1) best
    in
    match latest 0 None with Some a -> Observed a | None -> Now
  in
  let steps =
    List.mapi
      (fun i (step, local) ->
        let action = step.Execution.action in
        let condition =
          if i = 0 then Now
          else if local then local_trigger i action
          else Observed (List.nth actions (i - 1))
        in
        (Action.performer action, { condition; action }))
      steps_in_order
  in
  let roles =
    List.filter_map
      (fun party ->
        match
          List.filter_map
            (fun (performer, step) ->
              if Party.equal performer party then Some step else None)
            steps
        with
        | [] -> None
        | mine -> Some (party, mine))
      (Spec.parties sequence.Execution.spec)
  in
  { spec = sequence.Execution.spec; roles }

let script_of t party =
  match List.find_opt (fun (p, _) -> Party.equal p party) t.roles with
  | Some (_, steps) -> steps
  | None -> []

let equal_condition a b =
  match (a, b) with
  | Now, Now -> true
  | Observed x, Observed y -> Action.equal x y
  | (Now | Observed _), _ -> false

let equal_step a b = equal_condition a.condition b.condition && Action.equal a.action b.action

let equal_roles a b =
  List.length a.roles = List.length b.roles
  && List.for_all2
       (fun (pa, sa) (pb, sb) ->
         Party.equal pa pb
         && List.length sa = List.length sb
         && List.for_all2 equal_step sa sb)
       a.roles b.roles

let pp_condition ppf = function
  | Now -> Format.pp_print_string ppf "now"
  | Observed a -> Format.fprintf ppf "after %a" Action.pp a

let pp ppf t =
  Format.fprintf ppf "@[<v>protocol:";
  List.iter
    (fun (party, steps) ->
      Format.fprintf ppf "@,  %a:" Party.pp party;
      List.iter
        (fun s -> Format.fprintf ppf "@,    [%a] %a" pp_condition s.condition Action.pp s.action)
        steps)
    t.roles;
  Format.fprintf ppf "@]"
