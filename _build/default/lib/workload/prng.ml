type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 (Steele, Lea & Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62
     so bias is negligible for workload generation. The shift by 2 keeps
     the value within OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let bits53 = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits53 /. 9007199254740992.0 (* 2^53 *)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = create (next_int64 t)
