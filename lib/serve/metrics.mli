(** A small metrics registry for the exchange service: named counters,
    gauges and latency histograms with deterministic text and JSON
    snapshots.

    Determinism is load-bearing: every quantity the service records is
    measured in {e virtual} units (engine ticks, events, session
    counts), so two runs with the same seed produce byte-identical
    snapshots. Wall-clock throughput is deliberately kept out of the
    registry — see {!Service.wall_line}. Snapshots render metrics
    sorted by name, never in hash-table order.

    The registry is {e domain-safe}: counters are a single [Atomic.t]
    (lock-free increments), histograms and gauges are mutex-guarded,
    and registration is serialized on the registry mutex, so pool
    workers ({!Pool}) may record concurrently. Counter increments and
    histogram observations commute, which is what keeps snapshots
    byte-identical at any [--jobs]: the {e set} of recorded values is
    determined by the seed, and the order they land in is not
    observable. Take snapshots after the recording domains have been
    joined. *)

type t
type counter
type histogram

val create : unit -> t

val counter : t -> ?help:string -> string -> counter
(** Register (or fetch, when already registered) a counter.
    @raise Invalid_argument when the name is taken by another kind. *)

val incr : ?by:int -> counter -> unit
val value : counter -> int

val histogram : t -> ?help:string -> ?buckets:int list -> string -> histogram
(** Upper-bound buckets, strictly increasing; an implicit [+Inf] bucket
    is always appended. Defaults to a 1..10000 log-ish ladder suited to
    engine tick and event counts. *)

val observe : histogram -> int -> unit

val gauge : t -> ?help:string -> ?volatile:bool -> string -> float -> unit
(** Set a gauge, registering it on first use. [volatile] (default
    false) marks timing telemetry — queue high-water marks, wait
    counts — whose value depends on scheduling, not on the seed: it
    stays a real registry series but is excluded from {!to_text} and
    {!to_json} (which must stay byte-identical run-to-run) and is
    rendered by {!volatile_text} instead, the same quarantine the
    service applies to wall-clock throughput. *)

val to_text : t -> string
(** Prometheus exposition-format snapshot: [# HELP] and [# TYPE] lines,
    counter samples, cumulative [_bucket{le="…"}] series ending in
    [+Inf] plus [_sum]/[_count] for histograms, gauges with fixed
    6-decimal formatting — all sorted by metric name. Volatile gauges
    are omitted. test/test_metrics.ml checks this contract with a small
    exposition parser. *)

val dump : t -> string
(** Alias for {!to_text} — the conventional name for a scrape-style
    dump. *)

val to_json : t -> string
(** The same snapshot as one JSON object:
    [{"counters":{…},"gauges":{…},"histograms":{…}}], keys sorted.
    Volatile gauges are omitted. *)

val volatile_text : t -> string
(** The volatile gauges only, [name value] per line, sorted — for
    stderr, next to the wall-clock line. Empty when none were set. *)
