(** Rendering a {!Exchange.Spec.t} back to DSL source.

    [Elaborate.from_string (to_string spec)] reproduces a spec equal to
    [spec] up to acceptability overrides (which have no surface syntax);
    the test suite checks this round trip on every scenario. *)

open Exchange

val to_string : Spec.t -> string
val pp : Format.formatter -> Spec.t -> unit

val web_to_string : Elaborate.web -> string
(** Render a web program; [Elaborate.web_from_string] round-trips it. *)
