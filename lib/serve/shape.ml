open Exchange

let cacheable spec = Party.Map.is_empty spec.Spec.overrides

(* The canonical encoding and its FNV-1a hash are memoized inside
   [Spec.t] itself (computed at most once per constructed spec), so a
   cache lookup no longer re-canonicalizes the spec — these are thin
   accessors kept for compatibility. *)
let encode = Spec.shape_key
let hash = Spec.shape_hash
let hash_hex = Spec.shape_hex

let fnv1a s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
