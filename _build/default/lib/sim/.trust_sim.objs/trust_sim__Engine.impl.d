lib/sim/engine.ml: Action Asset Behavior Event_queue Exchange Format Hashtbl List Option Party Spec State Trust_core
