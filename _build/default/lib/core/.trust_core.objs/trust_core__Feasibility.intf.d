lib/core/feasibility.mli: Asset Exchange Execution Format Indemnity Party Reduce Spec
