type t =
  | Ident of string
  | String of string
  | Money of int
  | Int of int
  | Colon
  | Semicolon
  | Dot
  | Arrow
  | Kw_principal
  | Kw_consumer
  | Kw_producer
  | Kw_broker
  | Kw_trusted
  | Kw_deal
  | Kw_pays
  | Kw_gives
  | Kw_via
  | Kw_within
  | Kw_relay
  | Kw_request
  | Kw_buys
  | Kw_from
  | Kw_for
  | Kw_priority
  | Kw_split
  | Kw_trust
  | Kw_persona
  | Kw_is
  | Kw_buyer
  | Kw_seller
  | Kw_left
  | Kw_right
  | Eof

let keywords =
  [
    ("principal", Kw_principal);
    ("consumer", Kw_consumer);
    ("producer", Kw_producer);
    ("broker", Kw_broker);
    ("trusted", Kw_trusted);
    ("deal", Kw_deal);
    ("pays", Kw_pays);
    ("gives", Kw_gives);
    ("via", Kw_via);
    ("within", Kw_within);
    ("relay", Kw_relay);
    ("request", Kw_request);
    ("buys", Kw_buys);
    ("from", Kw_from);
    ("for", Kw_for);
    ("priority", Kw_priority);
    ("split", Kw_split);
    ("trust", Kw_trust);
    ("persona", Kw_persona);
    ("is", Kw_is);
    ("buyer", Kw_buyer);
    ("seller", Kw_seller);
    ("left", Kw_left);
    ("right", Kw_right);
  ]

let keyword word = List.assoc_opt word keywords

let to_string = function
  | Ident s -> s
  | String s -> Printf.sprintf "%S" s
  | Money cents ->
    if cents mod 100 = 0 then Printf.sprintf "$%d" (cents / 100)
    else Printf.sprintf "$%d.%02d" (cents / 100) (cents mod 100)
  | Int n -> string_of_int n
  | Colon -> ":"
  | Semicolon -> ";"
  | Dot -> "."
  | Arrow -> "->"
  | Eof -> "<eof>"
  | kw -> (
    match List.find_opt (fun (_, t) -> t = kw) keywords with
    | Some (w, _) -> w
    | None -> "<unknown>")

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b
