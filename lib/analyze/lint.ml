module Ast = Trust_lang.Ast
module Parser = Trust_lang.Parser
module Elaborate = Trust_lang.Elaborate
module Obs = Trust_obs.Obs

type format = Human | Json | Sarif

let check_spec ?(obs = Obs.null) ?parent ?file ?decls ?static ?(deep = true)
    spec =
  Obs.with_span obs ?parent ~phase:"lint" "lint" (fun h ->
      let diagnostics =
        Diagnostic.sort (Rules.check ?file ?decls ?static ~deep spec)
      in
      if Obs.enabled obs then begin
        let by severity =
          List.length (List.filter (fun d -> d.Diagnostic.severity = severity) diagnostics)
        in
        Obs.attr obs h "deep" (Obs.Bool deep);
        Obs.attr obs h "diagnostics" (Obs.Int (List.length diagnostics));
        Obs.attr obs h "errors" (Obs.Int (by Diagnostic.Error));
        Obs.attr obs h "warnings" (Obs.Int (by Diagnostic.Warning))
      end;
      diagnostics)

let elaboration_diags ?file errors =
  List.map
    (fun (e : Elaborate.error) ->
      Diagnostic.make ?file ~loc:e.Elaborate.loc Diagnostic.Elaboration_error
        e.Elaborate.message)
    (Elaborate.sort_errors errors)

let lint_source ?file ?static ?deep src =
  match Parser.parse src with
  | Error e ->
    [
      Diagnostic.make ?file ~loc:e.Parser.loc Diagnostic.Parse_error
        e.Parser.message;
    ]
  | Ok decls ->
    if Elaborate.is_web decls then
      match Elaborate.web decls with
      | Ok _ -> []
      | Error errors -> elaboration_diags ?file errors
    else (
      match Elaborate.program decls with
      | Error errors -> elaboration_diags ?file errors
      | Ok spec -> check_spec ?file ~decls ?static ?deep spec)

let lint_file ?static ?deep path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> lint_source ~file:path ?static ?deep src
  | exception Sys_error message ->
    [ Diagnostic.make ~file:path Diagnostic.Parse_error message ]

let exit_status ?werror diagnostics =
  if
    List.exists
      (fun d -> d.Diagnostic.code = Diagnostic.Parse_error)
      diagnostics
  then 2
  else if List.exists (Diagnostic.gating ?werror) diagnostics then 1
  else 0

let render format diagnostics =
  match format with
  | Human -> Diagnostic.render_human diagnostics
  | Json -> Diagnostic.render_json diagnostics
  | Sarif -> Diagnostic.render_sarif diagnostics
