test/test_asset.mli:
