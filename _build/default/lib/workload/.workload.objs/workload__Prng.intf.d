lib/workload/prng.mli:
