test/test_petri.ml: Alcotest Int64 List Petri QCheck2 QCheck_alcotest Trust_core Workload
