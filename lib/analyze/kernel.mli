(** Minimal stuck kernel of an irreducible sequencing graph.

    When reduction gets stuck (§4.2.4), the remaining edges split into
    connected components; each component is independently irreducible,
    so the smallest one is a minimal counterexample — the cheapest thing
    to show a user as "here is the knot". [explain] says, per node, why
    neither Rule #1 nor Rule #2 applies to it. *)

module Sequencing := Trust_core.Sequencing
module Reduce := Trust_core.Reduce

type t = {
  edges : (int * int * Sequencing.colour) list;
      (** the smallest component's [(cid, jid, colour)] edges *)
  component_count : int;  (** stuck components in the whole graph *)
}

val of_outcome : Reduce.outcome -> t option
(** [None] when the outcome is feasible. The smallest component is
    chosen by edge count, ties broken by lowest commitment id. *)

val explain : Sequencing.t -> t -> string list
(** Human explanation: one line per kernel edge, then one line per node
    saying why it is irreducible (not on the fringe / pre-empted by a
    red sibling). Deterministic order. *)
