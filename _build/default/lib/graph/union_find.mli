(** Union-find (disjoint sets) over dense integer elements, with path
    compression and union by rank. Used to track which commitment nodes
    merge when a principal plays the trusted-agent role, and by the
    workload generators to keep random topologies connected. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge the two sets. No-op when already equal. *)

val equivalent : t -> int -> int -> bool
val count_sets : t -> int
val set_of : t -> int -> int list
(** All elements sharing the given element's representative, ascending. *)
