(** Span-based structured tracing for the whole pipeline: parse →
    elaborate → lint → reduce → route → simulate → verify → audit.

    {2 Determinism contract}

    Every exported quantity is {e virtual}: span ids, parents and the
    [start]/[stop]/[vt] timestamps come from a per-trace monotonic
    counter that ticks once per span begin, span end and event. Two
    runs over the same input produce byte-identical exports, and —
    because each serve session owns its own trace and clock — so do
    runs at any [--jobs]. Wall-clock instants are still captured on
    every span, but they are {e annotations}: no exporter ever renders
    them (the same quarantine {!Trust_serve.Metrics} applies to its
    volatile gauges and {!Trust_serve.Service.wall_line} to
    throughput). Facts that depend on domain scheduling rather than on
    the seed (e.g. which of two racing sessions took the protocol-cache
    miss) must be recorded with {!volatile_attr}, which exporters skip.

    {2 Cost contract}

    The {!null} sink is the default everywhere and is allocation-free:
    {!span} returns {!none} without allocating, {!event}/{!attr} return
    immediately. Call sites that would build an attribute list guard it
    with {!enabled} so a disabled trace never allocates on hot paths. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type t
(** A sink: either the null sink or one live trace. *)

type handle
(** A span under construction; {!none} when the sink is {!null}. *)

val null : t
val none : handle

val create : ?session:int -> unit -> t
(** A fresh live trace. [session] (default 0) becomes the [pid] of the
    Chrome export and the ["session"] field of the JSONL export. *)

val enabled : t -> bool
(** [false] exactly for {!null} — use it to guard attribute-building. *)

val session : t -> int

val clock : t -> int
(** The trace's current virtual time (0 for {!null}) — the binary ring
    codec persists it so decoded traces re-render identically. *)

val span : t -> ?parent:handle -> phase:string -> string -> handle
(** Open a span. [phase] names the pipeline stage (["parse"],
    ["reduce"], ["simulate"], …); the span name can be more specific
    (["reduce.worklist"]). A [parent] of {!none} makes a root span. *)

val finish : t -> handle -> unit
(** Close the span at the current virtual time. Idempotent in effect:
    a second finish overwrites the stop timestamp. *)

val with_span : t -> ?parent:handle -> phase:string -> string -> (handle -> 'a) -> 'a
(** [span] / run / [finish], closing the span on exceptions too. *)

val event : t -> handle -> ?attrs:(string * value) list -> string -> unit
(** Record an instantaneous event on a span at the current virtual
    time. No-op on {!null} — but guard attribute construction with
    {!enabled} to keep the disabled path allocation-free. *)

val attr : t -> handle -> string -> value -> unit
(** Attach a deterministic attribute (exported). *)

val volatile_attr : t -> handle -> string -> value -> unit
(** Attach a scheduling-dependent attribute: kept on the span for
    programmatic inspection, {e never} exported. *)

val first_root : t -> handle
(** The first root span of the trace ({!none} when there is none, or
    the sink is {!null}) — lets late phases (e.g. lane placement after
    the pool join) parent onto the session root. *)

val wall_seconds : t -> float
(** Wall-clock duration between the first span begin and the last span
    end — an annotation for stderr, never part of an export. *)

(** {2 Batch registry (serve layer)}

    One trace per session, created from whichever pool worker runs the
    session. Slots are written by exactly one job each, and the pool's
    shutdown join publishes them — the same ownership discipline the
    scheduler already applies to {!Trust_serve.Session.t} fields. *)

type batch

val no_batch : batch
(** The disabled registry: {!session_trace} returns {!null}. *)

val batch : enabled:bool -> sessions:int -> batch

val batch_enabled : batch -> bool

val session_trace : batch -> int -> t
(** The trace for session [i], created on first use. Out-of-range ids
    (and the disabled registry) return {!null}. *)

val batch_traces : batch -> t list
(** Every created trace, in session order — deterministic input for
    {!export}. *)

(** {2 Span views}

    A read-only snapshot of a recorded trace: what the exporters see,
    exposed so the analysis layer ({!Analysis}) can compute statistics,
    critical paths and diffs over in-memory traces and re-parsed JSONL
    exports with one code path. *)

type event_view = { ev_name : string; ev_vt : int; ev_attrs : (string * value) list }

type span_view = {
  view_session : int;
  view_id : int;
  view_parent : int option;
  view_phase : string;
  view_name : string;
  view_start : int;
  view_stop : int;  (** [-1] while the span is still open *)
  view_attrs : (string * value) list;  (** deterministic attrs only *)
  view_events : event_view list;
}

val views : t -> span_view list
(** Spans in creation order ([[]] for {!null}). Volatile attrs are
    excluded, exactly as in every exporter. *)

val of_views : session:int -> clock:int -> span_view list -> t
(** Rebuild a live trace from span views (in creation order) — the
    inverse of {!views}, used by the binary ring decoder ({!Ring}) so
    the exporters re-emit decoded traces byte-compatibly. Volatile
    attrs and wall instants are absent by construction; no exporter
    rendered them anyway. *)

(** {2 Exporters} *)

type format = Jsonl | Chrome | Tree | Folded

val format_of_string : string -> format option
(** ["jsonl"], ["chrome"], ["tree"] or ["folded"], case-insensitively. *)

val format_names : string list
(** The accepted format names, in declaration order — for error
    messages ("expected one of: …"). *)

val render_folded : span_view list -> string
(** The folded-stack (flamegraph) rendering over span views: one line
    per span, [root;child;…;span N] where [N] is the span's {e self}
    virtual time (duration minus the durations of its children) and
    frames are [;]-joined span names with literal [;], [\ ] and
    newlines escaped. Lines follow creation order; summing the counts
    of one session's lines reproduces its root span durations, which
    is what flamegraph tools rely on. *)

val export : ?producer:string -> format -> t list -> string
(** Render traces (null sinks are skipped, order preserved).

    [Jsonl]: one JSON object per line — an optional leading
    [{"type":"meta","producer":…}] when [producer] is given, then for
    each span a [{"type":"span",…}] line carrying [session], [id],
    [parent], [phase], [name], [start], [stop] and [attrs], followed by
    its [{"type":"event",…}] lines.

    [Chrome]: a Chrome trace-event JSON array (loadable in Perfetto /
    [chrome://tracing]): one [ph:"X"] complete event per span with
    [ts]/[dur] in virtual time and [pid] the session id, one [ph:"i"]
    instant event per span event, plus [ph:"M"] process metadata naming
    the producer.

    [Tree]: a human-readable indented span tree with attributes and
    events inline. *)
