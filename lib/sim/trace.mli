(** Trace analysis over simulation logs.

    The §8 discussion prices mistrust in messages; an equally telling
    price is {e exposure}: how much value a party has surrendered
    without yet having received what it was promised, tick by tick. A
    protective protocol keeps honest exposure covered by an escrow or an
    indemnity at all times; these analyses make that visible and
    measurable. *)

open Exchange

type t
(** An analysed trace. *)

val of_result : Spec.t -> Engine.result -> t

val log : t -> Engine.delivery list

(** {1 Local views} *)

val view_of : t -> Party.t -> Engine.delivery list
(** The deliveries the party observes locally: those it performed, those
    it benefits from. This is what a distributed participant actually
    sees (§9). *)

val performed_by : t -> Party.t -> Action.t list
val final_state : t -> State.t

(** {1 Exposure} *)

val price_for : Spec.t -> Party.t -> Asset.t -> Asset.money
(** What an asset is worth to a party: money at face value; a document
    at what the party pays for it in the spec (its cost basis) or,
    failing that, what it is paid for it; [0] when the party never
    trades it. Shared with the {!Exposure} ledger. *)

type exposure = {
  at : int;  (** tick *)
  outlay : Asset.money;  (** money surrendered and not yet returned *)
  goods_out : int;  (** documents surrendered and not yet returned *)
  covered : Asset.money;
      (** money value already received back against the outlay:
          deliveries, refunds, payouts *)
}

val exposure_profile : t -> Party.t -> exposure list
(** One sample per tick at which the party's position changed,
    chronological. [outlay] counts every asset the party sent ([Do]
    performed by it) minus returns ([Undo] of those transfers);
    [covered] counts money and priced documents it received. Documents
    are priced at what the party pays for them in the spec ([0] when it
    never buys them). *)

val peak_exposure : t -> Party.t -> Asset.money
(** Maximum over the profile of [max 0 (outlay - covered)] — the worst
    uncovered position the party was ever in. Zero for a party that
    never risked anything uncompensated. *)

val total_peak_exposure : t -> Asset.money
(** Sum of principals' peak exposures: a one-number risk cost of the
    whole protocol run, comparable across trust regimes. *)

val duration : t -> int
(** Tick of the last delivery ([0] for an empty log). *)

val pp_profile : Format.formatter -> exposure list -> unit
