open Exchange

type origin =
  | Commit of Spec.commitment_ref
  | Forward of string
  | Notification of Party.t

type step = { index : int; action : Action.t; origin : origin }

type sequence = { spec : Spec.t; steps : step list }

(* Events derived from the deletion log, still unexpanded. *)
type event =
  | E_commit of Sequencing.commitment
  | E_notify of Party.t * Party.t  (* conjunction owner (trusted role), informed principal *)

let deal_of spec cref =
  match Spec.find_deal spec cref.Spec.deal with
  | Some d -> d
  | None -> invalid_arg "Execution: dangling commitment reference"

(* A commitment is deferred when any of its original conjunction edges
   was red (§5: "deferring any commitment nodes connected to their
   conjunction nodes with a red edge"). *)
let is_red_commitment spec (c : Sequencing.commitment) =
  let owners = [ c.Sequencing.principal; c.Sequencing.agent ] in
  List.exists
    (fun owner ->
      Spec.is_priority spec owner c.Sequencing.cref
      && not (Spec.is_split spec owner c.Sequencing.cref))
    owners

let events_of_outcome (outcome : Reduce.outcome) =
  let g = outcome.Reduce.graph in
  let spec = Sequencing.spec g in
  (* Commitments that had no edges to begin with are committed up front:
     nothing constrains them. *)
  let deleted_cids = List.map (fun d -> d.Reduce.cid) outcome.Reduce.deletions in
  let initial =
    Array.to_list (Sequencing.commitments g)
    |> List.filter (fun c ->
           (not (List.mem c.Sequencing.cid deleted_cids))
           && Sequencing.is_disconnected_commitment g c.Sequencing.cid)
    |> List.map (fun c -> E_commit c)
  in
  let of_deletion (d : Reduce.deletion) =
    let conj = Sequencing.conjunction g d.Reduce.jid in
    let commitment = Sequencing.commitment g d.Reduce.cid in
    let notifies =
      if d.Reduce.conjunction_disconnected && Party.is_trusted conj.Sequencing.owner then
        [ E_notify (conj.Sequencing.owner, commitment.Sequencing.principal) ]
      else []
    in
    let commits = if d.Reduce.commitment_disconnected then [ E_commit commitment ] else [] in
    notifies @ commits
  in
  (spec, initial @ List.concat_map of_deletion outcome.Reduce.deletions)

(* Among the deferred red commitments, a broker can only ship a document
   another deferred deal supplies it with (through that deal's forward),
   so the deferred block is topologically ordered by document flow:
   supplier deals execute before the resales that consume them. *)
let order_deferred spec deferred =
  match deferred with
  | [] | [ _ ] -> deferred
  | deferred ->
    let arr = Array.of_list deferred in
    let n = Array.length arr in
    let info = function
      | E_commit c ->
        let d = deal_of spec c.Sequencing.cref in
        Some (c.Sequencing.principal, d, Spec.commitment_sends d c.Sequencing.cref.Spec.side)
      | E_notify _ -> None
    in
    let supplies j i =
      (* event j's deal hands event i's principal the document it ships *)
      match (info arr.(i), info arr.(j)) with
      | Some (pi, _, (Asset.Document _ as doc)), Some (_, dj, _) ->
        List.exists
          (fun side ->
            Party.equal (Spec.commitment_principal dj side) pi
            && Asset.equal (Spec.commitment_expects dj side) doc)
          [ Spec.Left; Spec.Right ]
      | _, _ -> false
    in
    let g = Trust_graph.Digraph.create ~initial_capacity:n () in
    let _ = Trust_graph.Digraph.add_nodes g n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && supplies j i then Trust_graph.Digraph.add_edge g j i
      done
    done;
    (match Trust_graph.Digraph.topological_sort g with
    | Some order -> List.map (fun i -> arr.(i)) order
    | None -> deferred)

(* Stable partition: black-commitment and notification events keep their
   order; red commitments move to the back (§5). *)
let defer_reds spec events =
  let is_deferred = function
    | E_commit c -> is_red_commitment spec c
    | E_notify _ -> false
  in
  let front, back = List.partition (fun e -> not (is_deferred e)) events in
  front @ order_deferred spec back

let forward_transfers spec (d : Spec.deal) =
  let agent = Spec.effective_agent spec d in
  let to_left = Action.{ source = agent; target = d.Spec.left; asset = d.Spec.right_sends } in
  let to_right = Action.{ source = agent; target = d.Spec.right; asset = d.Spec.left_sends } in
  (* Documents forwarded before payments — this is what puts "Trusted2
     sends document to Broker" before "Trusted2 sends money to Producer"
     in the paper's worked Example #1 sequence. *)
  let docs, money =
    List.partition (fun tr -> Asset.is_document tr.Action.asset) [ to_left; to_right ]
  in
  docs @ money

let real_transfer tr = not (Party.equal tr.Action.source tr.Action.target)

type guard = Persona_secured of Party.t | Agent_complete of Party.t

let expand spec events =
  (* escrow: which sides of each deal the intermediary has received *)
  let escrow : (string, Spec.side list) Hashtbl.t = Hashtbl.create 16 in
  let completed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let steps = ref [] and index = ref 0 in
  (* Some forwards are held back:
     - a persona-mediated deal's, until the persona principal is
       {e secured} — every deal it participates in has both sides
       committed. The persona holds both sides of its own deal, so
       §2.5's reversal guarantee lets the irrevocable outbound transfer
       wait exactly that long (otherwise the §4.2.3 variant-1 broker
       would pay its source before securing the customer), and no longer
       (the source must be paid the moment the broker's resale is safe);
     - a multi-deal agent's, until {e all} its deals are in — the §8
       coordinated-transaction semantics the atomic escrow implements,
       which keeps shared-agent bundles all-or-nothing. *)
  let pending : (string * guard * Action.transfer list) list ref = ref [] in
  let emit origin action =
    incr index;
    steps := { index = !index; action; origin } :: !steps
  in
  let secured persona =
    List.for_all
      (fun (d : Spec.deal) ->
        (not (Party.equal d.Spec.left persona || Party.equal d.Spec.right persona))
        || Hashtbl.mem completed d.Spec.id)
      spec.Spec.deals
  in
  let agent_done agent =
    List.for_all
      (fun (d : Spec.deal) ->
        (not (Party.equal d.Spec.via agent)) || Hashtbl.mem completed d.Spec.id)
      spec.Spec.deals
  in
  let guard_open = function
    | Persona_secured p -> secured p
    | Agent_complete t -> agent_done t
  in
  let rec flush_secured () =
    let ready, waiting = List.partition (fun (_, g, _) -> guard_open g) !pending in
    pending := waiting;
    if ready <> [] then begin
      List.iter
        (fun (id, _, transfers) ->
          List.iter (fun tr -> emit (Forward id) (Action.Do tr)) transfers)
        ready;
      flush_secured ()
    end
  in
  let commit (c : Sequencing.commitment) =
    let cref = c.Sequencing.cref in
    let d = deal_of spec cref in
    let principal = c.Sequencing.principal in
    let agent = Spec.effective_agent spec d in
    let transfer =
      Action.{ source = principal; target = agent; asset = Spec.commitment_sends d cref.Spec.side }
    in
    if real_transfer transfer then emit (Commit cref) (Action.Do transfer);
    let sides = Option.value ~default:[] (Hashtbl.find_opt escrow d.Spec.id) in
    let sides = if List.mem cref.Spec.side sides then sides else cref.Spec.side :: sides in
    Hashtbl.replace escrow d.Spec.id sides;
    if List.length sides = 2 then begin
      Hashtbl.replace completed d.Spec.id ();
      let forwards = List.filter real_transfer (forward_transfers spec d) in
      let mediates =
        List.length (List.filter (fun d' -> Party.equal d'.Spec.via d.Spec.via) spec.Spec.deals)
      in
      (match Spec.persona_of spec d.Spec.via with
      | Some persona ->
        pending := !pending @ [ (d.Spec.id, Persona_secured persona, forwards) ]
      | None when mediates > 1 ->
        pending := !pending @ [ (d.Spec.id, Agent_complete d.Spec.via, forwards) ]
      | None -> List.iter (fun tr -> emit (Forward d.Spec.id) (Action.Do tr)) forwards);
      flush_secured ()
    end
  in
  let notify owner informed =
    let agent =
      match Spec.persona_of spec owner with Some principal -> principal | None -> owner
    in
    if not (Party.equal agent informed) then
      emit (Notification owner) (Action.notify ~agent ~informed)
  in
  List.iter
    (function
      | E_commit c -> commit c
      | E_notify (owner, informed) -> notify owner informed)
    events;
  (* Fallback: anything still pending is flushed unconditionally. *)
  List.iter
    (fun (id, _, transfers) ->
      List.iter (fun tr -> emit (Forward id) (Action.Do tr)) transfers)
    !pending;
  List.rev !steps

let of_outcome (outcome : Reduce.outcome) =
  match outcome.Reduce.verdict with
  | Reduce.Stuck _ -> Error "execution sequence requires a feasible reduction"
  | Reduce.Feasible ->
    let spec, events = events_of_outcome outcome in
    let steps = expand spec (defer_reds spec events) in
    Ok { spec; steps }

let actions sequence = List.map (fun s -> s.action) sequence.steps

let final_state sequence = State.of_actions (actions sequence)

let message_count sequence = List.length sequence.steps

(* Initial endowments (§2.4): money is always on hand; a document is on
   hand unless the sender acquires it through another of its deals. *)
let initially_holds spec party asset =
  match asset with
  | Asset.Money _ -> true
  | Asset.Document _ ->
    let acquires_elsewhere =
      List.exists
        (fun (cref, d) ->
          Party.equal (Spec.commitment_principal d cref.Spec.side) party
          && Asset.equal (Spec.commitment_expects d cref.Spec.side) asset)
        (Spec.commitments spec)
    in
    not acquires_elsewhere

let check_physical sequence =
  let spec = sequence.spec in
  let holdings : (string, Asset.Bag.t) Hashtbl.t = Hashtbl.create 16 in
  let bag_of party = Option.value ~default:Asset.Bag.empty (Hashtbl.find_opt holdings (Party.name party)) in
  let set_bag party bag = Hashtbl.replace holdings (Party.name party) bag in
  (* Endow principals. *)
  List.iter
    (fun (cref, d) ->
      let p = Spec.commitment_principal d cref.Spec.side in
      let asset = Spec.commitment_sends d cref.Spec.side in
      if initially_holds spec p asset then set_bag p (Asset.Bag.add asset (bag_of p)))
    (Spec.commitments spec);
  let move source target asset =
    match Asset.Bag.remove asset (bag_of source) with
    | None ->
      Error
        (Format.asprintf "%s sends %a it does not hold" (Party.name source) Asset.pp asset)
    | Some rest ->
      set_bag source rest;
      set_bag target (Asset.Bag.add asset (bag_of target));
      Ok ()
  in
  let run_step acc step =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
      match step.action with
      | Action.Do tr -> move tr.Action.source tr.Action.target tr.Action.asset
      | Action.Undo tr -> move tr.Action.target tr.Action.source tr.Action.asset
      | Action.Notify _ -> Ok ())
  in
  List.fold_left run_step (Ok ()) sequence.steps

let all_parties_acceptable sequence =
  let state = final_state sequence in
  List.map
    (fun party -> (party, Outcomes.acceptable sequence.spec ~party state))
    (Spec.parties sequence.spec)

let pp_origin ppf = function
  | Commit cref -> Format.fprintf ppf "commit %a" Spec.pp_ref cref
  | Forward deal -> Format.fprintf ppf "forward %s" deal
  | Notification owner -> Format.fprintf ppf "conjunction %s" (Party.name owner)

let pp_step ppf step =
  Format.fprintf ppf "%2d. %a  (%a)" step.index Action.pp step.action pp_origin step.origin

let pp ppf sequence =
  Format.fprintf ppf "@[<v>execution sequence (%d steps):@,%a@]" (message_count sequence)
    (Format.pp_print_list pp_step) sequence.steps
