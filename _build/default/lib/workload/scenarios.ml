open Exchange

let c = Party.consumer "c"
let p = Party.producer "p"
let b = Party.broker "b"
let t = Party.trusted "t"
let t1 = Party.trusted "t1"
let t2 = Party.trusted "t2"

let simple_sale =
  Spec.make_exn
    [ Spec.sale ~id:"cp" ~buyer:c ~seller:p ~via:t ~price:(Asset.dollars 10) ~good:"d" ]

let simple_sale_direct =
  Spec.make_exn ~personas:[ (t, p) ]
    [ Spec.sale ~id:"cp" ~buyer:c ~seller:p ~via:t ~price:(Asset.dollars 10) ~good:"d" ]

(* Example #1. The broker buys document d from the producer for $8 and
   resells it to the consumer for $10. Deal order [bp; cb] makes the
   deterministic reducer delete edges in the order §4.2.2 walks through
   (producer's commitment first). *)
let example1 =
  Spec.make_exn
    ~priorities:[ (b, { Spec.deal = "cb"; side = Spec.Right }) ]
    [
      Spec.sale ~id:"bp" ~buyer:b ~seller:p ~via:t2 ~price:(Asset.dollars 8) ~good:"d";
      Spec.sale ~id:"cb" ~buyer:c ~seller:b ~via:t1 ~price:(Asset.dollars 10) ~good:"d";
    ]

let example1_poor_broker =
  Spec.with_priority b { Spec.deal = "bp"; side = Spec.Left } example1

(* Example #2 parties. *)
let b1 = Party.broker "b1"
let b2 = Party.broker "b2"
let s1 = Party.producer "s1"
let s2 = Party.producer "s2"
let t3 = Party.trusted "t3"
let t4 = Party.trusted "t4"

let example2_deals =
  [
    Spec.sale ~id:"b1s1" ~buyer:b1 ~seller:s1 ~via:t2 ~price:(Asset.dollars 8) ~good:"d1";
    Spec.sale ~id:"b2s2" ~buyer:b2 ~seller:s2 ~via:t4 ~price:(Asset.dollars 16) ~good:"d2";
    Spec.sale ~id:"cb1" ~buyer:c ~seller:b1 ~via:t1 ~price:(Asset.dollars 10) ~good:"d1";
    Spec.sale ~id:"cb2" ~buyer:c ~seller:b2 ~via:t3 ~price:(Asset.dollars 20) ~good:"d2";
  ]

let example2_priorities =
  [
    (b1, { Spec.deal = "cb1"; side = Spec.Right });
    (b2, { Spec.deal = "cb2"; side = Spec.Right });
  ]

let example2 = Spec.make_exn ~priorities:example2_priorities example2_deals

let example2_source_trusts_broker =
  Spec.make_exn ~personas:[ (t2, b1) ] ~priorities:example2_priorities example2_deals

let example2_broker_trusts_source =
  Spec.make_exn ~personas:[ (t2, s1) ] ~priorities:example2_priorities example2_deals

let example2_consumer = c
let example2_sale_ref i = { Spec.deal = Printf.sprintf "cb%d" i; side = Spec.Left }

let example2_broker1_indemnifies = Spec.with_split c (example2_sale_ref 1) example2

(* Figure 7: three brokers, three sources, documents at $10/$20/$30. *)
let fig7_prices = [ Asset.dollars 10; Asset.dollars 20; Asset.dollars 30 ]
let fig7_consumer = c
let fig7_sale_ref i = { Spec.deal = Printf.sprintf "cb%d" i; side = Spec.Left }

let fig7 =
  let broker i = Party.broker (Printf.sprintf "b%d" i) in
  let source i = Party.producer (Printf.sprintf "s%d" i) in
  let trusted i = Party.trusted (Printf.sprintf "t%d" i) in
  let purchase i price =
    Spec.sale
      ~id:(Printf.sprintf "b%ds%d" i i)
      ~buyer:(broker i) ~seller:(source i)
      ~via:(trusted (2 * i))
      ~price:(price * 8 / 10) ~good:(Printf.sprintf "d%d" i)
  in
  let resale i price =
    Spec.sale
      ~id:(Printf.sprintf "cb%d" i)
      ~buyer:c ~seller:(broker i)
      ~via:(trusted ((2 * i) - 1))
      ~price ~good:(Printf.sprintf "d%d" i)
  in
  let deals =
    List.concat (List.mapi (fun idx price -> [ purchase (idx + 1) price; resale (idx + 1) price ]) fig7_prices)
  in
  let priorities =
    List.mapi
      (fun idx _ ->
        (broker (idx + 1), { Spec.deal = Printf.sprintf "cb%d" (idx + 1); side = Spec.Right }))
      fig7_prices
  in
  Spec.make_exn ~priorities deals

(* The §5 sequence, action for action. *)
let paper_example1_actions =
  [
    Action.give p t2 "d";
    Action.notify ~agent:t2 ~informed:b;
    Action.pay c t1 (Asset.dollars 10);
    Action.notify ~agent:t1 ~informed:b;
    Action.pay b t2 (Asset.dollars 8);
    Action.give t2 b "d";
    Action.pay t2 p (Asset.dollars 8);
    Action.give b t1 "d";
    Action.give t1 c "d";
    Action.pay t1 b (Asset.dollars 10);
  ]

let all =
  [
    ("simple_sale", simple_sale);
    ("simple_sale_direct", simple_sale_direct);
    ("example1", example1);
    ("example1_poor_broker", example1_poor_broker);
    ("example2", example2);
    ("example2_source_trusts_broker", example2_source_trusts_broker);
    ("example2_broker_trusts_source", example2_broker_trusts_source);
    ("example2_broker1_indemnifies", example2_broker1_indemnifies);
    ("fig7", fig7);
  ]
