(* The batch scheduler: explicit session lifecycle, deterministic
   placement and metrics, defector isolation, and retry-once under
   injected drops. *)

module Harness = Trust_sim.Harness
module Session = Trust_serve.Session
module Scheduler = Trust_serve.Scheduler
module Cache = Trust_serve.Cache
module Metrics = Trust_serve.Metrics
module Service = Trust_serve.Service
module Pool = Trust_serve.Pool
module Gen = Workload.Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_lifecycle () =
  let session = Session.make ~id:0 (Gen.chain ~brokers:1) in
  check_string "starts queued" "queued" (Session.status_label session.Session.status);
  Session.transition session Session.Synthesizing;
  Session.transition session Session.Running;
  Session.transition session Session.Settled;
  check "settled is terminal" true (Session.is_terminal session.Session.status);
  let fresh = Session.make ~id:1 (Gen.chain ~brokers:1) in
  Alcotest.check_raises "queued cannot settle"
    (Invalid_argument "Session.transition: session 1 cannot go queued -> settled") (fun () ->
      Session.transition fresh Session.Settled);
  Session.transition fresh Session.Synthesizing;
  Alcotest.check_raises "synthesizing cannot expire"
    (Invalid_argument "Session.transition: session 1 cannot go synthesizing -> expired")
    (fun () -> Session.transition fresh Session.Expired)

(* One Lockstep batch: eight identical chains, session 3 defects
   silently. The paper's safety claim says everyone else still settles
   and only the defector's session unwinds at the deadline. *)
let defector_batch () =
  let spec = Gen.chain ~brokers:2 in
  let defector =
    match Harness.defectable_principals spec with
    | p :: _ -> p
    | [] -> Alcotest.fail "chain must have defectable principals"
  in
  let sessions =
    List.init 8 (fun id ->
        let defectors = if id = 3 then [ (defector, Harness.Silent) ] else [] in
        Session.make ~id ~defectors spec)
  in
  let cache = Cache.create Cache.default_policy in
  let metrics = Metrics.create () in
  let stats = Scheduler.run ~metrics { Scheduler.default_config with Scheduler.concurrency = 4 } cache sessions in
  (sessions, cache, metrics, stats)

let test_defector_batch () =
  let sessions, cache, _, _ = defector_batch () in
  List.iter
    (fun (s : Session.t) ->
      let expected = if s.Session.id = 3 then "expired" else "settled" in
      check_string
        (Printf.sprintf "session %d" s.Session.id)
        expected
        (Session.status_label s.Session.status))
    sessions;
  (* eight admissions of one shape: 1 miss, 7 hits *)
  check_int "one miss" 1 (Cache.misses cache);
  check_int "seven hits" 7 (Cache.hits cache)

let test_defector_batch_deterministic () =
  let sessions1, _, metrics1, stats1 = defector_batch () in
  let sessions2, _, metrics2, stats2 = defector_batch () in
  check_string "metrics snapshots byte-identical" (Metrics.to_text metrics1)
    (Metrics.to_text metrics2);
  check_string "json snapshots byte-identical" (Metrics.to_json metrics1)
    (Metrics.to_json metrics2);
  check_int "same makespan" stats1.Scheduler.makespan stats2.Scheduler.makespan;
  List.iter2
    (fun (a : Session.t) (b : Session.t) ->
      check_string "same status" (Session.status_label a.Session.status)
        (Session.status_label b.Session.status);
      check_int "same placement" a.Session.started_at b.Session.started_at;
      check_int "same completion" a.Session.finished_at b.Session.finished_at)
    sessions1 sessions2

let test_retry_on_drops () =
  let spec = Gen.chain ~brokers:2 in
  let run ~drop_rate =
    let session = Session.make ~id:0 spec in
    let cache = Cache.create Cache.default_policy in
    let config =
      { Scheduler.default_config with Scheduler.concurrency = 1; drop_rate; seed = 5L }
    in
    let stats = Scheduler.run config cache [ session ] in
    (session, stats)
  in
  let session, stats = run ~drop_rate:0.5 in
  (* the faulted first attempt stalls the lockstep pipeline; the retry
     runs drop-free and settles *)
  check_int "retried once" 1 stats.Scheduler.retried;
  check_int "two engine runs" 2 session.Session.attempts;
  check_string "settled after retry" "settled" (Session.status_label session.Session.status);
  let clean, clean_stats = run ~drop_rate:0. in
  check_int "no retry without drops" 0 clean_stats.Scheduler.retried;
  check_int "one engine run" 1 clean.Session.attempts;
  check_string "settled" "settled" (Session.status_label clean.Session.status)

let test_defector_not_retried () =
  (* retry is for drop-stalled sessions; a protocol-level defection with
     fault injection off expires exactly once *)
  let spec = Gen.chain ~brokers:1 in
  let defector = List.hd (Harness.defectable_principals spec) in
  let session = Session.make ~id:0 ~defectors:[ (defector, Harness.Silent) ] spec in
  let cache = Cache.create Cache.default_policy in
  let stats = Scheduler.run Scheduler.default_config cache [ session ] in
  check_int "no retries" 0 stats.Scheduler.retried;
  check_int "single attempt" 1 session.Session.attempts;
  check_string "expired" "expired" (Session.status_label session.Session.status)

let test_bounded_concurrency () =
  let sessions () = List.init 12 (fun id -> Session.make ~id (Gen.chain ~brokers:1)) in
  let makespan lanes =
    let cache = Cache.create Cache.default_policy in
    (Scheduler.run { Scheduler.default_config with Scheduler.concurrency = lanes } cache
       (sessions ()))
      .Scheduler.makespan
  in
  let serial = makespan 1 and wide = makespan 4 in
  check "more lanes, no slower" true (wide <= serial);
  check "serial pays for every session" true (serial >= 12)

let test_pool_runs_everything () =
  let n = 200 in
  let counters = Array.make n 0 in
  Pool.run_all ~jobs:4 (fun i -> counters.(i) <- counters.(i) + 1) (List.init n Fun.id);
  Array.iteri (fun i c -> check_int (Printf.sprintf "job %d ran once" i) 1 c) counters

let test_pool_stats_and_shutdown () =
  let pool = Pool.create ~queue_capacity:4 ~jobs:2 () in
  check_int "pool size" 2 (Pool.size pool);
  let hits = Atomic.make 0 in
  for _ = 1 to 32 do
    Pool.submit pool (fun () -> ignore (Atomic.fetch_and_add hits 1))
  done;
  Pool.shutdown pool;
  check_int "every job executed" 32 (Atomic.get hits);
  let s = Pool.stats pool in
  check_int "stats count executions" 32 s.Pool.executed;
  check "peak bounded by capacity" true (s.Pool.peak_depth <= 4);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool (fun () -> ()))

let test_pool_propagates_failure () =
  let pool = Pool.create ~jobs:2 () in
  Pool.submit pool (fun () -> ());
  Pool.submit pool (fun () -> failwith "boom");
  Pool.submit pool (fun () -> ());
  Alcotest.check_raises "first job exception re-raised at shutdown" (Failure "boom") (fun () ->
      Pool.shutdown pool)

(* Strip the pool gauges (samples and their HELP lines) — the only
   metrics allowed to vary with [jobs] — before comparing snapshots
   across domain counts. *)
let contains_pool_gauge line =
  let needle = "serve_pool_" and n = String.length line in
  let k = String.length needle in
  let rec at i = i + k <= n && (String.sub line i k = needle || at (i + 1)) in
  at 0

let metrics_sans_pool m =
  Metrics.to_text m |> String.split_on_char '\n'
  |> List.filter (fun line -> not (contains_pool_gauge line))
  |> String.concat "\n"

let parallel_batch ~jobs =
  let config =
    {
      Service.default with
      Service.sessions = 80;
      seed = 23L;
      concurrency = 4;
      jobs;
      drop_rate = 0.05;
      defect_every = Some 9;
    }
  in
  Service.run config

let test_jobs_bit_identical () =
  let a = parallel_batch ~jobs:1 and b = parallel_batch ~jobs:4 in
  List.iter2
    (fun (x : Session.t) (y : Session.t) ->
      check_string "same verdict" (Session.status_label x.Session.status)
        (Session.status_label y.Session.status);
      check_int "same ticks" x.Session.ticks y.Session.ticks;
      check_int "same events" x.Session.events y.Session.events;
      check_int "same attempts" x.Session.attempts y.Session.attempts;
      check_int "same placement" x.Session.started_at y.Session.started_at;
      check_int "same completion" x.Session.finished_at y.Session.finished_at)
    a.Service.sessions b.Service.sessions;
  check_int "same makespan" a.Service.stats.Scheduler.makespan b.Service.stats.Scheduler.makespan;
  check_int "same retries" a.Service.stats.Scheduler.retried b.Service.stats.Scheduler.retried;
  check_int "same cache misses" (Cache.misses a.Service.cache) (Cache.misses b.Service.cache);
  check_int "same cache hits" (Cache.hits a.Service.cache) (Cache.hits b.Service.cache);
  check_string "metrics identical modulo pool gauges" (metrics_sans_pool a.Service.metrics)
    (metrics_sans_pool b.Service.metrics)

(* The serve_pool_* telemetry: at jobs=1 no pool exists and the
   volatile channel is empty (so `trustseq batch` prints no gauge line
   even under --debug-gauges); at jobs>1 the scheduling-dependent
   gauges appear on the volatile channel only, while the deterministic
   worker-count gauge stays in the snapshot. *)
let test_pool_gauges_quarantined () =
  let contains hay needle =
    let n = String.length hay and k = String.length needle in
    let rec at i = i + k <= n && (String.sub hay i k = needle || at (i + 1)) in
    at 0
  in
  let run jobs =
    Service.run
      { Service.default with Service.sessions = 24; seed = 5L; concurrency = 4; jobs }
  in
  let seq = run 1 and par = run 4 in
  check_string "no volatile gauges at jobs=1" "" (Metrics.volatile_text seq.Service.metrics);
  check "no pool series in the sequential snapshot" false
    (contains (Metrics.to_text seq.Service.metrics) "serve_pool_");
  let vol = Metrics.volatile_text par.Service.metrics in
  check "queue peak on the volatile channel" true (contains vol "serve_pool_queue_peak");
  check "worker waits on the volatile channel" true (contains vol "serve_pool_worker_waits");
  check "submit waits on the volatile channel" true (contains vol "serve_pool_submit_waits");
  let snap = Metrics.to_text par.Service.metrics in
  check "worker count stays in the snapshot" true (contains snap "serve_pool_workers");
  check "queue peak quarantined from the snapshot" false
    (contains snap "serve_pool_queue_peak");
  check "wait counts quarantined from the snapshot" false
    (contains snap "serve_pool_worker_waits")

let test_service_deterministic () =
  let config =
    {
      Service.default with
      Service.sessions = 60;
      seed = 11L;
      concurrency = 4;
      defect_every = Some 7;
    }
  in
  let a = Service.run config and b = Service.run config in
  check_string "service json byte-identical" (Service.json a) (Service.json b);
  let t = Service.tally a.Service.sessions in
  check_int "every session terminal" 60
    (t.Service.settled + t.Service.expired + t.Service.aborted);
  check "cache pays" true (Cache.hit_rate a.Service.cache > 0.);
  check "defectors expired" true (t.Service.expired > 0)

let () =
  Alcotest.run "serve_sched"
    [
      ("lifecycle", [ Alcotest.test_case "transitions" `Quick test_lifecycle ]);
      ( "scheduler",
        [
          Alcotest.test_case "defector isolation" `Quick test_defector_batch;
          Alcotest.test_case "deterministic batches" `Quick test_defector_batch_deterministic;
          Alcotest.test_case "retry on drops" `Quick test_retry_on_drops;
          Alcotest.test_case "defector not retried" `Quick test_defector_not_retried;
          Alcotest.test_case "bounded concurrency" `Quick test_bounded_concurrency;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs every job exactly once" `Quick test_pool_runs_everything;
          Alcotest.test_case "stats and shutdown" `Quick test_pool_stats_and_shutdown;
          Alcotest.test_case "propagates job failure" `Quick test_pool_propagates_failure;
        ] );
      ( "service",
        [
          Alcotest.test_case "deterministic outcome" `Quick test_service_deterministic;
          Alcotest.test_case "jobs 1 = jobs 4, bit for bit" `Quick test_jobs_bit_identical;
          Alcotest.test_case "pool gauges quarantined" `Quick test_pool_gauges_quarantined;
        ] );
    ]
