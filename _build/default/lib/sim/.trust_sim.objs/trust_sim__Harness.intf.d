lib/sim/harness.mli: Behavior Engine Exchange Format Party Spec Trust_core
