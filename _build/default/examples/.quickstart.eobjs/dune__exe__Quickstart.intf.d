examples/quickstart.mli:
