open Exchange

type analysis = {
  spec : Spec.t;
  outcome : Reduce.outcome;
  sequence : Execution.sequence option;
}

let analyze ?(shared = false) ?obs ?parent spec =
  let reducer =
    if shared then Reduce.run_shared ?obs ?parent else Reduce.run ?obs ?parent
  in
  let outcome = reducer (Sequencing.build ~granular:shared spec) in
  let sequence = Result.to_option (Execution.of_outcome outcome) in
  { spec; outcome; sequence }

let is_feasible ?shared spec = Reduce.feasible (analyze ?shared spec).outcome

let blocking_conjunctions analysis =
  match analysis.outcome.Reduce.verdict with
  | Reduce.Feasible -> []
  | Reduce.Stuck { remaining } ->
    let g = analysis.outcome.Reduce.graph in
    let owners =
      List.map (fun (_, jid, _) -> (Sequencing.conjunction g jid).Sequencing.owner) remaining
    in
    List.sort_uniq Party.compare owners

type rescue = { plans : Indemnity.plan list; analysis : analysis }

let splittable_owners analysis =
  (* §6: only conjunctive edges "of the second type" — a principal
     demanding a bundle — may be removed by an indemnity. Conjunctions
     carrying a red edge are broker-style (type 3) and stay whole. *)
  List.filter
    (fun owner -> Indemnity.splittable analysis.spec ~owner)
    (blocking_conjunctions analysis)

let rescue_with_indemnities ?shared spec =
  let rec loop spec plans fuel =
    let analysis = analyze ?shared spec in
    match analysis.outcome.Reduce.verdict with
    | Reduce.Feasible -> Some { plans = List.rev plans; analysis }
    | Reduce.Stuck _ when fuel = 0 -> None
    | Reduce.Stuck _ -> (
      match splittable_owners analysis with
      | [] -> None
      | owners ->
        (* Split the cheapest-to-indemnify blocking conjunction first. *)
        let plan_of owner = Indemnity.plan_greedy spec ~owner in
        let cheapest =
          List.fold_left
            (fun best owner ->
              let plan = plan_of owner in
              match best with
              | Some (_, t) when t <= plan.Indemnity.total -> best
              | _ -> Some (owner, plan.Indemnity.total))
            None owners
        in
        (match cheapest with
        | None -> None
        | Some (owner, _) ->
          let plan = plan_of owner in
          loop (Indemnity.apply plan spec) (plan :: plans) (fuel - 1)))
  in
  loop spec [] (List.length (Spec.parties spec) + 1)

let total_indemnity rescue =
  List.fold_left (fun acc p -> acc + p.Indemnity.total) 0 rescue.plans

let pp_analysis ppf analysis =
  Format.fprintf ppf "@[<v>%a" Reduce.pp_outcome analysis.outcome;
  (match analysis.sequence with
  | Some seq -> Format.fprintf ppf "@,%a" Execution.pp seq
  | None -> ());
  Format.fprintf ppf "@]"
