(* The protocol cache's contract: a cache hit is indistinguishable from
   fresh synthesis, the canonical shape hash is stable across runs, and
   distinct specs never share an encoding. *)

open Exchange
module Shape = Trust_serve.Shape
module Cache = Trust_serve.Cache
module Gen = Workload.Gen
module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let outcome_label = function `Hit -> "hit" | `Miss -> "miss" | `Bypass -> "bypass"

let test_hash_stable () =
  check_string "same spec, same hash"
    (Shape.hash_hex (Gen.chain ~brokers:3))
    (Shape.hash_hex (Gen.chain ~brokers:3));
  check_string "same spec, same encoding"
    (Shape.encode (Gen.fan ~prices:[ Asset.dollars 10; Asset.dollars 20 ]))
    (Shape.encode (Gen.fan ~prices:[ Asset.dollars 10; Asset.dollars 20 ]));
  (* Pinned: the canonical encoding is part of the cache's persistence
     contract. If this changes, every cached protocol is invalidated —
     change it deliberately, not by accident. *)
  check_string "pinned chain-1 hash" "c1dc6ceae41f53d2" (Shape.hash_hex (Gen.chain ~brokers:1))

let test_hash_collisions () =
  let rng = Prng.create 99L in
  let specs =
    List.init 16 (fun n -> Gen.chain ~brokers:n)
    @ List.init 8 (fun k -> Gen.fan ~prices:(List.init (k + 1) (fun i -> Asset.dollars (10 * (i + 1)))))
    @ List.init 8 (fun k -> Gen.bundle ~docs:(k + 1))
  in
  let random = Gen.random_transactions rng Gen.default_mix 100 in
  let distinct_encodings = Hashtbl.create 64 and distinct_hashes = Hashtbl.create 64 in
  List.iter
    (fun spec ->
      Hashtbl.replace distinct_encodings (Shape.encode spec) ();
      Hashtbl.replace distinct_hashes (Shape.hash spec) ())
    (specs @ random);
  (* the fixed generators are pairwise structurally distinct *)
  let fixed_encodings = Hashtbl.create 64 in
  List.iter (fun spec -> Hashtbl.replace fixed_encodings (Shape.encode spec) ()) specs;
  check_int "fixed generators never collide" (List.length specs) (Hashtbl.length fixed_encodings);
  (* and hashing never merges distinct encodings in this population *)
  check_int "hash is collision-free here" (Hashtbl.length distinct_encodings)
    (Hashtbl.length distinct_hashes)

let test_hit_after_miss () =
  let cache = Cache.create Cache.default_policy in
  let spec = Gen.chain ~brokers:2 in
  let _, first = Cache.synthesize cache spec in
  let _, second = Cache.synthesize cache spec in
  check_string "first is a miss" "miss" (outcome_label first);
  check_string "second is a hit" "hit" (outcome_label second);
  check_int "one resident entry" 1 (Cache.size cache);
  check "hit rate 1/2" true (Cache.hit_rate cache = 0.5)

let test_hit_equals_fresh () =
  (* verify-mode re-synthesizes on every hit and raises on divergence;
     exercise it across the three workload families, including a fan
     that needs the indemnity rescue. *)
  let cache = Cache.create { Cache.default_policy with Cache.verify = true } in
  let specs =
    [
      Gen.chain ~brokers:1;
      Gen.chain ~brokers:3;
      Gen.bundle ~docs:3;
      Gen.fan ~prices:[ Asset.dollars 10; Asset.dollars 20; Asset.dollars 30 ];
    ]
  in
  List.iter
    (fun spec ->
      (match Cache.synthesize cache spec with
      | Ok _, `Miss -> ()
      | Ok _, o -> Alcotest.failf "expected miss, got %s" (outcome_label o)
      | Error e, _ -> Alcotest.failf "synthesis failed: %s" e);
      match Cache.synthesize cache spec with
      | Ok entry, `Hit -> (
        match Cache.fresh (Cache.policy cache) spec with
        | Ok fresh -> check "hit equals fresh" true (Cache.entry_equal entry fresh)
        | Error e -> Alcotest.failf "fresh synthesis failed: %s" e)
      | _, o -> Alcotest.failf "expected verified hit, got %s" (outcome_label o))
    specs

let test_rescued_fan_carries_plan () =
  let cache = Cache.create Cache.default_policy in
  let spec = Gen.fan ~prices:[ Asset.dollars 10; Asset.dollars 20; Asset.dollars 30 ] in
  match Cache.synthesize cache spec with
  | Ok entry, `Miss -> (
    match entry.Cache.plan with
    | Some plan ->
      check_int "fig7 greedy rescue total" (Asset.dollars 70) plan.Trust_core.Indemnity.total
    | None -> Alcotest.fail "rescued fan must carry its indemnity plan")
  | _ -> Alcotest.fail "expected a fresh rescued synthesis"

let test_negative_caching () =
  let cache = Cache.create { Cache.default_policy with Cache.rescue = false } in
  let spec = Gen.fan ~prices:[ Asset.dollars 10; Asset.dollars 20 ] in
  (match Cache.synthesize cache spec with
  | Error _, `Miss -> ()
  | _ -> Alcotest.fail "bare fan must fail synthesis without rescue");
  match Cache.synthesize cache spec with
  | Error _, `Hit -> ()
  | _ -> Alcotest.fail "the infeasible verdict must be cached too"

let test_override_bypasses () =
  let spec =
    Spec.with_override (Party.consumer "c") State.always_acceptable (Gen.chain ~brokers:1)
  in
  check "override specs are not cacheable" false (Shape.cacheable spec);
  let cache = Cache.create Cache.default_policy in
  let _, first = Cache.synthesize cache spec in
  let _, second = Cache.synthesize cache spec in
  check_string "bypass" "bypass" (outcome_label first);
  check_string "bypass again" "bypass" (outcome_label second);
  check_int "nothing resident" 0 (Cache.size cache)

let test_eviction () =
  (* one shard = the unsharded FIFO semantics, pinned exactly *)
  let cache = Cache.create ~capacity:2 ~shards:1 Cache.default_policy in
  let s1 = Gen.chain ~brokers:1 and s2 = Gen.chain ~brokers:2 and s3 = Gen.chain ~brokers:3 in
  ignore (Cache.synthesize cache s1);
  ignore (Cache.synthesize cache s2);
  ignore (Cache.synthesize cache s3);
  check_int "capacity respected" 2 (Cache.size cache);
  check_int "one eviction" 1 (Cache.evictions cache);
  (* s1 was the oldest insertion, so it is the one that went *)
  let _, outcome = Cache.synthesize cache s1 in
  check_string "evicted entry misses" "miss" (outcome_label outcome)

let test_aging_sweeps_idle () =
  let cache = Cache.create ~shards:1 Cache.default_policy in
  let s1 = Gen.chain ~brokers:1 and s2 = Gen.chain ~brokers:2 in
  ignore (Cache.synthesize cache s1);
  ignore (Cache.synthesize cache s2);
  check_int "epoch starts at zero" 0 (Cache.epoch cache);
  (* both entries last used in epoch 0; one tick with max_idle 1 sweeps them *)
  let swept = Cache.advance_epoch ~max_idle:1 cache in
  check_int "both swept" 2 swept;
  check_int "aged_out counts the sweep" 2 (Cache.aged_out cache);
  check_int "nothing resident" 0 (Cache.size cache);
  check_int "epoch advanced" 1 (Cache.epoch cache);
  let _, outcome = Cache.synthesize cache s1 in
  check_string "swept entry misses" "miss" (outcome_label outcome)

let test_aging_touch_survives () =
  let cache = Cache.create ~shards:1 Cache.default_policy in
  let hot = Gen.chain ~brokers:1 and cold = Gen.chain ~brokers:2 in
  ignore (Cache.synthesize cache hot);
  ignore (Cache.synthesize cache cold);
  (* first tick with the default idle window: nothing is old enough *)
  check_int "young entries survive" 0 (Cache.advance_epoch ~max_idle:2 cache);
  check_int "both resident" 2 (Cache.size cache);
  (* touch only the hot entry, then tick again: the cold one is now
     two epochs idle and goes; the hot one was refreshed *)
  (match Cache.synthesize cache hot with
  | _, `Hit -> ()
  | _ -> Alcotest.fail "expected the hot entry to hit");
  check_int "only the cold entry swept" 1 (Cache.advance_epoch ~max_idle:2 cache);
  check_int "hot entry resident" 1 (Cache.size cache);
  (match Cache.synthesize cache hot with
  | _, `Hit -> ()
  | _ -> Alcotest.fail "the survivor must still hit");
  let _, outcome = Cache.synthesize cache cold in
  check_string "the swept entry misses" "miss" (outcome_label outcome)

let test_aging_and_eviction_compose () =
  (* a sweep compacts the FIFO order queue; refills after it must keep
     the oldest-live-insertion eviction order, not trip over residue *)
  let cache = Cache.create ~capacity:2 ~shards:1 Cache.default_policy in
  let s1 = Gen.chain ~brokers:1 and s2 = Gen.chain ~brokers:2 and s3 = Gen.chain ~brokers:3 in
  ignore (Cache.synthesize cache s1);
  ignore (Cache.advance_epoch ~max_idle:1 cache);
  check_int "aged down to empty" 0 (Cache.size cache);
  ignore (Cache.synthesize cache s2);
  ignore (Cache.synthesize cache s3);
  check_int "refilled to capacity" 2 (Cache.size cache);
  ignore (Cache.synthesize cache s1);
  check_int "capacity still respected" 2 (Cache.size cache);
  check_int "one true eviction" 1 (Cache.evictions cache);
  (* s2 was the oldest live insertion; it is the one evicted *)
  let _, outcome = Cache.synthesize cache s3 in
  check_string "newer entry survived the eviction" "hit" (outcome_label outcome)

let test_aging_rejects_bad_window () =
  let cache = Cache.create Cache.default_policy in
  match Cache.advance_epoch ~max_idle:0 cache with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_idle 0 must be rejected"

let test_sharded_counts_aggregate () =
  (* Distinct shapes land on (mostly) distinct shards; the aggregate
     hit/miss/size counters must still read like one cache. *)
  let cache = Cache.create Cache.default_policy in
  check "default shard fan-out" true (Cache.shard_count cache > 1);
  let specs = List.init 12 (fun n -> Gen.chain ~brokers:n) in
  List.iter (fun s -> ignore (Cache.synthesize cache s)) specs;
  List.iter (fun s -> ignore (Cache.synthesize cache s)) specs;
  check_int "one miss per distinct shape" 12 (Cache.misses cache);
  check_int "one hit per repeat" 12 (Cache.hits cache);
  check_int "all resident" 12 (Cache.size cache);
  check "hit rate 1/2" true (Cache.hit_rate cache = 0.5)

let test_sharded_concurrent_same_tallies () =
  (* Hammer one cache from several domains with the same interleaved
     shape stream: per shape, exactly one lookup is the miss and the
     rest are hits, whatever the arrival order — so the aggregate
     tallies equal the sequential ones. *)
  let specs = List.init 6 (fun n -> Gen.chain ~brokers:n) in
  let cache = Cache.create Cache.default_policy in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.iter (fun s -> ignore (Cache.synthesize cache s)) specs))
  in
  Array.iter Domain.join domains;
  check_int "one miss per distinct shape" 6 (Cache.misses cache);
  check_int "hits for every other lookup" (4 * 6 - 6) (Cache.hits cache);
  check_int "six resident" 6 (Cache.size cache)

let prop_cached_equals_fresh =
  QCheck2.Test.make ~name:"cached synthesis equals fresh synthesis" ~count:60 QCheck2.Gen.int
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let specs = Gen.random_transactions rng Gen.default_mix 6 in
      let cache = Cache.create { Cache.default_policy with Cache.verify = true } in
      List.for_all
        (fun spec ->
          ignore (Cache.synthesize cache spec);
          (* the hit re-synthesizes under verify and raises on divergence *)
          match Cache.synthesize cache spec with
          | verdict, `Hit -> (
            match (verdict, Cache.fresh (Cache.policy cache) spec) with
            | Ok cached, Ok fresh -> Cache.entry_equal cached fresh
            | Error a, Error b -> String.equal a b
            | _ -> false)
          | _, (`Miss | `Bypass) -> false)
        specs)

let prop_hash_deterministic =
  QCheck2.Test.make ~name:"shape hash is a pure function of the spec" ~count:100 QCheck2.Gen.int
    (fun seed ->
      let spec_of () =
        Gen.random_transaction (Prng.create (Int64.of_int seed)) Gen.default_mix
      in
      Shape.hash (spec_of ()) = Shape.hash (spec_of ())
      && String.equal (Shape.encode (spec_of ())) (Shape.encode (spec_of ())))

let () =
  Alcotest.run "serve_cache"
    [
      ( "shape",
        [
          Alcotest.test_case "hash stability" `Quick test_hash_stable;
          Alcotest.test_case "collision sanity" `Quick test_hash_collisions;
          Alcotest.test_case "override bypass" `Quick test_override_bypasses;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit after miss" `Quick test_hit_after_miss;
          Alcotest.test_case "hit equals fresh" `Quick test_hit_equals_fresh;
          Alcotest.test_case "rescued fan carries plan" `Quick test_rescued_fan_carries_plan;
          Alcotest.test_case "negative caching" `Quick test_negative_caching;
          Alcotest.test_case "eviction" `Quick test_eviction;
          Alcotest.test_case "aging sweeps idle entries" `Quick test_aging_sweeps_idle;
          Alcotest.test_case "touched entries survive aging" `Quick test_aging_touch_survives;
          Alcotest.test_case "aging composes with eviction" `Quick test_aging_and_eviction_compose;
          Alcotest.test_case "aging rejects a zero window" `Quick test_aging_rejects_bad_window;
          Alcotest.test_case "sharded counters aggregate" `Quick test_sharded_counts_aggregate;
          Alcotest.test_case "concurrent lookups, sequential tallies" `Quick
            test_sharded_concurrent_same_tallies;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cached_equals_fresh;
          QCheck_alcotest.to_alcotest prop_hash_deterministic;
        ] );
    ]
