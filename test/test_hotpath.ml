(* The compiled hot path against its interpreted oracle.

   [Harness.behaviors_for] + [Engine.run] + [Exposure.of_result] +
   [Audit.audit] remain the reference semantics; [Trust_core.Compile] +
   [Trust_sim.Hotpath] must replicate them exactly. These property
   tests draw random marketplace transactions and compare the two paths
   — delivery logs, final holdings, stalls, audit verdicts, per-party
   exposure peaks and risk ticks — under honest runs, fault injection,
   defection batteries and tight deadlines, in both synthesis modes.

   The allocation test pins the other half of the contract: a cache-hit
   session on the serve path stays within a fixed minor-heap budget. *)

open Exchange
module Gen = Workload.Gen
module Prng = Workload.Prng
module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Exposure = Trust_sim.Exposure
module Audit = Trust_sim.Audit
module Hotpath = Trust_sim.Hotpath
module Cache = Trust_serve.Cache
module Scheduler = Trust_serve.Scheduler
module Session = Trust_serve.Session

let spec_count = 200

let mix =
  {
    Gen.sale_weight = 3;
    chain_weight = 3;
    max_chain = 3;
    fan_weight = 2;
    max_fan = 3;
    bundle_weight = 2;
    max_bundle = 3;
    trust_density = 0.3;
  }

let policies =
  [
    { Cache.default_policy with Cache.mode = Harness.Lockstep; shared = false };
    { Cache.default_policy with Cache.mode = Harness.Distributed; shared = true };
  ]

(* A deterministic drop schedule exercising losses and the retry of
   parked transfers. *)
let drop_every_third seq = seq mod 3 = 1

let engine_config ?(deadline = 1000) ?drops () =
  {
    Engine.default_config with
    Engine.deadline;
    drop = Option.map (fun f -> fun seq (_ : Action.t) -> f seq) drops;
  }

let hot_config ?(deadline = 1000) ?drops () =
  { Hotpath.default_config with Hotpath.deadline; drop = drops }

(* The defection battery for a split spec: honest, a silent first
   principal, and a partial (keep 1) principal paired with a silent
   one when the spec is wide enough. *)
let batteries spec =
  let principals = Spec.principals spec in
  [ [] ]
  @ (match principals with p :: _ -> [ [ (p, Harness.Silent) ] ] | [] -> [])
  @
  match principals with
  | a :: b :: _ -> [ [ (a, Harness.Partial 1); (b, Harness.Silent) ] ]
  | [ a ] -> [ [ (a, Harness.Partial 0) ] ]
  | [] -> []

let run_interpreted (entry : Cache.entry) policy ~config ~defectors =
  let behaviors =
    Harness.behaviors_for ~shared:policy.Cache.shared ?plan:entry.Cache.plan ~defectors
      ~mode:policy.Cache.mode entry.Cache.split_spec entry.Cache.protocol
  in
  let cast =
    {
      Harness.spec = entry.Cache.split_spec;
      plan = entry.Cache.plan;
      mode = policy.Cache.mode;
      protocol = entry.Cache.protocol;
      behaviors;
    }
  in
  Harness.run_cast ~config cast

let equal_log =
  List.equal (fun (a : Engine.delivery) (b : Engine.delivery) ->
      a.Engine.at = b.Engine.at && Action.equal a.Engine.action b.Engine.action)

let equal_holdings =
  List.equal (fun (p1, b1) (p2, b2) -> Party.equal p1 p2 && Asset.Bag.equal b1 b2)

let equal_stalled =
  List.equal (fun (p1, a1) (p2, a2) -> Party.equal p1 p2 && Action.equal a1 a2)

let check_result ~ctx (interp : Engine.result) (compiled : Engine.result) =
  Alcotest.(check bool) (ctx ^ ": delivery log") true (equal_log interp.Engine.log compiled.Engine.log);
  Alcotest.(check bool) (ctx ^ ": final state") true (State.equal interp.Engine.state compiled.Engine.state);
  Alcotest.(check bool)
    (ctx ^ ": holdings") true
    (equal_holdings interp.Engine.holdings compiled.Engine.holdings);
  Alcotest.(check bool)
    (ctx ^ ": stalled") true
    (equal_stalled interp.Engine.stalled compiled.Engine.stalled);
  Alcotest.(check int) (ctx ^ ": events") interp.Engine.events compiled.Engine.events

let check_summary ~ctx (entry : Cache.entry) ~defectors (interp : Engine.result)
    (summary : Hotpath.summary) =
  let duration =
    List.fold_left (fun acc (d : Engine.delivery) -> max acc d.Engine.at) 0 interp.Engine.log
  in
  Alcotest.(check int) (ctx ^ ": duration") duration summary.Hotpath.duration;
  Alcotest.(check int) (ctx ^ ": events") interp.Engine.events summary.Hotpath.events;
  Alcotest.(check int)
    (ctx ^ ": deliveries") (List.length interp.Engine.log) summary.Hotpath.deliveries;
  Alcotest.(check int)
    (ctx ^ ": stalled") (List.length interp.Engine.stalled) summary.Hotpath.stalled;
  let report =
    Audit.audit entry.Cache.split_spec ?plan:entry.Cache.plan
      ~defectors:(List.map fst defectors) interp
  in
  Alcotest.(check bool) (ctx ^ ": all_preferred") report.Audit.all_preferred
    summary.Hotpath.all_preferred;
  Alcotest.(check (list bool))
    (ctx ^ ": per-party verdicts")
    (List.map (fun v -> v.Audit.preferred) report.Audit.verdicts)
    (Array.to_list summary.Hotpath.preferred);
  let exposure =
    Exposure.of_result ?plan:entry.Cache.plan ~defectors:(List.map fst defectors)
      entry.Cache.split_spec interp
  in
  Alcotest.(check (list int))
    (ctx ^ ": per-party peak risk")
    (List.map (fun p -> p.Exposure.peak_at_risk) exposure.Exposure.parties)
    (Array.to_list summary.Hotpath.peak_risk);
  Alcotest.(check (list int))
    (ctx ^ ": per-party risk ticks")
    (List.map (fun p -> p.Exposure.risk_ticks) exposure.Exposure.parties)
    (Array.to_list summary.Hotpath.risk_ticks);
  Alcotest.(check int)
    (ctx ^ ": violations")
    (List.length exposure.Exposure.violations)
    summary.Hotpath.violations;
  Alcotest.(check int)
    (ctx ^ ": total peak")
    (Exposure.total_peak_at_risk exposure)
    (Hotpath.total_peak_risk summary);
  Alcotest.(check int)
    (ctx ^ ": total risk ticks")
    (Exposure.total_risk_ticks exposure)
    (Hotpath.total_risk_ticks summary)

let check_spec ~ctx policy spec =
  match Cache.fresh policy spec with
  | Error _ -> () (* infeasible and unrescued: nothing to execute *)
  | Ok entry ->
    let plan =
      match entry.Cache.compiled with
      | Some plan -> plan
      | None -> Alcotest.failf "%s: cacheable spec missing a compiled plan" ctx
    in
    let variants =
      [ ("honest", None, 1000); ("drops", Some drop_every_third, 1000); ("tight", None, 7) ]
    in
    List.iter
      (fun defectors ->
        List.iter
          (fun (label, drops, deadline) ->
            let ctx =
              Printf.sprintf "%s %s defectors=%d" ctx label (List.length defectors)
            in
            let interp =
              run_interpreted entry policy ~config:(engine_config ~deadline ?drops ())
                ~defectors
            in
            let compiled =
              Hotpath.to_result ~config:(hot_config ~deadline ?drops ()) ~defectors plan
            in
            check_result ~ctx interp compiled;
            let summary =
              Hotpath.exec ~config:(hot_config ~deadline ?drops ()) ~defectors plan
            in
            check_summary ~ctx entry ~defectors interp summary)
          variants)
      (batteries entry.Cache.split_spec)

let test_random_specs () =
  let prng = Prng.create 0xC0FFEE_L in
  for i = 1 to spec_count do
    let spec = Gen.random_transaction prng mix in
    List.iteri
      (fun j policy -> check_spec ~ctx:(Printf.sprintf "spec %d policy %d" i j) policy spec)
      policies
  done

let test_worked_examples () =
  let specs =
    [
      Workload.Scenarios.simple_sale;
      Workload.Scenarios.example1;
      Workload.Scenarios.example2_source_trusts_broker;
      Gen.chain ~brokers:3;
      Gen.bundle ~docs:3;
      Gen.fan ~prices:[ Asset.dollars 10; Asset.dollars 20; Asset.dollars 30 ];
    ]
  in
  List.iteri
    (fun i spec ->
      List.iteri
        (fun j policy ->
          check_spec ~ctx:(Printf.sprintf "example %d policy %d" i j) policy spec)
        policies)
    specs

(* Allocation regression: a cache-hit session on the serve path must
   stay within a fixed minor-heap budget. The interpreted path spent
   ~8.5k minor words/session rebuilding behaviours, bags and ledgers;
   the compiled path's budget is 10x lower. A regression that
   reintroduces per-session protocol allocation fails this test. *)
let allocation_budget_words = 853.

let test_allocation_budget () =
  let cache = Cache.create Cache.default_policy in
  let cfg = { Scheduler.default_config with Scheduler.drop_rate = 0. } in
  let spec = Gen.chain ~brokers:2 in
  let run id = Scheduler.process_one cfg cache (Session.make ~id spec) in
  (* warm: the miss synthesizes and compiles; later sessions hit *)
  for id = 0 to 2 do
    run id
  done;
  let rounds = 200 in
  let before = Gc.minor_words () in
  for id = 3 to 2 + rounds do
    run id
  done;
  let per_session = (Gc.minor_words () -. before) /. float_of_int rounds in
  if per_session > allocation_budget_words then
    Alcotest.failf "cache-hit session allocated %.0f minor words (budget %.0f)" per_session
      allocation_budget_words

let () =
  Alcotest.run "hotpath"
    [
      ( "parity",
        [
          Alcotest.test_case "worked examples" `Quick test_worked_examples;
          Alcotest.test_case "random specs" `Quick test_random_specs;
        ] );
      ( "allocation",
        [ Alcotest.test_case "cache-hit budget" `Quick test_allocation_budget ] );
    ]
