(* Deterministic per-session head sampling: the keep/skip verdict is a
   pure function of (seed, session id, rate), computed from the same
   SplitMix64 finalizer the serve layer uses for fault injection (the
   helpers are duplicated here rather than imported — trust_obs sits
   below trust_serve in the dependency order). Because the hash does
   not depend on the rate, thresholding is monotone: raising the rate
   only ever adds sessions, so the set sampled at rate r is a subset of
   the set at any r' >= r, and both are identical at any --jobs and
   across runs. *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

(* A stream key distinct from the scheduler's drop-decision constants,
   so sampling verdicts and fault schedules drawn from one batch seed
   stay statistically independent. *)
let stream = 0xD6E8FEB86659FD93L

let hash ~seed id =
  mix64 (Int64.add (Int64.logxor seed stream) (Int64.mul (Int64.of_int (id + 1)) 0x9E3779B97F4A7C15L))

let decision ~seed ~rate id =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else uniform (hash ~seed id) < rate
