(* The §8 cost model: 2 messages under direct trust, 4 (plus a
   notification) through an intermediary, universal-intermediary
   comparison. *)

open Exchange
module Cost = Trust_core.Cost
module Execution = Trust_core.Execution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sequence_of spec =
  match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
  | Some seq -> seq
  | None -> Alcotest.fail "expected feasible"

let test_mediated_four_transfers () =
  let tally = Cost.tally_sequence (sequence_of Workload.Scenarios.simple_sale) in
  check_int "four transfers" 4 tally.Cost.transfers;
  check_int "one notification" 1 tally.Cost.notifications;
  check_int "no compensations" 0 tally.Cost.compensations;
  check_int "total" 5 tally.Cost.total

let test_direct_two_transfers () =
  let tally = Cost.tally_sequence (sequence_of Workload.Scenarios.simple_sale_direct) in
  check_int "two transfers" 2 tally.Cost.transfers;
  check_int "total" 2 tally.Cost.total

let test_tally_actions () =
  let c = Party.consumer "c" and p = Party.producer "p" and t = Party.trusted "t" in
  let pay = Action.pay c t 100 in
  let tally =
    Cost.tally_actions [ pay; Action.undo pay; Action.notify ~agent:t ~informed:p ]
  in
  check_int "transfer" 1 tally.Cost.transfers;
  check_int "compensation" 1 tally.Cost.compensations;
  check_int "notification" 1 tally.Cost.notifications;
  check_int "total" 3 tally.Cost.total

let test_with_all_direct_trust () =
  let direct = Cost.with_all_direct_trust Workload.Scenarios.example1 in
  check_int "all roles persona'd" 2 (Party.Map.cardinal direct.Spec.personas);
  (* the direct chain costs 4 transfers instead of 8 *)
  let tally = Cost.tally_sequence (sequence_of direct) in
  check_int "halved transfers" 4 tally.Cost.transfers

let test_universal_transform () =
  let universal = Cost.with_universal_intermediary Workload.Scenarios.example2 in
  Alcotest.(check (list string)) "single intermediary" [ "t*" ]
    (List.map Party.name (Spec.trusted_agents universal));
  check "claimed always feasible" true (Cost.universal_feasible universal)

let test_universal_tally () =
  let tally = Cost.universal_tally Workload.Scenarios.example2 in
  (* 8 commitments: one message in, one out each *)
  check_int "sixteen messages" 16 tally.Cost.total;
  check_int "no notifications" 0 tally.Cost.notifications

let test_direct_trust_enables_example2 () =
  (* §8: full mutual trust also makes example 2 feasible (cheaper than
     indemnities). *)
  let direct = Cost.with_all_direct_trust Workload.Scenarios.example2 in
  check "feasible" true (Trust_core.Feasibility.is_feasible direct)

let prop_direct_cheaper =
  QCheck2.Test.make
    ~name:"direct trust never costs more transfers than mediated execution" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match (Trust_core.Feasibility.analyze spec).Trust_core.Feasibility.sequence with
      | None -> true
      | Some seq -> (
        let mediated = Cost.tally_sequence seq in
        let direct = Cost.with_all_direct_trust spec in
        match (Trust_core.Feasibility.analyze direct).Trust_core.Feasibility.sequence with
        | None -> false (* direct trust only removes blockers *)
        | Some dseq ->
          let dtally = Cost.tally_sequence dseq in
          dtally.Cost.transfers <= mediated.Cost.transfers))

let prop_direct_exactly_two_per_deal =
  QCheck2.Test.make ~name:"fully direct chains cost two transfers per deal" ~count:30
    QCheck2.Gen.(int_range 0 10)
    (fun n ->
      let seq = sequence_of (Workload.Gen.chain_direct ~brokers:n) in
      (Cost.tally_sequence seq).Cost.transfers = 2 * (n + 1))

let () =
  Alcotest.run "cost"
    [
      ( "paper section 8",
        [
          Alcotest.test_case "mediated sale: 4 transfers + notify" `Quick
            test_mediated_four_transfers;
          Alcotest.test_case "direct sale: 2 transfers" `Quick test_direct_two_transfers;
          Alcotest.test_case "tally kinds" `Quick test_tally_actions;
          Alcotest.test_case "all-direct transform" `Quick test_with_all_direct_trust;
          Alcotest.test_case "universal transform" `Quick test_universal_transform;
          Alcotest.test_case "universal tally" `Quick test_universal_tally;
          Alcotest.test_case "direct trust enables example 2" `Quick
            test_direct_trust_enables_example2;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_direct_cheaper; prop_direct_exactly_two_per_deal ] );
    ]
