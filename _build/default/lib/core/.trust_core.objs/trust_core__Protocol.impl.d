lib/core/protocol.ml: Action Exchange Execution Format List Party Spec
