type place = int
type transition = int

type tr = { t_name : string; t_pre : (place * int) list; t_post : (place * int) list }

(* Growable-array storage: the analyses fire transitions in tight BFS
   loops, so lookups must be O(1). *)
type t = {
  mutable place_names : string array;
  mutable n_places : int;
  mutable transitions : tr array;
  mutable n_transitions : int;
}

let dummy_tr = { t_name = ""; t_pre = []; t_post = [] }

let create () =
  { place_names = Array.make 8 ""; n_places = 0; transitions = Array.make 8 dummy_tr; n_transitions = 0 }

let grow arr size fill =
  if size < Array.length arr then arr
  else begin
    let arr' = Array.make (2 * Array.length arr) fill in
    Array.blit arr 0 arr' 0 size;
    arr'
  end

let add_place ?name t =
  let id = t.n_places in
  let name = match name with Some n -> n | None -> Printf.sprintf "p%d" id in
  t.place_names <- grow t.place_names id "";
  t.place_names.(id) <- name;
  t.n_places <- id + 1;
  id

let check_arcs t arcs =
  List.iter
    (fun (p, w) ->
      if w <= 0 then invalid_arg "Net.add_transition: non-positive weight";
      if p < 0 || p >= t.n_places then invalid_arg "Net.add_transition: unknown place")
    arcs

let add_transition ?name t ~pre ~post =
  check_arcs t pre;
  check_arcs t post;
  let id = t.n_transitions in
  let t_name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
  t.transitions <- grow t.transitions id dummy_tr;
  t.transitions.(id) <- { t_name; t_pre = pre; t_post = post };
  t.n_transitions <- id + 1;
  id

let place_count t = t.n_places
let transition_count t = t.n_transitions

let check_place t p =
  if p < 0 || p >= t.n_places then invalid_arg "Net: unknown place"

let check_transition t id =
  if id < 0 || id >= t.n_transitions then invalid_arg "Net: unknown transition"

let place_name t p =
  check_place t p;
  t.place_names.(p)

let transition_name t id =
  check_transition t id;
  t.transitions.(id).t_name

let pre t id =
  check_transition t id;
  t.transitions.(id).t_pre

let post t id =
  check_transition t id;
  t.transitions.(id).t_post

module Marking = struct
  type net = t
  type t = int array

  let initial net tokens =
    let m = Array.make net.n_places 0 in
    List.iter
      (fun (p, n) ->
        if p < 0 || p >= net.n_places then invalid_arg "Marking.initial: unknown place";
        m.(p) <- m.(p) + n)
      tokens;
    m

  let tokens m p = m.(p)

  let set m p n =
    let m' = Array.copy m in
    m'.(p) <- n;
    m'

  let equal (a : t) b = a = b
  let compare = Stdlib.compare
  let hash (m : t) = Hashtbl.hash m
  let covers m target = Array.for_all2 (fun have need -> have >= need) m target
  let to_array m = Array.copy m
  let of_array m = Array.copy m

  let pp net ppf m =
    Format.fprintf ppf "@[<h>{";
    Array.iteri
      (fun p n -> if n > 0 then Format.fprintf ppf " %s:%d" (place_name net p) n)
      m;
    Format.fprintf ppf " }@]"
end

let enabled t (m : Marking.t) id =
  check_transition t id;
  List.for_all (fun (p, w) -> m.(p) >= w) t.transitions.(id).t_pre

let fire t m id =
  if not (enabled t m id) then invalid_arg "Net.fire: transition not enabled";
  let tr = t.transitions.(id) in
  let m' = Array.copy m in
  List.iter (fun (p, w) -> m'.(p) <- m'.(p) - w) tr.t_pre;
  List.iter (fun (p, w) -> m'.(p) <- m'.(p) + w) tr.t_post;
  m'

let enabled_transitions t m =
  let rec scan id acc =
    if id < 0 then acc else scan (id - 1) (if enabled t m id then id :: acc else acc)
  in
  scan (t.n_transitions - 1) []

let pp_arcs t ppf arcs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "+")
    (fun ppf (p, w) -> Format.fprintf ppf "%d'%s" w (place_name t p))
    ppf arcs

let pp ppf t =
  Format.fprintf ppf "@[<v>petri net: %d places, %d transitions" t.n_places t.n_transitions;
  for id = 0 to t.n_transitions - 1 do
    let tr = t.transitions.(id) in
    Format.fprintf ppf "@,  %s: %a -> %a" tr.t_name (pp_arcs t) tr.t_pre (pp_arcs t) tr.t_post
  done;
  Format.fprintf ppf "@]"
