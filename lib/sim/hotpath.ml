(* Allocation-free execution of compiled plans.

   This is the serve-path twin of [Engine.run] + [Exposure.of_result] +
   [Audit.audit]: it interprets a [Trust_core.Compile.t] instruction
   plan against per-domain scratch arrays (grown once, reused across
   runs) instead of rebuilding behaviours, bags and ledgers per
   session. Every semantic decision — heap tie-breaks, script firing,
   escrow/persona automata, parking and retry, custody provenance,
   sampling — replicates the interpreted modules line for line;
   [Harness.behaviors_for] remains the oracle and the replication is
   property-tested in test_hotpath.

   The only per-run allocations are the exposure provenance lists
   (small, proportional to in-flight custody) and the returned summary;
   everything else lives in [scratch] under [Domain.DLS]. *)

open Exchange
module C = Trust_core.Compile

type config = {
  latency : int;
  deadline : int;
  max_events : int;
  drop : (int -> bool) option;  (** keyed by performed-action sequence number *)
}

let default_config = { latency = 1; deadline = 1_000; max_events = 100_000; drop = None }

type summary = {
  duration : int;  (** latest delivery tick, 0 when nothing was delivered *)
  events : int;
  deliveries : int;
  stalled : int;
  all_preferred : bool;
  preferred : bool array;  (** per judged party, audit order *)
  peak_risk : int array;  (** per principal slot *)
  risk_ticks : int array;
  violations : int;
}

(* custody provenance entry: contributor party index (-1 unattributed),
   remaining value, classification 0 Protected / 1 Exposed / 2 Deposit *)
type xentry = { x_contrib : int; mutable x_value : int; x_cls : int }

type scratch = {
  (* event heap: (time, push seq) min-heap over encoded payloads *)
  mutable h_time : int array;
  mutable h_seq : int array;
  mutable h_pay : int array;
  mutable h_len : int;
  mutable h_next : int;
  mutable pop_now : int;  (* time of the last popped event *)
  (* holdings, keyed by name index *)
  mutable balance : int array;
  mutable doc_count : int array;  (* n_names * n_docs, row-major *)
  (* delivered-action set and chronological log *)
  mutable seen : Bytes.t;
  mutable log_at : int array;
  mutable log_act : int array;
  mutable log_len : int;
  (* behaviour state *)
  mutable observed : Bytes.t;  (* n_roles * n_actions *)
  mutable pos : int array;  (* script cursor per role *)
  mutable emitted : int array;  (* partial-defector spend per role *)
  mutable flags : Bytes.t;  (* n_roles * flag_stride automaton bits *)
  mutable flag_stride : int;
  mutable defect_kind : Bytes.t;  (* 0 honest, 1 silent, 2 partial *)
  mutable defect_keep : int array;
  (* reaction buffer and parked actions *)
  mutable buf : int array;
  mutable buf_len : int;
  mutable pend_party : int array;
  mutable pend_act : int array;
  mutable pend_len : int;
  mutable rt_act : int array;
  mutable performed : int;
  mutable events : int;
  (* exposure fold state *)
  mutable dep_left : int array;  (* per action id: unmatched deposit occurrences *)
  mutable xdocs : (int * xentry) list array;  (* per name, FIFO oldest first *)
  mutable xmoney : xentry list array;
  mutable released : int array;  (* per principal slot *)
  mutable received : int array;
  mutable escrowed : int array;
  mutable deposits : int array;
  mutable goods : int array;
  mutable peak_risk : int array;
  mutable risk_ticks : int array;
  mutable prev_at : int array;
  mutable prev_risk : int array;
  mutable s_risk : int array;  (* last recorded sample *)
  mutable s_escrow : int array;
  mutable s_dep : int array;
  mutable s_goods : int array;
  mutable has_sample : Bytes.t;
  mutable flagged : Bytes.t;
  mutable honest : Bytes.t;
  mutable violations : int;
  (* audit scratch: trusted-conduit net flows *)
  mutable g_docs : int array;
  mutable l_docs : int array;
}

let make_scratch () =
  {
    h_time = Array.make 64 0;
    h_seq = Array.make 64 0;
    h_pay = Array.make 64 0;
    h_len = 0;
    h_next = 0;
    pop_now = 0;
    balance = [||];
    doc_count = [||];
    seen = Bytes.empty;
    log_at = Array.make 64 0;
    log_act = Array.make 64 0;
    log_len = 0;
    observed = Bytes.empty;
    pos = [||];
    emitted = [||];
    flags = Bytes.empty;
    flag_stride = 1;
    defect_kind = Bytes.empty;
    defect_keep = [||];
    buf = Array.make 32 0;
    buf_len = 0;
    pend_party = Array.make 16 0;
    pend_act = Array.make 16 0;
    pend_len = 0;
    rt_act = Array.make 16 0;
    performed = 0;
    events = 0;
    dep_left = [||];
    xdocs = [||];
    xmoney = [||];
    released = [||];
    received = [||];
    escrowed = [||];
    deposits = [||];
    goods = [||];
    peak_risk = [||];
    risk_ticks = [||];
    prev_at = [||];
    prev_risk = [||];
    s_risk = [||];
    s_escrow = [||];
    s_dep = [||];
    s_goods = [||];
    has_sample = Bytes.empty;
    flagged = Bytes.empty;
    honest = Bytes.empty;
    violations = 0;
    g_docs = [||];
    l_docs = [||];
  }

let scratch_key = Domain.DLS.new_key make_scratch

let grow_int a n = if Array.length a < n then Array.make (max n (2 * Array.length a)) 0 else a

let grow_bytes b n =
  if Bytes.length b < n then Bytes.make (max n (2 * Bytes.length b)) '\000' else b

(* Size the scratch for [p] and reset it to the run's initial state. *)
let reset s (p : C.t) defectors =
  let n_names = p.C.n_names and n_docs = p.C.n_docs and n_actions = p.C.n_actions in
  let n_roles = Array.length p.C.roles and n_pr = p.C.n_principals in
  s.balance <- grow_int s.balance n_names;
  Array.blit p.C.endow_balance 0 s.balance 0 n_names;
  s.doc_count <- grow_int s.doc_count (n_names * n_docs);
  for n = 0 to n_names - 1 do
    Array.blit p.C.endow_docs.(n) 0 s.doc_count (n * n_docs) n_docs
  done;
  s.seen <- grow_bytes s.seen n_actions;
  Bytes.fill s.seen 0 n_actions '\000';
  s.log_len <- 0;
  s.observed <- grow_bytes s.observed (n_roles * n_actions);
  Bytes.fill s.observed 0 (n_roles * n_actions) '\000';
  s.pos <- grow_int s.pos n_roles;
  s.emitted <- grow_int s.emitted n_roles;
  Array.fill s.pos 0 n_roles 0;
  Array.fill s.emitted 0 n_roles 0;
  let stride = ref 1 in
  Array.iter
    (fun (_, role) ->
      match role with
      | C.Script { persona; _ } -> stride := max !stride (2 * Array.length persona)
      | C.Escrow e ->
        stride :=
          max !stride ((4 * Array.length e.C.es_deals) + (2 * Array.length e.C.es_deposits)))
    p.C.roles;
  s.flag_stride <- !stride;
  s.flags <- grow_bytes s.flags (n_roles * !stride);
  Bytes.fill s.flags 0 (n_roles * !stride) '\000';
  s.defect_kind <- grow_bytes s.defect_kind n_roles;
  Bytes.fill s.defect_kind 0 n_roles '\000';
  s.defect_keep <- grow_int s.defect_keep n_roles;
  s.buf_len <- 0;
  s.pend_len <- 0;
  s.performed <- 0;
  s.events <- 0;
  s.h_len <- 0;
  s.h_next <- 0;
  s.dep_left <- grow_int s.dep_left n_actions;
  Array.blit p.C.deposit_expect 0 s.dep_left 0 n_actions;
  if Array.length s.xdocs < n_names then begin
    s.xdocs <- Array.make n_names [];
    s.xmoney <- Array.make n_names []
  end
  else begin
    Array.fill s.xdocs 0 n_names [];
    Array.fill s.xmoney 0 n_names []
  end;
  s.released <- grow_int s.released n_pr;
  s.received <- grow_int s.received n_pr;
  s.escrowed <- grow_int s.escrowed n_pr;
  s.deposits <- grow_int s.deposits n_pr;
  s.goods <- grow_int s.goods n_pr;
  s.peak_risk <- grow_int s.peak_risk n_pr;
  s.risk_ticks <- grow_int s.risk_ticks n_pr;
  s.prev_at <- grow_int s.prev_at n_pr;
  s.prev_risk <- grow_int s.prev_risk n_pr;
  s.s_risk <- grow_int s.s_risk n_pr;
  s.s_escrow <- grow_int s.s_escrow n_pr;
  s.s_dep <- grow_int s.s_dep n_pr;
  s.s_goods <- grow_int s.s_goods n_pr;
  Array.fill s.released 0 n_pr 0;
  Array.fill s.received 0 n_pr 0;
  Array.fill s.escrowed 0 n_pr 0;
  Array.fill s.deposits 0 n_pr 0;
  Array.fill s.goods 0 n_pr 0;
  Array.fill s.peak_risk 0 n_pr 0;
  Array.fill s.risk_ticks 0 n_pr 0;
  Array.fill s.prev_at 0 n_pr 0;
  Array.fill s.prev_risk 0 n_pr 0;
  Array.fill s.s_risk 0 n_pr 0;
  Array.fill s.s_escrow 0 n_pr 0;
  Array.fill s.s_dep 0 n_pr 0;
  Array.fill s.s_goods 0 n_pr 0;
  s.has_sample <- grow_bytes s.has_sample n_pr;
  s.flagged <- grow_bytes s.flagged n_pr;
  s.honest <- grow_bytes s.honest n_pr;
  Bytes.fill s.has_sample 0 n_pr '\000';
  Bytes.fill s.flagged 0 n_pr '\000';
  Bytes.fill s.honest 0 n_pr '\001';
  s.violations <- 0;
  s.g_docs <- grow_int s.g_docs n_docs;
  s.l_docs <- grow_int s.l_docs n_docs;
  List.iter
    (fun (party, d) ->
      let i = C.party_index p party in
      if i >= 0 then begin
        let r = p.C.behavior_of.(i) in
        if r >= 0 && r < n_pr then begin
          (match d with
          | Harness.Silent -> Bytes.set s.defect_kind r '\001'
          | Harness.Partial keep ->
            Bytes.set s.defect_kind r '\002';
            s.defect_keep.(r) <- keep);
          Bytes.set s.honest r '\000'
        end
      end)
    defectors

(* -- event heap (Event_queue with parallel int arrays) -- *)

let heap_before s i j =
  s.h_time.(i) < s.h_time.(j)
  || (s.h_time.(i) = s.h_time.(j) && s.h_seq.(i) < s.h_seq.(j))

let heap_swap s i j =
  let t = s.h_time.(i) in
  s.h_time.(i) <- s.h_time.(j);
  s.h_time.(j) <- t;
  let q = s.h_seq.(i) in
  s.h_seq.(i) <- s.h_seq.(j);
  s.h_seq.(j) <- q;
  let p = s.h_pay.(i) in
  s.h_pay.(i) <- s.h_pay.(j);
  s.h_pay.(j) <- p

let heap_push s time pay =
  if s.h_len = Array.length s.h_time then begin
    s.h_time <- grow_int s.h_time (s.h_len + 1);
    s.h_seq <- grow_int s.h_seq (s.h_len + 1);
    s.h_pay <- grow_int s.h_pay (s.h_len + 1)
  end;
  let i = ref s.h_len in
  s.h_time.(!i) <- time;
  s.h_seq.(!i) <- s.h_next;
  s.h_pay.(!i) <- pay;
  s.h_next <- s.h_next + 1;
  s.h_len <- s.h_len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_before s !i parent then begin
      heap_swap s !i parent;
      i := parent
    end
    else continue := false
  done

(* pops the min entry; returns the payload and stores its time in
   [pop_now]; -1 when empty *)
let heap_pop s =
  if s.h_len = 0 then -1
  else begin
    let pay = s.h_pay.(0) in
    s.pop_now <- s.h_time.(0);
    s.h_len <- s.h_len - 1;
    if s.h_len > 0 then begin
      s.h_time.(0) <- s.h_time.(s.h_len);
      s.h_seq.(0) <- s.h_seq.(s.h_len);
      s.h_pay.(0) <- s.h_pay.(s.h_len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < s.h_len && heap_before s left !smallest then smallest := left;
        if right < s.h_len && heap_before s right !smallest then smallest := right;
        if !smallest <> !i then begin
          heap_swap s !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    pay
  end

let log_push s at act =
  if s.log_len = Array.length s.log_at then begin
    s.log_at <- grow_int s.log_at (s.log_len + 1);
    s.log_act <- grow_int s.log_act (s.log_len + 1)
  end;
  s.log_at.(s.log_len) <- at;
  s.log_act.(s.log_len) <- act;
  s.log_len <- s.log_len + 1

let buf_push s act =
  if s.buf_len = Array.length s.buf then s.buf <- grow_int s.buf (s.buf_len + 1);
  s.buf.(s.buf_len) <- act;
  s.buf_len <- s.buf_len + 1

let pend_push s party act =
  if s.pend_len = Array.length s.pend_party then begin
    s.pend_party <- grow_int s.pend_party (s.pend_len + 1);
    s.pend_act <- grow_int s.pend_act (s.pend_len + 1)
  end;
  s.pend_party.(s.pend_len) <- party;
  s.pend_act.(s.pend_len) <- act;
  s.pend_len <- s.pend_len + 1

(* -- behaviour automata over compiled roles --

   Each replicates its [Behavior] counterpart exactly: same matching
   order, same state bits, same emission order. Reactions are pushed
   into [buf]; [observe] performs them afterwards, like the engine
   performing a reaction list. *)

let obs_base (p : C.t) r = r * p.C.n_actions

(* Script.fire: advance past every consecutively-satisfied step, emit
   the first [limit] (partial defectors keep a budget; everything an
   advance skips past is lost, exactly like Behavior.partial). *)
let fire_steps s (p : C.t) r (steps : C.step array) limit =
  let base = obs_base p r in
  let len = Array.length steps in
  let i = ref s.pos.(r) in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !i < len do
    let st = steps.(!i) in
    if st.C.cond < 0 || Bytes.get s.observed (base + st.C.cond) <> '\000' then begin
      if !n < limit then begin
        buf_push s st.C.act;
        incr n
      end;
      incr i
    end
    else continue := false
  done;
  s.pos.(r) <- !i;
  !n

(* observation kinds: 0 Start, 1 Incoming act, 2 Expired deal, 3 Deadline *)

let script_react s (p : C.t) r (steps : C.step array) (persona : C.persona_deal array) kind
    payload =
  match Bytes.get s.defect_kind r with
  | '\001' -> () (* silent: no note, no fire *)
  | '\002' ->
    (* partial: observe, then fire under the remaining budget *)
    if kind = 1 then Bytes.set s.observed (obs_base p r + payload) '\001';
    if kind <= 1 then begin
      let budget = max 0 (s.defect_keep.(r) - s.emitted.(r)) in
      let n = fire_steps s p r steps budget in
      s.emitted.(r) <- s.emitted.(r) + n
    end
  | _ ->
    let fbase = r * s.flag_stride in
    let np = Array.length persona in
    (* persona duties: note the counterparty's deposit before reacting *)
    if kind = 1 then begin
      if np > 0 && p.C.act_kind.(payload) = 0 then
        for k = 0 to np - 1 do
          if persona.(k).C.pc_incoming = payload then
            Bytes.set s.flags (fbase + (2 * k)) '\001'
        done;
      Bytes.set s.observed (obs_base p r + payload) '\001'
    end;
    if kind <= 1 then begin
      let start = s.buf_len in
      let _ = fire_steps s p r steps max_int in
      (* note_outgoing: my own counterpart transfer completes the deal *)
      if np > 0 then
        for j = start to s.buf_len - 1 do
          let a = s.buf.(j) in
          for k = 0 to np - 1 do
            if persona.(k).C.pc_forward = a then Bytes.set s.flags (fbase + (2 * k) + 1) '\001'
          done
        done
    end
    else
      (* deadline/expiry: return deposits of deals never completed *)
      for k = 0 to np - 1 do
        if (kind = 3 || persona.(k).C.pc_deal = payload)
           && Bytes.get s.flags (fbase + (2 * k)) <> '\000'
           && Bytes.get s.flags (fbase + (2 * k) + 1) = '\000'
        then begin
          Bytes.set s.flags (fbase + (2 * k) + 1) '\001';
          buf_push s persona.(k).C.pc_return
        end
      done

(* escrow flag layout per role: deal slot i at 4i (got_left, got_right,
   completed, closed); deposit j at 4*|deals| + 2j (received, settled) *)

let escrow_complete s r (e : C.escrow) i =
  let fbase = r * s.flag_stride in
  Bytes.set s.flags (fbase + (4 * i) + 2) '\001';
  Array.iter (fun a -> buf_push s a) e.C.es_deals.(i).C.sl_forwards;
  let deal = e.C.es_deals.(i).C.sl_deal in
  let dbase = fbase + (4 * Array.length e.C.es_deals) in
  Array.iteri
    (fun j (dp : C.deposit_slot) ->
      if Bytes.get s.flags (dbase + (2 * j)) <> '\000'
         && Bytes.get s.flags (dbase + (2 * j) + 1) = '\000'
         && dp.C.dp_deal = deal
      then begin
        Bytes.set s.flags (dbase + (2 * j) + 1) '\001';
        buf_push s dp.C.dp_back
      end)
    e.C.es_deposits

let escrow_on_incoming s (p : C.t) r (e : C.escrow) payload =
  let fbase = r * s.flag_stride in
  let nd = Array.length e.C.es_deals in
  (* first open slot, Left side before Right (Escrow.match_deal_side) *)
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < nd do
    let sl = e.C.es_deals.(!i) in
    let b = fbase + (4 * !i) in
    let closed = Bytes.get s.flags (b + 3) <> '\000' in
    if (not closed) && Bytes.get s.flags b = '\000' && sl.C.sl_left_in = payload then
      found := 2 * !i
    else if (not closed) && Bytes.get s.flags (b + 1) = '\000' && sl.C.sl_right_in = payload
    then found := (2 * !i) + 1
    else incr i
  done;
  if !found >= 0 then begin
    let slot = !found / 2 in
    let b = fbase + (4 * slot) in
    Bytes.set s.flags (b + (!found land 1)) '\001';
    let ready k =
      Bytes.get s.flags (fbase + (4 * k)) <> '\000'
      && Bytes.get s.flags (fbase + (4 * k) + 1) <> '\000'
    in
    if e.C.es_atomic then begin
      let all = ref true in
      for k = 0 to nd - 1 do
        if not (ready k) then all := false
      done;
      if !all then
        for k = 0 to nd - 1 do
          if Bytes.get s.flags (fbase + (4 * k) + 2) = '\000' then escrow_complete s r e k
        done
    end
    else if ready slot && Bytes.get s.flags (b + 2) = '\000' then escrow_complete s r e slot
  end
  else begin
    (* a §6 deposit, or something to bounce back *)
    let dbase = fbase + (4 * nd) in
    let ndep = Array.length e.C.es_deposits in
    let j = ref 0 in
    let hit = ref false in
    while (not !hit) && !j < ndep do
      if Bytes.get s.flags (dbase + (2 * !j)) = '\000'
         && Bytes.get s.flags (dbase + (2 * !j) + 1) = '\000'
         && e.C.es_deposits.(!j).C.dp_in = payload
      then hit := true
      else incr j
    done;
    if !hit then Bytes.set s.flags (dbase + (2 * !j)) '\001'
    else buf_push s p.C.act_undo.(payload)
  end

let escrow_close s r (e : C.escrow) i =
  let fbase = r * s.flag_stride in
  let b = fbase + (4 * i) in
  let was_done = Bytes.get s.flags (b + 2) <> '\000' || Bytes.get s.flags (b + 3) <> '\000' in
  Bytes.set s.flags (b + 3) '\001';
  if not was_done then begin
    if Bytes.get s.flags b <> '\000' then buf_push s e.C.es_deals.(i).C.sl_left_back;
    if Bytes.get s.flags (b + 1) <> '\000' then buf_push s e.C.es_deals.(i).C.sl_right_back
  end

(* §6 settlement of one held deposit (marks it settled) *)
let escrow_settle_dep s r (e : C.escrow) j =
  let fbase = r * s.flag_stride in
  let nd = Array.length e.C.es_deals in
  let dbase = fbase + (4 * nd) in
  let dp = e.C.es_deposits.(j) in
  Bytes.set s.flags (dbase + (2 * j) + 1) '\001';
  let covered = ref (-1) in
  let k = ref 0 in
  while !covered < 0 && !k < nd do
    if e.C.es_deals.(!k).C.sl_deal = dp.C.dp_deal then covered := !k else incr k
  done;
  let owner_paid =
    !covered >= 0
    && Bytes.get s.flags (fbase + (4 * !covered) + if dp.C.dp_left then 0 else 1) <> '\000'
  in
  let piece_completed =
    !covered >= 0 && Bytes.get s.flags (fbase + (4 * !covered) + 2) <> '\000'
  in
  if owner_paid && not piece_completed then buf_push s dp.C.dp_forfeit
  else buf_push s dp.C.dp_back

let escrow_react s (p : C.t) r pi (e : C.escrow) kind payload =
  (* the notify script notes the observation first *)
  if kind = 1 then Bytes.set s.observed (obs_base p r + payload) '\001';
  let fbase = r * s.flag_stride in
  let nd = Array.length e.C.es_deals in
  let dbase = fbase + (4 * nd) in
  (match kind with
  | 1 ->
    if p.C.act_kind.(payload) = 0 && p.C.act_credit.(payload) = pi then
      escrow_on_incoming s p r e payload
  | 2 ->
    for i = 0 to nd - 1 do
      if e.C.es_deals.(i).C.sl_deal = payload then escrow_close s r e i
    done;
    Array.iteri
      (fun j (dp : C.deposit_slot) ->
        if Bytes.get s.flags (dbase + (2 * j) + 1) = '\000'
           && Bytes.get s.flags (dbase + (2 * j)) <> '\000'
           && dp.C.dp_deal = payload
        then escrow_settle_dep s r e j)
      e.C.es_deposits
  | 3 ->
    for i = 0 to nd - 1 do
      escrow_close s r e i
    done;
    Array.iteri
      (fun j (_ : C.deposit_slot) ->
        if Bytes.get s.flags (dbase + (2 * j) + 1) = '\000'
           && Bytes.get s.flags (dbase + (2 * j)) <> '\000'
        then escrow_settle_dep s r e j)
      e.C.es_deposits
  | _ -> ());
  if kind <= 1 then ignore (fire_steps s p r e.C.es_notifies max_int)

(* -- the engine loop (Engine.run over scratch) -- *)

let perform s (p : C.t) config now party a =
  if p.C.act_kind.(a) = 2 then begin
    let seq = s.performed in
    s.performed <- seq + 1;
    let lost = match config.drop with Some f -> f seq | None -> false in
    if not lost then heap_push s (now + config.latency) a
  end
  else begin
    let name = p.C.name_of.(p.C.act_debit.(a)) in
    let di = p.C.act_doc.(a) in
    let ok =
      if di >= 0 then begin
        let idx = (name * p.C.n_docs) + di in
        if s.doc_count.(idx) > 0 then begin
          s.doc_count.(idx) <- s.doc_count.(idx) - 1;
          true
        end
        else false
      end
      else begin
        let m = p.C.act_amount.(a) in
        if s.balance.(name) >= m then begin
          s.balance.(name) <- s.balance.(name) - m;
          true
        end
        else false
      end
    in
    if ok then begin
      let seq = s.performed in
      s.performed <- seq + 1;
      let lost = match config.drop with Some f -> f seq | None -> false in
      if lost then begin
        (* lost in transit: the courier returns it to the sender *)
        if di >= 0 then begin
          let idx = (name * p.C.n_docs) + di in
          s.doc_count.(idx) <- s.doc_count.(idx) + 1
        end
        else s.balance.(name) <- s.balance.(name) + p.C.act_amount.(a)
      end
      else heap_push s (now + config.latency) a
    end
    else pend_push s party a (* insufficient assets: park for retry *)
  end

let retry_pending s (p : C.t) config now credit =
  let n = s.pend_len in
  if n > 0 then begin
    if Array.length s.rt_act < n then s.rt_act <- grow_int s.rt_act n;
    let mine = ref 0 in
    let keep = ref 0 in
    for k = 0 to n - 1 do
      if s.pend_party.(k) = credit then begin
        s.rt_act.(!mine) <- s.pend_act.(k);
        incr mine
      end
      else begin
        s.pend_party.(!keep) <- s.pend_party.(k);
        s.pend_act.(!keep) <- s.pend_act.(k);
        incr keep
      end
    done;
    s.pend_len <- !keep;
    for k = 0 to !mine - 1 do
      perform s p config now credit s.rt_act.(k)
    done
  end

let observe s (p : C.t) config now r kind payload =
  s.buf_len <- 0;
  let pi, role = p.C.roles.(r) in
  (match role with
  | C.Script { steps; persona } -> script_react s p r steps persona kind payload
  | C.Escrow e -> escrow_react s p r pi e kind payload);
  for j = 0 to s.buf_len - 1 do
    perform s p config now pi s.buf.(j)
  done

(* payload encoding on the heap: [0, n_actions) deliver that action;
   n_actions + k fires deal k's expiry; n_actions + n_deals the deadline *)
let execute s (p : C.t) config defectors =
  reset s p defectors;
  let n_roles = Array.length p.C.roles in
  for r = 0 to n_roles - 1 do
    observe s p config 0 r 0 (-1)
  done;
  Array.iter (fun (di, tick) -> heap_push s tick (p.C.n_actions + di)) p.C.expiries;
  heap_push s config.deadline (p.C.n_actions + p.C.n_deals);
  let continue = ref true in
  while !continue do
    if s.events >= config.max_events then continue := false
    else begin
      let pay = heap_pop s in
      if pay < 0 then continue := false
      else begin
        s.events <- s.events + 1;
        let now = s.pop_now in
        if pay >= p.C.n_actions then begin
          let kind, payload =
            if pay = p.C.n_actions + p.C.n_deals then (3, -1) else (2, pay - p.C.n_actions)
          in
          for r = 0 to n_roles - 1 do
            observe s p config now r kind payload
          done
        end
        else begin
          let a = pay in
          Bytes.set s.seen a '\001';
          log_push s now a;
          if p.C.act_kind.(a) <> 2 then begin
            let credit = p.C.act_credit.(a) in
            let name = p.C.name_of.(credit) in
            let di = p.C.act_doc.(a) in
            if di >= 0 then begin
              let idx = (name * p.C.n_docs) + di in
              s.doc_count.(idx) <- s.doc_count.(idx) + 1
            end
            else s.balance.(name) <- s.balance.(name) + p.C.act_amount.(a);
            retry_pending s p config now credit
          end;
          if p.C.lockstep then
            for r = 0 to n_roles - 1 do
              observe s p config now r 1 a
            done
          else begin
            let r = p.C.behavior_of.(p.C.act_beneficiary.(a)) in
            if r >= 0 then observe s p config now r 1 a
          end
        end
      end
    end
  done

(* -- exposure fold (Exposure.of_result over the scratch log) -- *)

let pslot (p : C.t) i = p.C.pslot_of_name.(p.C.name_of.(i))

let contribute s ps cls v is_doc =
  (match cls with
  | 0 -> s.escrowed.(ps) <- s.escrowed.(ps) + v
  | 1 -> s.released.(ps) <- s.released.(ps) + v
  | _ -> s.deposits.(ps) <- s.deposits.(ps) + v);
  if is_doc then s.goods.(ps) <- s.goods.(ps) + 1

let uncontribute s ps cls v is_doc =
  (match cls with
  | 0 -> s.escrowed.(ps) <- s.escrowed.(ps) - v
  | 1 -> s.released.(ps) <- s.released.(ps) - v
  | _ -> s.deposits.(ps) <- s.deposits.(ps) - v);
  if is_doc then s.goods.(ps) <- s.goods.(ps) - 1

(* value returned to a contributor other than the one consuming it *)
let release s ps cls v =
  match cls with
  | 0 ->
    s.escrowed.(ps) <- s.escrowed.(ps) - v;
    s.released.(ps) <- s.released.(ps) + v
  | 2 ->
    s.deposits.(ps) <- s.deposits.(ps) - v;
    s.released.(ps) <- s.released.(ps) + v
  | _ -> ()

(* FIFO pick of a document: with a preferred contributor, their copy
   first, then any copy (Exposure.consume on documents). *)
let consume_doc s name di prefer =
  let rec pick want_contrib acc = function
    | [] -> None
    | (n, (e : xentry)) :: rest when n = di && ((not want_contrib) || e.x_contrib = prefer) ->
      Some (e, List.rev_append acc rest)
    | x :: rest -> pick want_contrib (x :: acc) rest
  in
  let found =
    match pick (prefer >= 0) [] s.xdocs.(name) with
    | Some _ as r -> r
    | None -> if prefer >= 0 then pick false [] s.xdocs.(name) else None
  in
  match found with
  | Some (e, rest) ->
    s.xdocs.(name) <- rest;
    Some e
  | None -> None

(* FIFO drain of money up to [m]; a preferred contributor's entries are
   moved to the front first, and that reordering persists. Returns the
   consumed (contributor, value, class) triples and the shortfall. *)
let consume_money s name m prefer =
  let queue =
    if prefer < 0 then s.xmoney.(name)
    else begin
      let mine, others = List.partition (fun (e : xentry) -> e.x_contrib = prefer) s.xmoney.(name) in
      mine @ others
    end
  in
  let rec go taken need queue =
    if need = 0 then (List.rev taken, 0, queue)
    else
      match queue with
      | [] -> (List.rev taken, need, [])
      | (e : xentry) :: rest ->
        if e.x_value <= need then
          go ((e.x_contrib, e.x_value, e.x_cls) :: taken) (need - e.x_value) rest
        else begin
          e.x_value <- e.x_value - need;
          (List.rev ((e.x_contrib, need, e.x_cls) :: taken), 0, e :: rest)
        end
  in
  let taken, shortfall, rest = go [] m queue in
  s.xmoney.(name) <- rest;
  (taken, shortfall)

(* forwarding held value re-classifies it (Protected <-> Exposed);
   deposits and unattributed value keep their class *)
let reclassify_move s (p : C.t) contrib v from_cls to_cls =
  if contrib >= 0 && from_cls <> to_cls && from_cls <> 2 then begin
    let ps = pslot p contrib in
    if ps < 0 then { x_contrib = contrib; x_value = v; x_cls = from_cls }
    else begin
      (match (from_cls, to_cls) with
      | 0, 1 ->
        s.escrowed.(ps) <- s.escrowed.(ps) - v;
        s.released.(ps) <- s.released.(ps) + v
      | 1, 0 ->
        s.released.(ps) <- s.released.(ps) - v;
        s.escrowed.(ps) <- s.escrowed.(ps) + v
      | _ -> ());
      { x_contrib = contrib; x_value = v; x_cls = to_cls }
    end
  end
  else { x_contrib = contrib; x_value = v; x_cls = from_cls }

let apply_delivery s (p : C.t) a =
  if p.C.act_kind.(a) <> 2 then begin
    let is_undo = p.C.act_kind.(a) = 1 in
    let src = p.C.act_debit.(a) and tgt = p.C.act_credit.(a) in
    let src_name = p.C.name_of.(src) and tgt_name = p.C.name_of.(tgt) in
    let di = p.C.act_doc.(a) in
    let is_doc = di >= 0 in
    let deposit_deal =
      if (not is_undo) && s.dep_left.(a) > 0 then begin
        s.dep_left.(a) <- s.dep_left.(a) - 1;
        true
      end
      else false
    in
    let prefer = if is_undo then tgt else -1 in
    let src_had =
      if is_doc then List.exists (fun (n, _) -> n = di) s.xdocs.(src_name)
      else s.xmoney.(src_name) <> []
    in
    let consumed, shortfall =
      if src_had then
        if is_doc then
          match consume_doc s src_name di prefer with
          | Some e -> ([ (e.x_contrib, e.x_value, e.x_cls) ], 0)
          | None -> ([], 0)
        else consume_money s src_name p.C.act_amount.(a) prefer
      else ([], if is_doc then 0 else p.C.act_amount.(a))
    in
    let own_value =
      if is_doc then
        if consumed = [] then if p.C.src_principal.(a) then p.C.price_src.(a) else 0 else 0
      else shortfall
    in
    let sends_own = (is_doc && consumed = []) || own_value > 0 in
    let custody = if src_had then p.C.custody_if_had.(a) else p.C.custody_if_not.(a) in
    if (not is_undo) && (deposit_deal || custody) then begin
      (* value stays in custody at the target *)
      let to_cls = if deposit_deal then 2 else if p.C.tgt_trusted.(a) then 0 else 1 in
      let moved = List.map (fun (c, v, cls) -> reclassify_move s p c v cls to_cls) consumed in
      let own =
        if sends_own then begin
          let ps = pslot p src in
          if ps >= 0 then begin
            contribute s ps to_cls own_value is_doc;
            [ { x_contrib = src; x_value = own_value; x_cls = to_cls } ]
          end
          else [ { x_contrib = -1; x_value = own_value; x_cls = to_cls } ]
        end
        else []
      in
      let entries = moved @ own in
      if is_doc then
        s.xdocs.(tgt_name) <- s.xdocs.(tgt_name) @ List.map (fun e -> (di, e)) entries
      else s.xmoney.(tgt_name) <- s.xmoney.(tgt_name) @ entries
    end
    else begin
      (* terminal transfer: consumed value reaches its destination *)
      let self_returned = ref 0 in
      List.iter
        (fun (c, v, cls) ->
          if c >= 0 then
            if c = tgt then begin
              self_returned := !self_returned + v;
              let ps = pslot p c in
              if ps >= 0 then uncontribute s ps cls v is_doc
            end
            else begin
              let ps = pslot p c in
              if ps >= 0 then release s ps cls v
            end)
        consumed;
      let ps_src = pslot p src in
      if ps_src >= 0 && sends_own then
        if is_undo then begin
          let v = if is_doc then p.C.price_src.(a) else own_value in
          s.received.(ps_src) <- s.received.(ps_src) - v
        end
        else contribute s ps_src 1 own_value is_doc;
      let ps_tgt = pslot p tgt in
      if ps_tgt >= 0 then
        if is_undo && p.C.src_principal.(a) && consumed = [] then begin
          let v = if is_doc then p.C.price_tgt.(a) else own_value in
          uncontribute s ps_tgt 1 v is_doc
        end
        else begin
          let gross = if is_doc then p.C.price_tgt.(a) else p.C.act_amount.(a) in
          let v = gross - !self_returned in
          if v <> 0 then s.received.(ps_tgt) <- s.received.(ps_tgt) + v
        end
    end
  end

let sample_tick s (p : C.t) at =
  for ps = 0 to p.C.n_principals - 1 do
    let risk =
      let r = s.released.(ps) - s.received.(ps) in
      if r > 0 then r else 0
    in
    let changed =
      if Bytes.get s.has_sample ps = '\000' then
        risk > 0 || s.escrowed.(ps) > 0 || s.deposits.(ps) > 0 || s.goods.(ps) > 0
      else
        risk <> s.s_risk.(ps)
        || s.escrowed.(ps) <> s.s_escrow.(ps)
        || s.deposits.(ps) <> s.s_dep.(ps)
        || s.goods.(ps) <> s.s_goods.(ps)
    in
    if changed then begin
      Bytes.set s.has_sample ps '\001';
      s.s_risk.(ps) <- risk;
      s.s_escrow.(ps) <- s.escrowed.(ps);
      s.s_dep.(ps) <- s.deposits.(ps);
      s.s_goods.(ps) <- s.goods.(ps);
      if risk > s.peak_risk.(ps) then s.peak_risk.(ps) <- risk;
      if s.prev_risk.(ps) > 0 then s.risk_ticks.(ps) <- s.risk_ticks.(ps) + (at - s.prev_at.(ps));
      if risk > p.C.bound.(ps)
         && Bytes.get s.honest ps <> '\000'
         && Bytes.get s.flagged ps = '\000'
      then begin
        Bytes.set s.flagged ps '\001';
        s.violations <- s.violations + 1
      end;
      s.prev_at.(ps) <- at;
      s.prev_risk.(ps) <- risk
    end
  done

let summarize_exposure s (p : C.t) =
  let duration = ref 0 in
  for k = 0 to s.log_len - 1 do
    if s.log_at.(k) > !duration then duration := s.log_at.(k)
  done;
  let k = ref 0 in
  while !k < s.log_len do
    let tick = s.log_at.(!k) in
    while !k < s.log_len && s.log_at.(!k) = tick do
      apply_delivery s p s.log_act.(!k);
      incr k
    done;
    sample_tick s p tick
  done;
  for ps = 0 to p.C.n_principals - 1 do
    if s.prev_risk.(ps) > 0 then begin
      s.risk_ticks.(ps) <- s.risk_ticks.(ps) + (!duration - s.prev_at.(ps) + 1);
      if Bytes.get s.honest ps <> '\000' then s.violations <- s.violations + 1
    end
  done;
  !duration

(* -- audit (Audit.audit over the delivered-action set) -- *)

let judge_preferred s (p : C.t) = function
  | C.Judge_principal (_, checks) ->
    Array.for_all
      (fun (cc : C.commit_check) ->
        Bytes.get s.seen cc.C.cc_send <> '\000'
        && Array.exists (fun r -> Bytes.get s.seen r <> '\000') cc.C.cc_recv)
      checks
  | C.Judge_trusted pi ->
    if Array.length s.g_docs < p.C.n_docs then begin
      s.g_docs <- Array.make (max 16 p.C.n_docs) 0;
      s.l_docs <- Array.make (max 16 p.C.n_docs) 0
    end;
    Array.fill s.g_docs 0 p.C.n_docs 0;
    Array.fill s.l_docs 0 p.C.n_docs 0;
    let gained = ref 0 and lost = ref 0 in
    for a = 0 to p.C.n_actions - 1 do
      if Bytes.get s.seen a <> '\000' && p.C.act_kind.(a) <> 2 then begin
        let di = p.C.act_doc.(a) in
        if p.C.act_credit.(a) = pi then
          if di >= 0 then s.g_docs.(di) <- s.g_docs.(di) + 1
          else gained := !gained + p.C.act_amount.(a);
        if p.C.act_debit.(a) = pi then
          if di >= 0 then s.l_docs.(di) <- s.l_docs.(di) + 1
          else lost := !lost + p.C.act_amount.(a)
      end
    done;
    let ok = ref (!gained = !lost) in
    for d = 0 to p.C.n_docs - 1 do
      if s.g_docs.(d) <> s.l_docs.(d) then ok := false
    done;
    !ok

(* -- entry points -- *)

let exec ?(config = default_config) ?(defectors = []) (p : C.t) =
  let s = Domain.DLS.get scratch_key in
  execute s p config defectors;
  let duration = summarize_exposure s p in
  let preferred = Array.map (judge_preferred s p) p.C.judged in
  {
    duration;
    events = s.events;
    deliveries = s.log_len;
    stalled = s.pend_len;
    all_preferred = Array.for_all Fun.id preferred;
    preferred;
    peak_risk = Array.sub s.peak_risk 0 p.C.n_principals;
    risk_ticks = Array.sub s.risk_ticks 0 p.C.n_principals;
    violations = s.violations;
  }

let total_peak_risk (t : summary) = Array.fold_left ( + ) 0 t.peak_risk
let total_risk_ticks (t : summary) = Array.fold_left ( + ) 0 t.risk_ticks

let to_result ?(config = default_config) ?(defectors = []) (p : C.t) =
  let s = Domain.DLS.get scratch_key in
  execute s p config defectors;
  let state = ref State.empty in
  for a = 0 to p.C.n_actions - 1 do
    if Bytes.get s.seen a <> '\000' then state := State.record p.C.actions.(a) !state
  done;
  let log = ref [] in
  for k = s.log_len - 1 downto 0 do
    log := { Engine.at = s.log_at.(k); action = p.C.actions.(s.log_act.(k)) } :: !log
  done;
  let holdings =
    Array.to_list
      (Array.map
         (fun (pi, _) ->
           let name = p.C.name_of.(pi) in
           let bag = ref (Asset.Bag.add (Asset.money s.balance.(name)) Asset.Bag.empty) in
           for d = 0 to p.C.n_docs - 1 do
             for _ = 1 to s.doc_count.((name * p.C.n_docs) + d) do
               bag := Asset.Bag.add (Asset.document p.C.docs.(d)) !bag
             done
           done;
           (p.C.parties.(pi), !bag))
         p.C.roles)
  in
  let stalled = ref [] in
  for k = s.pend_len - 1 downto 0 do
    stalled := (p.C.parties.(s.pend_party.(k)), p.C.actions.(s.pend_act.(k))) :: !stalled
  done;
  { Engine.state = !state; log = !log; holdings; stalled = !stalled; events = s.events }
