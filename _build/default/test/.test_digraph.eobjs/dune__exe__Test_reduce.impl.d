test/test_reduce.ml: Alcotest Asset Exchange Int64 List Party Printf QCheck2 QCheck_alcotest Spec Trust_core Workload
