(** Canonical structural fingerprints of exchange specifications.

    The protocol cache keys synthesis work by the {e shape} of a spec:
    a canonical byte encoding of everything synthesis depends on —
    deals in spec order (reduction is order-sensitive), parties with
    their roles, assets with exact amounts, deadlines, personas,
    priorities and splits. Two specs with equal encodings are equal
    inputs to the whole synthesis pipeline, so their protocols are
    interchangeable. Workload generators emit structurally identical
    specs for identical draws, which is what makes the cache pay off. *)

open Exchange

val cacheable : Spec.t -> bool
(** False when the spec carries acceptability overrides: those contain
    behavioural pattern data the encoding does not cover, so such specs
    bypass the cache rather than risk a false hit. *)

val encode : Spec.t -> string
(** Injective canonical encoding (for cacheable specs): equal strings
    iff structurally equal specs. *)

val hash : Spec.t -> int64
(** FNV-1a (64-bit) of {!encode}. Stable across runs and processes —
    never derived from [Hashtbl.hash] or address identity. *)

val hash_hex : Spec.t -> string
(** [hash] as 16 lowercase hex digits. *)

val fnv1a : string -> int64
val mix64 : int64 -> int64
(** The SplitMix64 finalizer: a cheap stateless bit mixer, used to
    derive per-session fault-injection streams from a batch seed. *)

val uniform : int64 -> float
(** Map a mixed hash to [\[0, 1)] — deterministic, platform independent. *)
