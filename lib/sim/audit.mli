(** Post-run auditing: the paper's safety claim, tested.

    §1: "A feasible exchange can be carried out in such a way that no
    participant ever risks losing money or goods without receiving
    everything promised in exchange." The auditor evaluates the final
    exchange state of a simulation against every party's acceptable-state
    specification ({!Exchange.Outcomes}) and separates honest parties
    from defectors. *)

open Exchange

type verdict = {
  party : Party.t;
  honest : bool;
  acceptable : bool;  (** full §2.3 acceptability, bundles included *)
  no_loss : bool;  (** item-level: lost no money or goods (§1) *)
  preferred : bool;
}

type report = {
  verdicts : verdict list;
  honest_all_acceptable : bool;
      (** every honest party ends in an acceptable state — holds on
          honest runs, and under defection whenever the stalled bundle
          pieces were escrowed or indemnified *)
  honest_no_loss : bool;
      (** no honest party lost an asset — the unconditional §1 claim *)
  all_preferred : bool;  (** true on fully honest completed runs *)
  conserved : bool;  (** no asset was created or destroyed *)
}

val audit :
  ?obs:Trust_obs.Obs.t ->
  ?parent:Trust_obs.Obs.handle ->
  Spec.t ->
  ?plan:Trust_core.Indemnity.plan ->
  ?defectors:Party.t list ->
  Engine.result ->
  report
(** Judge the run. Trusted roles with a persona are skipped (their
    actions are judged as their principal's). Conservation compares
    final holdings against initial endowments moved by the delivered
    actions. [obs]/[parent] attach an ["audit"] span (verdict tallies
    and the four report booleans) to a trace. *)

val pp_report : Format.formatter -> report -> unit
