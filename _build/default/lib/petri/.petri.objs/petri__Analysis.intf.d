lib/petri/analysis.mli: Net
