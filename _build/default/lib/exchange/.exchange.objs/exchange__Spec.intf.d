lib/exchange/spec.mli: Asset Format Party State
