(* Example #2 and Figure 7 (§3.2, §6): a customer needs the text AND the
   diagrams of a patent, sold by different providers through different
   brokers — the all-or-nothing bundle the paper shows to be infeasible,
   and the indemnity mechanism that rescues it.

     dune exec examples/patent_bundle.exe
*)

open Exchange
module Feasibility = Trust_core.Feasibility
module Indemnity = Trust_core.Indemnity

let rule () = print_endline (String.make 72 '-')

let () =
  (* The patent bundle: text from one provider, diagrams from another
     (the paper notes they really are sold separately). *)
  let c = Party.consumer "researcher" in
  let b1 = Party.broker "text-broker" in
  let b2 = Party.broker "diagram-broker" in
  let s1 = Party.producer "uspto-text" in
  let s2 = Party.producer "drawings-inc" in
  let t name = Party.trusted name in
  let spec =
    Spec.make_exn
      ~priorities:
        [
          (b1, { Spec.deal = "text-sale"; side = Spec.Right });
          (b2, { Spec.deal = "diagram-sale"; side = Spec.Right });
        ]
      [
        Spec.sale ~id:"text-buy" ~buyer:b1 ~seller:s1 ~via:(t "esc1")
          ~price:(Asset.dollars 8) ~good:"patent-text";
        Spec.sale ~id:"text-sale" ~buyer:c ~seller:b1 ~via:(t "esc2")
          ~price:(Asset.dollars 10) ~good:"patent-text";
        Spec.sale ~id:"diagram-buy" ~buyer:b2 ~seller:s2 ~via:(t "esc3")
          ~price:(Asset.dollars 16) ~good:"patent-diagrams";
        Spec.sale ~id:"diagram-sale" ~buyer:c ~seller:b2 ~via:(t "esc4")
          ~price:(Asset.dollars 20) ~good:"patent-diagrams";
      ]
  in
  Format.printf "%a@.@." Spec.pp spec;
  let analysis = Feasibility.analyze spec in
  Format.printf "%a@.@." Feasibility.pp_analysis analysis;
  print_endline "blocking conjunctions (who is stuck):";
  List.iter
    (fun p -> Printf.printf "  %s\n" (Party.to_string p))
    (Feasibility.blocking_conjunctions analysis);
  rule ();
  print_endline "rescue by indemnities (section 6):";
  print_newline ();
  (match Feasibility.rescue_with_indemnities spec with
  | None -> print_endline "no rescue found"
  | Some rescue ->
    List.iter (fun plan -> Format.printf "%a@." Indemnity.pp_plan plan) rescue.Feasibility.plans;
    Printf.printf "\ntotal escrowed: %s — exchange now feasible\n"
      (Report.Table.money (Feasibility.total_indemnity rescue));
    (* run it, with the diagram broker absconding after buying *)
    let plan =
      match rescue.Feasibility.plans with [ plan ] -> plan | _ -> failwith "one plan expected"
    in
    rule ();
    print_endline "simulated run with the covered broker defecting mid-way:";
    print_newline ();
    let covered_piece = List.hd plan.Indemnity.offers in
    let defector = covered_piece.Indemnity.offered_by in
    (match
       Trust_sim.Harness.adversarial_run ~plan
         ~defectors:[ (defector, Trust_sim.Harness.Partial 2) ]
         spec
     with
    | Error e -> print_endline e
    | Ok result ->
      Format.printf "%a@.@." Trust_sim.Engine.pp_result result;
      Format.printf "%a@." Trust_sim.Audit.pp_report
        (Trust_sim.Audit.audit spec ~plan ~defectors:[ defector ] result)));
  rule ();
  print_endline "figure 7: ordering indemnities over three documents";
  print_newline ();
  let fig7 = Workload.Scenarios.fig7 in
  let owner = Workload.Scenarios.fig7_consumer in
  Format.printf "worst ordering: %a@." Indemnity.pp_plan (Indemnity.plan_worst fig7 ~owner);
  Format.printf "greedy ordering: %a@." Indemnity.pp_plan (Indemnity.plan_greedy fig7 ~owner)
