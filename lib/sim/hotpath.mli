(** Allocation-free execution of compiled plans.

    The serve-path twin of [Engine.run] + [Exposure.of_result] +
    [Audit.audit]: runs a [Trust_core.Compile.t] instruction plan
    against per-domain scratch arrays, allocating no protocol
    structures per session. Semantics replicate the interpreted
    modules exactly — [Harness.behaviors_for] remains the oracle, and
    test_hotpath property-tests the equivalence over random specs and
    defection batteries. *)

open Exchange

type config = {
  latency : int;
  deadline : int;
  max_events : int;
  drop : (int -> bool) option;
      (** keyed by performed-action sequence number, like
          [Engine.config.drop] *)
}

val default_config : config
(** Matches [Engine.default_config]: latency 1, deadline 1000,
    100_000 events, no drops. *)

type summary = {
  duration : int;  (** latest delivery tick, 0 when nothing was delivered *)
  events : int;
  deliveries : int;
  stalled : int;  (** parked transfers never retried successfully *)
  all_preferred : bool;  (** the audit verdict: Settled when no stalls *)
  preferred : bool array;  (** per judged party, audit order *)
  peak_risk : int array;  (** per principal slot, [Spec.principals] order *)
  risk_ticks : int array;
  violations : int;  (** §5 bound violations among honest principals *)
}

val exec :
  ?config:config -> ?defectors:(Exchange.Party.t * Harness.defection) list ->
  Trust_core.Compile.t -> summary
(** Run the plan and fold exposure + audit over the result, without
    materializing engine structures. Deterministic for a fixed
    (plan, config, defectors). *)

val total_peak_risk : summary -> int
(** Sum of per-principal peaks — equals [Exposure.peak_risk] of the
    interpreted run. *)

val total_risk_ticks : summary -> int

val to_result :
  ?config:config -> ?defectors:(Party.t * Harness.defection) list ->
  Trust_core.Compile.t -> Engine.result
(** Run the plan and materialize a full [Engine.result] (state, log,
    holdings, stalls) — byte-equivalent to the interpreted engine. Used
    by tests and anywhere a caller needs the structured result rather
    than the summary. *)
