test/test_protocol.ml: Action Alcotest Asset Exchange Int64 List Party QCheck2 QCheck_alcotest String Trust_core Workload
