(* Trace analytics: per-phase statistics, critical-path extraction,
   folded stacks and the structural diff — plus the contract that the
   JSONL round trip (export, re-parse) is lossless for everything the
   analytics see. *)

module Obs = Trust_obs.Obs
module Analysis = Trust_obs.Analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* a small two-phase trace with attrs of every value shape *)
let build_trace ?(session = 3) ?(tag = "v") () =
  let obs = Obs.create ~session () in
  Obs.with_span obs ~phase:"outer" "root" (fun root ->
      Obs.attr obs root "s" (Obs.Str ("esc\"ape\n" ^ tag));
      Obs.attr obs root "i" (Obs.Int 42);
      Obs.attr obs root "f" (Obs.Float 1.5);
      Obs.attr obs root "b" (Obs.Bool true);
      Obs.with_span obs ~parent:root ~phase:"inner" "left" (fun h ->
          Obs.event obs h ~attrs:[ ("n", Obs.Int 3) ] "tick");
      Obs.with_span obs ~parent:root ~phase:"inner" "right" (fun _ -> ()));
  obs

let phase_stat a name =
  match
    List.find_opt (fun ps -> ps.Analysis.ps_phase = name) (Analysis.phase_stats a)
  with
  | Some ps -> ps
  | None -> Alcotest.fail ("no phase " ^ name)

(* -- per-phase statistics -- *)

let test_phase_stats () =
  let a = Analysis.of_traces [ build_trace () ] in
  check_int "three spans" 3 (Analysis.span_count a);
  check_int "one event" 1 (Analysis.event_count a);
  Alcotest.(check (list int)) "one session" [ 3 ] (Analysis.sessions a);
  let outer = phase_stat a "outer" and inner = phase_stat a "inner" in
  check_int "one outer span" 1 outer.Analysis.ps_spans;
  check_int "two inner spans" 2 inner.Analysis.ps_spans;
  check_int "event counted on its phase" 1 inner.Analysis.ps_events;
  (* the children occupy sub-ranges of the root, so root self time is
     its total minus everything the inner phase spent *)
  check_int "self = total minus children"
    (outer.Analysis.ps_total_vt - inner.Analysis.ps_total_vt)
    outer.Analysis.ps_self_vt;
  check "self times non-negative" true
    (List.for_all (fun ps -> ps.Analysis.ps_self_vt >= 0) (Analysis.phase_stats a));
  (* rows come out sorted by phase name, deterministically *)
  Alcotest.(check (list string))
    "sorted by phase" [ "inner"; "outer" ]
    (List.map (fun ps -> ps.Analysis.ps_phase) (Analysis.phase_stats a))

(* -- critical path -- *)

let test_critical_path () =
  let obs = Obs.create () in
  Obs.with_span obs ~phase:"p" "root" (fun root ->
      Obs.with_span obs ~parent:root ~phase:"p" "short" (fun _ -> ());
      Obs.with_span obs ~parent:root ~phase:"p" "long" (fun h ->
          Obs.event obs h "e1";
          Obs.event obs h "e2";
          Obs.with_span obs ~parent:h ~phase:"p" "leaf" (fun _ -> ())));
  let a = Analysis.of_traces [ obs ] in
  let path = Analysis.critical_path a in
  Alcotest.(check (list string))
    "descends into the longest child" [ "root"; "long"; "leaf" ]
    (List.map (fun st -> st.Analysis.st_name) path);
  List.iter (fun st -> check "self non-negative" true (st.Analysis.st_self >= 0)) path;
  (* each step nests inside its parent's vt range *)
  ignore
    (List.fold_left
       (fun parent st ->
         (match parent with
         | Some (p : Analysis.path_step) ->
           check "nested start" true (st.Analysis.st_start >= p.Analysis.st_start);
           check "nested stop" true (st.Analysis.st_stop <= p.Analysis.st_stop)
         | None -> ());
         Some st)
       None path);
  check_int "empty set has no path" 0 (List.length (Analysis.critical_path (Analysis.of_views [])))

(* -- folded stacks -- *)

let test_folded_accounts_for_everything () =
  let a = Analysis.of_traces [ build_trace () ] in
  let folded = Analysis.folded a in
  let self_total =
    List.fold_left
      (fun acc line ->
        match String.rindex_opt line ' ' with
        | None -> acc
        | Some i ->
          acc + int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
      0
      (List.filter (( <> ) "") (String.split_on_char '\n' folded))
  in
  let stats_total =
    List.fold_left (fun acc ps -> acc + ps.Analysis.ps_self_vt) 0 (Analysis.phase_stats a)
  in
  (* the flamegraph conserves time: line counts sum to the same total
     virtual time the per-phase self columns account for *)
  check_int "folded self times sum to the stats total" stats_total self_total;
  check "stacks start at the root" true
    (List.for_all
       (fun line -> line = "" || String.length line >= 4 && String.sub line 0 4 = "root")
       (String.split_on_char '\n' folded))

(* -- structural diff -- *)

let test_diff_identical_is_empty () =
  let a = Analysis.of_traces [ build_trace () ] in
  let b = Analysis.of_traces [ build_trace () ] in
  check_int "same ops diff empty" 0 (List.length (Analysis.diff a b));
  check_int "reflexive diff empty" 0 (List.length (Analysis.diff a a));
  check_string "empty diff renders empty" "" (Analysis.render_diff (Analysis.diff a a))

let test_diff_reports_changes () =
  let a = Analysis.of_traces [ build_trace ~tag:"v1" () ] in
  let b = Analysis.of_traces [ build_trace ~tag:"v2" () ] in
  (match Analysis.diff a b with
  | [ Analysis.Changed (path, what) ] ->
    check "names the root span" true (String.length path > 0);
    check "names the attr" true
      (let contains h n =
         let hn = String.length h and nn = String.length n in
         let rec at i = i + nn <= hn && (String.sub h i nn = n || at (i + 1)) in
         at 0
       in
       contains what "s ")
  | d -> Alcotest.fail (Printf.sprintf "expected one Changed entry, got %d" (List.length d)));
  (* an extra span shows up as only-in-one, not as noise on the rest *)
  let wide = Obs.create ~session:3 () in
  Obs.with_span wide ~phase:"outer" "root" (fun root ->
      Obs.with_span wide ~parent:root ~phase:"inner" "left" (fun _ -> ());
      Obs.with_span wide ~parent:root ~phase:"inner" "extra" (fun _ -> ()));
  let narrow = Obs.create ~session:3 () in
  Obs.with_span narrow ~phase:"outer" "root" (fun root ->
      Obs.with_span narrow ~parent:root ~phase:"inner" "left" (fun _ -> ()));
  let d =
    Analysis.diff (Analysis.of_traces [ narrow ]) (Analysis.of_traces [ wide ])
  in
  check "extra span reported as only-right" true
    (List.exists (function Analysis.Only_right _ -> true | _ -> false) d)

(* -- JSONL round trip: re-parsed analytics equal in-memory analytics -- *)

let test_jsonl_roundtrip () =
  let traces = [ build_trace ~session:1 (); build_trace ~session:2 ~tag:"w" () ] in
  let direct = Analysis.of_traces traces in
  let exported = Obs.export ~producer:"test" Obs.Jsonl traces in
  match Analysis.of_jsonl exported with
  | Error m -> Alcotest.fail m
  | Ok reparsed ->
    check_int "same spans" (Analysis.span_count direct) (Analysis.span_count reparsed);
    check_int "same events" (Analysis.event_count direct) (Analysis.event_count reparsed);
    Alcotest.(check (list int))
      "same sessions" (Analysis.sessions direct) (Analysis.sessions reparsed);
    check_string "same folded stacks" (Analysis.folded direct) (Analysis.folded reparsed);
    check_int "structurally identical" 0 (List.length (Analysis.diff direct reparsed))

let test_jsonl_errors () =
  (match Analysis.of_jsonl "not json at all" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error m ->
    check "error carries the line number" true
      (String.length m >= 7 && String.sub m 0 7 = "line 1:"));
  match Analysis.of_jsonl "" with
  | Ok a -> check_int "empty input, empty analysis" 0 (Analysis.span_count a)
  | Error m -> Alcotest.fail m

(* -- the real pipeline: re-parsed batch export matches the registry -- *)

let test_batch_export_roundtrip () =
  let module Service = Trust_serve.Service in
  let outcome =
    Service.run { Service.default with Service.sessions = 20; seed = 19L; trace = true }
  in
  let traces = Obs.batch_traces outcome.Service.obs in
  let direct = Analysis.of_traces traces in
  (match Analysis.of_jsonl (Obs.export Obs.Jsonl traces) with
  | Error m -> Alcotest.fail m
  | Ok reparsed ->
    check_int "round trip structurally identical" 0
      (List.length (Analysis.diff direct reparsed)));
  check_int "one session per trace" 20 (List.length (Analysis.sessions direct))

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "per-phase statistics" `Quick test_phase_stats;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "folded conserves time" `Quick test_folded_accounts_for_everything;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical traces" `Quick test_diff_identical_is_empty;
          Alcotest.test_case "reported changes" `Quick test_diff_reports_changes;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "errors and empties" `Quick test_jsonl_errors;
          Alcotest.test_case "batch export round trip" `Quick test_batch_export_roundtrip;
        ] );
    ]
