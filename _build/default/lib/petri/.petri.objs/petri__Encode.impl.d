lib/petri/encode.ml: Analysis Array List Net Printf Trust_core
