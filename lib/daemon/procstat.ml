let field_kb name =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> 0
  | text ->
    let prefix = name ^ ":" in
    let rec find = function
      | [] -> 0
      | line :: rest ->
        if String.starts_with ~prefix line then
          (* "VmRSS:     123456 kB" *)
          let digits =
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          if digits = "" then 0 else int_of_string digits
        else find rest
    in
    find (String.split_on_char '\n' text)

let rss_kb () = field_kb "VmRSS"
let peak_rss_kb () = field_kb "VmHWM"
