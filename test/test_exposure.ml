(* The exposure ledger: §5's protection invariant made observable.

   The paper's claim is that a feasible protocol never leaves an honest
   principal with more than one transfer's worth of value at risk, and
   leaves none at the end. These tests pin the ledger to the worked
   examples — mediated exchange shows zero principal exposure with the
   value sitting in escrow at the agent, direct trust opens a risk
   window exactly as wide as the single-transfer bound — then sweep the
   invariant over generated workloads and check that adversarial runs
   flag the violating party at the violating tick. *)

module E = Trust_sim.Exposure
module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Indemnity = Trust_core.Indemnity
module Obs = Trust_obs.Obs
module S = Workload.Scenarios
module Gen = Workload.Gen
module Prng = Workload.Prng
open Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ledger ?plan ?(defectors = []) spec =
  match Harness.adversarial_run ?plan ~defectors spec with
  | Error m -> Alcotest.fail m
  | Ok result ->
    (* the ledger judges the split spec, like the audit (§6) *)
    let split = match plan with Some p -> Indemnity.apply p spec | None -> spec in
    (E.of_result ?plan ~defectors:(List.map fst defectors) split result, result)

let party_ledger (x : E.t) name =
  match List.find_opt (fun (l : E.party_ledger) -> Party.name l.E.party = name) x.E.parties with
  | Some l -> l
  | None -> Alcotest.fail ("no party ledger for " ^ name)

(* -- worked example: mediated exchange, zero principal exposure -- *)

let test_mediated_zero_exposure () =
  let x, _ = ledger S.simple_sale in
  check_int "no violations" 0 (List.length x.E.violations);
  List.iter
    (fun (l : E.party_ledger) ->
      check_int (Party.name l.E.party ^ " never at risk") 0 l.E.peak_at_risk;
      check_int (Party.name l.E.party ^ " no risk ticks") 0 l.E.risk_ticks;
      check (Party.name l.E.party ^ " value moved through escrow") true
        (l.E.peak_in_escrow > 0);
      check_int (Party.name l.E.party ^ " escrow drained") 0 l.E.final.E.in_escrow)
    x.E.parties;
  (* the value shows up in the agent's custody ledger instead *)
  check "agent held custody" true
    (List.exists (fun (a : E.agent_ledger) -> a.E.peak_custody > 0) x.E.agents);
  List.iter
    (fun (a : E.agent_ledger) -> check_int "custody drained" 0 a.E.final_custody)
    x.E.agents

let test_example1_escrow_peaks () =
  let x, _ = ledger S.example1 in
  check_int "no violations" 0 (List.length x.E.violations);
  let expect name escrow =
    let l = party_ledger x name in
    check_int (name ^ " at-risk peak") 0 l.E.peak_at_risk;
    check_int (name ^ " escrow peak") escrow l.E.peak_in_escrow
  in
  (* Fig. 4: b buys at $8 and sells at $10, p supplies the $8 good *)
  expect "b" 800;
  expect "p" 800;
  expect "c" 1000

(* -- worked example: direct trust opens a window = the §5 bound -- *)

let test_direct_trust_window () =
  let x, _ = ledger S.simple_sale_direct in
  check_int "no violations" 0 (List.length x.E.violations);
  let c = party_ledger x "c" in
  let bound = E.single_transfer_bound S.simple_sale_direct c.E.party in
  check "consumer has a positive bound" true (bound > 0);
  check_int "window exactly the single-transfer bound" bound c.E.peak_at_risk;
  check "a real risk window" true (c.E.risk_ticks >= 1);
  check_int "settled by the end" 0 c.E.final.E.at_risk;
  (* the trusting party pays first; the trusted one is never exposed *)
  check_int "producer never at risk" 0 (party_ledger x "p").E.peak_at_risk;
  check "deal window recorded" true
    (List.exists
       (fun (d : E.deal_summary) ->
         Party.equal d.E.d_party c.E.party && d.E.d_peak = bound && d.E.d_first >= 0
         && d.E.d_last >= d.E.d_first)
       x.E.deals)

(* -- worked example: §6 indemnities keep everyone at zero risk -- *)

let test_indemnified_rescue () =
  match Indemnity.rescued_run S.example2 ~owner:S.example2_consumer with
  | None -> Alcotest.fail "example2 rescue failed"
  | Some (plan, _) ->
    let x, _ = ledger ~plan S.example2 in
    check_int "no violations" 0 (List.length x.E.violations);
    List.iter
      (fun (l : E.party_ledger) ->
        check_int (Party.name l.E.party ^ " never at risk") 0 l.E.peak_at_risk)
      x.E.parties;
    check "somebody posted a deposit" true
      (List.exists (fun (l : E.party_ledger) -> l.E.peak_deposits > 0) x.E.parties);
    List.iter
      (fun (l : E.party_ledger) ->
        check_int (Party.name l.E.party ^ " deposits settled") 0 l.E.final.E.deposits)
      x.E.parties

(* -- adversarial: the defrauded party is flagged at the right tick -- *)

let test_adversarial_unsettled () =
  let defectors = [ (Party.producer "p", Harness.Silent) ] in
  let x, result = ledger ~defectors S.simple_sale_direct in
  (match x.E.violations with
  | [ { E.v_party; v_at; v_kind = E.Unsettled { residual } } ] ->
    check "the trusting consumer is the victim" true (Party.equal v_party (Party.consumer "c"));
    let c = party_ledger x "c" in
    check_int "residual is the whole payment" c.E.peak_at_risk residual;
    (* the flagged tick is the delivery tick of the payment that was
       never reciprocated — cross-checked against the engine log *)
    let payment_tick =
      List.find_map
        (fun (d : Engine.delivery) ->
          match d.Engine.action with
          | Action.Do { Action.source; asset = Asset.Money _; _ }
            when Party.equal source (Party.consumer "c") ->
            Some d.Engine.at
          | _ -> None)
        result.Engine.log
    in
    check_int "flagged at the payment's delivery tick"
      (Option.get payment_tick) v_at
  | vs ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one unsettled violation, got %d" (List.length vs)));
  (* the defector itself is exempt from invariant checking *)
  check "no violation blames the defector" true
    (List.for_all
       (fun v -> not (Party.equal v.E.v_party (Party.producer "p")))
       x.E.violations)

let test_adversarial_mediated_protects () =
  (* with an escrow in the middle, a defector hurts only itself: the
     deadline unwind returns everyone's custody (§2.2) *)
  List.iter
    (fun defectors ->
      let x, _ = ledger ~defectors S.example1 in
      check_int "no violations" 0 (List.length x.E.violations);
      List.iter
        (fun (l : E.party_ledger) ->
          if not (List.exists (fun (p, _) -> Party.equal p l.E.party) defectors) then begin
            check_int (Party.name l.E.party ^ " never at risk") 0 l.E.peak_at_risk;
            check_int (Party.name l.E.party ^ " made whole") 0 l.E.final.E.at_risk
          end)
        x.E.parties)
    [
      [ (Party.consumer "c", Harness.Silent) ];
      [ (Party.broker "b", Harness.Partial 1) ];
    ]

(* -- property: honest feasible runs never violate the bound -- *)

let test_property_honest_runs_bounded () =
  let rng = Prng.create 2024L in
  let specs = Gen.random_transactions rng Gen.default_mix 150 in
  let feasible = ref 0 in
  List.iteri
    (fun i spec ->
      match Harness.honest_run spec with
      | Error _ -> ()
      | Ok result ->
        incr feasible;
        let x = E.of_result spec result in
        if x.E.violations <> [] then
          Alcotest.fail
            (Format.asprintf "spec %d: honest run violated the invariant:@.%a" i E.pp x);
        List.iter
          (fun (l : E.party_ledger) ->
            check (Printf.sprintf "spec %d: %s within bound" i (Party.name l.E.party)) true
              (l.E.peak_at_risk <= l.E.bound);
            check_int (Printf.sprintf "spec %d: %s settled" i (Party.name l.E.party)) 0
              l.E.final.E.at_risk)
          x.E.parties)
    specs;
  check "enough feasible specs to mean something" true (!feasible >= 100)

(* -- the ledger rides on the trace as a structured span -- *)

let test_record_span () =
  let contains haystack needle =
    let n = String.length haystack and k = String.length needle in
    let rec at i = i + k <= n && (String.sub haystack i k = needle || at (i + 1)) in
    at 0
  in
  let defectors = [ (Party.producer "p", Harness.Silent) ] in
  let x, _ = ledger ~defectors S.simple_sale_direct in
  let obs = Obs.create () in
  E.record obs x;
  let out = Obs.export Obs.Jsonl [ obs ] in
  check "exposure phase" true (contains out "\"phase\":\"exposure\"");
  check "summary attrs" true (contains out "\"peak_at_risk\":");
  check "per-party attr" true (contains out "\"peak_at_risk.c\":");
  check "violation event" true (contains out "\"name\":\"violation\"");
  check "violation kind" true (contains out "\"kind\":\"unsettled\"");
  check "null sink records nothing" true (Obs.export Obs.Jsonl [ Obs.null ] = "")

(* -- the serve layer aggregates the same numbers per session -- *)

let test_serve_exposure_tally () =
  let module Service = Trust_serve.Service in
  let module Session = Trust_serve.Session in
  let outcome =
    Service.run
      {
        Service.default with
        Service.sessions = 40;
        seed = 19L;
        defect_every = Some 8;
        mix = { Gen.default_mix with Gen.trust_density = 0.5 };
      }
  in
  let t = Service.exposure_tally outcome.Service.sessions in
  check "direct-trust sessions were exposed" true (t.Service.at_risk_sessions > 0);
  check "risk ticks accumulated" true (t.Service.risk_ticks > 0);
  let max_peak =
    List.fold_left
      (fun acc (s : Session.t) -> max acc s.Session.exposure_peak)
      0 outcome.Service.sessions
  in
  check_int "tally peak is the per-session max" max_peak t.Service.peak;
  let contains haystack needle =
    let n = String.length haystack and k = String.length needle in
    let rec at i = i + k <= n && (String.sub haystack i k = needle || at (i + 1)) in
    at 0
  in
  check "batch json carries the aggregates" true
    (contains (Service.json outcome) "\"exposure\":{\"peak_at_risk\":")

let () =
  Alcotest.run "exposure"
    [
      ( "worked examples",
        [
          Alcotest.test_case "mediated: zero principal exposure" `Quick
            test_mediated_zero_exposure;
          Alcotest.test_case "example1: escrow peaks" `Quick test_example1_escrow_peaks;
          Alcotest.test_case "direct trust: window = bound" `Quick test_direct_trust_window;
          Alcotest.test_case "indemnified rescue: zero risk" `Quick test_indemnified_rescue;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "unsettled flagged at the right tick" `Quick
            test_adversarial_unsettled;
          Alcotest.test_case "escrow protects the honest" `Quick
            test_adversarial_mediated_protects;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "honest runs bounded (150 specs)" `Quick
            test_property_honest_runs_bounded;
        ] );
      ( "integration",
        [
          Alcotest.test_case "record emits a structured span" `Quick test_record_span;
          Alcotest.test_case "serve tally" `Quick test_serve_exposure_tally;
        ] );
    ]
