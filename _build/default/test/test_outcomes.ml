(* Generated acceptability: the structural checker, the explicit
   description sets, and their agreement. *)

open Exchange

let check = Alcotest.(check bool)

let c = Party.consumer "c"
let p = Party.producer "p"
let t = Party.trusted "t"
let spec = Workload.Scenarios.simple_sale

let cref = { Spec.deal = "cp"; side = Spec.Left }
let pay = Action.pay c t (Asset.dollars 10)
let give = Action.give p t "d"
let fwd_doc = Action.give t c "d"
let fwd_money = Action.pay t p (Asset.dollars 10)

let classify actions = Outcomes.classify spec ~party:c cref (State.of_actions actions)

let outcome = Alcotest.testable Outcomes.pp_deal_outcome ( = )

let test_classify_nothing () =
  Alcotest.check outcome "empty" Outcomes.Nothing (classify [])

let test_classify_complete () =
  Alcotest.check outcome "paid and received" Outcomes.Complete (classify [ pay; fwd_doc ])

let test_classify_refunded () =
  Alcotest.check outcome "refund" Outcomes.Refunded (classify [ pay; Action.undo pay ])

let test_classify_windfall () =
  Alcotest.check outcome "free doc" Outcomes.Windfall (classify [ fwd_doc ])

let test_classify_loss () =
  Alcotest.check outcome "paid into the void" Outcomes.Loss (classify [ pay ])

let test_classify_receive_sources () =
  (* receiving from the counterparty directly also counts *)
  Alcotest.check outcome "direct from producer" Outcomes.Complete
    (classify [ pay; Action.give p c "d" ])

let test_acceptable_simple () =
  let acceptable actions = Outcomes.acceptable spec ~party:c (State.of_actions actions) in
  check "complete" true (acceptable [ pay; fwd_doc ]);
  check "status quo" true (acceptable []);
  check "loss" false (acceptable [ pay ]);
  check "refund" true (acceptable [ pay; Action.undo pay ])

let test_trusted_conduit () =
  let acceptable actions = Outcomes.acceptable spec ~party:t (State.of_actions actions) in
  check "conduit" true (acceptable [ pay; give; fwd_doc; fwd_money ]);
  check "status quo" true (acceptable []);
  check "absconding" false (acceptable [ pay; give ]);
  check "backout" true (acceptable [ pay; Action.undo pay ])

let test_preferred () =
  check "all complete" true
    (Outcomes.preferred_reached spec ~party:c (State.of_actions [ pay; fwd_doc ]));
  check "refund not preferred" false
    (Outcomes.preferred_reached spec ~party:c (State.of_actions [ pay; Action.undo pay ]))

(* bundle semantics: example 2 consumer wants both documents *)

let ex2 = Workload.Scenarios.example2
let c2 = Workload.Scenarios.example2_consumer
let pay1 = Action.pay c2 (Party.trusted "t1") (Asset.dollars 10)
let pay2 = Action.pay c2 (Party.trusted "t3") (Asset.dollars 20)
let got1 = Action.give (Party.trusted "t1") c2 "d1"
let got2 = Action.give (Party.trusted "t3") c2 "d2"

let bundle_acceptable actions = Outcomes.acceptable ex2 ~party:c2 (State.of_actions actions)

let test_bundle_all_or_nothing () =
  check "both documents" true (bundle_acceptable [ pay1; got1; pay2; got2 ]);
  check "nothing" true (bundle_acceptable []);
  check "one of two rejected" false (bundle_acceptable [ pay1; got1; pay2; Action.undo pay2 ]);
  check "one complete one pending rejected" false (bundle_acceptable [ pay1; got1 ]);
  check "both refunded" true
    (bundle_acceptable [ pay1; Action.undo pay1; pay2; Action.undo pay2 ])

let test_bundle_windfalls () =
  check "both free" true (bundle_acceptable [ got1; got2 ]);
  check "one free, one refunded" true (bundle_acceptable [ got1; pay2; Action.undo pay2 ]);
  check "one free, one complete" true (bundle_acceptable [ got1; pay2; got2 ])

(* split semantics *)

let split_spec = Workload.Scenarios.example2_broker1_indemnifies

let test_split_judged_independently () =
  let acceptable actions = Outcomes.acceptable split_spec ~party:c2 (State.of_actions actions) in
  (* piece 1 is split: completing only piece 2 is now fine *)
  check "piece 2 alone ok" true (acceptable [ pay2; got2 ]);
  (* but a refund on the split piece without the payout is not *)
  check "split refund needs payout" false (acceptable [ pay1; Action.undo pay1; pay2; got2 ]);
  (* with the indemnity payout (>= $20, the cost of the other piece) it is *)
  let payout = Action.pay (Party.trusted "t1") c2 (Asset.dollars 20) in
  check "payout rescues" true (acceptable [ pay1; Action.undo pay1; payout; pay2; got2 ])

let test_classify_indemnified () =
  let payout = Action.pay (Party.trusted "t1") c2 (Asset.dollars 20) in
  let state = State.of_actions [ pay1; Action.undo pay1; payout ] in
  Alcotest.check outcome "indemnified" Outcomes.Indemnified
    (Outcomes.classify split_spec ~party:c2 (Workload.Scenarios.example2_sale_ref 1) state);
  (* an insufficient payout does not count *)
  let small = Action.pay (Party.trusted "t1") c2 (Asset.dollars 19) in
  let state' = State.of_actions [ pay1; Action.undo pay1; small ] in
  Alcotest.check outcome "small payout is just a refund" Outcomes.Refunded
    (Outcomes.classify split_spec ~party:c2 (Workload.Scenarios.example2_sale_ref 1) state')

let test_extraneous_loss () =
  (* an un-refunded transfer outside any deal (a lost deposit) is a loss *)
  let stray = Action.pay c t (Asset.dollars 50) in
  check "stray deposit" false (Outcomes.acceptable spec ~party:c (State.of_actions [ stray ]));
  check "returned deposit ok" true
    (Outcomes.acceptable spec ~party:c (State.of_actions [ stray; Action.undo stray ]))

(* explicit descriptions *)

let test_descriptions_simple () =
  let acc = Outcomes.descriptions spec c in
  check "four-ish outcomes" true (List.length acc.State.descriptions >= 4);
  check "complete accepted" true
    (State.acceptable acc ~party:c (State.of_actions [ pay; fwd_doc ]));
  check "loss rejected" false (State.acceptable acc ~party:c (State.of_actions [ pay ]))

let test_descriptions_bound () =
  let wide = Workload.Gen.bundle ~docs:10 in
  Alcotest.check_raises "bound enforced"
    (Invalid_argument "Outcomes.descriptions: 59049 descriptions exceed the 20000 bound")
    (fun () -> ignore (Outcomes.descriptions ~max_size:20_000 wide (Party.consumer "c")))

let test_override_respected () =
  let veto = State.{ descriptions = []; preferred = describes [] } in
  let spec' = Spec.with_override c veto spec in
  check "override wins" false (Outcomes.acceptable spec' ~party:c State.empty)

(* agreement between the two implementations over protocol-shaped states *)

let prop_descriptions_agree =
  QCheck2.Test.make
    ~name:"structural checker agrees with explicit descriptions on protocol prefixes" ~count:150
    QCheck2.Gen.(pair (oneofl [ "simple_sale"; "example1"; "example2" ]) (int_range 0 40))
    (fun (name, prefix_len) ->
      let spec = List.assoc name Workload.Scenarios.all in
      (* A physically meaningful state: a prefix of a valid execution of
         the feasible variant (or of example2's rescued variant). *)
      let runnable =
        match Trust_core.Feasibility.rescue_with_indemnities spec with
        | Some rescue -> rescue.Trust_core.Feasibility.analysis.Trust_core.Feasibility.spec
        | None -> spec
      in
      match (Trust_core.Feasibility.analyze runnable).Trust_core.Feasibility.sequence with
      | None -> true
      | Some seq ->
        let actions = Trust_core.Execution.actions seq in
        let prefix = List.filteri (fun i _ -> i < prefix_len) actions in
        let state = State.of_actions prefix in
        List.for_all
          (fun party ->
            match Outcomes.descriptions ~max_size:20_000 runnable party with
            | exception Invalid_argument _ -> true
            | acc ->
              State.acceptable acc ~party state = Outcomes.acceptable runnable ~party state)
          (Spec.principals runnable))

let () =
  Alcotest.run "outcomes"
    [
      ( "classification",
        [
          Alcotest.test_case "nothing" `Quick test_classify_nothing;
          Alcotest.test_case "complete" `Quick test_classify_complete;
          Alcotest.test_case "refunded" `Quick test_classify_refunded;
          Alcotest.test_case "windfall" `Quick test_classify_windfall;
          Alcotest.test_case "loss" `Quick test_classify_loss;
          Alcotest.test_case "receive sources" `Quick test_classify_receive_sources;
          Alcotest.test_case "indemnified" `Quick test_classify_indemnified;
        ] );
      ( "acceptability",
        [
          Alcotest.test_case "simple sale" `Quick test_acceptable_simple;
          Alcotest.test_case "trusted conduit" `Quick test_trusted_conduit;
          Alcotest.test_case "preferred" `Quick test_preferred;
          Alcotest.test_case "bundle all-or-nothing" `Quick test_bundle_all_or_nothing;
          Alcotest.test_case "bundle windfalls" `Quick test_bundle_windfalls;
          Alcotest.test_case "split independence" `Quick test_split_judged_independently;
          Alcotest.test_case "extraneous loss" `Quick test_extraneous_loss;
        ] );
      ( "descriptions",
        [
          Alcotest.test_case "simple sale descriptions" `Quick test_descriptions_simple;
          Alcotest.test_case "size bound" `Quick test_descriptions_bound;
          Alcotest.test_case "override respected" `Quick test_override_respected;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_descriptions_agree ]);
    ]
