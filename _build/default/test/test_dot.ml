module Digraph = Trust_graph.Digraph
module Dot = Trust_graph.Dot

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  ln = 0 || scan 0

let check_contains msg haystack needle =
  Alcotest.(check bool) (msg ^ ": contains " ^ needle) true (contains haystack needle)

let sample () =
  let g = Digraph.create () in
  let _ = Digraph.add_nodes g 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  g

let test_directed () =
  let dot = Dot.render ~name:"sample" (sample ()) in
  check_contains "header" dot "digraph \"sample\"";
  check_contains "edge" dot "n0 -> n1";
  check_contains "closing" dot "}"

let test_undirected () =
  let dot = Dot.render ~undirected:true (sample ()) in
  check_contains "graph kw" dot "graph \"g\"";
  check_contains "undirected edge" dot "n1 -- n2"

let test_attrs () =
  let dot =
    Dot.render
      ~node_attrs:(fun v -> [ ("label", Printf.sprintf "node-%d" v); ("shape", "box") ])
      ~edge_attrs:(fun u v -> [ ("label", Printf.sprintf "%d>%d" u v) ])
      ~graph_attrs:[ ("rankdir", "LR") ]
      (sample ())
  in
  check_contains "node label" dot "label=\"node-2\"";
  check_contains "shape" dot "shape=\"box\"";
  check_contains "edge label" dot "label=\"0>1\"";
  check_contains "graph attr" dot "rankdir=\"LR\""

let test_escape () =
  Alcotest.(check string) "quotes" "say \\\"hi\\\"" (Dot.escape "say \"hi\"");
  Alcotest.(check string) "backslash" "a\\\\b" (Dot.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Dot.escape "a\nb");
  Alcotest.(check string) "plain" "plain" (Dot.escape "plain")

let test_escaped_in_render () =
  let g = Digraph.create () in
  let _ = Digraph.add_node g in
  let dot = Dot.render ~node_attrs:(fun _ -> [ ("label", "a\"b") ]) g in
  check_contains "escaped label" dot "label=\"a\\\"b\""

let () =
  Alcotest.run "dot"
    [
      ( "render",
        [
          Alcotest.test_case "directed graph" `Quick test_directed;
          Alcotest.test_case "undirected graph" `Quick test_undirected;
          Alcotest.test_case "attributes" `Quick test_attrs;
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "labels escaped in output" `Quick test_escaped_in_render;
        ] );
    ]
