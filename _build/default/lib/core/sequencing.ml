open Exchange

type colour = Red | Black

type commitment = {
  cid : int;
  cref : Spec.commitment_ref;
  principal : Party.t;
  agent : Party.t;
}

type conjunction = { jid : int; owner : Party.t; scope : string option }

type t = {
  spec : Spec.t;
  commitments : commitment array;
  conjunctions : conjunction array;
  c_edges : (int * colour) list array;  (* per commitment: (jid, colour) *)
  j_edges : (int * colour) list array;  (* per conjunction: (cid, colour) *)
  mutable n_edges : int;
}

let spec t = t.spec
let commitments t = t.commitments
let conjunctions t = t.conjunctions
let commitment_count t = Array.length t.commitments
let conjunction_count t = Array.length t.conjunctions
let commitment t cid = t.commitments.(cid)
let conjunction t jid = t.conjunctions.(jid)

let conjunction_of_party t party =
  Array.fold_left
    (fun found j -> if Party.equal j.owner party then Some j else found)
    None t.conjunctions

let build ?(granular = false) spec =
  let commitments =
    Array.of_list
      (List.mapi
         (fun cid (cref, d) ->
           {
             cid;
             cref;
             principal = Spec.commitment_principal d cref.Spec.side;
             agent = d.Spec.via;
           })
         (Spec.commitments spec))
  in
  let conjunction_specs =
    List.concat_map
      (fun owner ->
        if granular && Party.is_trusted owner then
          let deals =
            List.filter (fun d -> Party.equal d.Spec.via owner) spec.Spec.deals
          in
          match deals with
          | _ :: _ :: _ -> List.map (fun d -> (owner, Some d.Spec.id)) deals
          | _ -> [ (owner, None) ]
        else [ (owner, None) ])
      (Spec.internal_parties spec)
  in
  let conjunctions =
    Array.of_list (List.mapi (fun jid (owner, scope) -> { jid; owner; scope }) conjunction_specs)
  in
  let t =
    {
      spec;
      commitments;
      conjunctions;
      c_edges = Array.make (Array.length commitments) [];
      j_edges = Array.make (Array.length conjunctions) [];
      n_edges = 0;
    }
  in
  let add_edge cid jid colour =
    t.c_edges.(cid) <- t.c_edges.(cid) @ [ (jid, colour) ];
    t.j_edges.(jid) <- t.j_edges.(jid) @ [ (cid, colour) ];
    t.n_edges <- t.n_edges + 1
  in
  let connect c j =
    if not (Spec.is_split spec j.owner c.cref) then begin
      let colour = if Spec.is_priority spec j.owner c.cref then Red else Black in
      add_edge c.cid j.jid colour
    end
  in
  let in_scope c j =
    match j.scope with None -> true | Some deal -> String.equal deal c.cref.Spec.deal
  in
  (* index conjunctions by owner so construction is linear in edges *)
  let by_owner = Hashtbl.create (Array.length conjunctions) in
  Array.iter
    (fun j ->
      let key = Party.to_string j.owner in
      Hashtbl.replace by_owner key
        (Option.value ~default:[] (Hashtbl.find_opt by_owner key) @ [ j ]))
    conjunctions;
  let conjunctions_of party =
    Option.value ~default:[] (Hashtbl.find_opt by_owner (Party.to_string party))
  in
  Array.iter
    (fun c ->
      List.iter
        (fun j -> if in_scope c j then connect c j)
        (conjunctions_of c.principal @ conjunctions_of c.agent))
    commitments;
  t

let copy t =
  {
    t with
    c_edges = Array.copy t.c_edges;
    j_edges = Array.copy t.j_edges;
  }

let edges_of_commitment t cid = t.c_edges.(cid)
let edges_of_conjunction t jid = t.j_edges.(jid)

let edge_colour t ~cid ~jid =
  List.fold_left
    (fun found (j, colour) -> if j = jid then Some colour else found)
    None t.c_edges.(cid)

let edge_count t = t.n_edges

let remove_edge t ~cid ~jid =
  match edge_colour t ~cid ~jid with
  | None -> ()
  | Some _ ->
    t.c_edges.(cid) <- List.filter (fun (j, _) -> j <> jid) t.c_edges.(cid);
    t.j_edges.(jid) <- List.filter (fun (c, _) -> c <> cid) t.j_edges.(jid);
    t.n_edges <- t.n_edges - 1

let commitment_fringe t cid = List.length t.c_edges.(cid) <= 1
let conjunction_fringe t jid = List.length t.j_edges.(jid) <= 1

let red_sibling t ~cid ~jid =
  List.fold_left
    (fun found (c, colour) ->
      if c <> cid && colour = Red then Some c else found)
    None t.j_edges.(jid)

let plays_own_agent t cid = Spec.plays_own_agent t.spec t.commitments.(cid).cref

let is_disconnected_commitment t cid = t.c_edges.(cid) = []
let is_disconnected_conjunction t jid = t.j_edges.(jid) = []
let fully_reduced t = t.n_edges = 0

let check_invariants t =
  let result = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !result = Ok () then result := Error s) fmt in
  (* Edge symmetry *)
  Array.iteri
    (fun cid edges ->
      List.iter
        (fun (jid, colour) ->
          if jid < 0 || jid >= Array.length t.conjunctions then
            fail "commitment %d has edge to bogus conjunction %d" cid jid
          else if not (List.mem (cid, colour) t.j_edges.(jid)) then
            fail "edge (%d, %d) missing from conjunction side" cid jid)
        edges)
    t.c_edges;
  Array.iteri
    (fun jid edges ->
      List.iter
        (fun (cid, colour) ->
          if cid < 0 || cid >= Array.length t.commitments then
            fail "conjunction %d has edge to bogus commitment %d" jid cid
          else if not (List.mem (jid, colour) t.c_edges.(cid)) then
            fail "edge (%d, %d) missing from commitment side" cid jid)
        edges)
    t.j_edges;
  (* Commitment degree *)
  Array.iteri
    (fun cid edges ->
      if List.length edges > 2 then fail "commitment %d has degree %d" cid (List.length edges))
    t.c_edges;
  (* Endpoint parties and colours *)
  Array.iteri
    (fun cid edges ->
      let c = t.commitments.(cid) in
      List.iter
        (fun (jid, colour) ->
          let owner = t.conjunctions.(jid).owner in
          if not (Party.equal owner c.principal || Party.equal owner c.agent) then
            fail "edge (%d, %d): %a is no endpoint of %a" cid jid Party.pp owner Spec.pp_ref
              c.cref;
          let expected = if Spec.is_priority t.spec owner c.cref then Red else Black in
          if colour <> expected then fail "edge (%d, %d) has wrong colour" cid jid)
        edges)
    t.c_edges;
  !result

(* Bundle conjunctions one agent can coordinate atomically: the owner
   holds several own-side pieces, nobody marked any of those deals'
   commitments red (the counterparties run no resale risk), and every
   piece flows through the same non-persona agent. *)
let coordinated_bundles spec =
  List.filter_map
    (fun owner ->
      if not (Party.is_principal owner) then None
      else begin
        let pieces =
          List.filter_map
            (fun cref ->
              match Spec.find_deal spec cref.Spec.deal with
              | Some d when Party.equal (Spec.commitment_principal d cref.Spec.side) owner ->
                Some (cref, d)
              | Some _ | None -> None)
            (Spec.linked_commitments_of spec owner)
        in
        if List.length pieces < 2 then None
        else begin
          let red_free (cref, _) =
            let counterpart = { Spec.deal = cref.Spec.deal; side = Spec.other_side cref.Spec.side } in
            let marked c =
              List.exists (fun (o, c') -> ignore o; Spec.equal_ref c' c) spec.Spec.priorities
            in
            (not (marked cref)) && not (marked counterpart)
          in
          match pieces with
          | (_, first) :: rest
            when List.for_all red_free pieces
                 && Spec.persona_of spec first.Spec.via = None
                 && List.for_all
                      (fun (_, d) -> Party.equal d.Spec.via first.Spec.via)
                      rest ->
            Some (owner, first.Spec.via)
          | _ -> None
        end
      end)
    (Spec.internal_parties spec)

let pp_colour ppf colour =
  Format.pp_print_string ppf (match colour with Red -> "red" | Black -> "black")

let commitment_label c =
  Printf.sprintf "%s | %s" (Party.name c.agent) (Party.name c.principal)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph sequencing {\n  rankdir=LR;\n";
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  c%d [shape=hexagon, label=\"%s\"];\n" c.cid
           (Trust_graph.Dot.escape (commitment_label c))))
    t.commitments;
  Array.iter
    (fun j ->
      Buffer.add_string buf
        (Printf.sprintf "  j%d [shape=box, label=\"AND %s\"];\n" j.jid
           (Trust_graph.Dot.escape (Party.name j.owner))))
    t.conjunctions;
  Array.iteri
    (fun cid edges ->
      List.iter
        (fun (jid, colour) ->
          let attrs =
            match colour with
            | Red -> ", color=red, penwidth=2.5"
            | Black -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  c%d -> j%d [dir=none%s];\n" cid jid attrs))
        edges)
    t.c_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_ascii t =
  let buf = Buffer.create 512 in
  let label cid = Printf.sprintf "[%s]" (commitment_label t.commitments.(cid)) in
  Array.iter
    (fun j ->
      let scope =
        match j.scope with Some deal -> Printf.sprintf " (deal %s)" deal | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "AND %s%s\n" (Party.name j.owner) scope);
      (match t.j_edges.(j.jid) with
      | [] -> Buffer.add_string buf "  (disconnected)\n"
      | edges ->
        List.iter
          (fun (cid, colour) ->
            let stroke = match colour with Red -> "══red══" | Black -> "───────" in
            Buffer.add_string buf (Printf.sprintf "  %s %s\n" stroke (label cid)))
          edges);
      Buffer.add_char buf '\n')
    t.conjunctions;
  let free =
    Array.to_list t.commitments
    |> List.filter (fun c -> t.c_edges.(c.cid) = [])
  in
  if free <> [] then begin
    Buffer.add_string buf "free commitments (no conjunction constraints left):\n";
    List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "  %s\n" (label c.cid))) free
  end;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>sequencing graph: %d commitments, %d conjunctions, %d edges"
    (commitment_count t) (conjunction_count t) t.n_edges;
  Array.iter
    (fun c ->
      Format.fprintf ppf "@,  C%d [%s]:" c.cid (commitment_label c);
      List.iter
        (fun (jid, colour) ->
          Format.fprintf ppf " --%a--> AND(%s)" pp_colour colour
            (Party.name t.conjunctions.(jid).owner))
        t.c_edges.(c.cid))
    t.commitments;
  Format.fprintf ppf "@]"
