examples/trust_web.ml: Asset Exchange Format List Party Printf Report Spec String Trust_core Trust_sim
