(* Trust routing — the §9 hierarchy-of-trust extension: synthesizing
   intermediaries, personas and relay chains from a trust web. *)

open Exchange
module Routing = Trust_core.Routing
module Feasibility = Trust_core.Feasibility

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let alice = Party.consumer "alice"
let bob = Party.producer "bob"
let carol = Party.broker "carol"
let dave = Party.producer "dave"
let bank = Party.trusted "bank"
let notary = Party.trusted "notary"

let sale id buyer seller price =
  Routing.{ id; buyer; seller; price = Asset.dollars price; good = "doc-" ^ id }

let connect_exn ?relays ?markup ~trusts requests =
  match Routing.connect ?relays ?markup ~trusts requests with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_common_agent () =
  let trusts = Routing.mutual alice bank @ Routing.mutual bob bank in
  let t = connect_exn ~trusts [ sale "s" alice bob 10 ] in
  (match List.assoc "s" t.Routing.routes with
  | Routing.Common_agent agent -> check "routed via bank" true (Party.equal agent bank)
  | _ -> Alcotest.fail "expected a common agent");
  check "feasible" true (Feasibility.is_feasible t.Routing.spec)

let test_buyer_persona () =
  (* only the seller trusts the buyer: variant-1 direct trust *)
  let trusts = [ Routing.{ truster = bob; trustee = alice } ] in
  let t = connect_exn ~trusts [ sale "s" alice bob 10 ] in
  check "buyer persona" true (List.assoc "s" t.Routing.routes = Routing.Buyer_persona);
  let d = List.hd t.Routing.spec.Spec.deals in
  check "persona is the buyer" true
    (Spec.persona_of t.Routing.spec d.Spec.via = Some alice);
  check "feasible" true (Feasibility.is_feasible t.Routing.spec)

let test_seller_persona () =
  let trusts = [ Routing.{ truster = alice; trustee = bob } ] in
  let t = connect_exn ~trusts [ sale "s" alice bob 10 ] in
  check "seller persona" true (List.assoc "s" t.Routing.routes = Routing.Seller_persona);
  check "feasible" true (Feasibility.is_feasible t.Routing.spec)

let test_agent_preferred_over_persona () =
  let trusts =
    Routing.mutual alice bank @ Routing.mutual bob bank
    @ [ Routing.{ truster = bob; trustee = alice } ]
  in
  let t = connect_exn ~trusts [ sale "s" alice bob 10 ] in
  check "neutral agent wins" true
    (match List.assoc "s" t.Routing.routes with Routing.Common_agent _ -> true | _ -> false)

let test_relay_chain () =
  (* alice and bob share nothing; carol bridges the two trust domains *)
  let trusts =
    Routing.mutual alice bank @ Routing.mutual carol bank
    @ Routing.mutual carol notary @ Routing.mutual bob notary
  in
  let t = connect_exn ~relays:[ carol ] ~trusts [ sale "s" alice bob 10 ] in
  (match List.assoc "s" t.Routing.routes with
  | Routing.Relay [ relay ] -> check "through carol" true (Party.equal relay carol)
  | _ -> Alcotest.fail "expected a single relay");
  check_int "two hops" 2 (List.length t.Routing.spec.Spec.deals);
  (* the relay secures its buyer first *)
  check_int "one red edge" 1 (List.length t.Routing.spec.Spec.priorities);
  check "feasible end to end" true (Feasibility.is_feasible t.Routing.spec)

let test_relay_pricing () =
  let trusts =
    Routing.mutual alice bank @ Routing.mutual carol bank
    @ Routing.mutual carol notary @ Routing.mutual bob notary
  in
  let t = connect_exn ~relays:[ carol ] ~markup:(Asset.dollars 1) ~trusts [ sale "s" alice bob 10 ] in
  let price_of id =
    match Spec.find_deal t.Routing.spec id with
    | Some d -> Asset.value d.Spec.left_sends
    | None -> Alcotest.failf "deal %s missing" id
  in
  check_int "buyer pays price + markup" (Asset.dollars 11) (price_of "s.hop1");
  check_int "seller receives base price" (Asset.dollars 10) (price_of "s.hop2")

let test_two_relays () =
  let erin = Party.broker "erin" in
  let vault = Party.trusted "vault" in
  let trusts =
    Routing.mutual alice bank @ Routing.mutual carol bank
    @ Routing.mutual carol notary @ Routing.mutual erin notary
    @ Routing.mutual erin vault @ Routing.mutual bob vault
  in
  let t = connect_exn ~relays:[ erin; carol ] ~trusts [ sale "s" alice bob 10 ] in
  (match List.assoc "s" t.Routing.routes with
  | Routing.Relay relays -> check_int "two relays" 2 (List.length relays)
  | _ -> Alcotest.fail "expected relays");
  check_int "three hops" 3 (List.length t.Routing.spec.Spec.deals);
  check "feasible" true (Feasibility.is_feasible t.Routing.spec)

let test_unroutable () =
  match Routing.connect ~trusts:[] [ sale "s" alice bob 10 ] with
  | Error message -> check "names the request" true (String.length message > 0)
  | Ok _ -> Alcotest.fail "no trust at all must fail"

let test_multiple_requests_share_agents () =
  (* An agent trusted by more than two parties (§9, sentence 1): the
     paper's own two rules cannot sequence a bundle whose pieces all
     flow through one agent, but the shared-agent extension (Rule #3)
     recognises that the agent enforces the conjunction itself. *)
  let trusts =
    Routing.mutual alice bank @ Routing.mutual bob bank @ Routing.mutual dave bank
  in
  let t = connect_exn ~trusts [ sale "a" alice bob 10; sale "b" alice dave 20 ] in
  Alcotest.(check (list string)) "one shared agent" [ "bank" ]
    (List.map Party.name (Spec.trusted_agents t.Routing.spec));
  check "paper rules: stuck" false (Feasibility.is_feasible t.Routing.spec);
  check "shared-agent rule: feasible" true (Feasibility.is_feasible ~shared:true t.Routing.spec)

let test_shared_agent_runs_atomically () =
  (* The runtime counterpart: the shared agent forwards nothing until
     every deal is in, so a defecting seller cannot strand the buyer
     with half the bundle. *)
  let trusts =
    Routing.mutual alice bank @ Routing.mutual bob bank @ Routing.mutual dave bank
  in
  let t = connect_exn ~trusts [ sale "a" alice bob 10; sale "b" alice dave 20 ] in
  let spec = t.Routing.spec in
  (match Trust_sim.Harness.honest_run ~shared:true spec with
  | Error e -> Alcotest.fail e
  | Ok result ->
    check "honest run preferred" true
      (Trust_sim.Audit.audit spec result).Trust_sim.Audit.all_preferred);
  List.iter
    (fun defector ->
      match
        Trust_sim.Harness.adversarial_run ~shared:true
          ~defectors:[ (defector, Trust_sim.Harness.Silent) ]
          spec
      with
      | Error e -> Alcotest.fail e
      | Ok result ->
        let report = Trust_sim.Audit.audit spec ~defectors:[ defector ] result in
        check "honest acceptable under defection" true report.Trust_sim.Audit.honest_all_acceptable)
    (Trust_sim.Harness.defectable_principals spec)

let test_relay_avoidance () =
  (* two requests through the same bridge would give one broker two red
     edges (the poor-broker impasse); with a second bridge available the
     router spreads them and the batch stays feasible *)
  let dora = Party.broker "dora" in
  let trusts =
    Routing.mutual alice bank
    @ Routing.mutual carol bank @ Routing.mutual carol notary
    @ Routing.mutual dora bank @ Routing.mutual dora notary
    @ Routing.mutual bob notary @ Routing.mutual dave notary
  in
  let t =
    connect_exn ~relays:[ carol; dora ] ~trusts [ sale "x" alice bob 10; sale "y" alice dave 20 ]
  in
  let relay_of id =
    match List.assoc id t.Routing.routes with
    | Routing.Relay [ r ] -> r
    | _ -> Alcotest.fail "expected single relays"
  in
  check "distinct relays" false (Party.equal (relay_of "x") (relay_of "y"));
  (* alice's cross-chain bundle transfers completion risk to the bridge
     brokers, so it stays infeasible even under the extended rules - the
     par-6 indemnity is what absorbs that risk, and with the granular
     (par-9) reading of the shared agents the rescue succeeds *)
  check "bare: infeasible" false (Feasibility.is_feasible t.Routing.spec);
  check "extended rules alone: still infeasible" false
    (Feasibility.is_feasible ~shared:true t.Routing.spec);
  match Feasibility.rescue_with_indemnities ~shared:true t.Routing.spec with
  | Some rescue ->
    check "indemnities rescue the batch" true
      (Trust_core.Reduce.feasible rescue.Feasibility.analysis.Feasibility.outcome)
  | None -> Alcotest.fail "expected an indemnity rescue"

let test_routed_specs_run () =
  (* routed transactions execute and audit clean *)
  let trusts =
    Routing.mutual alice bank @ Routing.mutual carol bank
    @ Routing.mutual carol notary @ Routing.mutual bob notary
  in
  let t = connect_exn ~relays:[ carol ] ~trusts [ sale "s" alice bob 10 ] in
  match Trust_sim.Harness.honest_run t.Routing.spec with
  | Error e -> Alcotest.fail e
  | Ok result ->
    let report = Trust_sim.Audit.audit t.Routing.spec result in
    check "all preferred" true report.Trust_sim.Audit.all_preferred

let prop_routed_always_analyzable =
  QCheck2.Test.make ~name:"routing output always validates and analyzes" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      (* random small trust webs over a fixed cast *)
      let principals = [ alice; bob; carol; dave ] in
      let agents = [ bank; notary ] in
      let trusts =
        List.concat_map
          (fun p ->
            List.filter_map
              (fun q ->
                if Workload.Prng.float rng < 0.4 then
                  Some Routing.{ truster = p; trustee = q }
                else None)
              (agents @ principals))
          principals
      in
      match Routing.connect ~relays:[ carol ] ~trusts [ sale "s" alice bob 10 ] with
      | Error _ -> true
      | Ok t ->
        Spec.validate t.Routing.spec = Ok ()
        && (ignore (Feasibility.analyze t.Routing.spec);
            true))

let () =
  Alcotest.run "routing"
    [
      ( "direct links",
        [
          Alcotest.test_case "common agent" `Quick test_common_agent;
          Alcotest.test_case "buyer persona" `Quick test_buyer_persona;
          Alcotest.test_case "seller persona" `Quick test_seller_persona;
          Alcotest.test_case "agent preferred over persona" `Quick
            test_agent_preferred_over_persona;
        ] );
      ( "relays",
        [
          Alcotest.test_case "single relay chain" `Quick test_relay_chain;
          Alcotest.test_case "relay pricing" `Quick test_relay_pricing;
          Alcotest.test_case "two relays" `Quick test_two_relays;
          Alcotest.test_case "unroutable" `Quick test_unroutable;
          Alcotest.test_case "shared agent across requests" `Quick
            test_multiple_requests_share_agents;
          Alcotest.test_case "shared agent runs atomically" `Quick
            test_shared_agent_runs_atomically;
          Alcotest.test_case "relay avoidance across a batch" `Quick test_relay_avoidance;
          Alcotest.test_case "routed specs run" `Quick test_routed_specs_run;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_routed_always_analyzable ]);
    ]
