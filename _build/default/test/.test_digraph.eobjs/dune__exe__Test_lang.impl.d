test/test_lang.ml: Alcotest Asset Exchange Int64 List Party QCheck2 QCheck_alcotest Spec String Trust_core Trust_lang Workload
