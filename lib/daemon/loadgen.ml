module Universe = Workload.Universe
module Prng = Workload.Prng
module Printer = Trust_lang.Printer

type config = {
  connect : string;
  requests : int;
  universe : Universe.config;
  seed : int64;
  busy_retries : int;
}

let default =
  {
    connect = "unix:/tmp/trustseq.sock";
    requests = 1000;
    universe = Universe.default_config;
    seed = 1L;
    busy_retries = 25;
  }

type report = {
  sent : int;
  settled : int;
  expired : int;
  aborted : int;
  busy : int;
  dropped : int;
  refused : int;
  cache_hits : int;
  wall : float;
  throughput : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let run cfg =
  if cfg.requests <= 0 then invalid_arg "Loadgen.run: requests must be positive";
  let universe = Universe.create cfg.universe in
  let rng = Prng.create cfg.seed in
  match Client.connect cfg.connect with
  | Error _ as e -> e
  | Ok client ->
    let latencies = ref [] in
    let sent = ref 0
    and settled = ref 0
    and expired = ref 0
    and aborted = ref 0
    and busy = ref 0
    and dropped = ref 0
    and refused = ref 0
    and cache_hits = ref 0 in
    let error = ref None in
    let started = Unix.gettimeofday () in
    (try
       for i = 1 to cfg.requests do
         if !error = None then begin
           let spec = Universe.sample universe rng in
           let src = Printer.to_string spec in
           let rec attempt retries =
             let t0 = Unix.gettimeofday () in
             match Client.submit client ~id:i ~spec:src with
             | Error e -> error := Some e
             | Ok (Wire.Busy _) ->
               incr busy;
               if retries > 0 then begin
                 (* brief, bounded backoff: the daemon said "not now" *)
                 (try ignore (Unix.select [] [] [] 0.002) with Unix.Unix_error _ -> ());
                 attempt (retries - 1)
               end
               else incr dropped
             | Ok (Wire.Result { status; cache_hit; _ }) ->
               latencies := (Unix.gettimeofday () -. t0) *. 1000. :: !latencies;
               incr sent;
               if cache_hit then incr cache_hits;
               (match status with
               | "settled" -> incr settled
               | "expired" -> incr expired
               | _ -> incr aborted)
             | Ok (Wire.Refused { reason; _ })
               when String.length reason >= 7 && String.sub reason 0 7 = "denied:" ->
               (* the trace-mining deny list refusing a shape is an
                  expected per-request outcome under --mine-deny, not a
                  transport failure: count it and keep driving *)
               incr refused
             | Ok (Wire.Refused { reason; _ }) -> error := Some ("refused: " ^ reason)
             | Ok _ -> error := Some "unexpected response to submit"
           in
           attempt cfg.busy_retries
         end
       done
     with e ->
       Client.close client;
       raise e);
    Client.close client;
    (match !error with
    | Some e -> Error e
    | None ->
      let wall = Unix.gettimeofday () -. started in
      let sorted = Array.of_list !latencies in
      Array.sort compare sorted;
      Ok
        {
          sent = !sent;
          settled = !settled;
          expired = !expired;
          aborted = !aborted;
          busy = !busy;
          dropped = !dropped;
          refused = !refused;
          cache_hits = !cache_hits;
          wall;
          throughput = (if wall > 0. then float_of_int !sent /. wall else 0.);
          p50_ms = percentile sorted 0.50;
          p90_ms = percentile sorted 0.90;
          p99_ms = percentile sorted 0.99;
          max_ms = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
        })

let json r =
  Printf.sprintf
    {|{"sent":%d,"settled":%d,"expired":%d,"aborted":%d,"busy":%d,"dropped":%d,"refused":%d,"cache_hits":%d,"wall_s":%.3f,"throughput_rps":%.1f,"latency_ms":{"p50":%.3f,"p90":%.3f,"p99":%.3f,"max":%.3f}}|}
    r.sent r.settled r.expired r.aborted r.busy r.dropped r.refused r.cache_hits r.wall
    r.throughput r.p50_ms r.p90_ms r.p99_ms r.max_ms

let table r =
  String.concat "\n"
    [
      Printf.sprintf "results        %d (settled %d, expired %d, aborted %d)" r.sent
        r.settled r.expired r.aborted;
      Printf.sprintf "backpressure   %d busy answers, %d dropped, %d refused" r.busy
        r.dropped r.refused;
      Printf.sprintf "cache hits     %d" r.cache_hits;
      Printf.sprintf "wall           %.3f s (%.1f results/s)" r.wall r.throughput;
      Printf.sprintf "latency (ms)   p50 %.3f  p90 %.3f  p99 %.3f  max %.3f" r.p50_ms
        r.p90_ms r.p99_ms r.max_ms;
      "";
    ]
