test/test_cost.ml: Action Alcotest Exchange Int64 List Party QCheck2 QCheck_alcotest Spec Trust_core Workload
