test/test_deadline.ml: Action Alcotest Asset Exchange List Party Spec State String Trust_core Trust_lang Trust_sim Workload
