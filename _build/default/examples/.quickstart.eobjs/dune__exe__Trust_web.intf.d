examples/trust_web.mli:
