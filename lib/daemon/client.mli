(** The blocking client half of the wire protocol, shared by
    [trustseq submit], the load generator and the integration tests. *)

type t

val parse_addr : string -> (Unix.sockaddr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (treated as a
    Unix socket). *)

val connect : ?timeout:float -> string -> (t, string) result
(** Connect and complete the [hello]/[welcome] handshake. [timeout]
    (default 10s) bounds each receive. Errors are human-readable
    transport or protocol reasons. *)

val server : t -> string
(** The banner from the welcome. *)

val request : t -> Wire.request -> (Wire.response, string) result
(** Send one request and wait for its response frame. *)

val submit : t -> id:int -> spec:string -> (Wire.response, string) result
(** [request] with a [Submit]; the response is [Result], [Busy], or
    [Refused]. *)

val trace : t -> id:int -> (string, string) result
(** [request] with a [Trace], unwrapping the [text]/["ring"] frame and
    its base64 transport: the raw binary ring dump accumulated since
    the previous drain, ready for {!Trust_obs.Ring.decode}. *)

val close : t -> unit
