lib/core/sequencing.mli: Exchange Format Party Spec
