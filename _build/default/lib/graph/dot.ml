type attrs = (string * string) list

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_attrs buf attrs =
  match attrs with
  | [] -> ()
  | attrs ->
    Buffer.add_string buf " [";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape v);
        Buffer.add_char buf '"')
      attrs;
    Buffer.add_char buf ']'

let render ?(name = "g") ?(graph_attrs = []) ?(node_attrs = fun _ -> [])
    ?(edge_attrs = fun _ _ -> []) ?(undirected = false) g =
  let buf = Buffer.create 1024 in
  let kind = if undirected then "graph" else "digraph" in
  let arrow = if undirected then " -- " else " -> " in
  Buffer.add_string buf (Printf.sprintf "%s \"%s\" {\n" kind (escape name));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=\"%s\";\n" k (escape v)))
    graph_attrs;
  Digraph.iter_nodes
    (fun v ->
      Buffer.add_string buf (Printf.sprintf "  n%d" v);
      render_attrs buf (node_attrs v);
      Buffer.add_string buf ";\n")
    g;
  Digraph.iter_edges
    (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  n%d%sn%d" u arrow v);
      render_attrs buf (edge_attrs u v);
      Buffer.add_string buf ";\n")
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
