(* Exposure analysis over simulation traces (the quantitative side of
   §8's cost-of-mistrust discussion). *)

open Exchange
module Trace = Trust_sim.Trace
module Engine = Trust_sim.Engine
module Harness = Trust_sim.Harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let honest_trace spec =
  match Harness.honest_run spec with
  | Ok result -> Trace.of_result spec result
  | Error e -> Alcotest.fail e

let example1 = Workload.Scenarios.example1
let trace1 = lazy (honest_trace example1)

let b = Party.broker "b"
let p = Party.producer "p"
let c = Party.consumer "c"

let test_local_views () =
  let trace = Lazy.force trace1 in
  (* the producer sees its deposit, the notify is not for it, then the
     forwarded payment: 2 deliveries *)
  check_int "producer sees two" 2 (List.length (Trace.view_of trace p));
  (* the broker sees both notifies, its two sends, two receipts *)
  check_int "broker sees six" 6 (List.length (Trace.view_of trace b));
  check_int "consumer sees two" 2 (List.length (Trace.view_of trace c))

let test_performed_by () =
  let trace = Lazy.force trace1 in
  check_int "broker performs two" 2 (List.length (Trace.performed_by trace b));
  check_int "producer performs one" 1 (List.length (Trace.performed_by trace p))

let test_duration () =
  check "positive duration" true (Trace.duration (Lazy.force trace1) > 0)

let test_profile_monotone_ticks () =
  let trace = Lazy.force trace1 in
  List.iter
    (fun party ->
      let profile = Trace.exposure_profile trace party in
      let rec ascending = function
        | a :: (b : Trace.exposure) :: rest -> a.Trace.at < b.Trace.at && ascending (b :: rest)
        | _ -> true
      in
      check (Party.to_string party ^ " ticks ascend") true (ascending profile))
    (Spec.parties example1)

let test_consumer_exposure_shape () =
  let trace = Lazy.force trace1 in
  (* the consumer pays $10 at t=1 and is covered when the document
     (priced at $10 to it) arrives *)
  check_int "peak is the price" (Asset.dollars 10) (Trace.peak_exposure trace c);
  let final = List.nth (Trace.exposure_profile trace c) (List.length (Trace.exposure_profile trace c) - 1) in
  check "covered at the end" true (final.Trace.covered >= final.Trace.outlay)

let test_producer_exposure_shape () =
  let trace = Lazy.force trace1 in
  (* the producer ships a document it sells for $8; covered when paid *)
  check_int "peak is its sale price" (Asset.dollars 8) (Trace.peak_exposure trace p);
  let profile = Trace.exposure_profile trace p in
  check "goods out at some point" true
    (List.exists (fun s -> s.Trace.goods_out = 1) profile);
  let final = List.nth profile (List.length profile - 1) in
  check_int "goods delivered for good" 1 final.Trace.goods_out

let test_honest_runs_end_covered () =
  (* at the end of an honest run, no principal is uncovered *)
  List.iter
    (fun (name, spec) ->
      match Harness.honest_run spec with
      | Error _ -> ()
      | Ok result ->
        let trace = Trace.of_result spec result in
        List.iter
          (fun party ->
            match List.rev (Trace.exposure_profile trace party) with
            | [] -> ()
            | final :: _ ->
              if final.Trace.outlay - final.Trace.covered > 0 then
                Alcotest.failf "%s: %s ends uncovered" name (Party.to_string party))
          (Spec.principals spec))
    Workload.Scenarios.all

let test_direct_trust_lowers_duration_not_exposure () =
  (* §8: direct trust halves the messages; exposure moves from the
     escrow's custody onto the trusting parties *)
  let mediated = honest_trace example1 in
  let direct_spec = Trust_core.Cost.with_all_direct_trust example1 in
  let direct = honest_trace direct_spec in
  check "fewer deliveries" true
    (List.length (Trace.log direct) < List.length (Trace.log mediated));
  check "total exposure still bounded by prices" true
    (Trace.total_peak_exposure direct <= Asset.dollars 36)

let test_defector_leaves_honest_covered () =
  (* c defects on fig7+plan: every honest principal ends covered *)
  let fig7 = Workload.Scenarios.fig7 in
  let plan = Trust_core.Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer in
  match
    Harness.adversarial_run ~plan
      ~defectors:[ (Party.broker "b2", Harness.Partial 2) ]
      fig7
  with
  | Error e -> Alcotest.fail e
  | Ok result ->
    let trace = Trace.of_result fig7 result in
    List.iter
      (fun party ->
        if not (Party.equal party (Party.broker "b2")) then
          match List.rev (Trace.exposure_profile trace party) with
          | [] -> ()
          | final :: _ ->
            if final.Trace.outlay - final.Trace.covered > 0 then
              Alcotest.failf "%s ends uncovered" (Party.to_string party))
      (Spec.principals fig7)

let prop_final_coverage_on_honest_runs =
  QCheck2.Test.make ~name:"honest generated runs end with every principal covered" ~count:60
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match Harness.honest_run spec with
      | Error _ -> true
      | Ok result ->
        let trace = Trace.of_result spec result in
        List.for_all
          (fun party ->
            match List.rev (Trace.exposure_profile trace party) with
            | [] -> true
            | final :: _ -> final.Trace.outlay <= final.Trace.covered)
          (Spec.principals spec))

let () =
  Alcotest.run "trace"
    [
      ( "views",
        [
          Alcotest.test_case "local views" `Quick test_local_views;
          Alcotest.test_case "performed_by" `Quick test_performed_by;
          Alcotest.test_case "duration" `Quick test_duration;
        ] );
      ( "exposure",
        [
          Alcotest.test_case "ticks ascend" `Quick test_profile_monotone_ticks;
          Alcotest.test_case "consumer shape" `Quick test_consumer_exposure_shape;
          Alcotest.test_case "producer shape" `Quick test_producer_exposure_shape;
          Alcotest.test_case "honest runs end covered" `Quick test_honest_runs_end_covered;
          Alcotest.test_case "direct trust" `Quick test_direct_trust_lowers_duration_not_exposure;
          Alcotest.test_case "honest covered despite defector" `Quick
            test_defector_leaves_honest_covered;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_final_coverage_on_honest_runs ]);
    ]
