open Exchange

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let c = Party.consumer "c"
let p = Party.producer "p"
let t = Party.trusted "t"

let test_party_roles () =
  check "consumer principal" true (Party.is_principal c);
  check "trusted not principal" false (Party.is_principal t);
  check "trusted is trusted" true (Party.is_trusted t);
  Alcotest.(check (option bool)) "role of trusted" None
    (Option.map (fun _ -> true) (Party.role t));
  check "role of consumer" true (Party.role c = Some Party.Consumer)

let test_party_ordering () =
  check "principal before trusted" true (Party.compare c t < 0);
  check "same name different role differ" false
    (Party.equal (Party.consumer "x") (Party.broker "x"));
  check "equal" true (Party.equal c (Party.consumer "c"))

let test_give_pay () =
  check_str "give" "give[p -> c](doc(d))" (Action.to_string (Action.give p c "d"));
  check_str "pay" "pay[c -> p]($5)" (Action.to_string (Action.pay c p 500));
  check_str "notify" "notify[t -> c]" (Action.to_string (Action.notify ~agent:t ~informed:c))

let test_undo () =
  let give = Action.give p c "d" in
  let undone = Action.undo give in
  check_str "inverse" "give⁻¹[p -> c](doc(d))" (Action.to_string undone);
  Alcotest.check_raises "double undo" (Invalid_argument "Action.undo: not a Do action")
    (fun () -> ignore (Action.undo undone))

let test_performer_beneficiary () =
  let give = Action.give p c "d" in
  check "giver performs" true (Party.equal (Action.performer give) p);
  check "receiver benefits" true (Party.equal (Action.beneficiary give) c);
  (* The undo is performed by the current holder, returning the item. *)
  let back = Action.undo give in
  check "holder performs undo" true (Party.equal (Action.performer back) c);
  check "original sender benefits" true (Party.equal (Action.beneficiary back) p);
  let note = Action.notify ~agent:t ~informed:c in
  check "agent notifies" true (Party.equal (Action.performer note) t);
  check "informed benefits" true (Party.equal (Action.beneficiary note) c)

let test_equal () =
  check "same give" true (Action.equal (Action.give p c "d") (Action.give p c "d"));
  check "different doc" false (Action.equal (Action.give p c "d") (Action.give p c "e"));
  check "do vs undo" false (Action.equal (Action.give p c "d") (Action.undo (Action.give p c "d")))

(* Patterns *)

module Pattern = Action.Pattern

let test_pattern_exact () =
  let give = Action.give p c "d" in
  check "of_action matches itself" true (Pattern.matches (Pattern.of_action give) give);
  check "rejects others" false (Pattern.matches (Pattern.of_action give) (Action.give p c "e"))

let test_pattern_wildcards () =
  let pat = Pattern.P_do (Pattern.Any_party, Pattern.Exactly c, Pattern.Any_document) in
  check "any source" true (Pattern.matches pat (Action.give p c "d"));
  check "any document" true (Pattern.matches pat (Action.give t c "zzz"));
  check "not money" false (Pattern.matches pat (Action.pay p c 100));
  check "wrong target" false (Pattern.matches pat (Action.give p t "d"))

let test_pattern_party_classes () =
  check "any_trusted accepts t" true (Pattern.party_matches Pattern.Any_trusted t);
  check "any_trusted rejects c" false (Pattern.party_matches Pattern.Any_trusted c);
  check "any_principal accepts c" true (Pattern.party_matches Pattern.Any_principal c);
  check "any_party accepts all" true
    (Pattern.party_matches Pattern.Any_party t && Pattern.party_matches Pattern.Any_party c)

let test_pattern_money_at_least () =
  let pat = Pattern.P_do (Pattern.Exactly t, Pattern.Exactly c, Pattern.Money_at_least 500) in
  check "enough" true (Pattern.matches pat (Action.pay t c 500));
  check "more" true (Pattern.matches pat (Action.pay t c 700));
  check "too little" false (Pattern.matches pat (Action.pay t c 499));
  check "document never" false (Pattern.matches pat (Action.give t c "d"))

let test_pattern_kinds_disjoint () =
  let give = Action.give p c "d" in
  let undo_pat = Pattern.P_undo (Pattern.Any_party, Pattern.Any_party, Pattern.Any_asset) in
  let notify_pat = Pattern.P_notify (Pattern.Any_party, Pattern.Any_party) in
  check "undo pattern rejects do" false (Pattern.matches undo_pat give);
  check "undo pattern accepts undo" true (Pattern.matches undo_pat (Action.undo give));
  check "notify pattern rejects transfer" false (Pattern.matches notify_pat give)

let prop_of_action_roundtrip =
  let gen_action =
    QCheck2.Gen.(
      let party = oneofl [ c; p; t; Party.broker "b" ] in
      let* source = party and* target = party in
      oneof
        [
          map (fun n -> Action.transfer source target (Asset.money (abs n mod 10_000))) int;
          return (Action.transfer source target (Asset.document "d"));
          return (Action.undo (Action.transfer source target (Asset.document "d")));
          return (Action.notify ~agent:source ~informed:target);
        ])
  in
  QCheck2.Test.make ~name:"of_action gives the exact-match pattern" ~count:300 gen_action
    (fun action -> Pattern.matches (Pattern.of_action action) action)

let () =
  Alcotest.run "action"
    [
      ( "party",
        [
          Alcotest.test_case "roles" `Quick test_party_roles;
          Alcotest.test_case "ordering" `Quick test_party_ordering;
        ] );
      ( "actions",
        [
          Alcotest.test_case "constructors print like the paper" `Quick test_give_pay;
          Alcotest.test_case "undo" `Quick test_undo;
          Alcotest.test_case "performer and beneficiary" `Quick test_performer_beneficiary;
          Alcotest.test_case "equality" `Quick test_equal;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "exact patterns" `Quick test_pattern_exact;
          Alcotest.test_case "wildcards" `Quick test_pattern_wildcards;
          Alcotest.test_case "party classes" `Quick test_pattern_party_classes;
          Alcotest.test_case "money at least" `Quick test_pattern_money_at_least;
          Alcotest.test_case "action kinds disjoint" `Quick test_pattern_kinds_disjoint;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_of_action_roundtrip ]);
    ]
