module Union_find = Trust_graph.Union_find

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_singletons () =
  let uf = Union_find.create 5 in
  check_int "five sets" 5 (Union_find.count_sets uf);
  check "distinct" false (Union_find.equivalent uf 0 1);
  check "self" true (Union_find.equivalent uf 3 3)

let test_union () =
  let uf = Union_find.create 5 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  check "transitive" true (Union_find.equivalent uf 0 2);
  check "separate" false (Union_find.equivalent uf 0 3);
  check_int "three sets" 3 (Union_find.count_sets uf)

let test_union_idempotent () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  check_int "two sets" 2 (Union_find.count_sets uf)

let test_set_of () =
  let uf = Union_find.create 6 in
  Union_find.union uf 1 3;
  Union_find.union uf 3 5;
  Alcotest.(check (list int)) "members ascending" [ 1; 3; 5 ] (Union_find.set_of uf 3);
  Alcotest.(check (list int)) "singleton" [ 0 ] (Union_find.set_of uf 0)

let prop_equivalence =
  QCheck2.Test.make ~name:"union builds an equivalence relation" ~count:200
    QCheck2.Gen.(
      let* n = int_range 2 20 in
      let* ops = list_size (int_range 0 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, ops))
    (fun (n, ops) ->
      let uf = Union_find.create n in
      List.iter (fun (a, b) -> Union_find.union uf a b) ops;
      (* symmetric and transitive via representative equality *)
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Union_find.equivalent uf a b <> Union_find.equivalent uf b a then ok := false
        done
      done;
      (* count_sets equals number of distinct representatives *)
      let reps = List.sort_uniq compare (List.init n (Union_find.find uf)) in
      !ok && List.length reps = Union_find.count_sets uf)

let () =
  Alcotest.run "union_find"
    [
      ( "basics",
        [
          Alcotest.test_case "singletons" `Quick test_singletons;
          Alcotest.test_case "union and transitivity" `Quick test_union;
          Alcotest.test_case "idempotent unions" `Quick test_union_idempotent;
          Alcotest.test_case "set_of lists members" `Quick test_set_of;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_equivalence ]);
    ]
