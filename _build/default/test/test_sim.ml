(* The discrete-event runtime: honest runs reach everyone's preferred
   outcome; every single-defector run leaves every honest party in an
   acceptable state (the paper's §1 safety claim); escrows refund at the
   deadline; indemnity deposits settle correctly. *)

open Exchange
module Harness = Trust_sim.Harness
module Engine = Trust_sim.Engine
module Audit = Trust_sim.Audit
module Feasibility = Trust_core.Feasibility
module Indemnity = Trust_core.Indemnity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let honest spec =
  match Harness.honest_run spec with
  | Ok result -> result
  | Error e -> Alcotest.failf "honest run failed: %s" e

let feasible_scenarios =
  List.filter (fun (_, spec) -> Feasibility.is_feasible spec) Workload.Scenarios.all

let test_honest_runs_reach_preferred () =
  List.iter
    (fun (name, spec) ->
      let result = honest spec in
      let report = Audit.audit spec result in
      if not report.Audit.all_preferred then
        Alcotest.failf "%s: honest run did not reach the preferred outcome" name;
      if not report.Audit.conserved then Alcotest.failf "%s: assets not conserved" name;
      if result.Engine.stalled <> [] then Alcotest.failf "%s: stalled actions" name)
    feasible_scenarios

let test_honest_example1_is_paper_sequence () =
  (* The simulation delivers exactly the ten paper actions (its timing
     interleaves independent branches, so compare as sets). *)
  let result = honest Workload.Scenarios.example1 in
  let delivered = State.of_actions (List.map (fun d -> d.Engine.action) result.Engine.log) in
  let expected = State.of_actions Workload.Scenarios.paper_example1_actions in
  check "same action set" true (State.equal delivered expected)

let test_infeasible_refused () =
  match Harness.honest_run Workload.Scenarios.example2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "example 2 must not assemble"

let test_defectable_principals () =
  let names spec = List.map Party.name (Harness.defectable_principals spec) in
  Alcotest.(check (list string)) "example1" [ "b"; "p"; "c" ]
    (names Workload.Scenarios.example1);
  (* personas are trusted: the producer is not a defection candidate *)
  Alcotest.(check (list string)) "direct sale" [ "c" ]
    (names Workload.Scenarios.simple_sale_direct)

let adversarial spec ?plan defectors =
  match Harness.adversarial_run ?plan ~defectors spec with
  | Ok result -> result
  | Error e -> Alcotest.failf "adversarial run failed: %s" e

let test_modes_agree_honestly () =
  (* Distributed and lockstep honest runs deliver the same action set. *)
  List.iter
    (fun (name, spec) ->
      let run mode =
        match Harness.honest_run ~mode spec with
        | Ok r -> State.of_actions (List.map (fun d -> d.Engine.action) r.Engine.log)
        | Error e -> Alcotest.failf "%s: %s" name e
      in
      if not (State.equal (run Harness.Lockstep) (run Harness.Distributed)) then
        Alcotest.failf "%s: modes disagree" name)
    feasible_scenarios

let test_distributed_mediated_defection_safe () =
  (* For the purely mediated example 1 even the distributed mode is safe
     under any single defection. *)
  let spec = Workload.Scenarios.example1 in
  List.iter
    (fun defector ->
      match
        Harness.adversarial_run ~mode:Harness.Distributed
          ~defectors:[ (defector, Harness.Silent) ] spec
      with
      | Error e -> Alcotest.fail e
      | Ok result ->
        check "honest safe (distributed)" true
          (Audit.audit spec ~defectors:[ defector ] result).Audit.honest_all_acceptable)
    (Harness.defectable_principals spec)

let test_single_defector_sweep () =
  (* For every feasible scenario and every defectable principal, both
     silent and partial defection leave every honest party with no asset
     loss (the unconditional §1 guarantee). *)
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun defector ->
          List.iter
            (fun mode ->
              let result = adversarial spec [ (defector, mode) ] in
              let report = Audit.audit spec ~defectors:[ defector ] result in
              if not report.Audit.honest_no_loss then
                Alcotest.failf "%s: defection of %s costs an honest party an asset" name
                  (Party.name defector);
              if not report.Audit.conserved then Alcotest.failf "%s: conservation" name)
            [ Harness.Silent; Harness.Partial 1; Harness.Partial 2 ])
        (Harness.defectable_principals spec))
    feasible_scenarios

let test_single_defector_acceptability_mediated () =
  (* For fully mediated single-document scenarios (no personas, no
     splits), defection even preserves full acceptability: the only
     bundles are broker resale pairs, which unwind completely. *)
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun defector ->
          List.iter
            (fun mode ->
              let result = adversarial spec [ (defector, mode) ] in
              let report = Audit.audit spec ~defectors:[ defector ] result in
              if not report.Audit.honest_all_acceptable then
                Alcotest.failf "%s: defection of %s leaves an honest party unacceptable" name
                  (Party.name defector))
            [ Harness.Silent; Harness.Partial 1; Harness.Partial 2 ])
        (Harness.defectable_principals spec))
    [
      ("simple_sale", Workload.Scenarios.simple_sale);
      ("example1", Workload.Scenarios.example1);
      ("chain3", Workload.Gen.chain ~brokers:3);
      ("bundle3", Workload.Gen.bundle ~docs:3);
    ]

let test_indemnified_fig7_fully_acceptable () =
  (* With the greedy indemnity plan in place, any single broker or
     source defection still leaves every honest party fully acceptable:
     covered pieces pay out, and an uncovered piece can only stall
     before the bundle becomes irrevocable. *)
  let fig7 = Workload.Scenarios.fig7 in
  let plan = Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer in
  List.iter
    (fun defector ->
      List.iter
        (fun mode ->
          let result = adversarial fig7 ~plan [ (defector, mode) ] in
          let report = Audit.audit fig7 ~plan ~defectors:[ defector ] result in
          if not report.Audit.honest_all_acceptable then
            Alcotest.failf "fig7+plan: defection of %s leaves an honest party unacceptable"
              (Party.name defector))
        [ Harness.Silent; Harness.Partial 1; Harness.Partial 2; Harness.Partial 3 ])
    (Harness.defectable_principals fig7)

let test_pairwise_defection_example1 () =
  let spec = Workload.Scenarios.example1 in
  let b = Party.broker "b" and p = Party.producer "p" and c = Party.consumer "c" in
  List.iter
    (fun pair ->
      let result = adversarial spec (List.map (fun d -> (d, Harness.Silent)) pair) in
      let report = Audit.audit spec ~defectors:pair result in
      check "honest safe under two defectors" true report.Audit.honest_all_acceptable)
    [ [ b; p ]; [ b; c ]; [ p; c ] ]

let test_deadline_refund () =
  (* Consumer defects: the producer's document sits at t2 and must come
     back at the deadline. *)
  let spec = Workload.Scenarios.example1 in
  let c = Party.consumer "c" in
  let result = adversarial spec [ (c, Harness.Silent) ] in
  let p = Party.producer "p" and t2 = Party.trusted "t2" in
  let refund = Action.undo (Action.give p t2 "d") in
  check "document returned" true (State.mem refund result.Engine.state);
  (* and the producer ends holding its document *)
  let holdings = List.assoc p result.Engine.holdings in
  check "producer has the document" true (Asset.Bag.holds (Asset.document "d") holdings)

let test_no_deliveries_when_everyone_defects () =
  let spec = Workload.Scenarios.example1 in
  let everyone = Harness.defectable_principals spec in
  let result = adversarial spec (List.map (fun d -> (d, Harness.Silent)) everyone) in
  check_int "silence" 0 (List.length result.Engine.log)

let test_lossy_network_no_loss () =
  (* drop every k-th message: the run may not complete, but deadlines
     unwind whatever is stranded and no honest party loses an asset *)
  List.iter
    (fun k ->
      List.iter
        (fun (name, spec) ->
          match Harness.assemble spec with
          | Error _ -> ()
          | Ok cast ->
            let config =
              {
                Engine.default_config with
                Engine.broadcast = true;
                drop = Some (fun seq _ -> seq mod k = 0);
              }
            in
            let result = Harness.run_cast ~config cast in
            let report = Audit.audit spec result in
            if not report.Audit.honest_no_loss then
              Alcotest.failf "%s with 1/%d drops: honest loss" name k;
            if not report.Audit.conserved then
              Alcotest.failf "%s with 1/%d drops: conservation" name k)
        feasible_scenarios)
    [ 2; 3; 5 ]

(* indemnity paths *)

let fig7 = Workload.Scenarios.fig7
let fig7_plan = Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer

let test_indemnity_honest_refunds_deposits () =
  let result =
    match Harness.honest_run ~plan:fig7_plan fig7 with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let report = Audit.audit fig7 ~plan:fig7_plan result in
  check "all preferred" true report.Audit.all_preferred;
  (* both deposits returned *)
  List.iter
    (fun refund -> check "deposit refunded" true (State.mem refund result.Engine.state))
    (Indemnity.refunds fig7_plan)

let test_indemnity_forfeit_pays_consumer () =
  (* Broker 3's piece is covered by its own $30 deposit. Broker 3
     deposits and buys document 3 but withholds delivery after the
     consumer paid: at the deadline the consumer's payment is refunded
     and the deposit forfeited to the consumer. *)
  let b3 = Party.broker "b3" in
  let result = adversarial fig7 ~plan:fig7_plan [ (b3, Harness.Partial 2) ] in
  let report = Audit.audit fig7 ~plan:fig7_plan ~defectors:[ b3 ] result in
  check "honest safe" true report.Audit.honest_all_acceptable;
  let payout =
    Action.pay (Party.trusted "t5") Workload.Scenarios.fig7_consumer (Asset.dollars 30)
  in
  check "forfeit delivered" true (State.mem payout result.Engine.state);
  (* the defector is out its deposit, stuck with the document it bought *)
  let holdings = List.assoc b3 result.Engine.holdings in
  check_int "b3 lost the deposit" 0 (Asset.Bag.balance holdings);
  check "b3 stuck with d3" true (Asset.Bag.holds (Asset.document "d3") holdings)

let test_indemnity_unused_deposit_returned () =
  (* When the *consumer* defects, nobody paid for the covered pieces, so
     deposits go back to the brokers. *)
  let c = Workload.Scenarios.fig7_consumer in
  let result = adversarial fig7 ~plan:fig7_plan [ (c, Harness.Silent) ] in
  let report = Audit.audit fig7 ~plan:fig7_plan ~defectors:[ c ] result in
  check "honest safe" true report.Audit.honest_all_acceptable;
  List.iter
    (fun refund -> check "deposit returned" true (State.mem refund result.Engine.state))
    (Indemnity.refunds fig7_plan)

let test_unexpected_arrival_bounced () =
  (* A transfer a trusted component cannot account for is returned. *)
  let spec = Workload.Scenarios.simple_sale in
  let t = Party.trusted "t" in
  let stray_sender = Party.consumer "c" in
  let stray = Action.{ source = stray_sender; target = t; asset = Asset.money 123 } in
  let behaviors =
    [
      Trust_sim.Behavior.scripted stray_sender
        [ { Trust_core.Protocol.condition = Trust_core.Protocol.Now; action = Action.Do stray } ];
      Trust_sim.Behavior.escrow spec t ~notifies:[] ~indemnities:[];
    ]
  in
  let result = Engine.run spec ~deposits:[] ~behaviors in
  check "bounced" true (State.mem (Action.Undo stray) result.Engine.state)

let prop_generated_single_defector_safe =
  QCheck2.Test.make
    ~name:"generated feasible transactions never cost an honest party an asset" ~count:60
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      if not (Feasibility.is_feasible spec) then true
      else
        List.for_all
          (fun defector ->
            match Harness.adversarial_run ~defectors:[ (defector, Harness.Silent) ] spec with
            | Error _ -> false
            | Ok result ->
              (Audit.audit spec ~defectors:[ defector ] result).Audit.honest_no_loss)
          (Harness.defectable_principals spec))

let prop_honest_runs_preferred =
  QCheck2.Test.make ~name:"generated feasible transactions complete honestly" ~count:60
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      match Harness.honest_run spec with
      | Error _ -> not (Feasibility.is_feasible spec)
      | Ok result ->
        let report = Audit.audit spec result in
        report.Audit.all_preferred && report.Audit.conserved)

let () =
  Alcotest.run "sim"
    [
      ( "honest runs",
        [
          Alcotest.test_case "scenarios reach preferred" `Quick test_honest_runs_reach_preferred;
          Alcotest.test_case "example 1 delivers the paper's actions" `Quick
            test_honest_example1_is_paper_sequence;
          Alcotest.test_case "infeasible specs refused" `Quick test_infeasible_refused;
          Alcotest.test_case "defectable principals" `Quick test_defectable_principals;
        ] );
      ( "adversaries",
        [
          Alcotest.test_case "single-defector sweep" `Quick test_single_defector_sweep;
          Alcotest.test_case "mediated defection fully acceptable" `Quick
            test_single_defector_acceptability_mediated;
          Alcotest.test_case "indemnified fig7 fully acceptable" `Quick
            test_indemnified_fig7_fully_acceptable;
          Alcotest.test_case "pairwise defection" `Quick test_pairwise_defection_example1;
          Alcotest.test_case "deadline refunds" `Quick test_deadline_refund;
          Alcotest.test_case "total silence" `Quick test_no_deliveries_when_everyone_defects;
          Alcotest.test_case "modes agree on honest runs" `Quick test_modes_agree_honestly;
          Alcotest.test_case "distributed mode safe when mediated" `Quick
            test_distributed_mediated_defection_safe;
          Alcotest.test_case "unexpected arrival bounced" `Quick test_unexpected_arrival_bounced;
          Alcotest.test_case "lossy network: no honest loss" `Quick test_lossy_network_no_loss;
        ] );
      ( "indemnities",
        [
          Alcotest.test_case "honest run returns deposits" `Quick
            test_indemnity_honest_refunds_deposits;
          Alcotest.test_case "forfeit pays the consumer" `Quick test_indemnity_forfeit_pays_consumer;
          Alcotest.test_case "unused deposits returned" `Quick
            test_indemnity_unused_deposit_returned;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_single_defector_safe; prop_honest_runs_preferred ] );
    ]
