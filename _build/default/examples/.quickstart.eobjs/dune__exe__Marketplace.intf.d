examples/marketplace.mli:
