(** Trust routing — the §9 "hierarchy of trust" extension.

    The paper assumes each pairwise exchange comes with its trusted
    intermediary already chosen and asks only whether the whole
    transaction can be sequenced. §9 points out that real networks have
    a {e web} of trust: parties trust some agents and some other
    parties, and more transactions complete if trust can be chained.

    This module synthesizes the missing middle: given a trust relation
    and a set of desired sales, it picks for each sale a shared trusted
    agent, a direct-trust persona, or — when buyer and seller share
    nothing — a {e relay chain} of intermediary principals, each hop of
    which is again escrow-protected and red-edge-ordered like the
    paper's brokers. The result is an ordinary {!Exchange.Spec.t} that
    the sequencing machinery analyzes as usual. *)

open Exchange

type trust = { truster : Party.t; trustee : Party.t }
(** [truster] is willing to let [trustee] hold its side of an exchange:
    a trusted component both use, or another principal (§4.2.3). *)

type request = {
  id : string;
  buyer : Party.t;
  seller : Party.t;
  price : Asset.money;
  good : string;
}

(** How one requested sale was realised. *)
type routing =
  | Common_agent of Party.t  (** both sides trust this agent *)
  | Buyer_persona  (** the seller trusts the buyer (§4.2.3 variant 1) *)
  | Seller_persona  (** the buyer trusts the seller *)
  | Relay of Party.t list
      (** resale chain through these principals, in goods-flow order
          from the seller's side to the buyer's *)

type t = {
  spec : Spec.t;
  routes : (string * routing) list;  (** per request id *)
}

val mutual : Party.t -> Party.t -> trust list
(** Both directions at once. *)

val connect :
  ?relays:Party.t list ->
  ?markup:Asset.money ->
  trusts:trust list ->
  request list ->
  (t, string) result
(** Route every request. [relays] are principals (typically brokers)
    willing to resell for [markup] extra cents per hop (default 100 =
    $1); a relay chain is the shortest path of deal-capable hops found
    by breadth-first search over the trust web. Two parties are
    deal-capable when they share a trusted agent or one trusts the
    other. Relays already reselling for an earlier request in the batch
    are avoided when an alternative exists (a broker with two resales in
    one transaction carries two mutually pre-empting red edges — the
    §5 poor-broker impasse). Fails with the first unroutable request.
    Request ids must be unique; generated chain deals are named
    [<id>.hop<k>]. *)

val pp_routing : Format.formatter -> routing -> unit
