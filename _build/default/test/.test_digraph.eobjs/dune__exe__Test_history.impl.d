test/test_history.ml: Action Alcotest Asset Exchange Format History Int64 List Outcomes Party QCheck2 QCheck_alcotest Spec State String Trust_sim Workload
