(** Agent behaviours for the discrete-event runtime.

    A behaviour reacts to local observations with actions to attempt.
    The engine owns asset custody and delivery; behaviours only decide
    {e what} to do next. All behaviours here are deterministic state
    machines over mutable internal state, constructed per run. *)

open Exchange

type observation =
  | Start  (** delivered once at time zero *)
  | Incoming of Action.t
      (** an action whose beneficiary is this agent was delivered *)
  | Expired of string
      (** a deal's own escrow deadline (§2.2) fired: the intermediary is
          no longer bound and returns what it holds for that deal *)
  | Deadline  (** the global escrow deadline fired *)

type t
(** A behaviour instance (single-run, stateful). *)

val party : t -> Party.t
val react : t -> observation -> Action.t list
(** Actions the agent attempts now, in order. *)

val make : Party.t -> (observation -> Action.t list) -> t
(** A custom behaviour from a reaction function (which may close over
    its own mutable state). Used for bespoke agents in tests and
    downstream experiments. *)

val scripted : Party.t -> Trust_core.Protocol.scripted_step list -> t
(** An honest principal following its synthesized script: it performs
    each step once its condition is met (conditions may be satisfied by
    any previously observed action, not just the latest). *)

val escrow :
  ?atomic:bool ->
  Spec.t ->
  Party.t ->
  notifies:Trust_core.Protocol.scripted_step list ->
  indemnities:Trust_core.Indemnity.offer list ->
  t
(** The trusted-component automaton (§2.5) for a non-persona trusted
    role: records incoming deal items; when both sides of a deal are in,
    forwards them (documents first); runs its notification script
    reactively; holds indemnity deposits, returning each when its
    covered deal completes. At [Deadline] it returns every item of an
    incomplete deal to its sender and settles outstanding deposits —
    forfeiting a deposit to the protected party when that party had paid
    for the covered piece and the piece never arrived (§6), returning it
    to the offerer otherwise.

    With [atomic] (default false) the agent behaves as §8's coordinating
    intermediary: nothing is forwarded until {e every} deal it mediates
    has both sides in, so a multi-deal agent keeps bundles
    all-or-nothing. Required for specs made feasible by the shared-agent
    extension ({!Trust_core.Reduce.run_shared}). *)

val coordinator : Spec.t -> Party.t -> t
(** The §8 universal intermediary as a runtime agent: every deal of the
    spec runs through it. It accepts deposits but forwards {e nothing}
    until the whole transaction is ready — every money side and every
    initially-held document side has arrived (it "checks that if all of
    the exchanges are made, then all of the constraints will be
    satisfied"). From then on it forwards each deal as it completes
    (resold documents cycle out to the reseller and back in). At
    [Deadline] anything unfinished unwinds. *)

val with_persona_duties : Spec.t -> Party.t -> t -> t
(** Wrap a principal that plays one or more trusted roles (§4.2.3) with
    the escrow duties those roles imply: it tracks what the trusting
    counterparties deposited with it, and at [Deadline] returns any
    deposit whose deal it has not completed (its own outbound transfer
    for that deal never fired). Without this, a stalled exchange leaves
    the truster's goods stranded with the persona. *)

val silent : Party.t -> t
(** An adversary that never sends anything (receives are passive). *)

val partial : Party.t -> Trust_core.Protocol.scripted_step list -> keep:int -> t
(** An adversary that follows the script for its first [keep] own
    actions and then defects silently. [partial p s ~keep:0] acts like
    {!silent}; [keep] beyond the script length acts honestly. *)

val pp_observation : Format.formatter -> observation -> unit
