(** Deterministic per-session head sampling.

    {!decision} is a pure function of [(seed, id, rate)]: no PRNG
    state, no wall clock, no domain identity. Three properties are
    load-bearing (pinned by test/test_ring.ml):

    - {b reproducible}: the same seed and id give the same verdict in
      every process, at any [--jobs], forever;
    - {b monotone in the rate}: the hash ignores the rate and only the
      threshold moves, so the set sampled at rate [r] is a subset of
      the set sampled at any [r' >= r] (and rate [1.0] is everything,
      rate [0.0] nothing);
    - {b cheap}: a handful of int64 multiplies per session — safe to
      call on the allocation-free hot path. *)

val decision : seed:int64 -> rate:float -> int -> bool
(** [decision ~seed ~rate id] — sample session [id]? Rates at or above
    [1.0] always sample; at or below [0.0] never. *)

val hash : seed:int64 -> int -> int64
(** The mixed per-session hash behind {!decision} — exposed for tests
    that pin the sampled-set layout. *)
