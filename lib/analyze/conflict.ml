(* Cross-deal conflict analysis: shapes that are individually
   well-formed per deal but unsound across the spec's deals.

   TL013 (double spend): the same provenance asset is promised into
   more concurrent deals than the principal can supply copies of. The
   initial endowment rule (Execution.initially_holds, §2.4) grants one
   copy of a document the sender does not acquire elsewhere; every
   acquiring deal supplies one more. Promising past that is the
   double-spend shape of Herlihy–Liskov–Shrira's adversarial commerce:
   at most one counterparty can ever be paid in full.

   TL014 (over-pledged indemnity): one conjunction owner's splits
   pledge more combined indemnity than its whole conjunction costs —
   deposits guaranteeing more than the insurable loss.

   TL015 (deadline race): a deal's [within n] escrow deadline is
   shorter than the span its escrow is open in the synthesized
   sequence, so the release races the expiry and a transient unwind
   can break settlement ordering. *)

open Exchange
module Execution = Trust_core.Execution

let doc_name = function Asset.Document d -> Some d | Asset.Money _ -> None

(* --- TL013 ---------------------------------------------------------- *)

let double_spends ~deal_loc spec =
  let commitments = Spec.commitments spec in
  let principals = Spec.principals spec in
  List.concat_map
    (fun p ->
      (* documents this principal promises, with the promising deals *)
      let sells = Hashtbl.create 4 in
      List.iter
        (fun ((cref : Spec.commitment_ref), d) ->
          if Party.equal (Spec.commitment_principal d cref.Spec.side) p then
            match doc_name (Spec.commitment_sends d cref.Spec.side) with
            | Some doc ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt sells doc) in
              Hashtbl.replace sells doc (d.Spec.id :: prev)
            | None -> ())
        commitments;
      let acquired doc =
        List.length
          (List.filter
             (fun ((cref : Spec.commitment_ref), d) ->
               Party.equal (Spec.commitment_principal d cref.Spec.side) p
               && Asset.equal
                    (Spec.commitment_expects d cref.Spec.side)
                    (Asset.document doc))
             commitments)
      in
      Hashtbl.fold
        (fun doc deals acc ->
          let deals = List.rev deals in
          let supply = match acquired doc with 0 -> 1 | n -> n in
          if List.length deals > supply then
            Diagnostic.make
              ?loc:(deal_loc (List.hd deals))
              ~notes:
                (List.map
                   (Printf.sprintf "deal %s consumes one copy")
                   deals)
              Diagnostic.Double_spend
              (Format.asprintf
                 "%s promises %S into %d concurrent deals (%s) but can \
                  supply at most %d cop%s — a double spend"
                 (Party.name p) doc (List.length deals)
                 (String.concat ", " deals)
                 supply
                 (if supply = 1 then "y" else "ies"))
            :: acc
          else acc)
        sells [])
    principals

(* --- TL014 ---------------------------------------------------------- *)

let over_pledged ~split_loc spec =
  let owners =
    List.sort_uniq Party.compare (List.map fst spec.Spec.splits)
  in
  List.filter_map
    (fun owner ->
      let splits =
        List.filter_map
          (fun (o, cref) -> if Party.equal o owner then Some cref else None)
          spec.Spec.splits
      in
      if List.length splits < 2 then None
      else
        let pledged =
          List.fold_left
            (fun acc cref -> acc + Spec.indemnity_amount spec owner cref)
            0 splits
        in
        let insurable =
          List.fold_left
            (fun acc cref -> acc + Spec.cost_to spec owner cref)
            0
            (Spec.commitments_of spec owner)
        in
        if pledged > insurable then
          Some
            (Diagnostic.make
               ?loc:(split_loc (Party.name owner) (List.hd splits))
               Diagnostic.Over_pledged_indemnity
               (Format.asprintf
                  "%s's %d splits pledge %a of combined indemnities against \
                   a conjunction whose pieces cost only %a in total — the \
                   deposits guarantee more than the insurable loss"
                  (Party.name owner) (List.length splits) Asset.pp_money
                  pledged Asset.pp_money insurable))
        else None)
    owners

(* --- TL015 ---------------------------------------------------------- *)

(* The escrow of deal [d] opens at its first commit and is released by
   its last forward; in lockstep each delivery costs one tick, so the
   step span is how long the intermediary holds a side. *)
let deadline_races ~deal_loc (seq : Execution.sequence) =
  let spec = seq.Execution.spec in
  List.filter_map
    (fun (d : Spec.deal) ->
      match d.Spec.deadline with
      | None -> None
      | Some n ->
        let indices =
          List.filter_map
            (fun (s : Execution.step) ->
              match s.Execution.origin with
              | Execution.Commit cref when String.equal cref.Spec.deal d.Spec.id ->
                Some s.Execution.index
              | Execution.Forward id when String.equal id d.Spec.id ->
                Some s.Execution.index
              | _ -> None)
            seq.Execution.steps
        in
        (match indices with
        | [] -> None
        | first :: _ ->
          let last = List.fold_left max first indices in
          let span = last - first in
          if n < span then
            Some
              (Diagnostic.make
                 ?loc:(deal_loc d.Spec.id)
                 Diagnostic.Deadline_race
                 (Printf.sprintf
                    "deal %s: the escrow stays open for %d steps of the \
                     synthesized sequence but its deadline is within %d — \
                     the release races the expiry and the escrow can unwind \
                     mid-protocol"
                    d.Spec.id span n))
          else None))
    spec.Spec.deals

(* Structural conflicts need no synthesis and run in quick mode too —
   the serve admission gate sees TL013 before scheduling a session. *)
let structural ~deal_loc ~split_loc spec =
  double_spends ~deal_loc spec @ over_pledged ~split_loc spec
