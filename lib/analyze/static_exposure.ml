(* The static §5 bound check: run the abstract interpreter over the
   synthesized sequence and either prove the single-transfer bound for
   every principal or report the refuted parties with the maximizing
   interleaving as a counterexample schedule. Infeasible specs have no
   sequence to analyze — the verdict is vacuous (TL006/TL009 already
   explain why nothing runs). *)

open Exchange
module Feasibility = Trust_core.Feasibility

type verdict = Proved | Refuted | Vacuous

type t = { verdict : verdict; intervals : Absint.interval list; steps : int }

let vacuous = { verdict = Vacuous; intervals = []; steps = 0 }

let of_sequence seq =
  let a = Absint.of_sequence seq in
  let verdict =
    if List.for_all Absint.proved a.Absint.intervals then Proved else Refuted
  in
  { verdict; intervals = a.Absint.intervals; steps = List.length a.Absint.steps }

let of_analysis (a : Feasibility.analysis) =
  match a.Feasibility.sequence with
  | None -> vacuous
  | Some seq -> of_sequence seq

let analyze spec = of_analysis (Feasibility.analyze spec)

let refuted t = List.filter (fun i -> not (Absint.proved i)) t.intervals

let verdict_label = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Vacuous -> "vacuous"

(* The counterexample schedule, one note line per kept step, prefixed
   by what the defector withholds. Stable format, documented in
   docs/LINT.md ("Static exposure analysis"). *)
let schedule_notes (w : Absint.witness) =
  let header =
    match w.Absint.w_defector with
    | None -> "schedule (honest, cut mid-protocol):"
    | Some q ->
      Format.asprintf "schedule (defector %s stalls %s):" (Party.name q)
        (String.concat ", "
           (List.map
              (fun (deal, kept) ->
                if kept = 0 then deal
                else Printf.sprintf "%s after %d step%s" deal kept
                       (if kept = 1 then "" else "s"))
              w.Absint.w_stalled))
  in
  header
  :: List.map
       (fun (s : Absint.astep) ->
         Printf.sprintf "  %2d. %s" s.Absint.a_index s.Absint.a_label)
       w.Absint.w_kept

let diagnostics t =
  match refuted t with
  | [] -> []
  | refuted ->
    let bound_diags =
      List.map
        (fun (i : Absint.interval) ->
          let defector =
            match i.Absint.i_witness.Absint.w_defector with
            | Some q -> Printf.sprintf " when %s defects" (Party.name q)
            | None -> ""
          in
          Diagnostic.make Diagnostic.Unprovable_bound
            (Format.asprintf
               "cannot prove the single-transfer bound for %s: worst-case \
                exposure %a exceeds its largest single transfer %a%s"
               (Party.name i.Absint.i_party)
               Asset.pp_money i.Absint.i_hi Asset.pp_money i.Absint.i_bound
               defector))
        refuted
    in
    (* one schedule note, for the worst refutation *)
    let worst =
      List.fold_left
        (fun (acc : Absint.interval) i ->
          if i.Absint.i_hi - i.Absint.i_bound > acc.Absint.i_hi - acc.Absint.i_bound
          then i
          else acc)
        (List.hd refuted) (List.tl refuted)
    in
    let schedule =
      Diagnostic.make
        ~notes:(schedule_notes worst.Absint.i_witness)
        Diagnostic.Counterexample_schedule
        (Format.asprintf
           "maximizing interleaving for %s: %d of %d steps delivered, %a at \
            risk"
           (Party.name worst.Absint.i_party)
           (List.length worst.Absint.i_witness.Absint.w_kept)
           t.steps Asset.pp_money worst.Absint.i_hi)
    in
    bound_diags @ [ schedule ]

let pp ppf t =
  match t.verdict with
  | Vacuous -> Format.fprintf ppf "static exposure: vacuous (no sequence)"
  | _ ->
    Format.fprintf ppf "@[<v>static exposure: %s@,%a@]" (verdict_label t.verdict)
      (Format.pp_print_list Absint.pp_interval)
      t.intervals
