lib/lang/elaborate.mli: Asset Ast Exchange Format Loc Party Spec
