open Exchange
module Harness = Trust_sim.Harness
module Feasibility = Trust_core.Feasibility
module Indemnity = Trust_core.Indemnity
module Protocol = Trust_core.Protocol

type policy = { mode : Harness.mode; shared : bool; rescue : bool; verify : bool }

let default_policy = { mode = Harness.Lockstep; shared = false; rescue = true; verify = false }

type entry = {
  split_spec : Spec.t;
  plan : Indemnity.plan option;
  protocol : Protocol.t;
  exposure : Trust_analyze.Static_exposure.t;
  compiled : Trust_core.Compile.t option;
}

exception Divergence of string

(* The table is sharded by shape hash; each shard is an independent
   FIFO-evicting map behind its own mutex, so synthesis misses on
   distinct shapes proceed concurrently from pool workers while every
   per-shard invariant — hit is fresh-and-verified, negative caching,
   oldest-insertion eviction — is exactly the unsharded cache's.
   [fresh] runs {e under} the shard lock: concurrent lookups of one
   shape serialize, so the first is the single miss and the rest are
   hits, the same tallies a sequential run produces. *)
type cached = {
  payload : (entry, string) result;
  mutable used_epoch : int;
  mutable pinned : bool;  (* exempt from FIFO eviction and epoch aging *)
}

module Denied = Set.Make (String)

type shard = {
  lock : Mutex.t;
  table : (string, cached) Hashtbl.t;
  order : string Queue.t;
  admission : (string, string option) Hashtbl.t;
      (* memoized shallow-lint verdict by shape: None clean, Some reason *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable aged_out : int;
}

type t = {
  policy : policy;
  shard_capacity : int;
  shards : shard array;
  bypasses : int Atomic.t;
  epoch : int Atomic.t;
      (* advanced only by long-lived services; batch runs stay at 0 *)
  denied_set : Denied.t Atomic.t;
      (* shape hashes refused at admission (the trace-mining feedback
         policy); an immutable set swapped atomically so the per-session
         read never takes a lock *)
  denied_hits : int Atomic.t;
}

let default_shards = 16

let create ?(capacity = 4096) ?(shards = default_shards) policy =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  if shards <= 0 then invalid_arg "Cache.create: shards must be positive";
  {
    policy;
    (* ceiling division: total residency is still >= capacity, and
       [shards = 1] reproduces the unsharded cache exactly *)
    shard_capacity = (capacity + shards - 1) / shards;
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
            admission = Hashtbl.create 64;
            hits = 0;
            misses = 0;
            evictions = 0;
            aged_out = 0;
          });
    bypasses = Atomic.make 0;
    epoch = Atomic.make 0;
    denied_set = Atomic.make Denied.empty;
    denied_hits = Atomic.make 0;
  }

let policy t = t.policy

let shard_count t = Array.length t.shards

(* Shard selection uses the spec's memoized shape hash — re-hashing
   the canonical key here would box an Int64 pair per character on
   every hit, dominating the allocation budget of a compiled-path
   session. *)
let shard_of t spec =
  (Int64.to_int (Shape.hash spec) land max_int) mod Array.length t.shards

let merge_plans = function
  | [] -> None
  | [ plan ] -> Some plan
  | plans ->
    Some
      Indemnity.
        {
          offers = List.concat_map (fun p -> p.offers) plans;
          total = List.fold_left (fun acc p -> acc + p.Indemnity.total) 0 plans;
        }

let fresh policy spec =
  let plan =
    if (not policy.rescue) || Feasibility.is_feasible ~shared:policy.shared spec then None
    else
      match Feasibility.rescue_with_indemnities ~shared:policy.shared spec with
      | Some rescue -> merge_plans rescue.Feasibility.plans
      | None -> None
  in
  match Harness.assemble ~mode:policy.mode ~shared:policy.shared ?plan spec with
  | Ok cast ->
    (* The proven bound rides the cache entry: a hit skips re-analysis
       entirely (the static pass is the expensive half of cold
       synthesis — see BENCH_analyze.json). *)
    let exposure = Trust_analyze.Static_exposure.analyze cast.Harness.spec in
    (* Compile once per synthesis: the flat instruction plan the
       allocation-free runtime executes on cache hits. Specs with
       acceptability overrides are never cacheable and stay on the
       interpreted path. *)
    let compiled =
      if Party.Map.is_empty cast.Harness.spec.Spec.overrides then
        Some
          (Trust_core.Compile.compile
             ~lockstep:(policy.mode = Harness.Lockstep)
             ~shared:policy.shared ?plan
             ~price:(Trust_sim.Trace.price_for cast.Harness.spec)
             cast.Harness.spec cast.Harness.protocol)
      else None
    in
    Ok
      { split_spec = cast.Harness.spec; plan; protocol = cast.Harness.protocol; exposure; compiled }
  | Error e -> Error e

let equal_offer (a : Indemnity.offer) (b : Indemnity.offer) =
  Spec.equal_ref a.Indemnity.piece b.Indemnity.piece
  && Party.equal a.Indemnity.owner b.Indemnity.owner
  && Party.equal a.Indemnity.offered_by b.Indemnity.offered_by
  && Party.equal a.Indemnity.via b.Indemnity.via
  && a.Indemnity.amount = b.Indemnity.amount

let equal_plan a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a.Indemnity.total = b.Indemnity.total
    && List.length a.Indemnity.offers = List.length b.Indemnity.offers
    && List.for_all2 equal_offer a.Indemnity.offers b.Indemnity.offers
  | (None | Some _), _ -> false

let entry_equal a b =
  String.equal (Shape.encode a.split_spec) (Shape.encode b.split_spec)
  && equal_plan a.plan b.plan
  && Protocol.equal_roles a.protocol b.protocol

let verify t spec cached =
  (match (cached, fresh t.policy spec) with
  | Ok c, Ok f when entry_equal c f -> ()
  | Error a, Error b when String.equal a b -> ()
  | (Ok _ | Error _), _ -> raise (Divergence (Shape.hash_hex spec)));
  (* Independent safety pass: replay the cached entry's execution
     sequence and re-check the protection invariant for every party. *)
  match cached with
  | Error _ -> ()
  | Ok c -> (
    match
      Trust_analyze.Verifier.verify_spec ~shared:t.policy.shared c.split_spec
    with
    | Ok () -> ()
    | Error exposures ->
      raise
        (Divergence
           (Printf.sprintf "%s: unsafe execution sequence:\n%s"
              (Shape.hash_hex spec)
              (Trust_analyze.Verifier.explain exposures))))

(* Evict the oldest unpinned resident from [shard] (callers hold the
   lock). The order queue may hold residue of aged-out keys — popped
   freely — while pinned victims rotate to the back; [budget] bounds
   the rotation so an all-pinned shard terminates (and simply runs
   over capacity until something is unpinned). *)
let evict_oldest shard =
  let rec go budget =
    if budget > 0 then
      match Queue.take_opt shard.order with
      | None -> ()
      | Some victim -> (
        match Hashtbl.find_opt shard.table victim with
        | Some c when c.pinned ->
          Queue.add victim shard.order;
          go (budget - 1)
        | Some _ ->
          Hashtbl.remove shard.table victim;
          shard.evictions <- shard.evictions + 1
        | None -> go budget)
  in
  go (Queue.length shard.order)

let insert t shard key value ~pinned =
  if Hashtbl.length shard.table >= t.shard_capacity then evict_oldest shard;
  Hashtbl.add shard.table key { payload = value; used_epoch = Atomic.get t.epoch; pinned };
  Queue.add key shard.order

let synthesize t spec =
  if not (Shape.cacheable spec) then begin
    ignore (Atomic.fetch_and_add t.bypasses 1);
    (fresh t.policy spec, `Bypass)
  end
  else begin
    let key = Shape.encode spec in
    let shard = t.shards.(shard_of t spec) in
    Mutex.lock shard.lock;
    (* [verify] and [fresh] may raise (Divergence, synthesis bugs);
       never leave the shard locked behind them. *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shard.lock)
      (fun () ->
        match Hashtbl.find_opt shard.table key with
        | Some cached ->
          shard.hits <- shard.hits + 1;
          cached.used_epoch <- Atomic.get t.epoch;
          if t.policy.verify then verify t spec cached.payload;
          (cached.payload, `Hit)
        | None ->
          let value = fresh t.policy spec in
          insert t shard key value ~pinned:false;
          shard.misses <- shard.misses + 1;
          (value, `Miss))
  end

(* -- the trace-mining feedback policy: pin, deny, pre-warm --

   All three are keyed by the canonical FNV shape hash in hex — the
   currency of {!Trust_obs.Mine} scoreboards — because the policy is
   decided from traces, which carry hashes, not specs. *)

let hex_of_key key = Printf.sprintf "%016Lx" (Shape.fnv1a key)

let shard_of_hex t hex =
  match Int64.of_string_opt ("0x" ^ hex) with
  | Some h when String.length hex = 16 ->
    Some t.shards.(Int64.to_int h land max_int mod Array.length t.shards)
  | Some _ | None -> None

let set_pinned t hex value =
  match shard_of_hex t hex with
  | None -> false
  | Some shard ->
    Mutex.lock shard.lock;
    let changed = ref false in
    Hashtbl.iter
      (fun key c ->
        if c.pinned <> value && String.equal (hex_of_key key) hex then begin
          c.pinned <- value;
          changed := true
        end)
      shard.table;
    Mutex.unlock shard.lock;
    !changed

let pin t hex = set_pinned t hex true
let unpin t hex = set_pinned t hex false

let pinned t =
  let acc = ref [] in
  Array.iter
    (fun shard ->
      Mutex.lock shard.lock;
      Hashtbl.iter (fun key c -> if c.pinned then acc := hex_of_key key :: !acc) shard.table;
      Mutex.unlock shard.lock)
    t.shards;
  List.sort_uniq compare !acc

let pinned_count t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lock;
      let n = Hashtbl.fold (fun _ c acc -> if c.pinned then acc + 1 else acc) shard.table 0 in
      Mutex.unlock shard.lock;
      acc + n)
    0 t.shards

let prewarm t spec =
  if not (Shape.cacheable spec) then `Uncacheable
  else begin
    let key = Shape.encode spec in
    let shard = t.shards.(shard_of t spec) in
    Mutex.lock shard.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shard.lock)
      (fun () ->
        match Hashtbl.find_opt shard.table key with
        | Some cached ->
          cached.pinned <- true;
          cached.used_epoch <- Atomic.get t.epoch;
          (match cached.payload with Ok _ -> `Hit | Error e -> `Failed e)
        | None ->
          (* off the traffic path, so neither a hit nor a miss is
             tallied: hit_rate keeps measuring what clients saw *)
          let value = fresh t.policy spec in
          insert t shard key value ~pinned:true;
          (match value with Ok _ -> `Warmed | Error e -> `Failed e))
  end

let deny_code = "TM001"

let denied_reason t spec =
  let d = Atomic.get t.denied_set in
  if Denied.is_empty d then None
  else
    let hex = Shape.hash_hex spec in
    if Denied.mem hex d then begin
      ignore (Atomic.fetch_and_add t.denied_hits 1);
      Some
        (Printf.sprintf "denied: [%s] shape %s deny-listed by trace mining (exposure violations observed)"
           deny_code hex)
    end
    else None

let rec deny t hex =
  let d = Atomic.get t.denied_set in
  if not (Denied.mem hex d) && not (Atomic.compare_and_set t.denied_set d (Denied.add hex d))
  then deny t hex

let rec allow t hex =
  let d = Atomic.get t.denied_set in
  if Denied.mem hex d then
    if Atomic.compare_and_set t.denied_set d (Denied.remove hex d) then true else allow t hex
  else false

let denied t = Denied.elements (Atomic.get t.denied_set)
let denied_count t = Atomic.get t.denied_hits

(* Admission lint is a pure function of the spec, so the serve path
   memoizes the shallow verdict by shape. Returns [None] when the spec
   passes, [Some reason] (the scheduler's abort reason, formatted) for
   the first error-level diagnostic. Non-cacheable specs are linted
   fresh. The memo is bounded: a full shard table is reset wholesale
   (entries are small strings, and correctness never depends on
   residency). *)
let lint_verdict spec =
  match
    List.find_opt
      (fun d -> d.Trust_analyze.Diagnostic.severity = Trust_analyze.Diagnostic.Error)
      (Trust_analyze.Lint.check_spec ~deep:false spec)
  with
  | Some first ->
    Some
      (Printf.sprintf "lint: [%s] %s"
         (Trust_analyze.Diagnostic.code_id first.Trust_analyze.Diagnostic.code)
         first.Trust_analyze.Diagnostic.message)
  | None -> None

let admission t spec =
  if not (Shape.cacheable spec) then lint_verdict spec
  else begin
    let key = Shape.encode spec in
    let shard = t.shards.(shard_of t spec) in
    Mutex.lock shard.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shard.lock)
      (fun () ->
        match Hashtbl.find_opt shard.admission key with
        | Some verdict -> verdict
        | None ->
          let verdict = lint_verdict spec in
          if Hashtbl.length shard.admission >= 4 * t.shard_capacity then
            Hashtbl.reset shard.admission;
          Hashtbl.add shard.admission key verdict;
          verdict)
  end

let epoch t = Atomic.get t.epoch

let advance_epoch ?(max_idle = 2) t =
  if max_idle < 1 then invalid_arg "Cache.advance_epoch: max_idle must be >= 1";
  let now = 1 + Atomic.fetch_and_add t.epoch 1 in
  let cutoff = now - max_idle in
  Array.fold_left
    (fun swept shard ->
      Mutex.lock shard.lock;
      let stale = ref [] in
      Hashtbl.iter
        (fun key c -> if c.used_epoch <= cutoff && not c.pinned then stale := key :: !stale)
        shard.table;
      List.iter (Hashtbl.remove shard.table) !stale;
      let n = List.length !stale in
      shard.aged_out <- shard.aged_out + n;
      (* compact the FIFO order queue so aged-out residue cannot pile up
         across epochs (eviction also skips dead keys lazily) *)
      if n > 0 then begin
        let live = Queue.create () in
        Queue.iter (fun k -> if Hashtbl.mem shard.table k then Queue.add k live) shard.order;
        Queue.clear shard.order;
        Queue.transfer live shard.order
      end;
      Mutex.unlock shard.lock;
      swept + n)
    0 t.shards

let sum_shards t f =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.lock;
      let v = f shard in
      Mutex.unlock shard.lock;
      acc + v)
    0 t.shards

let hits t = sum_shards t (fun s -> s.hits)
let misses t = sum_shards t (fun s -> s.misses)
let bypasses t = Atomic.get t.bypasses
let evictions t = sum_shards t (fun s -> s.evictions)
let aged_out t = sum_shards t (fun s -> s.aged_out)
let size t = sum_shards t (fun s -> Hashtbl.length s.table)

let hit_rate t =
  let looked = hits t + misses t in
  if looked = 0 then 0. else float_of_int (hits t) /. float_of_int looked
